#include "pmem/pmem_device.h"

#include <algorithm>

#include "common/rng.h"

namespace portus::pmem {

PmemDevice::PmemDevice(std::string name, Bytes size, std::uint64_t base_addr,
                       PmemPerfModel model)
    : mem::MemorySegment{std::move(name), mem::MemoryKind::kPmem, size, base_addr},
      model_{model} {}

void PmemDevice::mark_dirty(Bytes offset, Bytes len) {
  if (len == 0) return;
  std::lock_guard lock{dirty_mu_};
  Bytes start = offset;
  Bytes end = offset + len;

  // Merge with any overlapping or adjacent existing ranges.
  auto it = dirty_.upper_bound(start);
  if (it != dirty_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) {
      start = prev->first;
      end = std::max(end, prev->second);
      it = dirty_.erase(prev);
    }
  }
  while (it != dirty_.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = dirty_.erase(it);
  }
  dirty_.emplace(start, end);
}

void PmemDevice::persist(Bytes offset, Bytes len) {
  check_range(offset, len);
  if (len == 0) return;
  const auto seq = persist_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (persist_observer_) persist_observer_(seq, /*after=*/false);
  {
    std::lock_guard lock{dirty_mu_};
    persist_locked(offset, len);
  }
  if (persist_observer_) persist_observer_(seq, /*after=*/true);
}

void PmemDevice::persist_locked(Bytes offset, Bytes len) {
  const Bytes start = offset;
  const Bytes end = offset + len;

  auto it = dirty_.upper_bound(start);
  if (it != dirty_.begin()) --it;
  while (it != dirty_.end() && it->first < end) {
    const Bytes r_start = it->first;
    const Bytes r_end = it->second;
    if (r_end <= start) {
      ++it;
      continue;
    }
    it = dirty_.erase(it);
    if (r_start < start) dirty_.emplace(r_start, start);
    if (r_end > end) it = dirty_.emplace(end, r_end).first;
  }
}

void PmemDevice::persist_all() {
  const auto seq = persist_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (persist_observer_) persist_observer_(seq, /*after=*/false);
  {
    std::lock_guard lock{dirty_mu_};
    dirty_.clear();
  }
  if (persist_observer_) persist_observer_(seq, /*after=*/true);
}

bool PmemDevice::is_persisted(Bytes offset, Bytes len) const {
  check_range(offset, len);
  if (len == 0) return true;
  std::lock_guard lock{dirty_mu_};
  const Bytes end = offset + len;
  auto it = dirty_.upper_bound(offset);
  if (it != dirty_.begin()) {
    const auto prev = std::prev(it);
    if (prev->second > offset) return false;
  }
  return it == dirty_.end() || it->first >= end;
}

Bytes PmemDevice::dirty_bytes() const {
  std::lock_guard lock{dirty_mu_};
  Bytes total = 0;
  for (const auto& [start, end] : dirty_) total += end - start;
  return total;
}

void PmemDevice::simulate_crash() {
  std::lock_guard lock{dirty_mu_};
  ++crash_count_;
  for (const auto& [start, end] : dirty_) {
    fill_raw(start, end - start, std::byte{0xCC});
  }
  dirty_.clear();
}

void PmemDevice::power_cut(std::uint64_t seed) {
  std::lock_guard lock{dirty_mu_};
  ++crash_count_;
  Rng rng{seed};
  for (const auto& [start, end] : dirty_) {
    // Cache-line granularity: the CPU loses whole 64-byte lines, not the
    // exact byte spans the software dirtied.
    for (Bytes line = start & ~Bytes{63}; line < end; line += 64) {
      const Bytes lo = std::max(line, start);
      const Bytes hi = std::min({line + 64, end, size()});
      if (lo >= hi) continue;
      // 25% drained (survives), 25% torn (garbage), 50% lost (zeros).
      const auto roll = rng.uniform(0, 3);
      if (roll == 0) continue;
      if (roll == 1) {
        std::vector<std::byte> noise(hi - lo);
        rng.fill(noise);
        write_raw(lo, noise);
      } else {
        fill_raw(lo, hi - lo, std::byte{0});
      }
    }
  }
  dirty_.clear();
}

std::vector<std::pair<Bytes, Bytes>> PmemDevice::dirty_ranges() const {
  std::lock_guard lock{dirty_mu_};
  std::vector<std::pair<Bytes, Bytes>> out;
  out.reserve(dirty_.size());
  for (const auto& [start, end] : dirty_) out.emplace_back(start, end);
  return out;
}

}  // namespace portus::pmem
