#include "pmem/pmem_device.h"

#include <algorithm>

namespace portus::pmem {

PmemDevice::PmemDevice(std::string name, Bytes size, std::uint64_t base_addr,
                       PmemPerfModel model)
    : mem::MemorySegment{std::move(name), mem::MemoryKind::kPmem, size, base_addr},
      model_{model} {}

void PmemDevice::mark_dirty(Bytes offset, Bytes len) {
  if (len == 0) return;
  std::lock_guard lock{dirty_mu_};
  Bytes start = offset;
  Bytes end = offset + len;

  // Merge with any overlapping or adjacent existing ranges.
  auto it = dirty_.upper_bound(start);
  if (it != dirty_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) {
      start = prev->first;
      end = std::max(end, prev->second);
      it = dirty_.erase(prev);
    }
  }
  while (it != dirty_.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = dirty_.erase(it);
  }
  dirty_.emplace(start, end);
}

void PmemDevice::persist(Bytes offset, Bytes len) {
  check_range(offset, len);
  if (len == 0) return;
  std::lock_guard lock{dirty_mu_};
  persist_locked(offset, len);
}

void PmemDevice::persist_locked(Bytes offset, Bytes len) {
  const Bytes start = offset;
  const Bytes end = offset + len;

  auto it = dirty_.upper_bound(start);
  if (it != dirty_.begin()) --it;
  while (it != dirty_.end() && it->first < end) {
    const Bytes r_start = it->first;
    const Bytes r_end = it->second;
    if (r_end <= start) {
      ++it;
      continue;
    }
    it = dirty_.erase(it);
    if (r_start < start) dirty_.emplace(r_start, start);
    if (r_end > end) it = dirty_.emplace(end, r_end).first;
  }
}

void PmemDevice::persist_all() {
  std::lock_guard lock{dirty_mu_};
  dirty_.clear();
}

bool PmemDevice::is_persisted(Bytes offset, Bytes len) const {
  check_range(offset, len);
  if (len == 0) return true;
  std::lock_guard lock{dirty_mu_};
  const Bytes end = offset + len;
  auto it = dirty_.upper_bound(offset);
  if (it != dirty_.begin()) {
    const auto prev = std::prev(it);
    if (prev->second > offset) return false;
  }
  return it == dirty_.end() || it->first >= end;
}

Bytes PmemDevice::dirty_bytes() const {
  std::lock_guard lock{dirty_mu_};
  Bytes total = 0;
  for (const auto& [start, end] : dirty_) total += end - start;
  return total;
}

void PmemDevice::simulate_crash() {
  std::lock_guard lock{dirty_mu_};
  ++crash_count_;
  for (const auto& [start, end] : dirty_) {
    fill_raw(start, end - start, std::byte{0xCC});
  }
  dirty_.clear();
}

}  // namespace portus::pmem
