// Performance model for Intel Optane DC Persistent Memory (100-series),
// calibrated to the paper's storage server: 6 x 256 GB DIMMs, of which two
// interleaved 3-DIMM namespaces are built (one fsdax for BeeGFS, one devdax
// for Portus).
//
// Key properties reproduced (cf. Izraelevitz et al., the paper's ref [41]):
//  * read bandwidth well above write bandwidth;
//  * media write latency ~100 ns behind the ADR domain, reads ~300 ns;
//  * aggregate write bandwidth DEGRADES with concurrent writers (XPBuffer
//    contention) — this is what collapses BeeGFS-PMEM throughput under the
//    16-way concurrent checkpointing of Fig. 14.
#pragma once

#include "common/units.h"
#include "sim/bandwidth_channel.h"

namespace portus::pmem {

struct PmemPerfModel {
  // 3-DIMM interleaved namespace.
  Bandwidth read_bw = Bandwidth::gb_per_sec(19.5);
  Bandwidth write_bw = Bandwidth::gb_per_sec(8.0);
  Duration read_latency = std::chrono::nanoseconds{305};
  Duration write_latency = std::chrono::nanoseconds{95};
  // Flush (CLWB + fence) cost per cache line batch, charged per persist().
  Duration persist_overhead = std::chrono::nanoseconds{400};
  // Concurrency degradation for writes (see bandwidth_channel.h). Calibrated
  // so 16 concurrent writers see ~0.75-0.8x of nominal per +1 writer slope.
  sim::DegradationModel write_degradation{.beta = 0.02, .n0 = 2};

  static PmemPerfModel optane_interleaved3();
  // An fsdax namespace accessed through ext4-DAX + BeeGFS daemon sees much
  // worse concurrent-write behaviour (journal + page-cache-bypass DAX path).
  static PmemPerfModel optane_fsdax_shared();
};

}  // namespace portus::pmem
