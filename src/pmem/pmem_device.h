// Simulated persistent-memory device with explicit persistence semantics.
//
// Real PMEM sits behind the CPU cache hierarchy: a store is NOT durable
// until the cache line is flushed (CLWB/CLFLUSHOPT) and a fence drains it
// into the ADR domain. The double-mapping crash-consistency protocol in the
// Portus daemon depends on this ordering, so this device models it:
//
//   write()            -> contents visible, range recorded as *dirty*
//   persist(off, len)  -> intersecting dirty ranges become durable
//   simulate_crash()   -> every still-dirty range is scrambled (0xCC) —
//                         a pessimistic torn-write model: anything not
//                         explicitly persisted must be assumed lost.
//
// RDMA writes from the NIC land in the same way (DDIO -> cache) and are
// persisted by the daemon's flush step, matching the "characterizing remote
// PMEM over RDMA" guidance of the paper's ref [43].
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"
#include "mem/segment.h"
#include "pmem/perf_model.h"

namespace portus::pmem {

class PmemDevice final : public mem::MemorySegment {
 public:
  // Signature matches mem::AddressSpace::create<PmemDevice>(name, size, ...).
  PmemDevice(std::string name, Bytes size, std::uint64_t base_addr,
             PmemPerfModel model = PmemPerfModel::optane_interleaved3());

  const PmemPerfModel& perf() const { return model_; }

  // Make [offset, offset+len) durable. Throws on out-of-range.
  void persist(Bytes offset, Bytes len);
  void persist_all();

  // True when no byte of the range is in the volatile (dirty) state.
  bool is_persisted(Bytes offset, Bytes len) const;

  // Total bytes currently dirty (volatile).
  Bytes dirty_bytes() const;

  // Power-failure simulation: scrambles every dirty range with 0xCC and
  // clears the dirty set. Durable data is untouched.
  void simulate_crash();

  // Finer-grained power failure: every dirty 64-byte cache line is
  // *independently* lost to zeros (the common case — the line never left
  // the cache), garbled with pseudo-random bytes (a torn write caught
  // mid-line), or survives intact (it drained into the ADR domain just
  // before the cut). Deterministic for a given seed and dirty set, so a
  // crashpoint run is exactly reproducible. Durable data is untouched.
  void power_cut(std::uint64_t seed);

  std::uint64_t crash_count() const { return crash_count_; }

  // Snapshot of the volatile ranges, as [start, end) pairs in offset order.
  std::vector<std::pair<Bytes, Bytes>> dirty_ranges() const;

  // Persist-point recorder hook: called around every persist()/persist_all()
  // with a dense 1-based sequence number — once with after=false (the fence
  // is about to run: maximal dirty set) and once with after=true (it
  // completed). After fence k completes, persist_seq() == k.
  // Invoked OUTSIDE the dirty-set lock, so the observer may read
  // dirty_ranges()/save_image(). Not thread-safe: attach only in
  // single-threaded harnesses (sim/crashpoint.h).
  using PersistObserver = std::function<void(std::uint64_t seq, bool after)>;
  void set_persist_observer(PersistObserver observer) {
    persist_observer_ = std::move(observer);
  }
  std::uint64_t persist_seq() const {
    return persist_seq_.load(std::memory_order_relaxed);
  }

  // MemorySegment persistence hook.
  void mark_dirty(Bytes offset, Bytes len) override;

 private:
  void persist_locked(Bytes offset, Bytes len);

  // Dirty ranges as a non-overlapping ordered map: start -> end (exclusive).
  // Guarded: real-thread allocator stress tests write through to PMEM.
  mutable std::mutex dirty_mu_;
  std::map<Bytes, Bytes> dirty_;
  PmemPerfModel model_;
  std::uint64_t crash_count_ = 0;
  std::atomic<std::uint64_t> persist_seq_{0};
  PersistObserver persist_observer_;
};

}  // namespace portus::pmem
