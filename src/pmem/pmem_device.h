// Simulated persistent-memory device with explicit persistence semantics.
//
// Real PMEM sits behind the CPU cache hierarchy: a store is NOT durable
// until the cache line is flushed (CLWB/CLFLUSHOPT) and a fence drains it
// into the ADR domain. The double-mapping crash-consistency protocol in the
// Portus daemon depends on this ordering, so this device models it:
//
//   write()            -> contents visible, range recorded as *dirty*
//   persist(off, len)  -> intersecting dirty ranges become durable
//   simulate_crash()   -> every still-dirty range is scrambled (0xCC) —
//                         a pessimistic torn-write model: anything not
//                         explicitly persisted must be assumed lost.
//
// RDMA writes from the NIC land in the same way (DDIO -> cache) and are
// persisted by the daemon's flush step, matching the "characterizing remote
// PMEM over RDMA" guidance of the paper's ref [43].
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/units.h"
#include "mem/segment.h"
#include "pmem/perf_model.h"

namespace portus::pmem {

class PmemDevice final : public mem::MemorySegment {
 public:
  // Signature matches mem::AddressSpace::create<PmemDevice>(name, size, ...).
  PmemDevice(std::string name, Bytes size, std::uint64_t base_addr,
             PmemPerfModel model = PmemPerfModel::optane_interleaved3());

  const PmemPerfModel& perf() const { return model_; }

  // Make [offset, offset+len) durable. Throws on out-of-range.
  void persist(Bytes offset, Bytes len);
  void persist_all();

  // True when no byte of the range is in the volatile (dirty) state.
  bool is_persisted(Bytes offset, Bytes len) const;

  // Total bytes currently dirty (volatile).
  Bytes dirty_bytes() const;

  // Power-failure simulation: scrambles every dirty range with 0xCC and
  // clears the dirty set. Durable data is untouched.
  void simulate_crash();

  std::uint64_t crash_count() const { return crash_count_; }

  // MemorySegment persistence hook.
  void mark_dirty(Bytes offset, Bytes len) override;

 private:
  void persist_locked(Bytes offset, Bytes len);

  // Dirty ranges as a non-overlapping ordered map: start -> end (exclusive).
  // Guarded: real-thread allocator stress tests write through to PMEM.
  mutable std::mutex dirty_mu_;
  std::map<Bytes, Bytes> dirty_;
  PmemPerfModel model_;
  std::uint64_t crash_count_ = 0;
};

}  // namespace portus::pmem
