#include "pmem/perf_model.h"

namespace portus::pmem {

PmemPerfModel PmemPerfModel::optane_interleaved3() { return PmemPerfModel{}; }

PmemPerfModel PmemPerfModel::optane_fsdax_shared() {
  PmemPerfModel m;
  m.write_bw = Bandwidth::gb_per_sec(5.0);
  m.write_degradation = sim::DegradationModel{.beta = 0.35, .n0 = 1};
  return m;
}

}  // namespace portus::pmem
