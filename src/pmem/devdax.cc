#include "pmem/devdax.h"

namespace portus::pmem {

const char* to_string(DaxMode mode) {
  switch (mode) {
    case DaxMode::kFsDax: return "fsdax";
    case DaxMode::kDevDax: return "devdax";
  }
  return "?";
}

}  // namespace portus::pmem
