// PMEM namespaces: how the storage server exposes its DIMMs.
//
// The paper's server splits 6 Optane DIMMs into two interleaved 3-DIMM
// namespaces: one in *fsdax* mode (an ext4-DAX file system stacked with a
// BeeGFS daemon) and one in *devdax* mode (a character device the Portus
// daemon mmaps directly, bypassing every kernel file system layer).
//
// A PmemNamespace couples a PmemDevice with its mode and, for devdax,
// hands out mmap-style direct-access windows; for fsdax, only the
// filesystem layer (storage/beegfs, storage/ext4) is expected to touch it.
#pragma once

#include <memory>
#include <string>

#include "common/error.h"
#include "common/units.h"
#include "pmem/pmem_device.h"

namespace portus::pmem {

enum class DaxMode : std::uint8_t { kFsDax, kDevDax };

const char* to_string(DaxMode mode);

// A direct-access window into a devdax namespace: the simulated equivalent
// of mmap()ing /dev/daxX.Y. Grants raw load/store access plus persist
// control over a sub-range of the device.
class DaxMapping {
 public:
  DaxMapping(PmemDevice& device, Bytes offset, Bytes len)
      : device_{&device}, offset_{offset}, len_{len} {
    PORTUS_CHECK_ARG(offset + len <= device.size(), "DAX mapping out of device bounds");
  }

  Bytes size() const { return len_; }
  // Global address of byte 0 of the mapping (what the daemon stores as a
  // persistent pointer and registers with the RNIC).
  std::uint64_t global_addr() const { return device_->base_addr() + offset_; }

  void write(Bytes off, std::span<const std::byte> data) {
    check(off, data.size());
    device_->write(offset_ + off, data);
  }
  std::vector<std::byte> read(Bytes off, Bytes len) const {
    check(off, len);
    return device_->read(offset_ + off, len);
  }
  void persist(Bytes off, Bytes len) {
    check(off, len);
    device_->persist(offset_ + off, len);
  }
  std::uint32_t crc(Bytes off, Bytes len) const {
    check(off, len);
    return device_->crc(offset_ + off, len);
  }

  PmemDevice& device() { return *device_; }

 private:
  void check(Bytes off, Bytes len) const {
    PORTUS_CHECK_ARG(off + len <= len_ && off + len >= off, "access outside DAX mapping");
  }
  PmemDevice* device_;
  Bytes offset_;
  Bytes len_;
};

class PmemNamespace {
 public:
  PmemNamespace(std::string name, DaxMode mode, std::shared_ptr<PmemDevice> device)
      : name_{std::move(name)}, mode_{mode}, device_{std::move(device)} {
    PORTUS_CHECK_ARG(device_ != nullptr, "namespace requires a device");
  }

  const std::string& name() const { return name_; }
  DaxMode mode() const { return mode_; }
  PmemDevice& device() { return *device_; }
  const PmemDevice& device() const { return *device_; }
  Bytes size() const { return device_->size(); }

  // devdax-only: direct user-space mapping, detouring kernel file systems.
  DaxMapping map(Bytes offset, Bytes len) {
    PORTUS_CHECK_ARG(mode_ == DaxMode::kDevDax,
                     "direct mapping requires devdax mode (fsdax goes through a filesystem)");
    return DaxMapping{*device_, offset, len};
  }

 private:
  std::string name_;
  DaxMode mode_;
  std::shared_ptr<PmemDevice> device_;
};

}  // namespace portus::pmem
