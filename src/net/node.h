// A machine in the cluster: DRAM, CPUs (as a serialization-cost model),
// zero or more GPUs, zero or more PMEM namespaces, and one RDMA NIC.
//
// Nodes also own the per-device bandwidth channels that RDMA memory regions
// reference (DRAM bus, PMEM read/write), and provide helpers that package a
// memory range into an rdma::RegionDesc with the right caps and channels.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "gpu/gpu_device.h"
#include "gpu/peer_mem.h"
#include "mem/address_space.h"
#include "pmem/devdax.h"
#include "rdma/nic.h"
#include "sim/bandwidth_channel.h"
#include "sim/engine.h"

namespace portus::net {

struct NodeSpec {
  std::string name;
  Bytes dram = 1024_GiB;
  int gpu_count = 0;
  gpu::GpuKind gpu_kind = gpu::GpuKind::kV100;
  Bytes pmem_fsdax = 0;   // BeeGFS-PMEM target (ext4-DAX + BeeGFS daemon)
  Bytes pmem_devdax = 0;  // Portus target (direct user-space access)
  rdma::NicSpec nic = rdma::NicSpec::connectx5_100g();
  // CPU-side serialization model (torch.save-style packing of tensors).
  Bandwidth serialize_bw = Bandwidth::gb_per_sec(1.54);
  Bandwidth deserialize_bw = Bandwidth::gb_per_sec(4.2);
  // torch.load's per-tensor module reconstruction ("high model
  // reconstruction overhead", SS III-F): object graph rebuild per layer.
  Duration reconstruct_per_tensor = std::chrono::microseconds{150};
};

class Node {
 public:
  Node(sim::Engine& engine, mem::AddressSpace& addr_space, NodeSpec spec);
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& name() const { return spec_.name; }
  const NodeSpec& spec() const { return spec_; }
  sim::Engine& engine() { return engine_; }

  rdma::RdmaNic& nic() { return *nic_; }
  mem::MemorySegment& dram() { return *dram_; }
  sim::BandwidthChannel& dram_channel() { return *dram_channel_; }

  std::size_t gpu_count() const { return gpus_.size(); }
  gpu::GpuDevice& gpu(std::size_t i) { return *gpus_.at(i); }

  bool has_fsdax() const { return fsdax_ != nullptr; }
  bool has_devdax() const { return devdax_ != nullptr; }
  pmem::PmemNamespace& fsdax() { return *fsdax_; }
  pmem::PmemNamespace& devdax() { return *devdax_; }
  sim::BandwidthChannel& fsdax_write_channel() { return *fsdax_write_ch_; }
  sim::BandwidthChannel& fsdax_read_channel() { return *fsdax_read_ch_; }
  sim::BandwidthChannel& devdax_write_channel() { return *devdax_write_ch_; }
  sim::BandwidthChannel& devdax_read_channel() { return *devdax_read_ch_; }

  // CPU serialization cost (single worker thread packing tensor bytes).
  Duration serialize_time(Bytes n) const { return spec_.serialize_bw.time_for(n); }
  Duration deserialize_time(Bytes n) const { return spec_.deserialize_bw.time_for(n); }

  // --- RegionDesc factories -------------------------------------------------
  // DRAM range [offset, offset+len) of this node.
  rdma::RegionDesc dram_region(Bytes offset, Bytes len,
                               std::uint32_t access = rdma::kAllAccess);
  // devdax PMEM mapping (Portus TensorData regions).
  rdma::RegionDesc pmem_region(pmem::DaxMapping& mapping,
                               std::uint32_t access = rdma::kAllAccess);
  // GPU buffer registered through PeerMem.
  rdma::RegionDesc gpu_region(const gpu::PeerMemRegion& peer,
                              std::uint32_t access = rdma::kAllAccess);

 private:
  sim::Engine& engine_;
  NodeSpec spec_;
  std::unique_ptr<rdma::RdmaNic> nic_;
  std::shared_ptr<mem::MemorySegment> dram_;
  std::unique_ptr<sim::BandwidthChannel> dram_channel_;
  std::vector<std::unique_ptr<gpu::GpuDevice>> gpus_;
  std::unique_ptr<pmem::PmemNamespace> fsdax_;
  std::unique_ptr<pmem::PmemNamespace> devdax_;
  std::unique_ptr<sim::BandwidthChannel> fsdax_read_ch_, fsdax_write_ch_;
  std::unique_ptr<sim::BandwidthChannel> devdax_read_ch_, devdax_write_ch_;
};

}  // namespace portus::net
