// TCP-over-IPoIB control channel.
//
// Portus Client and Daemon exchange *metadata* (model registration packets,
// "DO_CHECKPOINT", completion notifications) over a plain TCP socket running
// on IPoIB — only bulk tensor data takes the RDMA datapath. This models the
// socket as a reliable, ordered message channel with IPoIB latency and a
// modest bandwidth cost (metadata packets are small, so latency dominates).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "common/units.h"
#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace portus::net {

class TcpSocket {
 public:
  // One-way message latency (IPoIB hop through the IB switch).
  static constexpr Duration kLatency = std::chrono::microseconds{25};
  // Effective IPoIB streaming bandwidth (far below native verbs).
  static constexpr double kBytesPerSec = 2.5e9;

  explicit TcpSocket(sim::Engine& engine) : engine_{engine}, inbox_{engine} {}

  // Fire-and-forget reliable send: the message arrives at the peer after
  // latency + size/bandwidth. Throws Disconnected if the socket is closed.
  void send(std::vector<std::byte> message);

  // Awaitable receive; throws Disconnected when the peer closed and the
  // inbox drained.
  auto recv() { return inbox_.recv(); }

  void close();
  bool closed() const { return closed_; }

  static std::pair<std::shared_ptr<TcpSocket>, std::shared_ptr<TcpSocket>> make_pair(
      sim::Engine& engine);

 private:
  sim::Engine& engine_;
  sim::Channel<std::vector<std::byte>> inbox_;
  std::weak_ptr<TcpSocket> peer_;
  bool closed_ = false;
};

// A named listening endpoint ("portusd:9999"). connect() completes the
// three-way handshake after one RTT and yields the client-side socket; the
// server side pops out of accept().
class TcpListener {
 public:
  explicit TcpListener(sim::Engine& engine) : engine_{engine}, backlog_{engine} {}

  sim::SubTask<std::shared_ptr<TcpSocket>> connect();
  auto accept() { return backlog_.recv(); }
  void close() { backlog_.close(); }
  bool closed() const { return backlog_.closed(); }

 private:
  sim::Engine& engine_;
  sim::Channel<std::shared_ptr<TcpSocket>> backlog_;
};

}  // namespace portus::net
