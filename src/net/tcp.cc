#include "net/tcp.h"

#include "sim/task.h"

namespace portus::net {

void TcpSocket::send(std::vector<std::byte> message) {
  if (closed_) throw Disconnected("send on closed TCP socket");
  auto peer = peer_.lock();
  if (!peer || peer->closed_) throw Disconnected("TCP peer is gone");

  const auto transfer = from_seconds(static_cast<double>(message.size()) / kBytesPerSec);
  engine_.schedule(kLatency + transfer,
                   [peer, msg = std::move(message)]() mutable {
                     if (!peer->closed_) peer->inbox_.push(std::move(msg));
                   });
}

void TcpSocket::close() {
  if (closed_) return;
  closed_ = true;
  inbox_.close();
  if (auto peer = peer_.lock(); peer && !peer->closed_) {
    // FIN after the usual latency: the peer's pending recv fails once the
    // inbox drains.
    engine_.schedule(kLatency, [peer] {
      if (!peer->closed_) {
        peer->closed_ = true;
        peer->inbox_.close();
      }
    });
  }
}

std::pair<std::shared_ptr<TcpSocket>, std::shared_ptr<TcpSocket>> TcpSocket::make_pair(
    sim::Engine& engine) {
  auto a = std::make_shared<TcpSocket>(engine);
  auto b = std::make_shared<TcpSocket>(engine);
  a->peer_ = b;
  b->peer_ = a;
  return {a, b};
}

sim::SubTask<std::shared_ptr<TcpSocket>> TcpListener::connect() {
  co_await engine_.sleep(TcpSocket::kLatency * 2);  // SYN / SYN-ACK
  auto [client_side, server_side] = TcpSocket::make_pair(engine_);
  backlog_.push(std::move(server_side));
  co_return client_side;
}

}  // namespace portus::net
