#include "net/node.h"

#include "common/strformat.h"

namespace portus::net {

Node::Node(sim::Engine& engine, mem::AddressSpace& addr_space, NodeSpec spec)
    : engine_{engine}, spec_{std::move(spec)} {
  nic_ = std::make_unique<rdma::RdmaNic>(engine, spec_.name + "/nic", spec_.nic);
  dram_ = addr_space.create_segment(spec_.name + "/dram", mem::MemoryKind::kDram, spec_.dram);
  // DDR4-3200 multi-channel: not a checkpointing bottleneck; kept finite so
  // pathological fan-in still shows up.
  dram_channel_ = std::make_unique<sim::BandwidthChannel>(
      engine, Bandwidth::gb_per_sec(38.0), spec_.name + "/membus");

  for (int i = 0; i < spec_.gpu_count; ++i) {
    gpus_.push_back(std::make_unique<gpu::GpuDevice>(
        engine, addr_space, strf("{}/gpu{}", spec_.name, i), spec_.gpu_kind));
  }

  const auto make_ns = [&](const char* label, Bytes size, pmem::DaxMode mode,
                           const pmem::PmemPerfModel& model) {
    auto device = addr_space.create<pmem::PmemDevice>(
        strf("{}/{}", spec_.name, label), size, model);
    return std::make_unique<pmem::PmemNamespace>(strf("{}/{}", spec_.name, label), mode,
                                                 std::move(device));
  };

  if (spec_.pmem_fsdax > 0) {
    const auto model = pmem::PmemPerfModel::optane_fsdax_shared();
    fsdax_ = make_ns("pmem-fsdax", spec_.pmem_fsdax, pmem::DaxMode::kFsDax, model);
    fsdax_read_ch_ = std::make_unique<sim::BandwidthChannel>(
        engine, model.read_bw, spec_.name + "/fsdax-read");
    fsdax_write_ch_ = std::make_unique<sim::BandwidthChannel>(
        engine, model.write_bw, spec_.name + "/fsdax-write", model.write_degradation);
  }
  if (spec_.pmem_devdax > 0) {
    const auto model = pmem::PmemPerfModel::optane_interleaved3();
    devdax_ = make_ns("pmem-devdax", spec_.pmem_devdax, pmem::DaxMode::kDevDax, model);
    devdax_read_ch_ = std::make_unique<sim::BandwidthChannel>(
        engine, model.read_bw, spec_.name + "/devdax-read");
    devdax_write_ch_ = std::make_unique<sim::BandwidthChannel>(
        engine, model.write_bw, spec_.name + "/devdax-write", model.write_degradation);
  }
}

rdma::RegionDesc Node::dram_region(Bytes offset, Bytes len, std::uint32_t access) {
  PORTUS_CHECK_ARG(offset + len <= dram_->size(), "DRAM region out of bounds");
  return rdma::RegionDesc{
      .segment = dram_.get(),
      .addr = dram_->base_addr() + offset,
      .length = len,
      .access = access,
      .device_channel_read = dram_channel_.get(),
      .device_channel_write = dram_channel_.get(),
  };
}

rdma::RegionDesc Node::pmem_region(pmem::DaxMapping& mapping, std::uint32_t access) {
  PORTUS_CHECK_ARG(devdax_ != nullptr && &mapping.device() == &devdax_->device(),
                   "pmem_region expects a mapping of this node's devdax namespace");
  const auto& model = devdax_->device().perf();
  return rdma::RegionDesc{
      .segment = &devdax_->device(),
      .addr = mapping.global_addr(),
      .length = mapping.size(),
      .access = access,
      .read_cap = model.read_bw,
      .write_cap = model.write_bw,
      .device_channel_read = devdax_read_ch_.get(),
      .device_channel_write = devdax_write_ch_.get(),
  };
}

rdma::RegionDesc Node::gpu_region(const gpu::PeerMemRegion& peer, std::uint32_t access) {
  return rdma::RegionDesc{
      .segment = peer.segment,
      .addr = peer.global_addr,
      .length = peer.size,
      .access = access,
      .phantom = peer.phantom,
      .read_cap = peer.read_limit,
      .write_cap = peer.write_limit,
      // BAR reads and peer writes ride the GPU's PCIe link.
      .device_channel_read = peer.pcie,
      .device_channel_write = peer.pcie,
  };
}

}  // namespace portus::net
