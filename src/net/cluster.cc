#include "net/cluster.h"

#include "common/error.h"
#include "common/strformat.h"

namespace portus::net {

std::unique_ptr<Cluster> Cluster::Builder::build(sim::Engine& engine) {
  PORTUS_CHECK_ARG(!specs_.empty(), "cluster needs at least one node");
  std::unique_ptr<Cluster> cluster{new Cluster{engine}};
  for (auto& spec : specs_) {
    auto node = std::make_unique<Node>(engine, cluster->addr_space_, std::move(spec));
    PORTUS_CHECK_ARG(!cluster->by_name_.contains(node->name()), "duplicate node name");
    cluster->by_name_.emplace(node->name(), node.get());
    cluster->nodes_.push_back(std::move(node));
  }
  return cluster;
}

Node& Cluster::node(const std::string& name) {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) throw NotFound("no such node: " + name);
  return *it->second;
}

TcpListener& Cluster::listen(const std::string& endpoint) {
  auto [it, inserted] = listeners_.try_emplace(endpoint, nullptr);
  if (!inserted) {
    PORTUS_CHECK_ARG(it->second->closed(), "endpoint already bound: " + endpoint);
    retired_listeners_.push_back(std::move(it->second));
  }
  it->second = std::make_unique<TcpListener>(engine_);
  return *it->second;
}

TcpListener& Cluster::endpoint(const std::string& name) {
  const auto it = listeners_.find(name);
  if (it == listeners_.end()) throw NotFound("no such endpoint: " + name);
  return *it->second;
}

std::unique_ptr<Cluster> Cluster::paper_testbed(sim::Engine& engine) {
  return Builder{}
      .add_node(NodeSpec{.name = "client-volta",
                         .gpu_count = 4,
                         .gpu_kind = gpu::GpuKind::kV100,
                         .nic = rdma::NicSpec::connectx5_100g()})
      .add_node(NodeSpec{.name = "client-ampere",
                         .gpu_count = 8,
                         .gpu_kind = gpu::GpuKind::kA40,
                         .nic = rdma::NicSpec::connectx6_100g()})
      .add_node(NodeSpec{.name = "server",
                         .dram = 192_GiB,
                         .pmem_fsdax = 768_GiB,
                         .pmem_devdax = 768_GiB,
                         .nic = rdma::NicSpec::connectx5_100g()})
      .build(engine);
}

std::unique_ptr<Cluster> Cluster::sharded_testbed(sim::Engine& engine, int storage_nodes) {
  PORTUS_CHECK_ARG(storage_nodes >= 1 && storage_nodes <= 64,
                   "sharded testbed takes 1..64 storage nodes");
  Builder b;
  b.add_node(NodeSpec{.name = "client-volta",
                      .gpu_count = 4,
                      .gpu_kind = gpu::GpuKind::kV100,
                      .nic = rdma::NicSpec::connectx5_100g()});
  for (int i = 0; i < storage_nodes; ++i) {
    b.add_node(NodeSpec{.name = strf("pmem{}", i),
                        .dram = 192_GiB,
                        .pmem_devdax = 768_GiB,
                        .nic = rdma::NicSpec::connectx5_100g()});
  }
  return b.build(engine);
}

}  // namespace portus::net
