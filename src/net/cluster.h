// Cluster: the whole simulated testbed in one object.
//
// Owns the global address space, the RDMA fabric, the nodes, and the
// listening endpoints for control-plane TCP. Mirrors the paper's setup:
//
//   Cluster::Builder{}
//       .add_node({.name = "client-volta", .gpu_count = 4,
//                  .gpu_kind = gpu::GpuKind::kV100})
//       .add_node({.name = "server", .pmem_fsdax = 768_GiB,
//                  .pmem_devdax = 768_GiB})
//       .build(engine);
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/address_space.h"
#include "net/node.h"
#include "net/tcp.h"
#include "rdma/fabric.h"
#include "sim/engine.h"

namespace portus::net {

class Cluster {
 public:
  class Builder {
   public:
    Builder& add_node(NodeSpec spec) {
      specs_.push_back(std::move(spec));
      return *this;
    }
    std::unique_ptr<Cluster> build(sim::Engine& engine);

   private:
    std::vector<NodeSpec> specs_;
  };

  sim::Engine& engine() { return engine_; }
  mem::AddressSpace& address_space() { return addr_space_; }
  rdma::Fabric& fabric() { return fabric_; }

  Node& node(const std::string& name);
  std::size_t node_count() const { return nodes_.size(); }

  // Control-plane endpoints ("portusd" on the storage node, etc.). A name
  // whose previous listener has been close()d may be re-bound (a restarted
  // daemon re-listening on its old endpoint); binding a live endpoint twice
  // is still an error.
  TcpListener& listen(const std::string& endpoint);
  TcpListener& endpoint(const std::string& name);

  // The paper's reference testbed: one Client-Volta (4x V100), one
  // Client-Ampere (8x A40), one AEP storage server (2x 768 GiB namespaces).
  static std::unique_ptr<Cluster> paper_testbed(sim::Engine& engine);

  // Portus-Cluster testbed: one Client-Volta plus `storage_nodes` AEP
  // servers named "pmem0".."pmemN-1", each with its own NIC and devdax
  // namespace. Daemons conventionally listen on "portusd<i>".
  static std::unique_ptr<Cluster> sharded_testbed(sim::Engine& engine, int storage_nodes);

 private:
  explicit Cluster(sim::Engine& engine) : engine_{engine}, fabric_{engine} {}

  sim::Engine& engine_;
  mem::AddressSpace addr_space_;
  rdma::Fabric fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<std::string, Node*> by_name_;
  std::unordered_map<std::string, std::unique_ptr<TcpListener>> listeners_;
  // Closed listeners displaced by a re-bind. Kept alive (not destroyed)
  // because the old daemon's accept loop may still be suspended on the old
  // backlog; it wakes with Disconnected on the next engine step.
  std::vector<std::unique_ptr<TcpListener>> retired_listeners_;
};

}  // namespace portus::net
