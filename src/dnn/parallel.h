// Megatron-style model parallelism: tensor parallel (TP) splits every
// weight matrix across GPUs within a node, pipeline parallel (PP) splits
// layer blocks across nodes (Fig. 1 of the paper).
//
// For checkpointing, what matters is the *shard structure*: every rank owns
// a disjoint slice of the model and dumps its own checkpoint; restoring
// requires the complete set. The partitioner turns a full-model spec into
// per-rank shard specs whose bytes sum exactly to the original.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "dnn/model_zoo.h"

namespace portus::dnn {

struct ShardSpec {
  int global_rank = 0;
  int tp_rank = 0;
  int pp_rank = 0;
  ModelSpec spec;  // spec.name carries the rank suffix, e.g. "gpt-22.4b/tp0-pp1"
};

class MegatronPartitioner {
 public:
  MegatronPartitioner(int tensor_parallel, int pipeline_parallel);

  int tensor_parallel() const { return tp_; }
  int pipeline_parallel() const { return pp_; }
  int world_size() const { return tp_ * pp_; }

  // Shards ordered by global rank (pp-major, matching Megatron's grid).
  std::vector<ShardSpec> partition(const ModelSpec& full) const;

 private:
  int tp_;
  int pp_;
};

}  // namespace portus::dnn
