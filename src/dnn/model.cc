#include "dnn/model.h"

#include "common/crc32.h"
#include "common/rng.h"

namespace portus::dnn {

void Model::randomize_weights(std::uint64_t seed) {
  Rng rng{seed};
  for (auto& t : tensors_) {
    if (t.phantom()) continue;
    std::vector<std::byte> data(t.byte_size());
    rng.fill(data);
    t.buffer().upload(data);
  }
}

void Model::mutate_weights(std::uint64_t iteration) {
  for (std::size_t i = 0; i < tensors_.size(); ++i) {
    auto& t = tensors_[i];
    if (t.phantom()) continue;
    Rng rng{iteration * 1000003 + i};
    std::vector<std::byte> patch(std::min<Bytes>(t.byte_size(), 256));
    rng.fill(patch);
    t.buffer().segment().write(t.buffer().offset(), patch);
  }
}

std::uint32_t Model::weights_crc() const {
  Crc32 crc;
  for (const auto& t : tensors_) {
    if (t.phantom()) continue;
    const auto c = t.buffer().segment().crc(t.buffer().offset(), t.byte_size());
    crc.update(&c, sizeof c);
  }
  return crc.value();
}

}  // namespace portus::dnn
