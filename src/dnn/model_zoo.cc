#include "dnn/model_zoo.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "common/strformat.h"

namespace portus::dnn {

namespace {

using namespace std::chrono_literals;

std::vector<ModelSpec> build_zoo() {
  // Table II (layers / params / checkpoint size) + GPT scale points.
  // Iteration times derive from the paper's Fig. 2 overhead shares and the
  // CheckFreq frequencies it quotes (see DESIGN.md SS7).
  return {
      {.name = "alexnet", .layers = 16, .params_millions = 61.1,
       .checkpoint_bytes = 233_MiB, .iteration_time = 45ms},
      {.name = "convnext_base", .layers = 344, .params_millions = 88.6,
       .checkpoint_bytes = 338_MiB, .iteration_time = 160ms},
      {.name = "resnet50", .layers = 161, .params_millions = 25.6,
       .checkpoint_bytes = 97_MiB, .iteration_time = 110ms},
      {.name = "swin_b", .layers = 329, .params_millions = 87.8,
       .checkpoint_bytes = 335_MiB, .iteration_time = 170ms},
      {.name = "vgg19_bn", .layers = 70, .params_millions = 143.7,
       .checkpoint_bytes = 548_MiB, .iteration_time = 180ms},
      {.name = "vit_l_32", .layers = 296, .params_millions = 306.5,
       .checkpoint_bytes = 1169_MiB, .iteration_time = 80ms},
      {.name = "bert", .layers = 397, .params_millions = 336.2,
       .checkpoint_bytes = 1282_MiB, .iteration_time = 320ms},
      // --- extended zoo (the paper evaluates 76 models; its appendix reports
      // them all). Layer/parameter counts follow the torchvision /
      // HuggingFace reference implementations; sizes are params x 4B. ---
      {.name = "squeezenet1_0", .layers = 52, .params_millions = 1.25,
       .checkpoint_bytes = 4800_KiB, .iteration_time = 30ms},
      {.name = "shufflenet_v2_x1_0", .layers = 170, .params_millions = 2.3,
       .checkpoint_bytes = 8800_KiB, .iteration_time = 35ms},
      {.name = "mobilenet_v2", .layers = 158, .params_millions = 3.5,
       .checkpoint_bytes = 14_MiB, .iteration_time = 40ms},
      {.name = "mobilenet_v3_large", .layers = 174, .params_millions = 5.5,
       .checkpoint_bytes = 21_MiB, .iteration_time = 42ms},
      {.name = "efficientnet_b0", .layers = 213, .params_millions = 5.3,
       .checkpoint_bytes = 20_MiB, .iteration_time = 55ms},
      {.name = "efficientnet_b7", .layers = 711, .params_millions = 66.3,
       .checkpoint_bytes = 255_MiB, .iteration_time = 240ms},
      {.name = "googlenet", .layers = 187, .params_millions = 6.6,
       .checkpoint_bytes = 25_MiB, .iteration_time = 50ms},
      {.name = "inception_v3", .layers = 292, .params_millions = 27.2,
       .checkpoint_bytes = 104_MiB, .iteration_time = 95ms},
      {.name = "densenet121", .layers = 364, .params_millions = 8.0,
       .checkpoint_bytes = 31_MiB, .iteration_time = 90ms},
      {.name = "densenet201", .layers = 604, .params_millions = 20.0,
       .checkpoint_bytes = 77_MiB, .iteration_time = 140ms},
      {.name = "resnet18", .layers = 62, .params_millions = 11.7,
       .checkpoint_bytes = 45_MiB, .iteration_time = 45ms},
      {.name = "resnet101", .layers = 314, .params_millions = 44.5,
       .checkpoint_bytes = 171_MiB, .iteration_time = 160ms},
      {.name = "resnet152", .layers = 467, .params_millions = 60.2,
       .checkpoint_bytes = 230_MiB, .iteration_time = 220ms},
      {.name = "resnext50_32x4d", .layers = 161, .params_millions = 25.0,
       .checkpoint_bytes = 96_MiB, .iteration_time = 130ms},
      {.name = "wide_resnet50_2", .layers = 161, .params_millions = 68.9,
       .checkpoint_bytes = 263_MiB, .iteration_time = 150ms},
      {.name = "vgg16", .layers = 32, .params_millions = 138.4,
       .checkpoint_bytes = 528_MiB, .iteration_time = 160ms},
      {.name = "regnet_y_16gf", .layers = 244, .params_millions = 83.6,
       .checkpoint_bytes = 319_MiB, .iteration_time = 180ms},
      {.name = "vit_b_16", .layers = 152, .params_millions = 86.6,
       .checkpoint_bytes = 330_MiB, .iteration_time = 70ms},
      {.name = "vit_b_32", .layers = 152, .params_millions = 88.2,
       .checkpoint_bytes = 337_MiB, .iteration_time = 60ms},
      {.name = "vit_l_16", .layers = 296, .params_millions = 304.3,
       .checkpoint_bytes = 1161_MiB, .iteration_time = 120ms},
      {.name = "swin_t", .layers = 173, .params_millions = 28.3,
       .checkpoint_bytes = 108_MiB, .iteration_time = 90ms},
      {.name = "swin_s", .layers = 329, .params_millions = 49.6,
       .checkpoint_bytes = 190_MiB, .iteration_time = 130ms},
      {.name = "convnext_tiny", .layers = 173, .params_millions = 28.6,
       .checkpoint_bytes = 109_MiB, .iteration_time = 85ms},
      {.name = "convnext_large", .layers = 344, .params_millions = 197.8,
       .checkpoint_bytes = 755_MiB, .iteration_time = 280ms},
      {.name = "distilbert", .layers = 100, .params_millions = 66.0,
       .checkpoint_bytes = 252_MiB, .iteration_time = 120ms},
      {.name = "bert-base", .layers = 199, .params_millions = 110.0,
       .checkpoint_bytes = 420_MiB, .iteration_time = 160ms},
      {.name = "roberta-large", .layers = 392, .params_millions = 355.0,
       .checkpoint_bytes = 1390_MiB, .iteration_time = 330ms},
      {.name = "gpt2", .layers = 148, .params_millions = 124.0,
       .checkpoint_bytes = 474_MiB, .iteration_time = 140ms},
      {.name = "gpt2-medium", .layers = 292, .params_millions = 355.0,
       .checkpoint_bytes = 1355_MiB, .iteration_time = 300ms},
      {.name = "t5-base", .layers = 258, .params_millions = 223.0,
       .checkpoint_bytes = 850_MiB, .iteration_time = 240ms},
      // Megatron GPT family (checkpoint = params x 4B, fp32 master weights).
      {.name = "gpt-1.5b", .layers = 672, .params_millions = 1500.0,
       .checkpoint_bytes = 6_GB, .iteration_time = 300ms,
       .update_fraction = 0.06, .busy_fraction = 0.80},
      {.name = "gpt-4b", .layers = 760, .params_millions = 4000.0,
       .checkpoint_bytes = 16_GB, .iteration_time = 520ms,
       .update_fraction = 0.06, .busy_fraction = 0.80},
      {.name = "gpt-8.3b", .layers = 880, .params_millions = 8300.0,
       .checkpoint_bytes = 33.2_GB, .iteration_time = 780ms,
       .update_fraction = 0.06, .busy_fraction = 0.80},
      {.name = "gpt-10b", .layers = 920, .params_millions = 10000.0,
       .checkpoint_bytes = 40_GB, .iteration_time = 900ms,
       .update_fraction = 0.06, .busy_fraction = 0.80},
      {.name = "gpt-22.4b", .layers = 1100, .params_millions = 22400.0,
       .checkpoint_bytes = 89.6_GB, .iteration_time = 1730ms,
       .update_fraction = 0.06, .busy_fraction = 0.80},
  };
}

std::uint64_t name_seed(const std::string& name) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

const std::vector<ModelSpec>& ModelZoo::all() {
  static const std::vector<ModelSpec> zoo = build_zoo();
  return zoo;
}

bool ModelZoo::has(const std::string& name) {
  const auto& zoo = all();
  return std::any_of(zoo.begin(), zoo.end(),
                     [&](const ModelSpec& s) { return s.name == name; });
}

const ModelSpec& ModelZoo::spec(const std::string& name) {
  for (const auto& s : all()) {
    if (s.name == name) return s;
  }
  throw NotFound("no such model in zoo: " + name);
}

std::vector<std::string> ModelZoo::table2_names() {
  return {"alexnet", "convnext_base", "resnet50", "swin_b", "vgg19_bn", "vit_l_32", "bert"};
}

Model ModelZoo::create(gpu::GpuDevice& gpu, const std::string& name, Options options) {
  return create_from_spec(gpu, spec(name), options);
}

Model ModelZoo::create_from_spec(gpu::GpuDevice& gpu, const ModelSpec& spec, Options options) {
  PORTUS_CHECK_ARG(spec.layers > 0 && spec.checkpoint_bytes > 0, "malformed model spec");
  PORTUS_CHECK_ARG(options.scale > 0.0 && options.scale <= 1.0, "scale must be in (0, 1]");
  PORTUS_CHECK_ARG(!(options.force_phantom && options.force_real),
                   "cannot force both phantom and real payloads");

  const auto total = static_cast<Bytes>(static_cast<double>(spec.checkpoint_bytes) *
                                        options.scale);
  bool phantom = total > kPhantomThreshold;
  if (options.force_phantom) phantom = true;
  if (options.force_real) phantom = false;

  // Deterministic layer-size distribution: weights in [0.2, 2.0) so shapes
  // vary realistically; sizes are multiples of the element size.
  Rng rng{name_seed(spec.name)};
  std::vector<double> weights(static_cast<std::size_t>(spec.layers));
  double weight_sum = 0.0;
  for (auto& w : weights) {
    w = 0.2 + rng.uniform_real(0.0, 1.8);
    weight_sum += w;
  }

  Model model{spec.name, gpu};
  Bytes assigned = 0;
  for (int i = 0; i < spec.layers; ++i) {
    Bytes size;
    if (i + 1 == spec.layers) {
      size = total - assigned;  // exact total on the last tensor
    } else {
      size = static_cast<Bytes>(static_cast<double>(total) *
                                weights[static_cast<std::size_t>(i)] / weight_sum);
    }
    size = std::max<Bytes>(4, size & ~Bytes{3});  // whole f32 elements
    assigned += size;

    TensorMeta meta{
        .name = strf("{}.layer{}.weight", spec.name, i),
        .dtype = DType::kF32,
        .shape = {static_cast<std::int64_t>(size / 4)},
    };
    model.add_tensor(std::move(meta), phantom);
  }

  if (!phantom) model.randomize_weights(options.weight_seed);
  return model;
}

}  // namespace portus::dnn
