#include "dnn/parallel.h"

#include "common/error.h"
#include "common/strformat.h"

namespace portus::dnn {

MegatronPartitioner::MegatronPartitioner(int tensor_parallel, int pipeline_parallel)
    : tp_{tensor_parallel}, pp_{pipeline_parallel} {
  PORTUS_CHECK_ARG(tp_ >= 1 && pp_ >= 1, "parallel degrees must be >= 1");
}

std::vector<ShardSpec> MegatronPartitioner::partition(const ModelSpec& full) const {
  PORTUS_CHECK_ARG(full.layers >= pp_, "fewer layers than pipeline stages");

  std::vector<ShardSpec> shards;
  shards.reserve(static_cast<std::size_t>(world_size()));

  // Pipeline stages take contiguous layer blocks (remainder to the early
  // stages, like Megatron); TP then splits each stage's bytes evenly.
  Bytes bytes_assigned = 0;
  int layers_assigned = 0;
  int rank = 0;
  for (int pp = 0; pp < pp_; ++pp) {
    const int stage_layers = full.layers / pp_ + (pp < full.layers % pp_ ? 1 : 0);
    const Bytes stage_bytes =
        pp + 1 == pp_ ? full.checkpoint_bytes - bytes_assigned
                      : static_cast<Bytes>(static_cast<double>(full.checkpoint_bytes) *
                                           stage_layers / full.layers);
    bytes_assigned += stage_bytes;
    layers_assigned += stage_layers;

    Bytes tp_assigned = 0;
    for (int tp = 0; tp < tp_; ++tp) {
      const Bytes shard_bytes = tp + 1 == tp_
                                    ? stage_bytes - tp_assigned
                                    : stage_bytes / static_cast<Bytes>(tp_);
      tp_assigned += shard_bytes;

      ModelSpec shard = full;
      shard.name = strf("{}/tp{}-pp{}", full.name, tp, pp);
      shard.layers = stage_layers;
      shard.checkpoint_bytes = shard_bytes;
      shard.params_millions = full.params_millions * static_cast<double>(shard_bytes) /
                              static_cast<double>(full.checkpoint_bytes);
      shards.push_back(ShardSpec{.global_rank = rank++, .tp_rank = tp, .pp_rank = pp,
                                 .spec = std::move(shard)});
    }
  }
  PORTUS_CHECK(layers_assigned == full.layers, "pipeline stage layer mismatch");
  PORTUS_CHECK(bytes_assigned == full.checkpoint_bytes, "shard byte accounting mismatch");
  return shards;
}

}  // namespace portus::dnn
