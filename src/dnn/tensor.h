// Tensors: metadata plus a GPU device buffer.
//
// The metadata mirrors what Portus Client ships to the daemon in a MIndex
// record: layer name, dtype, shape, byte size, and the device address the
// NIC will pull from.
#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "common/units.h"
#include "dnn/dtype.h"
#include "gpu/gpu_device.h"

namespace portus::dnn {

struct TensorMeta {
  std::string name;
  DType dtype = DType::kF32;
  std::vector<std::int64_t> shape;

  std::int64_t element_count() const {
    return std::accumulate(shape.begin(), shape.end(), std::int64_t{1},
                           [](std::int64_t a, std::int64_t b) { return a * b; });
  }
  Bytes byte_size() const {
    return static_cast<Bytes>(element_count()) * size_of(dtype);
  }
  std::string shape_string() const;
};

class Tensor {
 public:
  Tensor(TensorMeta meta, gpu::DeviceBuffer buffer) : meta_{std::move(meta)}, buffer_{buffer} {}

  const TensorMeta& meta() const { return meta_; }
  const std::string& name() const { return meta_.name; }
  Bytes byte_size() const { return meta_.byte_size(); }
  gpu::DeviceBuffer& buffer() { return buffer_; }
  const gpu::DeviceBuffer& buffer() const { return buffer_; }
  bool phantom() const { return buffer_.phantom(); }

 private:
  TensorMeta meta_;
  gpu::DeviceBuffer buffer_;
};

}  // namespace portus::dnn
