// Optimizer state. A checkpoint of a training job covers parameters plus
// optimizer state; the paper's Table II sizes are parameter-only, so the
// zoo's defaults match that, and callers opt in to optimizer tensors when an
// experiment needs the full training state.
#pragma once

#include "dnn/model.h"

namespace portus::dnn {

enum class OptimizerKind : std::uint8_t { kNone, kSgdMomentum, kAdam };

const char* to_string(OptimizerKind kind);

// Extra state as a multiple of parameter bytes: momentum 1x, Adam 2x.
double state_multiplier(OptimizerKind kind);

// Appends per-parameter optimizer-state tensors to the model (momentum /
// exp_avg + exp_avg_sq), allocated on the same GPU with the same phantom
// setting as the parameters they shadow.
void attach_optimizer_state(Model& model, OptimizerKind kind);

}  // namespace portus::dnn
