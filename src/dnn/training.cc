#include "dnn/training.h"

#include "common/error.h"

namespace portus::dnn {

sim::SubTask<> NoCheckpoint::on_iteration_end(std::uint64_t) { co_return; }
sim::SubTask<> NoCheckpoint::before_update(std::uint64_t) { co_return; }

sim::Process train(sim::Engine& engine, gpu::GpuDevice& gpu, Model* model,
                   TrainingConfig config, std::uint64_t iterations, CheckpointHook& hook,
                   TrainingStats& stats) {
  PORTUS_CHECK_ARG(config.iteration_time > kZeroDuration, "iteration time must be positive");
  PORTUS_CHECK_ARG(config.update_fraction > 0.0 && config.update_fraction < 1.0,
                   "update fraction must be in (0, 1)");

  const auto update_time = std::chrono::duration_cast<Duration>(
      config.iteration_time * config.update_fraction);
  const auto fb_time = config.iteration_time - update_time;

  const auto traced_span = [&](const char* label) {
    return config.tracer != nullptr
               ? config.tracer->span(label, config.trace_track)
               : sim::Tracer::Span{};
  };

  stats.started = engine.now();
  for (std::uint64_t iter = 1; iter <= iterations; ++iter) {
    // Forward + backward: weights stable, SMs busy.
    {
      auto span = traced_span("F+B");
      gpu.mark_compute_busy(
          std::chrono::duration_cast<Duration>(fb_time * config.busy_fraction));
      co_await engine.sleep(fb_time);
    }

    // Any in-flight snapshot of the weights must finish before U mutates them.
    {
      const Time t0 = engine.now();
      auto span = traced_span("stall:before-update");
      co_await hook.before_update(iter);
      stats.checkpoint_stall += engine.now() - t0;
    }

    // Parameter update.
    {
      auto span = traced_span("U");
      gpu.mark_compute_busy(
          std::chrono::duration_cast<Duration>(update_time * config.busy_fraction));
      co_await engine.sleep(update_time);
    }
    if (model != nullptr && config.mutate_weights && !model->phantom()) {
      model->mutate_weights(iter);
    }

    // Checkpoint trigger point (weights now quiescent until the next U).
    {
      const Time t0 = engine.now();
      auto span = traced_span("stall:checkpoint");
      co_await hook.on_iteration_end(iter);
      stats.checkpoint_stall += engine.now() - t0;
    }
    stats.iterations_done = iter;
  }
  stats.finished = engine.now();
}

}  // namespace portus::dnn
