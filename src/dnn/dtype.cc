#include "dnn/dtype.h"

#include "common/error.h"

namespace portus::dnn {

Bytes size_of(DType t) {
  switch (t) {
    case DType::kF32: return 4;
    case DType::kF16: return 2;
    case DType::kBF16: return 2;
    case DType::kI64: return 8;
    case DType::kI32: return 4;
    case DType::kU8: return 1;
  }
  throw InvalidArgument("unknown dtype");
}

const char* to_string(DType t) {
  switch (t) {
    case DType::kF32: return "float32";
    case DType::kF16: return "float16";
    case DType::kBF16: return "bfloat16";
    case DType::kI64: return "int64";
    case DType::kI32: return "int32";
    case DType::kU8: return "uint8";
  }
  return "?";
}

DType dtype_from_string(std::string_view s) {
  if (s == "float32") return DType::kF32;
  if (s == "float16") return DType::kF16;
  if (s == "bfloat16") return DType::kBF16;
  if (s == "int64") return DType::kI64;
  if (s == "int32") return DType::kI32;
  if (s == "uint8") return DType::kU8;
  throw InvalidArgument("unknown dtype string");
}

}  // namespace portus::dnn
