// Tensor element types.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/units.h"

namespace portus::dnn {

enum class DType : std::uint8_t {
  kF32 = 0,
  kF16 = 1,
  kBF16 = 2,
  kI64 = 3,
  kI32 = 4,
  kU8 = 5,
};

Bytes size_of(DType t);
const char* to_string(DType t);
DType dtype_from_string(std::string_view s);

}  // namespace portus::dnn
