// Model zoo: synthetic models matching the paper's Table II plus the
// Megatron GPT configurations of SS V-E (1.5B..22.4B parameters).
//
// Layer *sizes* are generated deterministically from the model name so that
// every run sees the same tensor layout; totals match the paper's reported
// checkpoint sizes. Models larger than the phantom threshold get phantom
// payloads (timing without byte movement) unless the caller forces real
// contents.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "dnn/model.h"
#include "gpu/gpu_device.h"

namespace portus::dnn {

struct ModelSpec {
  std::string name;
  int layers = 0;            // number of parameter tensors
  double params_millions = 0.0;
  Bytes checkpoint_bytes = 0;
  Duration iteration_time{};    // one training iteration on the paper's GPUs
  double update_fraction = 0.08;  // share of the iteration that mutates weights
  double busy_fraction = 0.85;    // SM occupancy during compute phases
};

class ModelZoo {
 public:
  struct Options {
    double scale = 1.0;        // shrink factor for fast functional tests
    bool force_phantom = false;
    bool force_real = false;
    std::uint64_t weight_seed = 1;
  };

  // Payloads above this threshold default to phantom (no real bytes).
  static constexpr Bytes kPhantomThreshold = 1536_MiB;

  static const std::vector<ModelSpec>& all();
  static const ModelSpec& spec(const std::string& name);
  static bool has(const std::string& name);

  static Model create(gpu::GpuDevice& gpu, const std::string& name, Options options);
  static Model create(gpu::GpuDevice& gpu, const std::string& name) {
    return create(gpu, name, Options{});
  }
  static Model create_from_spec(gpu::GpuDevice& gpu, const ModelSpec& spec, Options options);
  static Model create_from_spec(gpu::GpuDevice& gpu, const ModelSpec& spec) {
    return create_from_spec(gpu, spec, Options{});
  }

  // The seven representative models of Table II, in the paper's order.
  static std::vector<std::string> table2_names();
};

}  // namespace portus::dnn
