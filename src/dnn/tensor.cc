#include "dnn/tensor.h"

#include "common/strformat.h"

namespace portus::dnn {

std::string TensorMeta::shape_string() const {
  std::string out = "(";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out += ", ";
    out += strf("{}", shape[i]);
  }
  out += ")";
  return out;
}

}  // namespace portus::dnn
