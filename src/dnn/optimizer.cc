#include "dnn/optimizer.h"

#include "common/error.h"

namespace portus::dnn {

const char* to_string(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kNone: return "none";
    case OptimizerKind::kSgdMomentum: return "sgd-momentum";
    case OptimizerKind::kAdam: return "adam";
  }
  return "?";
}

double state_multiplier(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kNone: return 0.0;
    case OptimizerKind::kSgdMomentum: return 1.0;
    case OptimizerKind::kAdam: return 2.0;
  }
  throw InvalidArgument("unknown optimizer kind");
}

void attach_optimizer_state(Model& model, OptimizerKind kind) {
  if (kind == OptimizerKind::kNone) return;
  // Snapshot the current parameter list; we append below.
  const std::size_t param_count = model.layer_count();
  for (std::size_t i = 0; i < param_count; ++i) {
    const auto& param = model.tensor(i);
    const bool phantom = param.phantom();
    if (kind == OptimizerKind::kSgdMomentum) {
      TensorMeta meta = param.meta();
      meta.name += ".momentum";
      model.add_tensor(std::move(meta), phantom);
    } else {
      TensorMeta m1 = param.meta();
      m1.name += ".exp_avg";
      model.add_tensor(std::move(m1), phantom);
      TensorMeta m2 = param.meta();
      m2.name += ".exp_avg_sq";
      model.add_tensor(std::move(m2), phantom);
    }
  }
}

}  // namespace portus::dnn
