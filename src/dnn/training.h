// Training-loop simulation (Fig. 8 of the paper): every iteration is a
// forward pass (F), back-propagation (B), and a parameter update (U).
// Weights are *stable* during F and B and mutate only in U — the property
// Portus's asynchronous checkpointing exploits: a checkpoint snapshot taken
// at an iteration boundary stays valid until the next U begins.
//
// Checkpoint policies attach through CheckpointHook:
//   * on_iteration_end(i) fires after U completes (weights quiescent);
//     synchronous policies block here for the full checkpoint.
//   * before_update(i) fires just before U mutates the weights; async
//     policies stall here only if the in-flight snapshot has not finished.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "dnn/model.h"
#include "dnn/model_zoo.h"
#include "gpu/gpu_device.h"
#include "sim/engine.h"
#include "sim/process.h"
#include "sim/task.h"
#include "sim/trace.h"

namespace portus::dnn {

class CheckpointHook {
 public:
  virtual ~CheckpointHook() = default;
  virtual sim::SubTask<> on_iteration_end(std::uint64_t iteration) = 0;
  virtual sim::SubTask<> before_update(std::uint64_t iteration) = 0;
};

// Default: train without checkpointing.
class NoCheckpoint final : public CheckpointHook {
 public:
  sim::SubTask<> on_iteration_end(std::uint64_t) override;
  sim::SubTask<> before_update(std::uint64_t) override;
};

struct TrainingConfig {
  Duration iteration_time{};
  double update_fraction = 0.08;
  double busy_fraction = 0.85;
  // Mutate model weights each update so checkpoint versions differ. Off for
  // phantom/large runs where contents don't matter.
  bool mutate_weights = true;
  // Optional timeline tracing: emits F+B / U / stall spans on `trace_track`.
  sim::Tracer* tracer = nullptr;
  std::string trace_track = "train";

  static TrainingConfig from_spec(const ModelSpec& spec) {
    return TrainingConfig{.iteration_time = spec.iteration_time,
                          .update_fraction = spec.update_fraction,
                          .busy_fraction = spec.busy_fraction};
  }
};

struct TrainingStats {
  std::uint64_t iterations_done = 0;
  Duration checkpoint_stall{0};  // time the loop waited on checkpoint hooks
  Time started{};
  Time finished{};

  Duration wall() const { return finished - started; }
  double iterations_per_second() const {
    const double s = to_seconds(wall());
    return s > 0 ? static_cast<double>(iterations_done) / s : 0.0;
  }
};

// Runs `iterations` training steps of `model` on its GPU. The model pointer
// may be null for pure-timing runs (no weight mutation).
sim::Process train(sim::Engine& engine, gpu::GpuDevice& gpu, Model* model,
                   TrainingConfig config, std::uint64_t iterations, CheckpointHook& hook,
                   TrainingStats& stats);

}  // namespace portus::dnn
