// A DNN model instance resident on one GPU: an ordered list of named
// parameter tensors (and optionally optimizer-state tensors), pre-allocated
// in device memory the way PyTorch lays out a module before training starts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "dnn/tensor.h"
#include "gpu/gpu_device.h"

namespace portus::dnn {

class Model {
 public:
  Model(std::string name, gpu::GpuDevice& gpu) : name_{std::move(name)}, gpu_{&gpu} {}

  const std::string& name() const { return name_; }
  gpu::GpuDevice& gpu() { return *gpu_; }

  void add_tensor(TensorMeta meta, bool phantom) {
    auto buffer = gpu_->alloc(meta.byte_size(), phantom);
    tensors_.emplace_back(std::move(meta), buffer);
  }

  std::size_t layer_count() const { return tensors_.size(); }
  std::vector<Tensor>& tensors() { return tensors_; }
  const std::vector<Tensor>& tensors() const { return tensors_; }
  Tensor& tensor(std::size_t i) { return tensors_.at(i); }

  Bytes total_bytes() const {
    Bytes total = 0;
    for (const auto& t : tensors_) total += t.byte_size();
    return total;
  }

  bool phantom() const {
    return !tensors_.empty() && tensors_.front().phantom();
  }

  // Deterministically initialize all (non-phantom) weights; seed varies the
  // contents so different "training states" are distinguishable in tests.
  void randomize_weights(std::uint64_t seed);

  // Simulate one optimizer step: perturb every tensor's contents (cheaply:
  // first page only) so that checkpoint versions differ across iterations.
  void mutate_weights(std::uint64_t iteration);

  // Aggregate CRC over all tensors, in order (restore verification).
  std::uint32_t weights_crc() const;

 private:
  std::string name_;
  gpu::GpuDevice* gpu_;
  std::vector<Tensor> tensors_;
};

}  // namespace portus::dnn
