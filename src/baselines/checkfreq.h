// CheckFreq-style two-phase asynchronous checkpointing (the paper's
// state-of-the-art baseline, ref [16]).
//
// CheckFreq splits a checkpoint into:
//   snapshot():  pinned-copy of the weights GPU -> DRAM, overlapping the
//                next iteration's forward/backward but required to finish
//                before the next *update* mutates the weights;
//   persist():   serialize the DRAM snapshot and write it to storage in the
//                background.
// A new snapshot cannot start while the previous persist is running (one
// staging buffer), so slow storage throttles the effective checkpoint
// cadence — the behaviour Fig. 15/16 exposes on GPT-22.4B.
//
// Also includes CheckFreq's profile-based frequency tuner: the smallest
// interval whose steady-state overhead stays under a target fraction.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "dnn/model.h"
#include "dnn/training.h"
#include "gpu/copy_engine.h"
#include "net/node.h"
#include "sim/sync.h"
#include "sim/trace.h"
#include "storage/filesystem.h"
#include "storage/serializer.h"

namespace portus::baselines {

class CheckFreqHook final : public dnn::CheckpointHook {
 public:
  struct Stats {
    std::uint64_t snapshots = 0;
    std::uint64_t persists = 0;
    Duration snapshot_time{0};
    Duration persist_time{0};
    std::uint64_t throttled_triggers = 0;  // snapshot delayed by running persist
  };

  CheckFreqHook(net::Node& client_node, gpu::GpuDevice& gpu, dnn::Model& model,
                storage::CheckpointStorage& storage, std::uint64_t interval,
                std::string path_prefix);

  // dnn::CheckpointHook
  sim::SubTask<> on_iteration_end(std::uint64_t iteration) override;
  sim::SubTask<> before_update(std::uint64_t iteration) override;

  // Block until any in-flight persist finishes (end-of-run barrier).
  sim::SubTask<> drain();

  // Optional timeline tracing of snapshot/persist phases.
  void set_tracer(sim::Tracer* tracer, std::string track) {
    tracer_ = tracer;
    trace_track_ = std::move(track);
  }

  const Stats& stats() const { return stats_; }
  std::uint64_t interval() const { return interval_; }
  const std::string& last_persisted_path() const { return last_persisted_path_; }
  // Iteration whose checkpoint is durable on storage (restore point).
  std::uint64_t last_persisted_iteration() const { return last_persisted_iteration_; }

  // CheckFreq's tuner: smallest interval (in iterations) whose checkpoint
  // cost amortizes below `overhead_budget` of training time.
  static std::uint64_t tune_interval(Duration iteration_time, Duration checkpoint_cost,
                                     double overhead_budget = 0.035);

  // CheckFreq's profiling phase: measure one snapshot+persist of `model`
  // against `storage` (virtual time), then pick the interval. This is what
  // the real system runs during its first few iterations.
  static sim::SubTask<std::uint64_t> profile_interval(net::Node& node, gpu::GpuDevice& gpu,
                                                      dnn::Model& model,
                                                      storage::CheckpointStorage& storage,
                                                      Duration iteration_time,
                                                      double overhead_budget = 0.035);

 private:
  sim::Process persist_async(std::uint64_t iteration);

  net::Node& node_;
  gpu::GpuDevice& gpu_;
  dnn::Model& model_;
  storage::CheckpointStorage& storage_;
  std::uint64_t interval_;
  std::string path_prefix_;

  bool snapshot_in_flight_ = false;   // must complete before next update
  std::unique_ptr<sim::SimEvent> snapshot_done_;
  bool persist_in_flight_ = false;
  std::unique_ptr<sim::SimEvent> persist_done_;
  std::string last_persisted_path_;
  std::uint64_t last_persisted_iteration_ = 0;
  std::string previous_path_;
  // Host-side snapshot of real contents, reused by the persist phase.
  std::optional<storage::CheckpointFile> staged_;
  sim::Tracer* tracer_ = nullptr;
  std::string trace_track_;
  Stats stats_;
};

}  // namespace portus::baselines
