// torch.save()-style checkpointing — the traditional datapath of Fig. 3:
//
//   (1) cudaMemcpy DtoH (pageable)  -> main memory        [Table I: 15.5%]
//   (2) serialize tensors + headers into a container file [Table I: 41.7%]
//   (3) syscall write into the target filesystem          [Table I: 30.0% +
//       12.8% inside BeeGFS/ext4]
//
// restore() is the inverse; with GPUDirect Storage enabled the file bytes
// flow straight to GPU memory, but the structured-file deserialization cost
// remains (SS III-F).
#pragma once

#include <string>

#include "dnn/model.h"
#include "gpu/copy_engine.h"
#include "net/node.h"
#include "sim/task.h"
#include "storage/filesystem.h"
#include "storage/serializer.h"

namespace portus::baselines {

class TorchSaveCheckpointer {
 public:
  struct CheckpointTimings {
    Duration dtoh{0};
    Duration serialize{0};
    Duration fs_write{0};
    Duration total{0};
  };
  struct RestoreTimings {
    Duration fs_read{0};
    Duration deserialize{0};
    Duration htod{0};
    Duration total{0};
  };

  TorchSaveCheckpointer(net::Node& client_node, gpu::GpuDevice& gpu,
                        storage::CheckpointStorage& storage)
      : node_{client_node}, gpu_{gpu}, storage_{storage} {}

  // Synchronous checkpoint of the full model state to `path`.
  sim::SubTask<CheckpointTimings> checkpoint(dnn::Model& model, std::string path);

  // Restore `model`'s weights from `path`. When `gpu_direct` is set, file
  // bytes bypass main memory (GDS) — only valid for timing runs or real
  // contents smaller than the staging the serializer needs; the functional
  // path (gpu_direct = false) round-trips and verifies real bytes.
  sim::SubTask<RestoreTimings> restore(dnn::Model& model, std::string path,
                                       bool gpu_direct = false);

 private:
  net::Node& node_;
  gpu::GpuDevice& gpu_;
  storage::CheckpointStorage& storage_;
};

}  // namespace portus::baselines
