#include "baselines/checkfreq.h"

#include <cmath>

#include "common/strformat.h"

namespace portus::baselines {

CheckFreqHook::CheckFreqHook(net::Node& client_node, gpu::GpuDevice& gpu, dnn::Model& model,
                             storage::CheckpointStorage& storage, std::uint64_t interval,
                             std::string path_prefix)
    : node_{client_node},
      gpu_{gpu},
      model_{model},
      storage_{storage},
      interval_{interval},
      path_prefix_{std::move(path_prefix)} {
  PORTUS_CHECK_ARG(interval_ >= 1, "checkpoint interval must be >= 1");
}

std::uint64_t CheckFreqHook::tune_interval(Duration iteration_time, Duration checkpoint_cost,
                                           double overhead_budget) {
  PORTUS_CHECK_ARG(overhead_budget > 0.0, "overhead budget must be positive");
  const double iters = to_seconds(checkpoint_cost) /
                       (overhead_budget * to_seconds(iteration_time));
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(iters)));
}

sim::SubTask<std::uint64_t> CheckFreqHook::profile_interval(
    net::Node& node, gpu::GpuDevice& gpu, dnn::Model& model,
    storage::CheckpointStorage& storage, Duration iteration_time, double overhead_budget) {
  auto& engine = gpu.engine();
  const Time t0 = engine.now();

  // One measured snapshot + persist, identical to the steady-state path.
  gpu::CopyEngine copier{gpu};
  for (auto& tensor : model.tensors()) {
    co_await copier.dtoh_time_only(tensor.byte_size(), /*pinned=*/true);
  }
  const Bytes container = storage::CheckpointSerializer::container_size(model);
  co_await engine.sleep(node.serialize_time(container));
  co_await storage.write_file("/checkfreq-profile.tmp", container, nullptr);
  const Duration cost = engine.now() - t0;
  co_await storage.remove("/checkfreq-profile.tmp");

  co_return tune_interval(iteration_time, cost, overhead_budget);
}

sim::SubTask<> CheckFreqHook::on_iteration_end(std::uint64_t iteration) {
  if (iteration % interval_ != 0) co_return;
  auto& engine = gpu_.engine();

  // One staging buffer: a still-running persist blocks the next snapshot.
  if (persist_in_flight_) {
    ++stats_.throttled_triggers;
    co_await persist_done_->wait();
  }

  snapshot_in_flight_ = true;
  snapshot_done_ = std::make_unique<sim::SimEvent>(engine);
  persist_in_flight_ = true;
  persist_done_ = std::make_unique<sim::SimEvent>(engine);
  engine.spawn(persist_async(iteration));
}

sim::SubTask<> CheckFreqHook::before_update(std::uint64_t) {
  if (snapshot_in_flight_) {
    co_await snapshot_done_->wait();
  }
}

sim::SubTask<> CheckFreqHook::drain() {
  if (persist_in_flight_) {
    co_await persist_done_->wait();
  }
}

sim::Process CheckFreqHook::persist_async(std::uint64_t iteration) {
  auto& engine = gpu_.engine();

  // Phase 1 — snapshot: pinned DtoH, overlapping the next iteration's F/B.
  {
    auto span = tracer_ != nullptr ? tracer_->span("snapshot", trace_track_)
                                   : sim::Tracer::Span{};
    const Time t0 = engine.now();
    gpu::CopyEngine copier{gpu_};
    storage::CheckpointFile file;
    file.model_name = model_.name();
    const bool phantom = model_.phantom();
    for (auto& tensor : model_.tensors()) {
      co_await copier.dtoh_time_only(tensor.byte_size(), /*pinned=*/true);
      if (!phantom) {
        storage::SerializedTensor st;
        st.meta = tensor.meta();
        st.data = tensor.buffer().download();
        file.tensors.push_back(std::move(st));
      }
    }
    staged_ = std::move(file);
    stats_.snapshot_time += engine.now() - t0;
    ++stats_.snapshots;
    snapshot_in_flight_ = false;
    snapshot_done_->set();
  }

  // Phase 2 — persist: serialize the snapshot and write it out, replacing
  // the previous checkpoint file only after the new one is durable.
  {
    auto span = tracer_ != nullptr ? tracer_->span("persist", trace_track_)
                                   : sim::Tracer::Span{};
    const Time t0 = engine.now();
    const bool phantom = staged_->tensors.empty() && model_.phantom();
    const Bytes container_size = storage::CheckpointSerializer::container_size(model_);
    co_await engine.sleep(node_.serialize_time(container_size));

    std::vector<std::byte> container;
    if (!phantom) container = storage::CheckpointSerializer::serialize(*staged_);
    staged_.reset();

    const std::string path = strf("{}.iter{}", path_prefix_, iteration);
    co_await storage_.write_file(path, container_size, phantom ? nullptr : &container);
    if (!previous_path_.empty()) {
      co_await storage_.remove(previous_path_);
    }
    previous_path_ = path;
    last_persisted_path_ = path;
    last_persisted_iteration_ = iteration;
    stats_.persist_time += engine.now() - t0;
    ++stats_.persists;
    persist_in_flight_ = false;
    persist_done_->set();
  }
}

}  // namespace portus::baselines
