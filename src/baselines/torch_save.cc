#include "baselines/torch_save.h"

namespace portus::baselines {

sim::SubTask<TorchSaveCheckpointer::CheckpointTimings> TorchSaveCheckpointer::checkpoint(
    dnn::Model& model, std::string path) {
  auto& engine = gpu_.engine();
  CheckpointTimings t;
  const Time start = engine.now();

  // (1) GPU -> main memory, pageable staging buffers, tensor by tensor.
  gpu::CopyEngine copier{gpu_};
  storage::CheckpointFile file;
  file.model_name = model.name();
  const bool phantom = model.phantom();
  {
    const Time t0 = engine.now();
    for (auto& tensor : model.tensors()) {
      co_await copier.dtoh_time_only(tensor.byte_size(), /*pinned=*/false);
      if (!phantom) {
        storage::SerializedTensor st;
        st.meta = tensor.meta();
        st.data = tensor.buffer().download();
        file.tensors.push_back(std::move(st));
      }
    }
    t.dtoh = engine.now() - t0;
  }

  // (2) Serialization: metadata headers + packing into one container.
  std::vector<std::byte> container;
  Bytes container_size = 0;
  {
    const Time t0 = engine.now();
    container_size = storage::CheckpointSerializer::container_size(model);
    co_await engine.sleep(node_.serialize_time(container_size));
    if (!phantom) {
      container = storage::CheckpointSerializer::serialize(file);
      PORTUS_CHECK(container.size() == container_size,
                   "serializer size model out of sync with format");
    }
    t.serialize = engine.now() - t0;
  }

  // (3) Kernel crossing into the target filesystem.
  {
    const Time t0 = engine.now();
    co_await storage_.write_file(std::move(path), container_size,
                                 phantom ? nullptr : &container);
    t.fs_write = engine.now() - t0;
  }

  t.total = engine.now() - start;
  co_return t;
}

sim::SubTask<TorchSaveCheckpointer::RestoreTimings> TorchSaveCheckpointer::restore(
    dnn::Model& model, std::string path, bool gpu_direct) {
  auto& engine = gpu_.engine();
  RestoreTimings t;
  const Time start = engine.now();

  std::vector<std::byte> container;
  Bytes size = 0;
  {
    const Time t0 = engine.now();
    if (gpu_direct) {
      size = co_await storage_.read_file_time_only(path, /*gpu_direct=*/true);
    } else {
      container = co_await storage_.read_file(path);
      size = storage_.file_size(path);
    }
    t.fs_read = engine.now() - t0;
  }

  {
    const Time t0 = engine.now();
    co_await engine.sleep(node_.deserialize_time(size));
    // Per-layer module reconstruction (SS III-F).
    co_await engine.sleep(node_.spec().reconstruct_per_tensor *
                          static_cast<int>(model.layer_count()));
    if (!container.empty()) {
      const auto file = storage::CheckpointSerializer::deserialize(container);
      PORTUS_CHECK(file.model_name == model.name(), "restoring the wrong model");
      PORTUS_CHECK(file.tensors.size() == model.layer_count(),
                   "checkpoint tensor count does not match the model");
      for (std::size_t i = 0; i < file.tensors.size(); ++i) {
        model.tensor(i).buffer().upload(file.tensors[i].data);
      }
    }
    t.deserialize = engine.now() - t0;
  }

  if (!gpu_direct) {
    // Main memory -> GPU for every tensor.
    const Time t0 = engine.now();
    gpu::CopyEngine copier{gpu_};
    for (auto& tensor : model.tensors()) {
      co_await copier.htod_time_only(tensor.byte_size(), /*pinned=*/true);
    }
    t.htod = engine.now() - t0;
  }

  t.total = engine.now() - start;
  co_return t;
}

}  // namespace portus::baselines
