// NVIDIA PeerMem (nv_peer_mem) simulation: exposes GPU device memory to the
// RDMA NIC so memory regions can be registered directly on GPU buffers.
//
// Registration pins the GPU pages and installs BAR mappings; the returned
// descriptor carries the BAR read cap that governs server-initiated
// one-sided READs of GPU memory (Fig. 10(b): ~5.8 GB/s, "30% less than
// DRAM") and the unaffected write limit (Fig. 10(d)).
#pragma once

#include "common/units.h"
#include "gpu/gpu_device.h"
#include "sim/task.h"

namespace portus::gpu {

struct PeerMemRegion {
  std::uint64_t global_addr = 0;
  Bytes size = 0;
  bool phantom = false;
  mem::MemorySegment* segment = nullptr;
  Bandwidth read_limit = Bandwidth::unlimited();   // BAR-capped
  Bandwidth write_limit = Bandwidth::unlimited();
  sim::BandwidthChannel* pcie = nullptr;  // the owning GPU's PCIe link
};

class PeerMem {
 public:
  // Pin `buffer` and build its BAR mapping. Cost model: fixed ioctl/pinning
  // latency plus a per-page table-update term.
  static sim::SubTask<PeerMemRegion> register_buffer(GpuDevice& gpu, DeviceBuffer buffer);

  static constexpr Duration kBaseLatency = std::chrono::microseconds{180};
  static constexpr Duration kPerMiB = std::chrono::nanoseconds{900};
};

}  // namespace portus::gpu
