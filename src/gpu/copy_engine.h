// Simulated cudaMemcpy: host<->device copies over the GPU's PCIe link.
//
// This is the "GPU to Main Memory" stage of the traditional checkpointing
// path (Table I: 15.5% of checkpoint time). torch.save()-style baselines use
// *pageable* staging buffers (~4.1 GB/s); CheckFreq-style snapshots use
// pinned buffers. Copies contend on the per-GPU PCIe channel, so an async
// snapshot overlapping training shares the link realistically.
#pragma once

#include "common/units.h"
#include "gpu/gpu_device.h"
#include "mem/segment.h"
#include "sim/task.h"

namespace portus::gpu {

class CopyEngine {
 public:
  explicit CopyEngine(GpuDevice& gpu) : gpu_{&gpu} {}

  // Device -> host. Moves real bytes unless the buffer is phantom.
  sim::SubTask<> dtoh(DeviceBuffer src, mem::MemorySegment& dst, Bytes dst_offset,
                      bool pinned = false);

  // Host -> device.
  sim::SubTask<> htod(const mem::MemorySegment& src, Bytes src_offset, DeviceBuffer dst,
                      bool pinned = false);

  // Pure-time variants used when the host side is an anonymous staging
  // buffer that does not live in a named segment.
  sim::SubTask<> dtoh_time_only(Bytes bytes, bool pinned = false);
  sim::SubTask<> htod_time_only(Bytes bytes, bool pinned = false);

  static constexpr Duration kLaunchLatency = std::chrono::microseconds{12};

 private:
  GpuDevice* gpu_;
};

}  // namespace portus::gpu
