#include "gpu/copy_engine.h"

namespace portus::gpu {

namespace {

sim::SubTask<> timed_transfer(GpuDevice& gpu, Bytes bytes, Bandwidth cap) {
  co_await gpu.engine().sleep(CopyEngine::kLaunchLatency);
  co_await gpu.pcie().transfer(bytes, cap);
}

}  // namespace

sim::SubTask<> CopyEngine::dtoh(DeviceBuffer src, mem::MemorySegment& dst, Bytes dst_offset,
                                bool pinned) {
  PORTUS_CHECK_ARG(src.valid(), "dtoh from invalid buffer");
  const auto cap = pinned ? gpu_->spec().dtoh_pinned : gpu_->spec().dtoh_pageable;
  co_await timed_transfer(*gpu_, src.size(), cap);
  if (!src.phantom()) {
    mem::copy_bytes(dst, dst_offset, src.segment(), src.offset(), src.size());
  }
}

sim::SubTask<> CopyEngine::htod(const mem::MemorySegment& src, Bytes src_offset,
                                DeviceBuffer dst, bool pinned) {
  PORTUS_CHECK_ARG(dst.valid(), "htod to invalid buffer");
  const auto cap = pinned ? gpu_->spec().htod : min(gpu_->spec().htod, gpu_->spec().dtoh_pageable);
  co_await timed_transfer(*gpu_, dst.size(), cap);
  if (!dst.phantom()) {
    mem::copy_bytes(dst.segment(), dst.offset(), src, src_offset, dst.size());
  }
}

sim::SubTask<> CopyEngine::dtoh_time_only(Bytes bytes, bool pinned) {
  const auto cap = pinned ? gpu_->spec().dtoh_pinned : gpu_->spec().dtoh_pageable;
  co_await timed_transfer(*gpu_, bytes, cap);
}

sim::SubTask<> CopyEngine::htod_time_only(Bytes bytes, bool pinned) {
  const auto cap = pinned ? gpu_->spec().htod : min(gpu_->spec().htod, gpu_->spec().dtoh_pageable);
  co_await timed_transfer(*gpu_, bytes, cap);
}

}  // namespace portus::gpu
