#include "gpu/gpu_device.h"

#include <algorithm>

namespace portus::gpu {

GpuSpec GpuSpec::v100() {
  return GpuSpec{
      .model = "NVIDIA V100",
      .memory = 32_GiB,
      .dtoh_pageable = Bandwidth::gb_per_sec(4.1),
      .dtoh_pinned = Bandwidth::gb_per_sec(11.0),
      .htod = Bandwidth::gb_per_sec(10.5),
      .bar_read_limit = Bandwidth::gb_per_sec(5.8),
      .peer_write_limit = Bandwidth::gb_per_sec(10.0),
  };
}

GpuSpec GpuSpec::a40() {
  return GpuSpec{
      .model = "NVIDIA A40",
      .memory = 48_GiB,
      .dtoh_pageable = Bandwidth::gb_per_sec(4.3),
      .dtoh_pinned = Bandwidth::gb_per_sec(12.0),
      .htod = Bandwidth::gb_per_sec(11.5),
      .bar_read_limit = Bandwidth::gb_per_sec(5.8),
      .peer_write_limit = Bandwidth::gb_per_sec(10.5),
  };
}

GpuSpec GpuSpec::of(GpuKind kind) {
  switch (kind) {
    case GpuKind::kV100: return v100();
    case GpuKind::kA40: return a40();
  }
  throw InvalidArgument("unknown GPU kind");
}

void DeviceBuffer::upload(std::span<const std::byte> host_data) {
  PORTUS_CHECK_ARG(valid(), "upload to invalid buffer");
  PORTUS_CHECK_ARG(host_data.size() <= size_, "upload larger than buffer");
  if (phantom_) return;
  segment_->write(offset_, host_data);
}

std::vector<std::byte> DeviceBuffer::download() const {
  PORTUS_CHECK_ARG(valid(), "download from invalid buffer");
  if (phantom_) return std::vector<std::byte>(size_);
  return segment_->read(offset_, size_);
}

std::uint32_t DeviceBuffer::crc() const {
  PORTUS_CHECK_ARG(valid(), "crc of invalid buffer");
  if (phantom_) return 0;
  return segment_->crc(offset_, size_);
}

GpuDevice::GpuDevice(sim::Engine& engine, mem::AddressSpace& addr_space, std::string name,
                     GpuKind kind)
    : engine_{engine}, name_{std::move(name)}, spec_{GpuSpec::of(kind)} {
  memory_ = addr_space.create_segment(name_ + "/hbm", mem::MemoryKind::kGpu, spec_.memory);
  // PCIe 4.0 x16 link: ~32 GB/s raw; effective DMA engine limit ~24 GB/s.
  pcie_ = std::make_unique<sim::BandwidthChannel>(engine, Bandwidth::gb_per_sec(24.0),
                                                  name_ + "/pcie");
}

DeviceBuffer GpuDevice::alloc(Bytes size, bool phantom) {
  constexpr Bytes kAlign = 512;  // CUDA allocation granularity (simplified)
  const Bytes aligned = (size + kAlign - 1) & ~(kAlign - 1);
  if (next_offset_ + aligned > memory_->size()) {
    throw ResourceExhausted("GPU " + name_ + " out of device memory");
  }
  const Bytes offset = next_offset_;
  next_offset_ += aligned;
  return DeviceBuffer{memory_.get(), offset, size, phantom};
}

void GpuDevice::mark_compute_busy(Duration d) {
  if (d <= kZeroDuration) return;
  const Time start = engine_.now();
  const Time end = start + d;
  if (!busy_.empty() && busy_.back().second >= start) {
    busy_.back().second = std::max(busy_.back().second, end);
  } else {
    busy_.emplace_back(start, end);
  }
}

Duration GpuDevice::busy_within(Time from, Time to) const {
  Duration total{0};
  for (const auto& [s, e] : busy_) {
    if (e <= from) continue;
    if (s >= to) break;
    total += std::min(e, to) - std::max(s, from);
  }
  return total;
}

double GpuDevice::utilization(Time from, Time to) const {
  if (to <= from) return 0.0;
  return to_seconds(busy_within(from, to)) / to_seconds(to - from);
}

}  // namespace portus::gpu
