// Simulated GPU: device memory, a buffer allocator, a compute-occupancy
// tracker (for the Fig. 16 utilization traces), and the PCIe/BAR
// characteristics the Portus datapath depends on.
//
// The property central to the paper's Fig. 10: remote reads of GPU memory
// (server-initiated one-sided RDMA READ through NVIDIA PeerMem) go through
// the PCIe Base Address Register window, which disables prefetching, capping
// read bandwidth at ~5.8 GB/s on this hardware; writes into GPU memory are
// not affected by the BAR unit and run at full path speed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/units.h"
#include "mem/address_space.h"
#include "mem/segment.h"
#include "sim/bandwidth_channel.h"
#include "sim/engine.h"

namespace portus::gpu {

enum class GpuKind : std::uint8_t { kV100, kA40 };

struct GpuSpec {
  const char* model;
  Bytes memory;
  // Host<->device copy bandwidths over PCIe (what cudaMemcpy achieves).
  Bandwidth dtoh_pageable;  // torch.save path: pageable staging buffers
  Bandwidth dtoh_pinned;
  Bandwidth htod;
  // Peer-to-peer RDMA limits through the NIC (NVIDIA PeerMem).
  Bandwidth bar_read_limit;   // remote READ of GPU memory (BAR, no prefetch)
  Bandwidth peer_write_limit; // remote WRITE into GPU memory (unaffected)

  static GpuSpec v100();
  static GpuSpec a40();
  static GpuSpec of(GpuKind kind);
};

// A range of device memory. `phantom` buffers take part in every control
// path and timing model but move no real bytes — used for >10 GiB models
// whose payloads would not fit in host RAM during simulation.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(mem::MemorySegment* segment, Bytes offset, Bytes size, bool phantom)
      : segment_{segment}, offset_{offset}, size_{size}, phantom_{phantom} {}

  bool valid() const { return segment_ != nullptr; }
  Bytes size() const { return size_; }
  Bytes offset() const { return offset_; }
  bool phantom() const { return phantom_; }
  std::uint64_t global_addr() const { return segment_->base_addr() + offset_; }
  mem::MemorySegment& segment() const { return *segment_; }

  // Host-side accessors (the simulated cudaMemcpy data plane; timing is the
  // copy engine's concern). No-ops on phantom buffers.
  void upload(std::span<const std::byte> host_data);
  std::vector<std::byte> download() const;
  std::uint32_t crc() const;

 private:
  mem::MemorySegment* segment_ = nullptr;
  Bytes offset_ = 0;
  Bytes size_ = 0;
  bool phantom_ = false;
};

class GpuDevice {
 public:
  GpuDevice(sim::Engine& engine, mem::AddressSpace& addr_space, std::string name, GpuKind kind);

  const std::string& name() const { return name_; }
  const GpuSpec& spec() const { return spec_; }
  sim::Engine& engine() { return engine_; }

  // Bump allocation of device memory (DNN frameworks pre-allocate tensors
  // once per training job; nothing in the reproduction frees mid-job).
  DeviceBuffer alloc(Bytes size, bool phantom = false);
  Bytes allocated() const { return next_offset_; }
  Bytes capacity() const { return memory_->size(); }

  mem::MemorySegment& memory() { return *memory_; }

  // PCIe link shared by all copies touching this GPU.
  sim::BandwidthChannel& pcie() { return *pcie_; }

  // --- compute occupancy (Fig. 16 GPU utilization traces) ---
  // Mark the SMs busy for [now, now+d). Overlapping marks are merged.
  void mark_compute_busy(Duration d);
  // Busy time within [from, to).
  Duration busy_within(Time from, Time to) const;
  double utilization(Time from, Time to) const;

 private:
  sim::Engine& engine_;
  std::string name_;
  GpuSpec spec_;
  std::shared_ptr<mem::MemorySegment> memory_;
  std::unique_ptr<sim::BandwidthChannel> pcie_;
  Bytes next_offset_ = 0;
  std::vector<std::pair<Time, Time>> busy_;  // sorted, non-overlapping
};

}  // namespace portus::gpu
