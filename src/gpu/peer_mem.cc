#include "gpu/peer_mem.h"

namespace portus::gpu {

sim::SubTask<PeerMemRegion> PeerMem::register_buffer(GpuDevice& gpu, DeviceBuffer buffer) {
  PORTUS_CHECK_ARG(buffer.valid(), "cannot register an invalid buffer");
  const auto mib = static_cast<double>(buffer.size()) / static_cast<double>(1_MiB);
  co_await gpu.engine().sleep(kBaseLatency +
                              Duration{static_cast<Duration::rep>(mib * kPerMiB.count())});
  co_return PeerMemRegion{
      .global_addr = buffer.global_addr(),
      .size = buffer.size(),
      .phantom = buffer.phantom(),
      .segment = &buffer.segment(),
      .read_limit = gpu.spec().bar_read_limit,
      .write_limit = gpu.spec().peer_write_limit,
      .pcie = &gpu.pcie(),
  };
}

}  // namespace portus::gpu
