// Extent planner: the coalescing layer between MIndex::chunk_spans and the
// pipelined datapath (see DESIGN.md §12).
//
// DNN checkpoints are dominated by op count, not bytes: a transformer has
// thousands of sub-chunk tensors (biases, norms, embedding rows) and each
// one used to cost a full WQE + completion. The planner walks the chunked
// span list in slot-layout order and fuses runs of *whole small tensors*
// whose slot placements are PMEM-dense into merged extents; one extent
// becomes one multi-SGE work request that gathers N GPU buffers into one
// contiguous slot range (or scatters it back on restore).
//
// Fusion rules — a span joins the open run only if ALL hold:
//   * coalescing is on (threshold > 0, max_sges > 1);
//   * the span is a whole tensor (offset 0, len == tensor size) no larger
//     than coalesce_threshold — partial spans of chunked large tensors
//     always stay standalone;
//   * it is PMEM-dense: its offset_in_slot is exactly the run's end (a
//     dtype-alignment pad gap breaks the run);
//   * the run has room (< max_sges members);
//   * it is in the same transfer class as the run (incremental mode must
//     never fuse a dirty RDMA READ with a clean PMEM-local copy).
// Zero-length tensors become standalone empty extents and do NOT interrupt
// a dense run on either side (they occupy no bytes).
//
// With threshold 0 (or max_sges 1) every span maps to one single-member
// extent in input order — bit-for-bit the pre-coalescing work list.
#pragma once

#include <vector>

#include "core/daemon/mindex.h"

namespace portus::core {

struct ExtentConfig {
  Bytes coalesce_threshold = 0;  // fuse whole tensors <= this; 0 = off
  int max_sges = 1;              // gather-list budget per work request
};

// One planned datapath unit: a dense run of chunk spans moved by one work
// request. A single-member extent is exactly its span; a multi-member
// extent covers [offset_in_slot, offset_in_slot + len) with member k's
// bytes at slot offset offset_in_slot + sum(members[0..k).len).
struct Extent {
  std::vector<ChunkSpan> members;
  Bytes offset_in_slot = 0;
  Bytes len = 0;  // sum of member lengths (members are PMEM-dense)

  bool coalesced() const { return members.size() > 1; }
};

// Plan the work list. `dirty` is the incremental-checkpoint class vector
// (per tensor, indexed by ChunkSpan::tensor); empty means every tensor is
// in the same class (full checkpoint / restore). Never reorders spans.
std::vector<Extent> plan_extents(const std::vector<ChunkSpan>& spans,
                                 const std::vector<IndexedTensor>& tensors,
                                 const ExtentConfig& config,
                                 const std::vector<bool>& dirty = {});

}  // namespace portus::core
