// Pipelined datapath engine shared by checkpoint (GPU -> PMEM pull) and
// restore (PMEM -> GPU push).
//
// The serial daemon awaited one read_sync/write_sync per tensor, so per-op
// latency — not link bandwidth — bounded the many-small-tensor models.
// PipelinedTransfer instead keeps a bounded window of chunks in flight:
//
//   * Chunks are assigned round-robin to the session's QP *lanes* (one lane
//     per striped QP; PMEM-local copies of incremental mode ride lanes too,
//     they just never touch the NIC). Each lane admits up to `window`
//     outstanding chunks; the head of the work list stalls only when its
//     lane is full, and every drained completion frees exactly one slot.
//   * Completions are consumed wr_id-keyed from ONE CompletionQueue shared
//     by all lanes, so a single coroutine drives any number of QPs.
//   * A checkpoint chunk carries a persist range: the moment its bytes land,
//     they are flushed into the persistence domain — the flush of chunk k
//     overlaps the RDMA pull of chunk k+1. The caller still owns the final
//     catch-all persist + persist_overhead sleep before txn.commit(), which
//     keeps window=1 timing identical to the old serial loop.
//
// On a failed completion the engine stops admitting new chunks, drains
// everything still in flight (RC ordering: later WQEs cannot be recalled),
// and then throws — no half-tracked windows left behind.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/units.h"
#include "pmem/pmem_device.h"
#include "rdma/completion_queue.h"
#include "rdma/queue_pair.h"
#include "sim/bandwidth_channel.h"
#include "sim/engine.h"
#include "sim/process.h"
#include "sim/task.h"

namespace portus::core {

// One unit of pipelined work: a chunk_bytes-sized slice of a tensor (or the
// whole tensor when it is smaller than one chunk / chunking is off).
struct TransferChunk {
  enum class Kind : std::uint8_t {
    kRead,       // one-sided RDMA READ: remote GPU -> local slot (checkpoint)
    kWrite,      // one-sided RDMA WRITE: local slot -> remote GPU (restore)
    kLocalCopy,  // PMEM-local copy from the previous DONE slot (incremental)
  };

  Kind kind = Kind::kRead;
  std::size_t tensor_index = 0;
  Bytes len = 0;

  // RDMA chunks (kRead / kWrite).
  std::uint32_t lkey = 0;
  std::uint64_t local_addr = 0;
  std::uint32_t rkey = 0;
  std::uint64_t remote_addr = 0;

  // Local-copy chunks (kLocalCopy): PMEM device offsets.
  Bytes dst_offset = 0;
  Bytes src_offset = 0;
  bool phantom = false;  // move time but no bytes (phantom payloads)

  // When set, flush [persist_offset, persist_offset + len) as soon as this
  // chunk's completion drains (checkpoint path only).
  bool persist_after = false;
  Bytes persist_offset = 0;

  // When set, CRC the landed bytes right after the chunk completes (before
  // anything can overwrite them) and record it under (tensor_index,
  // tensor_offset) for tensor_crcs(). Checkpoint integrity path only; never
  // set on phantom chunks (their payload is simulated, not materialized).
  bool collect_crc = false;
  Bytes tensor_offset = 0;  // byte offset of this chunk within its tensor

  // Coalesced extent: when non-empty, this chunk moves a dense run of
  // whole small tensors with ONE work request. For kRead/kWrite the
  // members form the remote gather/scatter list (the local side is the
  // single contiguous slot range above); for kLocalCopy the copy is one
  // dense range and the members only drive the per-tensor CRC split.
  // Member k's bytes sit at local offset sum(members[0..k).len); member
  // lengths must sum to `len`. Empty = classic single-tensor chunk.
  struct ExtentMember {
    std::size_t tensor_index = 0;
    Bytes len = 0;
    std::uint32_t rkey = 0;         // kRead / kWrite only
    std::uint64_t remote_addr = 0;  // kRead / kWrite only
  };
  std::vector<ExtentMember> members;
};

class PipelinedTransfer {
 public:
  struct Config {
    int window = 1;  // outstanding chunks admitted per QP lane
    // Accumulate each admission burst's WRs per lane and flush them as ONE
    // chained post (one doorbell per lane per burst) instead of ringing
    // per extent. At window=1 a burst is a single WR either way, so serial
    // timings are unchanged.
    bool batch_doorbells = true;
  };

  struct Stats {
    std::uint64_t chunks = 0;
    std::uint64_t rdma_chunks = 0;
    std::uint64_t local_chunks = 0;
    // --- coalescing observability ---
    std::uint64_t wrs_posted = 0;        // RDMA work requests (a gather extent = 1)
    std::uint64_t sges_posted = 0;       // remote SGEs across those WRs
    std::uint64_t extents_coalesced = 0; // chunks that fused > 1 tensor
    // --- doorbell batching observability ---
    std::uint64_t doorbells = 0;         // post() calls (a chained batch = 1)
    std::uint64_t admission_windows = 0; // admission bursts that posted RDMA work
    Bytes rdma_bytes = 0;                // subset of `bytes` that crossed the NIC
    Bytes bytes = 0;
    Bytes bytes_persisted = 0;
    int peak_outstanding = 0;         // max chunks in flight at once
    double occupancy_integral = 0.0;  // ∫ outstanding dt, in chunk-seconds
    Duration busy{0};                 // wall time of run()
    Duration queue_delay_total{0};    // head-of-line stall, summed per chunk
    Duration queue_delay_max{0};

    double mean_outstanding() const {
      const double b = to_seconds(busy);
      return b > 0.0 ? occupancy_integral / b : 0.0;
    }
    double bytes_per_wr() const {
      return wrs_posted > 0 ? static_cast<double>(rdma_bytes) / static_cast<double>(wrs_posted)
                            : 0.0;
    }
    // Mean doorbells rung per admission burst; with batching on this
    // converges to the lane count (one chained post per lane per window).
    double doorbells_per_window() const {
      return admission_windows > 0
                 ? static_cast<double>(doorbells) / static_cast<double>(admission_windows)
                 : 0.0;
    }
  };

  // All `qps` must deliver into `cq`. An empty QP list is allowed as long
  // as run() only ever sees kLocalCopy chunks.
  PipelinedTransfer(sim::Engine& engine, std::vector<rdma::QueuePair*> qps,
                    rdma::CompletionQueue& cq, Config config);

  // Required before running kLocalCopy or persist_after chunks: the PMEM
  // device plus the DIMM channel/read-bandwidth cap that local copies
  // charge (same cost model as the old inline path).
  void bind_pmem(pmem::PmemDevice* device, sim::BandwidthChannel* copy_channel,
                 Bandwidth copy_read_bw);

  // Drive the whole work list through the window; returns when every chunk
  // has completed (and, for persist_after chunks, been flushed). Throws on
  // the first failed completion, after draining all outstanding work.
  sim::SubTask<> run(std::vector<TransferChunk> chunks);

  const Stats& stats() const { return stats_; }

  // Fold the chunk CRCs collected by the last run() into one CRC32 per
  // tensor (CRC of the tensor's full payload, via Crc32::combine). Every
  // tensor in [0, tensor_count) must be completely covered by contiguous
  // collect_crc chunks — a gap means the caller built an inconsistent work
  // list and is a programming error, not data corruption.
  std::vector<std::uint32_t> tensor_crcs(std::size_t tensor_count) const;

 private:
  struct ChunkCrc {
    std::size_t tensor_index = 0;
    Bytes tensor_offset = 0;
    Bytes len = 0;
    std::uint32_t crc = 0;
  };

  sim::Process run_local_copy(std::uint64_t wr_id, TransferChunk chunk);

  sim::Engine& engine_;
  std::vector<rdma::QueuePair*> qps_;
  rdma::CompletionQueue& cq_;
  Config config_;
  pmem::PmemDevice* device_ = nullptr;
  sim::BandwidthChannel* copy_channel_ = nullptr;
  Bandwidth copy_read_bw_ = Bandwidth::unlimited();
  std::uint64_t next_wr_id_ = 0xB1BE0000ull;
  Stats stats_;
  std::vector<ChunkCrc> chunk_crcs_;
};

}  // namespace portus::core
