// ModelTable + ModelMap: the root level of the three-level index.
//
// On PMEM, ModelTable is a fixed-capacity array of records
// (model_name, info_offset) mapping every known model to its MIndex record.
// In DRAM, ModelMap mirrors it as a red-black tree (std::map) for O(log n)
// lookups; map values are persistent pointers (device offsets) into PMEM —
// the dashed arrows of the paper's Fig. 4.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "pmem/pmem_device.h"

namespace portus::core {

class ModelTable {
 public:
  static constexpr Bytes kNameCapacity = 48;
  static constexpr Bytes kEntrySize = 64;  // name[48] | info_offset u64 | state u32 | crc u32
  // Out-of-line "training job finished" hint, one u32 per slot, appended
  // after the entry array. Self-validating magic instead of a CRC: a power
  // cut tearing a hint's cache line degrades every hint in it to "not
  // finished" — the repacker merely waits for the client to re-finish.
  // Kept OUT of the CRC'd entry on purpose: flipping the hint must never
  // rewrite (and risk tearing) an entry that guards committed checkpoints.
  static constexpr std::uint32_t kFinishedMagic = 0xF1D15EDu;

  ModelTable(pmem::PmemDevice& device, Bytes table_offset, std::uint32_t capacity);

  // Insert or overwrite; persists the entry before returning.
  void insert(const std::string& model_name, Bytes info_offset);
  std::optional<Bytes> lookup(const std::string& model_name) const;
  void remove(const std::string& model_name);

  // Training-job lifecycle flag (persisted out-of-line, torn-safe):
  // FINISH_JOB marks the model so the repacker may reclaim its non-latest
  // checkpoint version even after a daemon restart. Never touches the
  // model's CRC'd entry.
  void set_finished(const std::string& model_name, bool finished = true);
  bool is_finished(const std::string& model_name) const;

  // Rebuild ModelMap from PMEM after a daemon restart.
  void recover();

  std::size_t size() const { return map_.size(); }
  std::vector<std::string> names() const;
  Bytes table_bytes() const {
    return static_cast<Bytes>(capacity_) * (kEntrySize + sizeof(std::uint32_t));
  }

 private:
  struct Slot {
    std::string name;
    Bytes info_offset = 0;
    bool used = false;
    bool finished = false;
  };
  void persist_slot(std::uint32_t index);
  void persist_finished(std::uint32_t index);
  Bytes flag_offset(std::uint32_t index) const {
    return table_offset_ + static_cast<Bytes>(capacity_) * kEntrySize +
           static_cast<Bytes>(index) * sizeof(std::uint32_t);
  }

  pmem::PmemDevice& device_;
  Bytes table_offset_;
  std::uint32_t capacity_;
  std::vector<Slot> slots_;
  // ModelMap: name -> (slot index, info_offset).
  std::map<std::string, std::pair<std::uint32_t, Bytes>> map_;
};

}  // namespace portus::core
