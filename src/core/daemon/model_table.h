// ModelTable + ModelMap: the root level of the three-level index.
//
// On PMEM, ModelTable is a fixed-capacity array of records
// (model_name, info_offset) mapping every known model to its MIndex record.
// In DRAM, ModelMap mirrors it as a red-black tree (std::map) for O(log n)
// lookups; map values are persistent pointers (device offsets) into PMEM —
// the dashed arrows of the paper's Fig. 4.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "pmem/pmem_device.h"

namespace portus::core {

class ModelTable {
 public:
  static constexpr Bytes kNameCapacity = 48;
  static constexpr Bytes kEntrySize = 64;  // name[48] | info_offset u64 | state u32 | crc u32

  ModelTable(pmem::PmemDevice& device, Bytes table_offset, std::uint32_t capacity);

  // Insert or overwrite; persists the entry before returning.
  void insert(const std::string& model_name, Bytes info_offset);
  std::optional<Bytes> lookup(const std::string& model_name) const;
  void remove(const std::string& model_name);

  // Training-job lifecycle flag (persisted): FINISH_JOB marks the model so
  // the repacker may reclaim its non-latest checkpoint version even after a
  // daemon restart.
  void set_finished(const std::string& model_name, bool finished = true);
  bool is_finished(const std::string& model_name) const;

  // Rebuild ModelMap from PMEM after a daemon restart.
  void recover();

  std::size_t size() const { return map_.size(); }
  std::vector<std::string> names() const;
  Bytes table_bytes() const { return static_cast<Bytes>(capacity_) * kEntrySize; }

 private:
  struct Slot {
    std::string name;
    Bytes info_offset = 0;
    bool used = false;
    bool finished = false;
  };
  void persist_slot(std::uint32_t index);

  pmem::PmemDevice& device_;
  Bytes table_offset_;
  std::uint32_t capacity_;
  std::vector<Slot> slots_;
  // ModelMap: name -> (slot index, info_offset).
  std::map<std::string, std::pair<std::uint32_t, Bytes>> map_;
};

}  // namespace portus::core
