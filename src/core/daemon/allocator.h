// Sharded PMEM allocator with a persistent AllocTable (SS III-B).
//
// The daemon allocates contiguous TensorData regions and MIndex records out
// of the devdax namespace. Allocation status lives in two places:
//   * a DRAM mirror with std::atomic entry states, claimed by
//     compare-&-swap — the paper's lock-free fast path ("we apply the
//     compare & swap intrinsic to ensure the lock-free of the whole system");
//   * the persistent AllocTable region on PMEM, written through after every
//     state change so a restarted daemon can rebuild its heap.
//
// The table is split into N per-shard arenas so concurrent workers do not
// serialize on one set of cache lines (DiStore-style segment preallocation):
//
//   [64 B header: magic | shards | per-shard capacity | geometry | crc]
//   [shard 0: per_shard_capacity x 24 B entries]
//   ...
//   [shard N-1: per_shard_capacity x 24 B entries]
//
// Each shard owns its entry range, its own free list (CAS FREE -> CLAIMED
// reuse, first fit), and a private bump *reservation* carved from the global
// bump pointer in refill_bytes chunks — with refill enabled a worker only
// touches shared state once per refill, not once per alloc. Refilling a
// shard that still holds reservation leftovers first publishes the leftover
// as a FREE entry (its persist is the mid-refill crash fence: a power cut
// there leaves either the old reservation tracked or a clean FREE extent,
// never a double-owned range). A crash abandons unpublished reservation
// tails as heap gaps; recover() rebuilds per shard and sweep_gaps() adopts
// the gaps back.
//
// Allocation policy per shard: own free list -> reservation -> refill from
// the global bump -> steal a freed extent from another shard -> throw.
// Freed extents are indexed by offset in a DRAM hash map so free() is O(1).
//
// Defaults (shards = 1, refill_bytes = 0) degenerate to the classic single
// arena: every fresh alloc reserves exactly its own size from the global
// bump, so offsets, table contents and compaction behave bit-identically to
// the unsharded allocator.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/units.h"
#include "pmem/pmem_device.h"

namespace portus::core {

enum class AllocState : std::uint32_t { kFree = 0, kClaimed = 1, kLive = 2 };

class PmemAllocator {
 public:
  struct Config {
    Bytes table_offset = 0;       // persistent AllocTable location
    std::uint32_t table_capacity = 4096;  // max tracked extents (all shards)
    Bytes data_offset = 0;        // heap start
    Bytes data_end = 0;           // heap end (exclusive)
    Bytes alignment = 256;        // XPLine alignment
    std::uint32_t shards = 1;     // per-worker arenas (table split N ways)
    // Reservation chunk a shard grabs from the global bump when its local
    // region runs dry. 0 = reserve exactly the requested size (classic
    // bump-per-alloc behavior, no leftovers).
    Bytes refill_bytes = 0;
  };

  struct Extent {
    Bytes offset = 0;
    Bytes size = 0;
    AllocState state = AllocState::kFree;
  };

  // Per-shard observability (portusctl stats / cluster-status).
  struct ShardStats {
    std::uint32_t shard = 0;
    std::uint32_t entries = 0;   // table slots in use (including dead ones)
    std::uint32_t capacity = 0;  // per-shard entry capacity
    Bytes live = 0;
    Bytes free_listed = 0;
    Bytes reserved = 0;          // unconsumed local reservation
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t refills = 0;     // global-bump reservations taken
    std::uint64_t reuse_hits = 0;  // allocs served from the own free list
    std::uint64_t steals = 0;      // allocs served from another shard's list
  };

  // Persistent-table scrub (fsck pass 0): re-validate the sharded header
  // and every entry's CRC straight from the device, independent of the
  // DRAM mirror. recover() silently skips torn entries — their extents
  // resurface as heap gaps — so this is the only place their count is
  // observable. Never-written (all-zero) slots do not count as torn.
  struct TableScrub {
    bool header_valid = false;
    std::uint32_t shards = 0;
    std::uint32_t torn_entries = 0;
  };

  // RAII quiesce guard: blocks until every in-flight alloc()/free() has
  // drained, then fails new ones until released. compact()/sweep_gaps()
  // acquire it themselves; maintenance passes that also free extents
  // (repacker, fsck repair) hold one Pause across the whole pass — the
  // owning thread's own alloc/free calls are exempt, everyone else's throw
  // instead of silently racing the table rewrite. Re-entrant per thread.
  class Pause {
   public:
    explicit Pause(PmemAllocator& a) : a_{a} { a_.quiesce_acquire(); }
    ~Pause() { a_.quiesce_release(); }
    Pause(const Pause&) = delete;
    Pause& operator=(const Pause&) = delete;

   private:
    PmemAllocator& a_;
  };

  PmemAllocator(pmem::PmemDevice& device, Config config);

  // Allocate `size` bytes; returns the device offset. Thread-safe: CAS
  // free-list claims + shard-local reservations (the global bump is only
  // touched on refill). The shard is picked by thread identity.
  Bytes alloc(Bytes size);
  // Same, on an explicit shard (daemon workers pin their own arena).
  Bytes alloc_on(std::uint32_t shard, Bytes size);

  // Release a previously allocated extent (by its exact offset). O(1):
  // the extent is looked up in the DRAM offset index, not scanned.
  void free(Bytes offset);

  // Rebuild the DRAM mirror from the persistent AllocTable (daemon restart).
  // Validates the sharded-table header; reservations reset to empty (a
  // crash-abandoned reservation tail becomes a heap gap for sweep_gaps()).
  void recover();

  // --- introspection / repacker support ---
  Bytes bump() const { return bump_.load(std::memory_order_relaxed); }
  Bytes live_bytes() const;
  Bytes free_listed_bytes() const;  // freed-but-not-reclaimed extents
  Bytes capacity() const { return config_.data_end - config_.data_offset; }
  std::uint32_t shard_count() const { return config_.shards; }
  std::vector<Extent> extents() const;
  std::vector<ShardStats> shard_stats() const;
  TableScrub scrub_table() const;
  bool quiesced() const { return paused_.load(std::memory_order_acquire); }

  // Reclaim trailing free extents into the bump region and drop free
  // entries that were fully reabsorbed. Self-quiescing: acquires a Pause
  // (no-op if the calling thread already holds one) so live allocation
  // cannot race the rewrite. Shard reservations are flushed back to FREE
  // entries first so their tails are reclaimable too.
  Bytes compact();

  // Adopt untracked heap bytes back as FREE extents. A crash can tear an
  // AllocTable entry whose extent sits *between* surviving entries, or
  // abandon a shard reservation's unpublished tail: recover() skips them,
  // the bump pointer stays beyond, and the bytes leak. Every hole below
  // the bump pointer becomes a FREE entry again (reusing a dead table slot
  // or appending one). Returns the adopted byte count. Self-quiescing like
  // compact().
  Bytes sweep_gaps();

  static constexpr Bytes kHeaderSize = 64;
  static constexpr Bytes kEntrySize = 24;  // offset u64 | size u64 | state u32 | crc u32

 private:
  struct Entry {
    Bytes offset = 0;
    Bytes size = 0;
    std::atomic<std::uint32_t> state{0};
  };

  struct Shard {
    std::vector<std::unique_ptr<Entry>> entries;
    std::atomic<std::uint32_t> entry_count{0};
    // Serializes the persist write-through only (device_.write of entry
    // images). Real PMEM updates entries with 8-byte atomic stores + clwb;
    // the simulated device writes via memcpy, so racing re-persists of the
    // same entry — benign by the convergence loop in persist_entry() —
    // would still be a C++ data race without this. Never touched by the
    // CAS claim fast path itself, only around the device write.
    std::mutex persist_mu;
    std::mutex res_mu;     // guards the local reservation cursor
    Bytes res_cursor = 0;  // next unconsumed reservation byte
    Bytes res_end = 0;     // reservation end (exclusive)
    std::atomic<std::uint64_t> allocs{0};
    std::atomic<std::uint64_t> frees{0};
    std::atomic<std::uint64_t> refills{0};
    std::atomic<std::uint64_t> reuse_hits{0};
    std::atomic<std::uint64_t> steals{0};
  };

  // DRAM offset -> (shard, entry) index for O(1) free(); bucketed so
  // concurrent inserts/lookups shard their locks too.
  static constexpr std::size_t kMapBuckets = 64;
  struct MapBucket {
    mutable std::mutex mu;
    std::unordered_map<Bytes, std::uint64_t> loc;  // offset -> shard<<32|index
  };

  // Throws unless alloc/free are admissible (quiesce guard); counts the op.
  struct OpGuard {
    explicit OpGuard(const PmemAllocator& a);
    ~OpGuard();
    const PmemAllocator& a_;
  };

  void write_header();
  bool header_matches() const;  // valid CRC + this geometry
  void persist_entry(std::uint32_t shard, std::uint32_t index);
  Bytes table_slot_offset(std::uint32_t shard, std::uint32_t index) const {
    const auto global = static_cast<Bytes>(shard) * per_shard_capacity_ + index;
    return config_.table_offset + kHeaderSize + global * kEntrySize;
  }
  std::uint32_t preferred_shard() const;
  std::optional<Bytes> claim_free_extent(std::uint32_t shard, Bytes size);
  // Publish a shard's unconsumed reservation as a FREE entry and empty it.
  // Caller holds shard.res_mu (alloc refill) or the quiesce pause.
  void flush_reservation(std::uint32_t shard);
  void map_insert(Bytes offset, std::uint32_t shard, std::uint32_t index);
  void map_erase(Bytes offset);
  std::optional<std::pair<std::uint32_t, std::uint32_t>> map_find(Bytes offset) const;
  MapBucket& bucket_for(Bytes offset) const {
    return map_[std::hash<Bytes>{}(offset) % kMapBuckets];
  }

  void quiesce_acquire();
  void quiesce_release();
  bool quiesced_by_me() const;

  pmem::PmemDevice& device_;
  Config config_;
  std::uint32_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::array<MapBucket, kMapBuckets> map_;
  std::atomic<Bytes> bump_;

  // Quiesce guard state (see Pause).
  mutable std::atomic<int> active_ops_{0};
  std::atomic<bool> paused_{false};
  std::atomic<std::thread::id> pause_owner_{};
  int pause_depth_ = 0;  // owner-thread only
};

}  // namespace portus::core
