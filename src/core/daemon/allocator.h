// PMEM allocator with a persistent AllocTable (SS III-B).
//
// The daemon allocates contiguous TensorData regions and MIndex records out
// of the devdax namespace. Allocation status lives in two places:
//   * a DRAM mirror with std::atomic entry states, claimed by
//     compare-&-swap — the paper's lock-free fast path ("we apply the
//     compare & swap intrinsic to ensure the lock-free of the whole system");
//   * the persistent AllocTable region on PMEM, written through after every
//     state change so a restarted daemon can rebuild its heap.
//
// Policy: first-fit reuse of freed extents (CAS FREE -> CLAIMED), falling
// back to an atomic bump pointer for fresh space. The repacker compacts
// trailing free extents back into the bump region.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.h"
#include "pmem/pmem_device.h"

namespace portus::core {

enum class AllocState : std::uint32_t { kFree = 0, kClaimed = 1, kLive = 2 };

class PmemAllocator {
 public:
  struct Config {
    Bytes table_offset = 0;       // persistent AllocTable location
    std::uint32_t table_capacity = 4096;  // max tracked extents
    Bytes data_offset = 0;        // heap start
    Bytes data_end = 0;           // heap end (exclusive)
    Bytes alignment = 256;        // XPLine alignment
  };

  struct Extent {
    Bytes offset = 0;
    Bytes size = 0;
    AllocState state = AllocState::kFree;
  };

  PmemAllocator(pmem::PmemDevice& device, Config config);

  // Allocate `size` bytes; returns the device offset. Thread-safe
  // (lock-free: CAS claims + atomic bump).
  Bytes alloc(Bytes size);

  // Release a previously allocated extent (by its exact offset).
  void free(Bytes offset);

  // Rebuild the DRAM mirror from the persistent AllocTable (daemon restart).
  void recover();

  // --- introspection / repacker support ---
  Bytes bump() const { return bump_.load(std::memory_order_relaxed); }
  Bytes live_bytes() const;
  Bytes free_listed_bytes() const;  // freed-but-not-reclaimed extents
  Bytes capacity() const { return config_.data_end - config_.data_offset; }
  std::vector<Extent> extents() const;

  // Reclaim trailing free extents into the bump region and drop free
  // entries that were fully reabsorbed. NOT thread-safe: callers must
  // quiesce allocation (the repacker runs with the daemon idle).
  Bytes compact();

  // Adopt untracked heap bytes back as FREE extents. A crash can tear an
  // AllocTable entry whose extent sits *between* surviving entries:
  // recover() skips the torn entry, the bump pointer stays beyond it, and
  // the bytes leak — nothing references them and compact() cannot reach
  // them. Every hole below the bump pointer becomes a FREE entry again
  // (reusing a dead table slot or appending one). Returns the adopted byte
  // count. NOT thread-safe: repacker/fsck only, allocation quiesced.
  Bytes sweep_gaps();

  static constexpr Bytes kEntrySize = 24;  // offset u64 | size u64 | state u32 | crc u32

 private:
  struct Entry {
    Bytes offset = 0;
    Bytes size = 0;
    std::atomic<std::uint32_t> state{0};
  };

  void persist_entry(std::uint32_t index);
  Bytes table_slot_offset(std::uint32_t index) const {
    return config_.table_offset + static_cast<Bytes>(index) * kEntrySize;
  }

  pmem::PmemDevice& device_;
  Config config_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::atomic<std::uint32_t> entry_count_{0};
  std::atomic<Bytes> bump_;
};

}  // namespace portus::core
