// Double-mapping checkpoint transaction (SS III-D2, Fig. 6).
//
// Every model keeps two identically-structured checkpoint slots on PMEM.
// A checkpoint writes into the slot that does NOT hold the newest DONE
// version, under this persist ordering:
//
//   begin():  write slot <- ACTIVE flag, persisted     (transmission begun)
//   ... daemon pulls TensorData and persists it ...
//   commit(): write slot <- DONE flag + new epoch, persisted
//
// A crash before commit leaves the slot ACTIVE (or torn); recovery treats
// anything not DONE as invalid, so the previous DONE version — untouched by
// construction — remains restorable. This guarantees at least one valid
// version at all times without reallocating PMEM or re-establishing RDMA
// state per checkpoint (the cost the paper's "new file every time"
// alternative would pay; see bench/abl_double_mapping).
//
// Deliberately, an uncommitted transaction's destructor does NOT roll the
// flag back: a power failure runs no destructors, so the recovery protocol
// must already treat a lingering ACTIVE slot as invalid — and it does. The
// next checkpoint of the model simply overwrites that slot
// (pick_write_slot never selects the newest DONE version).
#pragma once

#include "core/daemon/mindex.h"

namespace portus::core {

class CheckpointTxn {
 public:
  // Marks the write slot ACTIVE (persisted). The transaction must be
  // committed or aborted before another one starts on the same MIndex.
  static CheckpointTxn begin(MIndex& index);

  CheckpointTxn(CheckpointTxn&&) = default;
  CheckpointTxn& operator=(CheckpointTxn&&) = delete;
  CheckpointTxn(const CheckpointTxn&) = delete;
  CheckpointTxn& operator=(const CheckpointTxn&) = delete;
  ~CheckpointTxn();

  int slot() const { return slot_; }
  Bytes data_offset() const { return index_->slot(slot_).data_offset; }
  std::uint64_t epoch() const { return epoch_; }

  // Flip to DONE with the new epoch (persisted). Idempotent-safe: only the
  // first call commits. Enforces the persist-before-DONE contract: every
  // dirty byte of the slot's TensorData must already be inside the
  // persistence domain, else the DONE flag would bless data a power
  // failure can still tear. With the pipelined datapath (per-chunk
  // flushes racing ahead of the transfer window) this is the single choke
  // point where the invariant is checked.
  void commit();

 private:
  CheckpointTxn(MIndex& index, int slot, std::uint64_t epoch)
      : index_{&index}, slot_{slot}, epoch_{epoch} {}

  MIndex* index_;
  int slot_;
  std::uint64_t epoch_;
  bool committed_ = false;
};

}  // namespace portus::core
