#include "core/daemon/extent.h"

namespace portus::core {

std::vector<Extent> plan_extents(const std::vector<ChunkSpan>& spans,
                                 const std::vector<IndexedTensor>& tensors,
                                 const ExtentConfig& config,
                                 const std::vector<bool>& dirty) {
  PORTUS_CHECK_ARG(config.max_sges >= 1, "max_sges must be >= 1");
  PORTUS_CHECK_ARG(dirty.empty() || dirty.size() == tensors.size(),
                   "dirty class vector does not match tensor count");
  const bool coalesce = config.coalesce_threshold > 0 && config.max_sges > 1;

  std::vector<Extent> out;
  out.reserve(spans.size());
  Extent run;  // the open dense run of fusable small tensors
  auto flush = [&] {
    if (!run.members.empty()) {
      out.push_back(std::move(run));
      run = Extent{};
    }
  };
  const auto same_class = [&](const ChunkSpan& a, const ChunkSpan& b) {
    return dirty.empty() || dirty[a.tensor] == dirty[b.tensor];
  };

  for (const auto& s : spans) {
    PORTUS_CHECK_ARG(s.tensor < tensors.size(), "chunk span for out-of-range tensor");
    if (s.len == 0) {
      // Standalone empty extent; the open run stays open — a zero-length
      // tensor occupies no bytes, so its neighbors are still dense.
      out.push_back(Extent{.members = {s}, .offset_in_slot = s.offset_in_slot, .len = 0});
      continue;
    }
    const bool fusable = coalesce && s.offset == 0 &&
                         s.len == tensors[s.tensor].size &&
                         s.len <= config.coalesce_threshold;
    if (!fusable) {
      flush();
      out.push_back(Extent{.members = {s}, .offset_in_slot = s.offset_in_slot, .len = s.len});
      continue;
    }
    const bool extends = !run.members.empty() &&
                         run.members.size() < static_cast<std::size_t>(config.max_sges) &&
                         s.offset_in_slot == run.offset_in_slot + run.len &&
                         same_class(run.members.front(), s);
    if (!extends) {
      flush();
      run = Extent{.members = {s}, .offset_in_slot = s.offset_in_slot, .len = s.len};
    } else {
      run.members.push_back(s);
      run.len += s.len;
    }
  }
  flush();
  return out;
}

}  // namespace portus::core
