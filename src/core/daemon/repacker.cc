#include "core/daemon/repacker.h"

#include "common/logging.h"

namespace portus::core {

Repacker::Report Repacker::repack() {
  Report report;
  auto& table = daemon_.model_table();
  auto& allocator = daemon_.allocator();

  for (const auto& name : table.names()) {
    // Prefer the live index (shares slot-header state with the daemon);
    // fall back to loading from PMEM for models without a session.
    MIndex* live = daemon_.find_live_index(name);
    std::optional<MIndex> loaded;
    if (live == nullptr) loaded.emplace(daemon_.load_index(name));
    MIndex& index = live != nullptr ? *live : *loaded;

    const bool finished =
        daemon_.finished_models().contains(name) || table.is_finished(name);
    const auto latest = index.latest_done_slot();

    for (int i = 0; i < 2; ++i) {
      const auto& slot = index.slot(i);
      if (slot.data_offset == 0) continue;

      const bool crashed_active =
          slot.state == SlotState::kActive && live == nullptr;  // no running ckpt
      const bool outdated = finished && (!latest.has_value() || i != *latest) &&
                            slot.state != SlotState::kActive;

      if (!crashed_active && !outdated) continue;

      allocator.free(slot.data_offset);
      index.clear_slot(i);
      ++report.slots_cleared;
      if (crashed_active) {
        report.freed_crashed += index.slot_size();
      } else {
        report.freed_outdated += index.slot_size();
      }
    }
  }

  // Adopt heap bytes orphaned by torn AllocTable entries before compacting,
  // so a leaked extent adjacent to the tail is reclaimed in the same pass.
  report.gaps_adopted = allocator.sweep_gaps();
  report.compacted = allocator.compact();
  PLOG_INFO("repacker", "freed {} outdated + {} crashed, adopted {} leaked, compacted {}",
            format_bytes(report.freed_outdated), format_bytes(report.freed_crashed),
            format_bytes(report.gaps_adopted), format_bytes(report.compacted));
  return report;
}

}  // namespace portus::core
