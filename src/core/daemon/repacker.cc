#include "core/daemon/repacker.h"

#include <algorithm>

#include "common/logging.h"

namespace portus::core {

int Repacker::reclaim_model(const std::string& name, Report& report) {
  auto& allocator = daemon_.allocator();
  auto& table = daemon_.model_table();

  // Prefer the live index (shares slot-header state with the daemon);
  // fall back to loading from PMEM for models without a session.
  MIndex* live = daemon_.find_live_index(name);
  std::optional<MIndex> loaded;
  if (live == nullptr) loaded.emplace(daemon_.load_index(name));
  MIndex& index = live != nullptr ? *live : *loaded;

  const bool finished = daemon_.finished_models().contains(name) || table.is_finished(name);
  const auto latest = index.latest_done_slot();

  int cleared = 0;
  for (int i = 0; i < 2; ++i) {
    const auto& slot = index.slot(i);
    if (slot.data_offset == 0) continue;

    const bool crashed_active =
        slot.state == SlotState::kActive && live == nullptr;  // no running ckpt
    const bool outdated = finished && (!latest.has_value() || i != *latest) &&
                          slot.state != SlotState::kActive;

    if (!crashed_active && !outdated) continue;

    allocator.free(slot.data_offset);
    index.clear_slot(i);
    ++cleared;
    ++report.slots_cleared;
    if (crashed_active) {
      report.freed_crashed += index.slot_size();
    } else {
      report.freed_outdated += index.slot_size();
    }
  }

  // Tenancy: a model whose slots are all gone stops holding PMEM — return
  // its whole capacity charge (uncharge clamps, so over-asking is safe).
  if (cleared > 0 && daemon_.tenants() != nullptr && index.slot(0).data_offset == 0 &&
      index.slot(1).data_offset == 0) {
    daemon_.tenants()->uncharge(name, 2 * index.slot_size());
  }
  return cleared;
}

Repacker::Report Repacker::repack() {
  Report report;
  for (const auto& name : daemon_.model_table().names()) reclaim_model(name, report);

  // Adopt heap bytes orphaned by torn AllocTable entries before compacting,
  // so a leaked extent adjacent to the tail is reclaimed in the same pass.
  auto& allocator = daemon_.allocator();
  report.gaps_adopted = allocator.sweep_gaps();
  report.compacted = allocator.compact();
  PLOG_INFO("repacker", "freed {} outdated + {} crashed, adopted {} leaked, compacted {}",
            format_bytes(report.freed_outdated), format_bytes(report.freed_crashed),
            format_bytes(report.gaps_adopted), format_bytes(report.compacted));
  return report;
}

sim::SubTask<Repacker::Report> Repacker::repack_online(OnlineOptions options) {
  PORTUS_CHECK_ARG(options.models_per_pass >= 1, "online repack needs models_per_pass >= 1");
  Report report;
  // Snapshot the model list up front; models registered mid-repack are new
  // and carry no garbage worth chasing this round.
  const auto names = daemon_.model_table().names();

  for (std::size_t begin = 0; begin < names.size();
       begin += static_cast<std::size_t>(options.models_per_pass)) {
    const auto end =
        std::min(names.size(), begin + static_cast<std::size_t>(options.models_per_pass));

    // Relocation barrier: stop granting checkpoint admissions, quiesce the
    // allocator, and do this batch's reclamation synchronously (no suspend
    // while the barrier is up — in-flight ops already past admission see a
    // consistent table; compact() moves no data).
    daemon_.pause_admissions();
    int cleared = 0;
    {
      PmemAllocator::Pause pause{daemon_.allocator()};
      for (std::size_t i = begin; i < end; ++i) cleared += reclaim_model(names[i], report);
      report.gaps_adopted += daemon_.allocator().sweep_gaps();
      report.compacted += daemon_.allocator().compact();
    }
    ++report.passes;

    // Charge the window's cost in virtual time while admissions stay
    // barred: this is the latency the fleet actually pays per pass.
    const Duration window{options.pass_cost_base.count() +
                          cleared * options.pass_cost_per_slot.count()};
    report.paused_time += window;
    co_await daemon_.engine().sleep(window);
    daemon_.resume_admissions();

    co_await daemon_.engine().sleep(options.yield);  // let live traffic breathe
  }

  PLOG_INFO("repacker",
            "online: {} passes, freed {} outdated + {} crashed, compacted {}, paused {}",
            report.passes, format_bytes(report.freed_outdated),
            format_bytes(report.freed_crashed), format_bytes(report.compacted),
            format_duration(report.paused_time));
  co_return report;
}

}  // namespace portus::core
