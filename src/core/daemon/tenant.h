// Multi-tenant QoS for the Portus daemon: quotas, priority classes, and an
// admission controller in front of the checkpoint hot path.
//
// A production checkpoint service fronts an entire training fleet
// (DataStates-LLM multiplexes many model streams; FastPersist schedules
// write parallelism explicitly) — free-for-all admission lets one noisy
// batch job head-of-line-block everyone's p99. This layer gives the daemon:
//
//   * TenantRegistry — per-tenant identity with a granted quota (PMEM
//     capacity bytes charged at registration, token-bucket byte rate,
//     in-flight WR-slot share, WFQ weight, priority class). Registrations
//     negotiate: the client *requests*, the registry clamps against daemon
//     policy and answers with the grant (protocol v5).
//
//   * AdmissionController — every checkpoint acquires an admission Ticket
//     before it may occupy a daemon worker or post a single WR:
//       1. token-bucket pacing (a tenant over its byte rate sleeps off its
//          debt *before* competing for a slot);
//       2. strict priority across the three classes, weighted fair queuing
//          (start-time-fair virtual finish tags) within a class;
//       3. a bounded per-class queue — when full, the op is rejected with
//          Backpressure, which the client retries with jittered
//          exponential backoff (PortusClient::RetryPolicy).
//     pause()/resume() is the online repacker's relocation barrier: a
//     paused controller stops granting, in-flight tickets drain naturally,
//     and the repacker's bounded maintenance window runs without new
//     checkpoints racing the allocator rewrite.
//
// Everything here is daemon-side DRAM bookkeeping: nothing touches PMEM,
// so crash recovery is unaffected (quotas re-negotiate on re-registration).
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/units.h"
#include "core/protocol.h"
#include "sim/engine.h"
#include "sim/task.h"

namespace portus::core {

enum class PriorityClass : std::uint8_t { kHigh = 0, kNormal = 1, kBatch = 2 };
inline constexpr int kPriorityClasses = 3;

const char* to_string(PriorityClass c);
// Wire u8 -> class; out-of-range values (a newer client's future class)
// demote to kBatch rather than faulting the registration.
PriorityClass priority_from_wire(std::uint8_t v);

struct TenantQuota {
  Bytes capacity_bytes = 0;      // PMEM the tenant may hold; 0 = unlimited
  Bytes rate_bytes_per_sec = 0;  // token-bucket refill; 0 = unpaced
  Bytes burst_bytes = 0;         // bucket depth; 0 = auto (one op's bytes)
  double share = 1.0;            // WFQ weight within the priority class
  std::uint32_t wr_slots = 0;    // per-tenant in-flight cap; 0 = global only
  PriorityClass priority = PriorityClass::kNormal;
};

struct TenantUsage {
  Bytes charged_bytes = 0;  // slot capacity charged at registration
  std::uint64_t models = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;       // Backpressure answers
  std::uint64_t quota_rejects = 0;  // registrations denied over capacity
  Bytes admitted_bytes = 0;
  Duration queue_wait_total{0};
  Duration queue_wait_max{0};
  Duration paced_total{0};  // token-bucket stalls
};

// One tenant's full state. Lives in the registry's node-based map, so the
// address is stable for the lifetime of the daemon.
struct Tenant {
  std::string id;
  TenantQuota quota;
  TenantUsage usage;
  std::set<std::string> models;  // registrations charged to this tenant
  // Token bucket (negative = debt the next op sleeps off).
  double tokens = 0.0;
  Time bucket_at{0};
  // WFQ bookkeeping: virtual finish tag of this tenant's last admission,
  // in weighted-byte virtual time.
  double vfinish = 0.0;
  int inflight = 0;
};

class TenantRegistry {
 public:
  // Policy ceiling applied when granting quotas: a tenant's request is
  // clamped against these (0 = no ceiling on that axis).
  struct Defaults {
    TenantQuota quota;
  };

  explicit TenantRegistry(Defaults defaults) : defaults_{std::move(defaults)} {}
  TenantRegistry() : TenantRegistry(Defaults{}) {}

  // Find-or-create the tenant and (re)negotiate its grant: requested
  // capacity/rate are clamped to the policy ceiling; 0 requests take the
  // policy default outright. Priority is taken as requested.
  Tenant& admit_tenant(const std::string& id, PriorityClass priority,
                       Bytes requested_capacity, Bytes requested_rate);

  Tenant* find(const std::string& id);
  const Tenant* find(const std::string& id) const;
  // The tenant a registered model is charged to (nullptr if unknown).
  Tenant* owner_of(const std::string& model_name);

  // Capacity accounting. charge() bills `bytes` of PMEM for `model_name`
  // at registration time (idempotent per model) and throws
  // ResourceExhausted when the tenant would exceed its granted capacity.
  // uncharge() returns the bytes when the repacker reclaims the model's
  // slots (also idempotent).
  void charge(Tenant& tenant, const std::string& model_name, Bytes bytes);
  void uncharge(const std::string& model_name, Bytes bytes);

  std::vector<const Tenant*> tenants() const;  // sorted by id (render order)
  std::size_t size() const { return tenants_.size(); }

 private:
  Defaults defaults_;
  std::map<std::string, Tenant> tenants_;           // node-based: stable addrs
  std::map<std::string, std::string> model_owner_;  // model -> tenant id
};

class AdmissionController final : public sim::Resettable {
 public:
  struct Config {
    int max_inflight = 8;             // WR-slot budget across all tenants
    std::uint32_t queue_depth = 64;   // bounded queue per priority class
    Duration retry_after{2'000'000};  // Backpressure pacing hint (2 ms)
  };

  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;  // Backpressure throws
    std::uint64_t paced = 0;     // admissions that slept on the token bucket
    Duration queue_wait_total{0};
    Duration queue_wait_max{0};
    std::uint64_t pauses = 0;  // online-repack barriers taken
    Duration paused_total{0};
  };

  AdmissionController(sim::Engine& engine, Config config);
  ~AdmissionController();
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  void reset_waiters() noexcept override;

  // Move-only RAII admission slot: destruction releases the slot and
  // dispatches the next eligible waiter.
  class [[nodiscard]] Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& o) noexcept
        : ctrl_{std::exchange(o.ctrl_, nullptr)}, tenant_{std::exchange(o.tenant_, nullptr)} {}
    Ticket& operator=(Ticket&& o) noexcept {
      if (this != &o) {
        release();
        ctrl_ = std::exchange(o.ctrl_, nullptr);
        tenant_ = std::exchange(o.tenant_, nullptr);
      }
      return *this;
    }
    ~Ticket() { release(); }
    void release();
    bool held() const { return ctrl_ != nullptr; }

   private:
    friend class AdmissionController;
    Ticket(AdmissionController* c, Tenant* t) : ctrl_{c}, tenant_{t} {}
    AdmissionController* ctrl_ = nullptr;
    Tenant* tenant_ = nullptr;
  };

  // Await admission for an op moving `bytes`. Throws Backpressure
  // immediately when the tenant's class queue is at its depth bound;
  // otherwise paces on the token bucket, then waits for a slot in
  // strict-priority / WFQ order.
  sim::SubTask<Ticket> admit(Tenant& tenant, Bytes bytes);

  // Online-repack relocation barrier: a paused controller grants nothing
  // (arrivals queue or bounce off the depth bound); resume() re-dispatches.
  void pause();
  void resume();
  bool paused() const { return paused_; }

  int inflight() const { return inflight_; }
  std::size_t queued() const;
  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    Tenant* tenant = nullptr;
    double vft = 0.0;  // virtual finish tag (WFQ key within the class)
    std::uint64_t seq = 0;
  };
  struct WaitAwaitable;

  bool can_grant_now(const Tenant& tenant) const;
  bool tenant_capped(const Tenant& tenant) const {
    return tenant.quota.wr_slots > 0 &&
           tenant.inflight >= static_cast<int>(tenant.quota.wr_slots);
  }
  // Tag the admission in weighted-byte virtual time and advance the
  // tenant's finish tag.
  double stamp(Tenant& tenant, Bytes bytes);
  void grant(Tenant& tenant);
  void finish(Tenant* tenant);  // Ticket release path
  void dispatch();              // hand free slots to the best waiters

  sim::Engine& engine_;
  Config config_;
  Stats stats_;
  std::deque<Waiter> queues_[kPriorityClasses];
  int inflight_ = 0;
  bool paused_ = false;
  Time pause_began_{0};
  double vtime_ = 0.0;  // global WFQ virtual time (weighted bytes served)
  std::uint64_t next_seq_ = 0;
};

}  // namespace portus::core
