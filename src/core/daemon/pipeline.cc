#include "core/daemon/pipeline.h"

#include <algorithm>
#include <span>

#include "common/crc32.h"
#include "common/strformat.h"
#include "mem/segment.h"

namespace portus::core {

PipelinedTransfer::PipelinedTransfer(sim::Engine& engine, std::vector<rdma::QueuePair*> qps,
                                     rdma::CompletionQueue& cq, Config config)
    : engine_{engine}, qps_{std::move(qps)}, cq_{cq}, config_{config} {
  PORTUS_CHECK_ARG(config_.window >= 1, "pipeline window must be >= 1");
  for (const auto* qp : qps_) {
    PORTUS_CHECK_ARG(qp != nullptr, "null QP lane in pipelined transfer");
  }
}

void PipelinedTransfer::bind_pmem(pmem::PmemDevice* device, sim::BandwidthChannel* copy_channel,
                                  Bandwidth copy_read_bw) {
  device_ = device;
  copy_channel_ = copy_channel;
  copy_read_bw_ = copy_read_bw;
}

sim::Process PipelinedTransfer::run_local_copy(std::uint64_t wr_id, TransferChunk chunk) {
  try {
    // Device-local copy: the read and write streams through the DIMMs are
    // pipelined, so the slower (write) side bounds the copy; no NIC or GPU
    // BAR involvement — those stay free for other tenants.
    co_await copy_channel_->transfer(chunk.len, copy_read_bw_);
    if (!chunk.phantom) {
      mem::copy_bytes(*device_, chunk.dst_offset, *device_, chunk.src_offset, chunk.len);
    } else {
      device_->mark_dirty(chunk.dst_offset, chunk.len);
    }
    cq_.deliver(rdma::WorkCompletion{.wr_id = wr_id,
                                     .opcode = rdma::WcOpcode::kLocalCopy,
                                     .status = rdma::WcStatus::kSuccess,
                                     .byte_len = chunk.len});
  } catch (const Disconnected&) {
    // engine teardown mid-copy; the pipeline dies with it
  }
}

sim::SubTask<> PipelinedTransfer::run(std::vector<TransferChunk> chunks) {
  chunk_crcs_.clear();
  const std::size_t lanes = std::max<std::size_t>(1, qps_.size());
  const Time start = engine_.now();
  Time last_change = start;
  int outstanding = 0;
  // Integrate the outstanding-chunk count over time so mean window
  // occupancy falls out as integral / busy-time.
  auto account = [&](int delta) {
    const Time now = engine_.now();
    stats_.occupancy_integral +=
        static_cast<double>(outstanding) * to_seconds(now - last_change);
    last_change = now;
    outstanding += delta;
    stats_.peak_outstanding = std::max(stats_.peak_outstanding, outstanding);
  };

  std::vector<int> lane_free(lanes, config_.window);
  std::map<std::uint64_t, std::size_t> in_flight;  // wr_id -> chunk index
  std::size_t next = 0;
  Time head_since = start;  // when the current head chunk became eligible
  std::string failure;

  // Per-lane WR accumulators: an admission burst's extents are flushed as
  // one chained post per lane — one doorbell per lane per window.
  std::vector<std::vector<rdma::WorkRequest>> lane_batch(lanes);

  // Completion processing is synchronous (CRC + persist are device calls),
  // so the drain below can greedily soak up every completion already
  // delivered before re-admitting — whole windows refill at once and the
  // batches stay wide.
  const auto process = [&](const rdma::WorkCompletion& wc) {
    const auto it = in_flight.find(wc.wr_id);
    PORTUS_CHECK(it != in_flight.end(), "foreign completion drained by pipelined transfer");
    const std::size_t idx = it->second;
    in_flight.erase(it);
    ++lane_free[idx % lanes];
    account(-1);

    const TransferChunk& c = chunks[idx];
    if (wc.status != rdma::WcStatus::kSuccess) {
      if (failure.empty()) {
        failure = strf("{} failed on chunk of tensor {}: {}", to_string(wc.opcode),
                       c.tensor_index, to_string(wc.status));
      }
      return;
    }
    if (c.collect_crc) {
      // CRC before the persist: same bytes either way (persist only changes
      // durability state), but the read models the inline checksum landing
      // while the line is still cache-hot.
      PORTUS_CHECK(device_ != nullptr, "collect_crc chunk with no PMEM binding");
      const Bytes at = c.kind == TransferChunk::Kind::kLocalCopy ? c.dst_offset
                                                                 : c.persist_offset;
      if (c.members.empty()) {
        chunk_crcs_.push_back(ChunkCrc{.tensor_index = c.tensor_index,
                                       .tensor_offset = c.tensor_offset,
                                       .len = c.len,
                                       .crc = device_->crc(at, c.len)});
      } else {
        // Split the landed extent back into per-tensor CRC records: each
        // member is a whole tensor (offset 0), so its record IS its final
        // per-tensor CRC — no combine step needed for coalesced members.
        Bytes off = 0;
        for (const auto& m : c.members) {
          chunk_crcs_.push_back(ChunkCrc{.tensor_index = m.tensor_index,
                                         .tensor_offset = 0,
                                         .len = m.len,
                                         .crc = device_->crc(at + off, m.len)});
          off += m.len;
        }
      }
    }
    if (c.persist_after) {
      PORTUS_CHECK(device_ != nullptr, "persist_after chunk with no PMEM binding");
      device_->persist(c.persist_offset, c.len);
      stats_.bytes_persisted += c.len;
    }
  };

  while (next < chunks.size() || !in_flight.empty()) {
    bool rdma_this_burst = false;
    // Admit work in list order while the head chunk's lane has window room.
    while (failure.empty() && next < chunks.size() &&
           lane_free[next % lanes] > 0) {
      const std::size_t i = next++;
      const TransferChunk& c = chunks[i];
      --lane_free[i % lanes];
      const std::uint64_t id = next_wr_id_++;
      in_flight.emplace(id, i);
      account(+1);

      const Duration stalled = engine_.now() - head_since;
      stats_.queue_delay_total += stalled;
      stats_.queue_delay_max = std::max(stats_.queue_delay_max, stalled);
      head_since = engine_.now();

      ++stats_.chunks;
      stats_.bytes += c.len;
      if (c.members.size() > 1) ++stats_.extents_coalesced;
      if (c.kind == TransferChunk::Kind::kLocalCopy) {
        PORTUS_CHECK(device_ != nullptr && copy_channel_ != nullptr,
                     "local-copy chunk with no PMEM binding");
        ++stats_.local_chunks;
        engine_.spawn(run_local_copy(id, c));
      } else {
        PORTUS_CHECK(!qps_.empty(), "RDMA chunk in a pipelined transfer with no QPs");
        ++stats_.rdma_chunks;
        ++stats_.wrs_posted;
        stats_.sges_posted += c.members.empty() ? 1 : c.members.size();
        stats_.rdma_bytes += c.len;
        rdma::WorkRequest wr{
            .opcode = c.kind == TransferChunk::Kind::kRead ? rdma::WcOpcode::kRead
                                                           : rdma::WcOpcode::kWrite,
            .wr_id = id,
            .lkey = c.lkey,
            .local_addr = c.local_addr,
            .length = c.len,
            .rkey = c.rkey,
            .remote_addr = c.remote_addr};
        // A coalesced extent rides one WR with a remote gather list: one
        // WQE, one doorbell, one completion for the whole tensor run.
        wr.remote_sges.reserve(c.members.size());
        for (const auto& m : c.members) {
          wr.remote_sges.push_back(rdma::RemoteSge{m.rkey, m.remote_addr, m.len});
        }
        rdma_this_burst = true;
        if (config_.batch_doorbells) {
          lane_batch[i % lanes].push_back(std::move(wr));
        } else {
          qps_[i % lanes]->post(std::move(wr));
          ++stats_.doorbells;
        }
      }
    }
    // Flush the burst: one chained post — one doorbell — per lane touched.
    for (std::size_t l = 0; l < lanes; ++l) {
      if (lane_batch[l].empty()) continue;
      qps_[l]->post(std::span<const rdma::WorkRequest>{lane_batch[l]});
      ++stats_.doorbells;
      lane_batch[l].clear();
    }
    if (rdma_this_burst) ++stats_.admission_windows;
    // After a failure everything already posted must still drain (RC
    // ordering: in-flight WQEs cannot be recalled).
    if (in_flight.empty()) break;

    process(co_await cq_.wait());
    // Soak up everything else already completed before re-admitting, so
    // the next burst refills whole windows instead of trickling one slot
    // at a time (and its doorbell batches stay wide).
    while (!in_flight.empty()) {
      const auto extra = cq_.poll();
      if (!extra.has_value()) break;
      process(*extra);
    }
  }
  account(0);  // close the occupancy integral at the final timestamp
  stats_.busy += engine_.now() - start;
  PORTUS_CHECK(failure.empty(), failure);
}

std::vector<std::uint32_t> PipelinedTransfer::tensor_crcs(std::size_t tensor_count) const {
  std::vector<std::vector<const ChunkCrc*>> per_tensor(tensor_count);
  for (const auto& c : chunk_crcs_) {
    PORTUS_CHECK(c.tensor_index < tensor_count, "chunk CRC for out-of-range tensor");
    per_tensor[c.tensor_index].push_back(&c);
  }
  std::vector<std::uint32_t> out(tensor_count, 0);
  for (std::size_t t = 0; t < tensor_count; ++t) {
    auto& parts = per_tensor[t];
    PORTUS_CHECK(!parts.empty(), strf("no CRC chunks collected for tensor {}", t));
    // Chunks complete out of order across lanes; stitch them back together
    // by offset and fold with CRC combination instead of re-reading payload.
    std::sort(parts.begin(), parts.end(), [](const ChunkCrc* a, const ChunkCrc* b) {
      return a->tensor_offset < b->tensor_offset;
    });
    Bytes cursor = 0;
    std::uint32_t acc = 0;
    for (const auto* c : parts) {
      PORTUS_CHECK(c->tensor_offset == cursor,
                   strf("CRC chunk coverage gap in tensor {} at offset {}", t, cursor));
      acc = cursor == 0 ? c->crc : Crc32::combine(acc, c->crc, c->len);
      cursor += c->len;
    }
    out[t] = acc;
  }
  return out;
}

}  // namespace portus::core
