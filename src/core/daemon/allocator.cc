#include "core/daemon/allocator.h"

#include <algorithm>

#include "common/binary_io.h"
#include "common/crc32.h"
#include "common/error.h"

namespace portus::core {

PmemAllocator::PmemAllocator(pmem::PmemDevice& device, Config config)
    : device_{device}, config_{config}, bump_{config.data_offset} {
  PORTUS_CHECK_ARG(config_.data_offset < config_.data_end, "empty allocator heap");
  PORTUS_CHECK_ARG(config_.data_end <= device.size(), "heap exceeds device");
  PORTUS_CHECK_ARG(
      config_.table_offset + static_cast<Bytes>(config_.table_capacity) * kEntrySize <=
          config_.data_offset,
      "AllocTable overlaps the heap");
  PORTUS_CHECK_ARG((config_.alignment & (config_.alignment - 1)) == 0,
                   "alignment must be a power of two");
  entries_.reserve(config_.table_capacity);
  for (std::uint32_t i = 0; i < config_.table_capacity; ++i) {
    entries_.push_back(std::make_unique<Entry>());
  }
}

void PmemAllocator::persist_entry(std::uint32_t index) {
  const Entry& e = *entries_[index];
  // Write-through races with a concurrent claim/free of the same entry:
  // free() may persist FREE while an alloc() that just reused the extent
  // persists LIVE, and whichever lands last would wedge the table out of
  // sync with the DRAM mirror. Re-persist until the state we wrote is
  // still the live state — the loser of the CAS race re-writes the
  // winner's state, so the table always converges to the mirror.
  while (true) {
    const auto state = e.state.load(std::memory_order_acquire);
    BinaryWriter w;
    w.u64(e.offset);
    w.u64(e.size);
    w.u32(state);
    w.u32(Crc32::of(w.buffer().data(), w.buffer().size()));
    device_.write(table_slot_offset(index), w.buffer());
    device_.persist(table_slot_offset(index), kEntrySize);
    if (e.state.load(std::memory_order_acquire) == state) return;
  }
}

Bytes PmemAllocator::alloc(Bytes size) {
  PORTUS_CHECK_ARG(size > 0, "cannot allocate zero bytes");
  size = (size + config_.alignment - 1) & ~(config_.alignment - 1);

  // First fit over freed extents, claimed lock-free.
  const auto count = entry_count_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < count; ++i) {
    Entry& e = *entries_[i];
    if (e.size < size) continue;
    auto expected = static_cast<std::uint32_t>(AllocState::kFree);
    if (e.size > 0 &&
        e.state.compare_exchange_strong(expected,
                                        static_cast<std::uint32_t>(AllocState::kClaimed),
                                        std::memory_order_acq_rel)) {
      e.state.store(static_cast<std::uint32_t>(AllocState::kLive),
                    std::memory_order_release);
      persist_entry(i);
      return e.offset;
    }
  }

  // Fresh space from the bump region.
  const Bytes offset = bump_.fetch_add(size, std::memory_order_acq_rel);
  if (offset + size > config_.data_end) {
    bump_.fetch_sub(size, std::memory_order_acq_rel);
    throw ResourceExhausted("PMEM heap exhausted (repack may reclaim space)");
  }
  const auto index = entry_count_.fetch_add(1, std::memory_order_acq_rel);
  if (index >= config_.table_capacity) {
    entry_count_.fetch_sub(1, std::memory_order_acq_rel);
    bump_.fetch_sub(size, std::memory_order_acq_rel);
    throw ResourceExhausted("AllocTable full");
  }
  Entry& e = *entries_[index];
  e.offset = offset;
  e.size = size;
  e.state.store(static_cast<std::uint32_t>(AllocState::kLive), std::memory_order_release);
  persist_entry(index);
  return offset;
}

void PmemAllocator::free(Bytes offset) {
  const auto count = entry_count_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < count; ++i) {
    Entry& e = *entries_[i];
    if (e.offset != offset || e.size == 0) continue;
    auto expected = static_cast<std::uint32_t>(AllocState::kLive);
    if (e.state.compare_exchange_strong(expected,
                                        static_cast<std::uint32_t>(AllocState::kFree),
                                        std::memory_order_acq_rel)) {
      persist_entry(i);
      return;
    }
    throw InvalidArgument("double free of PMEM extent");
  }
  throw InvalidArgument("free of unknown PMEM offset");
}

void PmemAllocator::recover() {
  entry_count_.store(0, std::memory_order_release);
  Bytes high_water = config_.data_offset;
  std::uint32_t count = 0;
  for (std::uint32_t i = 0; i < config_.table_capacity; ++i) {
    const auto raw = device_.read(table_slot_offset(i), kEntrySize);
    BinaryReader r{raw};
    const Bytes offset = r.u64();
    const Bytes size = r.u64();
    const auto state = r.u32();
    const auto crc = r.u32();
    if (crc != Crc32::of(raw.data(), 20)) continue;  // torn or never written
    if (size == 0) continue;                         // dead entry
    Entry& e = *entries_[i];
    e.offset = offset;
    e.size = size;
    // A crash mid-allocation leaves CLAIMED; nothing can reference it yet,
    // so it recovers as FREE.
    const auto st = state == static_cast<std::uint32_t>(AllocState::kLive)
                        ? AllocState::kLive
                        : AllocState::kFree;
    e.state.store(static_cast<std::uint32_t>(st), std::memory_order_release);
    high_water = std::max(high_water, offset + size);
    count = std::max(count, i + 1);
  }
  entry_count_.store(count, std::memory_order_release);
  bump_.store(high_water, std::memory_order_release);
}

Bytes PmemAllocator::live_bytes() const {
  Bytes total = 0;
  const auto count = entry_count_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < count; ++i) {
    const Entry& e = *entries_[i];
    if (e.state.load(std::memory_order_acquire) ==
        static_cast<std::uint32_t>(AllocState::kLive)) {
      total += e.size;
    }
  }
  return total;
}

Bytes PmemAllocator::free_listed_bytes() const {
  Bytes total = 0;
  const auto count = entry_count_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < count; ++i) {
    const Entry& e = *entries_[i];
    if (e.size > 0 && e.state.load(std::memory_order_acquire) ==
                          static_cast<std::uint32_t>(AllocState::kFree)) {
      total += e.size;
    }
  }
  return total;
}

std::vector<PmemAllocator::Extent> PmemAllocator::extents() const {
  std::vector<Extent> out;
  const auto count = entry_count_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < count; ++i) {
    const Entry& e = *entries_[i];
    if (e.size == 0) continue;
    out.push_back(Extent{e.offset, e.size,
                         static_cast<AllocState>(e.state.load(std::memory_order_acquire))});
  }
  std::sort(out.begin(), out.end(),
            [](const Extent& a, const Extent& b) { return a.offset < b.offset; });
  return out;
}

Bytes PmemAllocator::sweep_gaps() {
  // Single-threaded by contract (see header).
  Bytes adopted = 0;
  Bytes cursor = config_.data_offset;
  const auto adopt_up_to = [&](Bytes end) {
    if (end <= cursor) return;
    const auto count = entry_count_.load(std::memory_order_acquire);
    std::uint32_t idx = count;
    for (std::uint32_t i = 0; i < count; ++i) {
      if (entries_[i]->size == 0) {
        idx = i;  // reuse a dead slot
        break;
      }
    }
    if (idx == count) {
      if (count >= config_.table_capacity) {
        throw ResourceExhausted("AllocTable full while adopting leaked extents");
      }
      entry_count_.store(count + 1, std::memory_order_release);
    }
    Entry& e = *entries_[idx];
    e.offset = cursor;
    e.size = end - cursor;
    e.state.store(static_cast<std::uint32_t>(AllocState::kFree),
                  std::memory_order_release);
    persist_entry(idx);
    adopted += end - cursor;
  };
  for (const auto& ext : extents()) {
    adopt_up_to(ext.offset);
    cursor = std::max(cursor, ext.offset + ext.size);
  }
  adopt_up_to(bump_.load(std::memory_order_acquire));
  return adopted;
}

Bytes PmemAllocator::compact() {
  // Single-threaded by contract. Repeatedly absorb the highest free extent
  // that touches the bump pointer.
  Bytes reclaimed = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    const auto count = entry_count_.load(std::memory_order_acquire);
    for (std::uint32_t i = 0; i < count; ++i) {
      Entry& e = *entries_[i];
      if (e.size == 0) continue;
      if (e.state.load(std::memory_order_acquire) !=
          static_cast<std::uint32_t>(AllocState::kFree)) {
        continue;
      }
      if (e.offset + e.size == bump_.load(std::memory_order_acquire)) {
        bump_.store(e.offset, std::memory_order_release);
        reclaimed += e.size;
        e.size = 0;
        e.offset = 0;
        persist_entry(i);
        progress = true;
      }
    }
  }
  return reclaimed;
}

}  // namespace portus::core
