#include "core/daemon/allocator.h"

#include <algorithm>

#include "common/binary_io.h"
#include "common/crc32.h"
#include "common/error.h"

namespace portus::core {

namespace {
constexpr std::uint64_t kHeaderMagic = 0x504F525453483031ull;  // "PORTSH01"
}

PmemAllocator::PmemAllocator(pmem::PmemDevice& device, Config config)
    : device_{device}, config_{config}, bump_{config.data_offset} {
  PORTUS_CHECK_ARG(config_.data_offset < config_.data_end, "empty allocator heap");
  PORTUS_CHECK_ARG(config_.data_end <= device.size(), "heap exceeds device");
  PORTUS_CHECK_ARG(config_.shards >= 1, "allocator needs at least one shard");
  PORTUS_CHECK_ARG(config_.shards <= config_.table_capacity,
                   "more shards than AllocTable entries");
  per_shard_capacity_ = config_.table_capacity / config_.shards;
  PORTUS_CHECK_ARG(
      config_.table_offset + kHeaderSize +
              static_cast<Bytes>(config_.shards) * per_shard_capacity_ * kEntrySize <=
          config_.data_offset,
      "AllocTable overlaps the heap");
  PORTUS_CHECK_ARG((config_.alignment & (config_.alignment - 1)) == 0,
                   "alignment must be a power of two");
  shards_.reserve(config_.shards);
  for (std::uint32_t s = 0; s < config_.shards; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->entries.reserve(per_shard_capacity_);
    for (std::uint32_t i = 0; i < per_shard_capacity_; ++i) {
      sh->entries.push_back(std::make_unique<Entry>());
    }
    shards_.push_back(std::move(sh));
  }
  // A fresh (or foreign-geometry) device gets a fresh header; a matching
  // one is left untouched so recover() can trust the image beneath it.
  if (!header_matches()) write_header();
}

void PmemAllocator::write_header() {
  BinaryWriter w;
  w.u64(kHeaderMagic);
  w.u32(config_.shards);
  w.u32(per_shard_capacity_);
  w.u64(config_.data_offset);
  w.u64(config_.data_end);
  w.u64(config_.alignment);
  w.u64(config_.refill_bytes);  // informational: runtime policy, not geometry
  w.u64(0);                     // reserved
  w.u32(Crc32::of(w.buffer().data(), w.buffer().size()));
  w.u32(0);  // pad to kHeaderSize
  device_.write(config_.table_offset, w.buffer());
  device_.persist(config_.table_offset, kHeaderSize);
}

bool PmemAllocator::header_matches() const {
  const auto raw = device_.read(config_.table_offset, kHeaderSize);
  BinaryReader r{raw};
  const auto magic = r.u64();
  const auto shards = r.u32();
  const auto per_shard = r.u32();
  const auto data_offset = r.u64();
  const auto data_end = r.u64();
  const auto alignment = r.u64();
  r.u64();  // refill policy
  r.u64();  // reserved
  const auto crc = r.u32();
  if (crc != Crc32::of(raw.data(), 56)) return false;
  return magic == kHeaderMagic && shards == config_.shards &&
         per_shard == per_shard_capacity_ && data_offset == config_.data_offset &&
         data_end == config_.data_end && alignment == config_.alignment;
}

// --- quiesce guard ----------------------------------------------------------

PmemAllocator::OpGuard::OpGuard(const PmemAllocator& a) : a_{a} {
  a_.active_ops_.fetch_add(1, std::memory_order_acq_rel);
  if (a_.paused_.load(std::memory_order_acquire) && !a_.quiesced_by_me()) {
    a_.active_ops_.fetch_sub(1, std::memory_order_acq_rel);
    throw InvalidArgument("allocator quiesced for maintenance (repack/fsck in flight)");
  }
}

PmemAllocator::OpGuard::~OpGuard() {
  a_.active_ops_.fetch_sub(1, std::memory_order_acq_rel);
}

void PmemAllocator::quiesce_acquire() {
  const auto me = std::this_thread::get_id();
  if (paused_.load(std::memory_order_acquire) &&
      pause_owner_.load(std::memory_order_acquire) == me) {
    ++pause_depth_;  // re-entrant: compact() inside a repacker Pause
    return;
  }
  bool expected = false;
  while (!paused_.compare_exchange_weak(expected, true, std::memory_order_acq_rel)) {
    expected = false;
    std::this_thread::yield();
  }
  pause_owner_.store(me, std::memory_order_release);
  pause_depth_ = 1;
  // Drain ops that raced past the flag before it flipped.
  while (active_ops_.load(std::memory_order_acquire) != 0) std::this_thread::yield();
}

void PmemAllocator::quiesce_release() {
  if (--pause_depth_ > 0) return;
  pause_owner_.store(std::thread::id{}, std::memory_order_release);
  paused_.store(false, std::memory_order_release);
}

bool PmemAllocator::quiesced_by_me() const {
  return paused_.load(std::memory_order_acquire) &&
         pause_owner_.load(std::memory_order_acquire) == std::this_thread::get_id();
}

// --- offset index -----------------------------------------------------------

void PmemAllocator::map_insert(Bytes offset, std::uint32_t shard, std::uint32_t index) {
  auto& b = bucket_for(offset);
  std::lock_guard<std::mutex> lk{b.mu};
  b.loc[offset] = (static_cast<std::uint64_t>(shard) << 32) | index;
}

void PmemAllocator::map_erase(Bytes offset) {
  auto& b = bucket_for(offset);
  std::lock_guard<std::mutex> lk{b.mu};
  b.loc.erase(offset);
}

std::optional<std::pair<std::uint32_t, std::uint32_t>> PmemAllocator::map_find(
    Bytes offset) const {
  auto& b = bucket_for(offset);
  std::lock_guard<std::mutex> lk{b.mu};
  const auto it = b.loc.find(offset);
  if (it == b.loc.end()) return std::nullopt;
  return std::make_pair(static_cast<std::uint32_t>(it->second >> 32),
                        static_cast<std::uint32_t>(it->second & 0xFFFFFFFFu));
}

// --- persistence ------------------------------------------------------------

void PmemAllocator::persist_entry(std::uint32_t shard, std::uint32_t index) {
  const Entry& e = *shards_[shard]->entries[index];
  // Write-through races with a concurrent claim/free of the same entry:
  // free() may persist FREE while an alloc() that just reused the extent
  // persists LIVE, and whichever lands last would wedge the table out of
  // sync with the DRAM mirror. Re-persist until the state we wrote is
  // still the live state — the loser of the CAS race re-writes the
  // winner's state, so the table always converges to the mirror. The
  // shard persist lock keeps the racing device writes themselves ordered
  // (see the persist_mu comment in the header).
  std::lock_guard<std::mutex> persist_lk{shards_[shard]->persist_mu};
  while (true) {
    const auto state = e.state.load(std::memory_order_acquire);
    BinaryWriter w;
    w.u64(e.offset);
    w.u64(e.size);
    w.u32(state);
    w.u32(Crc32::of(w.buffer().data(), w.buffer().size()));
    device_.write(table_slot_offset(shard, index), w.buffer());
    device_.persist(table_slot_offset(shard, index), kEntrySize);
    if (e.state.load(std::memory_order_acquire) == state) return;
  }
}

// --- allocation -------------------------------------------------------------

std::uint32_t PmemAllocator::preferred_shard() const {
  if (config_.shards == 1) return 0;
  return static_cast<std::uint32_t>(std::hash<std::thread::id>{}(std::this_thread::get_id()) %
                                    config_.shards);
}

std::optional<Bytes> PmemAllocator::claim_free_extent(std::uint32_t shard, Bytes size) {
  Shard& sh = *shards_[shard];
  const auto count = sh.entry_count.load(std::memory_order_acquire);
  // First fit over this shard's freed extents, claimed lock-free.
  for (std::uint32_t i = 0; i < count; ++i) {
    Entry& e = *sh.entries[i];
    if (e.size < size || e.size == 0) continue;
    auto expected = static_cast<std::uint32_t>(AllocState::kFree);
    if (e.state.compare_exchange_strong(expected,
                                        static_cast<std::uint32_t>(AllocState::kClaimed),
                                        std::memory_order_acq_rel)) {
      e.state.store(static_cast<std::uint32_t>(AllocState::kLive),
                    std::memory_order_release);
      persist_entry(shard, i);
      return e.offset;
    }
  }
  return std::nullopt;
}

void PmemAllocator::flush_reservation(std::uint32_t shard) {
  // Caller holds the shard's res_mu (alloc refill) or the quiesce pause.
  Shard& sh = *shards_[shard];
  const Bytes tail = sh.res_end - sh.res_cursor;
  if (tail == 0) return;
  const auto index = sh.entry_count.load(std::memory_order_acquire);
  if (index < per_shard_capacity_) {
    Entry& e = *sh.entries[index];
    e.offset = sh.res_cursor;
    e.size = tail;
    e.state.store(static_cast<std::uint32_t>(AllocState::kFree),
                  std::memory_order_release);
    sh.entry_count.store(index + 1, std::memory_order_release);
    map_insert(e.offset, shard, index);
    persist_entry(shard, index);
  }
  // Shard table full: the tail is abandoned as a heap gap; sweep_gaps()
  // re-adopts it on the next maintenance pass.
  sh.res_cursor = 0;
  sh.res_end = 0;
}

Bytes PmemAllocator::alloc(Bytes size) { return alloc_on(preferred_shard(), size); }

Bytes PmemAllocator::alloc_on(std::uint32_t shard, Bytes size) {
  PORTUS_CHECK_ARG(size > 0, "cannot allocate zero bytes");
  PORTUS_CHECK_ARG(shard < config_.shards, "shard index out of range");
  size = (size + config_.alignment - 1) & ~(config_.alignment - 1);
  OpGuard guard{*this};
  Shard& sh = *shards_[shard];

  if (const auto off = claim_free_extent(shard, size)) {
    sh.reuse_hits.fetch_add(1, std::memory_order_relaxed);
    sh.allocs.fetch_add(1, std::memory_order_relaxed);
    return *off;
  }

  // Fresh space from the shard's reservation, refilled from the global bump.
  const char* fail = nullptr;
  {
    std::lock_guard<std::mutex> lk{sh.res_mu};
    if (sh.res_end - sh.res_cursor < size) {
      const Bytes chunk = (std::max(config_.refill_bytes, size) + config_.alignment - 1) &
                          ~(config_.alignment - 1);
      const Bytes base = bump_.fetch_add(chunk, std::memory_order_acq_rel);
      if (base + chunk > config_.data_end) {
        bump_.fetch_sub(chunk, std::memory_order_acq_rel);
        fail = "PMEM heap exhausted (repack may reclaim space)";
      } else {
        // Publish the old reservation's tail before switching — its persist
        // is the mid-refill crash fence: a power cut leaves the tail either
        // still unpublished (a sweepable gap) or a tracked FREE extent,
        // never a range two shards both think they own.
        flush_reservation(shard);
        sh.res_cursor = base;
        sh.res_end = base + chunk;
        sh.refills.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (fail == nullptr) {
      const auto index = sh.entry_count.load(std::memory_order_acquire);
      if (index >= per_shard_capacity_) {
        fail = "AllocTable shard full";
      } else {
        Entry& e = *sh.entries[index];
        e.offset = sh.res_cursor;
        e.size = size;
        e.state.store(static_cast<std::uint32_t>(AllocState::kLive),
                      std::memory_order_release);
        sh.res_cursor += size;
        sh.entry_count.store(index + 1, std::memory_order_release);
        map_insert(e.offset, shard, index);
        persist_entry(shard, index);
        sh.allocs.fetch_add(1, std::memory_order_relaxed);
        return e.offset;
      }
    }
  }

  // Slow path: steal a freed extent from another shard before giving up.
  for (std::uint32_t t = 0; t < config_.shards; ++t) {
    if (t == shard) continue;
    if (const auto off = claim_free_extent(t, size)) {
      sh.steals.fetch_add(1, std::memory_order_relaxed);
      sh.allocs.fetch_add(1, std::memory_order_relaxed);
      return *off;
    }
  }
  throw ResourceExhausted(fail);
}

void PmemAllocator::free(Bytes offset) {
  OpGuard guard{*this};
  const auto loc = map_find(offset);
  if (!loc.has_value()) throw InvalidArgument("free of unknown PMEM offset");
  Shard& sh = *shards_[loc->first];
  Entry& e = *sh.entries[loc->second];
  PORTUS_CHECK(e.offset == offset && e.size > 0,
               "offset index out of sync with the AllocTable mirror");
  auto expected = static_cast<std::uint32_t>(AllocState::kLive);
  if (!e.state.compare_exchange_strong(expected,
                                       static_cast<std::uint32_t>(AllocState::kFree),
                                       std::memory_order_acq_rel)) {
    throw InvalidArgument("double free of PMEM extent");
  }
  persist_entry(loc->first, loc->second);
  sh.frees.fetch_add(1, std::memory_order_relaxed);
}

// --- recovery / maintenance -------------------------------------------------

void PmemAllocator::recover() {
  Pause pause{*this};
  PORTUS_CHECK(header_matches(), "AllocTable header torn or geometry mismatch");
  for (auto& b : map_) {
    std::lock_guard<std::mutex> lk{b.mu};
    b.loc.clear();
  }
  Bytes high_water = config_.data_offset;
  for (std::uint32_t s = 0; s < config_.shards; ++s) {
    Shard& sh = *shards_[s];
    std::lock_guard<std::mutex> lk{sh.res_mu};
    // A crash abandons any unpublished reservation tail; it resurfaces as
    // a heap gap for sweep_gaps(), never as a live reservation.
    sh.res_cursor = 0;
    sh.res_end = 0;
    std::uint32_t count = 0;
    for (std::uint32_t i = 0; i < per_shard_capacity_; ++i) {
      Entry& e = *sh.entries[i];
      e.offset = 0;
      e.size = 0;
      e.state.store(static_cast<std::uint32_t>(AllocState::kFree),
                    std::memory_order_release);
      const auto raw = device_.read(table_slot_offset(s, i), kEntrySize);
      BinaryReader r{raw};
      const Bytes offset = r.u64();
      const Bytes size = r.u64();
      const auto state = r.u32();
      const auto crc = r.u32();
      if (crc != Crc32::of(raw.data(), 20)) continue;  // torn or never written
      if (size == 0) continue;                         // dead entry
      e.offset = offset;
      e.size = size;
      // A crash mid-allocation leaves CLAIMED; nothing can reference it yet,
      // so it recovers as FREE.
      const auto st = state == static_cast<std::uint32_t>(AllocState::kLive)
                          ? AllocState::kLive
                          : AllocState::kFree;
      e.state.store(static_cast<std::uint32_t>(st), std::memory_order_release);
      map_insert(offset, s, i);
      high_water = std::max(high_water, offset + size);
      count = std::max(count, i + 1);
    }
    sh.entry_count.store(count, std::memory_order_release);
  }
  bump_.store(high_water, std::memory_order_release);
}

Bytes PmemAllocator::live_bytes() const {
  Bytes total = 0;
  for (const auto& sh : shards_) {
    const auto count = sh->entry_count.load(std::memory_order_acquire);
    for (std::uint32_t i = 0; i < count; ++i) {
      const Entry& e = *sh->entries[i];
      if (e.state.load(std::memory_order_acquire) ==
          static_cast<std::uint32_t>(AllocState::kLive)) {
        total += e.size;
      }
    }
  }
  return total;
}

Bytes PmemAllocator::free_listed_bytes() const {
  Bytes total = 0;
  for (const auto& sh : shards_) {
    const auto count = sh->entry_count.load(std::memory_order_acquire);
    for (std::uint32_t i = 0; i < count; ++i) {
      const Entry& e = *sh->entries[i];
      if (e.size > 0 && e.state.load(std::memory_order_acquire) ==
                            static_cast<std::uint32_t>(AllocState::kFree)) {
        total += e.size;
      }
    }
  }
  return total;
}

std::vector<PmemAllocator::Extent> PmemAllocator::extents() const {
  std::vector<Extent> out;
  for (const auto& sh : shards_) {
    const auto count = sh->entry_count.load(std::memory_order_acquire);
    for (std::uint32_t i = 0; i < count; ++i) {
      const Entry& e = *sh->entries[i];
      if (e.size == 0) continue;
      out.push_back(Extent{e.offset, e.size,
                           static_cast<AllocState>(e.state.load(std::memory_order_acquire))});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Extent& a, const Extent& b) { return a.offset < b.offset; });
  return out;
}

std::vector<PmemAllocator::ShardStats> PmemAllocator::shard_stats() const {
  std::vector<ShardStats> out;
  out.reserve(config_.shards);
  for (std::uint32_t s = 0; s < config_.shards; ++s) {
    Shard& sh = *shards_[s];
    ShardStats st;
    st.shard = s;
    st.capacity = per_shard_capacity_;
    const auto count = sh.entry_count.load(std::memory_order_acquire);
    st.entries = count;
    for (std::uint32_t i = 0; i < count; ++i) {
      const Entry& e = *sh.entries[i];
      if (e.size == 0) continue;
      const auto state = e.state.load(std::memory_order_acquire);
      if (state == static_cast<std::uint32_t>(AllocState::kLive)) st.live += e.size;
      if (state == static_cast<std::uint32_t>(AllocState::kFree)) st.free_listed += e.size;
    }
    {
      std::lock_guard<std::mutex> lk{sh.res_mu};
      st.reserved = sh.res_end - sh.res_cursor;
    }
    st.allocs = sh.allocs.load(std::memory_order_relaxed);
    st.frees = sh.frees.load(std::memory_order_relaxed);
    st.refills = sh.refills.load(std::memory_order_relaxed);
    st.reuse_hits = sh.reuse_hits.load(std::memory_order_relaxed);
    st.steals = sh.steals.load(std::memory_order_relaxed);
    out.push_back(st);
  }
  return out;
}

PmemAllocator::TableScrub PmemAllocator::scrub_table() const {
  TableScrub out;
  out.header_valid = header_matches();
  out.shards = config_.shards;
  for (std::uint32_t s = 0; s < config_.shards; ++s) {
    for (std::uint32_t i = 0; i < per_shard_capacity_; ++i) {
      const auto raw = device_.read(table_slot_offset(s, i), kEntrySize);
      BinaryReader r{raw};
      r.u64();  // offset
      r.u64();  // size
      r.u32();  // state
      const auto crc = r.u32();
      if (crc == Crc32::of(raw.data(), 20)) continue;
      const bool all_zero = std::all_of(raw.begin(), raw.end(),
                                        [](std::byte b) { return b == std::byte{0}; });
      if (!all_zero) ++out.torn_entries;
    }
  }
  return out;
}

Bytes PmemAllocator::sweep_gaps() {
  Pause pause{*this};
  // Reservations are owned space, not leaks: publish their tails first so
  // the gap scan below only ever adopts genuinely untracked bytes.
  for (std::uint32_t s = 0; s < config_.shards; ++s) {
    std::lock_guard<std::mutex> lk{shards_[s]->res_mu};
    flush_reservation(s);
  }
  Bytes adopted = 0;
  Bytes cursor = config_.data_offset;
  const auto adopt_up_to = [&](Bytes end) {
    if (end <= cursor) return;
    // Reuse a dead table slot anywhere, else append to a shard with room.
    std::uint32_t s = 0;
    std::uint32_t idx = 0;
    bool found = false;
    for (std::uint32_t t = 0; t < config_.shards && !found; ++t) {
      const auto count = shards_[t]->entry_count.load(std::memory_order_acquire);
      for (std::uint32_t i = 0; i < count; ++i) {
        if (shards_[t]->entries[i]->size == 0) {
          s = t;
          idx = i;
          found = true;
          break;
        }
      }
    }
    if (!found) {
      for (std::uint32_t t = 0; t < config_.shards; ++t) {
        const auto count = shards_[t]->entry_count.load(std::memory_order_acquire);
        if (count < per_shard_capacity_) {
          s = t;
          idx = count;
          shards_[t]->entry_count.store(count + 1, std::memory_order_release);
          found = true;
          break;
        }
      }
    }
    if (!found) {
      throw ResourceExhausted("AllocTable full while adopting leaked extents");
    }
    Entry& e = *shards_[s]->entries[idx];
    e.offset = cursor;
    e.size = end - cursor;
    e.state.store(static_cast<std::uint32_t>(AllocState::kFree),
                  std::memory_order_release);
    map_insert(e.offset, s, idx);
    persist_entry(s, idx);
    adopted += end - cursor;
  };
  for (const auto& ext : extents()) {
    adopt_up_to(ext.offset);
    cursor = std::max(cursor, ext.offset + ext.size);
  }
  adopt_up_to(bump_.load(std::memory_order_acquire));
  return adopted;
}

Bytes PmemAllocator::compact() {
  Pause pause{*this};
  // Reservation tails sit right under the bump pointer more often than not;
  // publishing them as FREE entries lets the absorb loop reclaim them too.
  for (std::uint32_t s = 0; s < config_.shards; ++s) {
    std::lock_guard<std::mutex> lk{shards_[s]->res_mu};
    flush_reservation(s);
  }
  // Repeatedly absorb the free extent (any shard) touching the bump pointer.
  Bytes reclaimed = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::uint32_t s = 0; s < config_.shards; ++s) {
      Shard& sh = *shards_[s];
      const auto count = sh.entry_count.load(std::memory_order_acquire);
      for (std::uint32_t i = 0; i < count; ++i) {
        Entry& e = *sh.entries[i];
        if (e.size == 0) continue;
        if (e.state.load(std::memory_order_acquire) !=
            static_cast<std::uint32_t>(AllocState::kFree)) {
          continue;
        }
        if (e.offset + e.size == bump_.load(std::memory_order_acquire)) {
          bump_.store(e.offset, std::memory_order_release);
          reclaimed += e.size;
          map_erase(e.offset);
          e.size = 0;
          e.offset = 0;
          persist_entry(s, i);
          progress = true;
        }
      }
    }
  }
  return reclaimed;
}

}  // namespace portus::core
