// MIndex: the second level of the three-level index (SS III-D1).
//
// One record per registered model, stored on PMEM at the info_offset that
// ModelTable points to. It holds the model's full tensor metadata (layer
// count, names, dtypes, shapes, sizes, per-tensor offsets inside a slot)
// and the two *checkpoint slot* headers of the double-mapping consistency
// scheme (SS III-D2). Each slot references one contiguous TensorData region
// — the third index level — allocated from the PMEM heap and registered as
// an RDMA memory region.
//
// PMEM record layout (little-endian):
//   [u32 magic][u32 record_len]
//   [slot0: u32 state | u64 epoch | u64 data_offset | u32 crc]   (24 B)
//   [slot1: ditto]
//   [u32 meta_len]
//   [meta blob: name, phantom flag, shard identity, manifest blob,
//    slot_size, tensor entries..., u32 crc]
//   [payload-CRC block 0][payload-CRC block 1]
//
// Each payload-CRC block is [u64 epoch][per-tensor u32 CRC x T][u32 guard]
// (guard = CRC over the preceding bytes). The pipelined datapath computes
// the per-tensor CRCs inline as checkpoint chunks land and persists the
// block BEFORE the slot flips DONE, so every DONE slot has a valid block:
// restore and `portusctl fsck` verify the TensorData against it, and a
// DONE slot whose block is torn or stale is itself proof of corruption.
//
// Sharded models (core/cluster/) store one MIndex per shard copy under the
// shard-scoped ModelTable key; the meta blob then carries the copy's shard
// identity and the encoded ShardManifest, so the full cluster placement is
// reconstructible from any one surviving daemon's PMEM alone.
//
// Slot headers are fixed-offset so a checkpoint flips its flag with one
// 24-byte write + persist — no record rewrite. Persist ordering is the
// crash-consistency contract:
//   ACTIVE flag persisted  ->  tensor data pulled & persisted  ->
//   DONE flag (with new epoch) persisted.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "core/daemon/allocator.h"
#include "core/protocol.h"
#include "pmem/pmem_device.h"

namespace portus::core {

enum class SlotState : std::uint32_t { kEmpty = 0, kActive = 1, kDone = 2 };

const char* to_string(SlotState s);

struct SlotHeader {
  SlotState state = SlotState::kEmpty;
  std::uint64_t epoch = 0;
  Bytes data_offset = 0;  // device offset of this slot's TensorData region
};

struct IndexedTensor {
  std::string name;
  dnn::DType dtype = dnn::DType::kF32;
  std::vector<std::int64_t> shape;
  Bytes size = 0;
  Bytes offset_in_slot = 0;  // paddr = slot.data_offset + offset_in_slot
};

// One chunk of one tensor, as fed to the pipelined datapath: tensors larger
// than chunk_bytes split into consecutive spans so no single giant tensor
// serializes behind one work request.
struct ChunkSpan {
  std::size_t tensor = 0;   // index into MIndex::tensors()
  Bytes offset = 0;         // byte offset of this span within the tensor
  Bytes offset_in_slot = 0; // == tensor.offset_in_slot + offset
  Bytes len = 0;
};

class MIndex {
 public:
  static constexpr std::uint32_t kMagic = 0x584D4950;  // "PIMX"
  static constexpr Bytes kSlotHeaderSize = 24;
  static constexpr Bytes kSlot0Offset = 8;     // after magic + record_len
  static constexpr Bytes kMetaLenOffset = 56;  // after both slot headers
  static constexpr Bytes kMetaOffset = 60;

  // Build a fresh record from a registration packet: allocates the record
  // itself and both TensorData slots, persists everything.
  //
  // pack_threshold controls the slot layout: tensors no larger than it are
  // packed back-to-back at their dtype's natural alignment, so runs of
  // small tensors are PMEM-dense and the extent planner can fuse them into
  // multi-SGE gather extents. Larger tensors (and a threshold of 0) keep
  // the classic 256-B-aligned placement — with threshold 0 the layout is
  // byte-identical to what this function always produced.
  static MIndex create(pmem::PmemDevice& device, PmemAllocator& allocator,
                       const RegisterModelMsg& registration,
                       Bytes pack_threshold = 0);

  // Load an existing record (daemon restart / portusctl). Validates magic
  // and metadata CRC; slot headers with bad CRCs surface as kEmpty.
  static MIndex load(pmem::PmemDevice& device, Bytes record_offset);

  const std::string& model_name() const { return model_name_; }
  bool phantom() const { return phantom_; }
  // --- shard identity (defaults describe an unsharded model) ---
  std::uint32_t shard_id() const { return shard_id_; }
  std::uint32_t shard_count() const { return shard_count_; }
  std::uint32_t replica() const { return replica_; }
  std::uint32_t replica_count() const { return replica_count_; }
  std::uint64_t placement_epoch() const { return placement_epoch_; }
  bool sharded() const { return shard_count_ > 1 || replica_count_ > 1; }
  // Encoded ShardManifest (empty for unsharded models).
  const std::vector<std::byte>& manifest() const { return manifest_; }
  Bytes record_offset() const { return record_offset_; }
  Bytes record_size() const { return record_size_; }
  Bytes slot_size() const { return slot_size_; }
  const std::vector<IndexedTensor>& tensors() const { return tensors_; }

  const SlotHeader& slot(int i) const { return slots_.at(static_cast<std::size_t>(i)); }
  pmem::PmemDevice& device() const { return *device_; }

  // Split every tensor into chunk_bytes-sized spans, in slot-layout order;
  // the final span of a tensor carries the remainder. chunk_bytes == 0
  // disables splitting (one span per tensor).
  std::vector<ChunkSpan> chunk_spans(Bytes chunk_bytes) const;

  // Double-mapping slot selection: the slot that is NOT the newest DONE
  // version (overwriting the older/invalid version keeps one valid copy).
  int pick_write_slot() const;
  // The newest DONE slot, if any (restore source).
  std::optional<int> latest_done_slot() const;
  std::uint64_t max_epoch() const;

  // Flip a slot's state (and epoch); persists the 24-byte header.
  void set_slot(int i, SlotState state, std::uint64_t epoch);

  // Drop a slot entirely (EMPTY, epoch 0, no data region) — repacker use.
  // The TensorData extent must have been freed by the caller.
  void clear_slot(int i);

  // Re-provision a slot whose extent was reclaimed (data_offset == 0):
  // allocates a fresh TensorData region so the double-mapping invariant
  // holds again when a repacked model resumes training.
  void ensure_slot(int i, PmemAllocator& allocator);

  // --- per-slot payload integrity block ---
  struct PayloadCrcs {
    std::uint64_t epoch = 0;
    std::vector<std::uint32_t> crcs;  // one per tensor, in tensors() order
  };
  // Read slot i's payload-CRC block from the device. nullopt when the
  // guard CRC does not validate (block never written, or torn by a crash
  // before the post-data persist completed). A valid block whose epoch
  // differs from the slot header's is stale and must be treated the same.
  std::optional<PayloadCrcs> payload_crcs(int i) const;
  // Write and persist slot i's block. crcs.size() must match tensors().
  // Called after the slot's TensorData persisted but BEFORE the DONE flip,
  // extending the crash-consistency ordering to ACTIVE -> data -> CRC
  // block -> DONE.
  void set_payload_crcs(int i, std::uint64_t epoch,
                        const std::vector<std::uint32_t>& crcs);

  // Release both TensorData regions and the record itself.
  void destroy(PmemAllocator& allocator);

 private:
  MIndex() = default;
  void persist_slot_header(int i);
  Bytes crc_block_size() const;       // 12 + 4 * tensors_.size()
  Bytes crc_block_offset(int i) const;

  pmem::PmemDevice* device_ = nullptr;
  Bytes record_offset_ = 0;
  Bytes record_size_ = 0;
  Bytes meta_len_ = 0;
  std::string model_name_;
  bool phantom_ = false;
  std::uint32_t shard_id_ = 0;
  std::uint32_t shard_count_ = 1;
  std::uint32_t replica_ = 0;
  std::uint32_t replica_count_ = 1;
  std::uint64_t placement_epoch_ = 0;
  std::vector<std::byte> manifest_;
  Bytes slot_size_ = 0;
  std::vector<IndexedTensor> tensors_;
  std::vector<SlotHeader> slots_;  // exactly 2
};

}  // namespace portus::core
