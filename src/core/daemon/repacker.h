// Repacking tool (SS III-D2, Fig. 7): reclaims PMEM held by invalid
// checkpoint versions.
//
// Two sources of garbage:
//   (1) finished training jobs — only the newest DONE version matters; the
//       other slot (older DONE / EMPTY) is outdated;
//   (2) crashed checkpoints — a slot stuck ACTIVE (or recovered torn) holds
//       incomplete data and can never be restored.
//
// Repacking frees those TensorData extents and compacts the allocator's
// tail. It is a stop-the-world maintenance pass: the daemon must be
// quiescent (the paper runs it "in the background ... when available space
// is low", overlapped with training on other tenants).
#pragma once

#include <set>
#include <string>

#include "core/daemon/daemon.h"

namespace portus::core {

class Repacker {
 public:
  struct Report {
    Bytes freed_outdated = 0;   // scenario (1)
    Bytes freed_crashed = 0;    // scenario (2)
    Bytes gaps_adopted = 0;     // leaked (torn-entry) heap bytes re-tracked
    Bytes compacted = 0;        // returned to the bump region
    int slots_cleared = 0;
  };

  explicit Repacker(PortusDaemon& daemon) : daemon_{daemon} {}

  // Reclaim space. Slots of *finished* models that are not the newest DONE
  // version are freed; ACTIVE slots of any model are freed (crash leftovers)
  // unless the model has a live session with that checkpoint still running.
  Report repack();

 private:
  PortusDaemon& daemon_;
};

}  // namespace portus::core
