// Repacking tool (SS III-D2, Fig. 7): reclaims PMEM held by invalid
// checkpoint versions.
//
// Two sources of garbage:
//   (1) finished training jobs — only the newest DONE version matters; the
//       other slot (older DONE / EMPTY) is outdated;
//   (2) crashed checkpoints — a slot stuck ACTIVE (or recovered torn) holds
//       incomplete data and can never be restored.
//
// Repacking frees those TensorData extents and compacts the allocator's
// tail. Two modes:
//
//   * repack() — the classic offline pass: one stop-the-world sweep over
//     every model while the daemon is quiescent.
//
//   * repack_online() — incremental: the model list is walked in bounded
//     batches, each under a short relocation barrier (admissions paused +
//     allocator quiesced) whose length is charged in virtual time, with the
//     daemon serving live traffic between batches. This is the paper's
//     "in the background ... when available space is low" mode made real:
//     the fleet keeps checkpointing while garbage is swept, and only the
//     tenants unlucky enough to arrive inside a window wait it out.
//
// When the daemon runs tenanted, fully-reclaimed models return their PMEM
// capacity charge to their tenant's quota.
#pragma once

#include <set>
#include <string>

#include "core/daemon/daemon.h"

namespace portus::core {

class Repacker {
 public:
  struct Report {
    Bytes freed_outdated = 0;   // scenario (1)
    Bytes freed_crashed = 0;    // scenario (2)
    Bytes gaps_adopted = 0;     // leaked (torn-entry) heap bytes re-tracked
    Bytes compacted = 0;        // returned to the bump region
    int slots_cleared = 0;
    // --- online mode ---
    int passes = 0;             // bounded maintenance windows taken
    Duration paused_time{0};    // total time admissions were barred
  };

  // Knobs for the incremental pass. The window cost model is deliberately
  // simple: a base barrier cost plus a per-cleared-slot relocation cost —
  // enough to make "repack more" visibly cost the fleet latency.
  struct OnlineOptions {
    int models_per_pass = 8;
    Duration pass_cost_base{100'000};     // 0.1 ms barrier setup/teardown
    Duration pass_cost_per_slot{20'000};  // 20 us per slot relocated
    Duration yield{200'000};              // live-traffic gap between passes
  };

  explicit Repacker(PortusDaemon& daemon) : daemon_{daemon} {}

  // Reclaim space. Slots of *finished* models that are not the newest DONE
  // version are freed; ACTIVE slots of any model are freed (crash leftovers)
  // unless the model has a live session with that checkpoint still running.
  Report repack();

  // Incremental variant: same reclamation rules, applied a batch of models
  // at a time under short admission barriers, interleaving with live
  // checkpoint traffic. Safe against the in-flight datapath: the barrier
  // stops *new* admissions and the maintenance work inside a window is
  // synchronous (never suspends), so a window observes a consistent
  // allocator; compact() moves no data, only reclaims the free tail.
  sim::SubTask<Report> repack_online(OnlineOptions options);
  sim::SubTask<Report> repack_online() { return repack_online(OnlineOptions{}); }

 private:
  // Apply the reclamation rules to one model. Returns slots cleared.
  int reclaim_model(const std::string& name, Report& report);

  PortusDaemon& daemon_;
};

}  // namespace portus::core
