// Portus Daemon: the storage-server side (Fig. 4).
//
// Listens on a TCP endpoint ("portusd"); each client connection is served
// by its own session process. Heavy operations (registration layout,
// checkpoint pulls, restore pushes) run under a worker pool modelled as a
// counting semaphore — the paper's ThreadPool — so concurrency across
// tenants is bounded but real.
//
// PMEM layout on the devdax namespace:
//   [4 KiB  superblock (reserved)]
//   [ModelTable  @ 4 KiB,  capacity x 64 B]
//   [AllocTable  @ 64 KiB, capacity x 24 B]
//   [heap        @ 1 MiB ... device end)   (MIndex records + TensorData)
//
// Checkpoint = CheckpointTxn::begin (ACTIVE persisted) -> pipelined
// one-sided RDMA READs (chunked tensors, bounded window, optional QP
// stripes) from client GPU memory into the slot's TensorData, each chunk
// flushed as it lands -> final persist -> commit (DONE + epoch persisted)
// -> notify client over TCP. Restore = the same pipeline running one-sided
// RDMA WRITEs from the newest DONE slot into the client's (freshly
// registered) GPU buffers. See core/daemon/pipeline.h.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

#include "core/daemon/allocator.h"
#include "core/daemon/mindex.h"
#include "core/daemon/model_table.h"
#include "core/daemon/pipeline.h"
#include "core/daemon/tenant.h"
#include "core/protocol.h"
#include "net/cluster.h"
#include "pmem/devdax.h"
#include "rdma/fabric.h"
#include "sim/fault.h"
#include "sim/sync.h"
#include "sim/trace.h"

namespace portus::core {

class PortusDaemon {
 public:
  struct Config {
    int workers = 8;
    std::uint32_t model_table_capacity = 224;   // fits in [4 KiB, 18 KiB)
    std::uint32_t alloc_table_capacity = 8192;
    // Allocator shards (per-worker arenas; see core/daemon/allocator.h).
    // 1 = the classic single arena, bit-identical offsets and compaction.
    // Match `workers` to give every worker its own table region and free
    // list; the alloc_table_capacity is split evenly across shards.
    std::uint32_t shards = 1;
    // Shard reservation refill: how much fresh heap a shard grabs from the
    // global bump when its local region runs dry. 0 = reserve exactly each
    // request's size (classic bump-per-alloc).
    Bytes alloc_refill_bytes = 0;
    std::string endpoint = "portusd";
    // Optional timeline tracing of checkpoint/restore operations.
    sim::Tracer* tracer = nullptr;
    // --- pipelined datapath knobs (see core/daemon/pipeline.h) ---
    // Outstanding chunks per QP lane. 1 = the classic serial datapath
    // (identical timings, completion awaited before the next post).
    int pipeline_window = 1;
    // Split tensors into chunks of this many bytes so persists overlap
    // transfers and giant tensors do not serialize behind one WR. 0 = off.
    Bytes chunk_bytes = 0;
    // Datapath QPs connected per session (bounded by what the client
    // offers); chunks ride the stripes round-robin.
    int stripes = 1;
    // Extent coalescing (core/daemon/extent.h): whole tensors no larger
    // than this are packed dense in new slot layouts and fused into
    // multi-SGE gather extents — one WQE moves a whole run of small
    // tensors. 0 restores the classic layout and single-SGE datapath
    // bit-for-bit.
    Bytes coalesce_threshold = 4_KiB;
    // Gather-list budget per work request; the effective per-session value
    // is min(this, the client's offered capability, this NIC's max_sges).
    int max_sges = 16;
    // Flush each admission burst's WRs as one chained post per lane (one
    // doorbell per lane per window) instead of ringing per extent. Off
    // reproduces the per-extent doorbell datapath bit-for-bit.
    bool batch_doorbells = true;
    // Fault injection: when set, start() registers this daemon as a kill
    // target named `endpoint`, so tests/benches can crash or hang it at a
    // chosen point in virtual time (sim/fault.h).
    sim::FaultInjector* faults = nullptr;
    // --- multi-tenant admission control (core/daemon/tenant.h). Off by
    // default: every untenanted workload runs the classic unthrottled
    // datapath bit-for-bit. On, checkpoints acquire an admission ticket
    // (strict priority + WFQ + token-bucket pacing, bounded queues with
    // Backpressure rejections) before occupying a worker. ---
    bool tenancy = false;
    // Grant ceiling for tenants that request nothing / too much. All-zero =
    // unlimited capacity, unpaced.
    TenantQuota tenant_defaults;
    // In-flight admission slots; 0 = match `workers`.
    int admission_inflight = 0;
    std::uint32_t admission_queue_depth = 64;    // per priority class
    Duration admission_retry_after{2'000'000};   // Backpressure hint (2 ms)
  };

  struct Stats {
    std::uint64_t registrations = 0;
    std::uint64_t shard_registrations = 0;  // subset with shard/replica identity
    std::uint64_t checkpoints = 0;
    std::uint64_t restores = 0;
    std::uint64_t failed_ops = 0;
    std::uint64_t rejected_protocol = 0;  // magic/version mismatches answered
    // Restores refused because the DONE slot's payload failed the CRC scrub
    // (missing/torn/stale CRC block, or tensor bytes not matching it).
    std::uint64_t integrity_rejects = 0;
    // Checkpoints bounced with a retryable Backpressure answer (admission
    // queue full). Deliberately NOT counted as failed_ops: the client
    // retries and the op is expected to land.
    std::uint64_t backpressure_rejects = 0;
    // Ops bounced with a retryable EpochMismatch answer (the request's
    // membership epoch was stale, protocol v6). Not failed_ops either: the
    // client re-resolves placement and reissues.
    std::uint64_t epoch_rejects = 0;
    Bytes bytes_pulled = 0;
    Bytes bytes_pushed = 0;
    // --- pipelined datapath observability ---
    std::uint64_t chunks_posted = 0;
    std::uint64_t rdma_chunks = 0;
    std::uint64_t local_chunks = 0;
    std::uint64_t wrs_posted = 0;         // RDMA WRs (a gather extent = 1)
    std::uint64_t sges_posted = 0;        // remote SGEs across those WRs
    std::uint64_t extents_coalesced = 0;  // chunks that fused > 1 tensor
    std::uint64_t doorbells = 0;          // post() calls (a chained batch = 1)
    std::uint64_t admission_windows = 0;  // bursts that posted RDMA work
    Bytes rdma_bytes = 0;
    int peak_window = 0;                  // max chunks in flight in any op
    double window_chunk_seconds = 0.0;    // ∫ outstanding dt, all ops
    double pipeline_busy_seconds = 0.0;   // datapath wall time, all ops
    Duration queue_delay_total{0};        // head-of-line stalls, summed
    Duration queue_delay_max{0};

    double mean_window() const {
      return pipeline_busy_seconds > 0.0 ? window_chunk_seconds / pipeline_busy_seconds
                                         : 0.0;
    }
    Duration mean_queue_delay() const {
      return chunks_posted > 0
                 ? Duration{queue_delay_total.count() /
                            static_cast<Duration::rep>(chunks_posted)}
                 : Duration{0};
    }
    double bytes_per_wr() const {
      return wrs_posted > 0 ? static_cast<double>(rdma_bytes) / static_cast<double>(wrs_posted)
                            : 0.0;
    }
    double doorbells_per_window() const {
      return admission_windows > 0
                 ? static_cast<double>(doorbells) / static_cast<double>(admission_windows)
                 : 0.0;
    }
    double wrs_per_doorbell() const {
      return doorbells > 0
                 ? static_cast<double>(wrs_posted) / static_cast<double>(doorbells)
                 : 0.0;
    }
  };

  PortusDaemon(net::Cluster& cluster, net::Node& storage_node, QpRendezvous& rendezvous,
               Config config);
  PortusDaemon(net::Cluster& cluster, net::Node& storage_node, QpRendezvous& rendezvous)
      : PortusDaemon(cluster, storage_node, rendezvous, Config{}) {}

  ~PortusDaemon();

  // Bind the endpoint and start accepting connections.
  void start();

  // Fault hook (also reachable by name through Config::faults). kCrash
  // closes the listener and every live session socket — clients see
  // Disconnected immediately. kHang keeps everything open but drops all
  // requests unanswered — clients only notice through their own timeouts.
  // Checkpoint data on PMEM is untouched by either. kPowerCut additionally
  // fires PmemDevice::power_cut first (unpersisted lines lost/torn) and
  // marks the daemon dead so in-flight operations can no longer commit.
  void kill(sim::FaultMode mode = sim::FaultMode::kCrash);
  bool killed() const { return killed_; }

  // Rebuild DRAM state (ModelMap, allocator mirror) from PMEM after a
  // restart. Client sessions do not survive; clients re-register.
  void recover();

  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }
  ModelTable& model_table() { return *model_table_; }
  PmemAllocator& allocator() { return *allocator_; }
  pmem::PmemDevice& device() { return device_; }
  net::Node& node() { return node_; }
  sim::Engine& engine() { return cluster_.engine(); }

  // Tenancy (null unless Config::tenancy is on).
  TenantRegistry* tenants() { return tenants_.get(); }
  AdmissionController* admission() { return admission_.get(); }
  // Online-repack relocation barrier: stop granting new checkpoint
  // admissions while a maintenance window rewrites the allocator. No-ops
  // when tenancy is off (the offline repacker quiesces the allocator alone).
  void pause_admissions() {
    if (admission_ != nullptr) admission_->pause();
  }
  void resume_admissions() {
    if (admission_ != nullptr) admission_->resume();
  }

  // Cluster membership epoch this daemon currently serves (protocol v6).
  // 0 = standalone / not epoch-checked: requests are never bounced. The
  // elastic controller (core/cluster/migration.h) pushes each bump; any
  // request stamped with a different non-zero epoch is answered with
  // epoch_mismatch so the client re-resolves placement first.
  void set_membership_epoch(std::uint64_t e) { membership_epoch_ = e; }
  std::uint64_t membership_epoch() const { return membership_epoch_; }

  // Models whose training job sent FINISH_JOB (repacker input).
  const std::set<std::string>& finished_models() const { return finished_; }

  // Live (registered this run) MIndex for a model, if any.
  MIndex* find_live_index(const std::string& model_name);
  // Load from PMEM (works without a live session, e.g. portusctl).
  MIndex load_index(const std::string& model_name);

  static constexpr Bytes kModelTableOffset = 4_KiB;
  static constexpr Bytes kAllocTableOffset = 64_KiB;
  static constexpr Bytes kHeapOffset = 1_MiB;

 private:
  struct ModelSession {
    RegisterModelMsg registration;
    std::unique_ptr<MIndex> index;
    std::unique_ptr<rdma::CompletionQueue> cq;  // shared by all stripes
    std::vector<rdma::QueuePair*> qps;          // one per connected stripe
    const rdma::MemoryRegion* slot_mr[2] = {nullptr, nullptr};
    // Negotiated gather capability (min of client offer, config, NIC).
    std::uint32_t max_sges = 1;
  };

  sim::Process accept_loop();
  sim::Process session_loop(std::shared_ptr<net::TcpSocket> socket);

  sim::SubTask<RegisterAckMsg> handle_register(RegisterModelMsg msg);
  sim::SubTask<CheckpointDoneMsg> handle_checkpoint(CheckpointReqMsg msg);
  sim::SubTask<RestoreDoneMsg> handle_restore(RestoreReqMsg msg);

  void absorb_pipeline_stats(const PipelinedTransfer::Stats& s);

  net::Cluster& cluster_;
  net::Node& node_;
  QpRendezvous& rendezvous_;
  Config config_;
  pmem::PmemDevice& device_;
  rdma::ProtectionDomain& pd_;
  std::unique_ptr<ModelTable> model_table_;
  std::unique_ptr<PmemAllocator> allocator_;
  std::unique_ptr<sim::SimSemaphore> workers_;
  // Tenancy (declared registry-before-controller: tickets released while
  // the controller dies must still find their tenants).
  std::unique_ptr<TenantRegistry> tenants_;
  std::unique_ptr<AdmissionController> admission_;
  std::map<std::string, ModelSession> sessions_;
  std::set<std::string> finished_;
  std::vector<std::weak_ptr<net::TcpSocket>> client_sockets_;  // kill() targets
  Stats stats_;
  std::uint64_t membership_epoch_ = 0;
  bool started_ = false;
  bool killed_ = false;
  bool hung_ = false;  // kHang: reachable but mute
  bool dead_ = false;  // kPowerCut: the modeled process is gone; no commits
};

}  // namespace portus::core
