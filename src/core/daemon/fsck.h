// Offline integrity checker for a Portus PMEM image (`portusctl fsck`).
//
// Walks the whole on-device structure — ModelTable -> MIndex records ->
// slot headers -> payload-CRC blocks -> TensorData bytes -> AllocTable —
// and cross-checks every layer:
//
//   * records that fail to load (torn/corrupt) are reported, and in repair
//     mode dropped from the ModelTable (their extents fall out as orphans);
//   * ACTIVE slots are crash leftovers by definition and demote to EMPTY;
//   * every DONE slot's payload is scrubbed against its persisted
//     payload-CRC block (missing/stale block, or any tensor whose bytes no
//     longer match, demotes the slot — the double-mapping peer stays);
//   * LIVE allocator extents must be referenced by exactly the surviving
//     records/slots and must not overlap; unreferenced ones are orphans;
//   * in repair mode, leaked heap gaps are re-adopted and the tail
//     compacted, leaving an image the daemon can serve from immediately.
//
// Like the repacker, this is a stop-the-world maintenance pass: run it on
// a quiescent daemon (or one freshly constructed over a loaded image).
#pragma once

#include "core/daemon/daemon.h"

namespace portus::core {

class Fsck {
 public:
  struct Report {
    int models_scanned = 0;
    // Sharded AllocTable scrub (pass 0). Torn entries are informational:
    // recover() already dropped them from the DRAM mirror, and the bytes
    // they tracked come back via the gap sweep — but the count explains
    // where adopted gaps came from after a power cut.
    bool alloc_header_valid = true;
    std::uint32_t shard_tables = 0;  // allocator arenas scanned
    std::uint32_t torn_entries = 0;  // persistent entries failing their CRC
    int torn_records = 0;        // MIndex records that failed to load
    int active_demoted = 0;      // ACTIVE (crash-leftover) slots demoted
    int corrupt_demoted = 0;     // DONE slots failing the payload scrub
    int corrupt_tensors = 0;     // individual tensors failing their CRC
    int orphaned_extents = 0;    // LIVE extents nothing references
    int overlap_violations = 0;  // overlapping LIVE extents
    Bytes freed = 0;             // bytes released by repairs
    Bytes gaps_adopted = 0;      // leaked heap bytes re-tracked (repair)
    Bytes compacted = 0;         // tail bytes returned to bump (repair)
    bool repaired = false;

    // True when the image needed no attention. Housekeeping yields
    // (gaps/compaction) and torn-entry counts do not count against
    // cleanliness — their bytes are re-adopted, not lost.
    bool clean() const {
      return alloc_header_valid && torn_records == 0 && active_demoted == 0 &&
             corrupt_demoted == 0 && corrupt_tensors == 0 &&
             orphaned_extents == 0 && overlap_violations == 0;
    }
  };

  explicit Fsck(PortusDaemon& daemon) : daemon_{daemon} {}

  // Scan (and with repair=true, fix) the image. The daemon's DRAM state
  // must already mirror PMEM (construct + recover() first).
  Report run(bool repair);

 private:
  PortusDaemon& daemon_;
};

}  // namespace portus::core
