#include "core/daemon/tenant.h"

#include <algorithm>

#include "common/strformat.h"

namespace portus::core {

const char* to_string(PriorityClass c) {
  switch (c) {
    case PriorityClass::kHigh: return "high";
    case PriorityClass::kNormal: return "normal";
    case PriorityClass::kBatch: return "batch";
  }
  return "?";
}

PriorityClass priority_from_wire(std::uint8_t v) {
  return v <= 2 ? static_cast<PriorityClass>(v) : PriorityClass::kBatch;
}

namespace {

// Clamp a requested quota axis against the policy ceiling. 0 anywhere means
// "no opinion": a zero request takes the ceiling, a zero ceiling grants the
// request verbatim.
Bytes clamp_grant(Bytes requested, Bytes ceiling) {
  if (requested == 0) return ceiling;
  if (ceiling == 0) return requested;
  return std::min(requested, ceiling);
}

}  // namespace

// --- TenantRegistry ---------------------------------------------------------

Tenant& TenantRegistry::admit_tenant(const std::string& id, PriorityClass priority,
                                     Bytes requested_capacity, Bytes requested_rate) {
  auto [it, created] = tenants_.try_emplace(id);
  Tenant& t = it->second;
  if (created) {
    t.id = id;
    t.quota = defaults_.quota;
  }
  t.quota.priority = priority;
  t.quota.capacity_bytes = clamp_grant(requested_capacity, defaults_.quota.capacity_bytes);
  t.quota.rate_bytes_per_sec = clamp_grant(requested_rate, defaults_.quota.rate_bytes_per_sec);
  return t;
}

Tenant* TenantRegistry::find(const std::string& id) {
  const auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : &it->second;
}

const Tenant* TenantRegistry::find(const std::string& id) const {
  const auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : &it->second;
}

Tenant* TenantRegistry::owner_of(const std::string& model_name) {
  const auto it = model_owner_.find(model_name);
  return it == model_owner_.end() ? nullptr : find(it->second);
}

void TenantRegistry::charge(Tenant& tenant, const std::string& model_name, Bytes bytes) {
  if (tenant.models.contains(model_name)) return;  // re-registration
  if (tenant.quota.capacity_bytes != 0 &&
      tenant.usage.charged_bytes + bytes > tenant.quota.capacity_bytes) {
    ++tenant.usage.quota_rejects;
    throw ResourceExhausted(
        strf("tenant {} over PMEM capacity quota: {} held + {} requested > {} granted",
             tenant.id, format_bytes(tenant.usage.charged_bytes), format_bytes(bytes),
             format_bytes(tenant.quota.capacity_bytes)));
  }
  tenant.usage.charged_bytes += bytes;
  ++tenant.usage.models;
  tenant.models.insert(model_name);
  model_owner_[model_name] = tenant.id;
}

void TenantRegistry::uncharge(const std::string& model_name, Bytes bytes) {
  const auto it = model_owner_.find(model_name);
  if (it == model_owner_.end()) return;
  Tenant* t = find(it->second);
  if (t == nullptr || !t->models.erase(model_name)) return;
  t->usage.charged_bytes -= std::min(t->usage.charged_bytes, bytes);
  if (t->usage.models > 0) --t->usage.models;
  model_owner_.erase(it);
}

std::vector<const Tenant*> TenantRegistry::tenants() const {
  std::vector<const Tenant*> out;
  out.reserve(tenants_.size());
  for (const auto& [id, t] : tenants_) out.push_back(&t);
  return out;  // std::map iterates id-sorted
}

// --- AdmissionController ----------------------------------------------------

AdmissionController::AdmissionController(sim::Engine& engine, Config config)
    : engine_{engine}, config_{config} {
  PORTUS_CHECK_ARG(config_.max_inflight >= 1, "admission max_inflight must be >= 1");
  engine.register_resettable(this);
}

AdmissionController::~AdmissionController() { engine_.deregister_resettable(this); }

void AdmissionController::reset_waiters() noexcept {
  for (auto& q : queues_) q.clear();
  // Tickets held by destroyed coroutine frames release through finish(),
  // which tolerates the post-reset state (counts clamp at zero).
  inflight_ = 0;
}

std::size_t AdmissionController::queued() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

bool AdmissionController::can_grant_now(const Tenant& tenant) const {
  return !paused_ && inflight_ < config_.max_inflight && queued() == 0 &&
         !tenant_capped(tenant);
}

double AdmissionController::stamp(Tenant& tenant, Bytes bytes) {
  const double weight = std::max(tenant.quota.share, 1e-9);
  const double start = std::max(vtime_, tenant.vfinish);
  tenant.vfinish = start + static_cast<double>(bytes) / weight;
  return tenant.vfinish;
}

void AdmissionController::grant(Tenant& tenant) {
  ++inflight_;
  ++tenant.inflight;
  ++tenant.usage.admitted;
  ++stats_.admitted;
}

void AdmissionController::finish(Tenant* tenant) {
  if (inflight_ > 0) --inflight_;
  if (tenant != nullptr && tenant->inflight > 0) --tenant->inflight;
  dispatch();
}

void AdmissionController::Ticket::release() {
  if (ctrl_ == nullptr) return;
  std::exchange(ctrl_, nullptr)->finish(std::exchange(tenant_, nullptr));
}

void AdmissionController::dispatch() {
  while (!paused_ && inflight_ < config_.max_inflight) {
    // Strict priority across classes; start-time-fair (min virtual finish
    // tag, FIFO on ties) within a class. Waiters whose tenant is at its
    // per-tenant WR-slot cap are passed over, not starved — they become
    // eligible again when that tenant's ticket releases.
    Waiter* best = nullptr;
    std::deque<Waiter>* best_q = nullptr;
    std::size_t best_i = 0;
    for (auto& q : queues_) {
      for (std::size_t i = 0; i < q.size(); ++i) {
        Waiter& w = q[i];
        if (tenant_capped(*w.tenant)) continue;
        if (best == nullptr || w.vft < best->vft ||
            (w.vft == best->vft && w.seq < best->seq)) {
          best = &w;
          best_q = &q;
          best_i = i;
        }
      }
      if (best != nullptr) break;  // higher class wins outright
    }
    if (best == nullptr) return;
    vtime_ = std::max(vtime_, best->vft);
    grant(*best->tenant);
    const auto handle = best->handle;
    best_q->erase(best_q->begin() + static_cast<std::ptrdiff_t>(best_i));
    engine_.resume_later(handle);
  }
}

struct AdmissionController::WaitAwaitable {
  AdmissionController& ctrl;
  Tenant& tenant;
  double vft;

  bool await_ready() const noexcept {
    if (!ctrl.can_grant_now(tenant)) return false;
    ctrl.vtime_ = std::max(ctrl.vtime_, vft);
    ctrl.grant(tenant);
    return true;
  }
  void await_suspend(std::coroutine_handle<> h) {
    const int cls = static_cast<int>(tenant.quota.priority);
    ctrl.queues_[cls].push_back(
        Waiter{.handle = h, .tenant = &tenant, .vft = vft, .seq = ctrl.next_seq_++});
  }
  void await_resume() const noexcept {}  // slot transferred by dispatch()
};

sim::SubTask<AdmissionController::Ticket> AdmissionController::admit(Tenant& tenant,
                                                                     Bytes bytes) {
  const int cls = static_cast<int>(tenant.quota.priority);
  // Bounded queue: reject instead of building unbounded backlog. Checked
  // before pacing so a rejected op costs the client one cheap roundtrip.
  if (!can_grant_now(tenant) && queues_[cls].size() >= config_.queue_depth) {
    ++stats_.rejected;
    ++tenant.usage.rejected;
    throw Backpressure(strf("tenant {} {} admission queue full ({} deep)", tenant.id,
                            to_string(tenant.quota.priority), config_.queue_depth));
  }

  // Token-bucket pacing: burn the tenant's own time before competing for a
  // slot, so a paced tenant never occupies WR budget while throttled.
  if (tenant.quota.rate_bytes_per_sec > 0) {
    const double rate = static_cast<double>(tenant.quota.rate_bytes_per_sec);
    const double burst = static_cast<double>(
        tenant.quota.burst_bytes > 0 ? tenant.quota.burst_bytes : bytes);
    const Time now = engine_.now();
    tenant.tokens = std::min(burst, tenant.tokens + rate * to_seconds(now - tenant.bucket_at));
    tenant.bucket_at = now;
    tenant.tokens -= static_cast<double>(bytes);
    if (tenant.tokens < 0.0) {
      const auto debt = from_seconds(-tenant.tokens / rate);
      ++stats_.paced;
      tenant.usage.paced_total += debt;
      co_await engine_.sleep(debt);
    }
  }

  const double vft = stamp(tenant, bytes);
  const Time t0 = engine_.now();
  co_await WaitAwaitable{*this, tenant, vft};
  const auto waited = engine_.now() - t0;
  stats_.queue_wait_total += waited;
  stats_.queue_wait_max = std::max(stats_.queue_wait_max, waited);
  tenant.usage.queue_wait_total += waited;
  tenant.usage.queue_wait_max = std::max(tenant.usage.queue_wait_max, waited);
  tenant.usage.admitted_bytes += bytes;
  co_return Ticket{this, &tenant};
}

void AdmissionController::pause() {
  if (paused_) return;
  paused_ = true;
  pause_began_ = engine_.now();
  ++stats_.pauses;
}

void AdmissionController::resume() {
  if (!paused_) return;
  paused_ = false;
  stats_.paused_total += engine_.now() - pause_began_;
  dispatch();
}

}  // namespace portus::core
