#include "core/daemon/slots.h"

namespace portus::core {

CheckpointTxn CheckpointTxn::begin(MIndex& index) {
  const int slot = index.pick_write_slot();
  const std::uint64_t epoch = index.max_epoch() + 1;
  // ACTIVE flag first, persisted, before any data lands: recovery must be
  // able to tell "transmission started but did not finish".
  index.set_slot(slot, SlotState::kActive, epoch);
  return CheckpointTxn{index, slot, epoch};
}

CheckpointTxn::~CheckpointTxn() {
  // Abort leaves the slot ACTIVE on purpose — identical to what a power
  // failure produces. ACTIVE is never restorable and is reclaimed by the
  // repacker or overwritten by the next checkpoint.
}

void CheckpointTxn::commit() {
  if (committed_) return;
  PORTUS_CHECK(index_->device().is_persisted(data_offset(), index_->slot_size()),
               "commit with unpersisted TensorData in the write slot");
  index_->set_slot(slot_, SlotState::kDone, epoch_);
  committed_ = true;
}

}  // namespace portus::core
