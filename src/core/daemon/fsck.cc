#include "core/daemon/fsck.h"

#include <set>

#include "common/logging.h"

namespace portus::core {

namespace {
constexpr const char* kLog = "fsck";
}

Fsck::Report Fsck::run(bool repair) {
  Report report;
  auto& table = daemon_.model_table();
  auto& allocator = daemon_.allocator();
  auto& device = daemon_.device();

  // Pass 0: the persistent sharded AllocTable itself. recover() silently
  // skips entries whose CRC fails, so this scrub is the only place a torn
  // entry is ever counted — it explains the heap gaps repair adopts below.
  const auto scrub = allocator.scrub_table();
  report.alloc_header_valid = scrub.header_valid;
  report.shard_tables = scrub.shards;
  report.torn_entries = scrub.torn_entries;
  if (!scrub.header_valid) {
    PLOG_INFO(kLog, "AllocTable header invalid across {} shards", scrub.shards);
  }
  if (scrub.torn_entries > 0) {
    PLOG_INFO(kLog, "{} torn AllocTable entries across {} shards", scrub.torn_entries,
              scrub.shards);
  }

  // Pass 1: walk every tabled model and scrub its record and slots.
  // Offsets that survive the pass are the reference set for the orphan
  // sweep below (demoted slots deliberately drop out of it).
  std::set<Bytes> referenced;
  for (const auto& name : table.names()) {
    ++report.models_scanned;
    const auto record_offset = table.lookup(name);
    std::optional<MIndex> index;
    try {
      index.emplace(daemon_.load_index(name));
    } catch (const Error& e) {
      ++report.torn_records;
      PLOG_INFO(kLog, "record for {} unreadable: {}", name, e.what());
      if (repair) {
        table.remove(name);
        // The record extent (and any slot extents it referenced) are now
        // unreachable; the orphan sweep reclaims them.
      } else if (record_offset.has_value()) {
        referenced.insert(*record_offset);
      }
      continue;
    }
    referenced.insert(index->record_offset());

    for (int i = 0; i < 2; ++i) {
      const auto& slot = index->slot(i);
      if (slot.data_offset == 0) continue;

      bool demote = false;
      if (slot.state == SlotState::kActive) {
        // fsck runs on a quiescent image: an ACTIVE slot is a checkpoint
        // that lost power mid-flight. Its data is incomplete by definition.
        ++report.active_demoted;
        demote = true;
        PLOG_INFO(kLog, "{} slot {}: ACTIVE crash leftover", name, i);
      } else if (slot.state == SlotState::kDone && !index->phantom()) {
        const auto block = index->payload_crcs(i);
        if (!block.has_value() || block->epoch != slot.epoch) {
          ++report.corrupt_demoted;
          demote = true;
          PLOG_INFO(kLog, "{} slot {}: payload-CRC block {} at epoch {}", name, i,
                    block.has_value() ? "stale" : "missing or torn", slot.epoch);
        } else {
          int bad = 0;
          const auto& tensors = index->tensors();
          for (std::size_t t = 0; t < tensors.size(); ++t) {
            if (device.crc(slot.data_offset + tensors[t].offset_in_slot,
                           tensors[t].size) != block->crcs[t]) {
              ++bad;
            }
          }
          if (bad > 0) {
            report.corrupt_tensors += bad;
            ++report.corrupt_demoted;
            demote = true;
            PLOG_INFO(kLog, "{} slot {}: {} of {} tensors failed payload CRC", name,
                      i, bad, tensors.size());
          }
        }
      }

      if (demote && repair) {
        allocator.free(slot.data_offset);
        index->clear_slot(i);
        report.freed += index->slot_size();
      } else {
        // Verify-only keeps a demoted-worthy slot in place, so its extent
        // is still referenced — it must not double-report as an orphan.
        referenced.insert(slot.data_offset);
      }
    }
  }

  // Pass 2: allocator cross-check. Every LIVE extent must be referenced by
  // a surviving record or slot, and no two LIVE extents may overlap (an
  // overlap means two owners think they hold the same bytes — reported,
  // never auto-repaired: there is no way to pick the rightful owner).
  Bytes prev_end = 0;
  for (const auto& ext : allocator.extents()) {
    if (ext.state != AllocState::kLive) continue;
    if (ext.offset < prev_end) ++report.overlap_violations;
    prev_end = std::max(prev_end, ext.offset + ext.size);
    if (!referenced.contains(ext.offset)) {
      ++report.orphaned_extents;
      if (repair) {
        allocator.free(ext.offset);
        report.freed += ext.size;
      }
    }
  }

  if (repair) {
    report.gaps_adopted = allocator.sweep_gaps();
    report.compacted = allocator.compact();
    report.repaired = true;
  }
  PLOG_INFO(kLog,
            "{} models: {} torn records, {} active + {} corrupt slots demoted "
            "({} bad tensors), {} orphans, {} overlaps{}",
            report.models_scanned, report.torn_records, report.active_demoted,
            report.corrupt_demoted, report.corrupt_tensors, report.orphaned_extents,
            report.overlap_violations, repair ? " [repaired]" : "");
  return report;
}

}  // namespace portus::core
