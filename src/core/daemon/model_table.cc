#include "core/daemon/model_table.h"

#include "common/binary_io.h"
#include "common/crc32.h"
#include "common/error.h"

namespace portus::core {

ModelTable::ModelTable(pmem::PmemDevice& device, Bytes table_offset, std::uint32_t capacity)
    : device_{device}, table_offset_{table_offset}, capacity_{capacity} {
  PORTUS_CHECK_ARG(capacity > 0, "ModelTable capacity must be positive");
  PORTUS_CHECK_ARG(table_offset + table_bytes() <= device.size(),
                   "ModelTable exceeds device bounds");
  slots_.resize(capacity);
}

void ModelTable::persist_slot(std::uint32_t index) {
  const Slot& slot = slots_[index];
  BinaryWriter w;
  char name[kNameCapacity] = {};
  std::copy_n(slot.name.data(), std::min<std::size_t>(slot.name.size(), kNameCapacity - 1),
              name);
  w.raw(name, kNameCapacity);
  w.u64(slot.info_offset);
  // State field: bit 0 = used. The finished hint lives out-of-line (see
  // persist_finished) so flipping it cannot tear this CRC'd entry.
  w.u32(slot.used ? 1u : 0u);
  w.u32(Crc32::of(w.buffer().data(), w.buffer().size()));
  const Bytes at = table_offset_ + static_cast<Bytes>(index) * kEntrySize;
  device_.write(at, w.buffer());
  device_.persist(at, kEntrySize);
}

void ModelTable::persist_finished(std::uint32_t index) {
  BinaryWriter w;
  w.u32(slots_[index].finished ? kFinishedMagic : 0u);
  device_.write(flag_offset(index), w.buffer());
  device_.persist(flag_offset(index), sizeof(std::uint32_t));
}

void ModelTable::insert(const std::string& model_name, Bytes info_offset) {
  PORTUS_CHECK_ARG(!model_name.empty() && model_name.size() < kNameCapacity,
                   "model name must be 1..47 chars");
  if (const auto it = map_.find(model_name); it != map_.end()) {
    // Overwrite in place (re-registration of a known model).
    auto& slot = slots_[it->second.first];
    slot.info_offset = info_offset;
    persist_slot(it->second.first);
    it->second.second = info_offset;
    return;
  }
  for (std::uint32_t i = 0; i < capacity_; ++i) {
    if (slots_[i].used) continue;
    slots_[i] = Slot{model_name, info_offset, true, false};
    // Clear a stale finished magic a previously removed occupant may have
    // left, *before* the entry becomes valid: a cut between the two
    // persists must not resurrect the old hint onto the new model.
    persist_finished(i);
    persist_slot(i);
    map_.emplace(model_name, std::make_pair(i, info_offset));
    return;
  }
  throw ResourceExhausted("ModelTable full");
}

std::optional<Bytes> ModelTable::lookup(const std::string& model_name) const {
  const auto it = map_.find(model_name);
  if (it == map_.end()) return std::nullopt;
  return it->second.second;
}

void ModelTable::remove(const std::string& model_name) {
  const auto it = map_.find(model_name);
  if (it == map_.end()) throw NotFound("no such model: " + model_name);
  slots_[it->second.first] = Slot{};
  persist_slot(it->second.first);
  map_.erase(it);
}

void ModelTable::recover() {
  map_.clear();
  for (std::uint32_t i = 0; i < capacity_; ++i) {
    const Bytes at = table_offset_ + static_cast<Bytes>(i) * kEntrySize;
    const auto raw = device_.read(at, kEntrySize);
    BinaryReader r{raw};
    const auto name_bytes = r.raw(kNameCapacity);
    const Bytes info_offset = r.u64();
    const auto state = r.u32();
    const auto crc = r.u32();
    if (crc != Crc32::of(raw.data(), kEntrySize - 4) || (state & 1u) == 0) {
      slots_[i] = Slot{};
      continue;
    }
    const auto flag_raw = device_.read(flag_offset(i), sizeof(std::uint32_t));
    BinaryReader fr{flag_raw};
    // Anything but the exact magic (zero, a torn line's garbage) reads as
    // "not finished" — losing the hint is safe, losing the entry is not.
    const bool finished = fr.u32() == kFinishedMagic;
    std::string name{reinterpret_cast<const char*>(name_bytes.data())};
    slots_[i] = Slot{name, info_offset, true, finished};
    map_.emplace(std::move(name), std::make_pair(i, info_offset));
  }
}

void ModelTable::set_finished(const std::string& model_name, bool finished) {
  const auto it = map_.find(model_name);
  if (it == map_.end()) throw NotFound("no such model: " + model_name);
  slots_[it->second.first].finished = finished;
  persist_finished(it->second.first);
}

bool ModelTable::is_finished(const std::string& model_name) const {
  const auto it = map_.find(model_name);
  if (it == map_.end()) throw NotFound("no such model: " + model_name);
  return slots_[it->second.first].finished;
}

std::vector<std::string> ModelTable::names() const {
  std::vector<std::string> out;
  out.reserve(map_.size());
  for (const auto& [name, loc] : map_) out.push_back(name);
  return out;
}

}  // namespace portus::core
