#include "core/daemon/mindex.h"

#include <algorithm>

#include "common/binary_io.h"
#include "common/crc32.h"

namespace portus::core {

const char* to_string(SlotState s) {
  switch (s) {
    case SlotState::kEmpty: return "EMPTY";
    case SlotState::kActive: return "ACTIVE";
    case SlotState::kDone: return "DONE";
  }
  return "?";
}

namespace {

std::vector<std::byte> encode_slot_header(const SlotHeader& h) {
  BinaryWriter w;
  w.u32(static_cast<std::uint32_t>(h.state));
  w.u64(h.epoch);
  w.u64(h.data_offset);
  w.u32(Crc32::of(w.buffer().data(), w.buffer().size()));
  return w.take();
}

std::optional<SlotHeader> decode_slot_header(std::span<const std::byte> raw) {
  BinaryReader r{raw};
  SlotHeader h;
  h.state = static_cast<SlotState>(r.u32());
  h.epoch = r.u64();
  h.data_offset = r.u64();
  const auto crc = r.u32();
  if (crc != Crc32::of(raw.data(), MIndex::kSlotHeaderSize - 4)) return std::nullopt;
  if (h.state != SlotState::kEmpty && h.state != SlotState::kActive &&
      h.state != SlotState::kDone) {
    return std::nullopt;
  }
  return h;
}

struct ShardIdentity {
  std::uint32_t shard_id = 0;
  std::uint32_t shard_count = 1;
  std::uint32_t replica = 0;
  std::uint32_t replica_count = 1;
  std::uint64_t placement_epoch = 0;
};

std::vector<std::byte> encode_meta_blob(const std::string& name, bool phantom,
                                        const ShardIdentity& shard,
                                        std::span<const std::byte> manifest, Bytes slot_size,
                                        const std::vector<IndexedTensor>& tensors) {
  BinaryWriter w;
  w.str(name);
  w.u8(phantom ? 1 : 0);
  w.u32(shard.shard_id);
  w.u32(shard.shard_count);
  w.u32(shard.replica);
  w.u32(shard.replica_count);
  w.u64(shard.placement_epoch);
  w.bytes(manifest);
  w.u64(slot_size);
  w.u32(static_cast<std::uint32_t>(tensors.size()));
  for (const auto& t : tensors) {
    w.str(t.name);
    w.u8(static_cast<std::uint8_t>(t.dtype));
    w.u32(static_cast<std::uint32_t>(t.shape.size()));
    for (const auto d : t.shape) w.i64(d);
    w.u64(t.size);
    w.u64(t.offset_in_slot);
  }
  w.u32(Crc32::of(w.buffer().data(), w.buffer().size()));
  return w.take();
}

}  // namespace

MIndex MIndex::create(pmem::PmemDevice& device, PmemAllocator& allocator,
                      const RegisterModelMsg& registration, Bytes pack_threshold) {
  PORTUS_CHECK_ARG(!registration.tensors.empty(), "registration has no tensors");

  MIndex idx;
  idx.device_ = &device;
  idx.model_name_ = registration.model_name;
  idx.phantom_ = registration.phantom;
  idx.shard_id_ = registration.shard_id;
  idx.shard_count_ = registration.shard_count;
  idx.replica_ = registration.replica;
  idx.replica_count_ = registration.replica_count;
  idx.placement_epoch_ = registration.placement_epoch;
  idx.manifest_ = registration.manifest;

  // Lay tensors out back-to-back in one contiguous slot. Tensors at or
  // under pack_threshold pack densely at dtype alignment (so same-dtype
  // runs leave no gaps and coalesce into one gather extent); everything
  // else starts on a 256-B line, matching the historical layout exactly.
  Bytes cursor = 0;
  idx.tensors_.reserve(registration.tensors.size());
  for (const auto& t : registration.tensors) {
    IndexedTensor it;
    it.name = t.name;
    it.dtype = t.dtype;
    it.shape = t.shape;
    it.size = t.size;
    const bool packed = pack_threshold > 0 && t.size > 0 && t.size <= pack_threshold;
    const Bytes align = packed ? dnn::size_of(t.dtype) : Bytes{256};
    cursor = (cursor + align - 1) / align * align;
    it.offset_in_slot = cursor;
    cursor += t.size;
    idx.tensors_.push_back(std::move(it));
  }
  idx.slot_size_ = (cursor + 255) & ~Bytes{255};

  // Allocate both TensorData regions and the record.
  const auto meta_blob = encode_meta_blob(
      idx.model_name_, idx.phantom_,
      ShardIdentity{idx.shard_id_, idx.shard_count_, idx.replica_, idx.replica_count_,
                    idx.placement_epoch_},
      idx.manifest_, idx.slot_size_, idx.tensors_);
  idx.meta_len_ = meta_blob.size();
  idx.record_size_ = kMetaOffset + idx.meta_len_ + 2 * idx.crc_block_size();
  idx.record_offset_ = allocator.alloc(idx.record_size_);
  idx.slots_.resize(2);
  for (auto& slot : idx.slots_) {
    slot.data_offset = allocator.alloc(idx.slot_size_);
    slot.state = SlotState::kEmpty;
    slot.epoch = 0;
  }

  // Persist the record: header, slot headers, meta length + blob, and
  // zeroed payload-CRC blocks (a zero guard never validates, so fresh
  // slots read back as "no CRCs recorded" even on a reused extent).
  BinaryWriter head;
  head.u32(kMagic);
  head.u32(static_cast<std::uint32_t>(idx.record_size_));
  device.write(idx.record_offset_, head.buffer());
  for (int i = 0; i < 2; ++i) {
    device.write(idx.record_offset_ + kSlot0Offset + static_cast<Bytes>(i) * kSlotHeaderSize,
                 encode_slot_header(idx.slots_[static_cast<std::size_t>(i)]));
  }
  BinaryWriter len;
  len.u32(static_cast<std::uint32_t>(idx.meta_len_));
  device.write(idx.record_offset_ + kMetaLenOffset, len.buffer());
  device.write(idx.record_offset_ + kMetaOffset, meta_blob);
  const std::vector<std::byte> zeroed(2 * idx.crc_block_size());
  device.write(idx.record_offset_ + kMetaOffset + idx.meta_len_, zeroed);
  device.persist(idx.record_offset_, idx.record_size_);
  return idx;
}

MIndex MIndex::load(pmem::PmemDevice& device, Bytes record_offset) {
  MIndex idx;
  idx.device_ = &device;
  idx.record_offset_ = record_offset;

  const auto head = device.read(record_offset, 8);
  BinaryReader hr{head};
  if (hr.u32() != kMagic) throw Corruption("MIndex magic mismatch");
  idx.record_size_ = hr.u32();
  if (idx.record_size_ < kMetaOffset + 4 + 2 * 12 ||
      record_offset + idx.record_size_ > device.size()) {
    throw Corruption("MIndex record length implausible");
  }

  idx.slots_.resize(2);
  for (int i = 0; i < 2; ++i) {
    const auto raw = device.read(
        record_offset + kSlot0Offset + static_cast<Bytes>(i) * kSlotHeaderSize,
        kSlotHeaderSize);
    const auto h = decode_slot_header(raw);
    // A torn slot header (crash mid-flip) recovers as EMPTY: that version
    // was in flight and is invalid by definition.
    idx.slots_[static_cast<std::size_t>(i)] = h.value_or(SlotHeader{});
  }

  const auto len_raw = device.read(record_offset + kMetaLenOffset, 4);
  BinaryReader lr{len_raw};
  idx.meta_len_ = lr.u32();
  if (idx.meta_len_ < 4 || kMetaOffset + idx.meta_len_ > idx.record_size_) {
    throw Corruption("MIndex metadata length implausible");
  }
  const auto blob = device.read(record_offset + kMetaOffset, idx.meta_len_);
  if (Crc32::of(blob.data(), blob.size() - 4) !=
      [&] {
        BinaryReader tr{std::span<const std::byte>{blob}.subspan(blob.size() - 4)};
        return tr.u32();
      }()) {
    throw Corruption("MIndex metadata CRC mismatch");
  }
  BinaryReader r{std::span<const std::byte>{blob}.first(blob.size() - 4)};
  idx.model_name_ = r.str();
  idx.phantom_ = r.u8() != 0;
  idx.shard_id_ = r.u32();
  idx.shard_count_ = r.u32();
  idx.replica_ = r.u32();
  idx.replica_count_ = r.u32();
  if (idx.shard_count_ == 0 || idx.shard_id_ >= idx.shard_count_ ||
      idx.replica_count_ == 0 || idx.replica_ >= idx.replica_count_) {
    throw Corruption("implausible shard identity in MIndex");
  }
  idx.placement_epoch_ = r.u64();
  idx.manifest_ = r.bytes();
  idx.slot_size_ = r.u64();
  const auto count = r.u32();
  if (count > 1u << 20) throw Corruption("implausible tensor count in MIndex");
  idx.tensors_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    IndexedTensor t;
    t.name = r.str();
    t.dtype = static_cast<dnn::DType>(r.u8());
    const auto ndim = r.u32();
    if (ndim > 16) throw Corruption("implausible tensor rank in MIndex");
    t.shape.resize(ndim);
    for (auto& d : t.shape) d = r.i64();
    t.size = r.u64();
    t.offset_in_slot = r.u64();
    idx.tensors_.push_back(std::move(t));
  }
  if (idx.record_size_ != kMetaOffset + idx.meta_len_ + 2 * idx.crc_block_size()) {
    throw Corruption("MIndex record length inconsistent with tensor count");
  }
  return idx;
}

Bytes MIndex::crc_block_size() const {
  return 12 + 4 * static_cast<Bytes>(tensors_.size());
}

Bytes MIndex::crc_block_offset(int i) const {
  return record_offset_ + kMetaOffset + meta_len_ +
         static_cast<Bytes>(i) * crc_block_size();
}

std::optional<MIndex::PayloadCrcs> MIndex::payload_crcs(int i) const {
  PORTUS_CHECK_ARG(i == 0 || i == 1, "slot index out of range");
  const auto raw = device_->read(crc_block_offset(i), crc_block_size());
  BinaryReader r{raw};
  PayloadCrcs out;
  out.epoch = r.u64();
  out.crcs.resize(tensors_.size());
  for (auto& c : out.crcs) c = r.u32();
  if (r.u32() != Crc32::of(raw.data(), raw.size() - 4)) return std::nullopt;
  return out;
}

void MIndex::set_payload_crcs(int i, std::uint64_t epoch,
                              const std::vector<std::uint32_t>& crcs) {
  PORTUS_CHECK_ARG(i == 0 || i == 1, "slot index out of range");
  PORTUS_CHECK_ARG(crcs.size() == tensors_.size(),
                   "payload CRC count != tensor count");
  BinaryWriter w;
  w.u64(epoch);
  for (const auto c : crcs) w.u32(c);
  w.u32(Crc32::of(w.buffer().data(), w.buffer().size()));
  const Bytes at = crc_block_offset(i);
  device_->write(at, w.buffer());
  device_->persist(at, crc_block_size());
}

std::vector<ChunkSpan> MIndex::chunk_spans(Bytes chunk_bytes) const {
  std::vector<ChunkSpan> spans;
  for (std::size_t t = 0; t < tensors_.size(); ++t) {
    const auto& tensor = tensors_[t];
    if (tensor.size == 0) {
      // Zero-length tensor (e.g. an empty buffer slot): exactly one empty
      // span, so per-tensor CRC coverage bookkeeping still sees it.
      spans.push_back(ChunkSpan{.tensor = t,
                                .offset = 0,
                                .offset_in_slot = tensor.offset_in_slot,
                                .len = 0});
      continue;
    }
    Bytes off = 0;
    do {
      const Bytes len = chunk_bytes == 0 ? tensor.size
                                         : std::min(chunk_bytes, tensor.size - off);
      spans.push_back(ChunkSpan{.tensor = t,
                                .offset = off,
                                .offset_in_slot = tensor.offset_in_slot + off,
                                .len = len});
      off += len;
    } while (off < tensor.size);
  }
  return spans;
}

int MIndex::pick_write_slot() const {
  const auto latest = latest_done_slot();
  if (!latest.has_value()) return 0;
  return 1 - *latest;
}

std::optional<int> MIndex::latest_done_slot() const {
  std::optional<int> best;
  for (int i = 0; i < 2; ++i) {
    const auto& s = slots_[static_cast<std::size_t>(i)];
    if (s.state != SlotState::kDone) continue;
    if (!best.has_value() || s.epoch > slots_[static_cast<std::size_t>(*best)].epoch) {
      best = i;
    }
  }
  return best;
}

std::uint64_t MIndex::max_epoch() const {
  return std::max(slots_[0].epoch, slots_[1].epoch);
}

void MIndex::set_slot(int i, SlotState state, std::uint64_t epoch) {
  auto& slot = slots_.at(static_cast<std::size_t>(i));
  slot.state = state;
  slot.epoch = epoch;
  persist_slot_header(i);
}

void MIndex::clear_slot(int i) {
  auto& slot = slots_.at(static_cast<std::size_t>(i));
  slot = SlotHeader{};
  persist_slot_header(i);
}

void MIndex::ensure_slot(int i, PmemAllocator& allocator) {
  auto& slot = slots_.at(static_cast<std::size_t>(i));
  if (slot.data_offset != 0) return;
  slot = SlotHeader{.state = SlotState::kEmpty, .epoch = 0,
                    .data_offset = allocator.alloc(slot_size_)};
  persist_slot_header(i);
}

void MIndex::persist_slot_header(int i) {
  const Bytes at = record_offset_ + kSlot0Offset + static_cast<Bytes>(i) * kSlotHeaderSize;
  device_->write(at, encode_slot_header(slots_[static_cast<std::size_t>(i)]));
  device_->persist(at, kSlotHeaderSize);
}

void MIndex::destroy(PmemAllocator& allocator) {
  for (const auto& slot : slots_) {
    // A torn slot header recovered as EMPTY has lost its data_offset; its
    // extent is reclaimed by the repacker instead.
    if (slot.data_offset != 0) allocator.free(slot.data_offset);
  }
  allocator.free(record_offset_);
  slots_.clear();
  tensors_.clear();
}

}  // namespace portus::core
