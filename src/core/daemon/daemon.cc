#include "core/daemon/daemon.h"

#include <algorithm>

#include "common/crc32.h"
#include "common/logging.h"
#include "common/strformat.h"
#include "core/daemon/extent.h"
#include "core/daemon/slots.h"

namespace portus::core {

namespace {
constexpr const char* kLog = "portusd";
}

PortusDaemon::PortusDaemon(net::Cluster& cluster, net::Node& storage_node,
                           QpRendezvous& rendezvous, Config config)
    : cluster_{cluster},
      node_{storage_node},
      rendezvous_{rendezvous},
      config_{config},
      device_{storage_node.devdax().device()},
      pd_{storage_node.nic().alloc_pd("portusd-pd")} {
  PORTUS_CHECK_ARG(storage_node.has_devdax(),
                   "Portus daemon requires a devdax PMEM namespace");
  PORTUS_CHECK_ARG(config_.pipeline_window >= 1, "pipeline_window must be >= 1");
  PORTUS_CHECK_ARG(config_.stripes >= 1 && config_.stripes <= 256,
                   "stripes must be in [1, 256]");
  PORTUS_CHECK_ARG(config_.max_sges >= 1, "max_sges must be >= 1");
  model_table_ = std::make_unique<ModelTable>(device_, kModelTableOffset,
                                              config_.model_table_capacity);
  allocator_ = std::make_unique<PmemAllocator>(
      device_, PmemAllocator::Config{.table_offset = kAllocTableOffset,
                                     .table_capacity = config_.alloc_table_capacity,
                                     .data_offset = kHeapOffset,
                                     .data_end = device_.size(),
                                     .shards = config_.shards,
                                     .refill_bytes = config_.alloc_refill_bytes});
  workers_ = std::make_unique<sim::SimSemaphore>(cluster.engine(), config_.workers);
  if (config_.tenancy) {
    tenants_ = std::make_unique<TenantRegistry>(
        TenantRegistry::Defaults{.quota = config_.tenant_defaults});
    admission_ = std::make_unique<AdmissionController>(
        cluster.engine(),
        AdmissionController::Config{
            .max_inflight = config_.admission_inflight > 0 ? config_.admission_inflight
                                                           : config_.workers,
            .queue_depth = config_.admission_queue_depth,
            .retry_after = config_.admission_retry_after});
  }
}

PortusDaemon::~PortusDaemon() {
  if (config_.faults != nullptr) config_.faults->deregister_target(config_.endpoint);
}

void PortusDaemon::start() {
  PORTUS_CHECK(!started_, "daemon already started");
  started_ = true;
  cluster_.listen(config_.endpoint);
  cluster_.engine().spawn(accept_loop());
  if (config_.faults != nullptr) {
    config_.faults->register_target(config_.endpoint,
                                    [this](sim::FaultMode mode) { kill(mode); });
  }
}

void PortusDaemon::kill(sim::FaultMode mode) {
  if (killed_) return;
  killed_ = true;
  if (mode == sim::FaultMode::kHang) {
    // Gray failure: sockets stay up, requests vanish into the void.
    hung_ = true;
    PLOG_INFO(kLog, "FAULT: {} hung (mute, connections stay open)", config_.endpoint);
    return;
  }
  if (mode == sim::FaultMode::kPowerCut) {
    // Device-level power loss before the crash-stop: every unpersisted
    // cache line is lost or torn, and the modeled process is gone — any
    // in-flight coroutine still running in the simulator must not commit
    // or write PMEM on its behalf (dead_ guards the commit points).
    dead_ = true;
    device_.power_cut(0x9E3779B97F4A7C15ull ^ device_.crash_count());
    PLOG_INFO(kLog, "FAULT: {} lost power (dirty lines dropped/torn)",
              config_.endpoint);
  }
  // Crash-stop: refuse new connections and drop the live ones.
  cluster_.endpoint(config_.endpoint).close();
  for (auto& weak : client_sockets_) {
    if (auto socket = weak.lock()) socket->close();
  }
  client_sockets_.clear();
  PLOG_INFO(kLog, "FAULT: {} crashed (listener + {} sessions closed)", config_.endpoint,
            sessions_.size());
}

void PortusDaemon::recover() {
  model_table_->recover();
  allocator_->recover();
  sessions_.clear();
  PLOG_INFO(kLog, "recovered: {} models in table, {} live bytes on heap",
            model_table_->size(), allocator_->live_bytes());
}

void PortusDaemon::absorb_pipeline_stats(const PipelinedTransfer::Stats& s) {
  stats_.chunks_posted += s.chunks;
  stats_.rdma_chunks += s.rdma_chunks;
  stats_.local_chunks += s.local_chunks;
  stats_.wrs_posted += s.wrs_posted;
  stats_.sges_posted += s.sges_posted;
  stats_.extents_coalesced += s.extents_coalesced;
  stats_.doorbells += s.doorbells;
  stats_.admission_windows += s.admission_windows;
  stats_.rdma_bytes += s.rdma_bytes;
  stats_.peak_window = std::max(stats_.peak_window, s.peak_outstanding);
  stats_.window_chunk_seconds += s.occupancy_integral;
  stats_.pipeline_busy_seconds += to_seconds(s.busy);
  stats_.queue_delay_total += s.queue_delay_total;
  stats_.queue_delay_max = std::max(stats_.queue_delay_max, s.queue_delay_max);
}

MIndex* PortusDaemon::find_live_index(const std::string& model_name) {
  const auto it = sessions_.find(model_name);
  return it == sessions_.end() ? nullptr : it->second.index.get();
}

MIndex PortusDaemon::load_index(const std::string& model_name) {
  const auto offset = model_table_->lookup(model_name);
  if (!offset.has_value()) throw NotFound("model not in ModelTable: " + model_name);
  return MIndex::load(device_, *offset);
}

sim::Process PortusDaemon::accept_loop() {
  auto& listener = cluster_.endpoint(config_.endpoint);
  try {
    for (;;) {
      auto socket = co_await listener.accept();
      cluster_.engine().spawn(session_loop(std::move(socket)));
    }
  } catch (const Disconnected&) {
    // listener closed at teardown
  }
}

sim::Process PortusDaemon::session_loop(std::shared_ptr<net::TcpSocket> socket) {
  std::erase_if(client_sockets_, [](const auto& w) { return w.expired(); });
  client_sockets_.push_back(socket);
  try {
    for (;;) {
      const auto wire = co_await socket->recv();
      if (hung_) continue;  // gray failure: swallow the request, answer nothing
      switch (decode_type(wire)) {
        case MsgType::kRegisterModel: {
          RegisterModelMsg msg;
          try {
            msg = decode_register_model(wire);
          } catch (const ProtocolMismatch& e) {
            // Explicit rejection instead of a dropped connection: the stale
            // peer gets told exactly why, in the one ack layout that is
            // stable across protocol generations (magic+version lead it).
            ++stats_.rejected_protocol;
            ++stats_.failed_ops;
            socket->send(encode(RegisterAckMsg{.ok = false, .error = e.what()}));
            break;
          }
          auto reply = co_await handle_register(std::move(msg));
          if (!hung_) socket->send(encode(reply));
          break;
        }
        case MsgType::kCheckpointReq: {
          auto reply = co_await handle_checkpoint(decode_checkpoint_req(wire));
          if (!hung_) socket->send(encode(reply));
          break;
        }
        case MsgType::kRestoreReq: {
          auto reply = co_await handle_restore(decode_restore_req(wire));
          if (!hung_) socket->send(encode(reply));
          break;
        }
        case MsgType::kFinishJob: {
          const auto msg = decode_finish_job(wire);
          finished_.insert(msg.model_name);
          model_table_->set_finished(msg.model_name);
          BinaryWriter w;
          w.u8(static_cast<std::uint8_t>(MsgType::kFinishAck));
          socket->send(w.take());
          break;
        }
        default:
          throw Corruption("unexpected message type on daemon socket");
      }
    }
  } catch (const Disconnected&) {
    // client went away; its registrations stay (checkpoint data is durable)
  }
}

sim::SubTask<RegisterAckMsg> PortusDaemon::handle_register(RegisterModelMsg msg) {
  // Membership-epoch gate (protocol v6): a registration placed against a
  // stale epoch would pin shard copies to a superseded ring — bounce it
  // before any layout so the client re-resolves first. Epoch 0 on either
  // side means "not epoch-checked" (standalone daemon / legacy client).
  if (msg.membership_epoch != 0 && membership_epoch_ != 0 &&
      msg.membership_epoch != membership_epoch_) {
    ++stats_.epoch_rejects;
    RegisterAckMsg ack;
    ack.ok = false;
    ack.epoch_mismatch = true;
    ack.current_membership_epoch = membership_epoch_;
    ack.error = strf("stale membership epoch {} (current {})", msg.membership_epoch,
                     membership_epoch_);
    co_return ack;
  }

  co_await workers_->acquire();
  RegisterAckMsg ack;
  try {
    // Tenancy: negotiate the quota grant and charge both slots' PMEM
    // capacity BEFORE any layout happens, so an over-quota registration is
    // refused without allocating a byte. The charge is the registered
    // payload doubled (double-mapped slots); alignment padding rides free.
    Tenant* tenant = nullptr;
    if (tenants_ != nullptr) {
      tenant = &tenants_->admit_tenant(
          msg.tenant_id.empty() ? "default" : msg.tenant_id,
          priority_from_wire(msg.priority), msg.requested_capacity, msg.requested_rate);
      tenants_->charge(*tenant, msg.model_name, 2 * msg.total_bytes());
    }

    ModelSession session;
    session.registration = msg;

    // Reuse the persistent index when this model is already known (training
    // restart): the checkpoint data on PMEM outlives client sessions.
    if (const auto existing = model_table_->lookup(msg.model_name); existing.has_value()) {
      auto loaded = MIndex::load(device_, *existing);
      PORTUS_CHECK(loaded.tensors().size() == msg.tensors.size(),
                   "re-registration with a different model structure");
      session.index = std::make_unique<MIndex>(std::move(loaded));
      // Slots reclaimed by the repacker (torn/outdated versions) are
      // re-provisioned so the double-mapping invariant holds again.
      for (int i = 0; i < 2; ++i) {
        session.index->ensure_slot(i, *allocator_);
      }
    } else {
      session.index = std::make_unique<MIndex>(
          MIndex::create(device_, *allocator_, msg, config_.coalesce_threshold));
      model_table_->insert(msg.model_name, session.index->record_offset());
    }

    // Gather capability: the client offered what its NIC posts, we accept
    // the min against our own config and NIC. 1 = single-SGE fallback.
    session.max_sges = std::min<std::uint32_t>(
        std::min<std::uint32_t>(msg.max_sges, static_cast<std::uint32_t>(config_.max_sges)),
        static_cast<std::uint32_t>(node_.nic().spec().max_sges));
    session.max_sges = std::max<std::uint32_t>(session.max_sges, 1);

    // Register both TensorData slots as RDMA regions and wire up the QP.
    auto& ns = node_.devdax();
    for (int i = 0; i < 2; ++i) {
      const auto& slot = session.index->slot(i);
      if (slot.data_offset == 0) continue;  // torn slot reclaimed by repacker
      auto mapping = ns.map(slot.data_offset, session.index->slot_size());
      session.slot_mr[i] = &pd_.register_region(node_.pmem_region(mapping));
    }
    // Stripe negotiation: connect a prefix of the offered QPs, bounded by
    // our own config. All stripes share one CQ so a single pipelined
    // consumer can drain every lane wr_id-keyed; the per-QP processing
    // depth matches the pipeline window so windowed posting actually
    // overlaps in the (simulated) NIC.
    PORTUS_CHECK(!msg.qp_tokens.empty(), "registration offers no datapath QP");
    const auto stripes = std::min<std::size_t>(
        static_cast<std::size_t>(config_.stripes), msg.qp_tokens.size());
    session.cq = std::make_unique<rdma::CompletionQueue>(cluster_.engine());
    for (std::size_t s = 0; s < stripes; ++s) {
      auto& qp = cluster_.fabric().create_qp(node_.nic(), pd_, *session.cq,
                                             config_.pipeline_window);
      cluster_.fabric().connect(qp, rendezvous_.resolve(msg.qp_tokens[s]));
      session.qps.push_back(&qp);
    }

    sessions_.erase(msg.model_name);
    const bool sharded = msg.sharded();
    const auto session_max_sges = session.max_sges;
    sessions_.emplace(msg.model_name, std::move(session));
    ++stats_.registrations;
    if (sharded) ++stats_.shard_registrations;
    ack.ok = true;
    ack.stripes = static_cast<std::uint32_t>(stripes);
    ack.max_sges = session_max_sges;
    if (tenant != nullptr) {
      ack.granted_capacity = tenant->quota.capacity_bytes;
      ack.granted_rate = tenant->quota.rate_bytes_per_sec;
      ack.granted_wr_slots =
          tenant->quota.wr_slots > 0
              ? tenant->quota.wr_slots
              : static_cast<std::uint32_t>(admission_->config().max_inflight);
    }
    PLOG_DEBUG(kLog, "registered model {} ({} tensors, {} stripes)", msg.model_name,
               msg.tensors.size(), stripes);
  } catch (const Error& e) {
    ++stats_.failed_ops;
    ack.ok = false;
    ack.error = e.what();
  }
  workers_->release();
  co_return ack;
}

sim::SubTask<CheckpointDoneMsg> PortusDaemon::handle_checkpoint(CheckpointReqMsg msg) {
  // Tenancy: a checkpoint must hold an admission ticket (strict priority +
  // WFQ + pacing, bounded queue) before it may occupy a worker or post a
  // WR. A full queue answers Backpressure — a cheap, retryable roundtrip —
  // without ever touching the worker pool. Unregistered models fall through
  // untenanted and fail the session lookup below like before. Restores are
  // deliberately unthrottled: they are the recovery path.
  // Membership-epoch gate (protocol v6), checked before admission so a
  // stale client cannot consume a ticket. No checkpoint is taken; the
  // client re-resolves placement and reissues.
  if (msg.membership_epoch != 0 && membership_epoch_ != 0 &&
      msg.membership_epoch != membership_epoch_) {
    ++stats_.epoch_rejects;
    CheckpointDoneMsg done;
    done.model_name = msg.model_name;
    done.ok = false;
    done.epoch_mismatch = true;
    done.current_epoch = membership_epoch_;
    done.error = strf("stale membership epoch {} (current {})", msg.membership_epoch,
                      membership_epoch_);
    co_return done;
  }

  AdmissionController::Ticket ticket;
  if (admission_ != nullptr) {
    const auto it = sessions_.find(msg.model_name);
    Tenant* tenant = it != sessions_.end() ? tenants_->owner_of(msg.model_name) : nullptr;
    if (tenant != nullptr) {
      const Bytes op_bytes = it->second.registration.total_bytes();
      try {
        ticket = co_await admission_->admit(*tenant, op_bytes);
      } catch (const Backpressure& e) {
        ++stats_.backpressure_rejects;
        CheckpointDoneMsg done;
        done.model_name = msg.model_name;
        done.ok = false;
        done.backpressure = true;
        done.retry_after_ns = static_cast<std::uint64_t>(config_.admission_retry_after.count());
        done.error = e.what();
        co_return done;
      }
    }
  }

  co_await workers_->acquire();
  auto trace_span = config_.tracer != nullptr
                        ? config_.tracer->span("checkpoint " + msg.model_name, "portusd")
                        : sim::Tracer::Span{};
  CheckpointDoneMsg done;
  done.model_name = msg.model_name;
  try {
    const auto it = sessions_.find(msg.model_name);
    PORTUS_CHECK(it != sessions_.end(), "DO_CHECKPOINT for unregistered model");
    ModelSession& session = it->second;
    MIndex& index = *session.index;

    // Incremental mode needs a previous DONE version to copy clean tensors
    // from; fall back to a full pull otherwise.
    const auto prev_slot = index.latest_done_slot();
    std::vector<bool> dirty;
    if (!msg.dirty_indices.empty() && prev_slot.has_value()) {
      dirty.assign(index.tensors().size(), false);
      for (const auto i : msg.dirty_indices) {
        PORTUS_CHECK(i < dirty.size(), "dirty index out of range");
        dirty[i] = true;
      }
    }
    const Bytes prev_data_offset =
        prev_slot.has_value() ? index.slot(*prev_slot).data_offset : 0;

    auto txn = CheckpointTxn::begin(index);
    const auto* slot_mr = session.slot_mr[txn.slot()];
    PORTUS_CHECK(slot_mr != nullptr, "write slot has no registered region");

    // Build the extent-planned work list: chunked spans fuse into gather
    // extents where the slot layout is dense (core/daemon/extent.h), then
    // dirty extents pull from the remote GPU (one multi-SGE READ per
    // extent), clean ones copy PMEM-locally from the previous version —
    // all interleaved through one pipelined datapath so the flush of a
    // finished chunk overlaps the pull of the next. The planner never
    // mixes classes inside an extent.
    const auto extents = plan_extents(
        index.chunk_spans(config_.chunk_bytes), index.tensors(),
        ExtentConfig{.coalesce_threshold = config_.coalesce_threshold,
                     .max_sges = static_cast<int>(session.max_sges)},
        dirty);
    std::vector<TransferChunk> work;
    for (const auto& ext : extents) {
      const auto& head = ext.members.front();
      TransferChunk c;
      c.tensor_index = head.tensor;
      c.len = ext.len;
      c.persist_after = true;
      c.persist_offset = txn.data_offset() + ext.offset_in_slot;
      // Inline integrity: CRC each chunk as it lands (phantom payloads are
      // simulated, not materialized — nothing to checksum).
      c.collect_crc = !index.phantom();
      c.tensor_offset = head.offset;
      if (!dirty.empty() && !dirty[head.tensor]) {
        c.kind = TransferChunk::Kind::kLocalCopy;
        c.dst_offset = txn.data_offset() + ext.offset_in_slot;
        c.src_offset = prev_data_offset + ext.offset_in_slot;
        c.phantom = index.phantom();
      } else {
        const auto& desc = session.registration.tensors[head.tensor];
        c.kind = TransferChunk::Kind::kRead;
        c.lkey = slot_mr->lkey;
        c.local_addr = slot_mr->addr + ext.offset_in_slot;
        c.rkey = desc.rkey;
        c.remote_addr = desc.gpu_addr + head.offset;
      }
      if (ext.coalesced()) {
        for (const auto& m : ext.members) {
          const auto& d = session.registration.tensors[m.tensor];
          c.members.push_back(TransferChunk::ExtentMember{
              .tensor_index = m.tensor,
              .len = m.len,
              .rkey = d.rkey,
              .remote_addr = d.gpu_addr + m.offset});
        }
      }
      work.push_back(std::move(c));
    }

    PipelinedTransfer pipe{cluster_.engine(), session.qps, *session.cq,
                           PipelinedTransfer::Config{.window = config_.pipeline_window,
                                                  .batch_doorbells = config_.batch_doorbells}};
    pipe.bind_pmem(&device_, &node_.devdax_write_channel(),
                   node_.devdax().device().perf().read_bw);
    co_await pipe.run(std::move(work));
    absorb_pipeline_stats(pipe.stats());

    // Catch-all flush (layout padding is not covered by the per-chunk
    // persists) + the once-per-checkpoint persistence-domain drain, before
    // declaring the slot DONE.
    device_.persist(txn.data_offset(), index.slot_size());
    co_await cluster_.engine().sleep(device_.perf().persist_overhead);

    // A power cut may have fired while this coroutine was suspended on the
    // datapath; the process it models died with it, so nothing below — CRC
    // block or DONE flip — may touch PMEM.
    PORTUS_CHECK(!dead_, "power lost before checkpoint commit");

    if (!index.phantom()) {
      // Persist the payload-CRC block BEFORE the DONE flip, extending the
      // ordering to ACTIVE -> data -> CRC block -> DONE: a DONE slot is
      // thereby guaranteed to carry a valid, epoch-matching block.
      const auto crcs = pipe.tensor_crcs(index.tensors().size());
      index.set_payload_crcs(txn.slot(), txn.epoch(), crcs);
      Crc32 agg;
      for (const auto c : crcs) agg.update(&c, sizeof c);
      done.payload_crc = agg.value();
    }

    txn.commit();
    ++stats_.checkpoints;
    stats_.bytes_pulled += session.registration.total_bytes();
    done.ok = true;
    done.epoch = txn.epoch();
  } catch (const Error& e) {
    ++stats_.failed_ops;
    done.ok = false;
    done.error = e.what();
  }
  workers_->release();
  co_return done;
}

sim::SubTask<RestoreDoneMsg> PortusDaemon::handle_restore(RestoreReqMsg msg) {
  // Membership-epoch gate (protocol v6): a stale client may be about to
  // restore from a copy that migrated away; make it re-resolve first.
  if (msg.membership_epoch != 0 && membership_epoch_ != 0 &&
      msg.membership_epoch != membership_epoch_) {
    ++stats_.epoch_rejects;
    RestoreDoneMsg done;
    done.model_name = msg.model_name;
    done.ok = false;
    done.epoch_mismatch = true;
    done.current_epoch = membership_epoch_;
    done.error = strf("stale membership epoch {} (current {})", msg.membership_epoch,
                      membership_epoch_);
    co_return done;
  }

  co_await workers_->acquire();
  auto trace_span = config_.tracer != nullptr
                        ? config_.tracer->span("restore " + msg.model_name, "portusd")
                        : sim::Tracer::Span{};
  RestoreDoneMsg done;
  done.model_name = msg.model_name;
  try {
    const auto it = sessions_.find(msg.model_name);
    PORTUS_CHECK(it != sessions_.end(), "DO_RESTORE for unregistered model");
    ModelSession& session = it->second;
    MIndex& index = *session.index;

    const auto slot_idx = index.latest_done_slot();
    PORTUS_CHECK(slot_idx.has_value(), "no valid checkpoint version on PMEM");
    // Replica-epoch floor: a copy that missed the last checkpoint (this
    // daemon was down or hung while the others committed) must refuse
    // rather than hand out stale tensors as if they were current.
    if (msg.required_epoch != 0 && index.slot(*slot_idx).epoch < msg.required_epoch) {
      throw NotFound(strf("newest DONE version of {} is epoch {}, caller requires >= {}",
                          msg.model_name, index.slot(*slot_idx).epoch,
                          msg.required_epoch));
    }
    const auto* slot_mr = session.slot_mr[*slot_idx];
    PORTUS_CHECK(slot_mr != nullptr, "restore slot has no registered region");

    // Integrity scrub before any byte leaves PMEM: the DONE slot must carry
    // a valid payload-CRC block for its exact epoch, and every tensor's
    // bytes must still match it. Bit rot (or an undetected torn write)
    // surfaces here as an explicit Corruption instead of silently feeding
    // the training job garbage weights.
    if (!index.phantom()) {
      const auto& slot = index.slot(*slot_idx);
      const auto block = index.payload_crcs(*slot_idx);
      if (!block.has_value() || block->epoch != slot.epoch) {
        ++stats_.integrity_rejects;
        throw Corruption(strf("payload-CRC block for {} slot {} is {} at epoch {}",
                              msg.model_name, *slot_idx,
                              block.has_value() ? "stale" : "missing or torn",
                              slot.epoch));
      }
      const auto& tensors = index.tensors();
      for (std::size_t t = 0; t < tensors.size(); ++t) {
        if (device_.crc(slot.data_offset + tensors[t].offset_in_slot,
                        tensors[t].size) != block->crcs[t]) {
          ++stats_.integrity_rejects;
          throw Corruption(strf("tensor {} of {} failed its payload CRC on restore",
                                tensors[t].name, msg.model_name));
        }
      }
      Crc32 agg;
      for (const auto c : block->crcs) agg.update(&c, sizeof c);
      done.payload_crc = agg.value();
    }

    // Push every tensor into the remote GPU: pipelined one-sided RDMA
    // WRITEs through the same chunk/window/stripe engine as checkpoints
    // (no persists — the destination is volatile GPU memory). Coalesced
    // extents scatter one contiguous slot range across N tensor buffers.
    const auto extents = plan_extents(
        index.chunk_spans(config_.chunk_bytes), index.tensors(),
        ExtentConfig{.coalesce_threshold = config_.coalesce_threshold,
                     .max_sges = static_cast<int>(session.max_sges)});
    std::vector<TransferChunk> work;
    for (const auto& ext : extents) {
      const auto& head = ext.members.front();
      const auto& desc = session.registration.tensors[head.tensor];
      TransferChunk c;
      c.kind = TransferChunk::Kind::kWrite;
      c.tensor_index = head.tensor;
      c.len = ext.len;
      c.lkey = slot_mr->lkey;
      c.local_addr = slot_mr->addr + ext.offset_in_slot;
      c.rkey = desc.rkey;
      c.remote_addr = desc.gpu_addr + head.offset;
      if (ext.coalesced()) {
        for (const auto& m : ext.members) {
          const auto& d = session.registration.tensors[m.tensor];
          c.members.push_back(TransferChunk::ExtentMember{
              .tensor_index = m.tensor,
              .len = m.len,
              .rkey = d.rkey,
              .remote_addr = d.gpu_addr + m.offset});
        }
      }
      work.push_back(std::move(c));
    }

    PipelinedTransfer pipe{cluster_.engine(), session.qps, *session.cq,
                           PipelinedTransfer::Config{.window = config_.pipeline_window,
                                                  .batch_doorbells = config_.batch_doorbells}};
    co_await pipe.run(std::move(work));
    absorb_pipeline_stats(pipe.stats());

    ++stats_.restores;
    stats_.bytes_pushed += session.registration.total_bytes();
    done.ok = true;
    done.epoch = index.slot(*slot_idx).epoch;
  } catch (const Error& e) {
    ++stats_.failed_ops;
    done.ok = false;
    done.error = e.what();
  }
  workers_->release();
  co_return done;
}

}  // namespace portus::core
