#include "core/daemon/daemon.h"

#include "common/logging.h"
#include "core/daemon/slots.h"

namespace portus::core {

namespace {
constexpr const char* kLog = "portusd";
}

PortusDaemon::PortusDaemon(net::Cluster& cluster, net::Node& storage_node,
                           QpRendezvous& rendezvous, Config config)
    : cluster_{cluster},
      node_{storage_node},
      rendezvous_{rendezvous},
      config_{config},
      device_{storage_node.devdax().device()},
      pd_{storage_node.nic().alloc_pd("portusd-pd")} {
  PORTUS_CHECK_ARG(storage_node.has_devdax(),
                   "Portus daemon requires a devdax PMEM namespace");
  model_table_ = std::make_unique<ModelTable>(device_, kModelTableOffset,
                                              config_.model_table_capacity);
  allocator_ = std::make_unique<PmemAllocator>(
      device_, PmemAllocator::Config{.table_offset = kAllocTableOffset,
                                     .table_capacity = config_.alloc_table_capacity,
                                     .data_offset = kHeapOffset,
                                     .data_end = device_.size()});
  workers_ = std::make_unique<sim::SimSemaphore>(cluster.engine(), config_.workers);
}

void PortusDaemon::start() {
  PORTUS_CHECK(!started_, "daemon already started");
  started_ = true;
  cluster_.listen(config_.endpoint);
  cluster_.engine().spawn(accept_loop());
}

void PortusDaemon::recover() {
  model_table_->recover();
  allocator_->recover();
  sessions_.clear();
  PLOG_INFO(kLog, "recovered: {} models in table, {} live bytes on heap",
            model_table_->size(), allocator_->live_bytes());
}

MIndex* PortusDaemon::find_live_index(const std::string& model_name) {
  const auto it = sessions_.find(model_name);
  return it == sessions_.end() ? nullptr : it->second.index.get();
}

MIndex PortusDaemon::load_index(const std::string& model_name) {
  const auto offset = model_table_->lookup(model_name);
  if (!offset.has_value()) throw NotFound("model not in ModelTable: " + model_name);
  return MIndex::load(device_, *offset);
}

sim::Process PortusDaemon::accept_loop() {
  auto& listener = cluster_.endpoint(config_.endpoint);
  try {
    for (;;) {
      auto socket = co_await listener.accept();
      cluster_.engine().spawn(session_loop(std::move(socket)));
    }
  } catch (const Disconnected&) {
    // listener closed at teardown
  }
}

sim::Process PortusDaemon::session_loop(std::shared_ptr<net::TcpSocket> socket) {
  try {
    for (;;) {
      const auto wire = co_await socket->recv();
      switch (decode_type(wire)) {
        case MsgType::kRegisterModel: {
          auto reply = co_await handle_register(decode_register_model(wire));
          socket->send(encode(reply));
          break;
        }
        case MsgType::kCheckpointReq: {
          auto reply = co_await handle_checkpoint(decode_checkpoint_req(wire));
          socket->send(encode(reply));
          break;
        }
        case MsgType::kRestoreReq: {
          auto reply = co_await handle_restore(decode_restore_req(wire));
          socket->send(encode(reply));
          break;
        }
        case MsgType::kFinishJob: {
          const auto msg = decode_finish_job(wire);
          finished_.insert(msg.model_name);
          model_table_->set_finished(msg.model_name);
          BinaryWriter w;
          w.u8(static_cast<std::uint8_t>(MsgType::kFinishAck));
          socket->send(w.take());
          break;
        }
        default:
          throw Corruption("unexpected message type on daemon socket");
      }
    }
  } catch (const Disconnected&) {
    // client went away; its registrations stay (checkpoint data is durable)
  }
}

sim::SubTask<RegisterAckMsg> PortusDaemon::handle_register(RegisterModelMsg msg) {
  co_await workers_->acquire();
  RegisterAckMsg ack;
  try {
    ModelSession session;
    session.registration = msg;

    // Reuse the persistent index when this model is already known (training
    // restart): the checkpoint data on PMEM outlives client sessions.
    if (const auto existing = model_table_->lookup(msg.model_name); existing.has_value()) {
      auto loaded = MIndex::load(device_, *existing);
      PORTUS_CHECK(loaded.tensors().size() == msg.tensors.size(),
                   "re-registration with a different model structure");
      session.index = std::make_unique<MIndex>(std::move(loaded));
      // Slots reclaimed by the repacker (torn/outdated versions) are
      // re-provisioned so the double-mapping invariant holds again.
      for (int i = 0; i < 2; ++i) {
        session.index->ensure_slot(i, *allocator_);
      }
    } else {
      session.index =
          std::make_unique<MIndex>(MIndex::create(device_, *allocator_, msg));
      model_table_->insert(msg.model_name, session.index->record_offset());
    }

    // Register both TensorData slots as RDMA regions and wire up the QP.
    auto& ns = node_.devdax();
    for (int i = 0; i < 2; ++i) {
      const auto& slot = session.index->slot(i);
      if (slot.data_offset == 0) continue;  // torn slot reclaimed by repacker
      auto mapping = ns.map(slot.data_offset, session.index->slot_size());
      session.slot_mr[i] = &pd_.register_region(node_.pmem_region(mapping));
    }
    session.cq = std::make_unique<rdma::CompletionQueue>(cluster_.engine());
    session.qp = &cluster_.fabric().create_qp(node_.nic(), pd_, *session.cq);
    cluster_.fabric().connect(*session.qp, rendezvous_.resolve(msg.qp_token));

    sessions_.erase(msg.model_name);
    sessions_.emplace(msg.model_name, std::move(session));
    ++stats_.registrations;
    ack.ok = true;
    PLOG_DEBUG(kLog, "registered model {} ({} tensors)", msg.model_name,
               msg.tensors.size());
  } catch (const Error& e) {
    ++stats_.failed_ops;
    ack.ok = false;
    ack.error = e.what();
  }
  workers_->release();
  co_return ack;
}

sim::SubTask<CheckpointDoneMsg> PortusDaemon::handle_checkpoint(CheckpointReqMsg msg) {
  co_await workers_->acquire();
  auto trace_span = config_.tracer != nullptr
                        ? config_.tracer->span("checkpoint " + msg.model_name, "portusd")
                        : sim::Tracer::Span{};
  CheckpointDoneMsg done;
  done.model_name = msg.model_name;
  try {
    const auto it = sessions_.find(msg.model_name);
    PORTUS_CHECK(it != sessions_.end(), "DO_CHECKPOINT for unregistered model");
    ModelSession& session = it->second;
    MIndex& index = *session.index;

    // Incremental mode needs a previous DONE version to copy clean tensors
    // from; fall back to a full pull otherwise.
    const auto prev_slot = index.latest_done_slot();
    std::vector<bool> dirty;
    if (!msg.dirty_indices.empty() && prev_slot.has_value()) {
      dirty.assign(index.tensors().size(), false);
      for (const auto i : msg.dirty_indices) {
        PORTUS_CHECK(i < dirty.size(), "dirty index out of range");
        dirty[i] = true;
      }
    }
    const Bytes prev_data_offset =
        prev_slot.has_value() ? index.slot(*prev_slot).data_offset : 0;

    auto txn = CheckpointTxn::begin(index);
    const auto* slot_mr = session.slot_mr[txn.slot()];
    PORTUS_CHECK(slot_mr != nullptr, "write slot has no registered region");

    // Pull changed tensors from the remote GPU (one one-sided READ each);
    // copy unchanged ones PMEM-locally from the previous version.
    for (std::size_t i = 0; i < index.tensors().size(); ++i) {
      const auto& tensor = index.tensors()[i];
      const auto& desc = session.registration.tensors[i];
      if (!dirty.empty() && !dirty[i]) {
        // Device-local copy: the read and write streams through the DIMMs
        // are pipelined, so the slower (write) side bounds the copy; no NIC
        // or GPU BAR involvement — those stay free for other tenants.
        co_await node_.devdax_write_channel().transfer(
            tensor.size, node_.devdax().device().perf().read_bw);
        if (!index.phantom()) {
          mem::copy_bytes(device_, txn.data_offset() + tensor.offset_in_slot, device_,
                          prev_data_offset + tensor.offset_in_slot, tensor.size);
        } else {
          device_.mark_dirty(txn.data_offset() + tensor.offset_in_slot, tensor.size);
        }
        continue;
      }
      const auto wc = co_await session.qp->read_sync(
          slot_mr->lkey, slot_mr->addr + tensor.offset_in_slot, tensor.size, desc.rkey,
          desc.gpu_addr);
      PORTUS_CHECK(wc.status == rdma::WcStatus::kSuccess,
                   std::string{"RDMA READ failed: "} + rdma::to_string(wc.status));
    }

    // Flush the slot into the persistence domain before declaring it DONE.
    device_.persist(txn.data_offset(), index.slot_size());
    co_await cluster_.engine().sleep(device_.perf().persist_overhead);

    txn.commit();
    ++stats_.checkpoints;
    stats_.bytes_pulled += session.registration.total_bytes();
    done.ok = true;
    done.epoch = txn.epoch();
  } catch (const Error& e) {
    ++stats_.failed_ops;
    done.ok = false;
    done.error = e.what();
  }
  workers_->release();
  co_return done;
}

sim::SubTask<RestoreDoneMsg> PortusDaemon::handle_restore(RestoreReqMsg msg) {
  co_await workers_->acquire();
  auto trace_span = config_.tracer != nullptr
                        ? config_.tracer->span("restore " + msg.model_name, "portusd")
                        : sim::Tracer::Span{};
  RestoreDoneMsg done;
  done.model_name = msg.model_name;
  try {
    const auto it = sessions_.find(msg.model_name);
    PORTUS_CHECK(it != sessions_.end(), "DO_RESTORE for unregistered model");
    ModelSession& session = it->second;
    MIndex& index = *session.index;

    const auto slot_idx = index.latest_done_slot();
    PORTUS_CHECK(slot_idx.has_value(), "no valid checkpoint version on PMEM");
    const auto* slot_mr = session.slot_mr[*slot_idx];
    PORTUS_CHECK(slot_mr != nullptr, "restore slot has no registered region");

    // Push every tensor into the remote GPU: one-sided RDMA WRITEs.
    for (std::size_t i = 0; i < index.tensors().size(); ++i) {
      const auto& tensor = index.tensors()[i];
      const auto& desc = session.registration.tensors[i];
      const auto wc = co_await session.qp->write_sync(
          slot_mr->lkey, slot_mr->addr + tensor.offset_in_slot, tensor.size, desc.rkey,
          desc.gpu_addr);
      PORTUS_CHECK(wc.status == rdma::WcStatus::kSuccess,
                   std::string{"RDMA WRITE failed: "} + rdma::to_string(wc.status));
    }

    ++stats_.restores;
    stats_.bytes_pushed += session.registration.total_bytes();
    done.ok = true;
    done.epoch = index.slot(*slot_idx).epoch;
  } catch (const Error& e) {
    ++stats_.failed_ops;
    done.ok = false;
    done.error = e.what();
  }
  workers_->release();
  co_return done;
}

}  // namespace portus::core
