#include "core/async_coordinator.h"

namespace portus::core {

PortusHook::PortusHook(PortusClient& client, dnn::Model& model, std::uint64_t interval,
                       Mode mode)
    : client_{client}, model_{model}, interval_{interval}, mode_{mode} {
  PORTUS_CHECK_ARG(interval_ >= 1, "checkpoint interval must be >= 1");
}

sim::SubTask<> PortusHook::on_iteration_end(std::uint64_t iteration) {
  if (iteration % interval_ != 0) co_return;
  ++stats_.triggered;

  if (mode_ == Mode::kSync) {
    const Time t0 = model_.gpu().engine().now();
    co_await client_.checkpoint(model_, iteration);
    stats_.pull_time += model_.gpu().engine().now() - t0;
    ++stats_.completed;
    stats_.last_committed_iteration = iteration;
    co_return;
  }

  // Async: at most one outstanding pull (one ACTIVE slot); wait for the
  // previous one before triggering the next.
  if (pull_in_flight_) {
    co_await pull_done_->wait();
  }
  pull_in_flight_ = true;
  pull_done_ = std::make_unique<sim::SimEvent>(model_.gpu().engine());
  model_.gpu().engine().spawn(pull_async(iteration));
}

sim::SubTask<> PortusHook::before_update(std::uint64_t) {
  if (mode_ == Mode::kAsync && pull_in_flight_) {
    ++stats_.stalled_updates;
    co_await pull_done_->wait();
  }
}

sim::SubTask<> PortusHook::drain() {
  if (pull_in_flight_) {
    co_await pull_done_->wait();
  }
}

sim::Process PortusHook::pull_async(std::uint64_t iteration) {
  auto& engine = model_.gpu().engine();
  const Time t0 = engine.now();
  co_await client_.checkpoint(model_, iteration);
  stats_.pull_time += engine.now() - t0;
  ++stats_.completed;
  stats_.last_committed_iteration = iteration;
  pull_in_flight_ = false;
  pull_done_->set();
}

}  // namespace portus::core
