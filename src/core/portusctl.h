// Portusctl: management/sharing tool (SS IV-b).
//
//   portusctl view DEVICE            -> list models stored on a PMEM device
//   portusctl dump CHECKPOINT FILE   -> export a checkpoint out of the
//                                       three-level index as a portable
//                                       container ("PTCK", readable by any
//                                       framework-side loader)
//   portusctl repack DEVICE          -> reclaim invalid checkpoint versions
//   portusctl fsck DEVICE            -> scrub the whole image (payload CRCs,
//                                       slot states, allocator consistency)
//                                       and repair it to a restorable state
//
// This header is the library behind the CLI in tools/portusctl_main.cc; the
// admin runs it on the storage node against a (quiesced) daemon.
#pragma once

#include <string>
#include <vector>

#include "core/daemon/daemon.h"
#include "core/daemon/fsck.h"
#include "core/daemon/repacker.h"
#include "storage/filesystem.h"
#include "storage/serializer.h"

namespace portus::core {

class Portusctl {
 public:
  struct SlotInfo {
    SlotState state = SlotState::kEmpty;
    std::uint64_t epoch = 0;
  };
  struct ModelInfo {
    std::string name;
    std::size_t layers = 0;
    Bytes slot_size = 0;
    bool phantom = false;
    SlotInfo slots[2];
    bool restorable = false;  // has at least one DONE version
  };

  explicit Portusctl(PortusDaemon& daemon) : daemon_{daemon} {}

  // `portusctl view`: every model in the ModelTable with its slot states.
  std::vector<ModelInfo> view();
  std::string render_view();  // human-readable table

  // `portusctl stats`: operation counters plus pipelined-datapath
  // observability (window occupancy, chunk mix, queueing delay) of the
  // daemon this tool is attached to.
  std::string render_stats();

  // `portusctl tenants`: the per-tenant quota/usage table (granted quota
  // vs charged capacity, admission/backpressure/pacing counters) plus the
  // admission controller's aggregate line. Tenancy state is DRAM-only, so
  // this renders live daemon state, not anything read from the image.
  std::string render_tenants();

  // `portusctl dump`: read the newest DONE version's TensorData out of PMEM
  // and serialize it into the portable container format. Charges PMEM read
  // + CPU serialization time.
  sim::SubTask<storage::CheckpointFile> dump(const std::string& model_name);

  // Dump straight into a filesystem file (e.g. for sharing over Lustre).
  sim::SubTask<Bytes> dump_to(const std::string& model_name,
                              storage::CheckpointStorage& storage, std::string path);

  // `portusctl repack`.
  Repacker::Report repack() { return Repacker{daemon_}.repack(); }

  // `portusctl fsck`: scrub payloads against their CRC blocks, demote
  // ACTIVE/corrupt slots, and sweep orphaned extents. repair=false only
  // reports (the CLI's --verify-only).
  Fsck::Report fsck(bool repair = true) { return Fsck{daemon_}.run(repair); }
  std::string render_fsck(const Fsck::Report& r);

 private:
  PortusDaemon& daemon_;
};

}  // namespace portus::core
