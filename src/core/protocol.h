// Portus control-plane protocol (client <-> daemon over TCP/IPoIB).
//
// Registration ships the full model description — for every tensor: layer
// name, dtype, shape, byte size, GPU address, and the rkey of its RDMA
// memory region — so the daemon can lay out the checkpoint structure on
// PMEM *before* the first training iteration (SS III-C). After that the
// control plane only carries one-word triggers ("DO_CHECKPOINT",
// "DO_RESTORE") and completion notifications; all tensor bytes move
// peer-to-peer over RDMA.
//
// QP rendezvous: real deployments exchange QP numbers/GIDs through RDMA CM;
// in the simulation the registration packet carries opaque `qp_tokens`
// (one per datapath stripe the client offers) that the daemon resolves
// through QpRendezvous to obtain the client's QueuePairs and complete the
// RC connections. The daemon connects min(offered, configured) stripes and
// reports the accepted count in the ack.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/binary_io.h"
#include "common/units.h"
#include "dnn/dtype.h"
#include "rdma/queue_pair.h"

namespace portus::core {

// Control-plane wire versioning. Registration (the one message whose layout
// has already changed across releases) opens with a magic + version pair so
// a stale client and daemon reject each other explicitly instead of
// misparsing the body. Bump kProtocolVersion on any wire-layout change.
inline constexpr std::uint32_t kProtocolMagic = 0x50545553;  // "PTUS"
// v3: CheckpointDoneMsg / RestoreDoneMsg grew payload_crc.
// v4: registration + ack carry the negotiated multi-SGE gather capability
//     (max_sges); a capability of 1 is the clean single-SGE fallback.
// v5: tenant-quota negotiation — registration carries a tenant identity,
//     priority class and requested quotas, the ack answers with the granted
//     quota, and the Done messages can flag a retryable Backpressure
//     rejection with a pacing hint.
// v6: cluster membership epochs — requests carry the membership epoch the
//     client placed against (0 = not epoch-checked), and the ack/Done
//     messages can answer with an EpochMismatch rejection carrying the
//     daemon's current epoch so the client re-resolves placement.
inline constexpr std::uint16_t kProtocolVersion = 6;

enum class MsgType : std::uint8_t {
  kRegisterModel = 1,
  kRegisterAck = 2,
  kCheckpointReq = 3,   // "DO_CHECKPOINT"
  kCheckpointDone = 4,
  kRestoreReq = 5,      // "DO_RESTORE"
  kRestoreDone = 6,
  kFinishJob = 7,       // training complete: old checkpoint version reclaimable
  kFinishAck = 8,
  kError = 9,
};

const char* to_string(MsgType t);

// A peer speaks a different protocol generation (bad magic or version).
// Distinct from Corruption so handlers can answer with an explicit
// rejection instead of treating the message as line noise.
class ProtocolMismatch : public Error {
 public:
  using Error::Error;
};

// The daemon's admission controller refused an operation because the
// tenant's class queue is full (bounded queue depth). Retryable by design:
// the client backs off (jittered exponential, see PortusClient::RetryPolicy)
// and reissues. Carried on the wire as the Done messages' backpressure flag
// rather than as a dropped connection.
class Backpressure : public Error {
 public:
  using Error::Error;
};

// The daemon refused an operation because the request's membership epoch is
// stale (the cluster resized since the client last resolved placement).
// Retryable by design: the ClusterClient refetches membership, recomputes
// placement, re-routes, and reissues — see cluster_client.h. Carried on the
// wire as the ack/Done messages' epoch_mismatch flag (v6).
class EpochMismatch : public Error {
 public:
  using Error::Error;
};

struct TensorDesc {
  std::string name;
  dnn::DType dtype = dnn::DType::kF32;
  std::vector<std::int64_t> shape;
  Bytes size = 0;
  std::uint64_t gpu_addr = 0;
  std::uint32_t rkey = 0;
};

struct RegisterModelMsg {
  // Overridable in tests to simulate a stale client; encode() writes these
  // verbatim and decode() rejects anything but the current pair.
  std::uint32_t magic = kProtocolMagic;
  std::uint16_t version = kProtocolVersion;
  std::string model_name;
  // One token per datapath stripe the client offers (>= 1); the daemon
  // connects a prefix of them, bounded by its own `stripes` config.
  std::vector<std::uint64_t> qp_tokens;
  bool phantom = false;
  // Gather entries per work request the client's NIC accepts (>= 1). The
  // daemon plans coalesced extents no wider than min(this, its own config
  // and NIC); offering 1 disables coalescing for this registration.
  std::uint32_t max_sges = 1;
  // --- cluster sharding (core/cluster/). A standalone registration keeps
  // the defaults: one shard, one replica, no manifest. ---
  std::uint32_t shard_id = 0;
  std::uint32_t shard_count = 1;
  std::uint32_t replica = 0;        // which copy of the shard this is
  std::uint32_t replica_count = 1;
  std::uint64_t placement_epoch = 0;  // ring-config generation
  // Encoded ShardManifest, persisted alongside the shard's MIndex so any
  // surviving daemon can reconstruct the full placement. Empty = none.
  std::vector<std::byte> manifest;
  // --- tenancy (v5, core/daemon/tenant.h). An empty tenant_id files the
  // registration under the daemon's "default" tenant; the requested_* fields
  // are wishes the daemon clamps against its own policy (the grant comes
  // back in the ack). ---
  std::string tenant_id;
  std::uint8_t priority = 1;       // 0 = high, 1 = normal, 2 = batch
  Bytes requested_capacity = 0;    // PMEM bytes wanted (0 = policy default)
  Bytes requested_rate = 0;        // pacing bytes/sec wanted (0 = default)
  // --- elasticity (v6): the membership epoch the client placed against.
  // 0 = not epoch-checked (standalone client or legacy ring); a daemon with
  // a non-zero epoch of its own rejects a non-zero stale value with
  // epoch_mismatch so the client re-resolves before registering.
  std::uint64_t membership_epoch = 0;
  std::vector<TensorDesc> tensors;

  bool sharded() const { return shard_count > 1 || replica_count > 1; }

  Bytes total_bytes() const {
    Bytes n = 0;
    for (const auto& t : tensors) n += t.size;
    return n;
  }
};

struct RegisterAckMsg {
  std::uint32_t magic = kProtocolMagic;
  std::uint16_t version = kProtocolVersion;
  bool ok = false;
  std::string error;
  // Datapath stripes the daemon actually connected (<= tokens offered).
  std::uint32_t stripes = 0;
  // Gather capability the daemon accepted for this registration: min of
  // the client's offer, the daemon's coalescing config, and its NIC. 1 =
  // single-SGE datapath (coalescing off).
  std::uint32_t max_sges = 1;
  // --- tenancy grant (v5): what the admission controller will hold this
  // registration's tenant to. 0 = unlimited / unpaced (tenancy off or no
  // policy ceiling).
  Bytes granted_capacity = 0;
  Bytes granted_rate = 0;
  std::uint32_t granted_wr_slots = 0;  // in-flight checkpoint admissions
  // v6 elasticity: ok=false with epoch_mismatch=true means the client's
  // membership epoch is stale; current_membership_epoch is the daemon's.
  bool epoch_mismatch = false;
  std::uint64_t current_membership_epoch = 0;
};

struct CheckpointReqMsg {
  std::string model_name;
  std::uint64_t iteration = 0;
  // Incremental checkpointing (Check-N-Run-style extension): when non-empty,
  // only these tensor indices changed since the previous version; the daemon
  // pulls them over RDMA and copies the rest PMEM-locally from the last DONE
  // slot. Empty = full checkpoint.
  std::vector<std::uint32_t> dirty_indices;
  // v6 elasticity: see RegisterModelMsg::membership_epoch.
  std::uint64_t membership_epoch = 0;
};

struct CheckpointDoneMsg {
  std::string model_name;
  std::uint64_t epoch = 0;
  bool ok = false;
  std::string error;
  // CRC-of-per-tensor-CRCs over the payload the daemon persisted (matches
  // dnn::Model::weights_crc()); 0 when !ok or for phantom models. Lets the
  // client end-to-end verify that what landed on PMEM is what it sent.
  std::uint32_t payload_crc = 0;
  // v5 admission control: ok=false with backpressure=true means the class
  // queue was full — retry after backing off at least retry_after_ns.
  bool backpressure = false;
  std::uint64_t retry_after_ns = 0;
  // v6 elasticity: ok=false with epoch_mismatch=true means the request's
  // membership epoch is stale; current_epoch is the daemon's. The client
  // re-resolves placement and reissues (no checkpoint was taken).
  bool epoch_mismatch = false;
  std::uint64_t current_epoch = 0;
};

struct RestoreReqMsg {
  std::string model_name;
  // Replica-epoch floor (cluster degraded restore): when non-zero, the
  // daemon must serve a DONE version with epoch >= this, or reject — a
  // replica that missed the last checkpoint must not silently hand out
  // stale tensors. 0 = newest available.
  std::uint64_t required_epoch = 0;
  // v6 elasticity: see RegisterModelMsg::membership_epoch.
  std::uint64_t membership_epoch = 0;
};

struct RestoreDoneMsg {
  std::string model_name;
  std::uint64_t epoch = 0;
  bool ok = false;
  std::string error;
  // Aggregate payload CRC of the version served (see CheckpointDoneMsg);
  // verified against the persisted payload-CRC block before any byte is
  // pushed, so ok=true implies the tensors passed the integrity scrub.
  std::uint32_t payload_crc = 0;
  // v5 admission control (see CheckpointDoneMsg).
  bool backpressure = false;
  std::uint64_t retry_after_ns = 0;
  // v6 elasticity (see CheckpointDoneMsg).
  bool epoch_mismatch = false;
  std::uint64_t current_epoch = 0;
};

struct FinishJobMsg {
  std::string model_name;
};

// --- encoding ---------------------------------------------------------------
// Every wire message is [u8 MsgType][body...]. decode_type() peeks the tag.

MsgType decode_type(std::span<const std::byte> wire);

std::vector<std::byte> encode(const RegisterModelMsg& m);
std::vector<std::byte> encode(const RegisterAckMsg& m);
std::vector<std::byte> encode(const CheckpointReqMsg& m);
std::vector<std::byte> encode(const CheckpointDoneMsg& m);
std::vector<std::byte> encode(const RestoreReqMsg& m);
std::vector<std::byte> encode(const RestoreDoneMsg& m);
std::vector<std::byte> encode(const FinishJobMsg& m);

RegisterModelMsg decode_register_model(std::span<const std::byte> wire);
RegisterAckMsg decode_register_ack(std::span<const std::byte> wire);
CheckpointReqMsg decode_checkpoint_req(std::span<const std::byte> wire);
CheckpointDoneMsg decode_checkpoint_done(std::span<const std::byte> wire);
RestoreReqMsg decode_restore_req(std::span<const std::byte> wire);
RestoreDoneMsg decode_restore_done(std::span<const std::byte> wire);
FinishJobMsg decode_finish_job(std::span<const std::byte> wire);

// --- QP rendezvous (simulation analogue of RDMA CM) -------------------------
class QpRendezvous {
 public:
  std::uint64_t publish(rdma::QueuePair& qp) {
    const auto token = next_token_++;
    qps_.emplace(token, &qp);
    return token;
  }
  rdma::QueuePair& resolve(std::uint64_t token) const {
    const auto it = qps_.find(token);
    if (it == qps_.end()) throw NotFound("unknown QP token");
    return *it->second;
  }

 private:
  std::uint64_t next_token_ = 0xCAFE0000ull;
  std::unordered_map<std::uint64_t, rdma::QueuePair*> qps_;
};

}  // namespace portus::core
