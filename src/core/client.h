// Portus Client: the compute-node side, the library a training framework
// (PyTorch/DeepSpeed/Megatron) links against.
//
// On register_model() it walks the model's pre-allocated GPU tensors, pins
// each through NVIDIA PeerMem, registers RDMA memory regions, and ships the
// metadata packet (names, dtypes, shapes, sizes, GPU addresses, rkeys) to
// the daemon over TCP/IPoIB. checkpoint() and restore() are then one-word
// triggers: the *daemon* moves all tensor bytes with one-sided verbs, so
// the client never copies, serializes, or crosses into a kernel filesystem.
#pragma once

#include <memory>
#include <string>

#include "core/protocol.h"
#include "dnn/model.h"
#include "gpu/peer_mem.h"
#include "net/cluster.h"
#include "sim/task.h"

namespace portus::core {

class PortusClient {
 public:
  struct Stats {
    std::uint64_t checkpoints = 0;
    std::uint64_t restores = 0;
    Duration last_checkpoint{0};
    Duration last_restore{0};
    Duration registration_time{0};
    std::uint32_t negotiated_stripes = 0;  // accepted by the daemon
  };

  // `stripes` is how many datapath QPs the client offers at registration;
  // the daemon connects min(stripes, its own configured stripes).
  PortusClient(net::Cluster& cluster, net::Node& client_node, gpu::GpuDevice& gpu,
               QpRendezvous& rendezvous, std::string endpoint = "portusd",
               int stripes = 1);

  // Dial the daemon (TCP handshake). Must precede register_model().
  sim::SubTask<> connect();

  // Pin + register every tensor and send the metadata packet. The daemon
  // lays out the checkpoint structure on PMEM before this returns.
  sim::SubTask<> register_model(dnn::Model& model);

  // Trigger "DO_CHECKPOINT" and wait for the daemon's completion notice.
  // Returns the committed epoch.
  sim::SubTask<std::uint64_t> checkpoint(dnn::Model& model, std::uint64_t iteration = 0);

  // Incremental variant (Check-N-Run-style extension): only the tensors in
  // `dirty_indices` changed since the previous checkpoint; the daemon pulls
  // those over RDMA and copies the rest from the last valid version within
  // PMEM. Falls back to a full pull when no previous version exists.
  sim::SubTask<std::uint64_t> checkpoint_incremental(
      dnn::Model& model, std::uint64_t iteration,
      std::vector<std::uint32_t> dirty_indices);

  // Trigger "DO_RESTORE": daemon writes the newest valid version into the
  // model's GPU buffers. Returns the restored epoch.
  sim::SubTask<std::uint64_t> restore(dnn::Model& model);

  // Tell the daemon this training job is complete (repacker hint).
  sim::SubTask<> finish(dnn::Model& model);

  const Stats& stats() const { return stats_; }
  bool connected() const { return socket_ != nullptr; }

 private:
  sim::SubTask<std::vector<std::byte>> roundtrip(std::vector<std::byte> request);

  net::Cluster& cluster_;
  net::Node& node_;
  gpu::GpuDevice& gpu_;
  QpRendezvous& rendezvous_;
  std::string endpoint_;
  int stripes_;
  std::shared_ptr<net::TcpSocket> socket_;
  rdma::ProtectionDomain* pd_ = nullptr;
  std::unique_ptr<rdma::CompletionQueue> cq_;
  std::vector<rdma::QueuePair*> qps_;  // one per offered stripe
  bool op_in_flight_ = false;
  Stats stats_;
};

}  // namespace portus::core
