// Portus Client: the compute-node side, the library a training framework
// (PyTorch/DeepSpeed/Megatron) links against.
//
// On register_model() it walks the model's pre-allocated GPU tensors, pins
// each through NVIDIA PeerMem, registers RDMA memory regions, and ships the
// metadata packet (names, dtypes, shapes, sizes, GPU addresses, rkeys) to
// the daemon over TCP/IPoIB. checkpoint() and restore() are then one-word
// triggers: the *daemon* moves all tensor bytes with one-sided verbs, so
// the client never copies, serializes, or crosses into a kernel filesystem.
//
// Sharded mode (core/cluster/): one PortusClient per daemon, and
// register_shard() registers a *subset* of the model's tensors under a
// shard-scoped name. A daemon may host several shard copies of one model,
// so a client keeps one datapath (CQ + QP stripes) per registration.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/rng.h"
#include "core/protocol.h"
#include "dnn/model.h"
#include "gpu/peer_mem.h"
#include "net/cluster.h"
#include "sim/task.h"

namespace portus::core {

class PortusClient {
 public:
  struct Stats {
    std::uint64_t checkpoints = 0;
    std::uint64_t restores = 0;
    std::uint64_t timeouts = 0;  // ops abandoned by the watchdog
    Duration last_checkpoint{0};
    Duration last_restore{0};
    Duration registration_time{0};
    std::uint32_t negotiated_stripes = 0;  // accepted by the daemon (last reg)
    // Gather capability the daemon accepted (last reg); 1 = single-SGE.
    std::uint32_t negotiated_max_sges = 0;
    // Aggregate payload CRC reported by the daemon for the last successful
    // checkpoint/restore (0 for phantom models). Comparable against
    // dnn::Model::weights_crc() for end-to-end integrity assertions.
    std::uint32_t last_payload_crc = 0;
    // --- retry/backoff observability (RetryPolicy) ---
    std::uint64_t retries = 0;       // re-sent ops (backpressure or timeout)
    std::uint64_t backpressure = 0;  // Backpressure answers absorbed
    std::uint64_t reconnects = 0;    // sockets re-dialed after a timeout
    // Quota the daemon granted at the last registration (protocol v5;
    // all-zero when the daemon runs untenanted).
    Bytes granted_capacity = 0;
    Bytes granted_rate = 0;
    std::uint32_t granted_wr_slots = 0;
  };

  // Backoff discipline for retryable failures. Backpressure answers (the
  // daemon's admission queue was full) retry up to max_retries with capped
  // exponential backoff and uniform [0.5, 1.5) jitter, floored at the
  // daemon's retry_after hint. Op-timeouts additionally retry — after
  // re-dialing the daemon — when retry_timeouts is set; leave it off where
  // a dead endpoint should surface immediately (cluster lane rerouting).
  struct RetryPolicy {
    int max_retries = 0;                // 0 = fail fast (classic behavior)
    Duration base_backoff{500'000};     // 0.5 ms
    Duration max_backoff{50'000'000};   // 50 ms cap
    bool retry_timeouts = false;
    std::uint64_t jitter_seed = 0x9E3779B97F4A7C15ull;
  };

  // Identity + quota request shipped with every registration (protocol
  // v5). Empty id = the daemon's "default" tenant; priority 0 = high,
  // 1 = normal, 2 = batch; zero capacity/rate = "grant me the policy
  // default".
  struct TenantSpec {
    std::string id;
    std::uint8_t priority = 1;
    Bytes requested_capacity = 0;
    Bytes requested_rate = 0;
  };

  // One shard copy's registration: which tensors go to this daemon and
  // under what identity. register_model() is the degenerate single-shard
  // case (all tensors, the model's own name).
  struct ShardBinding {
    std::string reg_name;                        // shard-scoped ModelTable key
    std::vector<std::uint32_t> tensor_indices;   // subset, ascending
    std::uint32_t shard_id = 0;
    std::uint32_t shard_count = 1;
    std::uint32_t replica = 0;
    std::uint32_t replica_count = 1;
    std::uint64_t placement_epoch = 0;
    std::vector<std::byte> manifest;  // encoded ShardManifest (may be empty)
  };

  // `stripes` is how many datapath QPs the client offers at registration;
  // the daemon connects min(stripes, its own configured stripes).
  PortusClient(net::Cluster& cluster, net::Node& client_node, gpu::GpuDevice& gpu,
               QpRendezvous& rendezvous, std::string endpoint = "portusd",
               int stripes = 1);

  // Dial the daemon (TCP handshake). Must precede register_model().
  sim::SubTask<> connect();

  // Pin + register every tensor and send the metadata packet. The daemon
  // lays out the checkpoint structure on PMEM before this returns.
  sim::SubTask<> register_model(dnn::Model& model);

  // Register a subset of the model's tensors under binding.reg_name.
  sim::SubTask<> register_shard(dnn::Model& model, ShardBinding binding);

  // Trigger "DO_CHECKPOINT" and wait for the daemon's completion notice.
  // Returns the committed epoch.
  sim::SubTask<std::uint64_t> checkpoint(dnn::Model& model, std::uint64_t iteration = 0);
  sim::SubTask<std::uint64_t> checkpoint_named(std::string reg_name,
                                               std::uint64_t iteration = 0);

  // Incremental variant (Check-N-Run-style extension): only the tensors in
  // `dirty_indices` changed since the previous checkpoint; the daemon pulls
  // those over RDMA and copies the rest from the last valid version within
  // PMEM. Falls back to a full pull when no previous version exists.
  sim::SubTask<std::uint64_t> checkpoint_incremental(
      dnn::Model& model, std::uint64_t iteration,
      std::vector<std::uint32_t> dirty_indices);

  // Trigger "DO_RESTORE": daemon writes the newest valid version into the
  // model's GPU buffers. Returns the restored epoch. `required_epoch` is
  // the replica-epoch floor (0 = newest available, see protocol.h).
  sim::SubTask<std::uint64_t> restore(dnn::Model& model);
  sim::SubTask<std::uint64_t> restore_named(std::string reg_name,
                                            std::uint64_t required_epoch = 0);

  // Tell the daemon this training job is complete (repacker hint).
  sim::SubTask<> finish(dnn::Model& model);

  // Abandon any control-plane roundtrip not answered within `d` of virtual
  // time (0 = wait forever). The watchdog closes the socket, so a timed-out
  // client is disconnected — exactly what a real client does when it gives
  // a dead daemon up. Degraded cluster restores rely on this to detect
  // hung (not just crashed) daemons.
  void set_op_timeout(Duration d) { op_timeout_ = d; }

  void set_retry_policy(RetryPolicy p) {
    retry_ = p;
    jitter_ = Rng{p.jitter_seed};
  }
  void set_tenant(TenantSpec t) { tenant_ = std::move(t); }
  const TenantSpec& tenant() const { return tenant_; }

  // Membership epoch stamped into every request (protocol v6). 0 = not
  // epoch-checked (standalone daemon / legacy ring). A daemon holding a
  // newer epoch answers epoch_mismatch, surfaced here as EpochMismatch —
  // the ClusterClient catches it, refetches placement, and re-routes.
  void set_membership_epoch(std::uint64_t e) { membership_epoch_ = e; }
  std::uint64_t membership_epoch() const { return membership_epoch_; }

  const Stats& stats() const { return stats_; }
  bool connected() const { return socket_ != nullptr && !socket_->closed(); }
  const std::string& endpoint() const { return endpoint_; }

 private:
  // Per-registration datapath: every registered (shard-scoped) name keeps
  // its own CQ and QP stripes alive for the daemon to drive.
  struct Datapath {
    std::unique_ptr<rdma::CompletionQueue> cq;
    std::vector<rdma::QueuePair*> qps;
  };

  sim::SubTask<std::vector<std::byte>> roundtrip(std::vector<std::byte> request);

  // Retry loop around one checkpoint/restore roundtrip: absorbs
  // Backpressure answers and (optionally) op-timeouts per retry_, backing
  // off with jitter between attempts. `req_wire` is re-sent verbatim.
  sim::SubTask<std::vector<std::byte>> retrying_roundtrip(std::vector<std::byte> req_wire);
  sim::SubTask<> backoff(int attempt, std::uint64_t retry_after_ns);

  net::Cluster& cluster_;
  net::Node& node_;
  gpu::GpuDevice& gpu_;
  QpRendezvous& rendezvous_;
  std::string endpoint_;
  int stripes_;
  Duration op_timeout_{0};
  std::shared_ptr<net::TcpSocket> socket_;
  rdma::ProtectionDomain* pd_ = nullptr;
  std::map<std::string, Datapath> datapaths_;  // by registration name
  // Heap-held so the roundtrip scope guard stays valid even if the client
  // is destroyed while the coroutine is suspended (crash-mid-op tests).
  std::shared_ptr<bool> op_in_flight_ = std::make_shared<bool>(false);
  RetryPolicy retry_;
  TenantSpec tenant_;
  std::uint64_t membership_epoch_ = 0;
  Rng jitter_{0x9E3779B97F4A7C15ull};
  Stats stats_;
};

}  // namespace portus::core
