#include "core/client.h"

#include "common/logging.h"

namespace portus::core {

PortusClient::PortusClient(net::Cluster& cluster, net::Node& client_node, gpu::GpuDevice& gpu,
                           QpRendezvous& rendezvous, std::string endpoint, int stripes)
    : cluster_{cluster},
      node_{client_node},
      gpu_{gpu},
      rendezvous_{rendezvous},
      endpoint_{std::move(endpoint)},
      stripes_{stripes} {
  PORTUS_CHECK_ARG(stripes >= 1 && stripes <= 256, "client stripes must be in [1, 256]");
  pd_ = &client_node.nic().alloc_pd("portus-client-pd");
}

sim::SubTask<> PortusClient::connect() {
  PORTUS_CHECK(socket_ == nullptr, "client already connected");
  socket_ = co_await cluster_.endpoint(endpoint_).connect();
}

sim::SubTask<std::vector<std::byte>> PortusClient::roundtrip(std::vector<std::byte> request) {
  PORTUS_CHECK(socket_ != nullptr, "client not connected");
  PORTUS_CHECK(!op_in_flight_, "one control-plane operation at a time per client");
  // Scope guard, not a plain reset at the end: recv() throws when the
  // daemon side goes away, and a wedged op_in_flight_ would reject every
  // later operation on this client.
  op_in_flight_ = true;
  const auto clear_flag = [](bool* flag) { *flag = false; };
  const std::unique_ptr<bool, decltype(clear_flag)> guard{&op_in_flight_, clear_flag};
  socket_->send(std::move(request));
  auto reply = co_await socket_->recv();
  co_return reply;
}

sim::SubTask<> PortusClient::register_model(dnn::Model& model) {
  const Time t0 = cluster_.engine().now();

  RegisterModelMsg msg;
  msg.model_name = model.name();
  msg.phantom = model.phantom();

  // Pin every tensor through PeerMem and register it with the RNIC. The
  // remote side needs READ (checkpoint pull) and WRITE (restore push).
  for (auto& tensor : model.tensors()) {
    const auto peer = co_await gpu::PeerMem::register_buffer(gpu_, tensor.buffer());
    const auto& mr = pd_->register_region(node_.gpu_region(peer));
    msg.tensors.push_back(TensorDesc{
        .name = tensor.name(),
        .dtype = tensor.meta().dtype,
        .shape = tensor.meta().shape,
        .size = tensor.byte_size(),
        .gpu_addr = peer.global_addr,
        .rkey = mr.rkey,
    });
  }

  // One CQ serves every stripe: the daemon drives all lanes wr_id-keyed,
  // and the client side is passive (one-sided verbs target its memory).
  cq_ = std::make_unique<rdma::CompletionQueue>(cluster_.engine());
  qps_.clear();
  for (int s = 0; s < stripes_; ++s) {
    auto& qp = cluster_.fabric().create_qp(node_.nic(), *pd_, *cq_);
    qps_.push_back(&qp);
    msg.qp_tokens.push_back(rendezvous_.publish(qp));
  }

  auto wire = encode(msg);
  const auto reply = co_await roundtrip(std::move(wire));
  const auto ack = decode_register_ack(reply);
  PORTUS_CHECK(ack.ok, "registration rejected: " + ack.error);
  stats_.negotiated_stripes = ack.stripes;
  stats_.registration_time = cluster_.engine().now() - t0;
  PLOG_DEBUG("portus-client", "registered {} ({} tensors, {})", model.name(),
             model.layer_count(), format_bytes(model.total_bytes()));
}

sim::SubTask<std::uint64_t> PortusClient::checkpoint(dnn::Model& model,
                                                     std::uint64_t iteration) {
  co_return co_await checkpoint_incremental(model, iteration, {});
}

sim::SubTask<std::uint64_t> PortusClient::checkpoint_incremental(
    dnn::Model& model, std::uint64_t iteration, std::vector<std::uint32_t> dirty_indices) {
  const Time t0 = cluster_.engine().now();
  // NOTE: temporaries are materialized into locals before co_await — GCC 12
  // miscompiles non-trivial temporaries inside co_await full-expressions
  // (double destruction after resumption).
  CheckpointReqMsg req{.model_name = model.name(),
                       .iteration = iteration,
                       .dirty_indices = std::move(dirty_indices)};
  auto wire = encode(req);
  const auto reply = co_await roundtrip(std::move(wire));
  const auto done = decode_checkpoint_done(reply);
  PORTUS_CHECK(done.ok, "checkpoint failed: " + done.error);
  ++stats_.checkpoints;
  stats_.last_checkpoint = cluster_.engine().now() - t0;
  co_return done.epoch;
}

sim::SubTask<std::uint64_t> PortusClient::restore(dnn::Model& model) {
  const Time t0 = cluster_.engine().now();
  RestoreReqMsg req{.model_name = model.name()};
  auto wire = encode(req);
  const auto reply = co_await roundtrip(std::move(wire));
  const auto done = decode_restore_done(reply);
  PORTUS_CHECK(done.ok, "restore failed: " + done.error);
  ++stats_.restores;
  stats_.last_restore = cluster_.engine().now() - t0;
  co_return done.epoch;
}

sim::SubTask<> PortusClient::finish(dnn::Model& model) {
  FinishJobMsg req{.model_name = model.name()};
  auto wire = encode(req);
  const auto reply = co_await roundtrip(std::move(wire));
  PORTUS_CHECK(decode_type(reply) == MsgType::kFinishAck, "unexpected finish reply");
}

}  // namespace portus::core
