#include "core/client.h"

#include <algorithm>
#include <numeric>

#include "common/backoff.h"
#include "common/logging.h"
#include "common/strformat.h"

namespace portus::core {

PortusClient::PortusClient(net::Cluster& cluster, net::Node& client_node, gpu::GpuDevice& gpu,
                           QpRendezvous& rendezvous, std::string endpoint, int stripes)
    : cluster_{cluster},
      node_{client_node},
      gpu_{gpu},
      rendezvous_{rendezvous},
      endpoint_{std::move(endpoint)},
      stripes_{stripes} {
  PORTUS_CHECK_ARG(stripes >= 1 && stripes <= 256, "client stripes must be in [1, 256]");
  pd_ = &client_node.nic().alloc_pd("portus-client-pd/" + endpoint_);
}

sim::SubTask<> PortusClient::connect() {
  PORTUS_CHECK(socket_ == nullptr, "client already connected");
  socket_ = co_await cluster_.endpoint(endpoint_).connect();
}

sim::SubTask<std::vector<std::byte>> PortusClient::roundtrip(std::vector<std::byte> request) {
  PORTUS_CHECK(socket_ != nullptr, "client not connected");
  PORTUS_CHECK(!*op_in_flight_, "one control-plane operation at a time per client");
  // Scope guard, not a plain reset at the end: recv() throws when the
  // daemon side goes away, and a wedged op_in_flight_ would reject every
  // later operation on this client. The guard shares ownership of the flag
  // so it stays valid even if the client is destroyed mid-op and the
  // suspended frame is torn down later by engine shutdown.
  *op_in_flight_ = true;
  struct BusyGuard {
    std::shared_ptr<bool> flag;
    ~BusyGuard() { *flag = false; }
  };
  const BusyGuard guard{op_in_flight_};
  socket_->send(std::move(request));

  if (op_timeout_ <= Duration{0}) {
    auto reply = co_await socket_->recv();
    co_return reply;
  }

  // Watchdog: if the daemon has not answered within op_timeout_, close our
  // own socket — the pending recv() then fails with Disconnected. The timer
  // outlives the op (it holds the socket by shared_ptr), so a late fire on
  // a completed op is a no-op.
  struct Watch {
    bool done = false;
    bool fired = false;
  };
  auto watch = std::make_shared<Watch>();
  auto sock = socket_;
  cluster_.engine().schedule(op_timeout_, [sock, watch] {
    if (!watch->done) {
      watch->fired = true;
      sock->close();
    }
  });
  try {
    auto reply = co_await socket_->recv();
    watch->done = true;
    co_return reply;
  } catch (const Disconnected&) {
    watch->done = true;
    if (watch->fired) {
      ++stats_.timeouts;
      throw Disconnected(
          strf("operation to {} timed out after {}", endpoint_, format_duration(op_timeout_)));
    }
    throw;
  }
}

sim::SubTask<> PortusClient::backoff(int attempt, std::uint64_t retry_after_ns) {
  // Jitter spreads a fleet of clients bounced by the same full queue so
  // they do not re-arrive in lockstep; the daemon's retry_after hint is a
  // floor, never a cap.
  const BackoffPolicy policy{.base = retry_.base_backoff, .max = retry_.max_backoff};
  const Duration wait = jittered_backoff(policy, attempt, jitter_, retry_after_ns);
  co_await cluster_.engine().sleep(wait);
}

sim::SubTask<std::vector<std::byte>> PortusClient::retrying_roundtrip(
    std::vector<std::byte> req_wire) {
  for (int attempt = 0;; ++attempt) {
    auto wire = req_wire;  // keep the original; re-sends ship it verbatim
    std::vector<std::byte> reply;
    bool got_reply = false;
    try {
      reply = co_await roundtrip(std::move(wire));
      got_reply = true;
    } catch (const Disconnected&) {
      if (!retry_.retry_timeouts || attempt >= retry_.max_retries) throw;
    }

    if (got_reply) {
      bool backpressured = false;
      std::uint64_t hint_ns = 0;
      const auto type = decode_type(reply);
      if (type == MsgType::kCheckpointDone) {
        const auto done = decode_checkpoint_done(reply);
        backpressured = done.backpressure;
        hint_ns = done.retry_after_ns;
      } else if (type == MsgType::kRestoreDone) {
        const auto done = decode_restore_done(reply);
        backpressured = done.backpressure;
        hint_ns = done.retry_after_ns;
      }
      // Out of retries: hand the Backpressure answer to the caller, whose
      // ok-check turns it into a hard failure.
      if (!backpressured || attempt >= retry_.max_retries) co_return reply;
      ++stats_.backpressure;
      ++stats_.retries;
      co_await backoff(attempt, hint_ns);
      continue;
    }

    // Timed out: the watchdog closed our socket; the daemon-side session
    // survives a reconnect, so a re-sent request needs no re-registration.
    ++stats_.retries;
    co_await backoff(attempt, 0);
    auto socket = co_await cluster_.endpoint(endpoint_).connect();
    socket_ = std::move(socket);
    ++stats_.reconnects;
  }
}

sim::SubTask<> PortusClient::register_model(dnn::Model& model) {
  ShardBinding all;
  all.reg_name = model.name();
  all.tensor_indices.resize(model.tensors().size());
  std::iota(all.tensor_indices.begin(), all.tensor_indices.end(), 0u);
  co_await register_shard(model, std::move(all));
}

sim::SubTask<> PortusClient::register_shard(dnn::Model& model, ShardBinding binding) {
  const Time t0 = cluster_.engine().now();
  PORTUS_CHECK_ARG(!binding.tensor_indices.empty(), "shard binding has no tensors");

  RegisterModelMsg msg;
  msg.model_name = binding.reg_name;
  msg.phantom = model.phantom();
  // Offer the gather capability of this NIC; the daemon answers with the
  // min against its own config, and a single-SGE daemon answers 1.
  msg.max_sges = static_cast<std::uint32_t>(node_.nic().spec().max_sges);
  msg.shard_id = binding.shard_id;
  msg.shard_count = binding.shard_count;
  msg.replica = binding.replica;
  msg.replica_count = binding.replica_count;
  msg.placement_epoch = binding.placement_epoch;
  msg.manifest = std::move(binding.manifest);
  msg.tenant_id = tenant_.id;
  msg.priority = tenant_.priority;
  msg.requested_capacity = tenant_.requested_capacity;
  msg.requested_rate = tenant_.requested_rate;
  msg.membership_epoch = membership_epoch_;

  // Pin the bound tensors through PeerMem and register them with the RNIC.
  // The remote side needs READ (checkpoint pull) and WRITE (restore push).
  auto& tensors = model.tensors();
  for (const auto i : binding.tensor_indices) {
    PORTUS_CHECK_ARG(i < tensors.size(),
                     strf("shard binding tensor index {} out of range", i));
    auto& tensor = tensors[i];
    const auto peer = co_await gpu::PeerMem::register_buffer(gpu_, tensor.buffer());
    const auto& mr = pd_->register_region(node_.gpu_region(peer));
    msg.tensors.push_back(TensorDesc{
        .name = tensor.name(),
        .dtype = tensor.meta().dtype,
        .shape = tensor.meta().shape,
        .size = tensor.byte_size(),
        .gpu_addr = peer.global_addr,
        .rkey = mr.rkey,
    });
  }

  // One CQ serves every stripe of this registration: the daemon drives all
  // lanes wr_id-keyed, and the client side is passive (one-sided verbs
  // target its memory). Each registration keeps its own datapath — a daemon
  // may host several shard copies through one client, and tearing down an
  // older registration's CQ while its QPs live would dangle.
  Datapath dp;
  dp.cq = std::make_unique<rdma::CompletionQueue>(cluster_.engine());
  for (int s = 0; s < stripes_; ++s) {
    auto& qp = cluster_.fabric().create_qp(node_.nic(), *pd_, *dp.cq);
    dp.qps.push_back(&qp);
    msg.qp_tokens.push_back(rendezvous_.publish(qp));
  }
  const std::string reg_name = msg.model_name;
  const std::size_t tensor_count = msg.tensors.size();
  datapaths_[reg_name] = std::move(dp);

  auto wire = encode(msg);
  const auto reply = co_await roundtrip(std::move(wire));
  const auto ack = decode_register_ack(reply);
  if (ack.epoch_mismatch) {
    throw EpochMismatch(strf("registration of {} rejected: stale membership epoch {} "
                             "(daemon at {})",
                             reg_name, membership_epoch_, ack.current_membership_epoch));
  }
  PORTUS_CHECK(ack.ok, "registration rejected: " + ack.error);
  stats_.negotiated_stripes = ack.stripes;
  stats_.negotiated_max_sges = ack.max_sges;
  stats_.granted_capacity = ack.granted_capacity;
  stats_.granted_rate = ack.granted_rate;
  stats_.granted_wr_slots = ack.granted_wr_slots;
  stats_.registration_time = cluster_.engine().now() - t0;
  PLOG_DEBUG("portus-client", "registered {} ({} tensors) at {}", reg_name, tensor_count,
             endpoint_);
}

sim::SubTask<std::uint64_t> PortusClient::checkpoint(dnn::Model& model,
                                                     std::uint64_t iteration) {
  co_return co_await checkpoint_incremental(model, iteration, {});
}

sim::SubTask<std::uint64_t> PortusClient::checkpoint_named(std::string reg_name,
                                                           std::uint64_t iteration) {
  const Time t0 = cluster_.engine().now();
  // NOTE: temporaries are materialized into locals before co_await — GCC 12
  // miscompiles non-trivial temporaries inside co_await full-expressions
  // (double destruction after resumption).
  CheckpointReqMsg req{.model_name = std::move(reg_name),
                       .iteration = iteration,
                       .dirty_indices = {},
                       .membership_epoch = membership_epoch_};
  auto wire = encode(req);
  const auto reply = co_await retrying_roundtrip(std::move(wire));
  const auto done = decode_checkpoint_done(reply);
  if (done.epoch_mismatch) {
    throw EpochMismatch(strf("checkpoint of {} rejected: stale membership epoch {} "
                             "(daemon at {})",
                             done.model_name, membership_epoch_, done.current_epoch));
  }
  PORTUS_CHECK(done.ok, "checkpoint failed: " + done.error);
  ++stats_.checkpoints;
  stats_.last_checkpoint = cluster_.engine().now() - t0;
  stats_.last_payload_crc = done.payload_crc;
  co_return done.epoch;
}

sim::SubTask<std::uint64_t> PortusClient::checkpoint_incremental(
    dnn::Model& model, std::uint64_t iteration, std::vector<std::uint32_t> dirty_indices) {
  const Time t0 = cluster_.engine().now();
  CheckpointReqMsg req{.model_name = model.name(),
                       .iteration = iteration,
                       .dirty_indices = std::move(dirty_indices),
                       .membership_epoch = membership_epoch_};
  auto wire = encode(req);
  const auto reply = co_await retrying_roundtrip(std::move(wire));
  const auto done = decode_checkpoint_done(reply);
  if (done.epoch_mismatch) {
    throw EpochMismatch(strf("checkpoint of {} rejected: stale membership epoch {} "
                             "(daemon at {})",
                             done.model_name, membership_epoch_, done.current_epoch));
  }
  PORTUS_CHECK(done.ok, "checkpoint failed: " + done.error);
  ++stats_.checkpoints;
  stats_.last_checkpoint = cluster_.engine().now() - t0;
  stats_.last_payload_crc = done.payload_crc;
  co_return done.epoch;
}

sim::SubTask<std::uint64_t> PortusClient::restore(dnn::Model& model) {
  co_return co_await restore_named(model.name());
}

sim::SubTask<std::uint64_t> PortusClient::restore_named(std::string reg_name,
                                                        std::uint64_t required_epoch) {
  const Time t0 = cluster_.engine().now();
  RestoreReqMsg req{.model_name = std::move(reg_name),
                    .required_epoch = required_epoch,
                    .membership_epoch = membership_epoch_};
  auto wire = encode(req);
  const auto reply = co_await retrying_roundtrip(std::move(wire));
  const auto done = decode_restore_done(reply);
  if (done.epoch_mismatch) {
    throw EpochMismatch(strf("restore of {} rejected: stale membership epoch {} "
                             "(daemon at {})",
                             done.model_name, membership_epoch_, done.current_epoch));
  }
  PORTUS_CHECK(done.ok, "restore failed: " + done.error);
  ++stats_.restores;
  stats_.last_restore = cluster_.engine().now() - t0;
  stats_.last_payload_crc = done.payload_crc;
  co_return done.epoch;
}

sim::SubTask<> PortusClient::finish(dnn::Model& model) {
  FinishJobMsg req{.model_name = model.name()};
  auto wire = encode(req);
  const auto reply = co_await roundtrip(std::move(wire));
  PORTUS_CHECK(decode_type(reply) == MsgType::kFinishAck, "unexpected finish reply");
}

}  // namespace portus::core
