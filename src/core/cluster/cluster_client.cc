#include "core/cluster/cluster_client.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/strformat.h"

namespace portus::core::cluster {

namespace {
constexpr const char* kLog = "cluster-client";
}

ClusterClient::ClusterClient(net::Cluster& cluster, net::Node& client_node,
                             gpu::GpuDevice& gpu, QpRendezvous& rendezvous, Config config)
    : cluster_{cluster},
      node_{client_node},
      gpu_{gpu},
      rendezvous_{rendezvous},
      config_{std::move(config)} {
  PORTUS_CHECK_ARG(!config_.endpoints.empty(), "cluster client needs at least one daemon");
  PORTUS_CHECK_ARG(config_.replicas >= 1, "replication factor must be >= 1");
  lanes_.reserve(config_.endpoints.size());
  for (const auto& ep : config_.endpoints) {
    Lane lane;
    lane.endpoint = ep;
    lane.client = std::make_unique<PortusClient>(cluster_, node_, gpu_, rendezvous_, ep,
                                                 config_.stripes);
    lane.client->set_op_timeout(config_.op_timeout);
    lane.client->set_tenant(config_.tenant);
    lane.client->set_retry_policy(config_.retry);
    lanes_.push_back(std::move(lane));
  }
}

void ClusterClient::mark_lane_down(Lane& lane) {
  if (!lane.up) return;
  lane.up = false;
  ++stats_.lane_failures;
  PLOG_INFO(kLog, "lane {} marked down", lane.endpoint);
}

sim::Process ClusterClient::lane_register(Lane& lane, dnn::Model& model) {
  try {
    if (!lane.client->connected()) co_await lane.client->connect();
    for (const auto id : lane.copy_ids) {
      auto& copy = copies_[id];
      PortusClient::ShardBinding binding;
      binding.reg_name = shard_key(model_name_, copy.shard);
      binding.tensor_indices = plan_.shard_tensors[copy.shard];
      binding.shard_id = copy.shard;
      binding.shard_count = static_cast<std::uint32_t>(plan_.shard_tensors.size());
      binding.replica = copy.replica;
      binding.replica_count =
          static_cast<std::uint32_t>(plan_.shard_daemons[copy.shard].size());
      binding.placement_epoch = plan_.placement_epoch;
      binding.manifest = manifest_.encode();
      co_await lane.client->register_shard(model, std::move(binding));
      copy.registered = true;
    }
  } catch (const std::exception& e) {
    PLOG_INFO(kLog, "registration on {} failed: {}", lane.endpoint, e.what());
    mark_lane_down(lane);
  }
}

sim::SubTask<> ClusterClient::register_model(dnn::Model& model) {
  PORTUS_CHECK(!registered_, "cluster client already holds a registered model");
  model_name_ = model.name();

  auto& tensors = model.tensors();
  std::vector<Bytes> sizes;
  std::vector<std::string> names;
  sizes.reserve(tensors.size());
  names.reserve(tensors.size());
  for (auto& t : tensors) {
    sizes.push_back(t.byte_size());
    names.push_back(t.name());
  }

  plan_ = Placement::compute(model_name_, sizes,
                             static_cast<std::uint32_t>(lanes_.size()), config_.replicas,
                             config_.placement_epoch);
  manifest_ = ShardManifest::from_plan(plan_, config_.endpoints, names, sizes);

  // Materialize the copy table: one entry per (shard, replica) placement,
  // indexed into each lane's serial work list. Empty shards (fewer tensors
  // than daemons) place nothing.
  copies_.clear();
  for (auto& lane : lanes_) lane.copy_ids.clear();
  for (std::uint32_t s = 0; s < plan_.shard_daemons.size(); ++s) {
    if (plan_.shard_tensors[s].empty()) continue;
    const auto& ring = plan_.shard_daemons[s];
    for (std::uint32_t r = 0; r < ring.size(); ++r) {
      Copy copy{.shard = s, .replica = r, .daemon = ring[r]};
      lanes_[copy.daemon].copy_ids.push_back(copies_.size());
      copies_.push_back(copy);
    }
  }

  std::vector<sim::Process> procs;
  procs.reserve(lanes_.size());
  for (auto& lane : lanes_) {
    if (lane.copy_ids.empty()) continue;
    auto p = lane_register(lane, model);
    procs.push_back(cluster_.engine().spawn(std::move(p)));
  }
  for (auto& p : procs) co_await p.join();  // lane errors are absorbed in-lane

  // Tolerate dead lanes only while every shard keeps >= 1 registered copy.
  for (std::uint32_t s = 0; s < plan_.shard_tensors.size(); ++s) {
    if (plan_.shard_tensors[s].empty()) continue;
    const bool covered = std::any_of(copies_.begin(), copies_.end(), [&](const Copy& c) {
      return c.shard == s && c.registered && lanes_[c.daemon].up;
    });
    if (!covered) {
      throw ResourceExhausted(
          strf("shard {} of {} has no live daemon; cannot register", s, model_name_));
    }
  }
  registered_ = true;
  PLOG_DEBUG(kLog, "registered {} across {} daemons ({} copies, R={})", model_name_,
             lanes_.size(), copies_.size(), config_.replicas);
}

sim::Process ClusterClient::lane_checkpoint(Lane& lane, std::uint64_t iteration,
                                            std::uint64_t* round_max,
                                            std::vector<bool>* shard_ok, bool* any_miss) {
  for (const auto id : lane.copy_ids) {
    auto& copy = copies_[id];
    if (!copy.registered || !lane.up) {
      *any_miss = true;
      continue;
    }
    try {
      const std::string key = shard_key(model_name_, copy.shard);
      const auto epoch = co_await lane.client->checkpoint_named(key, iteration);
      copy.epoch = epoch;
      (*shard_ok)[copy.shard] = true;
      *round_max = std::max(*round_max, epoch);
    } catch (const Disconnected& e) {
      PLOG_INFO(kLog, "checkpoint of shard {} on {} lost: {}", copy.shard, lane.endpoint,
                e.what());
      mark_lane_down(lane);
      *any_miss = true;
    } catch (const std::exception& e) {
      PLOG_INFO(kLog, "checkpoint of shard {} on {} failed: {}", copy.shard, lane.endpoint,
                e.what());
      *any_miss = true;
    }
  }
}

sim::SubTask<ClusterClient::CheckpointResult> ClusterClient::checkpoint(
    std::uint64_t iteration) {
  PORTUS_CHECK(registered_, "register_model before checkpoint");
  std::vector<bool> shard_ok(plan_.shard_tensors.size(), false);
  bool any_miss = false;
  std::uint64_t round_max = 0;

  std::vector<sim::Process> procs;
  procs.reserve(lanes_.size());
  for (auto& lane : lanes_) {
    if (lane.copy_ids.empty()) continue;
    auto p = lane_checkpoint(lane, iteration, &round_max, &shard_ok, &any_miss);
    procs.push_back(cluster_.engine().spawn(std::move(p)));
  }
  for (auto& p : procs) co_await p.join();

  for (std::uint32_t s = 0; s < plan_.shard_tensors.size(); ++s) {
    if (plan_.shard_tensors[s].empty()) continue;
    if (!shard_ok[s]) {
      throw ResourceExhausted(
          strf("checkpoint iteration {} lost shard {} of {}: no copy committed", iteration,
               s, model_name_));
    }
  }

  ++stats_.checkpoints;
  stats_.last_epoch = std::max(stats_.last_epoch, round_max);
  if (any_miss) ++stats_.degraded_checkpoints;
  co_return CheckpointResult{.epoch = round_max, .degraded = any_miss};
}

sim::Process ClusterClient::lane_restore(Lane& lane, std::vector<RestoreJob*> jobs,
                                         std::uint64_t* max_epoch) {
  for (auto* job : jobs) {
    if (!lane.up) break;  // lane died earlier in this wave
    auto& copy = copies_[job->copy_id];
    try {
      const std::string key = shard_key(model_name_, copy.shard);
      const auto epoch = co_await lane.client->restore_named(key, job->required_epoch);
      job->done = true;
      copy.epoch = std::max(copy.epoch, epoch);
      *max_epoch = std::max(*max_epoch, epoch);
    } catch (const Disconnected& e) {
      PLOG_INFO(kLog, "restore of shard {} from {} lost: {}", copy.shard, lane.endpoint,
                e.what());
      mark_lane_down(lane);
    } catch (const std::exception& e) {
      // Stale epoch (daemon refused the floor) or missing record: this copy
      // is unusable, the wave loop moves to the next one.
      PLOG_INFO(kLog, "restore of shard {} from {} refused: {}", copy.shard, lane.endpoint,
                e.what());
    }
  }
}

sim::SubTask<ClusterClient::RestoreResult> ClusterClient::restore() {
  PORTUS_CHECK(registered_, "register_model before restore");
  const auto shard_count = plan_.shard_tensors.size();

  // Replica-epoch floor: a copy that missed later checkpoints (its daemon
  // was down or hung for them) holds stale data, and its daemon refuses to
  // serve below this floor — the shard then re-routes to a fresh copy.
  std::vector<std::uint64_t> target(shard_count, 0);
  for (const auto& c : copies_) {
    target[c.shard] = std::max(target[c.shard], c.epoch);
  }

  std::vector<bool> done(shard_count, false);
  std::vector<bool> tried(copies_.size(), false);
  bool degraded = false;
  std::uint32_t rerouted = 0;
  std::uint64_t max_epoch = 0;

  while (true) {
    // Assign every unrestored shard its next untried live copy, in manifest
    // (primary-first) order.
    std::vector<RestoreJob> jobs;
    std::vector<std::uint32_t> job_shard;
    for (std::uint32_t s = 0; s < shard_count; ++s) {
      if (done[s] || plan_.shard_tensors[s].empty()) continue;
      std::optional<std::size_t> pick;
      for (std::size_t id = 0; id < copies_.size(); ++id) {
        const auto& c = copies_[id];
        if (c.shard != s || tried[id] || !c.registered || !lanes_[c.daemon].up) continue;
        if (!pick.has_value() || c.replica < copies_[*pick].replica) pick = id;
      }
      if (!pick.has_value()) {
        throw NotFound(strf("no live copy of shard {} of {} at epoch >= {}", s, model_name_,
                            target[s]));
      }
      tried[*pick] = true;
      jobs.push_back(RestoreJob{.copy_id = *pick,
                                .required_epoch = target[s],
                                .done = false,
                                .rerouted = copies_[*pick].replica != 0});
      job_shard.push_back(s);
    }
    if (jobs.empty()) break;

    // Group this wave's jobs by lane; lanes run in parallel.
    std::map<std::uint32_t, std::vector<RestoreJob*>> by_lane;
    for (auto& job : jobs) by_lane[copies_[job.copy_id].daemon].push_back(&job);
    std::vector<sim::Process> procs;
    procs.reserve(by_lane.size());
    for (auto& [lane_idx, lane_jobs] : by_lane) {
      auto p = lane_restore(lanes_[lane_idx], lane_jobs, &max_epoch);
      procs.push_back(cluster_.engine().spawn(std::move(p)));
    }
    for (auto& p : procs) co_await p.join();

    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (!jobs[j].done) {
        degraded = true;  // this shard needed (at least) another wave
        continue;
      }
      done[job_shard[j]] = true;
      if (jobs[j].rerouted) {
        degraded = true;
        ++rerouted;
      }
    }
  }

  ++stats_.restores;
  if (degraded) ++stats_.degraded_restores;
  stats_.rerouted_shards += rerouted;
  stats_.last_epoch = std::max(stats_.last_epoch, max_epoch);
  co_return RestoreResult{.epoch = max_epoch, .degraded = degraded,
                          .rerouted_shards = rerouted};
}

}  // namespace portus::core::cluster
