#include "core/cluster/cluster_client.h"

#include <algorithm>

#include "common/backoff.h"
#include "common/logging.h"
#include "common/strformat.h"

namespace portus::core::cluster {

namespace {
constexpr const char* kLog = "cluster-client";
}

ClusterClient::ClusterClient(net::Cluster& cluster, net::Node& client_node,
                             gpu::GpuDevice& gpu, QpRendezvous& rendezvous, Config config)
    : cluster_{cluster},
      node_{client_node},
      gpu_{gpu},
      rendezvous_{rendezvous},
      config_{std::move(config)} {
  PORTUS_CHECK_ARG(!config_.endpoints.empty() || config_.membership != nullptr,
                   "cluster client needs daemon endpoints or a membership source");
  PORTUS_CHECK_ARG(config_.replicas >= 1, "replication factor must be >= 1");
  for (const auto& ep : config_.endpoints) lane_for(ep);
}

std::string ClusterClient::copy_key(const std::string& endpoint,
                                    std::uint32_t shard) const {
  return strf("{}|{}", endpoint, shard);
}

ClusterClient::Lane& ClusterClient::lane_for(const std::string& endpoint) {
  if (const auto it = lane_by_endpoint_.find(endpoint); it != lane_by_endpoint_.end()) {
    return *lanes_[it->second];
  }
  auto lane = std::make_unique<Lane>();
  lane->endpoint = endpoint;
  lane->client = std::make_unique<PortusClient>(cluster_, node_, gpu_, rendezvous_,
                                                endpoint, config_.stripes);
  lane->client->set_op_timeout(config_.op_timeout);
  lane->client->set_tenant(config_.tenant);
  lane->client->set_retry_policy(config_.retry);
  lane_by_endpoint_.emplace(endpoint, lanes_.size());
  lanes_.push_back(std::move(lane));
  return *lanes_.back();
}

void ClusterClient::mark_lane_down(Lane& lane) {
  if (!lane.up) return;
  lane.up = false;
  ++stats_.lane_failures;
  // A down lane's registrations are void: if it ever comes back it gets a
  // fresh client (new datapath QPs), so everything must re-register.
  const std::string prefix = lane.endpoint + "|";
  for (auto it = registered_keys_.begin(); it != registered_keys_.end();) {
    if (it->rfind(prefix, 0) == 0) {
      it = registered_keys_.erase(it);
    } else {
      ++it;
    }
  }
  PLOG_INFO(kLog, "lane {} marked down", lane.endpoint);
}

sim::SubTask<> ClusterClient::epoch_backoff(int attempt) {
  const BackoffPolicy policy{.base = config_.retry.base_backoff,
                             .max = config_.retry.max_backoff};
  const Duration wait = jittered_backoff(policy, attempt, jitter_);
  co_await cluster_.engine().sleep(wait);
}

sim::Process ClusterClient::lane_register(Lane& lane, bool* stale) {
  try {
    if (!lane.client->connected()) co_await lane.client->connect();
    for (const auto id : lane.copy_ids) {
      auto& copy = copies_[id];
      if (copy.registered) continue;
      PortusClient::ShardBinding binding;
      binding.reg_name = shard_key(model_name_, copy.shard);
      binding.tensor_indices = plan_.shard_tensors[copy.shard];
      binding.shard_id = copy.shard;
      binding.shard_count = static_cast<std::uint32_t>(plan_.shard_tensors.size());
      binding.replica = copy.replica;
      binding.replica_count =
          static_cast<std::uint32_t>(plan_.shard_daemons[copy.shard].size());
      binding.placement_epoch = plan_.placement_epoch;
      binding.manifest = manifest_.encode();
      co_await lane.client->register_shard(*model_, std::move(binding));
      copy.registered = true;
      registered_keys_.insert(copy_key(lane.endpoint, copy.shard));
    }
  } catch (const EpochMismatch& e) {
    PLOG_INFO(kLog, "registration on {} raced a resize: {}", lane.endpoint, e.what());
    *stale = true;
  } catch (const std::exception& e) {
    PLOG_INFO(kLog, "registration on {} failed: {}", lane.endpoint, e.what());
    mark_lane_down(lane);
  }
}

sim::SubTask<> ClusterClient::resolve_placement() {
  for (int attempt = 0;; ++attempt) {
    // 1. Snapshot the authoritative membership (or fake an all-ACTIVE one
    //    from the static endpoint list).
    std::vector<MemberState> states;
    std::vector<std::uint32_t> active;
    if (config_.membership != nullptr) {
      const Membership& mem = config_.membership->membership();
      membership_epoch_ = mem.epoch;
      ring_endpoints_.clear();
      states.clear();
      for (const auto& m : mem.members) {
        ring_endpoints_.push_back(m.endpoint);
        states.push_back(m.state);
      }
      active = mem.active_positions();
    } else {
      ring_endpoints_ = config_.endpoints;
      states.assign(ring_endpoints_.size(), MemberState::kActive);
      active.resize(ring_endpoints_.size());
      for (std::uint32_t i = 0; i < active.size(); ++i) active[i] = i;
    }
    PORTUS_CHECK(!active.empty(),
                 strf("cluster for {} has no ACTIVE member to place on", model_name_));
    if (effective_shard_count_ == 0) {
      effective_shard_count_ = config_.shard_count != 0
                                   ? config_.shard_count
                                   : static_cast<std::uint32_t>(active.size());
    }

    // 2. Carry the acked-epoch floor per shard across the rebuild: a new
    //    placement must never let a restore land below what we were acked.
    std::vector<std::uint64_t> floor(effective_shard_count_, 0);
    if (shard_floor_.size() == floor.size()) floor = shard_floor_;
    for (const auto& c : copies_) floor[c.shard] = std::max(floor[c.shard], c.epoch);
    shard_floor_ = std::move(floor);

    // 3. Recompute plan + manifest against the current members.
    plan_ = Placement::compute_over(model_name_, tensor_sizes_, effective_shard_count_,
                                    static_cast<std::uint32_t>(ring_endpoints_.size()),
                                    active, config_.replicas, config_.placement_epoch);
    manifest_ = ShardManifest::from_plan(plan_, ring_endpoints_, tensor_names_,
                                         tensor_sizes_);
    manifest_.membership_epoch = membership_epoch_;
    manifest_.member_states = states;

    // 4. Rebuild the copy table, opening/reviving lanes as the placement
    //    needs them. Plans only target ACTIVE positions, so a down lane
    //    placed on here is a daemon that came back (or just joined): it has
    //    no memory of the old session, so it gets a fresh client.
    copies_.clear();
    for (auto& lane : lanes_) lane->copy_ids.clear();
    for (std::uint32_t s = 0; s < plan_.shard_daemons.size(); ++s) {
      if (plan_.shard_tensors[s].empty()) continue;
      const auto& ring = plan_.shard_daemons[s];
      for (std::uint32_t r = 0; r < ring.size(); ++r) {
        const auto pos = ring[r];
        Lane& lane = lane_for(ring_endpoints_[pos]);
        if (!lane.up) {
          lane.client = std::make_unique<PortusClient>(cluster_, node_, gpu_, rendezvous_,
                                                       lane.endpoint, config_.stripes);
          lane.client->set_op_timeout(config_.op_timeout);
          lane.client->set_tenant(config_.tenant);
          lane.client->set_retry_policy(config_.retry);
          lane.up = true;
          ++stats_.lane_revivals;
          PLOG_INFO(kLog, "lane {} revived by re-resolve", lane.endpoint);
        }
        Copy copy{.shard = s,
                  .replica = r,
                  .member = pos,
                  .lane = lane_by_endpoint_.at(lane.endpoint)};
        copy.registered = registered_keys_.count(copy_key(lane.endpoint, s)) != 0;
        lanes_[copy.lane]->copy_ids.push_back(copies_.size());
        copies_.push_back(copy);
      }
    }
    for (auto& lane : lanes_) lane->client->set_membership_epoch(membership_epoch_);

    // 5. Register whatever the new placement put somewhere new.
    bool stale = false;
    std::vector<sim::Process> procs;
    procs.reserve(lanes_.size());
    for (auto& lane : lanes_) {
      const bool needs =
          std::any_of(lane->copy_ids.begin(), lane->copy_ids.end(),
                      [&](std::size_t id) { return !copies_[id].registered; });
      if (!needs) continue;
      auto p = lane_register(*lane, &stale);
      procs.push_back(cluster_.engine().spawn(std::move(p)));
    }
    for (auto& p : procs) co_await p.join();  // lane errors are absorbed in-lane

    if (stale) {
      // The membership moved again while we were registering against it.
      PORTUS_CHECK(attempt < config_.max_epoch_retries,
                   strf("placement of {} cannot settle: membership kept moving",
                        model_name_));
      ++stats_.epoch_reresolutions;
      co_await epoch_backoff(attempt);
      continue;
    }

    // Tolerate dead lanes only while every shard keeps >= 1 registered copy.
    for (std::uint32_t s = 0; s < plan_.shard_tensors.size(); ++s) {
      if (plan_.shard_tensors[s].empty()) continue;
      const bool covered =
          std::any_of(copies_.begin(), copies_.end(), [&](const Copy& c) {
            return c.shard == s && c.registered && lanes_[c.lane]->up;
          });
      if (!covered) {
        throw ResourceExhausted(
            strf("shard {} of {} has no live daemon; cannot register", s, model_name_));
      }
    }
    PLOG_DEBUG(kLog, "placed {} over {} members (epoch {}, {} copies, R={})", model_name_,
               active.size(), membership_epoch_, copies_.size(), config_.replicas);
    co_return;
  }
}

sim::SubTask<> ClusterClient::register_model(dnn::Model& model) {
  PORTUS_CHECK(!registered_, "cluster client already holds a registered model");
  model_ = &model;
  model_name_ = model.name();

  auto& tensors = model.tensors();
  tensor_sizes_.clear();
  tensor_names_.clear();
  tensor_sizes_.reserve(tensors.size());
  tensor_names_.reserve(tensors.size());
  for (auto& t : tensors) {
    tensor_sizes_.push_back(t.byte_size());
    tensor_names_.push_back(t.name());
  }

  co_await resolve_placement();
  registered_ = true;
}

sim::SubTask<> ClusterClient::refresh_placement() {
  PORTUS_CHECK(registered_, "register_model before refresh_placement");
  co_await resolve_placement();
}

sim::Process ClusterClient::lane_checkpoint(Lane& lane, std::uint64_t iteration,
                                            std::uint64_t* round_max,
                                            std::vector<bool>* shard_ok, bool* any_miss,
                                            bool* stale) {
  for (const auto id : lane.copy_ids) {
    auto& copy = copies_[id];
    if (!copy.registered || !lane.up) {
      *any_miss = true;
      continue;
    }
    try {
      const std::string key = shard_key(model_name_, copy.shard);
      const auto epoch = co_await lane.client->checkpoint_named(key, iteration);
      copy.epoch = epoch;
      (*shard_ok)[copy.shard] = true;
      *round_max = std::max(*round_max, epoch);
    } catch (const EpochMismatch& e) {
      // The round is void, not failed: the caller re-resolves placement and
      // replays the whole round against the new membership.
      PLOG_INFO(kLog, "checkpoint of shard {} on {} hit a resize: {}", copy.shard,
                lane.endpoint, e.what());
      *stale = true;
      break;
    } catch (const Disconnected& e) {
      PLOG_INFO(kLog, "checkpoint of shard {} on {} lost: {}", copy.shard, lane.endpoint,
                e.what());
      mark_lane_down(lane);
      *any_miss = true;
    } catch (const std::exception& e) {
      PLOG_INFO(kLog, "checkpoint of shard {} on {} failed: {}", copy.shard, lane.endpoint,
                e.what());
      *any_miss = true;
    }
  }
}

sim::SubTask<ClusterClient::CheckpointResult> ClusterClient::checkpoint_round(
    std::uint64_t iteration, bool* stale) {
  std::vector<bool> shard_ok(plan_.shard_tensors.size(), false);
  bool any_miss = false;
  std::uint64_t round_max = 0;

  std::vector<sim::Process> procs;
  procs.reserve(lanes_.size());
  for (auto& lane : lanes_) {
    if (lane->copy_ids.empty()) continue;
    auto p = lane_checkpoint(*lane, iteration, &round_max, &shard_ok, &any_miss, stale);
    procs.push_back(cluster_.engine().spawn(std::move(p)));
  }
  for (auto& p : procs) co_await p.join();

  if (*stale) co_return CheckpointResult{};  // round void, caller replays it

  for (std::uint32_t s = 0; s < plan_.shard_tensors.size(); ++s) {
    if (plan_.shard_tensors[s].empty()) continue;
    if (!shard_ok[s]) {
      throw ResourceExhausted(
          strf("checkpoint iteration {} lost shard {} of {}: no copy committed", iteration,
               s, model_name_));
    }
  }

  ++stats_.checkpoints;
  stats_.last_epoch = std::max(stats_.last_epoch, round_max);
  if (any_miss) ++stats_.degraded_checkpoints;
  co_return CheckpointResult{.epoch = round_max, .degraded = any_miss};
}

sim::SubTask<ClusterClient::CheckpointResult> ClusterClient::checkpoint(
    std::uint64_t iteration) {
  PORTUS_CHECK(registered_, "register_model before checkpoint");
  for (int attempt = 0;; ++attempt) {
    bool stale = false;
    const CheckpointResult result = co_await checkpoint_round(iteration, &stale);
    if (!stale) co_return result;
    PORTUS_CHECK(attempt < config_.max_epoch_retries,
                 strf("checkpoint of {} cannot settle: membership kept moving",
                      model_name_));
    ++stats_.epoch_reresolutions;
    co_await epoch_backoff(attempt);
    co_await resolve_placement();
  }
}

sim::Process ClusterClient::lane_restore(Lane& lane, std::vector<RestoreJob*> jobs,
                                         std::uint64_t* max_epoch, bool* stale) {
  for (auto* job : jobs) {
    if (!lane.up) break;  // lane died earlier in this wave
    auto& copy = copies_[job->copy_id];
    try {
      const std::string key = shard_key(model_name_, copy.shard);
      const auto epoch = co_await lane.client->restore_named(key, job->required_epoch);
      job->done = true;
      copy.epoch = std::max(copy.epoch, epoch);
      *max_epoch = std::max(*max_epoch, epoch);
    } catch (const EpochMismatch& e) {
      PLOG_INFO(kLog, "restore of shard {} from {} hit a resize: {}", copy.shard,
                lane.endpoint, e.what());
      *stale = true;
      break;
    } catch (const Disconnected& e) {
      PLOG_INFO(kLog, "restore of shard {} from {} lost: {}", copy.shard, lane.endpoint,
                e.what());
      mark_lane_down(lane);
    } catch (const std::exception& e) {
      // Stale epoch (daemon refused the floor) or missing record: this copy
      // is unusable, the wave loop moves to the next one.
      PLOG_INFO(kLog, "restore of shard {} from {} refused: {}", copy.shard, lane.endpoint,
                e.what());
    }
  }
}

sim::SubTask<ClusterClient::RestoreResult> ClusterClient::restore_round(bool* stale) {
  const auto shard_count = plan_.shard_tensors.size();

  // Replica-epoch floor: a copy that missed later checkpoints (its daemon
  // was down or hung for them) holds stale data, and its daemon refuses to
  // serve below this floor — the shard then re-routes to a fresh copy. The
  // floor survives placement rebuilds via shard_floor_ (acked epochs must
  // stay reachable across resizes).
  std::vector<std::uint64_t> target(shard_count, 0);
  if (shard_floor_.size() == shard_count) target = shard_floor_;
  for (const auto& c : copies_) {
    target[c.shard] = std::max(target[c.shard], c.epoch);
  }

  std::vector<bool> done(shard_count, false);
  std::vector<bool> tried(copies_.size(), false);
  bool degraded = false;
  std::uint32_t rerouted = 0;
  std::uint64_t max_epoch = 0;

  while (true) {
    // Assign every unrestored shard its next untried live copy, in manifest
    // (primary-first) order.
    std::vector<RestoreJob> jobs;
    std::vector<std::uint32_t> job_shard;
    for (std::uint32_t s = 0; s < shard_count; ++s) {
      if (done[s] || plan_.shard_tensors[s].empty()) continue;
      std::optional<std::size_t> pick;
      for (std::size_t id = 0; id < copies_.size(); ++id) {
        const auto& c = copies_[id];
        if (c.shard != s || tried[id] || !c.registered || !lanes_[c.lane]->up) continue;
        if (!pick.has_value() || c.replica < copies_[*pick].replica) pick = id;
      }
      if (!pick.has_value()) {
        throw NotFound(strf("no live copy of shard {} of {} at epoch >= {}", s, model_name_,
                            target[s]));
      }
      tried[*pick] = true;
      jobs.push_back(RestoreJob{.copy_id = *pick,
                                .required_epoch = target[s],
                                .done = false,
                                .rerouted = copies_[*pick].replica != 0});
      job_shard.push_back(s);
    }
    if (jobs.empty()) break;

    // Group this wave's jobs by lane; lanes run in parallel.
    std::map<std::size_t, std::vector<RestoreJob*>> by_lane;
    for (auto& job : jobs) by_lane[copies_[job.copy_id].lane].push_back(&job);
    std::vector<sim::Process> procs;
    procs.reserve(by_lane.size());
    for (auto& [lane_idx, lane_jobs] : by_lane) {
      auto p = lane_restore(*lanes_[lane_idx], lane_jobs, &max_epoch, stale);
      procs.push_back(cluster_.engine().spawn(std::move(p)));
    }
    for (auto& p : procs) co_await p.join();

    if (*stale) co_return RestoreResult{};  // round void, caller replays it

    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (!jobs[j].done) {
        degraded = true;  // this shard needed (at least) another wave
        continue;
      }
      done[job_shard[j]] = true;
      if (jobs[j].rerouted) {
        degraded = true;
        ++rerouted;
      }
    }
  }

  ++stats_.restores;
  if (degraded) ++stats_.degraded_restores;
  stats_.rerouted_shards += rerouted;
  stats_.last_epoch = std::max(stats_.last_epoch, max_epoch);
  co_return RestoreResult{.epoch = max_epoch, .degraded = degraded,
                          .rerouted_shards = rerouted};
}

sim::SubTask<ClusterClient::RestoreResult> ClusterClient::restore() {
  PORTUS_CHECK(registered_, "register_model before restore");
  for (int attempt = 0;; ++attempt) {
    bool stale = false;
    const RestoreResult result = co_await restore_round(&stale);
    if (!stale) co_return result;
    PORTUS_CHECK(attempt < config_.max_epoch_retries,
                 strf("restore of {} cannot settle: membership kept moving", model_name_));
    ++stats_.epoch_reresolutions;
    co_await epoch_backoff(attempt);
    co_await resolve_placement();
  }
}

}  // namespace portus::core::cluster
