// ElasticCluster: the membership controller + online shard migrator of an
// elastic Portus-Cluster.
//
// Owns the authoritative Membership (epoch + member set + lifecycle states)
// and implements every resize step as a crash-consistent two-phase move:
//
//   1. PRE-COPY: compute the placement the *target* membership implies and
//      stream every missing shard copy daemon-to-daemon (PMEM to PMEM over
//      the simulated fabric) while clients keep checkpointing against the
//      old epoch. Each streamed copy lands through the same double-mapping
//      discipline as a checkpoint — ACTIVE flag, chunked data persists,
//      payload-CRC block, then the DONE flip carrying the SOURCE epoch — so
//      a power cut at any persist fence leaves the destination image
//      fsck-clean and the source untouched.
//   2. BARRIER: pause admissions on every live daemon (PR 6 relocation
//      barrier), install the target membership with a bumped epoch, push
//      the new epoch to the daemons (they now bounce stale requests with
//      EpochMismatch), resume admissions. Short settle rounds then
//      re-stream whatever committed between the pre-copy and the bump, so
//      every epoch acked under the old membership is reachable under the
//      new one before a drained member may be decommissioned.
//
// Clients react to the bump via EpochMismatch -> refetch membership() ->
// re-resolve placement (cluster_client.h); a 1 -> 4 -> 2 resize under load
// costs retries, never failed ops.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/cluster/membership.h"
#include "core/daemon/daemon.h"
#include "sim/engine.h"

namespace portus::core::cluster {

class ElasticCluster final : public MembershipSource {
 public:
  struct Config {
    std::uint32_t replicas = 2;     // copies per shard the migrator maintains
    Bytes stream_chunk = 256_KiB;   // per-chunk copy+persist granule
    double stream_gbps = 6.0;       // daemon-to-daemon streaming bandwidth
    // Settle-round grace: how long to let in-flight (pre-barrier) ops land
    // before re-streaming their commits to the new placement.
    Duration drain_grace{2'000'000};  // 2 ms
    int max_restream_rounds = 8;
  };

  struct Stats {
    std::uint64_t copies_moved = 0;     // shard copies streamed to a new home
    std::uint64_t models_migrated = 0;  // distinct models that moved at all
    Bytes bytes_streamed = 0;           // payload bytes across all moves
    std::uint64_t epoch_bumps = 0;
    std::uint64_t repaired_copies = 0;  // moves done re-replicating after failure
    std::uint64_t barriers = 0;
    Duration barrier_time{0};           // admissions-paused wall time, summed
  };

  ElasticCluster(sim::Engine& engine, Config config);
  explicit ElasticCluster(sim::Engine& engine) : ElasticCluster(engine, Config{}) {}

  // Initial ring construction: add every founding member ACTIVE, then
  // seal() to set epoch 1 and push it to the daemons. After seal, use
  // join()/drain()/decommission()/repair().
  void add_member(const std::string& endpoint, PortusDaemon& daemon);
  void seal();

  // Grow the ring: the new daemon starts JOINING (no placement routes to
  // it), receives its share of every model's shard copies, then goes ACTIVE
  // under a bumped epoch.
  sim::SubTask<> join(const std::string& endpoint, PortusDaemon& daemon);

  // Shrink, step 1: mark DRAINING (excluded from new placement), stream its
  // copies to the members that now own them, bump the epoch. The member
  // still serves restores for what it holds until decommission.
  sim::SubTask<> drain(const std::string& endpoint);

  // Shrink, step 2: a drained member leaves for good (DOWN, epoch bump).
  // Requires drain() to have completed — its data must already be homed
  // elsewhere, because nothing is streamed here.
  void decommission(const std::string& endpoint);

  // Permanent failure: declare a (crashed, unrecoverable) member DOWN and
  // re-replicate every shard copy it held from the surviving replicas.
  sim::SubTask<> repair(const std::string& endpoint);

  // MembershipSource: what ClusterClients re-resolve against.
  const Membership& membership() const override { return membership_; }

  PortusDaemon* daemon(const std::string& endpoint) const;
  const Stats& stats() const { return stats_; }

 private:
  // Stream every shard copy the plan implied by `m` wants but its owner
  // does not yet hold (at the source's epoch). Returns copies moved.
  sim::SubTask<std::uint64_t> stream_to_plan(const Membership& m);

  // Pre-copy toward `target`, then barrier-install it (epoch bump + push),
  // then settle-restream until a full round moves nothing.
  sim::SubTask<> rebalance_to(Membership target);

  // One copy: source daemon's newest DONE version of `key` streamed into
  // dst's write slot, DONE flipped at the source epoch. Returns payload
  // bytes moved (0 = nothing usable to move).
  sim::SubTask<Bytes> migrate_copy(PortusDaemon& src, PortusDaemon& dst,
                                   const std::string& key, std::uint32_t replica);

  void push_epoch();
  static std::optional<std::uint64_t> done_epoch(PortusDaemon& d, const std::string& key);

  sim::Engine& engine_;
  Config config_;
  Membership membership_;
  std::map<std::string, PortusDaemon*> daemons_;
  std::set<std::string> migrated_models_;
  Stats stats_;
};

}  // namespace portus::core::cluster
