// Placement: which daemon owns which tensors of a sharded model.
//
// The policy is size-balanced striping over a static daemon ring: the model
// is cut into one shard per daemon, tensors are assigned to shards by
// longest-processing-time bin packing (largest tensor to the lightest
// shard), and shard k's copies live on ring positions rot+k, rot+k+1, ...
// rot+k+R-1 (mod N), where the rotation derives from an FNV hash of the
// model name so concurrent tenants do not all hammer daemon 0.
//
// Everything is a pure function of (model name, tensor sizes, ring size,
// replication factor, placement epoch) — two processes that agree on the
// ring config compute byte-identical plans, so restore after a full client
// restart needs no metadata service: the client just recomputes where its
// shards are. The persisted ShardManifest (manifest.h) is the belt to this
// suspenders — it lets an operator reconstruct ownership from any one
// surviving daemon even when the ring config is lost.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/units.h"

namespace portus::core::cluster {

struct Placement {
  struct Plan {
    std::string model_name;
    std::uint64_t placement_epoch = 0;
    std::uint32_t daemon_count = 0;  // ring size (member positions)
    // Number of shards the model is cut into. The classic compute() uses
    // one shard per daemon; an elastic cluster fixes this at registration
    // (e.g. 8) so the same shards can be re-homed as the ring resizes
    // without re-cutting the model (a shard's tensor set is a pure function
    // of (sizes, shard_count), so it survives every membership epoch).
    std::uint32_t shard_count = 0;
    std::uint32_t replicas = 0;
    // tensor index -> owning shard id.
    std::vector<std::uint32_t> tensor_shard;
    // shard id -> tensor indices, ascending (registration order within the
    // shard is the model's tensor order, so a shard's MIndex layout is
    // itself deterministic).
    std::vector<std::vector<std::uint32_t>> shard_tensors;
    // shard id -> daemon ring positions holding a copy, primary first.
    std::vector<std::vector<std::uint32_t>> shard_daemons;
    // shard id -> payload bytes (balance metric).
    std::vector<Bytes> shard_bytes;

    // Order-sensitive digest over every assignment; equal digests mean the
    // plans route every byte identically (determinism tests, manifests).
    std::uint64_t digest() const;
  };

  // `replicas` is clamped to daemon_count (cannot place two copies of one
  // shard on the same daemon). Zero-size tensors are legal and stay with
  // the shard the balancer gives them.
  static Plan compute(const std::string& model_name, std::span<const Bytes> tensor_sizes,
                      std::uint32_t daemon_count, std::uint32_t replicas,
                      std::uint64_t placement_epoch);

  // Elastic generalization: place `shard_count` shards over the subset of a
  // `ring_size`-position ring listed in `active` (ascending ring positions,
  // e.g. Membership::active_positions()). Shard k's copies land on
  // active[(rot + k + r) % active.size()] — values in shard_daemons are
  // *ring* positions, so they stay meaningful as members join and drain.
  // compute() is exactly compute_over() with shard_count = ring_size and
  // every position active.
  static Plan compute_over(const std::string& model_name,
                           std::span<const Bytes> tensor_sizes,
                           std::uint32_t shard_count, std::uint32_t ring_size,
                           std::span<const std::uint32_t> active, std::uint32_t replicas,
                           std::uint64_t placement_epoch);

  // 64-bit FNV-1a (the ring-rotation and digest hash).
  static std::uint64_t fnv1a(std::span<const std::byte> data,
                             std::uint64_t seed = 0xcbf29ce484222325ull);
};

// The shard-scoped ModelTable key: one daemon may host several shard copies
// of the same model (its own primary plus replicas of neighbours), and each
// copy gets its own MIndex under this key. Replicas of the same shard use
// the same key on *different* daemons, which is what lets a degraded
// restore re-target a replica without any renaming.
std::string shard_key(const std::string& model_name, std::uint32_t shard_id);

}  // namespace portus::core::cluster
