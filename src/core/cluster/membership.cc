#include "core/cluster/membership.h"

namespace portus::core::cluster {

const char* to_string(MemberState s) {
  switch (s) {
    case MemberState::kJoining: return "JOINING";
    case MemberState::kActive: return "ACTIVE";
    case MemberState::kDraining: return "DRAINING";
    case MemberState::kDown: return "DOWN";
  }
  return "?";
}

std::vector<std::uint32_t> Membership::active_positions() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < members.size(); ++i) {
    if (members[i].state == MemberState::kActive) out.push_back(i);
  }
  return out;
}

const Member* Membership::find(const std::string& endpoint) const {
  for (const auto& m : members) {
    if (m.endpoint == endpoint) return &m;
  }
  return nullptr;
}

Member* Membership::find(const std::string& endpoint) {
  for (auto& m : members) {
    if (m.endpoint == endpoint) return &m;
  }
  return nullptr;
}

}  // namespace portus::core::cluster
