// Cluster membership: the epoch-versioned member set an elastic
// Portus-Cluster places shards over.
//
// Every resize step (join, drain, decommission, permanent failure) produces
// a new membership with a bumped epoch. Daemons hold the current epoch and
// bounce requests stamped with a stale one (EpochMismatch), which is the
// signal that makes clients refetch placement — see cluster_client.h. The
// membership itself is persisted inside the CRC'd ShardManifest (v2) that
// rides along with every shard registration, so any surviving daemon's
// image is enough to reconstruct who held what at the time of a crash.
//
// Member lifecycle:
//   JOINING  -> receiving its share of existing shard copies; not yet a
//               placement target, clients do not route to it.
//   ACTIVE   -> full ring member, placement target.
//   DRAINING -> excluded from new placement; existing copies are being
//               streamed off. Still serves restores for what it holds.
//   DOWN     -> decommissioned or declared permanently failed; never
//               contacted again.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace portus::core::cluster {

enum class MemberState : std::uint8_t {
  kJoining = 0,
  kActive = 1,
  kDraining = 2,
  kDown = 3,
};

const char* to_string(MemberState s);

struct Member {
  std::string endpoint;
  MemberState state = MemberState::kActive;
};

struct Membership {
  std::uint64_t epoch = 0;
  // Ring order is identity: position i here is ring position i in every
  // placement computed against this membership. Members are only appended,
  // never reordered or erased (a gone member goes kDown), so positions are
  // stable across epochs.
  std::vector<Member> members;

  // Ring positions currently eligible as placement targets (kActive).
  std::vector<std::uint32_t> active_positions() const;

  const Member* find(const std::string& endpoint) const;
  Member* find(const std::string& endpoint);
};

// Where a ClusterClient learns the authoritative membership when it gets an
// EpochMismatch. In the simulation this is the ElasticCluster controller; a
// real deployment would back it with a consensus service.
class MembershipSource {
 public:
  virtual ~MembershipSource() = default;
  virtual const Membership& membership() const = 0;
};

}  // namespace portus::core::cluster
