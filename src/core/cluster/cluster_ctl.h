// ClusterCtl: fleet-wide observability (portusctl cluster-status).
//
// Where Portusctl inspects ONE daemon's PMEM, ClusterCtl walks every daemon
// of a Portus-Cluster ring and aggregates the per-daemon view into a single
// table: shard copies hosted, distinct models, stored bytes, operation
// counters, pipeline occupancy, and liveness. An optional ClusterClient
// contributes the client-side degradation counters (lane failures, degraded
// restores, re-routed shards) as a footer.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/cluster/cluster_client.h"
#include "core/daemon/daemon.h"

namespace portus::core::cluster {

class ClusterCtl {
 public:
  struct DaemonRow {
    std::string endpoint;
    bool up = false;
    // Membership epoch the daemon currently serves (protocol v6); 0 =
    // standalone / not epoch-checked.
    std::uint64_t membership_epoch = 0;
    std::size_t shard_copies = 0;  // shard-scoped ModelTable entries
    std::size_t models = 0;        // distinct models with >= 1 copy here
    Bytes stored_bytes = 0;        // sum of copy slot sizes (one version each)
    std::uint64_t registrations = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t restores = 0;
    std::uint64_t failed_ops = 0;
    double mean_window = 0.0;  // pipeline occupancy
    int peak_window = 0;
    std::uint64_t wrs_posted = 0;         // RDMA WRs (gather extent = 1)
    std::uint64_t extents_coalesced = 0;  // multi-tensor extents among them
    double doorbells_per_window = 0.0;    // mean doorbells per admission burst
    std::uint32_t alloc_shards = 0;       // allocator arenas
    std::uint64_t alloc_refills = 0;      // reservation refills across shards
    Bytes alloc_live = 0;                 // live heap bytes across shards
  };

  // Snapshot one daemon (walks its ModelTable; killed daemons still answer
  // — their PMEM state outlives the sockets).
  static DaemonRow inspect(PortusDaemon& daemon);

  // The `portusctl cluster-status` table. `client` may be null. When a
  // `membership` is given (elastic cluster), every row also shows the
  // member's lifecycle state (JOINING/ACTIVE/DRAINING/DOWN).
  static std::string render_status(std::span<PortusDaemon* const> daemons,
                                   const ClusterClient* client = nullptr,
                                   const Membership* membership = nullptr);
};

}  // namespace portus::core::cluster
