// ShardManifest: the persisted description of a sharded model's placement.
//
// Every shard copy's registration carries the encoded manifest, and the
// daemon stores it inside that copy's MIndex record on PMEM. The manifest
// is the same on every copy, so losing up to R-1 daemons still leaves the
// complete ownership map on each survivor — an operator (or a client with
// no ring config) can read ONE daemon and learn, for every tensor of the
// model, which shard owns it and which ring positions hold that shard.
//
// Wire/PMEM layout (little-endian, CRC-framed like the other PMEM blobs):
//   [u32 magic "PSMF"][u16 version]
//   [str model_name][u64 placement_epoch][u64 plan_digest]
//   [u32 daemon_count][u32 replicas]
//   v2: [u64 membership_epoch][u32 shard_count]
//   [u32 endpoints...][str each endpoint]
//   v2: [u8 member_state] x endpoints
//   [u32 tensor_count][str name | u64 size | u32 shard]...
//   [u32 shard_count][u32 copies | u32 daemon...]...
//   [u32 crc over everything above]
//
// v2 (elastic clusters) adds the membership epoch + per-member lifecycle
// states and decouples shard_count from daemon_count; decode() still
// accepts v1 blobs (epoch 0, all members ACTIVE, one shard per daemon), so
// images written before the elastic subsystem keep recovering.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/units.h"
#include "core/cluster/membership.h"
#include "core/cluster/placement.h"

namespace portus::core::cluster {

struct ShardManifest {
  static constexpr std::uint32_t kMagic = 0x464D5350;  // "PSMF"
  static constexpr std::uint16_t kVersion = 2;

  struct TensorEntry {
    std::string name;
    Bytes size = 0;
    std::uint32_t shard = 0;
  };

  std::string model_name;
  std::uint64_t placement_epoch = 0;
  std::uint64_t plan_digest = 0;  // Placement::Plan::digest() at write time
  std::uint32_t daemon_count = 0;  // ring size at write time
  std::uint32_t replicas = 0;
  // v2: membership generation this placement was computed against, and the
  // lifecycle state of each ring position at write time (parallel to
  // `endpoints`). A v1 blob decodes as epoch 0 with every member ACTIVE.
  std::uint64_t membership_epoch = 0;
  std::uint32_t shard_count = 0;  // shards the model is cut into (v1: = daemon_count)
  std::vector<std::string> endpoints;  // the ring, in membership order
  std::vector<MemberState> member_states;  // parallel to endpoints (v2)
  std::vector<TensorEntry> tensors;
  std::vector<std::vector<std::uint32_t>> shard_daemons;  // primary first

  static ShardManifest from_plan(const Placement::Plan& plan,
                                 std::span<const std::string> endpoints,
                                 std::span<const std::string> tensor_names,
                                 std::span<const Bytes> tensor_sizes);

  std::vector<std::byte> encode() const;
  // Validates magic, version, and CRC; throws Corruption on any mismatch.
  static ShardManifest decode(std::span<const std::byte> raw);

  // Ring positions holding `shard`, primary first (degraded-restore order).
  const std::vector<std::uint32_t>& copies_of(std::uint32_t shard) const;
};

}  // namespace portus::core::cluster
