#include "core/cluster/manifest.h"

#include "common/binary_io.h"
#include "common/crc32.h"
#include "common/error.h"

namespace portus::core::cluster {

ShardManifest ShardManifest::from_plan(const Placement::Plan& plan,
                                       std::span<const std::string> endpoints,
                                       std::span<const std::string> tensor_names,
                                       std::span<const Bytes> tensor_sizes) {
  PORTUS_CHECK_ARG(endpoints.size() == plan.daemon_count,
                   "manifest endpoint list does not match the plan's ring size");
  PORTUS_CHECK_ARG(tensor_names.size() == plan.tensor_shard.size() &&
                       tensor_sizes.size() == plan.tensor_shard.size(),
                   "manifest tensor metadata does not match the plan");
  ShardManifest m;
  m.model_name = plan.model_name;
  m.placement_epoch = plan.placement_epoch;
  m.plan_digest = plan.digest();
  m.daemon_count = plan.daemon_count;
  m.replicas = plan.replicas;
  m.shard_count = plan.shard_count != 0 ? plan.shard_count : plan.daemon_count;
  m.endpoints.assign(endpoints.begin(), endpoints.end());
  m.member_states.assign(endpoints.size(), MemberState::kActive);
  m.tensors.reserve(tensor_names.size());
  for (std::size_t i = 0; i < tensor_names.size(); ++i) {
    m.tensors.push_back(
        TensorEntry{tensor_names[i], tensor_sizes[i], plan.tensor_shard[i]});
  }
  m.shard_daemons = plan.shard_daemons;
  return m;
}

std::vector<std::byte> ShardManifest::encode() const {
  BinaryWriter w;
  w.u32(kMagic);
  w.u16(kVersion);
  w.str(model_name);
  w.u64(placement_epoch);
  w.u64(plan_digest);
  w.u32(daemon_count);
  w.u32(replicas);
  w.u64(membership_epoch);
  w.u32(shard_count != 0 ? shard_count : daemon_count);
  w.u32(static_cast<std::uint32_t>(endpoints.size()));
  for (const auto& e : endpoints) w.str(e);
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    w.u8(i < member_states.size() ? static_cast<std::uint8_t>(member_states[i])
                                  : static_cast<std::uint8_t>(MemberState::kActive));
  }
  w.u32(static_cast<std::uint32_t>(tensors.size()));
  for (const auto& t : tensors) {
    w.str(t.name);
    w.u64(t.size);
    w.u32(t.shard);
  }
  w.u32(static_cast<std::uint32_t>(shard_daemons.size()));
  for (const auto& copies : shard_daemons) {
    w.u32(static_cast<std::uint32_t>(copies.size()));
    for (const auto d : copies) w.u32(d);
  }
  w.u32(Crc32::of(w.buffer().data(), w.buffer().size()));
  return w.take();
}

ShardManifest ShardManifest::decode(std::span<const std::byte> raw) {
  if (raw.size() < 4) throw Corruption("shard manifest truncated");
  const auto stored_crc = [&] {
    BinaryReader tr{raw.subspan(raw.size() - 4)};
    return tr.u32();
  }();
  if (stored_crc != Crc32::of(raw.data(), raw.size() - 4)) {
    throw Corruption("shard manifest CRC mismatch");
  }

  BinaryReader r{raw.first(raw.size() - 4)};
  if (r.u32() != kMagic) throw Corruption("shard manifest magic mismatch");
  const auto version = r.u16();
  if (version != 1 && version != kVersion) {
    throw Corruption("shard manifest version mismatch");
  }
  ShardManifest m;
  m.model_name = r.str();
  m.placement_epoch = r.u64();
  m.plan_digest = r.u64();
  m.daemon_count = r.u32();
  m.replicas = r.u32();
  if (version >= 2) {
    m.membership_epoch = r.u64();
    m.shard_count = r.u32();
  } else {
    m.membership_epoch = 0;
    m.shard_count = m.daemon_count;
  }
  if (m.shard_count == 0 || m.shard_count > 4096) {
    throw Corruption("implausible shard count in shard manifest");
  }
  const auto n_endpoints = r.u32();
  if (n_endpoints != m.daemon_count || n_endpoints > 4096) {
    throw Corruption("implausible endpoint list in shard manifest");
  }
  m.endpoints.resize(n_endpoints);
  for (auto& e : m.endpoints) e = r.str();
  if (version >= 2) {
    m.member_states.resize(n_endpoints);
    for (auto& s : m.member_states) {
      const auto v = r.u8();
      if (v > static_cast<std::uint8_t>(MemberState::kDown)) {
        throw Corruption("implausible member state in shard manifest");
      }
      s = static_cast<MemberState>(v);
    }
  } else {
    m.member_states.assign(n_endpoints, MemberState::kActive);
  }
  const auto n_tensors = r.u32();
  if (n_tensors > 1u << 20) throw Corruption("implausible tensor count in shard manifest");
  m.tensors.resize(n_tensors);
  for (auto& t : m.tensors) {
    t.name = r.str();
    t.size = r.u64();
    t.shard = r.u32();
    if (t.shard >= m.shard_count) throw Corruption("manifest tensor maps to no shard");
  }
  const auto n_shards = r.u32();
  if (n_shards != m.shard_count) throw Corruption("manifest shard map size mismatch");
  m.shard_daemons.resize(n_shards);
  for (auto& copies : m.shard_daemons) {
    const auto n_copies = r.u32();
    if (n_copies == 0 || n_copies > m.daemon_count) {
      throw Corruption("implausible replica list in shard manifest");
    }
    copies.resize(n_copies);
    for (auto& d : copies) {
      d = r.u32();
      if (d >= m.daemon_count) throw Corruption("manifest replica beyond the ring");
    }
  }
  return m;
}

const std::vector<std::uint32_t>& ShardManifest::copies_of(std::uint32_t shard) const {
  PORTUS_CHECK_ARG(shard < shard_daemons.size(), "no such shard in manifest");
  return shard_daemons[shard];
}

}  // namespace portus::core::cluster
