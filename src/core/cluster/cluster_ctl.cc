#include "core/cluster/cluster_ctl.h"

#include <optional>
#include <set>

#include "common/strformat.h"

namespace portus::core::cluster {

ClusterCtl::DaemonRow ClusterCtl::inspect(PortusDaemon& daemon) {
  DaemonRow row;
  row.endpoint = daemon.config().endpoint;
  row.up = !daemon.killed();

  std::set<std::string> models;
  for (const auto& name : daemon.model_table().names()) {
    const MIndex* live = daemon.find_live_index(name);
    std::optional<MIndex> loaded;
    if (live == nullptr) loaded.emplace(daemon.load_index(name));
    const MIndex& index = live != nullptr ? *live : *loaded;

    if (index.sharded()) ++row.shard_copies;
    row.stored_bytes += index.slot_size();
    // Strip the "#s<k>" suffix of shard-scoped keys to count models once.
    const auto hash = name.rfind("#s");
    models.insert(hash == std::string::npos ? name : name.substr(0, hash));
  }
  row.models = models.size();

  row.membership_epoch = daemon.membership_epoch();

  const auto& s = daemon.stats();
  row.registrations = s.registrations;
  row.checkpoints = s.checkpoints;
  row.restores = s.restores;
  row.failed_ops = s.failed_ops;
  row.mean_window = s.mean_window();
  row.peak_window = s.peak_window;
  row.wrs_posted = s.wrs_posted;
  row.extents_coalesced = s.extents_coalesced;
  row.doorbells_per_window = s.doorbells_per_window();
  for (const auto& sh : daemon.allocator().shard_stats()) {
    ++row.alloc_shards;
    row.alloc_refills += sh.refills;
    row.alloc_live += sh.live;
  }
  return row;
}

std::string ClusterCtl::render_status(std::span<PortusDaemon* const> daemons,
                                      const ClusterClient* client,
                                      const Membership* membership) {
  // Column widths fit the widest cell (format_table): fixed widths sheared
  // the whole table once a fleet-scale counter outgrew its column.
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"DAEMON", "STATE", "EPOCH", "MSTATE", "SHARDS", "MODELS", "BYTES",
                  "REGS", "CKPTS", "RSTRS", "FAILED", "PIPELINE", "COALESCE", "DOORBELL",
                  "ARENAS"});
  std::size_t copies = 0;
  Bytes bytes = 0;
  for (auto* d : daemons) {
    const auto row = inspect(*d);
    copies += row.shard_copies;
    bytes += row.stored_bytes;
    const Member* member =
        membership != nullptr ? membership->find(row.endpoint) : nullptr;
    rows.push_back({row.endpoint, row.up ? "up" : "DOWN",
                    row.membership_epoch != 0 ? strf("{}", row.membership_epoch) : "-",
                    member != nullptr ? to_string(member->state) : "-",
                    strf("{}", row.shard_copies), strf("{}", row.models),
                    format_bytes(row.stored_bytes), format_count(row.registrations),
                    format_count(row.checkpoints), format_count(row.restores),
                    format_count(row.failed_ops),
                    strf("{:.2f}/{}", row.mean_window, row.peak_window),
                    strf("{}/{}", format_count(row.extents_coalesced),
                         format_count(row.wrs_posted)),
                    strf("{:.2f}/w", row.doorbells_per_window),
                    // Allocator arenas: count, live bytes, reservation refills.
                    strf("{}x {} {}r", row.alloc_shards, format_bytes(row.alloc_live),
                         row.alloc_refills)});
  }
  std::string out = format_table(rows, "<<><>>>>>>>>>>>");
  out += strf("total: {} daemons, {} shard copies, {}\n", daemons.size(), copies,
              format_bytes(bytes));
  if (membership != nullptr) {
    out += strf("membership: epoch {}, {} members ({} active)\n", membership->epoch,
                membership->members.size(), membership->active_positions().size());
  }
  if (client != nullptr) {
    const auto& cs = client->stats();
    out += strf(
        "client: {} checkpoints ({} degraded), {} restores ({} degraded), "
        "{} shards re-routed, {} lane failures, {} epoch re-resolves, "
        "{} lane revivals, epoch {}\n",
        cs.checkpoints, cs.degraded_checkpoints, cs.restores, cs.degraded_restores,
        cs.rerouted_shards, cs.lane_failures, cs.epoch_reresolutions, cs.lane_revivals,
        cs.last_epoch);
  }
  return out;
}

}  // namespace portus::core::cluster
