// ClusterClient: one training process checkpointing to N Portus daemons.
//
// Wraps one PortusClient per daemon ("lane") and fans register / checkpoint
// / restore out across them — parallel across lanes, serial within a lane
// (each PortusClient is a one-op-at-a-time control channel). The tensor →
// shard → daemons map comes from Placement::compute, so any process that
// knows the ring config finds its shards without a metadata service.
//
// Failure model: a daemon can crash (sockets die instantly) or hang
// (detected only by the per-op timeout). Either way the lane is marked
// down and the op degrades:
//   - checkpoint: succeeds as long as every shard commits on >= 1 copy;
//     the result is flagged degraded and the lost copies simply stop
//     advancing their epochs.
//   - restore: shards whose primary lane is gone (or holds a stale epoch —
//     the daemon refuses a required_epoch it cannot meet) are re-routed to
//     replica copies, in manifest order, until every shard is back.
//     Completes with degraded=true; throws only when some shard has no
//     live copy at the required epoch left at all.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/cluster/manifest.h"
#include "core/cluster/placement.h"

namespace portus::core::cluster {

class ClusterClient {
 public:
  struct Config {
    std::vector<std::string> endpoints;  // the static daemon ring, in order
    std::uint32_t replicas = 2;          // copies per shard (clamped to ring size)
    int stripes = 1;                     // datapath QPs per registration
    std::uint64_t placement_epoch = 0;   // bump to recompute the ring rotation
    Duration op_timeout{0};              // 0 = never time out (crash-only detection)
    // Tenancy identity + retry discipline, applied to every lane client.
    // Keep retry.retry_timeouts off here unless you mean it: a retried
    // timeout delays the lane-down verdict the degraded paths key off.
    PortusClient::TenantSpec tenant;
    PortusClient::RetryPolicy retry;
  };

  struct CheckpointResult {
    std::uint64_t epoch = 0;
    bool degraded = false;  // some copy missed the round (all shards still committed)
  };

  struct RestoreResult {
    std::uint64_t epoch = 0;
    bool degraded = false;          // at least one shard came from a non-primary copy
    std::uint32_t rerouted_shards = 0;
  };

  struct Stats {
    std::uint64_t checkpoints = 0;
    std::uint64_t restores = 0;
    std::uint64_t degraded_checkpoints = 0;
    std::uint64_t degraded_restores = 0;
    std::uint64_t rerouted_shards = 0;
    std::uint64_t lane_failures = 0;  // lanes marked down (crash or timeout)
    std::uint64_t last_epoch = 0;
  };

  ClusterClient(net::Cluster& cluster, net::Node& client_node, gpu::GpuDevice& gpu,
                QpRendezvous& rendezvous, Config config);

  // Compute the placement for `model`, dial every lane, and register each
  // shard copy on its daemon (manifest attached to every registration).
  // Lanes that are already dead are tolerated as long as every shard keeps
  // at least one registered copy; otherwise throws.
  sim::SubTask<> register_model(dnn::Model& model);

  // Checkpoint every shard copy. Returns the round's committed epoch (the
  // same on every copy that took part). Throws if any shard committed on
  // zero copies.
  sim::SubTask<CheckpointResult> checkpoint(std::uint64_t iteration = 0);

  // Restore every shard, re-routing to replicas as needed (see above).
  sim::SubTask<RestoreResult> restore();

  const Placement::Plan& plan() const { return plan_; }
  const ShardManifest& manifest() const { return manifest_; }
  const Stats& stats() const { return stats_; }

  std::size_t lane_count() const { return lanes_.size(); }
  bool lane_up(std::size_t i) const { return lanes_.at(i).up; }
  const std::string& lane_endpoint(std::size_t i) const { return lanes_.at(i).endpoint; }
  PortusClient& lane_client(std::size_t i) { return *lanes_.at(i).client; }

 private:
  // One placed copy of one shard. `daemon` is both the ring position and
  // the lane index.
  struct Copy {
    std::uint32_t shard = 0;
    std::uint32_t replica = 0;
    std::uint32_t daemon = 0;
    bool registered = false;
    std::uint64_t epoch = 0;  // newest epoch this copy is known to hold
  };

  struct Lane {
    std::string endpoint;
    std::unique_ptr<PortusClient> client;
    std::vector<std::size_t> copy_ids;  // indices into copies_
    bool up = true;
  };

  struct RestoreJob {
    std::size_t copy_id = 0;
    std::uint64_t required_epoch = 0;
    bool done = false;
    bool rerouted = false;
  };

  sim::Process lane_register(Lane& lane, dnn::Model& model);
  sim::Process lane_checkpoint(Lane& lane, std::uint64_t iteration, std::uint64_t* round_max,
                               std::vector<bool>* shard_ok, bool* any_miss);
  sim::Process lane_restore(Lane& lane, std::vector<RestoreJob*> jobs, std::uint64_t* max_epoch);

  void mark_lane_down(Lane& lane);

  net::Cluster& cluster_;
  net::Node& node_;
  gpu::GpuDevice& gpu_;
  QpRendezvous& rendezvous_;
  Config config_;
  std::string model_name_;
  Placement::Plan plan_;
  ShardManifest manifest_;
  std::vector<Copy> copies_;
  std::vector<Lane> lanes_;
  Stats stats_;
  bool registered_ = false;
};

}  // namespace portus::core::cluster
