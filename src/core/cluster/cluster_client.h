// ClusterClient: one training process checkpointing to N Portus daemons.
//
// Wraps one PortusClient per daemon ("lane") and fans register / checkpoint
// / restore out across them — parallel across lanes, serial within a lane
// (each PortusClient is a one-op-at-a-time control channel). The tensor →
// shard → daemons map comes from Placement::compute, so any process that
// knows the ring config finds its shards without a metadata service.
//
// Failure model: a daemon can crash (sockets die instantly) or hang
// (detected only by the per-op timeout). Either way the lane is marked
// down and the op degrades:
//   - checkpoint: succeeds as long as every shard commits on >= 1 copy;
//     the result is flagged degraded and the lost copies simply stop
//     advancing their epochs.
//   - restore: shards whose primary lane is gone (or holds a stale epoch —
//     the daemon refuses a required_epoch it cannot meet) are re-routed to
//     replica copies, in manifest order, until every shard is back.
//     Completes with degraded=true; throws only when some shard has no
//     live copy at the required epoch left at all.
//
// Elastic mode (Config::membership set): the daemon set is no longer
// static. The client snapshots the authoritative Membership, places the
// model's fixed shard_count shards over the ACTIVE members, and stamps
// every request with the membership epoch. When the cluster resizes
// mid-op, a daemon answers EpochMismatch; the client then refetches the
// membership, recomputes placement, revives or opens lanes as needed,
// re-registers the moved copies, and retries the whole round — backing off
// through the same jittered-exponential helper as every other retry path
// (common/backoff.h). A resize under load therefore costs retries, never
// failed ops.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/client.h"
#include "core/cluster/manifest.h"
#include "core/cluster/membership.h"
#include "core/cluster/placement.h"

namespace portus::core::cluster {

class ClusterClient {
 public:
  struct Config {
    // The static daemon ring, in order. May be empty when `membership` is
    // set (the member list then comes from the membership source).
    std::vector<std::string> endpoints;
    std::uint32_t replicas = 2;          // copies per shard (clamped to ring size)
    int stripes = 1;                     // datapath QPs per registration
    std::uint64_t placement_epoch = 0;   // bump to recompute the ring rotation
    // Per-op watchdog. 0 = never time out: hung-daemon detection is then
    // CRASH-ONLY — a daemon that stays connected but answers nothing (the
    // kHang gray failure) wedges the op, and with it the whole cluster
    // demo, forever. The finite default keeps sharded_testbed/cluster-demo
    // paths live through a hang; set 0 only where every failure is a
    // crash-stop and the extra watchdog timer is unwanted.
    Duration op_timeout{250'000'000};    // 250 ms
    // Tenancy identity + retry discipline, applied to every lane client.
    // Keep retry.retry_timeouts off here unless you mean it: a retried
    // timeout delays the lane-down verdict the degraded paths key off.
    PortusClient::TenantSpec tenant;
    PortusClient::RetryPolicy retry;
    // --- elasticity ---
    // Shards the model is cut into. 0 = one per ring member at first
    // placement (the classic static-cluster behavior). Fix it explicitly
    // (e.g. 8) on an elastic cluster so shards can spread over daemons
    // that join later.
    std::uint32_t shard_count = 0;
    // Authoritative membership (the ElasticCluster controller). When set,
    // every request carries the membership epoch, and an EpochMismatch
    // answer triggers placement re-resolution against the current members.
    MembershipSource* membership = nullptr;
    // Re-resolution attempts per op before giving up (each backs off).
    int max_epoch_retries = 8;
  };

  struct CheckpointResult {
    std::uint64_t epoch = 0;
    bool degraded = false;  // some copy missed the round (all shards still committed)
  };

  struct RestoreResult {
    std::uint64_t epoch = 0;
    bool degraded = false;          // at least one shard came from a non-primary copy
    std::uint32_t rerouted_shards = 0;
  };

  struct Stats {
    std::uint64_t checkpoints = 0;
    std::uint64_t restores = 0;
    std::uint64_t degraded_checkpoints = 0;
    std::uint64_t degraded_restores = 0;
    std::uint64_t rerouted_shards = 0;
    std::uint64_t lane_failures = 0;  // lanes marked down (crash or timeout)
    std::uint64_t last_epoch = 0;
    // --- elasticity ---
    std::uint64_t epoch_reresolutions = 0;  // placements refetched after EpochMismatch
    std::uint64_t lane_revivals = 0;        // down lanes brought back by a re-resolve
  };

  ClusterClient(net::Cluster& cluster, net::Node& client_node, gpu::GpuDevice& gpu,
                QpRendezvous& rendezvous, Config config);

  // Compute the placement for `model`, dial every lane, and register each
  // shard copy on its daemon (manifest attached to every registration).
  // Lanes that are already dead are tolerated as long as every shard keeps
  // at least one registered copy; otherwise throws.
  sim::SubTask<> register_model(dnn::Model& model);

  // Checkpoint every shard copy. Returns the round's committed epoch (the
  // same on every copy that took part). Throws if any shard committed on
  // zero copies. In elastic mode an EpochMismatch answer retries the whole
  // round after re-resolving placement.
  sim::SubTask<CheckpointResult> checkpoint(std::uint64_t iteration = 0);

  // Restore every shard, re-routing to replicas as needed (see above).
  sim::SubTask<RestoreResult> restore();

  // Re-resolve placement against the current membership (or the static
  // endpoint list) right now: recompute the plan, revive down lanes whose
  // member is ACTIVE again (fresh PortusClient — a restarted daemon has no
  // memory of the old session), and re-register missing copies. The ops
  // call this themselves on EpochMismatch; call it directly after manually
  // restarting a daemon in a static ring.
  sim::SubTask<> refresh_placement();

  const Placement::Plan& plan() const { return plan_; }
  const ShardManifest& manifest() const { return manifest_; }
  const Stats& stats() const { return stats_; }
  std::uint64_t membership_epoch() const { return membership_epoch_; }

  std::size_t lane_count() const { return lanes_.size(); }
  bool lane_up(std::size_t i) const { return lanes_.at(i)->up; }
  const std::string& lane_endpoint(std::size_t i) const { return lanes_.at(i)->endpoint; }
  PortusClient& lane_client(std::size_t i) { return *lanes_.at(i)->client; }

 private:
  // One placed copy of one shard. `member` is the ring position in the
  // current membership; `lane` indexes lanes_ (lanes are per endpoint and
  // outlive membership changes).
  struct Copy {
    std::uint32_t shard = 0;
    std::uint32_t replica = 0;
    std::uint32_t member = 0;
    std::size_t lane = 0;
    bool registered = false;
    std::uint64_t epoch = 0;  // newest epoch this copy is known to hold
  };

  struct Lane {
    std::string endpoint;
    std::unique_ptr<PortusClient> client;
    std::vector<std::size_t> copy_ids;  // indices into copies_
    bool up = true;
  };

  struct RestoreJob {
    std::size_t copy_id = 0;
    std::uint64_t required_epoch = 0;
    bool done = false;
    bool rerouted = false;
  };

  sim::Process lane_register(Lane& lane, bool* stale);
  sim::Process lane_checkpoint(Lane& lane, std::uint64_t iteration, std::uint64_t* round_max,
                               std::vector<bool>* shard_ok, bool* any_miss, bool* stale);
  sim::Process lane_restore(Lane& lane, std::vector<RestoreJob*> jobs,
                            std::uint64_t* max_epoch, bool* stale);

  sim::SubTask<CheckpointResult> checkpoint_round(std::uint64_t iteration, bool* stale);
  sim::SubTask<RestoreResult> restore_round(bool* stale);

  // Snapshot the membership, recompute plan/manifest/copies, revive lanes,
  // and register unregistered copies (its own EpochMismatch retry loop —
  // a resize can land mid-registration too).
  sim::SubTask<> resolve_placement();

  Lane& lane_for(const std::string& endpoint);
  void mark_lane_down(Lane& lane);
  sim::SubTask<> epoch_backoff(int attempt);
  std::string copy_key(const std::string& endpoint, std::uint32_t shard) const;

  net::Cluster& cluster_;
  net::Node& node_;
  gpu::GpuDevice& gpu_;
  QpRendezvous& rendezvous_;
  Config config_;
  std::string model_name_;
  dnn::Model* model_ = nullptr;  // held for re-registration on re-resolve
  std::vector<std::string> tensor_names_;
  std::vector<Bytes> tensor_sizes_;
  Placement::Plan plan_;
  ShardManifest manifest_;
  std::vector<Copy> copies_;
  // unique_ptr so Lane addresses stay stable across lane creation (running
  // lane coroutines hold references).
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::map<std::string, std::size_t> lane_by_endpoint_;
  std::vector<std::string> ring_endpoints_;  // current membership, in ring order
  std::vector<std::uint64_t> shard_floor_;   // acked-epoch floor per shard
  std::set<std::string> registered_keys_;    // "endpoint|shard" pairs registered
  std::uint64_t membership_epoch_ = 0;
  std::uint32_t effective_shard_count_ = 0;  // fixed at first placement
  Rng jitter_{0xE1A57C1C0FFEEull};
  Stats stats_;
  bool registered_ = false;
};

}  // namespace portus::core::cluster
