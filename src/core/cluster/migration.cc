#include "core/cluster/migration.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strformat.h"
#include "core/cluster/manifest.h"
#include "core/cluster/placement.h"
#include "mem/segment.h"

namespace portus::core::cluster {

namespace {
constexpr const char* kLog = "elastic";
}

ElasticCluster::ElasticCluster(sim::Engine& engine, Config config)
    : engine_{engine}, config_{config} {
  PORTUS_CHECK_ARG(config_.replicas >= 1, "replication factor must be >= 1");
  PORTUS_CHECK_ARG(config_.stream_gbps > 0.0, "streaming bandwidth must be positive");
}

void ElasticCluster::add_member(const std::string& endpoint, PortusDaemon& daemon) {
  PORTUS_CHECK_ARG(membership_.epoch == 0, "ring already sealed; grow it with join()");
  PORTUS_CHECK_ARG(membership_.find(endpoint) == nullptr,
                   "member already known: " + endpoint);
  membership_.members.push_back(Member{endpoint, MemberState::kActive});
  daemons_[endpoint] = &daemon;
}

void ElasticCluster::seal() {
  PORTUS_CHECK(membership_.epoch == 0, "ring already sealed");
  PORTUS_CHECK(!membership_.active_positions().empty(), "cannot seal an empty ring");
  membership_.epoch = 1;
  push_epoch();
}

PortusDaemon* ElasticCluster::daemon(const std::string& endpoint) const {
  const auto it = daemons_.find(endpoint);
  return it != daemons_.end() ? it->second : nullptr;
}

void ElasticCluster::push_epoch() {
  for (const auto& m : membership_.members) {
    if (m.state == MemberState::kDown) continue;
    auto* d = daemon(m.endpoint);
    if (d == nullptr || d->killed()) continue;
    d->set_membership_epoch(membership_.epoch);
  }
}

std::optional<std::uint64_t> ElasticCluster::done_epoch(PortusDaemon& d,
                                                        const std::string& key) {
  try {
    if (MIndex* live = d.find_live_index(key); live != nullptr) {
      const auto slot = live->latest_done_slot();
      if (!slot.has_value()) return std::nullopt;
      return live->slot(*slot).epoch;
    }
    const auto offset = d.model_table().lookup(key);
    if (!offset.has_value()) return std::nullopt;
    const MIndex idx = MIndex::load(d.device(), *offset);
    const auto slot = idx.latest_done_slot();
    if (!slot.has_value()) return std::nullopt;
    return idx.slot(*slot).epoch;
  } catch (const std::exception&) {
    return std::nullopt;  // torn record: nothing usable here
  }
}

sim::SubTask<Bytes> ElasticCluster::migrate_copy(PortusDaemon& src, PortusDaemon& dst,
                                                 const std::string& key,
                                                 std::uint32_t replica) {
  // Source: the newest DONE version, read-only throughout. The source image
  // is never mutated by a migration, so whatever was acked there stays
  // recoverable no matter where the destination crashes.
  MIndex* sidx = src.find_live_index(key);
  std::optional<MIndex> sheld;
  if (sidx == nullptr) {
    const auto offset = src.model_table().lookup(key);
    if (!offset.has_value()) co_return 0;
    sheld.emplace(MIndex::load(src.device(), *offset));
    sidx = &*sheld;
  }
  const auto sslot_idx = sidx->latest_done_slot();
  if (!sslot_idx.has_value()) co_return 0;
  const SlotHeader sslot = sidx->slot(*sslot_idx);
  if (sslot.data_offset == 0) co_return 0;

  // Non-phantom payloads only move with a valid matching CRC block — a
  // stale or torn block means this version cannot be certified end-to-end.
  std::optional<MIndex::PayloadCrcs> crcs;
  if (!sidx->phantom()) {
    crcs = sidx->payload_crcs(*sslot_idx);
    if (!crcs.has_value() || crcs->epoch != sslot.epoch) co_return 0;
  }

  // Destination MIndex: reuse the live session's (a client is registered
  // there right now — two DRAM mirrors of one record would fight), else
  // load the persistent record, else create one from the source's layout.
  MIndex* didx = dst.find_live_index(key);
  std::optional<MIndex> dheld;
  if (didx == nullptr) {
    if (const auto offset = dst.model_table().lookup(key); offset.has_value()) {
      dheld.emplace(MIndex::load(dst.device(), *offset));
    } else {
      RegisterModelMsg reg;
      reg.model_name = key;
      reg.phantom = sidx->phantom();
      reg.shard_id = sidx->shard_id();
      reg.shard_count = sidx->shard_count();
      reg.replica = replica;
      reg.replica_count = sidx->replica_count();
      reg.placement_epoch = sidx->placement_epoch();
      reg.manifest = sidx->manifest();
      for (const auto& t : sidx->tensors()) {
        reg.tensors.push_back(TensorDesc{
            .name = t.name, .dtype = t.dtype, .shape = t.shape, .size = t.size});
      }
      dheld.emplace(MIndex::create(dst.device(), dst.allocator(), reg,
                                   dst.config().coalesce_threshold));
      dst.model_table().insert(key, dheld->record_offset());
    }
    didx = &*dheld;
  }
  if (didx->tensors().size() != sidx->tensors().size()) co_return 0;

  // Stream into the write slot under the checkpoint persist discipline:
  // ACTIVE -> chunked data persists -> payload-CRC block -> DONE at the
  // SOURCE epoch (set_slot bypasses CheckpointTxn on purpose: the epoch is
  // carried, not minted).
  const int w = didx->pick_write_slot();
  didx->ensure_slot(w, dst.allocator());
  didx->set_slot(w, SlotState::kActive, 0);
  const Bytes dbase = didx->slot(w).data_offset;

  Bytes streamed = 0;
  for (std::size_t i = 0; i < sidx->tensors().size(); ++i) {
    const auto& st = sidx->tensors()[i];
    const auto& dt = didx->tensors()[i];
    for (Bytes off = 0; off < st.size; off += config_.stream_chunk) {
      const Bytes n = std::min(config_.stream_chunk, st.size - off);
      mem::copy_bytes(dst.device(), dbase + dt.offset_in_slot + off, src.device(),
                      sslot.data_offset + st.offset_in_slot + off, n);
      dst.device().persist(dbase + dt.offset_in_slot + off, n);
      const Duration wire{static_cast<Duration::rep>(static_cast<double>(n) * 8.0 /
                                                     config_.stream_gbps)};
      co_await engine_.sleep(wire);
      streamed += n;
    }
  }

  if (crcs.has_value()) didx->set_payload_crcs(w, sslot.epoch, crcs->crcs);
  didx->set_slot(w, SlotState::kDone, sslot.epoch);
  if (src.model_table().is_finished(key)) dst.model_table().set_finished(key);

  PLOG_DEBUG(kLog, "migrated {} epoch {}: {} -> {} ({} B)", key, sslot.epoch,
             src.config().endpoint, dst.config().endpoint, streamed);
  co_return streamed;
}

sim::SubTask<std::uint64_t> ElasticCluster::stream_to_plan(const Membership& m) {
  // Discover every sharded model any live member holds, with the placement
  // inputs its persisted manifest carries (a shard's tensor cut is a pure
  // function of (sizes, shard_count), so one manifest describes them all).
  struct ModelInfo {
    std::vector<Bytes> sizes;
    std::uint32_t shard_count = 0;
    std::uint32_t replicas = 0;
    std::uint64_t placement_epoch = 0;
  };
  std::map<std::string, ModelInfo> models;
  for (const auto& member : m.members) {
    if (member.state == MemberState::kDown) continue;
    auto* d = daemon(member.endpoint);
    if (d == nullptr || d->killed()) continue;
    for (const auto& key : d->model_table().names()) {
      const auto cut = key.find("#s");
      if (cut == std::string::npos) continue;
      if (models.count(key.substr(0, cut)) != 0) continue;
      try {
        MIndex* idx = d->find_live_index(key);
        std::optional<MIndex> held;
        if (idx == nullptr) {
          held.emplace(MIndex::load(d->device(), *d->model_table().lookup(key)));
          idx = &*held;
        }
        if (idx->manifest().empty()) continue;
        const auto mf = ShardManifest::decode(idx->manifest());
        ModelInfo info;
        info.sizes.reserve(mf.tensors.size());
        for (const auto& t : mf.tensors) info.sizes.push_back(t.size);
        info.shard_count = mf.shard_count != 0 ? mf.shard_count : mf.daemon_count;
        info.replicas = mf.replicas != 0 ? mf.replicas : config_.replicas;
        info.placement_epoch = mf.placement_epoch;
        models.emplace(mf.model_name, std::move(info));
      } catch (const std::exception&) {
        continue;  // torn copy: another member's manifest will describe it
      }
    }
  }

  const auto active = m.active_positions();
  std::uint64_t moved = 0;
  for (const auto& [model, info] : models) {
    const auto plan = Placement::compute_over(
        model, info.sizes, info.shard_count,
        static_cast<std::uint32_t>(m.members.size()), active, info.replicas,
        info.placement_epoch);
    for (std::uint32_t s = 0; s < plan.shard_daemons.size(); ++s) {
      if (plan.shard_tensors[s].empty()) continue;
      const std::string key = shard_key(model, s);

      // Source: the live member holding the newest DONE epoch of this
      // shard (DRAINING members still serve as sources).
      PortusDaemon* src = nullptr;
      std::uint64_t src_epoch = 0;
      for (const auto& member : m.members) {
        if (member.state == MemberState::kDown) continue;
        auto* d = daemon(member.endpoint);
        if (d == nullptr || d->killed()) continue;
        const auto e = done_epoch(*d, key);
        if (e.has_value() && (src == nullptr || *e > src_epoch)) {
          src = d;
          src_epoch = *e;
        }
      }
      if (src == nullptr) continue;  // nothing committed anywhere yet

      const auto& ring = plan.shard_daemons[s];
      for (std::uint32_t r = 0; r < ring.size(); ++r) {
        auto* d = daemon(m.members[ring[r]].endpoint);
        if (d == nullptr || d->killed()) continue;
        const auto have = done_epoch(*d, key);
        if (have.has_value() && *have >= src_epoch) continue;  // already current
        const Bytes n = co_await migrate_copy(*src, *d, key, r);
        if (n == 0) continue;
        ++moved;
        ++stats_.copies_moved;
        stats_.bytes_streamed += n;
        if (migrated_models_.insert(model).second) ++stats_.models_migrated;
      }
    }
  }
  co_return moved;
}

sim::SubTask<> ElasticCluster::rebalance_to(Membership target) {
  PORTUS_CHECK(membership_.epoch != 0, "seal() the ring before resizing it");

  // Phase 1: pre-copy toward the target placement. Clients keep running
  // against the current epoch the whole time.
  co_await stream_to_plan(target);

  // Phase 2: relocation barrier. Admissions pause on every live daemon
  // (no new checkpoints start mid-switch), the target membership installs
  // under a bumped epoch, the daemons learn it (stale requests now bounce
  // with EpochMismatch), and admissions resume.
  const Time barrier_start = engine_.now();
  std::vector<PortusDaemon*> live;
  for (const auto& member : target.members) {
    if (member.state == MemberState::kDown) continue;
    auto* d = daemon(member.endpoint);
    if (d == nullptr || d->killed()) continue;
    live.push_back(d);
  }
  for (auto* d : live) d->pause_admissions();
  target.epoch = membership_.epoch + 1;
  membership_ = std::move(target);
  ++stats_.epoch_bumps;
  push_epoch();
  for (auto* d : live) d->resume_admissions();
  ++stats_.barriers;
  stats_.barrier_time += engine_.now() - barrier_start;
  PLOG_INFO(kLog, "membership epoch {} installed ({} active members)", membership_.epoch,
            membership_.active_positions().size());

  // Settle: ops admitted before the barrier may still commit on the old
  // placement; give them a grace period and re-stream their commits until
  // a full round moves nothing — only then is every acked epoch reachable
  // under the new membership.
  for (int round = 0; round < config_.max_restream_rounds; ++round) {
    const Duration grace = config_.drain_grace;
    co_await engine_.sleep(grace);
    const auto moved = co_await stream_to_plan(membership_);
    if (moved == 0) break;
  }
}

sim::SubTask<> ElasticCluster::join(const std::string& endpoint, PortusDaemon& daemon) {
  PORTUS_CHECK_ARG(membership_.find(endpoint) == nullptr,
                   "member already known: " + endpoint);
  daemons_[endpoint] = &daemon;
  membership_.members.push_back(Member{endpoint, MemberState::kJoining});
  Membership target = membership_;
  target.find(endpoint)->state = MemberState::kActive;
  PLOG_INFO(kLog, "{} joining (ring position {})", endpoint,
            membership_.members.size() - 1);
  co_await rebalance_to(std::move(target));
}

sim::SubTask<> ElasticCluster::drain(const std::string& endpoint) {
  Member* member = membership_.find(endpoint);
  PORTUS_CHECK_ARG(member != nullptr, "unknown member: " + endpoint);
  PORTUS_CHECK_ARG(member->state == MemberState::kActive,
                   "only an ACTIVE member can drain: " + endpoint);
  PORTUS_CHECK(membership_.active_positions().size() > 1,
               "cannot drain the last ACTIVE member");
  Membership target = membership_;
  target.find(endpoint)->state = MemberState::kDraining;
  PLOG_INFO(kLog, "{} draining", endpoint);
  co_await rebalance_to(std::move(target));
}

void ElasticCluster::decommission(const std::string& endpoint) {
  Member* member = membership_.find(endpoint);
  PORTUS_CHECK_ARG(member != nullptr, "unknown member: " + endpoint);
  PORTUS_CHECK_ARG(member->state == MemberState::kDraining,
                   "decommission requires a completed drain: " + endpoint);
  member->state = MemberState::kDown;
  ++membership_.epoch;
  ++stats_.epoch_bumps;
  push_epoch();
  PLOG_INFO(kLog, "{} decommissioned (epoch {})", endpoint, membership_.epoch);
}

sim::SubTask<> ElasticCluster::repair(const std::string& endpoint) {
  Member* member = membership_.find(endpoint);
  PORTUS_CHECK_ARG(member != nullptr, "unknown member: " + endpoint);
  PORTUS_CHECK_ARG(member->state != MemberState::kDown,
                   "member already DOWN: " + endpoint);
  PORTUS_CHECK(membership_.active_positions().size() > 1,
               "cannot declare the last ACTIVE member failed");
  Membership target = membership_;
  target.find(endpoint)->state = MemberState::kDown;
  PLOG_INFO(kLog, "{} declared permanently failed; re-replicating", endpoint);
  const std::uint64_t before = stats_.copies_moved;
  co_await rebalance_to(std::move(target));
  stats_.repaired_copies += stats_.copies_moved - before;
}

}  // namespace portus::core::cluster
