#include "core/cluster/placement.h"

#include <algorithm>

#include "common/error.h"
#include "common/strformat.h"

namespace portus::core::cluster {

std::uint64_t Placement::fnv1a(std::span<const std::byte> data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const auto b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

std::uint64_t hash_u64(std::uint64_t h, std::uint64_t v) {
  std::byte raw[8];
  for (int i = 0; i < 8; ++i) raw[i] = static_cast<std::byte>(v >> (8 * i));
  return Placement::fnv1a(raw, h);
}

std::uint64_t hash_str(std::uint64_t h, const std::string& s) {
  return Placement::fnv1a(std::as_bytes(std::span{s.data(), s.size()}), h);
}

}  // namespace

Placement::Plan Placement::compute(const std::string& model_name,
                                   std::span<const Bytes> tensor_sizes,
                                   std::uint32_t daemon_count, std::uint32_t replicas,
                                   std::uint64_t placement_epoch) {
  PORTUS_CHECK_ARG(daemon_count >= 1, "placement needs at least one daemon");
  std::vector<std::uint32_t> all(daemon_count);
  for (std::uint32_t i = 0; i < daemon_count; ++i) all[i] = i;
  return compute_over(model_name, tensor_sizes, daemon_count, daemon_count, all,
                      replicas, placement_epoch);
}

Placement::Plan Placement::compute_over(const std::string& model_name,
                                        std::span<const Bytes> tensor_sizes,
                                        std::uint32_t shard_count,
                                        std::uint32_t ring_size,
                                        std::span<const std::uint32_t> active,
                                        std::uint32_t replicas,
                                        std::uint64_t placement_epoch) {
  PORTUS_CHECK_ARG(shard_count >= 1, "placement needs at least one shard");
  PORTUS_CHECK_ARG(!active.empty(), "placement needs at least one active member");
  PORTUS_CHECK_ARG(!tensor_sizes.empty(), "placement over an empty model");
  PORTUS_CHECK_ARG(replicas >= 1, "replication factor must be >= 1");
  for (const auto pos : active) {
    PORTUS_CHECK_ARG(pos < ring_size, "active member position outside the ring");
  }
  const auto targets = static_cast<std::uint32_t>(active.size());
  replicas = std::min(replicas, targets);

  Plan plan;
  plan.model_name = model_name;
  plan.placement_epoch = placement_epoch;
  plan.daemon_count = ring_size;
  plan.shard_count = shard_count;
  plan.replicas = replicas;
  plan.shard_tensors.resize(shard_count);
  plan.shard_bytes.assign(shard_count, 0);
  plan.tensor_shard.resize(tensor_sizes.size());

  // LPT bin packing: largest tensor first, into the lightest shard; ties
  // break on the lower shard id so the order is total and deterministic.
  // Depends only on (sizes, shard_count): a shard's tensor set is stable
  // across membership epochs, so migration moves whole shard copies and
  // never re-cuts a model.
  std::vector<std::uint32_t> order(tensor_sizes.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return tensor_sizes[a] > tensor_sizes[b];
  });
  for (const auto t : order) {
    std::uint32_t best = 0;
    for (std::uint32_t s = 1; s < shard_count; ++s) {
      if (plan.shard_bytes[s] < plan.shard_bytes[best]) best = s;
    }
    plan.tensor_shard[t] = best;
    plan.shard_bytes[best] += tensor_sizes[t];
  }
  for (std::uint32_t t = 0; t < plan.tensor_shard.size(); ++t) {
    plan.shard_tensors[plan.tensor_shard[t]].push_back(t);
  }

  // Ring walk over the *active* members: shard k's primary at the
  // (rot+k)-th active position, replicas on the next R-1. The rotation
  // spreads different models (and re-placements after a ring-epoch bump)
  // across the ring.
  const auto rot = static_cast<std::uint32_t>(
      hash_u64(hash_str(0xcbf29ce484222325ull, model_name), placement_epoch) % targets);
  plan.shard_daemons.resize(shard_count);
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    for (std::uint32_t r = 0; r < replicas; ++r) {
      plan.shard_daemons[s].push_back(active[(rot + s + r) % targets]);
    }
  }
  return plan;
}

std::uint64_t Placement::Plan::digest() const {
  std::uint64_t h = hash_str(0xcbf29ce484222325ull, model_name);
  h = hash_u64(h, placement_epoch);
  h = hash_u64(h, daemon_count);
  h = hash_u64(h, shard_count);
  h = hash_u64(h, replicas);
  for (const auto s : tensor_shard) h = hash_u64(h, s);
  for (const auto& daemons : shard_daemons) {
    for (const auto d : daemons) h = hash_u64(h, d);
  }
  for (const auto b : shard_bytes) h = hash_u64(h, b);
  return h;
}

std::string shard_key(const std::string& model_name, std::uint32_t shard_id) {
  return strf("{}#s{}", model_name, shard_id);
}

}  // namespace portus::core::cluster
