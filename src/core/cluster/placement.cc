#include "core/cluster/placement.h"

#include <algorithm>

#include "common/error.h"
#include "common/strformat.h"

namespace portus::core::cluster {

std::uint64_t Placement::fnv1a(std::span<const std::byte> data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const auto b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

std::uint64_t hash_u64(std::uint64_t h, std::uint64_t v) {
  std::byte raw[8];
  for (int i = 0; i < 8; ++i) raw[i] = static_cast<std::byte>(v >> (8 * i));
  return Placement::fnv1a(raw, h);
}

std::uint64_t hash_str(std::uint64_t h, const std::string& s) {
  return Placement::fnv1a(std::as_bytes(std::span{s.data(), s.size()}), h);
}

}  // namespace

Placement::Plan Placement::compute(const std::string& model_name,
                                   std::span<const Bytes> tensor_sizes,
                                   std::uint32_t daemon_count, std::uint32_t replicas,
                                   std::uint64_t placement_epoch) {
  PORTUS_CHECK_ARG(daemon_count >= 1, "placement needs at least one daemon");
  PORTUS_CHECK_ARG(!tensor_sizes.empty(), "placement over an empty model");
  PORTUS_CHECK_ARG(replicas >= 1, "replication factor must be >= 1");
  replicas = std::min(replicas, daemon_count);

  Plan plan;
  plan.model_name = model_name;
  plan.placement_epoch = placement_epoch;
  plan.daemon_count = daemon_count;
  plan.replicas = replicas;
  plan.shard_tensors.resize(daemon_count);
  plan.shard_bytes.assign(daemon_count, 0);
  plan.tensor_shard.resize(tensor_sizes.size());

  // LPT bin packing: largest tensor first, into the lightest shard; ties
  // break on the lower shard id so the order is total and deterministic.
  std::vector<std::uint32_t> order(tensor_sizes.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return tensor_sizes[a] > tensor_sizes[b];
  });
  for (const auto t : order) {
    std::uint32_t best = 0;
    for (std::uint32_t s = 1; s < daemon_count; ++s) {
      if (plan.shard_bytes[s] < plan.shard_bytes[best]) best = s;
    }
    plan.tensor_shard[t] = best;
    plan.shard_bytes[best] += tensor_sizes[t];
  }
  for (std::uint32_t t = 0; t < plan.tensor_shard.size(); ++t) {
    plan.shard_tensors[plan.tensor_shard[t]].push_back(t);
  }

  // Ring walk: shard k's primary at rot+k, replicas on the next R-1
  // positions. The rotation spreads different models (and re-placements
  // after a ring-epoch bump) across the ring.
  const auto rot = static_cast<std::uint32_t>(
      hash_u64(hash_str(0xcbf29ce484222325ull, model_name), placement_epoch) %
      daemon_count);
  plan.shard_daemons.resize(daemon_count);
  for (std::uint32_t s = 0; s < daemon_count; ++s) {
    for (std::uint32_t r = 0; r < replicas; ++r) {
      plan.shard_daemons[s].push_back((rot + s + r) % daemon_count);
    }
  }
  return plan;
}

std::uint64_t Placement::Plan::digest() const {
  std::uint64_t h = hash_str(0xcbf29ce484222325ull, model_name);
  h = hash_u64(h, placement_epoch);
  h = hash_u64(h, daemon_count);
  h = hash_u64(h, replicas);
  for (const auto s : tensor_shard) h = hash_u64(h, s);
  for (const auto& daemons : shard_daemons) {
    for (const auto d : daemons) h = hash_u64(h, d);
  }
  for (const auto b : shard_bytes) h = hash_u64(h, b);
  return h;
}

std::string shard_key(const std::string& model_name, std::uint32_t shard_id) {
  return strf("{}#s{}", model_name, shard_id);
}

}  // namespace portus::core::cluster
