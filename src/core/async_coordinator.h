// Asynchronous checkpoint coordination (SS III-E, Fig. 8/9).
//
// Portus decouples checkpointing from training: a checkpoint triggered at
// an iteration boundary is *pulled by the daemon* while the next
// iteration's forward/backward runs. Because weights only mutate in the
// update phase, the loop must stall only if the pull has not finished by
// the time U would begin — in practice a small or zero window (Fig. 9(d)).
// Sync mode (Fig. 9(c)) blocks the iteration boundary for the full pull,
// still far cheaper than serialize-and-write baselines.
#pragma once

#include <memory>

#include "core/client.h"
#include "dnn/training.h"
#include "sim/sync.h"

namespace portus::core {

class PortusHook final : public dnn::CheckpointHook {
 public:
  enum class Mode { kSync, kAsync };

  struct Stats {
    std::uint64_t triggered = 0;
    std::uint64_t completed = 0;
    std::uint64_t stalled_updates = 0;  // async pulls that ran into U
    Duration pull_time{0};
    std::uint64_t last_committed_iteration = 0;  // durable restore point
  };

  PortusHook(PortusClient& client, dnn::Model& model, std::uint64_t interval, Mode mode);

  sim::SubTask<> on_iteration_end(std::uint64_t iteration) override;
  sim::SubTask<> before_update(std::uint64_t iteration) override;

  // End-of-run barrier: wait for any in-flight pull.
  sim::SubTask<> drain();

  const Stats& stats() const { return stats_; }

 private:
  sim::Process pull_async(std::uint64_t iteration);

  PortusClient& client_;
  dnn::Model& model_;
  std::uint64_t interval_;
  Mode mode_;
  bool pull_in_flight_ = false;
  std::unique_ptr<sim::SimEvent> pull_done_;
  Stats stats_;
};

}  // namespace portus::core
