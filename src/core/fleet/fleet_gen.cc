#include "core/fleet/fleet_gen.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/strformat.h"

namespace portus::core::fleet {

namespace {

Duration percentile(std::vector<Duration>& sorted, double p) {
  if (sorted.empty()) return Duration{0};
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

FleetGen::FleetGen(net::Cluster& cluster, net::Node& client_node, QpRendezvous& rendezvous,
                   std::vector<std::string> endpoints, FleetConfig config)
    : cluster_{cluster},
      node_{client_node},
      rendezvous_{rendezvous},
      endpoints_{std::move(endpoints)},
      config_{std::move(config)} {
  PORTUS_CHECK_ARG(config_.tenants >= 1, "fleet needs at least one tenant");
  PORTUS_CHECK_ARG(!endpoints_.empty(), "fleet needs at least one daemon endpoint");
  PORTUS_CHECK_ARG(config_.tensors_per_model >= 1, "fleet models need tensors");
}

sim::Process FleetGen::drive(TenantJob& job, std::uint64_t seed) {
  Rng rng{seed};
  auto& client = *job.client;
  try {
    co_await client.connect();
    co_await client.register_model(*job.model);
    const Duration period = job.cls == PriorityClass::kHigh    ? config_.high_period
                            : job.cls == PriorityClass::kBatch ? config_.batch_period
                                                               : config_.normal_period;
    for (int k = 0; k < config_.checkpoints_per_tenant; ++k) {
      // Poisson cadence: exponential think time between checkpoint triggers.
      const double u = rng.uniform_real(0.0, 1.0);
      const double think = -to_seconds(period) * std::log1p(-u);
      const Duration gap = from_seconds(think);
      co_await cluster_.engine().sleep(gap);
      const Time t0 = cluster_.engine().now();
      co_await client.checkpoint(*job.model, static_cast<std::uint64_t>(k) + 1);
      job.latencies.push_back(cluster_.engine().now() - t0);
    }
    if (config_.finish_jobs) co_await client.finish(*job.model);
  } catch (const Error& e) {
    job.failed = true;
    PLOG_INFO("fleet", "tenant {} gave up: {}", job.index, e.what());
  }
}

sim::SubTask<FleetReport> FleetGen::run() {
  jobs_.clear();
  Rng mix_rng{config_.seed};
  const auto gpus = static_cast<int>(node_.gpu_count());

  for (int i = 0; i < config_.tenants; ++i) {
    auto job = std::make_unique<TenantJob>();
    job->index = i;
    const double draw = mix_rng.uniform_real(0.0, 1.0);
    Bytes model_bytes;
    if (draw < config_.high_fraction) {
      job->cls = PriorityClass::kHigh;
      model_bytes = config_.high_model_bytes;
    } else if (draw < config_.high_fraction + config_.batch_fraction) {
      job->cls = PriorityClass::kBatch;
      model_bytes = config_.batch_model_bytes;
    } else {
      job->cls = PriorityClass::kNormal;
      model_bytes = config_.normal_model_bytes;
    }

    auto& gpu = node_.gpu(i % gpus);
    job->model = std::make_unique<dnn::Model>(strf("{}/t{:04}", config_.name_prefix, i), gpu);
    const Bytes per_tensor = model_bytes / static_cast<Bytes>(config_.tensors_per_model);
    for (int t = 0; t < config_.tensors_per_model; ++t) {
      job->model->add_tensor(
          dnn::TensorMeta{.name = strf("w{}", t),
                          .dtype = dnn::DType::kF32,
                          .shape = {static_cast<std::int64_t>(per_tensor / 4)}},
          /*phantom=*/true);
    }

    job->client = std::make_unique<PortusClient>(
        cluster_, node_, gpu, rendezvous_, endpoints_[i % endpoints_.size()]);
    job->client->set_op_timeout(config_.op_timeout);
    job->client->set_tenant(PortusClient::TenantSpec{
        .id = strf("{}-{:04}", config_.name_prefix, i),
        .priority = static_cast<std::uint8_t>(job->cls),
        .requested_capacity = 0,
        .requested_rate = config_.requested_rate});
    auto retry = config_.retry;
    retry.jitter_seed = config_.seed ^ (0x9E3779B97F4A7C15ull * (i + 1));
    job->client->set_retry_policy(retry);
    jobs_.push_back(std::move(job));
  }

  const Time t0 = cluster_.engine().now();
  std::vector<sim::Process> procs;
  procs.reserve(jobs_.size());
  for (auto& job : jobs_) {
    procs.push_back(cluster_.engine().spawn(
        drive(*job, config_.seed ^ (0xD1B54A32D192ED03ull * (job->index + 1)))));
  }
  for (auto& p : procs) co_await p.join();

  FleetReport report;
  report.makespan = cluster_.engine().now() - t0;
  std::vector<Duration> per_class[kPriorityClasses];
  for (const auto& job : jobs_) {
    const int cls = static_cast<int>(job->cls);
    ++report.by_class[cls].tenants;
    report.by_class[cls].checkpoints += job->latencies.size();
    report.checkpoints += job->latencies.size();
    report.bytes += job->model->total_bytes() * job->latencies.size();
    per_class[cls].insert(per_class[cls].end(), job->latencies.begin(), job->latencies.end());
    if (job->failed) ++report.failures;
    const auto& cs = job->client->stats();
    report.retries += cs.retries;
    report.backpressure += cs.backpressure;
    report.reconnects += cs.reconnects;
    report.timeouts += cs.timeouts;
  }
  for (int c = 0; c < kPriorityClasses; ++c) {
    auto& lat = per_class[c];
    std::sort(lat.begin(), lat.end());
    report.by_class[c].p50 = percentile(lat, 0.50);
    report.by_class[c].p99 = percentile(lat, 0.99);
    report.by_class[c].max = lat.empty() ? Duration{0} : lat.back();
  }
  co_return report;
}

}  // namespace portus::core::fleet
