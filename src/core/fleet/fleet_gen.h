// Fleet workload generator: hundreds of simulated training jobs sharing a
// pool of Portus daemons, exercising the multi-tenant admission path
// (core/daemon/tenant.h) the way a production checkpoint service would see
// it — mixed model sizes, mixed priority classes, Poisson checkpoint
// cadences, Backpressure absorbed by client-side retry.
//
// Each tenant is one PortusClient driving one phantom model: registration
// negotiates the tenant's quota, then `checkpoints_per_tenant` checkpoints
// fire with exponential think time between them. The report aggregates
// per-priority-class latency percentiles and fleet throughput — the
// numbers bench/fleet_sweep.cc sweeps across fleet sizes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/client.h"
#include "core/daemon/tenant.h"
#include "dnn/model.h"
#include "net/cluster.h"

namespace portus::core::fleet {

struct FleetConfig {
  int tenants = 8;
  int checkpoints_per_tenant = 4;
  // Tenant ids are "<prefix>-NNNN", model names "<prefix>/tNNNN" — distinct
  // prefixes let several fleets share one daemon pool without colliding.
  std::string name_prefix = "fleet";
  // Priority mix: fractions of the fleet drawn as high / batch; the rest
  // are normal. Model size and cadence are class-correlated — prod jobs
  // are big and checkpoint deliberately, batch jobs are small and spam —
  // so strict priority + WFQ has real asymmetry to arbitrate and the batch
  // tier is the one that saturates into Backpressure.
  double high_fraction = 0.2;
  double batch_fraction = 0.3;
  Bytes high_model_bytes = 128_MiB;
  Bytes normal_model_bytes = 32_MiB;
  Bytes batch_model_bytes = 8_MiB;
  Duration high_period{2'000'000'000};  // mean Poisson cadence per class
  Duration normal_period{800'000'000};
  Duration batch_period{60'000'000};
  int tensors_per_model = 8;
  // Per-tenant requested token-bucket rate (0 = take the daemon's policy
  // default — unlimited unless the daemon config says otherwise).
  Bytes requested_rate = 0;
  Duration op_timeout{0};  // 0 = no watchdog
  PortusClient::RetryPolicy retry{.max_retries = 8};
  std::uint64_t seed = 0x5EEDF1EE7ull;
  // Mark models finished after the run (feeds the repacker garbage).
  bool finish_jobs = false;
};

struct ClassReport {
  int tenants = 0;
  std::uint64_t checkpoints = 0;
  Duration p50{0};
  Duration p99{0};
  Duration max{0};
};

struct FleetReport {
  ClassReport by_class[kPriorityClasses];
  std::uint64_t checkpoints = 0;
  std::uint64_t failures = 0;  // tenants whose op failed after all retries
  std::uint64_t retries = 0;
  std::uint64_t backpressure = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t timeouts = 0;
  Bytes bytes = 0;
  Duration makespan{0};

  double aggregate_gbps() const {
    const double s = to_seconds(makespan);
    return s > 0.0 ? static_cast<double>(bytes) / s / 1e9 : 0.0;
  }
};

class FleetGen {
 public:
  // Clients ride `client_node`'s GPUs round-robin; tenant i dials
  // endpoints[i % endpoints.size()].
  FleetGen(net::Cluster& cluster, net::Node& client_node, QpRendezvous& rendezvous,
           std::vector<std::string> endpoints, FleetConfig config);

  // Drive the whole fleet to completion. Call from inside the engine; the
  // FleetGen must outlive the returned task.
  sim::SubTask<FleetReport> run();

 private:
  struct TenantJob {
    int index = 0;
    PriorityClass cls = PriorityClass::kNormal;
    std::unique_ptr<dnn::Model> model;
    std::unique_ptr<PortusClient> client;
    std::vector<Duration> latencies;
    bool failed = false;
  };

  sim::Process drive(TenantJob& job, std::uint64_t seed);

  net::Cluster& cluster_;
  net::Node& node_;
  QpRendezvous& rendezvous_;
  std::vector<std::string> endpoints_;
  FleetConfig config_;
  std::vector<std::unique_ptr<TenantJob>> jobs_;
};

}  // namespace portus::core::fleet
