#include "core/protocol.h"

namespace portus::core {

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kRegisterModel: return "REGISTER_MODEL";
    case MsgType::kRegisterAck: return "REGISTER_ACK";
    case MsgType::kCheckpointReq: return "DO_CHECKPOINT";
    case MsgType::kCheckpointDone: return "CHECKPOINT_DONE";
    case MsgType::kRestoreReq: return "DO_RESTORE";
    case MsgType::kRestoreDone: return "RESTORE_DONE";
    case MsgType::kFinishJob: return "FINISH_JOB";
    case MsgType::kFinishAck: return "FINISH_ACK";
    case MsgType::kError: return "ERROR";
  }
  return "?";
}

MsgType decode_type(std::span<const std::byte> wire) {
  BinaryReader r{wire};
  return static_cast<MsgType>(r.u8());
}

namespace {

BinaryReader body_reader(std::span<const std::byte> wire, MsgType expected) {
  BinaryReader r{wire};
  const auto tag = static_cast<MsgType>(r.u8());
  if (tag != expected) {
    throw Corruption(std::string{"expected "} + to_string(expected) + ", got " +
                     to_string(tag));
  }
  return r;
}

void put_status(BinaryWriter& w, bool ok, const std::string& error) {
  w.u8(ok ? 1 : 0);
  w.str(error);
}

void check_protocol(std::uint32_t magic, std::uint16_t version, const char* what) {
  if (magic != kProtocolMagic) {
    throw ProtocolMismatch(std::string{what} + ": not a Portus message (bad magic)");
  }
  if (version != kProtocolVersion) {
    throw ProtocolMismatch(std::string{what} + ": protocol version " +
                           std::to_string(version) + ", this build speaks " +
                           std::to_string(kProtocolVersion));
  }
}

}  // namespace

std::vector<std::byte> encode(const RegisterModelMsg& m) {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kRegisterModel));
  w.u32(m.magic);
  w.u16(m.version);
  w.str(m.model_name);
  w.u32(static_cast<std::uint32_t>(m.qp_tokens.size()));
  for (const auto token : m.qp_tokens) w.u64(token);
  w.u8(m.phantom ? 1 : 0);
  w.u32(m.max_sges);
  w.u32(m.shard_id);
  w.u32(m.shard_count);
  w.u32(m.replica);
  w.u32(m.replica_count);
  w.u64(m.placement_epoch);
  w.bytes(m.manifest);
  w.str(m.tenant_id);
  w.u8(m.priority);
  w.u64(m.requested_capacity);
  w.u64(m.requested_rate);
  w.u64(m.membership_epoch);
  w.u32(static_cast<std::uint32_t>(m.tensors.size()));
  for (const auto& t : m.tensors) {
    w.str(t.name);
    w.u8(static_cast<std::uint8_t>(t.dtype));
    w.u32(static_cast<std::uint32_t>(t.shape.size()));
    for (const auto d : t.shape) w.i64(d);
    w.u64(t.size);
    w.u64(t.gpu_addr);
    w.u32(t.rkey);
  }
  return w.take();
}

RegisterModelMsg decode_register_model(std::span<const std::byte> wire) {
  auto r = body_reader(wire, MsgType::kRegisterModel);
  RegisterModelMsg m;
  m.magic = r.u32();
  m.version = r.u16();
  check_protocol(m.magic, m.version, "registration");
  m.model_name = r.str();
  const auto n_tokens = r.u32();
  if (n_tokens > 256) throw Corruption("implausible QP stripe count in registration");
  m.qp_tokens.resize(n_tokens);
  for (auto& token : m.qp_tokens) token = r.u64();
  m.phantom = r.u8() != 0;
  m.max_sges = r.u32();
  if (m.max_sges == 0 || m.max_sges > 1024) {
    throw Corruption("implausible gather capability in registration");
  }
  m.shard_id = r.u32();
  m.shard_count = r.u32();
  m.replica = r.u32();
  m.replica_count = r.u32();
  if (m.shard_count == 0 || m.shard_id >= m.shard_count || m.replica_count == 0 ||
      m.replica >= m.replica_count) {
    throw Corruption("implausible shard identity in registration");
  }
  m.placement_epoch = r.u64();
  m.manifest = r.bytes();
  m.tenant_id = r.str();
  m.priority = r.u8();
  if (m.priority > 2) throw Corruption("implausible priority class in registration");
  m.requested_capacity = r.u64();
  m.requested_rate = r.u64();
  m.membership_epoch = r.u64();
  const auto count = r.u32();
  if (count > 1u << 20) throw Corruption("implausible tensor count in registration");
  m.tensors.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    TensorDesc t;
    t.name = r.str();
    t.dtype = static_cast<dnn::DType>(r.u8());
    const auto ndim = r.u32();
    if (ndim > 16) throw Corruption("implausible tensor rank in registration");
    t.shape.resize(ndim);
    for (auto& d : t.shape) d = r.i64();
    t.size = r.u64();
    t.gpu_addr = r.u64();
    t.rkey = r.u32();
    m.tensors.push_back(std::move(t));
  }
  return m;
}

std::vector<std::byte> encode(const RegisterAckMsg& m) {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kRegisterAck));
  w.u32(m.magic);
  w.u16(m.version);
  put_status(w, m.ok, m.error);
  w.u32(m.stripes);
  w.u32(m.max_sges);
  w.u64(m.granted_capacity);
  w.u64(m.granted_rate);
  w.u32(m.granted_wr_slots);
  w.u8(m.epoch_mismatch ? 1 : 0);
  w.u64(m.current_membership_epoch);
  return w.take();
}

RegisterAckMsg decode_register_ack(std::span<const std::byte> wire) {
  auto r = body_reader(wire, MsgType::kRegisterAck);
  RegisterAckMsg m;
  m.magic = r.u32();
  m.version = r.u16();
  // The client-side mirror of the daemon's registration check: a stale
  // daemon's ack is rejected before its body layout is trusted.
  check_protocol(m.magic, m.version, "registration ack");
  m.ok = r.u8() != 0;
  m.error = r.str();
  m.stripes = r.u32();
  m.max_sges = r.u32();
  m.granted_capacity = r.u64();
  m.granted_rate = r.u64();
  m.granted_wr_slots = r.u32();
  m.epoch_mismatch = r.u8() != 0;
  m.current_membership_epoch = r.u64();
  return m;
}

std::vector<std::byte> encode(const CheckpointReqMsg& m) {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kCheckpointReq));
  w.str(m.model_name);
  w.u64(m.iteration);
  w.u32(static_cast<std::uint32_t>(m.dirty_indices.size()));
  for (const auto i : m.dirty_indices) w.u32(i);
  w.u64(m.membership_epoch);
  return w.take();
}

CheckpointReqMsg decode_checkpoint_req(std::span<const std::byte> wire) {
  auto r = body_reader(wire, MsgType::kCheckpointReq);
  CheckpointReqMsg m;
  m.model_name = r.str();
  m.iteration = r.u64();
  const auto n = r.u32();
  if (n > 1u << 20) throw Corruption("implausible dirty-set size");
  m.dirty_indices.resize(n);
  for (auto& i : m.dirty_indices) i = r.u32();
  m.membership_epoch = r.u64();
  return m;
}

std::vector<std::byte> encode(const CheckpointDoneMsg& m) {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kCheckpointDone));
  w.str(m.model_name);
  w.u64(m.epoch);
  put_status(w, m.ok, m.error);
  w.u32(m.payload_crc);
  w.u8(m.backpressure ? 1 : 0);
  w.u64(m.retry_after_ns);
  w.u8(m.epoch_mismatch ? 1 : 0);
  w.u64(m.current_epoch);
  return w.take();
}

CheckpointDoneMsg decode_checkpoint_done(std::span<const std::byte> wire) {
  auto r = body_reader(wire, MsgType::kCheckpointDone);
  CheckpointDoneMsg m;
  m.model_name = r.str();
  m.epoch = r.u64();
  m.ok = r.u8() != 0;
  m.error = r.str();
  m.payload_crc = r.u32();
  m.backpressure = r.u8() != 0;
  m.retry_after_ns = r.u64();
  m.epoch_mismatch = r.u8() != 0;
  m.current_epoch = r.u64();
  return m;
}

std::vector<std::byte> encode(const RestoreReqMsg& m) {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kRestoreReq));
  w.str(m.model_name);
  w.u64(m.required_epoch);
  w.u64(m.membership_epoch);
  return w.take();
}

RestoreReqMsg decode_restore_req(std::span<const std::byte> wire) {
  auto r = body_reader(wire, MsgType::kRestoreReq);
  RestoreReqMsg m;
  m.model_name = r.str();
  m.required_epoch = r.u64();
  m.membership_epoch = r.u64();
  return m;
}

std::vector<std::byte> encode(const RestoreDoneMsg& m) {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kRestoreDone));
  w.str(m.model_name);
  w.u64(m.epoch);
  put_status(w, m.ok, m.error);
  w.u32(m.payload_crc);
  w.u8(m.backpressure ? 1 : 0);
  w.u64(m.retry_after_ns);
  w.u8(m.epoch_mismatch ? 1 : 0);
  w.u64(m.current_epoch);
  return w.take();
}

RestoreDoneMsg decode_restore_done(std::span<const std::byte> wire) {
  auto r = body_reader(wire, MsgType::kRestoreDone);
  RestoreDoneMsg m;
  m.model_name = r.str();
  m.epoch = r.u64();
  m.ok = r.u8() != 0;
  m.error = r.str();
  m.payload_crc = r.u32();
  m.backpressure = r.u8() != 0;
  m.retry_after_ns = r.u64();
  m.epoch_mismatch = r.u8() != 0;
  m.current_epoch = r.u64();
  return m;
}

std::vector<std::byte> encode(const FinishJobMsg& m) {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kFinishJob));
  w.str(m.model_name);
  return w.take();
}

FinishJobMsg decode_finish_job(std::span<const std::byte> wire) {
  auto r = body_reader(wire, MsgType::kFinishJob);
  FinishJobMsg m;
  m.model_name = r.str();
  return m;
}

}  // namespace portus::core
