#include "core/portusctl.h"

#include "common/strformat.h"

namespace portus::core {

std::vector<Portusctl::ModelInfo> Portusctl::view() {
  std::vector<ModelInfo> out;
  for (const auto& name : daemon_.model_table().names()) {
    const MIndex* live = daemon_.find_live_index(name);
    std::optional<MIndex> loaded;
    if (live == nullptr) loaded.emplace(daemon_.load_index(name));
    const MIndex& index = live != nullptr ? *live : *loaded;

    ModelInfo info;
    info.name = name;
    info.layers = index.tensors().size();
    info.slot_size = index.slot_size();
    info.phantom = index.phantom();
    for (int i = 0; i < 2; ++i) {
      info.slots[i] = SlotInfo{index.slot(i).state, index.slot(i).epoch};
    }
    info.restorable = index.latest_done_slot().has_value();
    out.push_back(std::move(info));
  }
  return out;
}

std::string Portusctl::render_view() {
  std::string out =
      strf("{:<24}{:>8}{:>12}  {:<16}{:<16}{}\n", "MODEL", "LAYERS", "SLOT-SIZE",
           "SLOT0", "SLOT1", "RESTORABLE");
  for (const auto& m : view()) {
    out += strf("{:<24}{:>8}{:>12}  {:<16}{:<16}{}\n", m.name, m.layers,
                format_bytes(m.slot_size),
                strf("{}@{}", to_string(m.slots[0].state), m.slots[0].epoch),
                strf("{}@{}", to_string(m.slots[1].state), m.slots[1].epoch),
                m.restorable ? "yes" : "NO");
  }
  return out;
}

std::string Portusctl::render_stats() {
  const auto& s = daemon_.stats();
  std::string out = "--- daemon ---\n";
  out += strf("{:<28}{}\n", "registrations", s.registrations);
  out += strf("{:<28}{}\n", "checkpoints", s.checkpoints);
  out += strf("{:<28}{}\n", "restores", s.restores);
  out += strf("{:<28}{}\n", "failed ops", s.failed_ops);
  out += strf("{:<28}{}\n", "bytes pulled", format_bytes(s.bytes_pulled));
  out += strf("{:<28}{}\n", "bytes pushed", format_bytes(s.bytes_pushed));
  out += "--- pipelined datapath ---\n";
  // Fleet-scale counters (chunks, WRs, doorbells) pass 7 digits long before
  // a daemon restarts; humanize them so the table stays column-aligned.
  out += strf("{:<28}{}\n", "chunks posted", format_count(s.chunks_posted));
  out += strf("{:<28}{} rdma / {} local\n", "chunk mix", format_count(s.rdma_chunks),
              format_count(s.local_chunks));
  out += strf("{:<28}{}\n", "rdma wrs posted", format_count(s.wrs_posted));
  out += strf("{:<28}{}\n", "extents coalesced", format_count(s.extents_coalesced));
  out += strf("{:<28}{:.2f}\n", "mean sges per wr",
              s.wrs_posted > 0
                  ? static_cast<double>(s.sges_posted) / static_cast<double>(s.wrs_posted)
                  : 0.0);
  out += strf("{:<28}{}\n", "bytes per wr",
              format_bytes(static_cast<Bytes>(s.bytes_per_wr())));
  out += strf("{:<28}{}\n", "peak window occupancy", s.peak_window);
  out += strf("{:<28}{:.2f}\n", "mean window occupancy", s.mean_window());
  out += strf("{:<28}{:.1f} us\n", "mean queue delay",
              to_seconds(s.mean_queue_delay()) * 1e6);
  out += strf("{:<28}{:.1f} us\n", "max queue delay",
              to_seconds(s.queue_delay_max) * 1e6);
  out += strf("{:<28}{}\n", "doorbells rung", format_count(s.doorbells));
  out += strf("{:<28}{:.2f}\n", "doorbells per window", s.doorbells_per_window());
  out += strf("{:<28}{:.2f}\n", "wrs per doorbell", s.wrs_per_doorbell());
  out += "--- allocator shards ---\n";
  for (const auto& sh : daemon_.allocator().shard_stats()) {
    out += strf("shard {:<3} {:>10} live {:>10} free {:>10} rsvd  "
                "{:>4}/{:<4} entries  {:>6} allocs {:>6} frees {:>6} refills "
                "{:>6} steals\n",
                sh.shard, format_bytes(sh.live), format_bytes(sh.free_listed),
                format_bytes(sh.reserved), sh.entries, sh.capacity,
                format_count(sh.allocs), format_count(sh.frees),
                format_count(sh.refills), format_count(sh.steals));
  }
  return out;
}

std::string Portusctl::render_tenants() {
  std::string out = "--- tenants ---\n";
  const TenantRegistry* reg = daemon_.tenants();
  if (reg == nullptr) return out + "tenancy disabled on this daemon\n";

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"TENANT", "CLASS", "MODELS", "CHARGED", "CAPACITY", "RATE", "WR",
                  "ADMITTED", "REJECTED", "PACED", "QWAIT-MAX"});
  for (const Tenant* t : reg->tenants()) {
    rows.push_back(
        {t->id, to_string(t->quota.priority), format_count(t->usage.models),
         format_bytes(t->usage.charged_bytes),
         t->quota.capacity_bytes > 0 ? format_bytes(t->quota.capacity_bytes) : "unlimited",
         t->quota.rate_bytes_per_sec > 0
             ? format_bandwidth(Bandwidth::bytes_per_sec(
                   static_cast<double>(t->quota.rate_bytes_per_sec)))
             : "unpaced",
         t->quota.wr_slots > 0 ? strf("{}", t->quota.wr_slots) : "-",
         format_count(t->usage.admitted),
         format_count(t->usage.rejected + t->usage.quota_rejects),
         format_duration(t->usage.paced_total), format_duration(t->usage.queue_wait_max)});
  }
  out += format_table(rows, "<<>>>>>>>>>");

  if (const AdmissionController* adm = daemon_.admission(); adm != nullptr) {
    const auto& s = adm->stats();
    out += strf(
        "admission: {} inflight, {} queued, {} admitted, {} rejected, "
        "{} paced, {} pauses ({} paused)\n",
        adm->inflight(), adm->queued(), format_count(s.admitted),
        format_count(s.rejected), format_count(s.paced), s.pauses,
        format_duration(s.paused_total));
  }
  return out;
}

std::string Portusctl::render_fsck(const Fsck::Report& r) {
  std::string out = strf("--- fsck ({}) ---\n", r.repaired ? "repair" : "verify-only");
  out += strf("{:<28}{}\n", "models scanned", r.models_scanned);
  out += strf("{:<28}{} shards, header {}\n", "alloc table",
              r.shard_tables, r.alloc_header_valid ? "ok" : "INVALID");
  out += strf("{:<28}{}\n", "torn alloc entries", r.torn_entries);
  out += strf("{:<28}{}\n", "torn records", r.torn_records);
  out += strf("{:<28}{}\n", "ACTIVE slots demoted", r.active_demoted);
  out += strf("{:<28}{}\n", "corrupt slots demoted", r.corrupt_demoted);
  out += strf("{:<28}{}\n", "tensors failing CRC", r.corrupt_tensors);
  out += strf("{:<28}{}\n", "orphaned extents", r.orphaned_extents);
  out += strf("{:<28}{}\n", "overlap violations", r.overlap_violations);
  if (r.repaired) {
    out += strf("{:<28}{}\n", "bytes freed", format_bytes(r.freed));
    out += strf("{:<28}{}\n", "leaked bytes adopted", format_bytes(r.gaps_adopted));
    out += strf("{:<28}{}\n", "tail compacted", format_bytes(r.compacted));
  }
  out += strf("image {}\n", r.clean() ? "clean" : "had inconsistencies");
  return out;
}

sim::SubTask<storage::CheckpointFile> Portusctl::dump(const std::string& model_name) {
  const MIndex* live = daemon_.find_live_index(model_name);
  std::optional<MIndex> loaded;
  if (live == nullptr) loaded.emplace(daemon_.load_index(model_name));
  const MIndex& index = live != nullptr ? *live : *loaded;

  const auto slot_idx = index.latest_done_slot();
  if (!slot_idx.has_value()) throw NotFound("no restorable version of " + model_name);
  const auto& slot = index.slot(*slot_idx);

  auto& device = daemon_.device();
  auto& engine = daemon_.node().engine();

  storage::CheckpointFile file;
  file.model_name = model_name;

  Bytes total = 0;
  for (const auto& t : index.tensors()) total += t.size;

  // PMEM read of the whole slot + CPU packing into the container format —
  // this is the only place Portus ever serializes, and it is off the
  // training path (SS VI "Lessons", serialization only on archive/share).
  co_await daemon_.node().devdax_read_channel().transfer(total);
  co_await engine.sleep(daemon_.node().serialize_time(total));

  for (const auto& t : index.tensors()) {
    storage::SerializedTensor st;
    st.meta.name = t.name;
    st.meta.dtype = t.dtype;
    st.meta.shape = t.shape;
    if (!index.phantom()) {
      st.data = device.read(slot.data_offset + t.offset_in_slot, t.size);
    } else {
      st.data.assign(t.size, std::byte{0});
    }
    file.tensors.push_back(std::move(st));
  }
  co_return file;
}

sim::SubTask<Bytes> Portusctl::dump_to(const std::string& model_name,
                                       storage::CheckpointStorage& storage,
                                       std::string path) {
  auto file = co_await dump(model_name);
  const auto container = storage::CheckpointSerializer::serialize(file);
  co_await storage.write_file(std::move(path), container.size(), &container);
  co_return container.size();
}

}  // namespace portus::core
