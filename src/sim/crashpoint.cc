#include "sim/crashpoint.h"

#include <sstream>

#include "common/error.h"

namespace portus::sim {

CrashpointRecorder::CrashpointRecorder(pmem::PmemDevice& device, Options options)
    : device_{device}, options_{options} {
  PORTUS_CHECK_ARG(options_.stride >= 1, "crashpoint stride must be >= 1");
  device_.set_persist_observer(
      [this](std::uint64_t seq, bool after) { on_boundary(seq, after); });
  attached_ = true;
}

CrashpointRecorder::~CrashpointRecorder() { detach(); }

void CrashpointRecorder::detach() {
  if (!attached_) return;
  device_.set_persist_observer({});
  attached_ = false;
}

void CrashpointRecorder::on_boundary(std::uint64_t seq, bool after) {
  if (seq % options_.stride != 0) return;
  if (after && !options_.both_phases) return;
  if (!after) {
    // Snapshot once per fence; the after-phase point shares it (a persist
    // changes durability state, never byte contents).
    std::ostringstream img;
    device_.save_image(img);
    current_image_ = std::make_shared<const std::string>(img.str());
  }
  PORTUS_CHECK(current_image_ != nullptr, "crashpoint after-phase with no snapshot");
  points_.push_back(CrashPoint{.ordinal = points_.size(),
                               .persist_seq = seq,
                               .after_persist = after,
                               .image = current_image_,
                               .dirty = device_.dirty_ranges()});
}

void CrashpointRecorder::materialize(const CrashPoint& point, pmem::PmemDevice& target,
                                     std::uint64_t seed) {
  PORTUS_CHECK_ARG(point.image != nullptr, "crash point carries no snapshot");
  // The snapshot holds *all* bytes as of the boundary, volatile ones
  // included: restore it, declare everything durable, then resurrect the
  // recorded dirty set and let the power cut tear exactly those lines.
  std::istringstream in{*point.image};
  target.load_image(in);
  target.persist_all();
  for (const auto& [start, end] : point.dirty) {
    target.mark_dirty(start, end - start);
  }
  target.power_cut(seed);
}

}  // namespace portus::sim
