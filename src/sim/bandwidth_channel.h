// Fluid-flow (processor sharing) bandwidth channel.
//
// Models a shared link/device with capacity C. Concurrent transfers are
// "flows"; instantaneous rates are assigned by max-min fair sharing with an
// optional per-flow rate cap (water-filling): flows whose cap is below the
// fair share get their cap, the residual capacity is split among the rest.
//
// This is how contention emerges in the reproduction: e.g. 16 Megatron
// shards pulled concurrently through one storage-server NIC each see
// ~C/16 until some finish, after which the survivors speed up — matching
// the aggregate-bandwidth behaviour the paper reports in Fig. 14.
//
// Usage (inside a Process):
//   co_await channel.transfer(bytes, per_flow_cap);
#pragma once

#include <coroutine>
#include <cstdint>
#include <list>
#include <string>

#include "common/units.h"
#include "sim/engine.h"

namespace portus::sim {

// Optional concurrency-degradation model: some devices (notably Optane PMEM,
// per Izraelevitz et al. and the paper's ref [41]) deliver *less* aggregate
// bandwidth as writer count grows. Effective capacity with n active flows:
//   C_eff(n) = C / (1 + beta * max(0, n - n0))
// beta = 0 (default) is an ideal link.
struct DegradationModel {
  double beta = 0.0;
  int n0 = 1;
};

class BandwidthChannel final : public Resettable {
 public:
  BandwidthChannel(Engine& engine, Bandwidth capacity, std::string name,
                   DegradationModel degradation = {});
  ~BandwidthChannel();
  BandwidthChannel(const BandwidthChannel&) = delete;
  BandwidthChannel& operator=(const BandwidthChannel&) = delete;

  void reset_waiters() noexcept override;

  struct Flow {
    double remaining_bytes;
    double cap_bps;   // per-flow rate cap (path bottleneck elsewhere)
    double rate_bps;  // current assigned rate
    std::coroutine_handle<> waiter;
    std::uint64_t id;
  };

  struct TransferAwaitable {
    BandwidthChannel& chan;
    Bytes bytes;
    Bandwidth cap;
    bool await_ready() const noexcept { return bytes == 0; }
    void await_suspend(std::coroutine_handle<> h) { chan.start_flow(bytes, cap, h); }
    void await_resume() const noexcept {}
  };

  // Transfer `bytes` through the channel; completes when the flow's bytes
  // have drained at the dynamically shared rate. `flow_cap` bounds this
  // flow's rate (e.g. the GPU BAR read limit on one endpoint of the path).
  TransferAwaitable transfer(Bytes bytes, Bandwidth flow_cap = Bandwidth::unlimited()) {
    return TransferAwaitable{*this, bytes, flow_cap};
  }

  // Time a transfer of `bytes` would take if it ran alone right now.
  Duration uncontended_time(Bytes bytes, Bandwidth flow_cap = Bandwidth::unlimited()) const;

  Bandwidth capacity() const { return capacity_; }
  int active_flows() const { return static_cast<int>(flows_.size()); }
  double total_bytes_transferred() const { return total_bytes_; }
  // Integral of (aggregate rate / capacity) dt — "busy seconds" for
  // utilization reporting.
  double busy_seconds() const { return busy_seconds_; }
  const std::string& name() const { return name_; }

 private:
  friend struct TransferAwaitable;

  void start_flow(Bytes bytes, Bandwidth cap, std::coroutine_handle<> waiter);
  void settle();           // account progress since last_update_
  void assign_rates();     // water-filling with per-flow caps
  void schedule_next_completion();

  double effective_capacity_bps() const;

  Engine& engine_;
  Bandwidth capacity_;
  std::string name_;
  DegradationModel degradation_;
  std::list<Flow> flows_;
  Time last_update_ = Time{0};
  std::uint64_t next_flow_id_ = 0;
  std::uint64_t event_generation_ = 0;  // invalidates stale completion events
  double total_bytes_ = 0.0;
  double busy_seconds_ = 0.0;
};

}  // namespace portus::sim
