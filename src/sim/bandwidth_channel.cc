#include "sim/bandwidth_channel.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace portus::sim {

namespace {
// Flows with fewer remaining bytes than this are considered complete;
// guards against floating-point residue causing zero-length reschedules.
constexpr double kEpsilonBytes = 1e-6;
}  // namespace

BandwidthChannel::BandwidthChannel(Engine& engine, Bandwidth capacity, std::string name,
                                   DegradationModel degradation)
    : engine_{engine}, capacity_{capacity}, name_{std::move(name)},
      degradation_{degradation} {
  engine_.register_resettable(this);
}

BandwidthChannel::~BandwidthChannel() { engine_.deregister_resettable(this); }

void BandwidthChannel::reset_waiters() noexcept {
  flows_.clear();
  ++event_generation_;  // invalidate any still-queued completion callbacks
  last_update_ = engine_.now();
}

double BandwidthChannel::effective_capacity_bps() const {
  const int n = static_cast<int>(flows_.size());
  const int excess = n > degradation_.n0 ? n - degradation_.n0 : 0;
  return capacity_.bytes_per_second() / (1.0 + degradation_.beta * excess);
}

Duration BandwidthChannel::uncontended_time(Bytes bytes, Bandwidth flow_cap) const {
  return min(capacity_, flow_cap).time_for(bytes);
}

void BandwidthChannel::start_flow(Bytes bytes, Bandwidth cap, std::coroutine_handle<> waiter) {
  settle();
  flows_.push_back(Flow{static_cast<double>(bytes), cap.bytes_per_second(), 0.0, waiter,
                        next_flow_id_++});
  assign_rates();
  schedule_next_completion();
}

void BandwidthChannel::settle() {
  const Time now = engine_.now();
  const double elapsed = to_seconds(now - last_update_);
  last_update_ = now;
  if (elapsed <= 0.0 || flows_.empty()) return;

  double aggregate = 0.0;
  for (auto it = flows_.begin(); it != flows_.end();) {
    const double moved = std::min(it->remaining_bytes, it->rate_bps * elapsed);
    it->remaining_bytes -= moved;
    total_bytes_ += moved;
    aggregate += it->rate_bps;
    if (it->remaining_bytes <= kEpsilonBytes) {
      engine_.resume_later(it->waiter);
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  if (!capacity_.is_unlimited()) {
    busy_seconds_ += elapsed * std::min(1.0, aggregate / capacity_.bytes_per_second());
  }
}

void BandwidthChannel::assign_rates() {
  if (flows_.empty()) return;

  // Water-filling: hand capped flows their cap whenever the cap is below the
  // running fair share, then split the residual evenly among the rest.
  std::vector<Flow*> order;
  order.reserve(flows_.size());
  for (auto& f : flows_) order.push_back(&f);
  std::sort(order.begin(), order.end(),
            [](const Flow* a, const Flow* b) { return a->cap_bps < b->cap_bps; });

  double remaining_capacity = effective_capacity_bps();
  std::size_t remaining_flows = order.size();
  for (Flow* f : order) {
    const double fair = remaining_capacity / static_cast<double>(remaining_flows);
    f->rate_bps = std::min(f->cap_bps, fair);
    remaining_capacity -= f->rate_bps;
    --remaining_flows;
  }
}

void BandwidthChannel::schedule_next_completion() {
  if (flows_.empty()) return;

  double min_seconds = std::numeric_limits<double>::infinity();
  for (const auto& f : flows_) {
    if (f.rate_bps <= 0.0) continue;
    min_seconds = std::min(min_seconds, f.remaining_bytes / f.rate_bps);
  }
  if (!std::isfinite(min_seconds)) return;  // all flows stalled (capacity 0)

  // Round up to the next nanosecond: truncation would leave fractional
  // bytes behind and reschedule a zero-length event forever.
  const auto generation = ++event_generation_;
  engine_.schedule(from_seconds(min_seconds) + Duration{1}, [this, generation] {
    if (generation != event_generation_) return;  // superseded by a newer change
    settle();
    assign_rates();
    schedule_next_completion();
  });
}

}  // namespace portus::sim
