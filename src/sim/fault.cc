#include "sim/fault.h"

namespace portus::sim {

const char* to_string(FaultMode m) {
  switch (m) {
    case FaultMode::kCrash: return "crash";
    case FaultMode::kHang: return "hang";
  }
  return "?";
}

void FaultInjector::register_target(const std::string& name, KillFn kill) {
  PORTUS_CHECK_ARG(kill != nullptr, "fault target needs a kill callback");
  targets_[name] = Target{std::move(kill), /*killed=*/false};
}

void FaultInjector::deregister_target(const std::string& name) { targets_.erase(name); }

void FaultInjector::kill_now(const std::string& name, FaultMode mode) {
  PORTUS_CHECK_ARG(targets_.contains(name), "unknown fault target: " + name);
  fire(name, mode);
}

void FaultInjector::kill_after(const std::string& name, Duration delay, FaultMode mode) {
  PORTUS_CHECK_ARG(targets_.contains(name), "unknown fault target: " + name);
  engine_.schedule(delay, [this, name, mode] { fire(name, mode); });
}

void FaultInjector::fire(const std::string& name, FaultMode mode) {
  const auto it = targets_.find(name);
  if (it == targets_.end() || it->second.killed) return;  // late-firing no-op
  it->second.killed = true;
  ++kills_fired_;
  it->second.kill(mode);
}

bool FaultInjector::killed(const std::string& name) const {
  const auto it = targets_.find(name);
  return it != targets_.end() && it->second.killed;
}

std::vector<std::string> FaultInjector::targets() const {
  std::vector<std::string> out;
  out.reserve(targets_.size());
  for (const auto& [name, _] : targets_) out.push_back(name);
  return out;
}

}  // namespace portus::sim
