#include "sim/fault.h"

#include "common/logging.h"

namespace portus::sim {

const char* to_string(FaultMode m) {
  switch (m) {
    case FaultMode::kCrash: return "crash";
    case FaultMode::kHang: return "hang";
    case FaultMode::kPowerCut: return "power-cut";
  }
  return "?";
}

void FaultInjector::register_target(const std::string& name, KillFn kill) {
  PORTUS_CHECK_ARG(kill != nullptr, "fault target needs a kill callback");
  const auto it = targets_.find(name);
  if (it != targets_.end()) {
    PLOG_INFO("faults", "target {} re-registered (was {}; armed faults against the old "
              "incarnation are now inert)",
              name, it->second.killed ? "killed" : "alive");
  }
  targets_[name] = Target{std::move(kill), /*killed=*/false, ++next_generation_};
}

void FaultInjector::deregister_target(const std::string& name) { targets_.erase(name); }

void FaultInjector::kill_now(const std::string& name, FaultMode mode) {
  PORTUS_CHECK_ARG(targets_.contains(name), "unknown fault target: " + name);
  fire(name, mode, targets_.at(name).generation);
}

void FaultInjector::kill_after(const std::string& name, Duration delay, FaultMode mode) {
  PORTUS_CHECK_ARG(targets_.contains(name), "unknown fault target: " + name);
  // Capture the incarnation the fault was armed against: if the target is
  // re-registered (daemon restart) before the delay elapses, firing against
  // the replacement would kill a process the test never aimed at.
  const auto generation = targets_.at(name).generation;
  engine_.schedule(delay, [this, name, mode, generation] { fire(name, mode, generation); });
}

void FaultInjector::fire(const std::string& name, FaultMode mode,
                         std::uint64_t generation) {
  const auto it = targets_.find(name);
  if (it == targets_.end() || it->second.killed ||
      it->second.generation != generation) {
    return;  // deregistered, already dead, or a newer incarnation: no-op
  }
  it->second.killed = true;
  ++kills_fired_;
  it->second.kill(mode);
}

bool FaultInjector::killed(const std::string& name) const {
  const auto it = targets_.find(name);
  return it != targets_.end() && it->second.killed;
}

std::vector<std::string> FaultInjector::targets() const {
  std::vector<std::string> out;
  out.reserve(targets_.size());
  for (const auto& [name, _] : targets_) out.push_back(name);
  return out;
}

}  // namespace portus::sim
