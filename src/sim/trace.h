// Timeline tracing: records named spans against the virtual clock and
// exports them in the Chrome trace-event format (chrome://tracing /
// https://ui.perfetto.dev), so a checkpoint's anatomy — F/B/U phases,
// control-plane round trips, per-tensor pulls, flag flips — can be inspected
// visually. This is the observability story a production daemon would ship
// with; the `timeline_trace` example writes a Fig. 9-style trace.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"
#include "sim/engine.h"

namespace portus::sim {

class Tracer {
 public:
  explicit Tracer(Engine& engine) : engine_{engine} {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // RAII span: open on construction, closed on destruction (or end()).
  class [[nodiscard]] Span {
   public:
    Span() = default;
    Span(Span&& o) noexcept
        : tracer_{std::exchange(o.tracer_, nullptr)}, index_{o.index_} {}
    Span& operator=(Span&& o) noexcept {
      if (this != &o) {
        end();
        tracer_ = std::exchange(o.tracer_, nullptr);
        index_ = o.index_;
      }
      return *this;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { end(); }

    void end() {
      if (tracer_ != nullptr) std::exchange(tracer_, nullptr)->close(index_);
    }

   private:
    friend class Tracer;
    Span(Tracer* tracer, std::size_t index) : tracer_{tracer}, index_{index} {}
    Tracer* tracer_ = nullptr;
    std::size_t index_ = 0;
  };

  // Open a span on a named track (rendered as one row per track).
  Span span(std::string name, std::string track);

  // Instantaneous event marker.
  void instant(std::string name, std::string track);

  // Numeric counter sample (rendered as a chart row).
  void counter(std::string name, double value);

  std::size_t event_count() const { return events_.size(); }

  // Chrome trace-event JSON ("traceEvents" array; ts in microseconds).
  void write_chrome_json(std::ostream& out) const;

 private:
  struct Event {
    enum class Kind : std::uint8_t { kSpan, kInstant, kCounter };
    Kind kind;
    std::string name;
    std::string track;
    Time begin{};
    Time end{};
    double value = 0.0;
    bool open = false;
  };

  void close(std::size_t index);
  std::uint64_t track_id(const std::string& track);

  Engine& engine_;
  std::vector<Event> events_;
  std::vector<std::string> tracks_;
};

}  // namespace portus::sim
