// Inline awaitable definitions for Engine. Separated to keep engine.h
// readable; included at the bottom of engine.h.
#pragma once

#include <coroutine>

#include "sim/engine.h"  // IWYU pragma: keep

namespace portus::sim {

struct SleepAwaitable {
  Engine& engine;
  Duration delay;
  bool await_ready() const noexcept { return delay <= kZeroDuration; }
  void await_suspend(std::coroutine_handle<> h) const { engine.resume_later(h, delay); }
  void await_resume() const noexcept {}
};

inline auto Engine::sleep(Duration d) { return SleepAwaitable{*this, d}; }

}  // namespace portus::sim
