// SubTask<T>: a lazily-started, awaitable coroutine for composing simulation
// operations ("do a PCIe copy, then an RDMA read, then a PMEM flush") inside
// a Process without spawning separately scheduled processes.
//
//   sim::SubTask<int> op(Engine& eng) { co_await eng.sleep(1us); co_return 7; }
//   ... int v = co_await op(eng);
//
// The child starts when awaited and resumes its awaiter on completion via
// symmetric transfer. Resumption chains stay shallow because every suspend
// inside a SubTask goes through the engine's event queue.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "common/error.h"

namespace portus::sim {

template <typename T>
class SubTask;

namespace detail {

template <typename T>
struct SubTaskPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<T> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };
  auto final_suspend() noexcept { return FinalAwaiter{}; }

  void unhandled_exception() noexcept { error = std::current_exception(); }
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] SubTask {
 public:
  struct promise_type : detail::SubTaskPromiseBase<promise_type> {
    std::optional<T> value;
    SubTask get_return_object() {
      return SubTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  SubTask(SubTask&& o) noexcept : handle_{std::exchange(o.handle_, nullptr)} {}
  SubTask(const SubTask&) = delete;
  SubTask& operator=(const SubTask&) = delete;
  SubTask& operator=(SubTask&& o) noexcept {
    if (this != &o) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  ~SubTask() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;  // start the child
  }
  T await_resume() {
    auto& p = handle_.promise();
    if (p.error) std::rethrow_exception(p.error);
    PORTUS_CHECK(p.value.has_value(), "SubTask completed without a value");
    return std::move(*p.value);
  }

 private:
  explicit SubTask(std::coroutine_handle<promise_type> h) : handle_{h} {}
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] SubTask<void> {
 public:
  struct promise_type : detail::SubTaskPromiseBase<promise_type> {
    SubTask get_return_object() {
      return SubTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}
  };

  SubTask(SubTask&& o) noexcept : handle_{std::exchange(o.handle_, nullptr)} {}
  SubTask(const SubTask&) = delete;
  SubTask& operator=(const SubTask&) = delete;
  SubTask& operator=(SubTask&& o) noexcept {
    if (this != &o) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  ~SubTask() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  void await_resume() {
    if (handle_.promise().error) std::rethrow_exception(handle_.promise().error);
  }

 private:
  explicit SubTask(std::coroutine_handle<promise_type> h) : handle_{h} {}
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace portus::sim
