#include "sim/process.h"

#include "sim/engine.h"

namespace portus::sim {

void Process::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<promise_type> h) noexcept {
  // Copy the shared state: the frame (and its promise) may be destroyed by
  // the engine before anyone reads it.
  std::shared_ptr<State> state = h.promise().state;
  state->done = true;
  Engine* engine = state->engine;
  for (auto joiner : state->joiners) {
    engine->resume_later(joiner);
  }
  state->joiners.clear();
  engine->retire_process(h, std::move(state));
}

}  // namespace portus::sim
