// Coroutine process type for the simulation engine.
//
// A Process is the unit of concurrency in the simulation: a coroutine that
// suspends on engine awaitables (sleep, channel recv, bandwidth transfers,
// mutexes) and is resumed by the engine's run loop. Processes start
// suspended; Engine::spawn schedules the first resume, after which the
// engine owns the coroutine frame and destroys it once it finishes.
//
//   sim::Process train(sim::Engine& eng, ...) {
//     co_await eng.sleep(10ms);
//     ...
//   }
//   auto p = eng.spawn(train(eng, ...));
//   ...
//   co_await p.join();   // from another process
//
// Exceptions escaping a process are captured; join() rethrows them. A
// process that fails without ever being joined increments
// Engine::failed_process_count().
#pragma once

#include <coroutine>
#include <exception>
#include <memory>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/units.h"

namespace portus::sim {

class Engine;

class Process {
 public:
  struct State {
    bool spawned = false;
    bool done = false;
    bool observed = false;  // someone joined (or checked the error)
    std::exception_ptr error;
    std::vector<std::coroutine_handle<>> joiners;
    Engine* engine = nullptr;
  };

  struct promise_type {
    std::shared_ptr<State> state = std::make_shared<State>();

    Process get_return_object() {
      return Process{std::coroutine_handle<promise_type>::from_promise(*this), state};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept;
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() noexcept { state->error = std::current_exception(); }
  };

  Process() = default;
  Process(Process&& other) noexcept
      : handle_{std::exchange(other.handle_, nullptr)}, state_{std::move(other.state_)} {}
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      destroy_if_owned();
      handle_ = std::exchange(other.handle_, nullptr);
      state_ = std::move(other.state_);
    }
    return *this;
  }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process() { destroy_if_owned(); }

  bool valid() const { return state_ != nullptr; }
  bool done() const { return state_ && state_->done; }

  // Rethrows the process's failure, if any; marks the error observed.
  void check() const {
    if (!state_) return;
    state_->observed = true;
    if (state_->error) std::rethrow_exception(state_->error);
  }

  // Awaitable that completes when the process finishes; rethrows its error.
  struct JoinAwaitable {
    std::shared_ptr<State> state;
    bool await_ready() const noexcept { return state == nullptr || state->done; }
    void await_suspend(std::coroutine_handle<> h) const { state->joiners.push_back(h); }
    void await_resume() const {
      if (!state) return;
      state->observed = true;
      if (state->error) std::rethrow_exception(state->error);
    }
  };
  JoinAwaitable join() const { return JoinAwaitable{state_}; }

  // --- internal (Engine) ---
  std::coroutine_handle<promise_type> release_handle_for_spawn() {
    PORTUS_CHECK_ARG(handle_ && !state_->spawned, "process already spawned or empty");
    state_->spawned = true;
    return std::exchange(handle_, nullptr);
  }
  const std::shared_ptr<State>& state() const { return state_; }

 private:
  Process(std::coroutine_handle<promise_type> h, std::shared_ptr<State> s)
      : handle_{h}, state_{std::move(s)} {}

  void destroy_if_owned() {
    if (handle_ && state_ && !state_->spawned) handle_.destroy();
    handle_ = nullptr;
  }

  std::coroutine_handle<promise_type> handle_;
  std::shared_ptr<State> state_;
};

}  // namespace portus::sim
