// Fault injection for the simulation engine.
//
// Components that can "die" (daemons, storage servers) register a kill
// callback under a stable name; tests and benchmarks then arm faults by
// name, either immediately or at a future point in virtual time. The
// injector never knows what a kill means — closing sockets, dropping
// requests, wedging a device — it only guarantees deterministic delivery
// through the engine's event queue and records what it fired, so a run's
// fault schedule is reproducible and auditable.
//
//   sim::FaultInjector faults{engine};
//   ... PortusDaemon registers itself as "portusd0" ...
//   faults.kill_after("portusd0", 5ms);        // crash-stop mid-run
//   faults.kill_after("portusd1", 7ms, sim::FaultMode::kHang);  // gray failure
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/units.h"
#include "sim/engine.h"

namespace portus::sim {

// How the target should fail.
//   kCrash:    crash-stop — connections drop, peers see Disconnected at once.
//   kHang:     gray failure — the target stays reachable but never responds;
//              peers only notice through their own timeouts.
//   kPowerCut: crash-stop preceded by device-level power loss — the target
//              destroys its volatile (unpersisted) storage state first
//              (pmem::PmemDevice::power_cut), then crash-stops. DMA already
//              drained by the kill point stays durable (ADR semantics).
enum class FaultMode { kCrash, kHang, kPowerCut };

const char* to_string(FaultMode m);

class FaultInjector {
 public:
  using KillFn = std::function<void(FaultMode)>;

  explicit FaultInjector(Engine& engine) : engine_{engine} {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Register/replace a kill target. The callback runs from the engine's
  // event loop (kill_after) or inline (kill_now); it must not throw.
  // Re-registering an existing name models a restart: the replacement is
  // logged, the killed flag resets, and the incarnation generation bumps so
  // faults armed against the previous incarnation can never fire on the
  // new one (a revived daemon must not inherit its predecessor's death).
  void register_target(const std::string& name, KillFn kill);

  // Forget a target. Armed faults that fire later become no-ops.
  void deregister_target(const std::string& name);

  // Fire immediately.
  void kill_now(const std::string& name, FaultMode mode = FaultMode::kCrash);

  // Arm a fault `delay` of virtual time from now. Firing against a target
  // that was deregistered (or already killed) in the meantime is a no-op.
  void kill_after(const std::string& name, Duration delay,
                  FaultMode mode = FaultMode::kCrash);

  bool killed(const std::string& name) const;
  int kills_fired() const { return kills_fired_; }
  std::vector<std::string> targets() const;

 private:
  struct Target {
    KillFn kill;
    bool killed = false;
    std::uint64_t generation = 0;  // bumps on every (re-)registration
  };
  void fire(const std::string& name, FaultMode mode, std::uint64_t generation);

  Engine& engine_;
  std::map<std::string, Target> targets_;
  std::uint64_t next_generation_ = 0;
  int kills_fired_ = 0;
};

}  // namespace portus::sim
