// Deterministic discrete-event simulation engine.
//
// The whole Portus reproduction runs on virtual time: every device and
// network operation moves real bytes immediately but advances this clock
// through a calibrated cost model. Concurrency (async checkpointing,
// concurrent shard pulls, daemon worker pools) is expressed as coroutine
// `Process`es (see process.h) scheduled by this engine.
//
// Determinism: events fire in (time, insertion-sequence) order, processes
// are resumed only from the run loop (never recursively), and nothing reads
// wall-clock time or ambient entropy.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/error.h"
#include "common/units.h"
#include "sim/process.h"

namespace portus::sim {

// Synchronization primitives and channels register themselves here so that
// Engine::shutdown() can clear their waiter lists: destroyed coroutine
// frames must never be resumed through stale registrations when the
// simulation world is reused after a simulated machine failure.
class Resettable {
 public:
  virtual void reset_waiters() noexcept = 0;

 protected:
  ~Resettable() = default;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  // Current virtual time.
  Time now() const { return now_; }

  // Schedule a callback `delay` from now (delay must be >= 0).
  void schedule(Duration delay, std::function<void()> fn);
  void schedule_now(std::function<void()> fn) { schedule(kZeroDuration, std::move(fn)); }

  // Start a coroutine process. The engine owns the coroutine frame from this
  // point; the returned handle object can be awaited (join) or queried.
  Process spawn(Process p);

  // Run until the event queue drains. Returns the final virtual time.
  Time run();

  // Destroy every live coroutine process and drop pending events. Call this
  // before tearing down objects that running processes reference (daemons,
  // clusters): coroutine destruction runs pending local destructors, which
  // may touch that state. Engine::~Engine calls it as a last resort.
  void shutdown();

  // Run until virtual time reaches `t` (events at exactly `t` are executed).
  // Returns true if the queue drained before `t`.
  bool run_until(Time t);

  // Convenience: run for `d` beyond the current time.
  bool run_for(Duration d) { return run_until(now_ + d); }

  // Awaitable: suspend the calling process for `d` of virtual time.
  // Usage inside a Process coroutine: `co_await engine.sleep(d);`
  auto sleep(Duration d);

  // Number of processes that terminated with an exception nobody has
  // observed (joined or check()ed). Healthy simulations report zero.
  int failed_process_count() const;

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t pending_events() const { return queue_.size(); }

  // --- internal (used by process/sync machinery) ---
  void resume_later(std::coroutine_handle<> h, Duration delay = kZeroDuration);
  void retire_process(std::coroutine_handle<> h, std::shared_ptr<Process::State> state);
  void register_resettable(Resettable* r) { resettables_.push_back(r); }
  void deregister_resettable(Resettable* r);

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
    friend bool operator>(const Event& a, const Event& b) {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  void drain_retired();
  bool step();  // execute one event; returns false when queue empty

  Time now_ = Time{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<std::coroutine_handle<>> live_;
  std::vector<std::coroutine_handle<>> retired_;
  std::vector<std::shared_ptr<Process::State>> error_states_;
  std::vector<Resettable*> resettables_;
};

}  // namespace portus::sim

#include "sim/engine_inl.h"  // IWYU pragma: keep
