// Crashpoint torture harness: enumerate every persist boundary of a
// workload and reconstruct the exact PMEM image a power failure at that
// boundary would leave behind.
//
// PmemDevice numbers each persist()/persist_all() fence with a dense
// sequence counter and exposes an observer hook around it. The recorder
// attaches to that hook and, at every boundary, snapshots
//   (a) the device image (all materialized bytes), and
//   (b) the volatile (dirty) range set,
// once with the fence about to run (maximal dirty set — a cut here models
// power failing just before the flush) and once right after it completed
// (the bytes it covered are now durable). Each snapshot is a CrashPoint.
//
// materialize() then rebuilds the post-crash image on a fresh device:
// load the snapshot, mark the recorded ranges dirty again, and fire
// power_cut(seed) so every unpersisted cache line independently survives,
// tears, or vanishes.
//
// Equivalence to replaying the workload prefix: the simulation is fully
// deterministic (virtual time, seeded RNGs), so the device state at persist
// boundary k of a replayed run is byte-identical to the state snapshotted
// at boundary k of the recorded run. Snapshotting turns an O(n^2)
// replay-per-boundary torture run into O(n) — one workload execution, then
// one recovery per boundary.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"
#include "pmem/pmem_device.h"

namespace portus::sim {

// One persist boundary of the recorded workload: everything needed to
// reconstruct the image a power cut at this exact point would leave.
struct CrashPoint {
  std::uint64_t ordinal = 0;      // dense index over recorded points
  std::uint64_t persist_seq = 0;  // device persist counter at the boundary
  bool after_persist = false;     // false: fence about to run; true: it ran
  // Full device contents at the boundary (shared between the before/after
  // points of one fence — a persist changes durability, not bytes).
  std::shared_ptr<const std::string> image;
  // Volatile [start, end) ranges at the boundary — what a power cut tears.
  std::vector<std::pair<Bytes, Bytes>> dirty;
};

class CrashpointRecorder {
 public:
  struct Options {
    std::uint64_t stride = 1;  // record every Nth fence (1 = all of them)
    bool both_phases = true;   // also record the boundary after the fence
  };

  // Attaches as the device's persist observer; recording starts at once
  // and stops when the recorder is destroyed (or detach() is called).
  // Single-threaded workloads only — see PmemDevice::set_persist_observer.
  CrashpointRecorder(pmem::PmemDevice& device, Options options);
  explicit CrashpointRecorder(pmem::PmemDevice& device)
      : CrashpointRecorder(device, Options{}) {}
  ~CrashpointRecorder();

  CrashpointRecorder(const CrashpointRecorder&) = delete;
  CrashpointRecorder& operator=(const CrashpointRecorder&) = delete;

  void detach();

  // Every crash point recorded so far, in boundary order.
  const std::vector<CrashPoint>& points() const { return points_; }

  // Rebuild the post-crash image on `target` (same size as the recorded
  // device): load the snapshot, re-mark the dirty set, fire
  // power_cut(seed). Deterministic for a given (point, seed).
  static void materialize(const CrashPoint& point, pmem::PmemDevice& target,
                          std::uint64_t seed);

 private:
  void on_boundary(std::uint64_t seq, bool after);

  pmem::PmemDevice& device_;
  Options options_;
  bool attached_ = false;
  std::shared_ptr<const std::string> current_image_;  // this fence's snapshot
  std::vector<CrashPoint> points_;
};

}  // namespace portus::sim
