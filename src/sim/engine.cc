#include "sim/engine.h"

#include <algorithm>

#include "common/logging.h"

namespace portus::sim {

Engine::~Engine() { shutdown(); }

void Engine::shutdown() {
  drain_retired();
  // Destroy any still-live (suspended) coroutine frames. Coroutine
  // destruction runs pending local destructors (e.g. an aborting
  // CheckpointTxn), so callers should shut down while the objects those
  // destructors touch are still alive.
  for (auto h : live_) {
    if (h) h.destroy();
  }
  live_.clear();
  drain_retired();
  while (!queue_.empty()) queue_.pop();
  // Clear waiter registrations pointing at the frames just destroyed.
  for (auto* r : resettables_) r->reset_waiters();
}

void Engine::deregister_resettable(Resettable* r) {
  resettables_.erase(std::remove(resettables_.begin(), resettables_.end(), r),
                     resettables_.end());
}

void Engine::schedule(Duration delay, std::function<void()> fn) {
  PORTUS_CHECK_ARG(delay >= kZeroDuration, "cannot schedule events in the past");
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
}

Process Engine::spawn(Process p) {
  PORTUS_CHECK_ARG(p.valid(), "cannot spawn an empty process");
  auto state = p.state();
  state->engine = this;
  auto handle = p.release_handle_for_spawn();
  live_.push_back(handle);
  schedule_now([handle] { handle.resume(); });
  return p;
}

void Engine::resume_later(std::coroutine_handle<> h, Duration delay) {
  schedule(delay, [h] { h.resume(); });
}

void Engine::retire_process(std::coroutine_handle<> h, std::shared_ptr<Process::State> state) {
  retired_.push_back(h);
  if (state && state->error) {
    error_states_.push_back(std::move(state));
  }
}

void Engine::drain_retired() {
  for (auto h : retired_) {
    live_.erase(std::remove(live_.begin(), live_.end(), h), live_.end());
    h.destroy();
  }
  retired_.clear();
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the event is copied out via const_cast-free
  // move by re-pushing semantics: copy the lightweight fields, then pop.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.at;
  ev.fn();
  ++events_processed_;
  drain_retired();
  return true;
}

Time Engine::run() {
  while (step()) {
  }
  return now_;
}

bool Engine::run_until(Time t) {
  while (!queue_.empty() && queue_.top().at <= t) {
    step();
  }
  if (queue_.empty()) return true;
  now_ = t;
  return false;
}

int Engine::failed_process_count() const {
  int n = 0;
  for (const auto& s : error_states_) {
    if (!s->observed) ++n;
  }
  return n;
}

}  // namespace portus::sim
