// Synchronization primitives for simulation processes: mutex, counting
// semaphore, one-shot broadcast event, and a CSP-style typed channel.
//
// All primitives are FIFO-fair and resume waiters through the engine's
// event queue (never recursively), preserving deterministic ordering.
#pragma once

#include <coroutine>
#include <deque>
#include <memory>
#include <optional>
#include <utility>

#include "common/error.h"
#include "sim/engine.h"

namespace portus::sim {

// ---------------------------------------------------------------------------
// SimMutex: `co_await mutex.lock()` yields a move-only Guard whose
// destruction unlocks. Guards must be destroyed in the owning process.
// ---------------------------------------------------------------------------
class SimMutex final : public Resettable {
 public:
  explicit SimMutex(Engine& engine) : engine_{engine} { engine.register_resettable(this); }
  ~SimMutex() { engine_.deregister_resettable(this); }
  SimMutex(const SimMutex&) = delete;
  SimMutex& operator=(const SimMutex&) = delete;

  void reset_waiters() noexcept override {
    waiters_.clear();
    locked_ = false;
  }

  class [[nodiscard]] Guard {
   public:
    Guard() = default;
    explicit Guard(SimMutex* m) : mutex_{m} {}
    Guard(Guard&& o) noexcept : mutex_{std::exchange(o.mutex_, nullptr)} {}
    Guard& operator=(Guard&& o) noexcept {
      if (this != &o) {
        release();
        mutex_ = std::exchange(o.mutex_, nullptr);
      }
      return *this;
    }
    ~Guard() { release(); }
    void release() {
      if (mutex_ != nullptr) std::exchange(mutex_, nullptr)->unlock();
    }

   private:
    SimMutex* mutex_ = nullptr;
  };

  struct LockAwaitable {
    SimMutex& mutex;
    bool await_ready() const noexcept { return !mutex.locked_; }
    void await_suspend(std::coroutine_handle<> h) { mutex.waiters_.push_back(h); }
    Guard await_resume() {
      // Either acquired immediately (was unlocked) or handed over by unlock().
      mutex.locked_ = true;
      return Guard{&mutex};
    }
  };

  LockAwaitable lock() { return LockAwaitable{*this}; }
  bool locked() const { return locked_; }

 private:
  friend struct LockAwaitable;
  void unlock() {
    PORTUS_CHECK(locked_, "unlock of unlocked SimMutex");
    locked_ = false;
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      // The resumed waiter re-sets locked_ in await_resume; mark it held now
      // so awaiters arriving in between do not sneak past the queue.
      locked_ = true;
      engine_.resume_later(h);
    }
  }

  Engine& engine_;
  bool locked_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

// ---------------------------------------------------------------------------
// SimSemaphore: counting semaphore.
// ---------------------------------------------------------------------------
class SimSemaphore final : public Resettable {
 public:
  SimSemaphore(Engine& engine, int initial) : engine_{engine}, count_{initial} {
    engine.register_resettable(this);
  }
  ~SimSemaphore() { engine_.deregister_resettable(this); }
  SimSemaphore(const SimSemaphore&) = delete;
  SimSemaphore& operator=(const SimSemaphore&) = delete;

  void reset_waiters() noexcept override { waiters_.clear(); }

  struct AcquireAwaitable {
    SimSemaphore& sem;
    bool await_ready() const noexcept {
      if (sem.count_ > 0) {
        --sem.count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { sem.waiters_.push_back(h); }
    void await_resume() const noexcept {}  // token already transferred by release()
  };

  AcquireAwaitable acquire() { return AcquireAwaitable{*this}; }

  void release(int n = 1) {
    for (int i = 0; i < n; ++i) {
      if (!waiters_.empty()) {
        auto h = waiters_.front();
        waiters_.pop_front();
        engine_.resume_later(h);  // token goes directly to the waiter
      } else {
        ++count_;
      }
    }
  }

  int available() const { return count_; }

 private:
  friend struct AcquireAwaitable;
  Engine& engine_;
  int count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// ---------------------------------------------------------------------------
// SimEvent: one-shot broadcast ("gate"). Waiting after set() is immediate.
// ---------------------------------------------------------------------------
class SimEvent final : public Resettable {
 public:
  explicit SimEvent(Engine& engine) : engine_{engine} { engine.register_resettable(this); }
  ~SimEvent() { engine_.deregister_resettable(this); }
  SimEvent(const SimEvent&) = delete;
  SimEvent& operator=(const SimEvent&) = delete;

  void reset_waiters() noexcept override { waiters_.clear(); }

  struct WaitAwaitable {
    SimEvent& ev;
    bool await_ready() const noexcept { return ev.set_; }
    void await_suspend(std::coroutine_handle<> h) { ev.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  WaitAwaitable wait() { return WaitAwaitable{*this}; }

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) engine_.resume_later(h);
    waiters_.clear();
  }

  bool is_set() const { return set_; }

 private:
  friend struct WaitAwaitable;
  Engine& engine_;
  bool set_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

// ---------------------------------------------------------------------------
// Channel<T>: FIFO typed channel. Unbounded by default; a bounded channel
// blocks senders when full. close() wakes all blocked receivers with
// portus::Disconnected; senders to a closed channel throw immediately.
// ---------------------------------------------------------------------------
template <typename T>
class Channel final : public Resettable {
 public:
  explicit Channel(Engine& engine, std::size_t capacity = SIZE_MAX)
      : engine_{engine}, capacity_{capacity} {
    engine.register_resettable(this);
  }
  ~Channel() { engine_.deregister_resettable(this); }
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void reset_waiters() noexcept override {
    recv_waiters_.clear();
    send_waiters_.clear();
  }

  struct RecvWaiter {
    std::coroutine_handle<> handle;
    std::optional<T> slot;
    bool closed = false;
  };

  struct RecvAwaitable {
    Channel& chan;
    std::shared_ptr<RecvWaiter> waiter;

    bool await_ready() {
      if (!chan.queue_.empty()) {
        waiter = std::make_shared<RecvWaiter>();
        waiter->slot = std::move(chan.queue_.front());
        chan.queue_.pop_front();
        chan.wake_one_sender();
        return true;
      }
      if (chan.closed_) {
        waiter = std::make_shared<RecvWaiter>();
        waiter->closed = true;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      waiter = std::make_shared<RecvWaiter>();
      waiter->handle = h;
      chan.recv_waiters_.push_back(waiter);
    }
    T await_resume() {
      if (waiter->closed) throw Disconnected("channel closed");
      return std::move(*waiter->slot);
    }
  };

  struct SendAwaitable {
    Channel& chan;
    std::optional<T> value;

    bool await_ready() {
      if (chan.closed_) throw Disconnected("send on closed channel");
      if (chan.try_deliver(*value)) {
        value.reset();
        return true;
      }
      if (chan.queue_.size() < chan.capacity_) {
        chan.queue_.push_back(std::move(*value));
        value.reset();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { chan.send_waiters_.push_back({h, this}); }
    void await_resume() {
      if (value.has_value()) {
        // Resumed by wake_one_sender: space is now available.
        if (chan.closed_) throw Disconnected("send on closed channel");
        if (!chan.try_deliver(*value)) chan.queue_.push_back(std::move(*value));
      }
    }
  };

  RecvAwaitable recv() { return RecvAwaitable{*this, nullptr}; }
  SendAwaitable send(T value) { return SendAwaitable{*this, std::move(value)}; }

  // Non-blocking push (always succeeds; ignores the capacity bound). Used by
  // callbacks that cannot suspend, e.g. delayed network delivery.
  void push(T value) {
    PORTUS_CHECK(!closed_, "push on closed channel");
    if (try_deliver(value)) return;
    queue_.push_back(std::move(value));
  }

  void close() {
    if (closed_) return;
    closed_ = true;
    for (auto& w : recv_waiters_) {
      w->closed = true;
      engine_.resume_later(w->handle);
    }
    recv_waiters_.clear();
    for (auto& [h, aw] : send_waiters_) {
      engine_.resume_later(h);
    }
    send_waiters_.clear();
  }

  bool closed() const { return closed_; }
  std::size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

 private:
  friend struct RecvAwaitable;
  friend struct SendAwaitable;

  bool try_deliver(T& value) {
    if (recv_waiters_.empty()) return false;
    auto w = recv_waiters_.front();
    recv_waiters_.pop_front();
    w->slot = std::move(value);
    engine_.resume_later(w->handle);
    return true;
  }

  void wake_one_sender() {
    if (send_waiters_.empty()) return;
    auto [h, aw] = send_waiters_.front();
    send_waiters_.pop_front();
    engine_.resume_later(h);
  }

  Engine& engine_;
  std::size_t capacity_;
  bool closed_ = false;
  std::deque<T> queue_;
  std::deque<std::shared_ptr<RecvWaiter>> recv_waiters_;
  std::deque<std::pair<std::coroutine_handle<>, SendAwaitable*>> send_waiters_;
};

}  // namespace portus::sim
