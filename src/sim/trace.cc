#include "sim/trace.h"

#include <algorithm>

#include "common/strformat.h"

namespace portus::sim {

Tracer::Span Tracer::span(std::string name, std::string track) {
  events_.push_back(Event{.kind = Event::Kind::kSpan,
                          .name = std::move(name),
                          .track = std::move(track),
                          .begin = engine_.now(),
                          .open = true});
  return Span{this, events_.size() - 1};
}

void Tracer::close(std::size_t index) {
  auto& ev = events_.at(index);
  PORTUS_CHECK(ev.open, "span closed twice");
  ev.end = engine_.now();
  ev.open = false;
}

void Tracer::instant(std::string name, std::string track) {
  events_.push_back(Event{.kind = Event::Kind::kInstant,
                          .name = std::move(name),
                          .track = std::move(track),
                          .begin = engine_.now()});
}

void Tracer::counter(std::string name, double value) {
  events_.push_back(Event{.kind = Event::Kind::kCounter,
                          .name = std::move(name),
                          .track = {},
                          .begin = engine_.now(),
                          .value = value});
}

std::uint64_t Tracer::track_id(const std::string& track) {
  const auto it = std::find(tracks_.begin(), tracks_.end(), track);
  if (it != tracks_.end()) return static_cast<std::uint64_t>(it - tracks_.begin());
  tracks_.push_back(track);
  return tracks_.size() - 1;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += strf("\\u{:04x}", static_cast<unsigned>(c));
    } else {
      out.push_back(c);
    }
  }
  return out;
}

double us(Time t) { return to_seconds(t) * 1e6; }

}  // namespace

void Tracer::write_chrome_json(std::ostream& out) const {
  // tracks_ is mutable bookkeeping; rebuild ids deterministically here.
  Tracer* self = const_cast<Tracer*>(this);
  out << "{\"traceEvents\":[\n";
  bool first = true;
  // Thread-name metadata so tracks render with readable labels.
  std::vector<std::string> seen;
  for (const auto& ev : events_) {
    if (ev.kind == Event::Kind::kCounter) continue;
    if (std::find(seen.begin(), seen.end(), ev.track) != seen.end()) continue;
    seen.push_back(ev.track);
    const auto tid = self->track_id(ev.track);
    if (!first) out << ",\n";
    first = false;
    out << strf(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},"
        "\"args\":{{\"name\":\"{}\"}}}}",
        tid, json_escape(ev.track));
  }
  for (const auto& ev : events_) {
    if (!first) out << ",\n";
    first = false;
    switch (ev.kind) {
      case Event::Kind::kSpan: {
        const Time end = ev.open ? ev.begin : ev.end;
        out << strf(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3f},"
            "\"dur\":{:.3f}}}",
            json_escape(ev.name), self->track_id(ev.track), us(ev.begin),
            us(end - ev.begin + Time{0}));
        break;
      }
      case Event::Kind::kInstant:
        out << strf(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"pid\":1,\"tid\":{},\"ts\":{:.3f},"
            "\"s\":\"t\"}}",
            json_escape(ev.name), self->track_id(ev.track), us(ev.begin));
        break;
      case Event::Kind::kCounter:
        out << strf(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":1,\"ts\":{:.3f},"
            "\"args\":{{\"value\":{:.6f}}}}}",
            json_escape(ev.name), us(ev.begin), ev.value);
        break;
    }
  }
  out << "\n]}\n";
}

}  // namespace portus::sim
