#include "mem/segment.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <vector>

#include "common/crc32.h"

namespace portus::mem {

const char* to_string(MemoryKind kind) {
  switch (kind) {
    case MemoryKind::kDram: return "DRAM";
    case MemoryKind::kGpu: return "GPU";
    case MemoryKind::kPmem: return "PMEM";
  }
  return "?";
}

MemorySegment::MemorySegment(std::string name, MemoryKind kind, Bytes size,
                             std::uint64_t base_addr)
    : name_{std::move(name)}, kind_{kind}, size_{size}, base_addr_{base_addr} {
  PORTUS_CHECK_ARG(size > 0, "segment size must be positive");
}

std::byte* MemorySegment::page_for_write(Bytes page_index) {
  std::lock_guard lock{pages_mu_};
  auto& slot = pages_[page_index];
  if (!slot) {
    slot = std::make_unique<std::byte[]>(kPageSize);
    std::memset(slot.get(), 0, kPageSize);
  }
  return slot.get();
}

const std::byte* MemorySegment::page_for_read(Bytes page_index) const {
  std::lock_guard lock{pages_mu_};
  const auto it = pages_.find(page_index);
  return it == pages_.end() ? nullptr : it->second.get();
}

template <typename Fn>
void MemorySegment::for_each_chunk(Bytes offset, Bytes len, Fn&& fn) const {
  Bytes pos = offset;
  const Bytes end = offset + len;
  while (pos < end) {
    const Bytes page = pos / kPageSize;
    const Bytes in_page = pos % kPageSize;
    const Bytes n = std::min(kPageSize - in_page, end - pos);
    fn(page, in_page, pos - offset, n);
    pos += n;
  }
}

void MemorySegment::write(Bytes offset, std::span<const std::byte> data) {
  write_raw(offset, data);
  mark_dirty(offset, data.size());
}

void MemorySegment::write_raw(Bytes offset, std::span<const std::byte> data) {
  check_range(offset, data.size());
  for_each_chunk(offset, data.size(), [&](Bytes page, Bytes in_page, Bytes src_off, Bytes n) {
    std::memcpy(page_for_write(page) + in_page, data.data() + src_off, n);
  });
}

void MemorySegment::read_into(Bytes offset, std::span<std::byte> out) const {
  check_range(offset, out.size());
  for_each_chunk(offset, out.size(), [&](Bytes page, Bytes in_page, Bytes dst_off, Bytes n) {
    const std::byte* p = page_for_read(page);
    if (p == nullptr) {
      std::memset(out.data() + dst_off, 0, n);
    } else {
      std::memcpy(out.data() + dst_off, p + in_page, n);
    }
  });
}

std::vector<std::byte> MemorySegment::read(Bytes offset, Bytes len) const {
  std::vector<std::byte> out(len);
  read_into(offset, out);
  return out;
}

void MemorySegment::fill(Bytes offset, Bytes len, std::byte value) {
  fill_raw(offset, len, value);
  mark_dirty(offset, len);
}

void MemorySegment::fill_raw(Bytes offset, Bytes len, std::byte value) {
  check_range(offset, len);
  for_each_chunk(offset, len, [&](Bytes page, Bytes in_page, Bytes, Bytes n) {
    std::memset(page_for_write(page) + in_page, static_cast<int>(value), n);
  });
}

std::uint32_t MemorySegment::crc(Bytes offset, Bytes len) const {
  check_range(offset, len);
  static const std::byte kZeros[4096] = {};
  Crc32 c;
  for_each_chunk(offset, len, [&](Bytes page, Bytes in_page, Bytes, Bytes n) {
    const std::byte* p = page_for_read(page);
    if (p == nullptr) {
      Bytes left = n;
      while (left > 0) {
        const Bytes k = std::min<Bytes>(left, sizeof kZeros);
        c.update(kZeros, k);
        left -= k;
      }
    } else {
      c.update(p + in_page, n);
    }
  });
  return c.value();
}

void MemorySegment::mark_dirty(Bytes, Bytes) {}

namespace {
constexpr std::uint32_t kImageMagic = 0x474D4950;  // "PIMG"
}

void MemorySegment::save_image(std::ostream& out) const {
  std::lock_guard lock{pages_mu_};
  const std::uint64_t magic = kImageMagic;
  const std::uint64_t size = size_;
  const std::uint64_t page_size = kPageSize;
  const std::uint64_t count = pages_.size();
  out.write(reinterpret_cast<const char*>(&magic), 8);
  out.write(reinterpret_cast<const char*>(&size), 8);
  out.write(reinterpret_cast<const char*>(&page_size), 8);
  out.write(reinterpret_cast<const char*>(&count), 8);
  // Sorted page order keeps images deterministic.
  std::vector<Bytes> indices;
  indices.reserve(pages_.size());
  for (const auto& [idx, page] : pages_) indices.push_back(idx);
  std::sort(indices.begin(), indices.end());
  for (const auto idx : indices) {
    const std::uint64_t i = idx;
    out.write(reinterpret_cast<const char*>(&i), 8);
    out.write(reinterpret_cast<const char*>(pages_.at(idx).get()), kPageSize);
  }
  PORTUS_CHECK(out.good(), "failed to write segment image");
}

void MemorySegment::load_image(std::istream& in) {
  std::lock_guard lock{pages_mu_};
  std::uint64_t magic = 0, size = 0, page_size = 0, count = 0;
  in.read(reinterpret_cast<char*>(&magic), 8);
  in.read(reinterpret_cast<char*>(&size), 8);
  in.read(reinterpret_cast<char*>(&page_size), 8);
  in.read(reinterpret_cast<char*>(&count), 8);
  if (!in.good() || magic != kImageMagic) throw Corruption("bad segment image header");
  if (page_size != kPageSize) throw Corruption("segment image page size mismatch");
  if (size > size_) throw Corruption("segment image larger than this device");
  pages_.clear();
  for (std::uint64_t p = 0; p < count; ++p) {
    std::uint64_t idx = 0;
    in.read(reinterpret_cast<char*>(&idx), 8);
    auto page = std::make_unique<std::byte[]>(kPageSize);
    in.read(reinterpret_cast<char*>(page.get()), kPageSize);
    if (!in.good()) throw Corruption("truncated segment image");
    pages_.emplace(idx, std::move(page));
  }
}

void copy_bytes(MemorySegment& dst, Bytes dst_off, const MemorySegment& src, Bytes src_off,
                Bytes len) {
  std::byte scratch[64 * 1024];
  Bytes moved = 0;
  while (moved < len) {
    const Bytes n = std::min<Bytes>(sizeof scratch, len - moved);
    src.read_into(src_off + moved, std::span<std::byte>{scratch, n});
    dst.write(dst_off + moved, std::span<const std::byte>{scratch, n});
    moved += n;
  }
}

}  // namespace portus::mem
