// MemorySegment: a named, addressable range of simulated device memory.
//
// Every byte store in the reproduction lives in some segment — a node's
// DRAM, a GPU's device memory, or a PMEM DIMM namespace. Segments give the
// RDMA layer and the copy engines one uniform substrate: a memory region is
// (segment, offset, length), and a transfer is a bounds-checked copy between
// two segments plus a virtual-time cost.
//
// Storage is *sparse*: segments can be terabyte-scale (a 768 GiB PMEM
// namespace, a 48 GiB GPU) while only pages that were actually written are
// materialized. Unwritten ranges read as zeros. Large-model benchmarks mark
// their payloads "phantom" at the buffer/MR level so no pages materialize at
// all; functional tests use real bytes and verify them with CRCs.
//
// Addresses: each segment is assigned a non-overlapping range in a 64-bit
// *global address space* (see address_space.h) so the daemon can hold
// "persistent pointers" and "remote GPU addresses" as plain integers the way
// the real system does.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "common/units.h"

namespace portus::mem {

enum class MemoryKind : std::uint8_t {
  kDram = 0,
  kGpu = 1,
  kPmem = 2,
};

const char* to_string(MemoryKind kind);

class MemorySegment {
 public:
  static constexpr Bytes kPageSize = 256_KiB;

  MemorySegment(std::string name, MemoryKind kind, Bytes size, std::uint64_t base_addr);
  virtual ~MemorySegment() = default;
  MemorySegment(const MemorySegment&) = delete;
  MemorySegment& operator=(const MemorySegment&) = delete;

  const std::string& name() const { return name_; }
  MemoryKind kind() const { return kind_; }
  Bytes size() const { return size_; }

  // Global-address-space base of this segment. offset o in this segment has
  // global address base_addr() + o.
  std::uint64_t base_addr() const { return base_addr_; }
  bool contains_global(std::uint64_t addr, Bytes len) const {
    return addr >= base_addr_ && addr + len <= base_addr_ + size_ && addr + len >= addr;
  }
  Bytes to_offset(std::uint64_t global_addr) const {
    PORTUS_CHECK_ARG(contains_global(global_addr, 0), "global address outside segment");
    return global_addr - base_addr_;
  }

  // Bounds-checked, page-chunked access. Reads of never-written ranges
  // yield zeros. write() notifies mark_dirty (PMEM persistence tracking).
  virtual void write(Bytes offset, std::span<const std::byte> data);
  void read_into(Bytes offset, std::span<std::byte> out) const;
  std::vector<std::byte> read(Bytes offset, Bytes len) const;
  void fill(Bytes offset, Bytes len, std::byte value);

  // CRC-32 of a range without materializing a temporary copy.
  std::uint32_t crc(Bytes offset, Bytes len) const;

  // Persist/restore the materialized pages to a host stream ("PIMG"
  // format). This is how a simulated PMEM device image survives across
  // tool invocations (portusctl demo/view/dump operate on image files).
  void save_image(std::ostream& out) const;
  void load_image(std::istream& in);

  // Bytes currently backed by real storage (diagnostics / tests).
  Bytes materialized_bytes() const {
    std::lock_guard lock{pages_mu_};
    return pages_.size() * kPageSize;
  }

  // Persistence hook: default no-op (DRAM/GPU are volatile; PMEM overrides).
  virtual void mark_dirty(Bytes offset, Bytes len);

 protected:
  void check_range(Bytes offset, Bytes len) const {
    PORTUS_CHECK_ARG(offset + len <= size_ && offset + len >= offset,
                     "segment access out of bounds: " + name_);
  }
  // Raw page-level write that bypasses the mark_dirty hook (used by PMEM
  // crash simulation to scramble unpersisted ranges).
  void write_raw(Bytes offset, std::span<const std::byte> data);
  void fill_raw(Bytes offset, Bytes len, std::byte value);

 private:
  std::byte* page_for_write(Bytes page_index);
  const std::byte* page_for_read(Bytes page_index) const;  // nullptr => zeros

  template <typename Fn>
  void for_each_chunk(Bytes offset, Bytes len, Fn&& fn) const;

  std::string name_;
  MemoryKind kind_;
  Bytes size_;
  std::uint64_t base_addr_;
  // Guards the page map only: the simulation is single-threaded, but unit
  // tests stress the daemon's lock-free allocator (which writes through to
  // PMEM) from real threads, and real PMEM tolerates concurrent stores to
  // distinct lines.
  mutable std::mutex pages_mu_;
  std::unordered_map<Bytes, std::unique_ptr<std::byte[]>> pages_;
};

// Chunked copy between two segments (real byte movement; no time cost —
// timing is the caller's concern). Ranges are bounds-checked.
void copy_bytes(MemorySegment& dst, Bytes dst_off, const MemorySegment& src, Bytes src_off,
                Bytes len);

}  // namespace portus::mem
