// Global 64-bit address space shared by every simulated device.
//
// The real Portus daemon passes raw pointers around: GPU addresses inside
// RDMA memory-region descriptors, and "persistent pointers" (paddr) inside
// MIndex records. To mirror that, each MemorySegment is assigned a unique,
// non-overlapping base address here, and components exchange plain integers
// that this registry can resolve back to (segment, offset).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "mem/segment.h"

namespace portus::mem {

class AddressSpace {
 public:
  AddressSpace() = default;
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  // Create and register a segment of `size` bytes. Segments are aligned to
  // 4 KiB and separated by an unmapped guard gap so that off-by-one global
  // addresses never silently resolve into a neighbouring device.
  std::shared_ptr<MemorySegment> create_segment(std::string name, MemoryKind kind, Bytes size);

  // Register an externally-constructed segment subclass (e.g. PmemDevice).
  // The factory is given the assigned base address.
  template <typename SegmentT, typename... Args>
  std::shared_ptr<SegmentT> create(std::string name, Bytes size, Args&&... args) {
    const std::uint64_t base = reserve(size);
    auto seg = std::make_shared<SegmentT>(std::move(name), size, base,
                                          std::forward<Args>(args)...);
    segments_.push_back(seg);
    return seg;
  }

  // Resolve a global address range to its owning segment; throws
  // portus::ProtectionFault when the range is unmapped or straddles segments.
  MemorySegment& resolve(std::uint64_t addr, Bytes len) const;

  std::size_t segment_count() const { return segments_.size(); }

 private:
  std::uint64_t reserve(Bytes size);

  static constexpr std::uint64_t kBase = 0x1000'0000ull;
  static constexpr std::uint64_t kAlign = 4096;
  static constexpr std::uint64_t kGuardGap = 1_MiB;

  std::uint64_t next_base_ = kBase;
  std::vector<std::shared_ptr<MemorySegment>> segments_;
};

}  // namespace portus::mem
