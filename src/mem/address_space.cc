#include "mem/address_space.h"

#include "common/error.h"

namespace portus::mem {

std::uint64_t AddressSpace::reserve(Bytes size) {
  const std::uint64_t base = next_base_;
  std::uint64_t end = base + size + kGuardGap;
  end = (end + kAlign - 1) & ~(kAlign - 1);
  next_base_ = end;
  return base;
}

std::shared_ptr<MemorySegment> AddressSpace::create_segment(std::string name, MemoryKind kind,
                                                            Bytes size) {
  const std::uint64_t base = reserve(size);
  auto seg = std::make_shared<MemorySegment>(std::move(name), kind, size, base);
  segments_.push_back(seg);
  return seg;
}

MemorySegment& AddressSpace::resolve(std::uint64_t addr, Bytes len) const {
  for (const auto& seg : segments_) {
    if (seg->contains_global(addr, len)) return *seg;
    if (addr >= seg->base_addr() && addr < seg->base_addr() + seg->size()) {
      throw ProtectionFault("address range straddles segment boundary: " + seg->name());
    }
  }
  throw ProtectionFault("unmapped global address");
}

}  // namespace portus::mem
