// Little-endian binary reader/writer used by the control-plane protocol and
// the portable checkpoint container format. Reads validate bounds and throw
// portus::Corruption on truncation, so malformed packets never fault.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"

namespace portus {

class BinaryWriter {
 public:
  BinaryWriter() = default;

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  // Length-prefixed (u32) string.
  void str(std::string_view v);
  // Length-prefixed (u64) raw bytes.
  void bytes(std::span<const std::byte> v);
  // Raw bytes with no length prefix (caller knows the framing).
  void raw(std::span<const std::byte> v);
  void raw(const void* data, std::size_t n);

  const std::vector<std::byte>& buffer() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::byte> data) : data_{data} {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  std::string str();
  std::vector<std::byte> bytes();
  // View of the next `n` raw bytes; advances the cursor.
  std::span<const std::byte> raw(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return remaining() == 0; }
  std::size_t position() const { return pos_; }

 private:
  void require(std::size_t n) const {
    if (remaining() < n) throw Corruption("binary read past end of buffer");
  }
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace portus
