// Minimal std::format-style string formatting for toolchains without
// <format> (libstdc++ 12). Supports the subset used in this codebase:
//
//   strf("{} of {}", 3, "7")          -> "3 of 7"
//   strf("{:.3f}s", 1.25)             -> "1.250s"
//   strf("{:08x}", 0xbeef)            -> "0000beef"
//   strf("{{literal}}")               -> "{literal}"
//
// Specs are translated to printf conversions: [0][width][.precision][xXdf g e].
// Unknown argument types must provide operator<< (falls back to ostringstream).
#pragma once

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/error.h"

namespace portus {

namespace detail {

// std::format-style alignment prefix: '<' left, '>' right, '^' center.
struct Align {
  char kind = 0;       // 0 = none
  std::size_t width = 0;
  std::string_view rest;  // spec with the alignment/width stripped
};

inline Align parse_align(std::string_view spec) {
  Align a;
  a.rest = spec;
  if (spec.empty()) return a;
  std::size_t pos = 0;
  if (spec[0] == '<' || spec[0] == '>' || spec[0] == '^') {
    a.kind = spec[0];
    pos = 1;
  }
  std::size_t width = 0;
  const std::size_t width_start = pos;
  while (pos < spec.size() && spec[pos] >= '0' && spec[pos] <= '9') {
    // A leading '0' without an explicit align is zero-padding, not width.
    if (a.kind == 0 && pos == width_start && spec[pos] == '0') return a;
    width = width * 10 + static_cast<std::size_t>(spec[pos] - '0');
    ++pos;
  }
  if (a.kind == 0 && pos == width_start) return a;  // no width digits
  if (a.kind == 0) a.kind = '>';                    // bare width: right-align
  a.width = width;
  a.rest = spec.substr(pos);
  return a;
}

inline void pad_into(std::string& out, std::string_view text, char align,
                     std::size_t width) {
  if (align == 0 || text.size() >= width) {
    out.append(text);
    return;
  }
  const std::size_t pad = width - text.size();
  if (align == '<') {
    out.append(text);
    out.append(pad, ' ');
  } else if (align == '>') {
    out.append(pad, ' ');
    out.append(text);
  } else {  // '^'
    out.append(pad / 2, ' ');
    out.append(text);
    out.append(pad - pad / 2, ' ');
  }
}

inline std::string printf_spec(std::string_view spec, char default_conv,
                               std::string_view length_mod) {
  // spec is the piece after ':' e.g. "08x", ".3f", "", "6.2f"
  std::string out = "%";
  char conv = default_conv;
  if (!spec.empty()) {
    const char last = spec.back();
    if (last == 'x' || last == 'X' || last == 'o' || last == 'd' || last == 'f' ||
        last == 'g' || last == 'e' || last == 'u') {
      conv = last;
      spec.remove_suffix(1);
    }
    out.append(spec);
  }
  out.append(length_mod);
  out.push_back(conv);
  return out;
}

inline void append_formatted(std::string& out, std::string_view spec, double v) {
  const auto align = parse_align(spec);
  char buf[64];
  const auto fmt = printf_spec(align.rest, 'g', "");
  std::snprintf(buf, sizeof buf, fmt.c_str(), v);
  pad_into(out, buf, align.kind, align.width);
}

template <typename T>
  requires std::is_integral_v<T> || std::is_enum_v<T>
void append_formatted(std::string& out, std::string_view spec, T v) {
  char buf[64];
  if (!spec.empty() && (spec.back() == 'f' || spec.back() == 'g' || spec.back() == 'e')) {
    append_formatted(out, spec, static_cast<double>(v));
    return;
  }
  const auto align = parse_align(spec);
  if constexpr (std::is_same_v<T, bool>) {
    pad_into(out, v ? "true" : "false", align.kind, align.width);
  } else if constexpr (std::is_signed_v<T>) {
    const auto fmt = printf_spec(align.rest, 'd', "ll");
    std::snprintf(buf, sizeof buf, fmt.c_str(), static_cast<long long>(v));
    pad_into(out, buf, align.kind, align.width);
  } else {
    const auto fmt = printf_spec(align.rest, 'u', "ll");
    std::snprintf(buf, sizeof buf, fmt.c_str(), static_cast<unsigned long long>(v));
    pad_into(out, buf, align.kind, align.width);
  }
}

inline void append_formatted(std::string& out, std::string_view spec, std::string_view v) {
  const auto align = parse_align(spec);
  pad_into(out, v, align.kind == 0 ? '<' : align.kind, align.width);
}
inline void append_formatted(std::string& out, std::string_view spec, const std::string& v) {
  append_formatted(out, spec, std::string_view{v});
}
inline void append_formatted(std::string& out, std::string_view spec, const char* v) {
  append_formatted(out, spec, std::string_view{v});
}
inline void append_formatted(std::string& out, std::string_view spec, char v) {
  (void)spec;
  out.push_back(v);
}
inline void append_formatted(std::string& out, std::string_view spec, float v) {
  append_formatted(out, spec, static_cast<double>(v));
}

template <typename T>
concept Streamable = requires(std::ostream& os, const T& t) { os << t; };

template <typename T>
  requires(!std::is_arithmetic_v<T> && !std::is_enum_v<T> &&
           !std::is_convertible_v<T, std::string_view> && Streamable<T>)
void append_formatted(std::string& out, std::string_view /*spec*/, const T& v) {
  std::ostringstream os;
  os << v;
  out += os.str();
}

}  // namespace detail

// Render pre-formatted cells as a table whose column widths fit the widest
// cell in each column. Fixed "{:>8}"-style widths overflow (and shear every
// column to their right) once a counter passes the width — at fleet scale
// doorbell/WR counters routinely do — so status tables size themselves from
// the data instead. `align[i]` is '<' or '>' per column; short rows are
// allowed (trailing cells absent), columns are separated by two spaces.
inline std::string format_table(const std::vector<std::vector<std::string>>& rows,
                                std::string_view align) {
  std::vector<std::size_t> widths;
  for (const auto& row : rows) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  PORTUS_CHECK_ARG(align.size() >= widths.size(),
                   "format_table: one align char per column required");
  std::string out;
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out.append(2, ' ');
      // The last cell of a row needs no trailing pad when left-aligned.
      if (align[c] == '<' && c + 1 == row.size()) {
        out.append(row[c]);
      } else {
        detail::pad_into(out, row[c], align[c], widths[c]);
      }
    }
    out.push_back('\n');
  }
  return out;
}

template <typename... Args>
std::string strf(std::string_view fmt, const Args&... args) {
  std::string out;
  out.reserve(fmt.size() + sizeof...(Args) * 8);

  // Type-erase the arguments so the parser below can index them.
  using AppendFn = void (*)(std::string&, std::string_view, const void*);
  struct Arg {
    const void* p;
    AppendFn fn;
  };
  const Arg arg_table[] = {Arg{static_cast<const void*>(&args),
                               [](std::string& o, std::string_view s, const void* p) {
                                 detail::append_formatted(o, s,
                                                          *static_cast<const Args*>(p));
                               }}...,
                           Arg{nullptr, nullptr}};  // sentinel for zero args
  const std::size_t nargs = sizeof...(Args);

  std::size_t next_arg = 0;
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    const char c = fmt[i];
    if (c == '{') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '{') {
        out.push_back('{');
        ++i;
        continue;
      }
      const auto close = fmt.find('}', i);
      PORTUS_CHECK_ARG(close != std::string_view::npos, "strf: unterminated '{'");
      std::string_view inner = fmt.substr(i + 1, close - i - 1);
      std::string_view spec;
      if (const auto colon = inner.find(':'); colon != std::string_view::npos) {
        spec = inner.substr(colon + 1);
        inner = inner.substr(0, colon);
      }
      PORTUS_CHECK_ARG(inner.empty(), "strf: only automatic argument indexing supported");
      PORTUS_CHECK_ARG(next_arg < nargs, "strf: not enough arguments for format string");
      arg_table[next_arg].fn(out, spec, arg_table[next_arg].p);
      ++next_arg;
      i = close;
    } else if (c == '}') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '}') ++i;
      out.push_back('}');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace portus
