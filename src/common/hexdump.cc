#include "common/hexdump.h"

#include "common/strformat.h"

namespace portus {

std::string hexdump(std::span<const std::byte> data, std::size_t max_bytes) {
  const std::size_t n = data.size() < max_bytes ? data.size() : max_bytes;
  std::string out;
  for (std::size_t row = 0; row < n; row += 16) {
    out += strf("{:08x}  ", row);
    for (std::size_t col = 0; col < 16; ++col) {
      if (row + col < n) {
        out += strf("{:02x} ", static_cast<unsigned>(data[row + col]));
      } else {
        out += "   ";
      }
      if (col == 7) out += ' ';
    }
    out += " |";
    for (std::size_t col = 0; col < 16 && row + col < n; ++col) {
      const auto c = static_cast<unsigned char>(data[row + col]);
      out += (c >= 0x20 && c < 0x7F) ? static_cast<char>(c) : '.';
    }
    out += "|\n";
  }
  if (n < data.size()) {
    out += strf("... ({} more bytes)\n", data.size() - n);
  }
  return out;
}

}  // namespace portus
