// Byte-size and bandwidth units used throughout Portus.
//
// All sizes are expressed in bytes as std::uint64_t; literals provide
// readable construction (e.g. `512_KiB`, `89.6_GB`). Bandwidth is a strong
// type (bytes per simulated second) so that a raw byte count can never be
// accidentally used as a rate.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace portus {

using Bytes = std::uint64_t;

inline namespace literals {

constexpr Bytes operator""_B(unsigned long long v) { return v; }
constexpr Bytes operator""_KiB(unsigned long long v) { return v * 1024ull; }
constexpr Bytes operator""_MiB(unsigned long long v) { return v * 1024ull * 1024ull; }
constexpr Bytes operator""_GiB(unsigned long long v) { return v * 1024ull * 1024ull * 1024ull; }
constexpr Bytes operator""_KB(unsigned long long v) { return v * 1000ull; }
constexpr Bytes operator""_MB(unsigned long long v) { return v * 1000ull * 1000ull; }
constexpr Bytes operator""_GB(unsigned long long v) { return v * 1000ull * 1000ull * 1000ull; }
constexpr Bytes operator""_GB(long double v) {
  return static_cast<Bytes>(v * 1e9L);
}
constexpr Bytes operator""_GiB(long double v) {
  return static_cast<Bytes>(v * 1024.0L * 1024.0L * 1024.0L);
}

}  // namespace literals

// Virtual time. The simulation epoch is Time{0}; all timestamps are offsets
// from it. Nanosecond resolution carries ~292 years, far beyond any run.
using Duration = std::chrono::nanoseconds;
using Time = std::chrono::nanoseconds;

constexpr Duration kZeroDuration = Duration::zero();

inline constexpr double to_seconds(Duration d) {
  return std::chrono::duration<double>(d).count();
}
inline constexpr Duration from_seconds(double s) {
  return std::chrono::duration_cast<Duration>(std::chrono::duration<double>(s));
}

// Bandwidth as bytes per (simulated) second.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  static constexpr Bandwidth bytes_per_sec(double v) { return Bandwidth{v}; }
  static constexpr Bandwidth gbps(double gigabits) {
    return Bandwidth{gigabits * 1e9 / 8.0};
  }
  static constexpr Bandwidth gib_per_sec(double v) {
    return Bandwidth{v * 1024.0 * 1024.0 * 1024.0};
  }
  static constexpr Bandwidth gb_per_sec(double v) { return Bandwidth{v * 1e9}; }
  static constexpr Bandwidth unlimited() { return Bandwidth{1e18}; }

  constexpr double bytes_per_second() const { return bps_; }
  constexpr double gb_per_second() const { return bps_ / 1e9; }
  constexpr bool is_unlimited() const { return bps_ >= 1e17; }

  // Time to move `n` bytes at this rate (no latency component).
  constexpr Duration time_for(Bytes n) const {
    if (is_unlimited() || n == 0) return kZeroDuration;
    return from_seconds(static_cast<double>(n) / bps_);
  }

  friend constexpr Bandwidth min(Bandwidth a, Bandwidth b) {
    return Bandwidth{a.bps_ < b.bps_ ? a.bps_ : b.bps_};
  }
  friend constexpr bool operator<(Bandwidth a, Bandwidth b) { return a.bps_ < b.bps_; }
  friend constexpr bool operator==(Bandwidth a, Bandwidth b) { return a.bps_ == b.bps_; }

 private:
  explicit constexpr Bandwidth(double bps) : bps_{bps} {}
  double bps_ = 0.0;
};

// Human-readable formatting helpers (used by logs, portusctl and benches).
std::string format_bytes(Bytes n);
std::string format_duration(Duration d);
std::string format_bandwidth(Bandwidth bw);
// Humanize a plain counter: "8421", "12.6k", "3.40M", "1.25G". Keeps
// fleet-scale counters inside fixed-width table columns.
std::string format_count(std::uint64_t n);

}  // namespace portus
