// Small debugging helper: hex-dump a byte span (used by protocol tests and
// portusctl's inspection output).
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace portus {

// Classic 16-bytes-per-line hexdump with ASCII gutter.
std::string hexdump(std::span<const std::byte> data, std::size_t max_bytes = 256);

}  // namespace portus
