// Minimal leveled logger. Output is intentionally plain (no timestamps by
// default) so that deterministic-simulation test logs stay diffable; the
// simulation clock is injected by callers that want virtual timestamps.
#pragma once

#include <iostream>
#include <mutex>
#include <string>
#include <string_view>

#include "common/strformat.h"

namespace portus {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void log(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger();
  LogLevel level_;
  std::mutex mu_;
};

const char* to_string(LogLevel level);

template <typename... Args>
void log_at(LogLevel level, std::string_view component, std::string_view fmt,
            const Args&... args) {
  Logger& logger = Logger::instance();
  if (level < logger.level()) return;
  logger.log(level, component, strf(fmt, args...));
}

#define PLOG_TRACE(component, ...) ::portus::log_at(::portus::LogLevel::kTrace, component, __VA_ARGS__)
#define PLOG_DEBUG(component, ...) ::portus::log_at(::portus::LogLevel::kDebug, component, __VA_ARGS__)
#define PLOG_INFO(component, ...) ::portus::log_at(::portus::LogLevel::kInfo, component, __VA_ARGS__)
#define PLOG_WARN(component, ...) ::portus::log_at(::portus::LogLevel::kWarn, component, __VA_ARGS__)
#define PLOG_ERROR(component, ...) ::portus::log_at(::portus::LogLevel::kError, component, __VA_ARGS__)

}  // namespace portus
