// Error types. Per the project style (C++ Core Guidelines I.10/E.2) failures
// to perform a required task are reported with exceptions; recoverable
// "expected" outcomes use std::optional / status enums at the call site.
#pragma once

#include <stdexcept>
#include <string>

namespace portus {

// Root of all Portus errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// A caller violated an interface precondition (bad handle, out-of-range
// access, protocol misuse). These indicate bugs in the calling code.
class InvalidArgument : public Error {
 public:
  using Error::Error;
};

// A resource (PMEM space, GPU memory, queue slots) is exhausted.
class ResourceExhausted : public Error {
 public:
  using Error::Error;
};

// A looked-up entity (model, file, memory region) does not exist.
class NotFound : public Error {
 public:
  using Error::Error;
};

// Data failed an integrity check (CRC mismatch, bad magic, torn record).
class Corruption : public Error {
 public:
  using Error::Error;
};

// An RDMA-level protection fault: rkey mismatch, access-permission
// violation, or out-of-bounds remote access.
class ProtectionFault : public Error {
 public:
  using Error::Error;
};

// The simulated peer disconnected or the channel was closed.
class Disconnected : public Error {
 public:
  using Error::Error;
};

#define PORTUS_CHECK(cond, msg)                       \
  do {                                                \
    if (!(cond)) throw ::portus::Error(msg);          \
  } while (0)

#define PORTUS_CHECK_ARG(cond, msg)                     \
  do {                                                  \
    if (!(cond)) throw ::portus::InvalidArgument(msg);  \
  } while (0)

}  // namespace portus
