#include "common/binary_io.h"

#include <cstring>

namespace portus {

namespace {

template <typename T>
void append_le(std::vector<std::byte>& buf, T v) {
  // Build is little-endian (x86-64 / aarch64 Linux); memcpy of the native
  // representation is the LE encoding.
  const auto old = buf.size();
  buf.resize(old + sizeof(T));
  std::memcpy(buf.data() + old, &v, sizeof(T));
}

}  // namespace

void BinaryWriter::u8(std::uint8_t v) { append_le(buf_, v); }
void BinaryWriter::u16(std::uint16_t v) { append_le(buf_, v); }
void BinaryWriter::u32(std::uint32_t v) { append_le(buf_, v); }
void BinaryWriter::u64(std::uint64_t v) { append_le(buf_, v); }
void BinaryWriter::i64(std::int64_t v) { append_le(buf_, v); }
void BinaryWriter::f64(double v) { append_le(buf_, v); }

void BinaryWriter::str(std::string_view v) {
  u32(static_cast<std::uint32_t>(v.size()));
  raw(v.data(), v.size());
}

void BinaryWriter::bytes(std::span<const std::byte> v) {
  u64(v.size());
  raw(v);
}

void BinaryWriter::raw(std::span<const std::byte> v) { raw(v.data(), v.size()); }

void BinaryWriter::raw(const void* data, std::size_t n) {
  const auto old = buf_.size();
  buf_.resize(old + n);
  if (n > 0) std::memcpy(buf_.data() + old, data, n);
}

namespace {

template <typename T>
T read_le(std::span<const std::byte> data, std::size_t pos) {
  T v;
  std::memcpy(&v, data.data() + pos, sizeof(T));
  return v;
}

}  // namespace

std::uint8_t BinaryReader::u8() {
  require(1);
  auto v = read_le<std::uint8_t>(data_, pos_);
  pos_ += 1;
  return v;
}

std::uint16_t BinaryReader::u16() {
  require(2);
  auto v = read_le<std::uint16_t>(data_, pos_);
  pos_ += 2;
  return v;
}

std::uint32_t BinaryReader::u32() {
  require(4);
  auto v = read_le<std::uint32_t>(data_, pos_);
  pos_ += 4;
  return v;
}

std::uint64_t BinaryReader::u64() {
  require(8);
  auto v = read_le<std::uint64_t>(data_, pos_);
  pos_ += 8;
  return v;
}

std::int64_t BinaryReader::i64() {
  require(8);
  auto v = read_le<std::int64_t>(data_, pos_);
  pos_ += 8;
  return v;
}

double BinaryReader::f64() {
  require(8);
  auto v = read_le<double>(data_, pos_);
  pos_ += 8;
  return v;
}

std::string BinaryReader::str() {
  const auto n = u32();
  require(n);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

std::vector<std::byte> BinaryReader::bytes() {
  const auto n = u64();
  require(n);
  std::vector<std::byte> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                             data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::span<const std::byte> BinaryReader::raw(std::size_t n) {
  require(n);
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

}  // namespace portus
