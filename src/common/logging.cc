#include "common/logging.h"

#include <cstdlib>
#include <string>

namespace portus {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("PORTUS_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  const std::string v{env};
  if (v == "trace") return LogLevel::kTrace;
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

}  // namespace

Logger::Logger() : level_{level_from_env()} {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, std::string_view component, std::string_view message) {
  std::lock_guard lock{mu_};
  std::cerr << '[' << to_string(level) << "] [" << component << "] " << message << '\n';
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace portus
