#include "common/units.h"

#include "common/strformat.h"

namespace portus {

std::string format_bytes(Bytes n) {
  constexpr double kKiB = 1024.0;
  const auto v = static_cast<double>(n);
  if (v < kKiB) return strf("{}B", n);
  if (v < kKiB * kKiB) return strf("{:.1f}KiB", v / kKiB);
  if (v < kKiB * kKiB * kKiB) return strf("{:.1f}MiB", v / (kKiB * kKiB));
  return strf("{:.2f}GiB", v / (kKiB * kKiB * kKiB));
}

std::string format_duration(Duration d) {
  const double s = to_seconds(d);
  if (s >= 1.0) return strf("{:.3f}s", s);
  if (s >= 1e-3) return strf("{:.3f}ms", s * 1e3);
  if (s >= 1e-6) return strf("{:.3f}us", s * 1e6);
  return strf("{}ns", d.count());
}

std::string format_bandwidth(Bandwidth bw) {
  return strf("{:.2f}GB/s", bw.gb_per_second());
}

std::string format_count(std::uint64_t n) {
  const auto v = static_cast<double>(n);
  if (n < 10'000) return strf("{}", n);
  if (v < 1e6) return strf("{:.1f}k", v / 1e3);
  if (v < 1e9) return strf("{:.2f}M", v / 1e6);
  return strf("{:.2f}G", v / 1e9);
}

}  // namespace portus
