// Jittered exponential backoff, shared by every retry path in the tree:
// the client RetryPolicy (Backpressure + timeout retries), cluster lane
// re-routing, and the ClusterClient's membership-epoch re-resolution loop.
// One definition keeps the pacing behaviour identical everywhere — double
// per attempt up to a cap, multiply by a uniform [0.5, 1.5) jitter factor,
// and never undercut the server's explicit retry-after hint.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/rng.h"
#include "common/units.h"

namespace portus {

struct BackoffPolicy {
  Duration base{500'000};      // first-retry delay (500 us)
  Duration max{50'000'000};    // exponential cap (50 ms)
};

// Delay before retry number `attempt` (0-based). `floor_ns` is a server-side
// pacing hint (e.g. Backpressure retry_after_ns) the result never undercuts.
inline Duration jittered_backoff(const BackoffPolicy& policy, int attempt, Rng& jitter,
                                 std::uint64_t floor_ns = 0) {
  auto ns = policy.base.count();
  for (int i = 0; i < attempt && ns < policy.max.count(); ++i) ns *= 2;
  ns = std::min(ns, policy.max.count());
  ns = static_cast<Duration::rep>(static_cast<double>(ns) * jitter.uniform_real(0.5, 1.5));
  ns = std::max(ns, static_cast<Duration::rep>(floor_ns));
  return Duration{ns};
}

}  // namespace portus
