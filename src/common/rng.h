// Deterministic random number generation. Every stochastic component takes
// an explicit seed so simulation runs are reproducible; nothing in the
// library reads entropy from the environment.
#pragma once

#include <cstdint>
#include <cstring>
#include <random>
#include <span>

namespace portus {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_{seed} {}

  std::uint64_t next_u64() { return engine_(); }

  // Uniform in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    std::uniform_int_distribution<std::uint64_t> dist{lo, hi};
    return dist(engine_);
  }

  double uniform_real(double lo, double hi) {
    std::uniform_real_distribution<double> dist{lo, hi};
    return dist(engine_);
  }

  // Normal with mean/stddev, clamped at >= 0 (used for jittered durations).
  double normal_nonneg(double mean, double stddev) {
    std::normal_distribution<double> dist{mean, stddev};
    const double v = dist(engine_);
    return v < 0.0 ? 0.0 : v;
  }

  bool bernoulli(double p) {
    std::bernoulli_distribution dist{p};
    return dist(engine_);
  }

  // Fill a buffer with pseudo-random bytes (tensor payloads in tests).
  void fill(std::span<std::byte> out) {
    std::size_t i = 0;
    while (i + 8 <= out.size()) {
      const std::uint64_t v = engine_();
      std::memcpy(out.data() + i, &v, 8);
      i += 8;
    }
    if (i < out.size()) {
      const std::uint64_t v = engine_();
      std::memcpy(out.data() + i, &v, out.size() - i);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace portus
