#include "common/crc32.h"

#include <array>
#include <bit>
#include <cstring>

namespace portus {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

// Slice-by-8 tables: kSlice[k][b] advances byte b through the register from
// k+1 positions back, so eight table lookups fold eight input bytes at once.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_slice_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  t[0] = make_table();
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
    }
  }
  return t;
}

constexpr auto kSlice = make_slice_tables();

}  // namespace

Crc32& Crc32::update_bytewise(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = state_;
  for (std::size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
  return *this;
}

Crc32& Crc32::update(const void* data, std::size_t n) {
  // The 8-byte folding below assumes little-endian word loads; other
  // byte orders take the reference path.
  if constexpr (std::endian::native != std::endian::little) {
    return update_bytewise(data, n);
  }
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = state_;
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = kSlice[7][lo & 0xFFu] ^ kSlice[6][(lo >> 8) & 0xFFu] ^
        kSlice[5][(lo >> 16) & 0xFFu] ^ kSlice[4][lo >> 24] ^
        kSlice[3][hi & 0xFFu] ^ kSlice[2][(hi >> 8) & 0xFFu] ^
        kSlice[1][(hi >> 16) & 0xFFu] ^ kSlice[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (std::size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
  return *this;
}

Crc32& Crc32::update(std::span<const std::byte> data) {
  return update(data.data(), data.size());
}

std::uint32_t Crc32::of(std::span<const std::byte> data) {
  return Crc32{}.update(data).value();
}

std::uint32_t Crc32::of(const void* data, std::size_t n) {
  return Crc32{}.update(data, n).value();
}

namespace {

// GF(2) linear algebra over the CRC register: advancing a CRC by one zero
// byte is multiplication by a fixed 32x32 bit matrix; advancing by len(B)
// zero bytes is that matrix raised to the 8*len(B)-th power, computed by
// repeated squaring.
std::uint32_t gf2_matrix_times(const std::uint32_t* mat, std::uint32_t vec) {
  std::uint32_t sum = 0;
  while (vec != 0) {
    if (vec & 1u) sum ^= *mat;
    vec >>= 1;
    ++mat;
  }
  return sum;
}

void gf2_matrix_square(std::uint32_t* square, const std::uint32_t* mat) {
  for (int n = 0; n < 32; ++n) square[n] = gf2_matrix_times(mat, mat[n]);
}

}  // namespace

std::uint32_t Crc32::combine(std::uint32_t crc_a, std::uint32_t crc_b,
                             std::uint64_t len_b) {
  if (len_b == 0) return crc_a;

  std::uint32_t even[32];  // operator for 2^(2k+1) zero bits
  std::uint32_t odd[32];   // operator for 2^(2k) zero bits

  // odd <- the one-zero-bit operator: the CRC polynomial shift.
  odd[0] = 0xEDB88320u;
  std::uint32_t row = 1;
  for (int n = 1; n < 32; ++n) {
    odd[n] = row;
    row <<= 1;
  }
  gf2_matrix_square(even, odd);  // two zero bits
  gf2_matrix_square(odd, even);  // four zero bits

  // Apply len_b zero *bytes* to crc_a, squaring the operator per bit of
  // len_b, alternating between the two matrix buffers.
  std::uint64_t len = len_b;
  std::uint32_t crc = crc_a;
  do {
    gf2_matrix_square(even, odd);
    if (len & 1u) crc = gf2_matrix_times(even, crc);
    len >>= 1;
    if (len == 0) break;
    gf2_matrix_square(odd, even);
    if (len & 1u) crc = gf2_matrix_times(odd, crc);
    len >>= 1;
  } while (len != 0);

  return crc ^ crc_b;
}

}  // namespace portus
