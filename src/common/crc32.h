// CRC-32 (IEEE 802.3 polynomial, reflected). Used for end-to-end checkpoint
// integrity: every tensor payload and serialized container section carries a
// CRC so that tests can assert bit-exact restoration and torn writes are
// detected during recovery.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace portus {

class Crc32 {
 public:
  // Incremental interface. update() runs slice-by-8 (eight 256-entry
  // tables, one 64-bit load per step) so inline checkpoint integrity keeps
  // up with the coalesced datapath; update_bytewise() is the one-table
  // reference implementation the fast path is tested against.
  Crc32& update(std::span<const std::byte> data);
  Crc32& update(const void* data, std::size_t n);
  Crc32& update_bytewise(const void* data, std::size_t n);
  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }
  void reset() { state_ = 0xFFFFFFFFu; }

  // One-shot convenience.
  static std::uint32_t of(std::span<const std::byte> data);
  static std::uint32_t of(const void* data, std::size_t n);

  // CRC of the concatenation A||B given crc(A), crc(B), and len(B) — the
  // GF(2) matrix method (zlib's crc32_combine). Lets the pipelined datapath
  // stitch per-chunk CRCs computed out of order into one per-tensor CRC
  // without re-reading the payload.
  static std::uint32_t combine(std::uint32_t crc_a, std::uint32_t crc_b,
                               std::uint64_t len_b);

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace portus
