// Lock-free multi-producer / single-consumer intrusive-style queue
// (Vyukov exchange-head design, allocation per push).
//
// Producers push from any thread with one atomic exchange on the head —
// wait-free, no CAS loop, no lock. The single consumer pops from the tail
// through a stub node; a push that has swung the head but not yet linked
// its predecessor leaves the queue momentarily "busy", which try_pop
// surfaces as empty (the element arrives a moment later). That transient
// is invisible to consumers that are gated on a separate ready signal
// (e.g. a semaphore or channel token released after the push completes).
//
// Used by the RDMA completion path: NIC-side executors deliver work
// completions into a CompletionQueue without ever taking the daemon lock.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <utility>

namespace portus {

template <typename T>
class MpscQueue {
 public:
  MpscQueue() {
    Node* stub = new Node{};
    head_.store(stub, std::memory_order_relaxed);
    tail_ = stub;
  }
  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;
  ~MpscQueue() {
    Node* n = tail_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  // Any thread. Wait-free: one allocation + one atomic exchange.
  void push(T value) {
    Node* node = new Node{};
    node->value = std::move(value);
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  // Consumer thread only. Returns nullopt when empty (or when a producer
  // is mid-push; see header comment).
  std::optional<T> try_pop() {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) return std::nullopt;
    std::optional<T> out{std::move(next->value)};
    tail_ = next;
    delete tail;
    return out;
  }

  // Consumer thread only. Approximate when producers are active.
  bool empty() const {
    return tail_->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  std::atomic<Node*> head_;  // producers exchange here
  Node* tail_;               // consumer-owned
};

}  // namespace portus
