// Checkpoint storage backends.
//
// CheckpointStorage is the narrow interface the torch.save()/CheckFreq
// baselines write through: whole-file create/write/commit and whole-file
// read. Implementations model the paper's two baseline targets —
// a local ext4 file system on NVMe SSDs and a remote BeeGFS on fsdax PMEM —
// including their kernel-crossing and metadata costs (Fig. 3 / Fig. 5(a)).
//
// Contents may be phantom (size-only) for large-model timing runs: pass a
// null contents pointer to write_file.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/units.h"
#include "sim/task.h"

namespace portus::storage {

class CheckpointStorage {
 public:
  virtual ~CheckpointStorage() = default;

  // Create/overwrite `path` with `size` bytes, durable on return. `contents`
  // may be null (phantom write: time charged, no bytes kept).
  virtual sim::SubTask<> write_file(std::string path, Bytes size,
                                    const std::vector<std::byte>* contents) = 0;

  // Read the whole file (throws NotFound). Phantom files return empty data.
  virtual sim::SubTask<std::vector<std::byte>> read_file(std::string path) = 0;

  // Timing-only read used when the consumer is GPUDirect Storage (data goes
  // straight to GPU memory; the host never materializes it). Returns size.
  virtual sim::SubTask<Bytes> read_file_time_only(std::string path, bool gpu_direct) = 0;

  virtual sim::SubTask<> remove(std::string path) = 0;

  virtual bool exists(const std::string& path) const = 0;
  virtual Bytes file_size(const std::string& path) const = 0;
  virtual const std::string& label() const = 0;
};

// Shared in-memory file table used by the backends.
class FileTable {
 public:
  struct Entry {
    Bytes size = 0;
    std::optional<std::vector<std::byte>> contents;  // nullopt => phantom
  };

  void put(std::string path, Bytes size, const std::vector<std::byte>* contents) {
    Entry e;
    e.size = size;
    if (contents != nullptr) {
      PORTUS_CHECK_ARG(contents->size() == size, "file size/contents mismatch");
      e.contents = *contents;
    }
    files_[std::move(path)] = std::move(e);
  }
  const Entry& get(const std::string& path) const {
    const auto it = files_.find(path);
    if (it == files_.end()) throw NotFound("no such file: " + path);
    return it->second;
  }
  bool exists(const std::string& path) const { return files_.contains(path); }
  void remove(const std::string& path) { files_.erase(path); }
  std::vector<std::string> list() const {
    std::vector<std::string> out;
    out.reserve(files_.size());
    for (const auto& [k, v] : files_) out.push_back(k);
    return out;
  }

 private:
  std::map<std::string, Entry> files_;
};

}  // namespace portus::storage
