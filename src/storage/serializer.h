// Portable checkpoint container format ("PTCK").
//
// This is the torch.save()-equivalent the baselines pay for on every
// checkpoint and that Portusctl emits when exporting a model out of PMEM for
// sharing (SS IV-b). Layout (little-endian):
//
//   u32 magic 'PTCK' | u16 version | str model_name | u32 tensor_count
//   per tensor: str name | u8 dtype | u32 ndim | i64 dims... |
//               u64 payload_len | payload | u32 payload_crc
//   u32 container_crc (over everything before it)
//
// Deserialization validates magic, version, both CRC levels, and bounds;
// failures throw portus::Corruption.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "dnn/model.h"
#include "dnn/tensor.h"

namespace portus::storage {

struct SerializedTensor {
  dnn::TensorMeta meta;
  std::vector<std::byte> data;
};

struct CheckpointFile {
  std::string model_name;
  std::vector<SerializedTensor> tensors;

  Bytes payload_bytes() const {
    Bytes n = 0;
    for (const auto& t : tensors) n += t.data.size();
    return n;
  }
};

class CheckpointSerializer {
 public:
  static constexpr std::uint32_t kMagic = 0x4B435450;  // "PTCK"
  static constexpr std::uint16_t kVersion = 1;

  static std::vector<std::byte> serialize(const CheckpointFile& file);
  static CheckpointFile deserialize(std::span<const std::byte> bytes);

  // Size the container would have for a model without materializing it
  // (phantom baselines need the file size for timing).
  static Bytes container_size(const dnn::Model& model);
};

}  // namespace portus::storage
