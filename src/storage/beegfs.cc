#include "storage/beegfs.h"

#include "common/binary_io.h"

namespace portus::storage {

BeeGfsServer::BeeGfsServer(net::Node& storage_node, BeeGfsSpec spec)
    : node_{storage_node}, spec_{spec}, meta_mu_{storage_node.engine()} {
  PORTUS_CHECK_ARG(storage_node.has_fsdax(),
                   "BeeGFS server requires an fsdax PMEM namespace on the storage node");
}

BeeGfsMount::BeeGfsMount(net::Cluster& cluster, net::Node& client_node, BeeGfsServer& server,
                         std::string mount_name)
    : server_{server}, label_{std::move(mount_name)} {
  rpc_ = std::make_unique<rdma::RpcChannel>(cluster.fabric(), cluster.address_space(),
                                            client_node.nic(), server.node().nic(),
                                            label_ + "/rpc", make_handler());
}

rdma::RpcHandler BeeGfsMount::make_handler() {
  return [this](std::uint16_t op, std::vector<std::byte> req)
             -> sim::SubTask<rdma::RpcReply> {
    auto& engine = server_.node().engine();
    const auto& spec = server_.spec();
    BinaryReader r{req};
    BinaryWriter resp;
    Bytes phantom_pad = 0;

    switch (op) {
      case kOpenCreate: {
        // Namespace operations serialize on the metadata service.
        auto guard = co_await server_.metadata_mutex().lock();
        co_await engine.sleep(spec.metadata_open_cost);
        open_path_ = r.str();
        open_size_ = r.u64();
        open_phantom_ = r.u8() != 0;
        open_contents_.clear();
        if (!open_phantom_) open_contents_.reserve(open_size_);
        break;
      }
      case kWriteChunk: {
        co_await engine.sleep(spec.handler_cost_per_chunk);
        const auto n = r.u64();
        const bool has_data = r.u8() != 0;
        // DAX write into the fsdax namespace: contends with other mounts.
        const Time t0 = engine.now();
        co_await server_.node().fsdax_write_channel().transfer(n);
        dax_write_time_ += engine.now() - t0;
        if (has_data) {
          const auto payload = r.raw(n);
          open_contents_.insert(open_contents_.end(), payload.begin(), payload.end());
        }
        break;
      }
      case kCommit: {
        co_await engine.sleep(spec.commit_cost);
        server_.files().put(open_path_, open_size_,
                            open_phantom_ ? nullptr : &open_contents_);
        open_contents_.clear();
        break;
      }
      case kReadChunk: {
        co_await engine.sleep(spec.read_handler_cost);
        const auto path = r.str();
        const auto offset = r.u64();
        const auto want = r.u64();
        const auto& entry = server_.files().get(path);
        const Bytes n = std::min(want, entry.size - std::min(entry.size, offset));
        co_await server_.node().fsdax_read_channel().transfer(n);
        resp.u64(n);
        if (entry.contents.has_value() && n > 0) {
          resp.u8(1);
          resp.raw(std::span<const std::byte>{*entry.contents}.subspan(offset, n));
        } else {
          resp.u8(0);
          phantom_pad = n;  // the chunk still crosses the wire back
        }
        break;
      }
      case kStat: {
        auto guard = co_await server_.metadata_mutex().lock();
        co_await engine.sleep(spec.metadata_open_cost / 2);
        const auto path = r.str();
        if (server_.files().exists(path)) {
          resp.u8(1);
          resp.u64(server_.files().get(path).size);
        } else {
          resp.u8(0);
        }
        break;
      }
      case kRemove: {
        auto guard = co_await server_.metadata_mutex().lock();
        co_await engine.sleep(spec.metadata_open_cost);
        server_.files().remove(r.str());
        break;
      }
      default:
        throw InvalidArgument("unknown BeeGFS RPC opcode");
    }
    co_return rdma::RpcReply{resp.take(), phantom_pad};
  };
}

sim::SubTask<> BeeGfsMount::write_file(std::string path, Bytes size,
                                       const std::vector<std::byte>* contents) {
  const auto& spec = server_.spec();
  {
    BinaryWriter open_req;
    open_req.str(path);
    open_req.u64(size);
    open_req.u8(contents == nullptr ? 1 : 0);
    auto open_wire = open_req.take();
    co_await rpc_->call(kOpenCreate, std::move(open_wire));
  }
  Bytes done = 0;
  while (done < size) {
    const Bytes n = std::min(spec.chunk, size - done);
    BinaryWriter chunk_req;
    chunk_req.u64(n);
    Bytes phantom_pad = 0;
    if (contents != nullptr) {
      chunk_req.u8(1);
      chunk_req.raw(std::span<const std::byte>{*contents}.subspan(done, n));
    } else {
      chunk_req.u8(0);
      phantom_pad = n;  // the chunk still crosses the wire
    }
    auto chunk_wire = chunk_req.take();
    co_await rpc_->call(kWriteChunk, std::move(chunk_wire), phantom_pad);
    done += n;
  }
  co_await rpc_->call(kCommit, {});
}

sim::SubTask<std::vector<std::byte>> BeeGfsMount::read_file(std::string path) {
  const auto& spec = server_.spec();
  {  // open: path resolution on the metadata service
    BinaryWriter stat_req;
    stat_req.str(path);
    auto stat_wire = stat_req.take();
    co_await rpc_->call(kStat, std::move(stat_wire));
  }
  std::vector<std::byte> out;
  Bytes offset = 0;
  for (;;) {
    BinaryWriter req;
    req.str(path);
    req.u64(offset);
    req.u64(spec.chunk);
    auto req_wire = req.take();
    auto resp_bytes = co_await rpc_->call(kReadChunk, std::move(req_wire));
    BinaryReader resp{resp_bytes};
    const Bytes n = resp.u64();
    if (n == 0) break;
    if (resp.u8() != 0) {
      const auto payload = resp.raw(n);
      out.insert(out.end(), payload.begin(), payload.end());
    }
    offset += n;
    if (offset >= file_size(path)) break;
  }
  co_return out;
}

sim::SubTask<Bytes> BeeGfsMount::read_file_time_only(std::string path, bool /*gpu_direct*/) {
  const auto& spec = server_.spec();
  const Bytes size = file_size(path);  // throws NotFound
  {  // open: path resolution on the metadata service
    BinaryWriter stat_req;
    stat_req.str(path);
    auto stat_wire = stat_req.take();
    co_await rpc_->call(kStat, std::move(stat_wire));
  }
  Bytes offset = 0;
  while (offset < size) {
    BinaryWriter req;
    req.str(path);
    req.u64(offset);
    req.u64(spec.chunk);
    auto req_wire = req.take();
    auto resp_bytes = co_await rpc_->call(kReadChunk, std::move(req_wire));
    BinaryReader resp{resp_bytes};
    offset += resp.u64();
  }
  co_return size;
}

sim::SubTask<> BeeGfsMount::remove(std::string path) {
  BinaryWriter req;
  req.str(path);
  auto wire = req.take();
  co_await rpc_->call(kRemove, std::move(wire));
}

}  // namespace portus::storage
