#include "storage/ext4_nvme.h"

namespace portus::storage {

Ext4NvmeFs::Ext4NvmeFs(sim::Engine& engine, std::string label, NvmeSpec spec)
    : engine_{engine}, label_{std::move(label)}, spec_{spec} {
  device_write_ = std::make_unique<sim::BandwidthChannel>(engine, spec.write_bw,
                                                          label_ + "/nvme-write");
  device_read_ = std::make_unique<sim::BandwidthChannel>(engine, spec.read_bw,
                                                         label_ + "/nvme-read");
}

sim::SubTask<> Ext4NvmeFs::charge_io(Bytes size, bool write, bool gpu_direct) {
  auto& device = write ? *device_write_ : *device_read_;
  const auto kernel_cost =
      gpu_direct ? spec_.kernel_cost_per_chunk_gds : spec_.kernel_cost_per_chunk;
  Bytes done = 0;
  while (done < size) {
    const Bytes n = std::min(spec_.chunk, size - done);
    co_await engine_.sleep(kernel_cost);
    co_await device.transfer(n);
    done += n;
  }
}

sim::SubTask<> Ext4NvmeFs::write_file(std::string path, Bytes size,
                                      const std::vector<std::byte>* contents) {
  co_await engine_.sleep(spec_.open_cost);
  co_await charge_io(size, /*write=*/true, /*gpu_direct=*/false);
  co_await engine_.sleep(spec_.fsync_cost);
  files_.put(std::move(path), size, contents);
}

sim::SubTask<std::vector<std::byte>> Ext4NvmeFs::read_file(std::string path) {
  const auto& entry = files_.get(path);  // throws NotFound before any time passes
  co_await engine_.sleep(spec_.open_cost);
  co_await charge_io(entry.size, /*write=*/false, /*gpu_direct=*/false);
  co_return entry.contents.value_or(std::vector<std::byte>{});
}

sim::SubTask<Bytes> Ext4NvmeFs::read_file_time_only(std::string path, bool gpu_direct) {
  const auto& entry = files_.get(path);
  co_await engine_.sleep(spec_.open_cost);
  co_await charge_io(entry.size, /*write=*/false, gpu_direct);
  co_return entry.size;
}

sim::SubTask<> Ext4NvmeFs::remove(std::string path) {
  co_await engine_.sleep(spec_.open_cost);
  files_.remove(path);
}

}  // namespace portus::storage
