// Local ext4 on a PCIe 4.0 NVMe SSD — the paper's "ext4-NVMe" baseline.
//
// Fig. 13 shows this path spending 53.7% of its checkpoint time interacting
// with the block device through kernel crossings. The model charges, per
// 512 KiB block-layer request: a fixed kernel cost (syscall, page-cache
// copy, bio submit/complete) plus device time at the SSD's sequential rate
// (2.7 GB/s write — the paper's quoted PM9A3 ceiling — and faster reads).
// An fsync barrier lands at file commit. GPUDirect Storage reads skip the
// page-cache copy.
#pragma once

#include <memory>

#include "sim/bandwidth_channel.h"
#include "sim/engine.h"
#include "storage/filesystem.h"

namespace portus::storage {

struct NvmeSpec {
  Bandwidth write_bw = Bandwidth::gb_per_sec(2.7);  // PM9A3 sequential ceiling
  Bandwidth read_bw = Bandwidth::gb_per_sec(5.5);
  // Syscall + page-cache copy + bio submit/complete per 512 KiB request;
  // calibrated so the block stage is ~half of an ext4 checkpoint (Fig. 13).
  Duration kernel_cost_per_chunk = std::chrono::microseconds{220};
  Duration kernel_cost_per_chunk_gds = std::chrono::microseconds{40};
  Duration open_cost = std::chrono::microseconds{200};
  Duration fsync_cost = std::chrono::milliseconds{1};
  Bytes chunk = 512_KiB;
};

class Ext4NvmeFs final : public CheckpointStorage {
 public:
  Ext4NvmeFs(sim::Engine& engine, std::string label, NvmeSpec spec = NvmeSpec{});

  sim::SubTask<> write_file(std::string path, Bytes size,
                            const std::vector<std::byte>* contents) override;
  sim::SubTask<std::vector<std::byte>> read_file(std::string path) override;
  sim::SubTask<Bytes> read_file_time_only(std::string path, bool gpu_direct) override;
  sim::SubTask<> remove(std::string path) override;

  bool exists(const std::string& path) const override { return files_.exists(path); }
  Bytes file_size(const std::string& path) const override { return files_.get(path).size; }
  const std::string& label() const override { return label_; }

  const NvmeSpec& spec() const { return spec_; }

 private:
  sim::SubTask<> charge_io(Bytes size, bool write, bool gpu_direct);

  sim::Engine& engine_;
  std::string label_;
  NvmeSpec spec_;
  // The SSD itself: concurrent writers share device bandwidth.
  std::unique_ptr<sim::BandwidthChannel> device_write_;
  std::unique_ptr<sim::BandwidthChannel> device_read_;
  FileTable files_;
};

}  // namespace portus::storage
