#include "storage/serializer.h"

#include "common/binary_io.h"
#include "common/crc32.h"

namespace portus::storage {

std::vector<std::byte> CheckpointSerializer::serialize(const CheckpointFile& file) {
  BinaryWriter w;
  w.u32(kMagic);
  w.u16(kVersion);
  w.str(file.model_name);
  w.u32(static_cast<std::uint32_t>(file.tensors.size()));
  for (const auto& t : file.tensors) {
    PORTUS_CHECK_ARG(t.data.size() == t.meta.byte_size(),
                     "tensor payload does not match its metadata: " + t.meta.name);
    w.str(t.meta.name);
    w.u8(static_cast<std::uint8_t>(t.meta.dtype));
    w.u32(static_cast<std::uint32_t>(t.meta.shape.size()));
    for (const auto d : t.meta.shape) w.i64(d);
    w.u64(t.data.size());
    w.raw(t.data);
    w.u32(Crc32::of(t.data));
  }
  w.u32(Crc32::of(w.buffer().data(), w.buffer().size()));
  return w.take();
}

CheckpointFile CheckpointSerializer::deserialize(std::span<const std::byte> bytes) {
  if (bytes.size() < 4 + 2 + 4 + 4 + 4) throw Corruption("checkpoint container too small");
  const auto body = bytes.first(bytes.size() - 4);
  BinaryReader trailer{bytes.subspan(bytes.size() - 4)};
  if (trailer.u32() != Crc32::of(body.data(), body.size())) {
    throw Corruption("checkpoint container CRC mismatch");
  }

  BinaryReader r{body};
  if (r.u32() != kMagic) throw Corruption("bad checkpoint magic");
  if (r.u16() != kVersion) throw Corruption("unsupported checkpoint version");

  CheckpointFile file;
  file.model_name = r.str();
  const auto count = r.u32();
  file.tensors.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    SerializedTensor t;
    t.meta.name = r.str();
    t.meta.dtype = static_cast<dnn::DType>(r.u8());
    const auto ndim = r.u32();
    if (ndim > 16) throw Corruption("implausible tensor rank");
    t.meta.shape.resize(ndim);
    for (auto& d : t.meta.shape) d = r.i64();
    const auto len = r.u64();
    const auto payload = r.raw(len);
    t.data.assign(payload.begin(), payload.end());
    if (r.u32() != Crc32::of(t.data.data(), t.data.size())) {
      throw Corruption("tensor payload CRC mismatch: " + t.meta.name);
    }
    if (t.data.size() != t.meta.byte_size()) {
      throw Corruption("tensor payload size does not match shape: " + t.meta.name);
    }
    file.tensors.push_back(std::move(t));
  }
  if (!r.at_end()) throw Corruption("trailing bytes in checkpoint container");
  return file;
}

Bytes CheckpointSerializer::container_size(const dnn::Model& model) {
  Bytes total = 4 + 2 + (4 + model.name().size()) + 4 + 4;  // header + trailer crc
  for (const auto& t : model.tensors()) {
    total += 4 + t.meta().name.size();             // name
    total += 1 + 4 + 8 * t.meta().shape.size();    // dtype + ndim + dims
    total += 8 + t.byte_size() + 4;                // len + payload + crc
  }
  return total;
}

}  // namespace portus::storage
