#include "storage/filesystem.h"

// Interface-only translation unit: anchors the CheckpointStorage vtable.

namespace portus::storage {}  // namespace portus::storage
