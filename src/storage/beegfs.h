// BeeGFS on fsdax PMEM — the paper's "BeeGFS-PMEM" shared-filesystem
// baseline (ver. 7.3.2 stacked on ext4-DAX).
//
// The traditional checkpoint datapath (Fig. 3/5(a)) runs through here:
// the client kernel module ships each chunk to the storage daemon over
// two-sided RPCoRDMA; the daemon handles the request on a server CPU and
// performs a DAX write into the fsdax namespace. Three kernel crossings,
// two extra copies. Per-file metadata operations (path resolution,
// permission checks) cost milliseconds on the server — the overhead that
// makes small checkpoints like ResNet50 disproportionally slow (Fig. 11's
// 9.23x).
//
// BeeGfsServer owns the shared file table + metadata lock; every
// BeeGfsMount (one per training rank) owns its own RPC channel, so
// concurrent ranks contend on the server NIC and the fsdax write channel —
// which degrades under concurrency (pmem/perf_model.h) and produces the
// Fig. 14 collapse.
#pragma once

#include <memory>
#include <string>

#include "net/cluster.h"
#include "rdma/rpc.h"
#include "sim/sync.h"
#include "storage/filesystem.h"

namespace portus::storage {

struct BeeGfsSpec {
  Bytes chunk = 1_MiB;
  // Server-side request dispatch + worker wakeup + buffer management per
  // write RPC. Calibrated so BERT's transmission stage lands at Table I's
  // 30% share (~2.1 GB/s effective single-stream).
  Duration handler_cost_per_chunk = std::chrono::microseconds{310};
  // Path resolution + permission checks on the metadata service. BeeGFS
  // MDS round trips cost milliseconds; this is what makes small checkpoints
  // (ResNet50) disproportionally slow (Fig. 11's 9.23x peak).
  Duration metadata_open_cost = std::chrono::milliseconds{12};
  Duration commit_cost = std::chrono::milliseconds{3};
  Duration read_handler_cost = std::chrono::microseconds{150};
};

class BeeGfsServer {
 public:
  // `storage_node` must have an fsdax namespace.
  BeeGfsServer(net::Node& storage_node, BeeGfsSpec spec = BeeGfsSpec{});

  net::Node& node() { return node_; }
  const BeeGfsSpec& spec() const { return spec_; }
  FileTable& files() { return files_; }
  sim::SimMutex& metadata_mutex() { return meta_mu_; }

 private:
  net::Node& node_;
  BeeGfsSpec spec_;
  FileTable files_;
  sim::SimMutex meta_mu_;
};

class BeeGfsMount final : public CheckpointStorage {
 public:
  BeeGfsMount(net::Cluster& cluster, net::Node& client_node, BeeGfsServer& server,
              std::string mount_name);

  sim::SubTask<> write_file(std::string path, Bytes size,
                            const std::vector<std::byte>* contents) override;
  sim::SubTask<std::vector<std::byte>> read_file(std::string path) override;
  sim::SubTask<Bytes> read_file_time_only(std::string path, bool gpu_direct) override;
  sim::SubTask<> remove(std::string path) override;

  bool exists(const std::string& path) const override { return server_.files().exists(path); }
  Bytes file_size(const std::string& path) const override {
    return server_.files().get(path).size;
  }
  const std::string& label() const override { return label_; }

  // Instrumentation for the Fig. 13 breakdown: cumulative time the *server*
  // spent in DAX writes on behalf of this mount.
  Duration dax_write_time() const { return dax_write_time_; }

 private:
  // RPC opcodes.
  static constexpr std::uint16_t kOpenCreate = 1;
  static constexpr std::uint16_t kWriteChunk = 2;
  static constexpr std::uint16_t kCommit = 3;
  static constexpr std::uint16_t kReadChunk = 4;
  static constexpr std::uint16_t kStat = 5;
  static constexpr std::uint16_t kRemove = 6;

  rdma::RpcHandler make_handler();

  BeeGfsServer& server_;
  std::string label_;
  std::unique_ptr<rdma::RpcChannel> rpc_;
  Duration dax_write_time_{0};
  // In-flight file assembly on the server side (per mount = per handle).
  std::string open_path_;
  Bytes open_size_ = 0;
  std::vector<std::byte> open_contents_;
  bool open_phantom_ = true;
};

}  // namespace portus::storage
