// RPC-over-RDMA: the two-sided request/response transport that BeeGFS uses
// (the paper's ref [35] "RPCoRDMA"). This is the *slow* transport the
// traditional checkpointing path rides on — every chunk costs a SEND, a
// handler dispatch on the server CPU, and a SEND back, in contrast to the
// Portus daemon's one-sided pulls.
//
// Each RpcChannel owns a QP pair, per-side staging buffers in DRAM, and a
// server-side worker process running the registered handler.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/units.h"
#include "mem/address_space.h"
#include "rdma/fabric.h"
#include "sim/task.h"

namespace portus::rdma {

// Handler result: response payload plus optional phantom padding — extra
// wire bytes charged but not carried (timing-only reads of large files).
struct RpcReply {
  std::vector<std::byte> payload;
  Bytes phantom_pad = 0;
};

// Handler: (opcode, request payload) -> reply. May co_await (e.g. a DAX
// write with its timing) before responding.
using RpcHandler = std::function<sim::SubTask<RpcReply>(std::uint16_t, std::vector<std::byte>)>;

class RpcChannel {
 public:
  static constexpr Bytes kStagingSize = 4_MiB;

  // Builds the QPs on both NICs, connects them, and starts the server-side
  // dispatch process. `handler` runs on the server for every call.
  RpcChannel(Fabric& fabric, mem::AddressSpace& addr_space, RdmaNic& client_nic,
             RdmaNic& server_nic, std::string name, RpcHandler handler);

  // Issue one call and await the response. Calls on one channel are
  // serialized (BeeGFS streams chunks sequentially per file handle).
  // `phantom_payload` inflates the request's wire size without carrying
  // bytes — used by timing-only writes of large files, which must still pay
  // full transport cost.
  sim::SubTask<std::vector<std::byte>> call(std::uint16_t opcode,
                                            std::vector<std::byte> payload,
                                            Bytes phantom_payload = 0);

  std::uint64_t calls_completed() const { return calls_completed_; }

 private:
  sim::Process serve();

  Fabric& fabric_;
  RpcHandler handler_;
  std::string name_;

  std::shared_ptr<mem::MemorySegment> client_staging_;
  std::shared_ptr<mem::MemorySegment> server_staging_;
  std::unique_ptr<CompletionQueue> client_cq_;
  std::unique_ptr<CompletionQueue> server_cq_;
  ProtectionDomain* client_pd_;
  ProtectionDomain* server_pd_;
  const MemoryRegion* client_mr_;
  const MemoryRegion* server_mr_;
  QueuePair* client_qp_;
  QueuePair* server_qp_;
  bool call_in_flight_ = false;
  std::uint64_t calls_completed_ = 0;
};

}  // namespace portus::rdma
