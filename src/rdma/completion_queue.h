// Completion queues: where finished work requests surface.
//
// Mirrors ibv_cq usage: non-blocking poll() plus an awaitable wait() for
// coroutine consumers (the simulated equivalent of a completion channel).
//
// Delivery is lock-free: executors push finished completions into an MPSC
// inbox (one atomic exchange, no lock shared with the consumer) and then
// release a ready token through the sim channel that parks/wakes the
// consumer coroutine. Reaping a completion therefore never contends with
// deliveries still in flight — the paper's requirement that CQ polling
// stay off the daemon's lock.
//
// Pipelined consumers that keep several work requests in flight on one CQ
// (possibly across several QPs bound to it) use wait_for(wr_id): any
// completion that arrives for a *different* wr_id is stashed and handed out
// by a later wait()/wait_for()/poll() instead of being dropped, so windowed
// posting and wr_id-keyed draining can coexist on the same queue.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "common/mpsc_queue.h"
#include "common/units.h"
#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace portus::rdma {

enum class WcOpcode : std::uint8_t { kRead, kWrite, kSend, kRecv, kLocalCopy };
enum class WcStatus : std::uint8_t {
  kSuccess,
  kRemoteAccessError,  // bad rkey / out-of-bounds / missing permission
  kRemoteInvalidRequest,
  kFlushError,         // QP destroyed / disconnected with op in flight
};

const char* to_string(WcOpcode op);
const char* to_string(WcStatus status);

struct WorkCompletion {
  std::uint64_t wr_id = 0;
  WcOpcode opcode = WcOpcode::kRead;
  WcStatus status = WcStatus::kSuccess;
  Bytes byte_len = 0;
};

class CompletionQueue {
 public:
  explicit CompletionQueue(sim::Engine& engine) : ready_{engine} {}

  // Non-blocking: pops one completion if present (stashed entries first).
  std::optional<WorkCompletion> poll();

  // Awaitable: suspends until a completion arrives. Stashed entries (left
  // behind by a wait_for() that matched a later one) are drained first, in
  // arrival order.
  sim::SubTask<WorkCompletion> wait();

  // Awaitable: suspends until the completion carrying `wr_id` arrives;
  // completions for other wr_ids encountered along the way are stashed for
  // subsequent waiters rather than discarded.
  sim::SubTask<WorkCompletion> wait_for(std::uint64_t wr_id);

  // NIC-side delivery: lock-free inbox push, then a ready token. The push
  // fully completes before the token is visible, so a consumer woken by
  // the token always finds its completion.
  void deliver(WorkCompletion wc) {
    inbox_.push(std::move(wc));
    ready_.push(true);
  }

  std::size_t depth() const { return ready_.size() + stash_.size(); }

 private:
  // Pops the inbox entry matching a consumed ready token (must exist).
  WorkCompletion take_one();

  MpscQueue<WorkCompletion> inbox_;   // lock-free delivery path
  sim::Channel<bool> ready_;          // one token per delivered completion
  std::deque<WorkCompletion> stash_;  // out-of-order arrivals, FIFO
};

}  // namespace portus::rdma
