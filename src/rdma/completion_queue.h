// Completion queues: where finished work requests surface.
//
// Mirrors ibv_cq usage: non-blocking poll() plus an awaitable wait() for
// coroutine consumers (the simulated equivalent of a completion channel).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "common/units.h"
#include "sim/engine.h"
#include "sim/sync.h"

namespace portus::rdma {

enum class WcOpcode : std::uint8_t { kRead, kWrite, kSend, kRecv };
enum class WcStatus : std::uint8_t {
  kSuccess,
  kRemoteAccessError,  // bad rkey / out-of-bounds / missing permission
  kRemoteInvalidRequest,
  kFlushError,         // QP destroyed / disconnected with op in flight
};

const char* to_string(WcOpcode op);
const char* to_string(WcStatus status);

struct WorkCompletion {
  std::uint64_t wr_id = 0;
  WcOpcode opcode = WcOpcode::kRead;
  WcStatus status = WcStatus::kSuccess;
  Bytes byte_len = 0;
};

class CompletionQueue {
 public:
  explicit CompletionQueue(sim::Engine& engine) : chan_{engine} {}

  // Non-blocking: pops one completion if present.
  std::optional<WorkCompletion> poll();

  // Awaitable: suspends until a completion arrives.
  auto wait() { return chan_.recv(); }

  // NIC-side delivery.
  void deliver(WorkCompletion wc) { chan_.push(std::move(wc)); }

  std::size_t depth() const { return chan_.size(); }

 private:
  sim::Channel<WorkCompletion> chan_;
};

}  // namespace portus::rdma
