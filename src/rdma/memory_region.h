// RDMA memory regions and protection domains.
//
// A MemoryRegion pins a (segment, offset, length) range and hands out an
// lkey/rkey pair. One-sided verbs name remote memory as (rkey, global
// address); the target NIC validates the key, the access flags, and the
// bounds before touching memory — violations complete with
// kRemoteAccessError, exactly how an RC QP surfaces protection faults.
//
// Regions carry the datapath properties of the memory behind them: per-flow
// rate caps (e.g. the GPU BAR read limit) and the device bandwidth channel
// transfers must also traverse (PCIe for GPU memory, the PMEM write channel
// for Optane, the memory bus for DRAM).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "common/units.h"
#include "mem/segment.h"
#include "sim/bandwidth_channel.h"

namespace portus::rdma {

enum AccessFlags : std::uint32_t {
  kLocalRead = 1u << 0,
  kLocalWrite = 1u << 1,
  kRemoteRead = 1u << 2,
  kRemoteWrite = 1u << 3,
  kAllAccess = kLocalRead | kLocalWrite | kRemoteRead | kRemoteWrite,
};

struct MemoryRegion {
  std::uint32_t lkey = 0;
  std::uint32_t rkey = 0;
  std::uint64_t addr = 0;  // global address of byte 0
  Bytes length = 0;
  std::uint32_t access = 0;
  mem::MemorySegment* segment = nullptr;  // null for phantom payloads
  bool phantom = false;

  // Datapath model.
  Bandwidth read_cap = Bandwidth::unlimited();   // per-flow cap when data is read out
  Bandwidth write_cap = Bandwidth::unlimited();  // per-flow cap when data is written in
  sim::BandwidthChannel* device_channel_read = nullptr;
  sim::BandwidthChannel* device_channel_write = nullptr;

  bool covers(std::uint64_t a, Bytes len) const {
    return a >= addr && a + len <= addr + length && a + len >= a;
  }
};

struct RegionDesc {
  mem::MemorySegment* segment = nullptr;  // may be null only when phantom
  std::uint64_t addr = 0;
  Bytes length = 0;
  std::uint32_t access = kAllAccess;
  bool phantom = false;
  Bandwidth read_cap = Bandwidth::unlimited();
  Bandwidth write_cap = Bandwidth::unlimited();
  sim::BandwidthChannel* device_channel_read = nullptr;
  sim::BandwidthChannel* device_channel_write = nullptr;
};

class ProtectionDomain {
 public:
  explicit ProtectionDomain(std::string name) : name_{std::move(name)} {}
  ProtectionDomain(const ProtectionDomain&) = delete;
  ProtectionDomain& operator=(const ProtectionDomain&) = delete;

  const MemoryRegion& register_region(const RegionDesc& desc);
  void deregister(std::uint32_t lkey);

  // rkey lookup used by the target NIC when executing remote ops. Returns
  // nullptr when the key is unknown (surfaced as a completion error).
  const MemoryRegion* find_by_rkey(std::uint32_t rkey) const;
  const MemoryRegion* find_by_lkey(std::uint32_t lkey) const;

  std::size_t region_count() const { return by_lkey_.size(); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::uint32_t next_key_ = 0x1000;
  std::unordered_map<std::uint32_t, std::unique_ptr<MemoryRegion>> by_lkey_;
  std::unordered_map<std::uint32_t, MemoryRegion*> by_rkey_;
};

}  // namespace portus::rdma
