#include "rdma/rpc.h"

#include "common/logging.h"

namespace portus::rdma {

namespace {

// Staging layout: [u16 opcode][u64 payload_len][payload...]
std::vector<std::byte> encode_message(std::uint16_t opcode,
                                      std::span<const std::byte> payload) {
  BinaryWriter w;
  w.u16(opcode);
  w.u64(payload.size());
  w.raw(payload);
  return w.take();
}

}  // namespace

RpcChannel::RpcChannel(Fabric& fabric, mem::AddressSpace& addr_space, RdmaNic& client_nic,
                       RdmaNic& server_nic, std::string name, RpcHandler handler)
    : fabric_{fabric}, handler_{std::move(handler)}, name_{std::move(name)} {
  client_staging_ =
      addr_space.create_segment(name_ + "/client-staging", mem::MemoryKind::kDram, kStagingSize);
  server_staging_ =
      addr_space.create_segment(name_ + "/server-staging", mem::MemoryKind::kDram, kStagingSize);
  client_cq_ = std::make_unique<CompletionQueue>(fabric.engine());
  server_cq_ = std::make_unique<CompletionQueue>(fabric.engine());
  client_pd_ = &client_nic.alloc_pd(name_ + "/client-pd");
  server_pd_ = &server_nic.alloc_pd(name_ + "/server-pd");
  client_mr_ = &client_pd_->register_region(RegionDesc{
      .segment = client_staging_.get(),
      .addr = client_staging_->base_addr(),
      .length = kStagingSize,
  });
  server_mr_ = &server_pd_->register_region(RegionDesc{
      .segment = server_staging_.get(),
      .addr = server_staging_->base_addr(),
      .length = kStagingSize,
  });
  client_qp_ = &fabric.create_qp(client_nic, *client_pd_, *client_cq_);
  server_qp_ = &fabric.create_qp(server_nic, *server_pd_, *server_cq_);
  fabric.connect(*client_qp_, *server_qp_);

  // Server always keeps one receive posted.
  server_qp_->post_recv(RecvWr{.wr_id = 1, .lkey = server_mr_->lkey,
                               .addr = server_mr_->addr, .length = kStagingSize});
  fabric.engine().spawn(serve());
}

sim::SubTask<std::vector<std::byte>> RpcChannel::call(std::uint16_t opcode,
                                                      std::vector<std::byte> payload,
                                                      Bytes phantom_payload) {
  PORTUS_CHECK(!call_in_flight_, "RpcChannel calls must not be issued concurrently");
  call_in_flight_ = true;
  const auto msg = encode_message(opcode, payload);
  PORTUS_CHECK_ARG(msg.size() + phantom_payload <= kStagingSize,
                   "RPC message exceeds staging buffer");
  client_staging_->write(0, msg);

  // Post the response receive before the request send (no race possible).
  client_qp_->post_recv(RecvWr{.wr_id = 2, .lkey = client_mr_->lkey,
                               .addr = client_mr_->addr, .length = kStagingSize});
  client_qp_->post(WorkRequest{.opcode = WcOpcode::kSend, .wr_id = 3,
                               .lkey = client_mr_->lkey, .local_addr = client_mr_->addr,
                               .length = msg.size() + phantom_payload});

  bool sent = false;
  bool received = false;
  Bytes resp_len = 0;
  while (!sent || !received) {
    const WorkCompletion wc = co_await client_cq_->wait();
    PORTUS_CHECK(wc.status == WcStatus::kSuccess,
                 std::string{"RPC transport error: "} + to_string(wc.status));
    if (wc.opcode == WcOpcode::kSend) {
      sent = true;
    } else {
      received = true;
      resp_len = wc.byte_len;
    }
  }

  const auto raw = client_staging_->read(0, resp_len);
  BinaryReader r{raw};
  r.u16();  // opcode echo
  const Bytes n = r.u64();
  auto body = r.raw(n);
  call_in_flight_ = false;
  ++calls_completed_;
  co_return std::vector<std::byte>(body.begin(), body.end());
}

sim::Process RpcChannel::serve() {
  try {
    for (;;) {
      const WorkCompletion wc = co_await server_cq_->wait();
      if (wc.opcode == WcOpcode::kSend) continue;  // our own response send
      PORTUS_CHECK(wc.status == WcStatus::kSuccess, "RPC server receive error");

      const auto raw = server_staging_->read(0, wc.byte_len);
      BinaryReader r{raw};
      const std::uint16_t opcode = r.u16();
      const Bytes n = r.u64();
      auto body = r.raw(n);

      RpcReply reply =
          co_await handler_(opcode, std::vector<std::byte>(body.begin(), body.end()));

      const auto resp_msg = encode_message(opcode, reply.payload);
      PORTUS_CHECK_ARG(resp_msg.size() + reply.phantom_pad <= kStagingSize,
                       "RPC response exceeds staging buffer");
      server_staging_->write(0, resp_msg);

      // Re-arm the receive before answering so back-to-back calls never RNR.
      server_qp_->post_recv(RecvWr{.wr_id = 1, .lkey = server_mr_->lkey,
                                   .addr = server_mr_->addr, .length = kStagingSize});
      server_qp_->post(WorkRequest{.opcode = WcOpcode::kSend, .wr_id = 4,
                                   .lkey = server_mr_->lkey, .local_addr = server_mr_->addr,
                                   .length = resp_msg.size() + reply.phantom_pad});
    }
  } catch (const Disconnected&) {
    // Engine teardown.
  }
}

}  // namespace portus::rdma
