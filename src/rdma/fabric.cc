#include "rdma/fabric.h"

#include <algorithm>

#include "common/logging.h"
#include "mem/segment.h"

namespace portus::rdma {

QueuePair& Fabric::create_qp(RdmaNic& nic, ProtectionDomain& pd, CompletionQueue& cq,
                             int max_outstanding) {
  qps_.push_back(std::unique_ptr<QueuePair>{
      new QueuePair{*this, nic, pd, cq, next_qp_num_++, max_outstanding}});
  return *qps_.back();
}

void Fabric::connect(QueuePair& a, QueuePair& b) {
  PORTUS_CHECK_ARG(!a.connected() && !b.connected(), "QP already connected");
  PORTUS_CHECK_ARG(&a != &b, "cannot self-connect a QP");
  a.peer_ = &b;
  b.peer_ = &a;
  engine_.spawn(a.run_send_queue());
  engine_.spawn(b.run_send_queue());
}

sim::SubTask<> Fabric::charge_path(std::vector<sim::BandwidthChannel*> channels, Bytes bytes,
                                   Bandwidth flow_cap) {
  // Deduplicate (loopback transfers would otherwise double-charge a link).
  std::sort(channels.begin(), channels.end());
  channels.erase(std::unique(channels.begin(), channels.end()), channels.end());
  channels.erase(std::remove(channels.begin(), channels.end(), nullptr), channels.end());

  std::vector<sim::Process> flows;
  flows.reserve(channels.size());
  for (auto* ch : channels) {
    flows.push_back(engine_.spawn(
        [](sim::BandwidthChannel& c, Bytes n, Bandwidth cap) -> sim::Process {
          co_await c.transfer(n, cap);
        }(*ch, bytes, flow_cap)));
  }
  for (auto& f : flows) co_await f.join();
}

sim::SubTask<WorkCompletion> Fabric::execute(QueuePair& initiator, WorkRequest wr) {
  ++ops_executed_;
  if (wr.opcode == WcOpcode::kSend) {
    co_return co_await execute_send(initiator, wr);
  }
  co_return co_await execute_one_sided(initiator, wr);
}

sim::SubTask<WorkCompletion> Fabric::execute_one_sided(QueuePair& initiator, WorkRequest wr) {
  const bool is_read = wr.opcode == WcOpcode::kRead;
  WorkCompletion wc{.wr_id = wr.wr_id, .opcode = wr.opcode, .status = WcStatus::kSuccess,
                    .byte_len = wr.length};

  QueuePair* peer = initiator.peer();
  PORTUS_CHECK(peer != nullptr, "one-sided op on unconnected QP");

  // WQE processing + request propagation. A WR that rode an earlier WR's
  // doorbell (chained ibv_post_send list) skips the MMIO ring + WQE fetch
  // baked into the per-op latency; a lone post is charged exactly as before.
  const auto& spec = initiator.nic().spec();
  Duration setup = (is_read ? spec.read_latency : spec.write_latency) + switch_latency_;
  if (wr.chained) setup -= std::min(setup, spec.doorbell_latency);
  co_await engine_.sleep(setup);

  // Local SGE validation.
  const MemoryRegion* local = initiator.pd().find_by_lkey(wr.lkey);
  if (local == nullptr || !local->covers(wr.local_addr, wr.length)) {
    wc.status = WcStatus::kRemoteInvalidRequest;  // local protection error
    co_return wc;
  }
  // Effective remote gather/scatter list: the explicit SGE list, or the
  // classic single (rkey, remote_addr) pair. A READ gathers the list into
  // the contiguous local range; a WRITE scatters the local range across it.
  std::vector<RemoteSge> sges = wr.remote_sges;
  if (sges.empty()) {
    sges.push_back(RemoteSge{wr.rkey, wr.remote_addr, wr.length});
  }
  Bytes sge_total = 0;
  for (const auto& s : sges) sge_total += s.length;
  if (sge_total != wr.length) {
    wc.status = WcStatus::kRemoteInvalidRequest;  // malformed gather list
    co_return wc;
  }
  // Remote rkey validation at the target NIC, entry by entry.
  const std::uint32_t needed = is_read ? kRemoteRead : kRemoteWrite;
  std::vector<const MemoryRegion*> remotes;
  remotes.reserve(sges.size());
  for (const auto& s : sges) {
    const MemoryRegion* remote = peer->pd().find_by_rkey(s.rkey);
    if (remote == nullptr || !remote->covers(s.addr, s.length) ||
        (remote->access & needed) == 0) {
      wc.status = WcStatus::kRemoteAccessError;
      co_return wc;
    }
    remotes.push_back(remote);
  }

  // Cost model: the whole gather moves as one operation — the per-op
  // latency was charged above, and the summed bytes ride one path whose
  // cap is the tightest of every region touched (charge_path dedups the
  // channel list, so N members of one GPU region charge its BAR once).
  Bandwidth cap = min(initiator.nic().spec().per_qp_cap, peer->nic().spec().per_qp_cap);
  cap = min(cap, is_read ? local->write_cap : local->read_cap);
  std::vector<sim::BandwidthChannel*> path;
  path.push_back(&initiator.nic().link());
  path.push_back(&peer->nic().link());
  path.push_back(is_read ? local->device_channel_write : local->device_channel_read);
  for (const auto* remote : remotes) {
    cap = min(cap, is_read ? remote->read_cap : remote->write_cap);
    path.push_back(is_read ? remote->device_channel_read : remote->device_channel_write);
  }
  co_await charge_path(std::move(path), wr.length, cap);

  std::uint64_t local_cursor = wr.local_addr;
  for (std::size_t i = 0; i < sges.size(); ++i) {
    const MemoryRegion* remote = remotes[i];
    const MemoryRegion* src = is_read ? remote : local;
    const MemoryRegion* dst = is_read ? local : remote;
    const std::uint64_t src_addr = is_read ? sges[i].addr : local_cursor;
    const std::uint64_t dst_addr = is_read ? local_cursor : sges[i].addr;
    if (!src->phantom && !dst->phantom) {
      mem::copy_bytes(*dst->segment, dst->segment->to_offset(dst_addr), *src->segment,
                      src->segment->to_offset(src_addr), sges[i].length);
      bytes_moved_ += sges[i].length;
    } else if (dst->segment != nullptr && !dst->phantom) {
      // Phantom source into real destination: account persistence metadata
      // without contents (zero-fill is skipped; dirtiness still tracked).
      dst->segment->mark_dirty(dst->segment->to_offset(dst_addr), sges[i].length);
    }
    local_cursor += sges[i].length;
  }
  co_return wc;
}

sim::SubTask<WorkCompletion> Fabric::execute_send(QueuePair& initiator, WorkRequest wr) {
  WorkCompletion wc{.wr_id = wr.wr_id, .opcode = WcOpcode::kSend, .status = WcStatus::kSuccess,
                    .byte_len = wr.length};
  QueuePair* peer = initiator.peer();
  PORTUS_CHECK(peer != nullptr, "SEND on unconnected QP");

  const MemoryRegion* local = initiator.pd().find_by_lkey(wr.lkey);
  if (local == nullptr || !local->covers(wr.local_addr, wr.length)) {
    wc.status = WcStatus::kRemoteInvalidRequest;
    co_return wc;
  }

  co_await engine_.sleep(initiator.nic().spec().send_latency + switch_latency_);

  // RNR: wait for a posted receive on the peer.
  co_await peer->rq_tokens_.acquire();
  PORTUS_CHECK(!peer->rq_.empty(), "recv token without posted receive");
  const RecvWr recv = peer->rq_.front();
  peer->rq_.pop_front();

  const MemoryRegion* remote = peer->pd().find_by_lkey(recv.lkey);
  if (remote == nullptr || !remote->covers(recv.addr, recv.length) ||
      recv.length < wr.length) {
    wc.status = WcStatus::kRemoteInvalidRequest;
    peer->cq().deliver(WorkCompletion{.wr_id = recv.wr_id, .opcode = WcOpcode::kRecv,
                                      .status = WcStatus::kRemoteInvalidRequest,
                                      .byte_len = 0});
    co_return wc;
  }

  const Bandwidth cap = min(min(local->read_cap, remote->write_cap),
                            min(initiator.nic().spec().per_qp_cap,
                                peer->nic().spec().per_qp_cap));
  std::vector<sim::BandwidthChannel*> path;
  path.push_back(&initiator.nic().link());
  path.push_back(&peer->nic().link());
  path.push_back(local->device_channel_read);
  path.push_back(remote->device_channel_write);
  co_await charge_path(std::move(path), wr.length, cap);

  if (!local->phantom && !remote->phantom) {
    mem::copy_bytes(*remote->segment, remote->segment->to_offset(recv.addr), *local->segment,
                    local->segment->to_offset(wr.local_addr), wr.length);
    bytes_moved_ += wr.length;
  }

  peer->cq().deliver(WorkCompletion{.wr_id = recv.wr_id, .opcode = WcOpcode::kRecv,
                                    .status = WcStatus::kSuccess, .byte_len = wr.length});
  co_return wc;
}

}  // namespace portus::rdma
