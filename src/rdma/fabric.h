// The InfiniBand fabric: wires QPs together and executes verbs.
//
// A transfer is charged on every bandwidth resource along its path — both
// NIC links plus the source and destination *device* channels carried by
// the memory regions (GPU PCIe/BAR, PMEM write channel, DRAM bus). Each
// resource runs its own fluid fair-sharing; the transfer completes when the
// slowest of them drains, which is how endpoint bottlenecks (GPU BAR reads,
// Optane write-concurrency collapse) propagate into end-to-end times.
//
// Real bytes move with the timing: one-sided READ copies remote->local,
// WRITE copies local->remote, SEND copies into the remote's posted receive
// buffer. Phantom regions move time but no bytes (large-model benches).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.h"
#include "rdma/completion_queue.h"
#include "rdma/nic.h"
#include "rdma/queue_pair.h"
#include "sim/engine.h"
#include "sim/task.h"

namespace portus::rdma {

class Fabric {
 public:
  explicit Fabric(sim::Engine& engine, Duration switch_latency = std::chrono::nanoseconds{600})
      : engine_{engine}, switch_latency_{switch_latency} {}
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // `max_outstanding` is the QP's WQE processing depth: how many posted
  // work requests the executor keeps in flight at once (1 = strictly
  // serial, the classic behaviour).
  QueuePair& create_qp(RdmaNic& nic, ProtectionDomain& pd, CompletionQueue& cq,
                       int max_outstanding = 1);

  // RC connection establishment (both directions).
  void connect(QueuePair& a, QueuePair& b);

  sim::Engine& engine() { return engine_; }
  Duration switch_latency() const { return switch_latency_; }

  // --- internal: called by the QP's send-queue executor ---
  sim::SubTask<WorkCompletion> execute(QueuePair& initiator, WorkRequest wr);

  std::uint64_t ops_executed() const { return ops_executed_; }
  Bytes bytes_moved() const { return bytes_moved_; }

 private:
  sim::SubTask<WorkCompletion> execute_one_sided(QueuePair& initiator, WorkRequest wr);
  sim::SubTask<WorkCompletion> execute_send(QueuePair& initiator, WorkRequest wr);

  // Charge `bytes` concurrently on every non-null channel; returns when the
  // slowest finishes.
  sim::SubTask<> charge_path(std::vector<sim::BandwidthChannel*> channels, Bytes bytes,
                             Bandwidth flow_cap);

  sim::Engine& engine_;
  Duration switch_latency_;
  std::uint32_t next_qp_num_ = 100;
  std::vector<std::unique_ptr<QueuePair>> qps_;
  std::uint64_t ops_executed_ = 0;
  Bytes bytes_moved_ = 0;
};

}  // namespace portus::rdma
