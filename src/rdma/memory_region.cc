#include "rdma/memory_region.h"

namespace portus::rdma {

const MemoryRegion& ProtectionDomain::register_region(const RegionDesc& desc) {
  PORTUS_CHECK_ARG(desc.length > 0, "cannot register empty region");
  PORTUS_CHECK_ARG(desc.phantom || desc.segment != nullptr,
                   "non-phantom region requires a backing segment");
  if (desc.segment != nullptr) {
    PORTUS_CHECK_ARG(desc.segment->contains_global(desc.addr, desc.length),
                     "region exceeds backing segment bounds");
  }
  auto mr = std::make_unique<MemoryRegion>();
  mr->lkey = next_key_++;
  mr->rkey = next_key_++;
  mr->addr = desc.addr;
  mr->length = desc.length;
  mr->access = desc.access;
  mr->segment = desc.segment;
  mr->phantom = desc.phantom;
  mr->read_cap = desc.read_cap;
  mr->write_cap = desc.write_cap;
  mr->device_channel_read = desc.device_channel_read;
  mr->device_channel_write = desc.device_channel_write;

  MemoryRegion* raw = mr.get();
  by_rkey_.emplace(raw->rkey, raw);
  by_lkey_.emplace(raw->lkey, std::move(mr));
  return *raw;
}

void ProtectionDomain::deregister(std::uint32_t lkey) {
  const auto it = by_lkey_.find(lkey);
  PORTUS_CHECK_ARG(it != by_lkey_.end(), "deregister of unknown lkey");
  by_rkey_.erase(it->second->rkey);
  by_lkey_.erase(it);
}

const MemoryRegion* ProtectionDomain::find_by_rkey(std::uint32_t rkey) const {
  const auto it = by_rkey_.find(rkey);
  return it == by_rkey_.end() ? nullptr : it->second;
}

const MemoryRegion* ProtectionDomain::find_by_lkey(std::uint32_t lkey) const {
  const auto it = by_lkey_.find(lkey);
  return it == by_lkey_.end() ? nullptr : it->second.get();
}

}  // namespace portus::rdma
