#include "rdma/completion_queue.h"

#include "common/error.h"

namespace portus::rdma {

const char* to_string(WcOpcode op) {
  switch (op) {
    case WcOpcode::kRead: return "RDMA_READ";
    case WcOpcode::kWrite: return "RDMA_WRITE";
    case WcOpcode::kSend: return "SEND";
    case WcOpcode::kRecv: return "RECV";
    case WcOpcode::kLocalCopy: return "LOCAL_COPY";
  }
  return "?";
}

const char* to_string(WcStatus status) {
  switch (status) {
    case WcStatus::kSuccess: return "SUCCESS";
    case WcStatus::kRemoteAccessError: return "REMOTE_ACCESS_ERROR";
    case WcStatus::kRemoteInvalidRequest: return "REMOTE_INVALID_REQUEST";
    case WcStatus::kFlushError: return "FLUSH_ERROR";
  }
  return "?";
}

WorkCompletion CompletionQueue::take_one() {
  auto wc = inbox_.try_pop();
  PORTUS_CHECK(wc.has_value(), "CQ ready token without a delivered completion");
  return std::move(*wc);
}

std::optional<WorkCompletion> CompletionQueue::poll() {
  if (!stash_.empty()) {
    auto wc = std::move(stash_.front());
    stash_.pop_front();
    return wc;
  }
  if (ready_.empty()) return std::nullopt;
  // Channel has no non-coroutine pop; emulate via immediate recv awaitable.
  // Since the queue is non-empty, await_ready() is true and the token is
  // consumed synchronously.
  auto aw = ready_.recv();
  if (!aw.await_ready()) return std::nullopt;
  (void)aw.await_resume();
  return take_one();
}

sim::SubTask<WorkCompletion> CompletionQueue::wait() {
  if (!stash_.empty()) {
    auto wc = std::move(stash_.front());
    stash_.pop_front();
    co_return wc;
  }
  co_await ready_.recv();
  co_return take_one();
}

sim::SubTask<WorkCompletion> CompletionQueue::wait_for(std::uint64_t wr_id) {
  for (;;) {
    for (auto it = stash_.begin(); it != stash_.end(); ++it) {
      if (it->wr_id != wr_id) continue;
      auto wc = std::move(*it);
      stash_.erase(it);
      co_return wc;
    }
    co_await ready_.recv();
    auto wc = take_one();
    if (wc.wr_id == wr_id) co_return wc;
    stash_.push_back(std::move(wc));
  }
}

}  // namespace portus::rdma
