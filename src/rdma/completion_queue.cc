#include "rdma/completion_queue.h"

namespace portus::rdma {

const char* to_string(WcOpcode op) {
  switch (op) {
    case WcOpcode::kRead: return "RDMA_READ";
    case WcOpcode::kWrite: return "RDMA_WRITE";
    case WcOpcode::kSend: return "SEND";
    case WcOpcode::kRecv: return "RECV";
  }
  return "?";
}

const char* to_string(WcStatus status) {
  switch (status) {
    case WcStatus::kSuccess: return "SUCCESS";
    case WcStatus::kRemoteAccessError: return "REMOTE_ACCESS_ERROR";
    case WcStatus::kRemoteInvalidRequest: return "REMOTE_INVALID_REQUEST";
    case WcStatus::kFlushError: return "FLUSH_ERROR";
  }
  return "?";
}

std::optional<WorkCompletion> CompletionQueue::poll() {
  if (chan_.empty()) return std::nullopt;
  // Channel has no non-coroutine pop; emulate via immediate recv awaitable.
  // Since the queue is non-empty, await_ready() is true and the value is
  // available synchronously.
  auto aw = chan_.recv();
  if (!aw.await_ready()) return std::nullopt;
  return aw.await_resume();
}

}  // namespace portus::rdma
