// Reliable-connected queue pairs.
//
// Work requests posted to a QP start executing strictly in order (RC
// ordering): an internal executor process drains the send queue and runs
// each WQE through the fabric, delivering a completion to the CQ when it
// finishes. The executor keeps up to `max_outstanding` WQEs in flight at
// once (the NIC's processing depth); at the default depth of 1 it degrades
// to the classic one-WQE-at-a-time loop, where a completion is delivered
// before the next WQE begins. Two-sided SENDs match the remote QP's posted
// receive buffers FIFO; a SEND with no posted receive waits (RNR retry,
// infinite retry count).
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "common/units.h"
#include "rdma/completion_queue.h"
#include "rdma/memory_region.h"
#include "rdma/nic.h"
#include "sim/process.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace portus::rdma {

class Fabric;

// One element of a remote gather/scatter list. Each entry carries its own
// rkey: a coalesced checkpoint extent spans several client tensors, and
// every tensor is registered as its own memory region.
struct RemoteSge {
  std::uint32_t rkey = 0;
  std::uint64_t addr = 0;
  Bytes length = 0;
};

struct WorkRequest {
  WcOpcode opcode = WcOpcode::kRead;
  std::uint64_t wr_id = 0;
  // Local side: one contiguous range.
  std::uint32_t lkey = 0;
  std::uint64_t local_addr = 0;
  Bytes length = 0;
  // Remote side (one-sided ops). When `remote_sges` is non-empty it
  // replaces rkey/remote_addr: a READ gathers the list into the local
  // range, a WRITE scatters the local range across it, and the entry
  // lengths must sum to `length`. Either way the request costs one WQE,
  // one per-op latency, and one completion — the point of coalescing.
  // The list length is capped by the posting NIC's NicSpec::max_sges.
  std::uint32_t rkey = 0;
  std::uint64_t remote_addr = 0;
  std::vector<RemoteSge> remote_sges;
  // Set by the chained post() overload for every list entry after the
  // first: this WR rode an earlier WR's doorbell, so the fabric discounts
  // NicSpec::doorbell_latency from its per-op setup cost. Callers never
  // set it directly.
  bool chained = false;
};

struct RecvWr {
  std::uint64_t wr_id = 0;
  std::uint32_t lkey = 0;
  std::uint64_t addr = 0;
  Bytes length = 0;
};

class QueuePair {
 public:
  QueuePair(const QueuePair&) = delete;
  QueuePair& operator=(const QueuePair&) = delete;

  std::uint32_t qp_num() const { return qp_num_; }
  bool connected() const { return peer_ != nullptr; }
  QueuePair* peer() const { return peer_; }
  RdmaNic& nic() { return nic_; }
  ProtectionDomain& pd() { return pd_; }
  CompletionQueue& cq() { return cq_; }
  int max_outstanding() const { return max_outstanding_; }

  // Post to the send queue; the completion lands in cq() later. One
  // doorbell per call.
  void post(WorkRequest wr);
  // Doorbell batching: post a whole list in one call (ibv_post_send with a
  // chained wr list). Executes each in order, but only the head WR pays
  // the doorbell cost — entries after it are marked chained and the fabric
  // discounts NicSpec::doorbell_latency from their setup latency.
  void post(std::span<const WorkRequest> wrs);
  // Doorbells rung on this QP (each post() call = 1, batched or not).
  std::uint64_t doorbells() const { return doorbells_; }
  void post_recv(RecvWr wr);

  // Convenience: post and await the matching completion, keyed by wr_id —
  // safe even when the CQ is shared with other QPs or pipelined consumers.
  sim::SubTask<WorkCompletion> read_sync(std::uint32_t lkey, std::uint64_t local_addr,
                                         Bytes length, std::uint32_t rkey,
                                         std::uint64_t remote_addr);
  sim::SubTask<WorkCompletion> write_sync(std::uint32_t lkey, std::uint64_t local_addr,
                                          Bytes length, std::uint32_t rkey,
                                          std::uint64_t remote_addr);
  sim::SubTask<WorkCompletion> send_sync(std::uint32_t lkey, std::uint64_t local_addr,
                                         Bytes length);

  std::size_t send_queue_depth() const { return sq_.size(); }

 private:
  friend class Fabric;
  QueuePair(Fabric& fabric, RdmaNic& nic, ProtectionDomain& pd, CompletionQueue& cq,
            std::uint32_t qp_num, int max_outstanding);

  sim::Process run_send_queue();
  sim::Process execute_one(WorkRequest wr);

  Fabric& fabric_;
  RdmaNic& nic_;
  ProtectionDomain& pd_;
  CompletionQueue& cq_;
  std::uint32_t qp_num_;
  int max_outstanding_;
  QueuePair* peer_ = nullptr;
  std::uint64_t next_sync_wr_id_ = 0x5E000000ull;
  std::uint64_t doorbells_ = 0;

  sim::Channel<WorkRequest> sq_;
  sim::SimSemaphore wqe_slots_;  // bounds in-flight WQEs to max_outstanding
  std::deque<RecvWr> rq_;
  sim::SimSemaphore rq_tokens_;  // counts posted receives (RNR waiting)
};

}  // namespace portus::rdma
