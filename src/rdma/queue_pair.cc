#include "rdma/queue_pair.h"

#include "rdma/fabric.h"

namespace portus::rdma {

QueuePair::QueuePair(Fabric& fabric, RdmaNic& nic, ProtectionDomain& pd, CompletionQueue& cq,
                     std::uint32_t qp_num, int max_outstanding)
    : fabric_{fabric},
      nic_{nic},
      pd_{pd},
      cq_{cq},
      qp_num_{qp_num},
      max_outstanding_{max_outstanding},
      sq_{nic.engine()},
      wqe_slots_{nic.engine(), max_outstanding},
      rq_tokens_{nic.engine(), 0} {
  PORTUS_CHECK_ARG(max_outstanding >= 1, "QP processing depth must be >= 1");
}

void QueuePair::post(WorkRequest wr) {
  PORTUS_CHECK_ARG(connected(), "post on unconnected QP");
  PORTUS_CHECK_ARG(wr.remote_sges.size() <=
                       static_cast<std::size_t>(nic_.spec().max_sges),
                   "gather list exceeds the NIC's max_sges");
  wr.chained = false;  // a lone post always rings its own doorbell
  ++doorbells_;
  sq_.push(std::move(wr));
}

void QueuePair::post(std::span<const WorkRequest> wrs) {
  if (wrs.empty()) return;
  ++doorbells_;
  // The doorbell's MMIO ring + PCIe WQE fetch only gates a WQE when the NIC
  // has drained this QP's send queue and gone idle. A chain posted while
  // earlier WQEs are still queued or in flight rides the ongoing WQE
  // prefetch stream, so even its head skips the fetch round trip.
  const bool busy = !sq_.empty() || wqe_slots_.available() < max_outstanding_;
  bool first = true;
  for (const auto& wr : wrs) {
    PORTUS_CHECK_ARG(connected(), "post on unconnected QP");
    PORTUS_CHECK_ARG(wr.remote_sges.size() <=
                         static_cast<std::size_t>(nic_.spec().max_sges),
                     "gather list exceeds the NIC's max_sges");
    WorkRequest copy = wr;
    copy.chained = !first || busy;  // list entries after the head ride its doorbell
    first = false;
    sq_.push(std::move(copy));
  }
}

void QueuePair::post_recv(RecvWr wr) {
  rq_.push_back(wr);
  rq_tokens_.release();
}

sim::Process QueuePair::run_send_queue() {
  try {
    for (;;) {
      WorkRequest wr = co_await sq_.recv();
      // WQEs *start* in SQ order but may overlap up to the processing
      // depth; at depth 1 the slot is only returned after the completion
      // is delivered, reproducing the serial executor exactly.
      co_await wqe_slots_.acquire();
      nic_.engine().spawn(execute_one(wr));
    }
  } catch (const Disconnected&) {
    // QP torn down; nothing to flush (entries die with the channel).
  }
}

sim::Process QueuePair::execute_one(WorkRequest wr) {
  try {
    WorkCompletion wc = co_await fabric_.execute(*this, wr);
    cq_.deliver(wc);
    wqe_slots_.release();
  } catch (const Disconnected&) {
    // Fabric resource torn down mid-op; the WQE dies silently at shutdown.
  }
}

sim::SubTask<WorkCompletion> QueuePair::read_sync(std::uint32_t lkey, std::uint64_t local_addr,
                                                  Bytes length, std::uint32_t rkey,
                                                  std::uint64_t remote_addr) {
  const std::uint64_t id = next_sync_wr_id_++;
  post(WorkRequest{.opcode = WcOpcode::kRead,
                   .wr_id = id,
                   .lkey = lkey,
                   .local_addr = local_addr,
                   .length = length,
                   .rkey = rkey,
                   .remote_addr = remote_addr});
  WorkCompletion wc = co_await cq_.wait_for(id);
  co_return wc;
}

sim::SubTask<WorkCompletion> QueuePair::write_sync(std::uint32_t lkey, std::uint64_t local_addr,
                                                   Bytes length, std::uint32_t rkey,
                                                   std::uint64_t remote_addr) {
  const std::uint64_t id = next_sync_wr_id_++;
  post(WorkRequest{.opcode = WcOpcode::kWrite,
                   .wr_id = id,
                   .lkey = lkey,
                   .local_addr = local_addr,
                   .length = length,
                   .rkey = rkey,
                   .remote_addr = remote_addr});
  WorkCompletion wc = co_await cq_.wait_for(id);
  co_return wc;
}

sim::SubTask<WorkCompletion> QueuePair::send_sync(std::uint32_t lkey, std::uint64_t local_addr,
                                                  Bytes length) {
  const std::uint64_t id = next_sync_wr_id_++;
  post(WorkRequest{.opcode = WcOpcode::kSend,
                   .wr_id = id,
                   .lkey = lkey,
                   .local_addr = local_addr,
                   .length = length});
  WorkCompletion wc = co_await cq_.wait_for(id);
  co_return wc;
}

}  // namespace portus::rdma
