#include "rdma/queue_pair.h"

#include "rdma/fabric.h"

namespace portus::rdma {

QueuePair::QueuePair(Fabric& fabric, RdmaNic& nic, ProtectionDomain& pd, CompletionQueue& cq,
                     std::uint32_t qp_num)
    : fabric_{fabric},
      nic_{nic},
      pd_{pd},
      cq_{cq},
      qp_num_{qp_num},
      sq_{nic.engine()},
      rq_tokens_{nic.engine(), 0} {}

void QueuePair::post(WorkRequest wr) {
  PORTUS_CHECK_ARG(connected(), "post on unconnected QP");
  sq_.push(std::move(wr));
}

void QueuePair::post_recv(RecvWr wr) {
  rq_.push_back(wr);
  rq_tokens_.release();
}

sim::Process QueuePair::run_send_queue() {
  try {
    for (;;) {
      WorkRequest wr = co_await sq_.recv();
      WorkCompletion wc = co_await fabric_.execute(*this, wr);
      cq_.deliver(wc);
    }
  } catch (const Disconnected&) {
    // QP torn down; nothing to flush (entries die with the channel).
  }
}

sim::SubTask<WorkCompletion> QueuePair::read_sync(std::uint32_t lkey, std::uint64_t local_addr,
                                                  Bytes length, std::uint32_t rkey,
                                                  std::uint64_t remote_addr) {
  const std::uint64_t id = next_sync_wr_id_++;
  post(WorkRequest{.opcode = WcOpcode::kRead,
                   .wr_id = id,
                   .lkey = lkey,
                   .local_addr = local_addr,
                   .length = length,
                   .rkey = rkey,
                   .remote_addr = remote_addr});
  WorkCompletion wc = co_await cq_.wait();
  PORTUS_CHECK(wc.wr_id == id, "interleaved completion on exclusive QP (read_sync)");
  co_return wc;
}

sim::SubTask<WorkCompletion> QueuePair::write_sync(std::uint32_t lkey, std::uint64_t local_addr,
                                                   Bytes length, std::uint32_t rkey,
                                                   std::uint64_t remote_addr) {
  const std::uint64_t id = next_sync_wr_id_++;
  post(WorkRequest{.opcode = WcOpcode::kWrite,
                   .wr_id = id,
                   .lkey = lkey,
                   .local_addr = local_addr,
                   .length = length,
                   .rkey = rkey,
                   .remote_addr = remote_addr});
  WorkCompletion wc = co_await cq_.wait();
  PORTUS_CHECK(wc.wr_id == id, "interleaved completion on exclusive QP (write_sync)");
  co_return wc;
}

sim::SubTask<WorkCompletion> QueuePair::send_sync(std::uint32_t lkey, std::uint64_t local_addr,
                                                  Bytes length) {
  const std::uint64_t id = next_sync_wr_id_++;
  post(WorkRequest{.opcode = WcOpcode::kSend,
                   .wr_id = id,
                   .lkey = lkey,
                   .local_addr = local_addr,
                   .length = length});
  WorkCompletion wc = co_await cq_.wait();
  PORTUS_CHECK(wc.wr_id == id, "interleaved completion on exclusive QP (send_sync)");
  co_return wc;
}

}  // namespace portus::rdma
