// RDMA-capable NIC (simulated Mellanox ConnectX-5/6, 100 Gbps InfiniBand).
//
// Each NIC owns a link bandwidth channel that all flows traversing it share
// (max-min fair), and a per-QP rate cap reflecting single-stream verbs
// efficiency: one RDMA READ stream tops out near 8.3 GB/s on this hardware
// (Fig. 10(a): the DRAM-to-DRAM peak), while multiple QPs together can push
// the link toward its ~12 GB/s wire limit.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "rdma/memory_region.h"
#include "sim/bandwidth_channel.h"
#include "sim/engine.h"

namespace portus::rdma {

struct NicSpec {
  Bandwidth link_capacity = Bandwidth::gb_per_sec(12.0);
  Bandwidth per_qp_cap = Bandwidth::gb_per_sec(8.3);
  Duration read_latency = std::chrono::microseconds{4};    // one-sided READ setup+RTT
  Duration write_latency = std::chrono::nanoseconds{3200}; // one-sided WRITE
  Duration send_latency = std::chrono::microseconds{5};    // two-sided (CPU on both ends)
  // Doorbell economics: the per-WR setup above includes one MMIO doorbell
  // write + PCIe WQE fetch round trip (~1-2 us of the READ budget on Gen3).
  // A WR posted as part of a chained ibv_post_send list (every list entry
  // after the first) skips that — the NIC DMAs the whole WQE chain after
  // one ring — so chained WRs shave this much off their per-op latency.
  // Single-WR posts are charged exactly as before.
  Duration doorbell_latency = std::chrono::nanoseconds{1800};
  int max_sges = 30;  // gather entries per WQE (mlx5-class max_send_sge)

  static NicSpec connectx5_100g() { return NicSpec{}; }
  static NicSpec connectx6_100g() { return NicSpec{}; }
};

class RdmaNic {
 public:
  RdmaNic(sim::Engine& engine, std::string name, NicSpec spec = NicSpec::connectx5_100g())
      : engine_{engine},
        name_{std::move(name)},
        spec_{spec},
        link_{engine, spec.link_capacity, name_ + "/link"} {}
  RdmaNic(const RdmaNic&) = delete;
  RdmaNic& operator=(const RdmaNic&) = delete;

  ProtectionDomain& alloc_pd(std::string name) {
    pds_.push_back(std::make_unique<ProtectionDomain>(std::move(name)));
    return *pds_.back();
  }

  sim::Engine& engine() { return engine_; }
  const std::string& name() const { return name_; }
  const NicSpec& spec() const { return spec_; }
  sim::BandwidthChannel& link() { return link_; }

 private:
  sim::Engine& engine_;
  std::string name_;
  NicSpec spec_;
  sim::BandwidthChannel link_;
  std::vector<std::unique_ptr<ProtectionDomain>> pds_;
};

}  // namespace portus::rdma
