// Appendix — the paper evaluates 76 DNN training jobs and reports the full
// per-model results in its appendix ("Evaluation results of all the models
// are presented in the Appendix"). This regenerates the appendix table for
// every model in the zoo: checkpoint and restore time under Portus vs the
// BeeGFS-PMEM baseline, with per-model speedups.
#include "bench_common.h"

using namespace portus;

namespace {

struct Row {
  Duration portus_ckpt{0}, portus_restore{0};
  Duration beegfs_ckpt{0}, beegfs_restore{0};
};

Row measure(const dnn::ModelSpec& spec) {
  Row row;
  dnn::ModelZoo::Options opt;
  opt.force_phantom = true;

  {
    bench::World world;
    auto& gpu = world.volta().gpu(0);
    auto model = dnn::ModelZoo::create_from_spec(gpu, spec, opt);
    core::PortusClient client{*world.cluster, world.volta(), gpu, world.rendezvous};
    world.run([](sim::Engine& eng, core::PortusClient& c, dnn::Model& m, Duration& ck,
                 Duration& rs) -> sim::Process {
      co_await c.connect();
      co_await c.register_model(m);
      Time t0 = eng.now();
      co_await c.checkpoint(m, 1);
      ck = eng.now() - t0;
      t0 = eng.now();
      co_await c.restore(m);
      rs = eng.now() - t0;
    }(world.engine, client, model, row.portus_ckpt, row.portus_restore));
  }
  {
    bench::World world;
    auto& gpu = world.volta().gpu(0);
    auto model = dnn::ModelZoo::create_from_spec(gpu, spec, opt);
    storage::BeeGfsMount mount{*world.cluster, world.volta(), *world.beegfs_server, "mnt0"};
    baselines::TorchSaveCheckpointer ckpt{world.volta(), gpu, mount};
    world.run([](baselines::TorchSaveCheckpointer& c, dnn::Model& m, Duration& ck,
                 Duration& rs) -> sim::Process {
      ck = (co_await c.checkpoint(m, "/a/x.ptck")).total;
      rs = (co_await c.restore(m, "/a/x.ptck", /*gpu_direct=*/true)).total;
    }(ckpt, model, row.beegfs_ckpt, row.beegfs_restore));
  }
  return row;
}

}  // namespace

int main() {
  bench::print_header("Appendix: per-model checkpoint/restore, full zoo vs BeeGFS-PMEM",
                      "paper appendix reports all 76 jobs; Table II names marked with *");

  const auto table2 = dnn::ModelZoo::table2_names();
  const auto is_table2 = [&](const std::string& n) {
    return std::find(table2.begin(), table2.end(), n) != table2.end();
  };

  std::cout << strf("{:<22}{:>10}{:>11}{:>12}{:>9}{:>11}{:>12}{:>9}\n", "model", "size",
                    "P-ckpt", "B-ckpt", "x", "P-rest", "B-rest", "x");
  double ckpt_sum = 0, restore_sum = 0;
  int n = 0;
  for (const auto& spec : dnn::ModelZoo::all()) {
    if (spec.checkpoint_bytes > 2_GB) continue;  // GPT family: see fig14
    const auto row = measure(spec);
    const double ckpt_x = bench::ratio(row.beegfs_ckpt, row.portus_ckpt);
    const double restore_x = bench::ratio(row.beegfs_restore, row.portus_restore);
    ckpt_sum += ckpt_x;
    restore_sum += restore_x;
    ++n;
    std::cout << strf("{:<22}{:>10}{:>11}{:>12}{:>8.2f}x{:>11}{:>12}{:>8.2f}x\n",
                      strf("{}{}", spec.name, is_table2(spec.name) ? "*" : ""),
                      format_bytes(spec.checkpoint_bytes), format_duration(row.portus_ckpt),
                      format_duration(row.beegfs_ckpt), ckpt_x,
                      format_duration(row.portus_restore),
                      format_duration(row.beegfs_restore), restore_x);
  }
  std::cout << strf("\n{} models; mean speedup: checkpoint {:.2f}x, restore {:.2f}x\n", n,
                    ckpt_sum / n, restore_sum / n);
  return 0;
}
