// Ablation — end-to-end fault tolerance under the failure rates that
// motivate the paper (SS I: "a failure usually occurs every 10 minutes"
// [Oobleck/Bamboo]; >60% of failed jobs fail within an hour [Check-N-Run]).
//
// Train VGG19 for 2 simulated hours with exponentially distributed failures
// (MTBF 10 min). On a failure the job restarts (fixed relaunch cost), the
// model restores from the newest durable checkpoint, and iterations since
// that checkpoint are lost. Portus checkpoints every iteration
// (asynchronous); CheckFreq runs at its tuned interval against BeeGFS-PMEM.
// The metric is useful iterations retained per wall-clock hour.
#include <cmath>

#include "bench_common.h"
#include "common/rng.h"

using namespace portus;
using namespace std::chrono_literals;

namespace {

constexpr Duration kBudget = 2h;
constexpr Duration kMtbf = 10min;
constexpr Duration kRelaunchCost = 30s;  // scheduler requeue + process start

struct Outcome {
  std::uint64_t useful_iterations = 0;
  int failures = 0;
  Duration restore_time_total{0};
  std::uint64_t lost_iterations = 0;
};

// One uninterrupted training segment; returns (iterations run, durable
// restore point, restore cost paid at the next failure).
struct Segment {
  std::uint64_t trained = 0;
  std::uint64_t durable = 0;
  Duration restore{0};
};

Segment run_segment_portus(Duration length) {
  bench::World world;
  auto& node = world.volta();
  auto& gpu = node.gpu(0);
  dnn::ModelZoo::Options opt;
  opt.force_phantom = true;
  auto model = dnn::ModelZoo::create(gpu, "vgg19_bn", opt);
  core::PortusClient client{*world.cluster, node, gpu, world.rendezvous};
  core::PortusHook hook{client, model, 1, core::PortusHook::Mode::kAsync};
  dnn::TrainingStats stats;
  const auto cfg = dnn::TrainingConfig::from_spec(dnn::ModelZoo::spec("vgg19_bn"));

  world.engine.spawn([](bench::World& w, gpu::GpuDevice& g, core::PortusClient& c,
                        dnn::Model& m, core::PortusHook& h, dnn::TrainingConfig config,
                        dnn::TrainingStats& st) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await w.engine
        .spawn(dnn::train(w.engine, g, &m, config, 1'000'000, h, st))
        .join();
  }(world, gpu, client, model, hook, cfg, stats));
  world.engine.run_until(Time{0} + length);

  Segment seg;
  seg.trained = stats.iterations_done;
  seg.durable = hook.stats().last_committed_iteration;

  // Restore cost for the next incarnation (measured on a fresh session).
  {
    bench::World w2;
    auto model2 = dnn::ModelZoo::create(w2.volta().gpu(0), "vgg19_bn", opt);
    core::PortusClient c2{*w2.cluster, w2.volta(), w2.volta().gpu(0), w2.rendezvous};
    Duration restore{0};
    w2.run([](sim::Engine& eng, core::PortusClient& c, dnn::Model& m,
              Duration& out) -> sim::Process {
      co_await c.connect();
      co_await c.register_model(m);
      co_await c.checkpoint(m, 1);
      const Time t0 = eng.now();
      co_await c.restore(m);
      out = eng.now() - t0;
    }(w2.engine, c2, model2, restore));
    seg.restore = restore;
  }
  return seg;
}

Segment run_segment_checkfreq(Duration length) {
  bench::World world;
  auto& node = world.volta();
  auto& gpu = node.gpu(0);
  dnn::ModelZoo::Options opt;
  opt.force_phantom = true;
  auto model = dnn::ModelZoo::create(gpu, "vgg19_bn", opt);
  storage::BeeGfsMount mount{*world.cluster, node, *world.beegfs_server, "mnt0"};

  // CheckFreq tunes its own interval from profiled costs.
  const auto cfg = dnn::TrainingConfig::from_spec(dnn::ModelZoo::spec("vgg19_bn"));
  const auto ckpt_cost = 900ms;  // measured torch.save cost for VGG19 (fig11)
  const auto interval = baselines::CheckFreqHook::tune_interval(cfg.iteration_time, ckpt_cost);
  baselines::CheckFreqHook hook{node, gpu, model, mount, interval, "/cf/vgg"};
  dnn::TrainingStats stats;

  world.engine.spawn([](bench::World& w, gpu::GpuDevice& g, dnn::Model& m,
                        baselines::CheckFreqHook& h, dnn::TrainingConfig config,
                        dnn::TrainingStats& st) -> sim::Process {
    co_await w.engine
        .spawn(dnn::train(w.engine, g, &m, config, 1'000'000, h, st))
        .join();
  }(world, gpu, model, hook, cfg, stats));
  world.engine.run_until(Time{0} + length);

  Segment seg;
  seg.trained = stats.iterations_done;
  seg.durable = hook.last_persisted_iteration();

  {  // GDS restore from BeeGFS (fig12 path)
    bench::World w2;
    auto model2 = dnn::ModelZoo::create(w2.volta().gpu(0), "vgg19_bn", opt);
    storage::BeeGfsMount m2{*w2.cluster, w2.volta(), *w2.beegfs_server, "mnt0"};
    baselines::TorchSaveCheckpointer ckpt{w2.volta(), w2.volta().gpu(0), m2};
    Duration restore{0};
    w2.run([](baselines::TorchSaveCheckpointer& c, dnn::Model& m,
              Duration& out) -> sim::Process {
      co_await c.checkpoint(m, "/x.ptck");
      out = (co_await c.restore(m, "/x.ptck", /*gpu_direct=*/true)).total;
    }(ckpt, model2, restore));
    seg.restore = restore;
  }
  return seg;
}

template <typename SegmentFn>
Outcome run_with_failures(SegmentFn&& segment, std::uint64_t seed) {
  Rng rng{seed};
  Outcome out;
  Duration clock{0};
  while (clock < kBudget) {
    // Exponential time-to-failure, clamped into the remaining budget.
    const double u = rng.uniform_real(1e-9, 1.0);
    Duration ttf = from_seconds(-to_seconds(kMtbf) * std::log(u));
    const bool fails = clock + ttf < kBudget;
    if (!fails) ttf = kBudget - clock;

    const Segment seg = segment(ttf);
    out.useful_iterations += fails ? seg.durable : seg.trained;
    if (fails) {
      ++out.failures;
      out.lost_iterations += seg.trained - seg.durable;
      out.restore_time_total += seg.restore + kRelaunchCost;
      clock += ttf + seg.restore + kRelaunchCost;
    } else {
      clock += ttf;
    }
  }
  return out;
}

}  // namespace

// Closed-form expected useful throughput for a model too large to simulate
// for hours of virtual time: with failure rate lambda, checkpoint interval I
// (iterations), per-iteration time t, per-checkpoint stall s, mean loss of
// I/2 iterations plus any in-flight persist, and per-failure downtime D:
//   cycle        = I*t + s
//   progress     = I / cycle                       [iters per second]
//   loss_per_f   = (I/2)*t + persist_lag + D       [seconds equivalent]
//   useful rate  = progress * max(0, 1 - lambda*loss_per_f)
struct Analytic {
  double interval;
  double iter_s;
  double stall_s;        // blocking checkpoint stall per interval
  double persist_lag_s;  // durable point lags trigger by this much
  double downtime_s;     // restore + relaunch
};

double useful_rate(const Analytic& a, double lambda) {
  const double cycle = a.interval * a.iter_s + a.stall_s;
  const double progress = a.interval / cycle;
  const double loss = (a.interval / 2.0) * a.iter_s + a.persist_lag_s + a.downtime_s;
  return progress * std::max(0.0, 1.0 - lambda * loss);
}

int main() {
  bench::print_header(
      "Ablation: fault tolerance under 10-minute MTBF",
      "motivation SS I: frequent failures demand finer-grained checkpoints + fast restore");

  std::cout << "--- VGG19, single GPU, 2 h simulated with failure injection ---\n";
  const auto portus = run_with_failures([](Duration d) { return run_segment_portus(d); }, 7);
  const auto checkfreq =
      run_with_failures([](Duration d) { return run_segment_checkfreq(d); }, 7);

  std::cout << strf("{:<12}{:>10}{:>16}{:>14}{:>18}\n", "system", "failures",
                    "useful iters", "lost iters", "restore+restart");
  const auto row = [](const char* name, const Outcome& o) {
    std::cout << strf("{:<12}{:>10}{:>16}{:>14}{:>18}\n", name, o.failures,
                      o.useful_iterations, o.lost_iterations,
                      format_duration(o.restore_time_total));
  };
  row("Portus", portus);
  row("CheckFreq", checkfreq);
  std::cout << strf(
      "useful-work advantage: {:.2f}x — small models checkpoint fast enough either\n"
      "way; the gap comes from restore speed and the tuned interval's lost work.\n\n",
      static_cast<double>(portus.useful_iterations) /
          static_cast<double>(checkfreq.useful_iterations));

  std::cout << "--- GPT-22.4B, 16 ranks (closed-form from measured fig14/fig15 costs) ---\n";
  const double lambda = 1.0 / to_seconds(kMtbf);
  // Measured: Portus dump 14.3 s (overlapped => stall ~0, durable point lags
  // one pull), restore 7.5 s; CheckFreq persist 113 s (its tuner caps the
  // interval at persist/iter so triggers are not throttled), snapshot stall
  // ~0.5 s, GDS restore from BeeGFS ~50 s for 89.6 GB.
  const Analytic gpt_portus{.interval = 20, .iter_s = 1.73, .stall_s = 0.0,
                            .persist_lag_s = 14.3, .downtime_s = 7.5 + 30.0};
  const Analytic gpt_checkfreq{.interval = 66, .iter_s = 1.73, .stall_s = 0.5,
                               .persist_lag_s = 113.0, .downtime_s = 50.0 + 30.0};
  const double rp = useful_rate(gpt_portus, lambda);
  const double rc = useful_rate(gpt_checkfreq, lambda);
  std::cout << strf("{:<12}{:>22}{:>22}\n", "system", "useful iters/hour",
                    "share of failure-free");
  std::cout << strf("{:<12}{:>22.0f}{:>21.1f}%\n", "Portus", rp * 3600,
                    100.0 * rp * gpt_portus.iter_s);
  std::cout << strf("{:<12}{:>22.0f}{:>21.1f}%\n", "CheckFreq", rc * 3600,
                    100.0 * rc * gpt_checkfreq.iter_s);
  std::cout << strf(
      "useful-work advantage: {:.2f}x — at this scale CheckFreq's ~2-minute persist\n"
      "means every 10-minute failure wipes out several minutes of work and its\n"
      "restore costs nearly a minute; Portus's restore point is never more than one\n"
      "pull (~14 s) behind.\n",
      rp / rc);
  return 0;
}
