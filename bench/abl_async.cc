// Ablation — synchronous vs asynchronous Portus checkpointing (SS III-E).
//
// Async mode decouples the daemon's pull from the training loop: the pull
// overlaps the next iteration's forward/backward and only the residual (if
// the pull outlives F+B) stalls the update. This quantifies the stall per
// checkpoint for both modes across models whose pull time is below or above
// one iteration's F/B window.
#include "bench_common.h"

using namespace portus;
using namespace std::chrono_literals;

namespace {
constexpr std::uint64_t kIterations = 30;
}

int main() {
  bench::print_header("Ablation: Portus sync vs async checkpointing (ckpt every iteration)",
                      "Fig. 9(c)/(d): async hides the pull behind F/B");

  std::cout << strf("{:<16}{:>10}{:>12}{:>14}{:>14}{:>12}\n", "model", "pull", "iter F/B",
                    "sync stall", "async stall", "hidden");

  for (const auto* name : {"resnet50", "swin_b", "vgg19_bn", "vit_l_32", "bert"}) {
    Duration stalls[2] = {Duration{0}, Duration{0}};
    Duration pull{0};
    const auto spec = dnn::ModelZoo::spec(name);
    const dnn::TrainingConfig cfg{.iteration_time = spec.iteration_time,
                                  .update_fraction = spec.update_fraction,
                                  .busy_fraction = 1.0,
                                  .mutate_weights = false};
    for (int mode = 0; mode < 2; ++mode) {
      bench::World world;
      auto& gpu = world.volta().gpu(0);
      dnn::ModelZoo::Options opt;
      opt.force_phantom = true;
      auto model = dnn::ModelZoo::create(gpu, name, opt);
      core::PortusClient client{*world.cluster, world.volta(), gpu, world.rendezvous};
      core::PortusHook hook{client, model, 1,
                            mode == 0 ? core::PortusHook::Mode::kSync
                                      : core::PortusHook::Mode::kAsync};
      dnn::TrainingStats stats;
      world.run([](bench::World& w, gpu::GpuDevice& g, core::PortusClient& c, dnn::Model& m,
                   core::PortusHook& h, dnn::TrainingConfig config,
                   dnn::TrainingStats& st) -> sim::Process {
        co_await c.connect();
        co_await c.register_model(m);
        co_await w.engine.spawn(dnn::train(w.engine, g, &m, config, kIterations, h, st))
            .join();
        co_await h.drain();
      }(world, gpu, client, model, hook, cfg, stats));
      stalls[mode] = stats.checkpoint_stall / kIterations;
      if (mode == 0) pull = client.stats().last_checkpoint;
    }

    const auto fb = std::chrono::duration_cast<Duration>(spec.iteration_time *
                                                         (1.0 - spec.update_fraction));
    const double hidden =
        100.0 * (1.0 - to_seconds(stalls[1]) / std::max(1e-12, to_seconds(stalls[0])));
    std::cout << strf("{:<16}{:>10}{:>12}{:>14}{:>14}{:>11.0f}%\n", name,
                      format_duration(pull), format_duration(fb), format_duration(stalls[0]),
                      format_duration(stalls[1]), hidden);
  }
  std::cout << "\n('hidden' = share of the sync stall eliminated by overlapping the pull\n"
               " with the next iteration's forward/backward)\n";
  return 0;
}
