// Fig. 15 — Overall training time of GPT-22.4B with fine-grained
// checkpointing: Portus vs CheckFreq, 16 ranks, checkpoint every 20
// iterations (the "finer-grained policy" the paper motivates; CheckFreq's
// ~2-minute 16-way BeeGFS persist throttles every trigger).
//
// Paper: Portus improves training throughput by 2.6x and would sustain
// 14,400 more iterations than CheckFreq over 24 hours.
#include "gpt_policies.h"

using namespace portus;

namespace {

constexpr std::uint64_t kIterations = 200;
constexpr std::uint64_t kInterval = 20;

struct Outcome {
  dnn::TrainingStats stats;
  Duration wall{0};
};

Outcome run_portus(bench::PortusGptHook::Mode mode) {
  bench::World world{/*daemon_workers=*/16};
  auto ranks = bench::make_gpt_ranks(world, dnn::ModelZoo::spec("gpt-22.4b"),
                                     /*portus=*/true, /*beegfs=*/false);
  bench::PortusGptHook hook{world, ranks, kInterval, mode};
  Outcome out;
  world.run([](bench::World& w, std::vector<bench::GptRank>& rs,
               bench::PortusGptHook& h, Outcome& o) -> sim::Process {
    co_await w.engine.spawn(bench::register_all(rs)).join();
    const auto cfg = dnn::TrainingConfig::from_spec(dnn::ModelZoo::spec("gpt-22.4b"));
    co_await w.engine
        .spawn(dnn::train(w.engine, *rs[0].gpu, nullptr, cfg, kIterations, h, o.stats))
        .join();
    co_await h.drain();
  }(world, ranks, hook, out));
  out.wall = out.stats.wall();
  return out;
}

Outcome run_checkfreq() {
  bench::World world;
  auto ranks = bench::make_gpt_ranks(world, dnn::ModelZoo::spec("gpt-22.4b"),
                                     /*portus=*/false, /*beegfs=*/true);
  bench::CheckFreqGptHook hook{world, ranks, kInterval};
  Outcome out;
  world.run([](bench::World& w, std::vector<bench::GptRank>& rs,
               bench::CheckFreqGptHook& h, Outcome& o) -> sim::Process {
    const auto cfg = dnn::TrainingConfig::from_spec(dnn::ModelZoo::spec("gpt-22.4b"));
    co_await w.engine
        .spawn(dnn::train(w.engine, *rs[0].gpu, nullptr, cfg, kIterations, h, o.stats))
        .join();
    co_await h.drain();
  }(world, ranks, hook, out));
  out.wall = out.stats.wall();
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 15: GPT-22.4B end-to-end training time, Portus vs CheckFreq",
      "Portus sustains 2.6x the training throughput; +14,400 iterations per 24 h");

  const auto portus = run_portus(bench::PortusGptHook::Mode::kOverlapped);
  const auto portus_blocking = run_portus(bench::PortusGptHook::Mode::kBlocking);
  const auto checkfreq = run_checkfreq();
  const auto iter = dnn::ModelZoo::spec("gpt-22.4b").iteration_time;
  const Duration compute = iter * kIterations;

  std::cout << strf("{} iterations of {} each; checkpoint every {} iterations\n\n",
                    kIterations, format_duration(iter), kInterval);
  std::cout << strf("{:<12}{:>12}{:>14}{:>14}{:>14}\n", "system", "wall", "ckpt stall",
                    "iters/hour", "overhead");
  const auto print_row = [&](const char* name, const Outcome& o) {
    const double per_hour = static_cast<double>(kIterations) / to_seconds(o.wall) * 3600.0;
    std::cout << strf("{:<12}{:>12}{:>14}{:>14.0f}{:>13.1f}%\n", name,
                      format_duration(o.wall), format_duration(o.stats.checkpoint_stall),
                      per_hour,
                      100.0 * (to_seconds(o.wall) / to_seconds(compute) - 1.0));
  };
  print_row("Portus", portus);
  print_row("Portus-block", portus_blocking);
  print_row("CheckFreq", checkfreq);

  const double throughput_gain = bench::ratio(checkfreq.wall, portus.wall);
  const double blocking_gain = bench::ratio(checkfreq.wall, portus_blocking.wall);
  const double extra_per_day =
      (static_cast<double>(kIterations) / to_seconds(portus.wall) -
       static_cast<double>(kIterations) / to_seconds(checkfreq.wall)) *
      24 * 3600;
  std::cout << strf("\nthroughput gain: {:.2f}x overlapped / {:.2f}x blocking "
                    "(paper: 2.6x, bracketed)\n",
                    throughput_gain, blocking_gain);
  std::cout << strf("extra iterations per 24 h: {:.0f} (paper: 14,400)\n", extra_per_day);
  return 0;
}
