// Ablation — one-sided vs two-sided RDMA for checkpoint transport (SS V-D).
//
// The paper attributes part of Portus's win over BeeGFS-PMEM to its
// one-sided GPU-RDMA reads versus BeeGFS's two-sided RPCoRDMA. This
// ablation isolates exactly that: move one BERT checkpoint's bytes
// (1282 MiB) from client GPU memory to server PMEM
//   (a) as sequential one-sided READs (one per tensor, Portus-style), and
//   (b) as 1 MiB request/response RPCs over SEND/RECV (BeeGFS-style,
//       including per-chunk server handler dispatch).
#include "bench_common.h"

using namespace portus;

int main() {
  bench::print_header("Ablation: one-sided RDMA READ vs two-sided RPCoRDMA (BERT bytes)",
                      "SS V-D: 'GPU-RDMA ... is a time-efficient one-sided protocol while "
                      "BeeGFS-PMEM uses a more time-consuming two-sided protocol'");

  const auto& spec = dnn::ModelZoo::spec("bert");

  // (a) one-sided: a real Portus checkpoint, minus registration.
  Duration one_sided{0};
  {
    bench::World world;
    auto& gpu = world.volta().gpu(0);
    dnn::ModelZoo::Options opt;
    opt.force_phantom = true;
    auto model = dnn::ModelZoo::create(gpu, "bert", opt);
    core::PortusClient client{*world.cluster, world.volta(), gpu, world.rendezvous};
    world.run([](sim::Engine& eng, core::PortusClient& c, dnn::Model& m,
                 Duration& out) -> sim::Process {
      co_await c.connect();
      co_await c.register_model(m);
      const Time t0 = eng.now();
      co_await c.checkpoint(m, 1);
      out = eng.now() - t0;
    }(world.engine, client, model, one_sided));
  }

  // (b) two-sided: the same byte count as chunked RPCs into the fsdax path.
  Duration two_sided{0};
  {
    bench::World world;
    storage::BeeGfsMount mount{*world.cluster, world.volta(), *world.beegfs_server, "mnt0"};
    world.run([](sim::Engine& eng, storage::BeeGfsMount& m, Bytes n,
                 Duration& out) -> sim::Process {
      const Time t0 = eng.now();
      co_await m.write_file("/abl/bert.raw", n, nullptr);
      out = eng.now() - t0;
    }(world.engine, mount, spec.checkpoint_bytes, two_sided));
  }

  std::cout << strf("{:<34}{:>12}{:>14}\n", "transport", "time", "effective bw");
  const auto bw = [&](Duration d) {
    return Bandwidth::bytes_per_sec(static_cast<double>(spec.checkpoint_bytes) /
                                    to_seconds(d));
  };
  std::cout << strf("{:<34}{:>12}{:>14}\n", "one-sided READ (Portus)",
                    format_duration(one_sided), format_bandwidth(bw(one_sided)));
  std::cout << strf("{:<34}{:>12}{:>14}\n", "two-sided RPCoRDMA (BeeGFS-style)",
                    format_duration(two_sided), format_bandwidth(bw(two_sided)));
  std::cout << strf("\none-sided advantage: {:.2f}x on the transport alone\n",
                    bench::ratio(two_sided, one_sided));
  return 0;
}
