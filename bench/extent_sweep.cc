// Ablation — small-tensor extent coalescing sweep (SS III-D datapath
// companion).
//
// DNN checkpoints are op-bound, not byte-bound: a GPT-style model carries
// thousands of sub-4-KiB biases, norms and embedding rows, and the classic
// datapath pays one WQE + one completion for each. This sweep drives a
// small-tensor-dominated model through coalesce_threshold x max_sges
// configurations and reports checkpoint, incremental and restore times plus
// the WR counts each op posted. The threshold=0 row is the stock
// single-SGE datapath and is the baseline. Emits BENCH_extent.json and
// fails (exit 1) unless the widest configuration reaches >= 2x checkpoint
// throughput and >= 5x WR-count reduction without regressing restore.
//
// --smoke runs a tiny configuration (fewer blocks, baseline + widest row
// only) for the perf-smoke CI label; virtual time keeps it deterministic,
// so the acceptance gates stay on.
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "bench_common.h"

using namespace portus;

namespace {

struct Row {
  Bytes threshold = 0;
  int max_sges = 1;
  Duration ckpt{0};
  Duration incr{0};
  Duration restore{0};
  std::uint64_t ckpt_wrs = 0;
  std::uint64_t incr_wrs = 0;
  std::uint64_t restore_wrs = 0;
  std::uint64_t extents_coalesced = 0;
  double sges_per_wr = 0.0;
};

// GPT-bits: per block a 2 KiB qkv sliver, a 1 KiB projection and four
// 256 B bias/norm vectors, plus one chunked 128 KiB embedding. Small
// tensors dominate the op count; the embedding keeps the byte-bound chunk
// path honest in every row.
dnn::Model make_gpt_bits(gpu::GpuDevice& gpu, int blocks) {
  dnn::Model m{"gpt-bits", gpu};
  for (int b = 0; b < blocks; ++b) {
    const auto tag = std::to_string(b);
    m.add_tensor(dnn::TensorMeta{.name = "blk" + tag + ".qkv", .shape = {512}}, false);
    m.add_tensor(dnn::TensorMeta{.name = "blk" + tag + ".proj", .shape = {256}}, false);
    m.add_tensor(dnn::TensorMeta{.name = "blk" + tag + ".ln1.w", .shape = {64}}, false);
    m.add_tensor(dnn::TensorMeta{.name = "blk" + tag + ".ln1.b", .shape = {64}}, false);
    m.add_tensor(dnn::TensorMeta{.name = "blk" + tag + ".ln2.w", .shape = {64}}, false);
    m.add_tensor(dnn::TensorMeta{.name = "blk" + tag + ".ln2.b", .shape = {64}}, false);
  }
  m.add_tensor(dnn::TensorMeta{.name = "embed",
                               .shape = {2 * static_cast<std::int64_t>(blocks), 256}},
               false);
  m.randomize_weights(0xB10C5);
  return m;
}

Row measure(int blocks, Bytes threshold, int max_sges) {
  Row row{.threshold = threshold, .max_sges = max_sges};
  bench::World world{core::PortusDaemon::Config{.pipeline_window = 4,
                                                .chunk_bytes = 4_KiB,
                                                .stripes = 2,
                                                .coalesce_threshold = threshold,
                                                .max_sges = max_sges}};
  auto& gpu = world.volta().gpu(0);
  auto model = make_gpt_bits(gpu, blocks);
  core::PortusClient client{*world.cluster, world.volta(), gpu, world.rendezvous,
                            "portusd", /*stripes=*/2};
  world.run([](sim::Engine& eng, core::PortusClient& c, dnn::Model& m,
               core::PortusDaemon& d, Row& out) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);

    std::uint64_t wr0 = d.stats().wrs_posted;
    Time t0 = eng.now();
    co_await c.checkpoint(m, 1);
    out.ckpt = eng.now() - t0;
    out.ckpt_wrs = d.stats().wrs_posted - wr0;

    // Incremental: every 8th tensor dirty — dirty runs re-pull as gather
    // extents, the clean majority rides as dense PMEM-local copies.
    std::vector<std::uint32_t> dirty;
    for (std::uint32_t t = 0; t < m.layer_count(); t += 8) dirty.push_back(t);
    m.mutate_weights(2);
    wr0 = d.stats().wrs_posted;
    t0 = eng.now();
    co_await c.checkpoint_incremental(m, 2, std::move(dirty));
    out.incr = eng.now() - t0;
    out.incr_wrs = d.stats().wrs_posted - wr0;

    m.mutate_weights(7);
    wr0 = d.stats().wrs_posted;
    t0 = eng.now();
    co_await c.restore(m);
    out.restore = eng.now() - t0;
    out.restore_wrs = d.stats().wrs_posted - wr0;

    const auto& s = d.stats();
    out.extents_coalesced = s.extents_coalesced;
    out.sges_per_wr = s.wrs_posted > 0 ? static_cast<double>(s.sges_posted) /
                                             static_cast<double>(s.wrs_posted)
                                       : 0.0;
  }(world.engine, client, model, *world.daemon, row));
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  // Smoke trims the configuration grid, not the model: doorbell chaining
  // speeds the single-SGE baseline most, so a too-small model understates
  // the coalescing win and trips the 2x gate spuriously.
  const int blocks = 96;
  bench::print_header(
      "Extent coalescing sweep: coalesce_threshold x max_sges",
      "single-SGE baseline at threshold=0; the widest row must reach >= 2x "
      "checkpoint throughput and >= 5x fewer WRs on a small-tensor model");

  std::vector<Row> rows;
  rows.push_back(measure(blocks, 0, 1));  // stock single-SGE datapath
  if (!smoke) {
    for (const Bytes threshold : {1_KiB, 4_KiB}) {
      for (const int sges : {4, 16}) rows.push_back(measure(blocks, threshold, sges));
    }
  } else {
    rows.push_back(measure(blocks, 4_KiB, 16));
  }
  const Row& base = rows.front();
  const Row& best = rows.back();

  std::cout << strf("{:>10}{:>6}{:>13}{:>13}{:>13}{:>9}{:>9}{:>9}{:>9}\n", "threshold",
                    "sges", "checkpoint", "incremental", "restore", "ckpt-wr",
                    "rstr-wr", "sges/wr", "speedup");
  for (const auto& row : rows) {
    std::cout << strf(
        "{:>10}{:>6}{:>13}{:>13}{:>13}{:>9}{:>9}{:>9.2f}{:>8.2f}x\n",
        row.threshold == 0 ? std::string{"-"} : format_bytes(row.threshold),
        row.max_sges, format_duration(row.ckpt), format_duration(row.incr),
        format_duration(row.restore), row.ckpt_wrs, row.restore_wrs, row.sges_per_wr,
        bench::ratio(base.ckpt, row.ckpt));
  }

  std::ofstream json{"BENCH_extent.json", std::ios::trunc};
  json << "{\n  \"bench\": \"extent_sweep\",\n  \"model\": \"gpt-bits\",\n"
       << strf("  \"blocks\": {},\n  \"smoke\": {},\n  \"rows\": [\n", blocks,
               smoke ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    json << strf(
        "    {{\"coalesce_threshold\": {}, \"max_sges\": {}, \"checkpoint_ns\": {}, "
        "\"incremental_ns\": {}, \"restore_ns\": {}, \"ckpt_wrs\": {}, "
        "\"incr_wrs\": {}, \"restore_wrs\": {}, \"extents_coalesced\": {}, "
        "\"sges_per_wr\": {:.4f}, \"ckpt_speedup_vs_off\": {:.4f}, "
        "\"ckpt_wr_reduction\": {:.4f}}}{}\n",
        row.threshold, row.max_sges, row.ckpt.count(), row.incr.count(),
        row.restore.count(), row.ckpt_wrs, row.incr_wrs, row.restore_wrs,
        row.extents_coalesced, row.sges_per_wr, bench::ratio(base.ckpt, row.ckpt),
        row.ckpt_wrs > 0 ? static_cast<double>(base.ckpt_wrs) /
                               static_cast<double>(row.ckpt_wrs)
                         : 0.0,
        i + 1 < rows.size() ? "," : "");
  }
  json << "  ]\n}\n";
  json.close();
  std::cout << "\nwrote BENCH_extent.json\n";

  int rc = 0;
  const double speedup = bench::ratio(base.ckpt, best.ckpt);
  const double wr_cut =
      static_cast<double>(base.ckpt_wrs) / static_cast<double>(best.ckpt_wrs);
  if (speedup < 2.0) {
    std::cerr << strf("FAIL: widest row reaches only {:.2f}x checkpoint speedup "
                      "(bar: 2x)\n", speedup);
    rc = 1;
  }
  if (wr_cut < 5.0) {
    std::cerr << strf("FAIL: widest row cuts WRs only {:.2f}x (bar: 5x)\n", wr_cut);
    rc = 1;
  }
  if (best.extents_coalesced == 0) {
    std::cerr << "FAIL: widest row never coalesced an extent\n";
    rc = 1;
  }
  for (const auto& row : rows) {
    if (to_seconds(row.restore) > to_seconds(base.restore) * 1.05) {
      std::cerr << strf("FAIL: threshold={} sges={} regresses restore\n",
                        row.threshold, row.max_sges);
      rc = 1;
    }
    if (to_seconds(row.incr) > to_seconds(base.incr) * 1.05) {
      std::cerr << strf("FAIL: threshold={} sges={} regresses incremental\n",
                        row.threshold, row.max_sges);
      rc = 1;
    }
  }
  if (rc == 0) std::cout << "extent sweep acceptance checks passed\n";
  return rc;
}
