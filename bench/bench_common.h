// Shared scaffolding for the per-figure benchmark binaries.
//
// Every binary reproduces one table/figure of the paper: it builds the
// simulated testbed, drives the relevant workload, and prints the same rows
// or series the paper reports, with the paper's reference values alongside
// (see EXPERIMENTS.md for the full comparison).
#pragma once

#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/checkfreq.h"
#include "baselines/torch_save.h"
#include "common/strformat.h"
#include "core/async_coordinator.h"
#include "core/client.h"
#include "core/daemon/daemon.h"
#include "dnn/model_zoo.h"
#include "dnn/parallel.h"
#include "dnn/training.h"
#include "net/cluster.h"
#include "storage/beegfs.h"
#include "storage/ext4_nvme.h"

namespace portus::bench {

// One fully wired testbed: paper cluster + Portus daemon + BeeGFS server +
// local NVMe filesystems on the compute nodes.
struct World {
  sim::Engine engine;
  std::unique_ptr<net::Cluster> cluster = net::Cluster::paper_testbed(engine);
  core::QpRendezvous rendezvous;
  std::unique_ptr<core::PortusDaemon> daemon;
  std::unique_ptr<storage::BeeGfsServer> beegfs_server;
  std::unique_ptr<storage::Ext4NvmeFs> volta_nvme;
  std::unique_ptr<storage::Ext4NvmeFs> ampere_nvme;

  explicit World(int daemon_workers = 8)
      : World(core::PortusDaemon::Config{.workers = daemon_workers}) {}

  explicit World(core::PortusDaemon::Config config) {
    daemon = std::make_unique<core::PortusDaemon>(*cluster, cluster->node("server"),
                                                  rendezvous, std::move(config));
    daemon->start();
    beegfs_server = std::make_unique<storage::BeeGfsServer>(cluster->node("server"));
    volta_nvme = std::make_unique<storage::Ext4NvmeFs>(engine, "volta/ext4-nvme");
    ampere_nvme = std::make_unique<storage::Ext4NvmeFs>(engine, "ampere/ext4-nvme");
  }
  ~World() { engine.shutdown(); }

  net::Node& volta() { return cluster->node("client-volta"); }
  net::Node& ampere() { return cluster->node("client-ampere"); }
  net::Node& server() { return cluster->node("server"); }

  // Run one coroutine to completion on a fresh slice of virtual time.
  void run(sim::Process p) {
    auto proc = engine.spawn(std::move(p));
    engine.run();
    proc.check();  // surface failures loudly
  }
};

// A GPT job shard: one rank's model + its Portus client or BeeGFS mount.
struct GptRank {
  dnn::ShardSpec shard;
  gpu::GpuDevice* gpu = nullptr;
  net::Node* node = nullptr;
  std::unique_ptr<dnn::Model> model;
  std::unique_ptr<core::PortusClient> portus;
  std::unique_ptr<storage::BeeGfsMount> beegfs;
};

// Partition `spec` TP=8 x PP=2 across the two client nodes (8 GPUs each in
// the paper's GPT runs) and connect the chosen backends.
std::vector<GptRank> make_gpt_ranks(World& world, const dnn::ModelSpec& spec,
                                    bool with_portus, bool with_beegfs);

// Register all ranks with the daemon (must precede checkpoints).
sim::Process register_all(std::vector<GptRank>& ranks);

// Concurrent checkpoint of every rank's shard; returns the slowest rank's time.
sim::SubTask<Duration> checkpoint_all(sim::Engine& engine, std::vector<GptRank>& ranks,
                                      std::uint64_t iteration);
// Concurrent restore (Portus).
sim::SubTask<Duration> restore_all(sim::Engine& engine, std::vector<GptRank>& ranks);

// Concurrent torch.save of every rank's shard to BeeGFS; slowest rank's time.
sim::SubTask<Duration> torch_save_all(sim::Engine& engine, std::vector<GptRank>& ranks,
                                      std::uint64_t iteration);

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << "paper reference: " << paper_ref << "\n\n";
}

inline double ratio(Duration a, Duration b) { return to_seconds(a) / to_seconds(b); }

}  // namespace portus::bench
