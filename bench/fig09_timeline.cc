// Fig. 9 — Training-timeline comparison of four checkpointing policies on
// a single-GPU model (VGG19), checkpointing every iteration:
//
//   (a) PyTorch built-in : synchronous torch.save at each boundary
//   (b) CheckFreq        : pinned snapshot overlapped with F/B, async persist
//   (c) Portus sync      : daemon pull blocks the boundary
//   (d) Portus async     : daemon pull overlapped; stall only before U
//
// The figure's message: both Portus variants beat the baselines outright,
// and async reduces the residual stall to nearly zero.
#include "bench_common.h"

using namespace portus;
using namespace std::chrono_literals;

namespace {

constexpr std::uint64_t kIterations = 20;
const dnn::TrainingConfig kConfig{.iteration_time = 180ms, .update_fraction = 0.08,
                                  .busy_fraction = 1.0, .mutate_weights = false};

struct Result {
  Duration wall{0};
  Duration stall{0};
};

// torch.save at every iteration boundary, fully synchronous.
class TorchSaveHook final : public dnn::CheckpointHook {
 public:
  TorchSaveHook(net::Node& node, gpu::GpuDevice& gpu, dnn::Model& model,
                storage::CheckpointStorage& fs)
      : ckpt_{node, gpu, fs}, model_{model} {}
  sim::SubTask<> on_iteration_end(std::uint64_t iter) override {
    co_await ckpt_.checkpoint(model_, strf("/pytorch/ckpt.iter{}", iter));
  }
  sim::SubTask<> before_update(std::uint64_t) override { co_return; }

 private:
  baselines::TorchSaveCheckpointer ckpt_;
  dnn::Model& model_;
};

Result run_policy(const std::string& label) {
  bench::World world;
  auto& node = world.volta();
  auto& gpu = node.gpu(0);
  dnn::ModelZoo::Options opt;
  opt.force_phantom = true;
  auto model = dnn::ModelZoo::create(gpu, "vgg19_bn", opt);

  dnn::TrainingStats stats;
  Result result;
  if (label == "pytorch") {
    storage::BeeGfsMount mount{*world.cluster, node, *world.beegfs_server, "mnt0"};
    TorchSaveHook hook{node, gpu, model, mount};
    world.run([](bench::World& w, gpu::GpuDevice& g, dnn::Model& m, dnn::CheckpointHook& h,
                 dnn::TrainingStats& st) -> sim::Process {
      co_await w.engine.spawn(dnn::train(w.engine, g, &m, kConfig, kIterations, h, st))
          .join();
    }(world, gpu, model, hook, stats));
  } else if (label == "checkfreq") {
    storage::BeeGfsMount mount{*world.cluster, node, *world.beegfs_server, "mnt0"};
    baselines::CheckFreqHook hook{node, gpu, model, mount, 1, "/cf/ckpt"};
    world.run([](bench::World& w, gpu::GpuDevice& g, dnn::Model& m,
                 baselines::CheckFreqHook& h, dnn::TrainingStats& st) -> sim::Process {
      co_await w.engine.spawn(dnn::train(w.engine, g, &m, kConfig, kIterations, h, st))
          .join();
      co_await h.drain();
    }(world, gpu, model, hook, stats));
  } else {
    core::PortusClient client{*world.cluster, node, gpu, world.rendezvous};
    const auto mode =
        label == "portus-sync" ? core::PortusHook::Mode::kSync : core::PortusHook::Mode::kAsync;
    core::PortusHook hook{client, model, 1, mode};
    world.run([](bench::World& w, gpu::GpuDevice& g, core::PortusClient& c, dnn::Model& m,
                 core::PortusHook& h, dnn::TrainingStats& st) -> sim::Process {
      co_await c.connect();
      co_await c.register_model(m);
      const Time t0 = w.engine.now();
      co_await w.engine.spawn(dnn::train(w.engine, g, &m, kConfig, kIterations, h, st))
          .join();
      co_await h.drain();
      (void)t0;
    }(world, gpu, client, model, hook, stats));
  }
  result.wall = stats.wall();
  result.stall = stats.checkpoint_stall;
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 9: training timeline, 4 checkpoint policies (VGG19, ckpt every iteration)",
      "Portus sync/async both beat PyTorch and CheckFreq; async stall ~0");

  const Duration compute = kConfig.iteration_time * kIterations;
  std::cout << strf("pure compute for {} iterations: {}\n\n", kIterations,
                    format_duration(compute));
  std::cout << strf("{:<14}{:>12}{:>12}{:>12}{:>14}\n", "policy", "wall", "stall",
                    "overhead", "vs pytorch");

  const char* policies[] = {"pytorch", "checkfreq", "portus-sync", "portus-async"};
  Duration pytorch_wall{0};
  for (const auto* policy : policies) {
    const auto r = run_policy(policy);
    if (std::string{policy} == "pytorch") pytorch_wall = r.wall;
    std::cout << strf("{:<14}{:>12}{:>12}{:>11.1f}%{:>13.2f}x\n", policy,
                      format_duration(r.wall), format_duration(r.stall),
                      100.0 * (to_seconds(r.wall) / to_seconds(compute) - 1.0),
                      bench::ratio(pytorch_wall, r.wall));
  }
  return 0;
}
