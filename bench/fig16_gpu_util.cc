// Fig. 16 — GPU utilization over a 500-second window while training
// GPT-22.4B with fine-grained checkpointing: Portus vs CheckFreq.
//
// Paper: Portus sustains 76.4% average utilization; CheckFreq stays below
// 43% because training stalls on its slow persists. The printed series is
// per-10-second buckets of rank-0's SM occupancy.
#include "gpt_policies.h"

using namespace portus;
using namespace std::chrono_literals;

namespace {

constexpr Duration kWindow = 500s;
constexpr std::uint64_t kInterval = 20;

std::vector<double> run_policy(bool portus, double& average) {
  bench::World world{/*daemon_workers=*/16};
  auto ranks = bench::make_gpt_ranks(world, dnn::ModelZoo::spec("gpt-22.4b"),
                                     /*portus=*/portus, /*beegfs=*/!portus);
  const auto cfg = dnn::TrainingConfig::from_spec(dnn::ModelZoo::spec("gpt-22.4b"));
  dnn::TrainingStats stats;

  std::unique_ptr<bench::PortusGptHook> portus_hook;
  std::unique_ptr<bench::CheckFreqGptHook> cf_hook;
  dnn::CheckpointHook* hook = nullptr;
  if (portus) {
    portus_hook = std::make_unique<bench::PortusGptHook>(world, ranks, kInterval);
    hook = portus_hook.get();
  } else {
    cf_hook = std::make_unique<bench::CheckFreqGptHook>(world, ranks, kInterval);
    hook = cf_hook.get();
  }

  auto trainer = world.engine.spawn(
      [](bench::World& w, std::vector<bench::GptRank>& rs, dnn::TrainingConfig config,
         dnn::CheckpointHook& h, dnn::TrainingStats& st, bool is_portus) -> sim::Process {
        if (is_portus) co_await w.engine.spawn(bench::register_all(rs)).join();
        co_await w.engine
            .spawn(dnn::train(w.engine, *rs[0].gpu, nullptr, config, 100'000, h, st))
            .join();
      }(world, ranks, cfg, *hook, stats, portus));

  // Skip the first checkpoint cycle (warm-up), then observe 500 s.
  world.engine.run_until(Time{0} + 60s);
  const Time window_start = world.engine.now();
  world.engine.run_until(window_start + kWindow);
  (void)trainer;

  auto& gpu = *ranks[0].gpu;
  std::vector<double> buckets;
  for (Time t = window_start; t < window_start + kWindow; t += 10s) {
    buckets.push_back(gpu.utilization(t, t + 10s));
  }
  average = gpu.utilization(window_start, window_start + kWindow);
  return buckets;
}

void print_series(const char* name, const std::vector<double>& buckets, double average) {
  std::cout << name << " (avg " << strf("{:.1f}", 100 * average) << "%):\n";
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (i % 10 == 0) std::cout << strf("  t={:>3}s ", i * 10);
    std::cout << strf("{:>4.0f}", 100 * buckets[i]);
    if (i % 10 == 9) std::cout << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  bench::print_header("Fig. 16: GPU utilization during GPT-22.4B training (500 s trace)",
                      "Portus averages 76.4%; CheckFreq stays below 43%");

  double portus_avg = 0, cf_avg = 0;
  const auto portus_series = run_policy(true, portus_avg);
  const auto cf_series = run_policy(false, cf_avg);

  print_series("Portus", portus_series, portus_avg);
  print_series("CheckFreq", cf_series, cf_avg);

  std::cout << strf("average utilization: Portus {:.1f}% (paper 76.4%), CheckFreq {:.1f}% "
                    "(paper <43%)\n",
                    100 * portus_avg, 100 * cf_avg);
  return 0;
}
