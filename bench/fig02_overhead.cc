// Fig. 2 — Motivation: the share of total training time consumed by
// checkpointing under existing frameworks (torch.save to BeeGFS-PMEM), at
// the checkpoint frequencies CheckFreq would pick (1/83 iterations for VIT,
// 1/100 for the GPT models).
//
// Paper: checkpointing weighs at least 24.9% of total time (VIT) and up to
// 41% (GPT-22.4B).
#include "bench_common.h"

using namespace portus;

namespace {

Duration vit_checkpoint_time() {
  bench::World world;
  auto& gpu = world.volta().gpu(0);
  dnn::ModelZoo::Options opt;
  opt.force_phantom = true;
  auto model = dnn::ModelZoo::create(gpu, "vit_l_32", opt);
  storage::BeeGfsMount mount{*world.cluster, world.volta(), *world.beegfs_server, "mnt0"};
  baselines::TorchSaveCheckpointer ckpt{world.volta(), gpu, mount};
  Duration out{0};
  world.run([](baselines::TorchSaveCheckpointer& c, dnn::Model& m,
               Duration& t) -> sim::Process {
    t = (co_await c.checkpoint(m, "/ckpt/vit.ptck")).total;
  }(ckpt, model, out));
  return out;
}

Duration gpt_checkpoint_time(const std::string& name) {
  bench::World world;
  auto ranks = bench::make_gpt_ranks(world, dnn::ModelZoo::spec(name), /*portus=*/false,
                                     /*beegfs=*/true);
  Duration out{0};
  world.run([](bench::World& w, std::vector<bench::GptRank>& rs, Duration& t) -> sim::Process {
    t = co_await bench::torch_save_all(w.engine, rs, 1);
  }(world, ranks, out));
  return out;
}

}  // namespace

int main() {
  bench::print_header("Fig. 2: checkpoint share of training time (traditional path)",
                      "VIT >= 24.9%, GPT-22.4B up to 41% at CheckFreq frequencies");

  struct Row {
    const char* model;
    std::uint64_t interval;
    Duration ckpt;
    double paper_pct;
  };
  Row rows[] = {
      {"vit_l_32", 83, vit_checkpoint_time(), 24.9},
      {"gpt-10b", 100, gpt_checkpoint_time("gpt-10b"), 33.0},  // mid bar of Fig. 2
      {"gpt-22.4b", 100, gpt_checkpoint_time("gpt-22.4b"), 41.0},
  };

  std::cout << strf("{:<12}{:>10}{:>12}{:>12}{:>12}{:>10}\n", "model", "ckpt-every",
                    "iter-time", "ckpt-time", "measured%", "paper%");
  for (const auto& row : rows) {
    const auto iter = dnn::ModelZoo::spec(row.model).iteration_time;
    const double compute = to_seconds(iter) * static_cast<double>(row.interval);
    const double share = 100.0 * to_seconds(row.ckpt) / (compute + to_seconds(row.ckpt));
    std::cout << strf("{:<12}{:>10}{:>12}{:>12}{:>11.1f}%{:>9.1f}%\n", row.model,
                      row.interval, format_duration(iter), format_duration(row.ckpt), share,
                      row.paper_pct);
  }
  return 0;
}
