#include "bench_common.h"

namespace portus::bench {

std::vector<GptRank> make_gpt_ranks(World& world, const dnn::ModelSpec& spec,
                                    bool with_portus, bool with_beegfs) {
  dnn::MegatronPartitioner partitioner{/*tensor_parallel=*/8, /*pipeline_parallel=*/2};
  const auto shards = partitioner.partition(spec);

  std::vector<GptRank> ranks;
  ranks.reserve(shards.size());
  for (const auto& shard : shards) {
    // PP stage 0 on client-ampere (8 GPUs), stage 1 on client-volta.
    auto& node = shard.pp_rank == 0 ? world.ampere() : world.volta();
    auto& gpu = node.gpu(static_cast<std::size_t>(shard.tp_rank) % node.gpu_count());

    GptRank rank;
    rank.shard = shard;
    rank.gpu = &gpu;
    rank.node = &node;
    // Shards of the smaller GPT configs fall below the phantom threshold;
    // force phantom payloads — these benches only measure time.
    dnn::ModelZoo::Options opt;
    opt.force_phantom = true;
    rank.model =
        std::make_unique<dnn::Model>(dnn::ModelZoo::create_from_spec(gpu, shard.spec, opt));
    if (with_portus) {
      rank.portus = std::make_unique<core::PortusClient>(*world.cluster, node, gpu,
                                                         world.rendezvous);
    }
    if (with_beegfs) {
      rank.beegfs = std::make_unique<storage::BeeGfsMount>(
          *world.cluster, node, *world.beegfs_server, "mnt-" + shard.spec.name);
    }
    ranks.push_back(std::move(rank));
  }
  return ranks;
}

sim::Process register_all(std::vector<GptRank>& ranks) {
  for (auto& rank : ranks) {
    co_await rank.portus->connect();
    co_await rank.portus->register_model(*rank.model);
  }
}

namespace {

sim::Process checkpoint_one(GptRank& rank, std::uint64_t iteration) {
  co_await rank.portus->checkpoint(*rank.model, iteration);
}

sim::Process restore_one(GptRank& rank) { co_await rank.portus->restore(*rank.model); }

sim::Process torch_save_one(GptRank& rank, std::uint64_t iteration) {
  baselines::TorchSaveCheckpointer ckpt{*rank.node, *rank.gpu, *rank.beegfs};
  co_await ckpt.checkpoint(*rank.model,
                           strf("/gpt/{}.iter{}", rank.shard.spec.name, iteration));
}

template <typename Fn>
sim::SubTask<Duration> fan_out(sim::Engine& engine, std::vector<GptRank>& ranks, Fn&& make) {
  const Time t0 = engine.now();
  std::vector<sim::Process> procs;
  procs.reserve(ranks.size());
  for (auto& rank : ranks) {
    procs.push_back(engine.spawn(make(rank)));
  }
  for (auto& p : procs) co_await p.join();
  co_return engine.now() - t0;
}

}  // namespace

sim::SubTask<Duration> checkpoint_all(sim::Engine& engine, std::vector<GptRank>& ranks,
                                      std::uint64_t iteration) {
  co_return co_await fan_out(engine, ranks,
                             [&](GptRank& r) { return checkpoint_one(r, iteration); });
}

sim::SubTask<Duration> restore_all(sim::Engine& engine, std::vector<GptRank>& ranks) {
  co_return co_await fan_out(engine, ranks, [&](GptRank& r) { return restore_one(r); });
}

sim::SubTask<Duration> torch_save_all(sim::Engine& engine, std::vector<GptRank>& ranks,
                                      std::uint64_t iteration) {
  co_return co_await fan_out(engine, ranks,
                             [&](GptRank& r) { return torch_save_one(r, iteration); });
}

}  // namespace portus::bench
