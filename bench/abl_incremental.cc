// Ablation — incremental checkpointing (Check-N-Run-style extension).
//
// Recommendation-style training touches only a fraction of the parameters
// per step (embedding rows for the seen batch). The incremental extension
// pulls only the dirty tensors over RDMA and copies the untouched ones
// PMEM-locally from the previous version — trading NIC time (bounded by the
// GPU's 5.8 GB/s BAR read) for DIMM-local bandwidth.
//
// This sweeps the dirty fraction for BERT and reports checkpoint time vs
// the full pull.
#include "bench_common.h"

using namespace portus;

namespace {

Duration measure(double dirty_fraction) {
  bench::World world;
  auto& gpu = world.volta().gpu(0);
  dnn::ModelZoo::Options opt;
  opt.force_phantom = true;
  auto model = dnn::ModelZoo::create(gpu, "bert", opt);
  core::PortusClient client{*world.cluster, world.volta(), gpu, world.rendezvous};

  // Dirty set: every k-th tensor, by count (sizes are layout-random, so the
  // dirty-byte share tracks the fraction closely).
  std::vector<std::uint32_t> dirty;
  const auto n = static_cast<std::uint32_t>(model.layer_count());
  const auto want = static_cast<std::uint32_t>(dirty_fraction * n + 0.5);
  for (std::uint32_t i = 0; i < n && dirty.size() < want; i += std::max(1u, n / want)) {
    dirty.push_back(i);
  }

  Duration out{0};
  world.run([](sim::Engine& eng, core::PortusClient& c, dnn::Model& m,
               std::vector<std::uint32_t> d, Duration& t) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await c.checkpoint(m, 1);  // base version (full pull)
    const Time t0 = eng.now();
    co_await c.checkpoint_incremental(m, 2, std::move(d));
    t = eng.now() - t0;
  }(world.engine, client, model, std::move(dirty), out));
  return out;
}

}  // namespace

int main() {
  bench::print_header("Ablation: incremental checkpointing (dirty-fraction sweep, BERT)",
                      "extension in the spirit of Check-N-Run [15]; no paper numbers");

  const auto full = measure(1.0);
  std::cout << strf("{:<16}{:>12}{:>12}\n", "dirty fraction", "ckpt time", "vs full");
  for (const double f : {1.0, 0.5, 0.2, 0.05, 0.01}) {
    const auto t = measure(f);
    std::cout << strf("{:<16}{:>12}{:>11.2f}x\n", strf("{:.0f}%", 100 * f),
                      format_duration(t), bench::ratio(full, t));
  }
  std::cout << "\n(clean tensors are copied DIMM-locally from the previous DONE slot,\n"
               " bounded by Optane write bandwidth instead of the 5.8 GB/s GPU BAR; the\n"
               " larger win is that the NIC and the GPU stay free for other tenants.\n"
               " Crash consistency is unchanged — copies land in the write slot before\n"
               " the DONE flag flips.)\n";
  return 0;
}
