// Job-level checkpoint policies for distributed (16-rank Megatron) GPT
// training, used by the Fig. 15/16 benchmarks.
//
// Portus: at the checkpoint boundary the daemon pulls all 16 shards
// concurrently. Because a GPT pull spans multiple iterations' worth of
// time, the job blocks until the pull completes (weights must be quiescent);
// the first iteration's F/B still overlaps the tail of the control-plane
// round trip.
//
// CheckFreq: each rank takes a pinned GPU->DRAM snapshot (parallel across
// ranks, blocking the job briefly), then serializes + torch.saves to the
// shared BeeGFS in the background. A still-running persist throttles the
// next trigger — on a 22.4B model the 16-way BeeGFS persist takes ~2
// minutes, which is what collapses throughput and utilization.
#pragma once

#include "bench_common.h"

namespace portus::bench {

class PortusGptHook final : public dnn::CheckpointHook {
 public:
  // kBlocking: the job pauses for the whole 16-shard pull (conservative:
  //   weights stay bit-identical for the full checkpoint).
  // kOverlapped: the pull proceeds while training continues — the paper's
  //   asynchronous mechanism, with the daemon pulling layers in
  //   parameter-update order so it stays ahead of the optimizer; the
  //   double-mapping slot keeps the previous version valid regardless.
  // The two bracket the paper's reported behaviour (EXPERIMENTS.md).
  enum class Mode { kBlocking, kOverlapped };

  PortusGptHook(World& world, std::vector<GptRank>& ranks, std::uint64_t interval,
                Mode mode = Mode::kOverlapped)
      : world_{world}, ranks_{ranks}, interval_{interval}, mode_{mode} {}

  sim::SubTask<> on_iteration_end(std::uint64_t iteration) override {
    if (iteration % interval_ != 0) co_return;
    if (mode_ == Mode::kBlocking) {
      const auto took = co_await checkpoint_all(world_.engine, ranks_, iteration);
      total_ckpt_ += took;
      ++checkpoints_;
      co_return;
    }
    // Overlapped: one outstanding job checkpoint (one ACTIVE slot per model).
    if (pull_running_) {
      ++throttled_;
      co_await pull_done_->wait();
    }
    pull_running_ = true;
    pull_done_ = std::make_unique<sim::SimEvent>(world_.engine);
    world_.engine.spawn(pull_async(iteration));
  }
  sim::SubTask<> before_update(std::uint64_t) override { co_return; }

  sim::SubTask<> drain() {
    if (pull_running_) co_await pull_done_->wait();
  }

  Duration total_checkpoint_time() const { return total_ckpt_; }
  std::uint64_t checkpoints() const { return checkpoints_; }
  std::uint64_t throttled() const { return throttled_; }

 private:
  sim::Process pull_async(std::uint64_t iteration) {
    const auto took = co_await checkpoint_all(world_.engine, ranks_, iteration);
    total_ckpt_ += took;
    ++checkpoints_;
    pull_running_ = false;
    pull_done_->set();
  }

  World& world_;
  std::vector<GptRank>& ranks_;
  std::uint64_t interval_;
  Mode mode_;
  bool pull_running_ = false;
  std::unique_ptr<sim::SimEvent> pull_done_;
  Duration total_ckpt_{0};
  std::uint64_t checkpoints_ = 0;
  std::uint64_t throttled_ = 0;
};

class CheckFreqGptHook final : public dnn::CheckpointHook {
 public:
  CheckFreqGptHook(World& world, std::vector<GptRank>& ranks, std::uint64_t interval)
      : world_{world}, ranks_{ranks}, interval_{interval} {}

  sim::SubTask<> on_iteration_end(std::uint64_t iteration) override {
    if (iteration % interval_ != 0) co_return;
    if (persist_running_) {
      ++throttled_;
      co_await persist_done_->wait();
    }

    // Snapshot phase: every rank's pinned DtoH, concurrent, blocking.
    {
      std::vector<sim::Process> procs;
      for (auto& rank : ranks_) {
        procs.push_back(world_.engine.spawn(
            [](GptRank& r) -> sim::Process {
              gpu::CopyEngine copier{*r.gpu};
              for (auto& t : r.model->tensors()) {
                co_await copier.dtoh_time_only(t.byte_size(), /*pinned=*/true);
              }
            }(rank)));
      }
      for (auto& p : procs) co_await p.join();
    }

    // Persist phase: serialize + write to BeeGFS in the background.
    persist_running_ = true;
    persist_done_ = std::make_unique<sim::SimEvent>(world_.engine);
    world_.engine.spawn(persist(iteration));
  }
  sim::SubTask<> before_update(std::uint64_t) override { co_return; }

  sim::SubTask<> drain() {
    if (persist_running_) co_await persist_done_->wait();
  }

  std::uint64_t throttled() const { return throttled_; }

 private:
  sim::Process persist(std::uint64_t iteration) {
    std::vector<sim::Process> procs;
    for (auto& rank : ranks_) {
      procs.push_back(world_.engine.spawn(
          [](GptRank& r, std::uint64_t iter) -> sim::Process {
            const Bytes container =
                storage::CheckpointSerializer::container_size(*r.model);
            co_await r.gpu->engine().sleep(r.node->serialize_time(container));
            co_await r.beegfs->write_file(
                strf("/cf/{}.iter{}", r.shard.spec.name, iter), container, nullptr);
          }(rank, iteration)));
    }
    for (auto& p : procs) co_await p.join();
    persist_running_ = false;
    persist_done_->set();
  }

  World& world_;
  std::vector<GptRank>& ranks_;
  std::uint64_t interval_;
  bool persist_running_ = false;
  std::unique_ptr<sim::SimEvent> persist_done_;
  std::uint64_t throttled_ = 0;
};

}  // namespace portus::bench
