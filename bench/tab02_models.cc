// Table II — DNN model specifications. Verifies that the synthetic model
// zoo reproduces the paper's layer counts, parameter counts, and checkpoint
// sizes exactly (these drive every other experiment).
#include "bench_common.h"

using namespace portus;

int main() {
  bench::print_header("Table II: DNN model specifications",
                      "layers / params / size per model, verbatim");

  std::cout << strf("{:<16}{:>8}{:>12}{:>12}   {}\n", "model", "layers", "params(M)",
                    "size", "paper size");
  sim::Engine engine;
  mem::AddressSpace as;
  gpu::GpuDevice gpu{engine, as, "gpu0", gpu::GpuKind::kV100};

  struct PaperRow {
    const char* name;
    const char* size;
  };
  const PaperRow paper[] = {{"alexnet", "233MiB"},   {"convnext_base", "338MiB"},
                            {"resnet50", "97MiB"},   {"swin_b", "335MiB"},
                            {"vgg19_bn", "548MiB"},  {"vit_l_32", "1169MiB"},
                            {"bert", "1282MiB"}};
  for (const auto& row : paper) {
    const auto& spec = dnn::ModelZoo::spec(row.name);
    // Instantiate to prove the generated layout matches the spec.
    dnn::ModelZoo::Options opt;
    opt.force_phantom = true;  // no payload needed for a structural check
    auto model = dnn::ModelZoo::create(gpu, row.name, opt);
    const bool exact = model.layer_count() == static_cast<std::size_t>(spec.layers) &&
                       model.total_bytes() == spec.checkpoint_bytes;
    std::cout << strf("{:<16}{:>8}{:>12.1f}{:>12}   {}  {}\n", spec.name, spec.layers,
                      spec.params_millions, format_bytes(model.total_bytes()), row.size,
                      exact ? "OK" : "MISMATCH");
  }

  std::cout << "\nGPT family (SS V-E): checkpoint = params x 4B\n";
  for (const auto* name : {"gpt-1.5b", "gpt-10b", "gpt-22.4b"}) {
    const auto& spec = dnn::ModelZoo::spec(name);
    std::cout << strf("{:<16}{:>8}{:>12.0f}{:>12}\n", spec.name, spec.layers,
                      spec.params_millions, format_bytes(spec.checkpoint_bytes));
  }
  return 0;
}
