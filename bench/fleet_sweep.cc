// Multi-tenant fleet sweep (ISSUE 7 tentpole): hundreds of tenants, mixed
// priority classes and model sizes, Poisson checkpoint cadences, against a
// pool of tenancy-enabled daemons (strict priority + WFQ + token-bucket
// admission, bounded queues answering Backpressure that clients absorb
// with jittered exponential backoff).
//
// Part 1 — fleet scaling. Sweeps fleet size 1 -> 1000 tenants over four
// daemons and reports per-class p50/p99 checkpoint latency and aggregate
// GB/s. The batch tier is sized to saturate (small models, spammy cadence)
// while the high tier checkpoints deliberately — the sweep demonstrates
// that admission control keeps high-priority p99 near the 1-tenant value
// while batch soaks up Backpressure and retries.
//
// Part 2 — online repacking under live load. Seeds garbage (a finished
// fleet), then runs a live fleet with and without Repacker::repack_online
// sweeping concurrently in bounded admission-pause windows; live
// throughput must stay within 20% of the repack-free control.
//
// Emits BENCH_fleet.json; exits 1 unless high-class p99 at the gate count
// stays within 2x of the 1-tenant baseline, no client op fails after
// retries, and online repacking frees garbage while degrading live
// throughput < 20%. --smoke shrinks the sweep to {1, 8, 32} tenants with a
// tighter admission queue for the perf-smoke CI label.
#include <cstring>
#include <fstream>
#include <vector>

#include "bench_common.h"
#include "core/daemon/repacker.h"
#include "core/fleet/fleet_gen.h"

using namespace portus;

namespace {

constexpr int kDaemons = 4;

struct FleetRig {
  sim::Engine eng;
  std::unique_ptr<net::Cluster> cluster;
  core::QpRendezvous rendezvous;
  std::vector<std::unique_ptr<core::PortusDaemon>> daemons;
  std::vector<std::string> endpoints;

  explicit FleetRig(std::uint32_t queue_depth) {
    cluster = net::Cluster::sharded_testbed(eng, kDaemons);
    for (int i = 0; i < kDaemons; ++i) {
      core::PortusDaemon::Config cfg;
      cfg.workers = 8;
      cfg.model_table_capacity = 512;
      cfg.shards = 8;
      cfg.alloc_refill_bytes = 256_KiB;
      cfg.endpoint = strf("portusd{}", i);
      cfg.pipeline_window = 4;
      cfg.chunk_bytes = 4_MiB;
      cfg.tenancy = true;
      // One admission slot per daemon: in-service ops never share the PMEM
      // write stream, so a high-class op's latency is its own transfer plus
      // at most one in-service residual — the strongest priority isolation
      // this datapath can give.
      cfg.admission_inflight = 1;
      cfg.admission_queue_depth = queue_depth;
      daemons.push_back(std::make_unique<core::PortusDaemon>(
          *cluster, cluster->node(strf("pmem{}", i)), rendezvous, cfg));
      daemons.back()->start();
      endpoints.push_back(cfg.endpoint);
    }
  }
  ~FleetRig() { eng.shutdown(); }

  void run(sim::Process p) {
    auto proc = eng.spawn(std::move(p));
    eng.run();
    proc.check();
  }
};

struct Row {
  int tenants = 0;
  core::fleet::FleetReport rep;
  // Daemon-side aggregates across the pool.
  std::uint64_t daemon_backpressure = 0;
  std::uint64_t admitted = 0;
  std::uint64_t paced = 0;
  Duration queue_wait_max{0};
};

void absorb_daemons(FleetRig& rig, Row& row) {
  for (const auto& d : rig.daemons) {
    row.daemon_backpressure += d->stats().backpressure_rejects;
    if (d->admission() != nullptr) {
      row.admitted += d->admission()->stats().admitted;
      row.paced += d->admission()->stats().paced;
      row.queue_wait_max =
          std::max(row.queue_wait_max, d->admission()->stats().queue_wait_max);
    }
  }
}

core::fleet::FleetConfig fleet_config(int tenants, bool smoke) {
  core::fleet::FleetConfig fc;
  fc.tenants = tenants;
  fc.checkpoints_per_tenant = smoke ? 3 : 4;
  // The saturation transient at 1000 tenants lasts whole seconds; the retry
  // budget (sum of capped, jittered backoffs) must outlast it or batch ops
  // turn into hard failures instead of delayed successes.
  fc.retry.max_retries = 30;
  fc.retry.max_backoff = Duration{400'000'000};
  fc.seed = 0x5EEDF1EE7ull + static_cast<std::uint64_t>(tenants);
  if (smoke) {
    // Shorter cadences + the rig's tighter queue keep smoke fast while
    // still bouncing a few batch ops off the admission queue.
    fc.high_period = Duration{500'000'000};
    fc.normal_period = Duration{200'000'000};
    fc.batch_period = Duration{8'000'000};
  } else {
    // Production-shaped cadences: prod jobs checkpoint deliberately (every
    // ~60s, as real DNN training does), batch jobs spam. Keeping per-daemon
    // high-class utilization under ~1% is what makes the 2x-p99 isolation
    // gate physically attainable with a non-preemptive datapath: a high op
    // can always wait out one in-service residual, but must almost never
    // queue behind a second 128MiB high transfer.
    fc.high_period = Duration{60'000'000'000};
    fc.normal_period = Duration{5'000'000'000};
  }
  return fc;
}

Row measure_fleet(int tenants, bool smoke, bool high_only) {
  FleetRig rig{smoke ? 2u : 64u};
  auto fc = fleet_config(tenants, smoke);
  if (high_only) {
    fc.high_fraction = 1.0;
    fc.batch_fraction = 0.0;
  }
  core::fleet::FleetGen gen{*rig.cluster, rig.cluster->node("client-volta"),
                            rig.rendezvous, rig.endpoints, fc};
  Row row{.tenants = tenants};
  rig.run([](core::fleet::FleetGen& g, Row& out) -> sim::Process {
    out.rep = co_await g.run();
  }(gen, row));
  absorb_daemons(rig, row);
  return row;
}

struct RepackRow {
  int tenants = 0;
  double gbps_control = 0.0;
  double gbps_repacking = 0.0;
  std::uint64_t failures = 0;
  Bytes freed = 0;
  int passes = 0;
  Duration paused{0};
  double ratio() const { return gbps_control > 0.0 ? gbps_repacking / gbps_control : 0.0; }
};

RepackRow measure_repack(int tenants, bool smoke) {
  RepackRow out{.tenants = tenants};
  for (const bool with_repack : {false, true}) {
    FleetRig rig{smoke ? 2u : 64u};

    // Seed garbage: a finished fleet whose non-latest slots become
    // reclaimable the moment FINISH_JOB lands.
    auto gc = fleet_config(std::max(8, tenants / 2), smoke);
    gc.name_prefix = "garbage";
    gc.finish_jobs = true;
    gc.high_period = gc.normal_period = gc.batch_period = Duration{5'000'000};
    core::fleet::FleetGen seeder{*rig.cluster, rig.cluster->node("client-volta"),
                                 rig.rendezvous, rig.endpoints, gc};
    rig.run([](core::fleet::FleetGen& g) -> sim::Process {
      const auto rep = co_await g.run();
      PORTUS_CHECK(rep.failures == 0, "garbage seeding fleet must not fail");
    }(seeder));

    // Live fleet, optionally with every daemon's repacker sweeping online
    // underneath it.
    auto lc = fleet_config(tenants, smoke);
    lc.name_prefix = "live";
    core::fleet::FleetGen live{*rig.cluster, rig.cluster->node("client-volta"),
                               rig.rendezvous, rig.endpoints, lc};
    core::fleet::FleetReport rep;
    std::vector<core::Repacker::Report> rreps{rig.daemons.size()};
    rig.run([](FleetRig& r, core::fleet::FleetGen& g, bool repack,
               core::fleet::FleetReport& rep_out,
               std::vector<core::Repacker::Report>& rrep_out) -> sim::Process {
      std::vector<sim::Process> maint;
      if (repack) {
        for (std::size_t i = 0; i < r.daemons.size(); ++i) {
          maint.push_back(r.eng.spawn(
              [](core::PortusDaemon& d, core::Repacker::Report& out) -> sim::Process {
                core::Repacker repacker{d};
                out = co_await repacker.repack_online(core::Repacker::OnlineOptions{});
              }(*r.daemons[i], rrep_out[i])));
        }
      }
      rep_out = co_await g.run();
      for (auto& p : maint) co_await p.join();
    }(rig, live, with_repack, rep, rreps));

    out.failures += rep.failures;
    if (with_repack) {
      out.gbps_repacking = rep.aggregate_gbps();
      for (const auto& rr : rreps) {
        out.freed += rr.freed_outdated + rr.freed_crashed;
        out.passes += rr.passes;
        out.paused += rr.paused_time;
      }
    } else {
      out.gbps_control = rep.aggregate_gbps();
    }
  }
  return out;
}

const char* cls_name(int c) { return core::to_string(static_cast<core::PriorityClass>(c)); }

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::vector<int> counts =
      smoke ? std::vector<int>{1, 8, 32} : std::vector<int>{1, 8, 64, 256, 1000};
  const int gate_count = smoke ? counts.back() : 256;
  const int repack_count = smoke ? 32 : 256;

  bench::print_header(
      "Multi-tenant fleet sweep: admission control vs fleet size",
      "high-priority p99 must stay within 2x of the 1-tenant value at the "
      "gate count; no client op may fail after retries; online repacking "
      "must free garbage while costing live traffic < 20%");

  // Baseline: one lone high-priority tenant on an idle pool.
  const Row baseline = measure_fleet(1, smoke, /*high_only=*/true);
  const Duration base_p99 = baseline.rep.by_class[0].p99;
  std::cout << strf("1-tenant high-priority baseline p99: {}\n\n",
                    format_duration(base_p99));

  std::vector<Row> rows;
  std::cout << strf("{:>8}{:>8}{:>12}{:>12}{:>12}{:>12}{:>10}{:>9}{:>9}{:>7}\n", "tenants",
                    "class", "ckpts", "p50", "p99", "worst", "GB/s", "retry", "bp",
                    "fail");
  for (const int n : counts) {
    const auto row = measure_fleet(n, smoke, /*high_only=*/false);
    for (int c = 0; c < core::kPriorityClasses; ++c) {
      const auto& cr = row.rep.by_class[c];
      if (cr.tenants == 0) continue;
      std::cout << strf("{:>8}{:>8}{:>12}{:>12}{:>12}{:>12}{:>10.2f}{:>9}{:>9}{:>7}\n",
                        c == 0 ? std::to_string(n) : "", cls_name(c), cr.checkpoints,
                        format_duration(cr.p50), format_duration(cr.p99),
                        format_duration(cr.max), row.rep.aggregate_gbps(),
                        row.rep.retries, row.rep.backpressure, row.rep.failures);
    }
    rows.push_back(row);
  }

  std::cout << "\nonline repacking under live fleet load:\n";
  const auto repack = measure_repack(repack_count, smoke);
  std::cout << strf(
      "{:>8} tenants: control {:.2f} GB/s, repacking {:.2f} GB/s ({:.0f}%), "
      "freed {}, {} passes, paused {}\n",
      repack.tenants, repack.gbps_control, repack.gbps_repacking, repack.ratio() * 100.0,
      format_bytes(repack.freed), repack.passes, format_duration(repack.paused));

  // --- JSON ---
  std::ofstream json{"BENCH_fleet.json", std::ios::trunc};
  json << "{\n  \"bench\": \"fleet_sweep\",\n"
       << strf("  \"smoke\": {},\n  \"daemons\": {},\n", smoke ? "true" : "false", kDaemons)
       << strf("  \"baseline_high_p99_ns\": {},\n  \"rows\": [\n", base_p99.count());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    json << strf("    {{\"tenants\": {}, \"gbps\": {:.4f}, \"checkpoints\": {}, "
                 "\"failures\": {}, \"retries\": {}, \"backpressure\": {}, "
                 "\"daemon_backpressure\": {}, \"paced\": {}, \"classes\": [",
                 r.tenants, r.rep.aggregate_gbps(), r.rep.checkpoints, r.rep.failures,
                 r.rep.retries, r.rep.backpressure, r.daemon_backpressure, r.paced);
    for (int c = 0; c < core::kPriorityClasses; ++c) {
      const auto& cr = r.rep.by_class[c];
      json << strf("{{\"class\": \"{}\", \"tenants\": {}, \"p50_ns\": {}, "
                   "\"p99_ns\": {}}}{}",
                   cls_name(c), cr.tenants, cr.p50.count(), cr.p99.count(),
                   c + 1 < core::kPriorityClasses ? ", " : "");
    }
    json << strf("]}}{}\n", i + 1 < rows.size() ? "," : "");
  }
  json << strf(
      "  ],\n  \"repack\": {{\"tenants\": {}, \"control_gbps\": {:.4f}, "
      "\"repacking_gbps\": {:.4f}, \"freed_bytes\": {}, \"passes\": {}, "
      "\"paused_ns\": {}}}\n}}\n",
      repack.tenants, repack.gbps_control, repack.gbps_repacking, repack.freed,
      repack.passes, repack.paused.count());
  json.close();
  std::cout << "\nwrote BENCH_fleet.json\n";

  // --- Acceptance gates ---
  int rc = 0;
  for (const auto& r : rows) {
    if (r.rep.failures != 0) {
      std::cerr << strf("FAIL: {} tenants: {} client ops failed after retries\n",
                        r.tenants, r.rep.failures);
      rc = 1;
    }
    if (r.tenants == gate_count) {
      const auto p99 = r.rep.by_class[0].p99;
      if (p99 > Duration{base_p99.count() * 2}) {
        std::cerr << strf(
            "FAIL: high-priority p99 {} at {} tenants exceeds 2x the 1-tenant "
            "baseline {}\n",
            format_duration(p99), r.tenants, format_duration(base_p99));
        rc = 1;
      }
    }
  }
  if (!smoke) {
    const auto& top = rows.back();
    if (top.rep.backpressure == 0 || top.rep.retries == 0) {
      std::cerr << "FAIL: the saturated fleet never exercised Backpressure/retry\n";
      rc = 1;
    }
  }
  if (repack.failures != 0) {
    std::cerr << "FAIL: live fleet ops failed during online repacking\n";
    rc = 1;
  }
  if (repack.freed == 0) {
    std::cerr << "FAIL: online repacking freed nothing\n";
    rc = 1;
  }
  if (repack.ratio() < 0.8) {
    std::cerr << strf(
        "FAIL: online repacking degrades live throughput to {:.0f}% of control "
        "(bar: >= 80%)\n",
        repack.ratio() * 100.0);
    rc = 1;
  }
  if (rc == 0) std::cout << "fleet sweep acceptance checks passed\n";
  return rc;
}
