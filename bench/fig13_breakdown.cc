// Fig. 13 — Breakdown analysis of BERT checkpointing time across the three
// systems (ext4-NVMe, BeeGFS-PMEM, Portus).
//
// Paper's observations this reproduces:
//   * serialization + cuMemcpy is a constant cost contributing 46.5% of
//     ext4-NVMe's total and 57.2% of BeeGFS-PMEM's;
//   * ext4-NVMe spends 53.7% of its time in kernel crossings to the block
//     device;
//   * Portus is dominated purely by (one-sided) RDMA transmission, with no
//     serialization or memcpy stage at all.
#include "bench_common.h"

using namespace portus;

int main() {
  bench::print_header(
      "Fig. 13: BERT checkpointing time breakdown across systems",
      "serialize+cuMemcpy = 46.5% of ext4-NVMe, 57.2% of BeeGFS-PMEM; block I/O = 53.7% "
      "of ext4-NVMe; Portus ~ pure one-sided RDMA");

  dnn::ModelZoo::Options opt;
  opt.force_phantom = true;

  // --- ext4-NVMe ---
  baselines::TorchSaveCheckpointer::CheckpointTimings nvme;
  {
    bench::World world;
    auto& gpu = world.volta().gpu(0);
    auto model = dnn::ModelZoo::create(gpu, "bert", opt);
    baselines::TorchSaveCheckpointer ckpt{world.volta(), gpu, *world.volta_nvme};
    world.run([](baselines::TorchSaveCheckpointer& c, dnn::Model& m,
                 baselines::TorchSaveCheckpointer::CheckpointTimings& out) -> sim::Process {
      out = co_await c.checkpoint(m, "/ckpt/bert.ptck");
    }(ckpt, model, nvme));
  }

  // --- BeeGFS-PMEM ---
  baselines::TorchSaveCheckpointer::CheckpointTimings beegfs;
  Duration beegfs_dax{0};
  {
    bench::World world;
    auto& gpu = world.volta().gpu(0);
    auto model = dnn::ModelZoo::create(gpu, "bert", opt);
    storage::BeeGfsMount mount{*world.cluster, world.volta(), *world.beegfs_server, "mnt0"};
    baselines::TorchSaveCheckpointer ckpt{world.volta(), gpu, mount};
    world.run([](baselines::TorchSaveCheckpointer& c, dnn::Model& m,
                 baselines::TorchSaveCheckpointer::CheckpointTimings& out) -> sim::Process {
      out = co_await c.checkpoint(m, "/ckpt/bert.ptck");
    }(ckpt, model, beegfs));
    beegfs_dax = mount.dax_write_time();
  }

  // --- Portus ---
  Duration portus_total{0}, portus_register{0};
  {
    bench::World world;
    auto& gpu = world.volta().gpu(0);
    auto model = dnn::ModelZoo::create(gpu, "bert", opt);
    core::PortusClient client{*world.cluster, world.volta(), gpu, world.rendezvous};
    world.run([](sim::Engine& eng, core::PortusClient& c, dnn::Model& m, Duration& total,
                 Duration& reg) -> sim::Process {
      co_await c.connect();
      Time t0 = eng.now();
      co_await c.register_model(m);
      reg = eng.now() - t0;
      t0 = eng.now();
      co_await c.checkpoint(m, 1);
      total = eng.now() - t0;
    }(world.engine, client, model, portus_total, portus_register));
  }

  const auto pct = [](Duration part, Duration whole) {
    return 100.0 * to_seconds(part) / to_seconds(whole);
  };

  std::cout << strf("{:<14}{:>10}{:>12}{:>12}{:>12}{:>12}\n", "system", "total", "cuMemcpy",
                    "serialize", "transport", "device-io");
  std::cout << strf("{:<14}{:>10}{:>12}{:>12}{:>12}{:>12}\n", "ext4-NVMe",
                    format_duration(nvme.total), format_duration(nvme.dtoh),
                    format_duration(nvme.serialize), "-", format_duration(nvme.fs_write));
  std::cout << strf("{:<14}{:>10}{:>12}{:>12}{:>12}{:>12}\n", "BeeGFS-PMEM",
                    format_duration(beegfs.total), format_duration(beegfs.dtoh),
                    format_duration(beegfs.serialize),
                    format_duration(beegfs.fs_write - beegfs_dax),
                    format_duration(beegfs_dax));
  std::cout << strf("{:<14}{:>10}{:>12}{:>12}{:>12}{:>12}\n", "Portus",
                    format_duration(portus_total), "0 (none)", "0 (none)",
                    format_duration(portus_total), "-");

  std::cout << strf(
      "\nserialize+cuMemcpy share: ext4-NVMe {:.1f}% (paper 46.5%), BeeGFS-PMEM {:.1f}% "
      "(paper 57.2%)\n",
      pct(nvme.dtoh + nvme.serialize, nvme.total),
      pct(beegfs.dtoh + beegfs.serialize, beegfs.total));
  std::cout << strf("block-device share of ext4-NVMe: {:.1f}% (paper 53.7%)\n",
                    pct(nvme.fs_write, nvme.total));
  std::cout << strf(
      "Portus one-sided RDMA total {} vs BeeGFS two-sided transport {} "
      "(one-sided is cheaper; SS V-D)\n",
      format_duration(portus_total), format_duration(beegfs.fs_write - beegfs_dax));
  std::cout << strf("(one-time registration cost, off the checkpoint path: {})\n",
                    format_duration(portus_register));
  return 0;
}
