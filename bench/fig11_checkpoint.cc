// Fig. 11 — Checkpointing time of the seven Table II models under three
// storage systems: Portus (devdax PMEM, zero-copy), BeeGFS-PMEM (shared FS
// over fsdax), and ext4-NVMe (local SSD).
//
// Paper: Portus is 8.49x faster than BeeGFS-PMEM and 8.18x faster than
// ext4-NVMe on average; ResNet50 peaks at 9.23x (BeeGFS metadata overhead
// dominates small files).
#include "bench_common.h"

using namespace portus;

namespace {

struct Row {
  std::string model;
  Duration portus{0};
  Duration beegfs{0};
  Duration nvme{0};
};

Row measure(const std::string& name) {
  Row row;
  row.model = name;

  // Full-size models; payloads phantom for the big ones (timing identical).
  dnn::ModelZoo::Options opt;
  opt.force_phantom = true;

  {  // Portus
    bench::World world;
    auto& gpu = world.volta().gpu(0);
    auto model = dnn::ModelZoo::create(gpu, name, opt);
    core::PortusClient client{*world.cluster, world.volta(), gpu, world.rendezvous};
    world.run([](sim::Engine& eng, core::PortusClient& c, dnn::Model& m,
                 Duration& out) -> sim::Process {
      co_await c.connect();
      co_await c.register_model(m);
      const Time t0 = eng.now();
      co_await c.checkpoint(m, 1);
      out = eng.now() - t0;
    }(world.engine, client, model, row.portus));
  }
  {  // BeeGFS-PMEM via torch.save
    bench::World world;
    auto& gpu = world.volta().gpu(0);
    auto model = dnn::ModelZoo::create(gpu, name, opt);
    storage::BeeGfsMount mount{*world.cluster, world.volta(), *world.beegfs_server, "mnt0"};
    baselines::TorchSaveCheckpointer ckpt{world.volta(), gpu, mount};
    world.run([](baselines::TorchSaveCheckpointer& c, dnn::Model& m,
                 Duration& out) -> sim::Process {
      const auto t = co_await c.checkpoint(m, "/ckpt/" + m.name() + ".ptck");
      out = t.total;
    }(ckpt, model, row.beegfs));
  }
  {  // ext4-NVMe via torch.save
    bench::World world;
    auto& gpu = world.volta().gpu(0);
    auto model = dnn::ModelZoo::create(gpu, name, opt);
    baselines::TorchSaveCheckpointer ckpt{world.volta(), gpu, *world.volta_nvme};
    world.run([](baselines::TorchSaveCheckpointer& c, dnn::Model& m,
                 Duration& out) -> sim::Process {
      const auto t = co_await c.checkpoint(m, "/ckpt/" + m.name() + ".ptck");
      out = t.total;
    }(ckpt, model, row.nvme));
  }
  return row;
}

}  // namespace

int main() {
  bench::print_header("Fig. 11: checkpointing time per model x storage system",
                      "Portus avg 8.49x faster than BeeGFS-PMEM, 8.18x than ext4-NVMe; "
                      "ResNet50 up to 9.23x");

  std::cout << strf("{:<16}{:>10}{:>14}{:>13}{:>12}{:>10}\n", "model", "Portus",
                    "BeeGFS-PMEM", "ext4-NVMe", "vs BeeGFS", "vs NVMe");
  double sum_beegfs = 0, sum_nvme = 0;
  double max_beegfs = 0;
  std::string max_model;
  const auto names = dnn::ModelZoo::table2_names();
  for (const auto& name : names) {
    const auto row = measure(name);
    const double vs_beegfs = bench::ratio(row.beegfs, row.portus);
    const double vs_nvme = bench::ratio(row.nvme, row.portus);
    sum_beegfs += vs_beegfs;
    sum_nvme += vs_nvme;
    if (vs_beegfs > max_beegfs) {
      max_beegfs = vs_beegfs;
      max_model = name;
    }
    std::cout << strf("{:<16}{:>10}{:>14}{:>13}{:>11.2f}x{:>9.2f}x\n", name,
                      format_duration(row.portus), format_duration(row.beegfs),
                      format_duration(row.nvme), vs_beegfs, vs_nvme);
  }
  const auto n = static_cast<double>(names.size());
  std::cout << strf("\naverage speedup: {:.2f}x vs BeeGFS-PMEM (paper 8.49x), "
                    "{:.2f}x vs ext4-NVMe (paper 8.18x)\n",
                    sum_beegfs / n, sum_nvme / n);
  std::cout << strf("max speedup:     {:.2f}x on {} (paper: 9.23x on resnet50)\n",
                    max_beegfs, max_model);
  return 0;
}
