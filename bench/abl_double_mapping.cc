// Ablation — double-mapping checkpoint slots vs a fresh file per checkpoint
// (SS III-D2).
//
// The conventional crash-consistency recipe ("write a new file, then swap")
// would force Portus to allocate PMEM, register a new RDMA memory region,
// and re-establish connection state on *every* checkpoint. The double
// mapping pays those costs once at registration and afterwards only flips a
// 24-byte flag per checkpoint.
//
// Costs of the fresh-file alternative charged here (per checkpoint):
//   * PMEM allocation + AllocTable/MIndex metadata writes (real, measured)
//   * MR registration of the new TensorData region: 180 us + 0.9 us/MiB
//     (same pinning model as PeerMem)
//   * RDMA CM re-connect handshake: 2.5 ms
#include "bench_common.h"

using namespace portus;
using namespace std::chrono_literals;

namespace {
constexpr Duration kMrBase = 180us;
constexpr auto kMrPerMiB = 900ns;
constexpr Duration kCmConnect = 2500us;
constexpr int kCheckpoints = 10;
}  // namespace

int main() {
  bench::print_header(
      "Ablation: double-mapping slots vs fresh-allocate-per-checkpoint",
      "SS III-D2: 'not efficient ... each time it needs to allocate space on PMEM "
      "and initializes a new RDMA connection'");

  std::cout << strf("{:<16}{:>14}{:>16}{:>16}{:>14}\n", "model", "ckpt (reuse)",
                    "ckpt (fresh)", "extra/ckpt", "pmem growth");

  for (const auto* name : {"resnet50", "vgg19_bn", "bert"}) {
    bench::World world;
    auto& gpu = world.volta().gpu(0);
    dnn::ModelZoo::Options opt;
    opt.force_phantom = true;
    auto model = dnn::ModelZoo::create(gpu, name, opt);
    core::PortusClient client{*world.cluster, world.volta(), gpu, world.rendezvous};

    Duration reuse_avg{0};
    world.run([](sim::Engine& eng, core::PortusClient& c, dnn::Model& m,
                 Duration& out) -> sim::Process {
      co_await c.connect();
      co_await c.register_model(m);
      co_await c.checkpoint(m, 0);  // warm-up: both slots provisioned
      const Time t0 = eng.now();
      for (int i = 1; i <= kCheckpoints; ++i) {
        co_await c.checkpoint(m, static_cast<std::uint64_t>(i));
      }
      out = (eng.now() - t0) / kCheckpoints;
    }(world.engine, client, model, reuse_avg));

    // Fresh-file alternative: same data movement + per-checkpoint setup.
    const double mib = static_cast<double>(model.total_bytes()) / static_cast<double>(1_MiB);
    const auto setup = kMrBase +
                       Duration{static_cast<Duration::rep>(mib * kMrPerMiB.count())} +
                       kCmConnect;
    const auto fresh_avg = reuse_avg + setup;
    // Until garbage collection runs, every checkpoint leaks one slot's worth
    // of PMEM instead of alternating between two fixed slots.
    const auto growth = model.total_bytes() * (kCheckpoints - 2);

    std::cout << strf("{:<16}{:>14}{:>16}{:>16}{:>14}\n", name, format_duration(reuse_avg),
                      format_duration(fresh_avg), format_duration(setup),
                      format_bytes(growth));
  }

  std::cout << "\n(extra/ckpt = MR pinning + RDMA CM reconnect; pmem growth = garbage\n"
               " pending repack after " << kCheckpoints << " checkpoints vs a constant 2 slots)\n";
  return 0;
}
