// Elastic resize under load (ISSUE 9 tentpole): a training client
// checkpoints continuously while the ring grows 2 -> 3 -> 4 and then
// drains + decommissions a founding member. Each step reports what the
// migrator moved (copies, bytes, barrier time) and what the client felt
// (checkpoint p50/p99/worst during the step, epoch re-resolutions) —
// elasticity must cost retries, never failed ops.
//
// Emits BENCH_elastic.json; exits 1 unless every resize step moved copies,
// zero client ops failed across the whole run, and the final restore from
// the resized ring is bit-exact. --smoke shrinks the model and per-step op
// counts for the perf-smoke CI label.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <vector>

#include "bench_common.h"
#include "core/cluster/cluster_client.h"
#include "core/cluster/cluster_ctl.h"
#include "core/cluster/migration.h"

using namespace portus;

namespace {

constexpr int kNodes = 4;

struct StepRow {
  std::string step;
  std::string kind;  // "steady" | "join" | "drain"
  std::uint64_t copies_moved = 0;  // migrator deltas over the step
  Bytes bytes_streamed = 0;
  Duration barrier_time{0};
  std::uint64_t checkpoints = 0;  // client ops landed during the step
  Duration p50{0}, p99{0}, max{0};
  std::uint64_t reresolutions = 0;
  std::uint64_t client_errors = 0;
};

Duration percentile(std::vector<Duration> v, double p) {
  if (v.empty()) return Duration{0};
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

struct ElasticRig {
  sim::Engine eng;
  std::unique_ptr<net::Cluster> cluster;
  core::QpRendezvous rendezvous;
  core::cluster::ElasticCluster elastic{eng};
  std::vector<std::unique_ptr<core::PortusDaemon>> daemons;

  ElasticRig() {
    cluster = net::Cluster::sharded_testbed(eng, kNodes);
    for (int i = 0; i < kNodes; ++i) {
      core::PortusDaemon::Config cfg;
      cfg.endpoint = strf("portusd{}", i);
      cfg.workers = 8;
      daemons.push_back(std::make_unique<core::PortusDaemon>(
          *cluster, cluster->node(strf("pmem{}", i)), rendezvous, cfg));
      daemons.back()->start();
    }
    elastic.add_member("portusd0", *daemons[0]);
    elastic.add_member("portusd1", *daemons[1]);
    elastic.seal();
  }
  ~ElasticRig() { eng.shutdown(); }
};

// Shared loader state: the resize driver flips `step` while the loader
// keeps checkpointing and filing per-op latencies under the current step.
struct LoadState {
  bool stop = false;
  std::size_t step = 0;
  std::uint64_t iteration = 0;
  std::uint64_t last_epoch = 0;
  std::uint32_t last_crc = 0;
  std::vector<std::vector<Duration>> samples;
  std::vector<std::uint64_t> errors;
};

sim::Process loader(sim::Engine& eng, core::cluster::ClusterClient& client,
                    dnn::Model& model, LoadState& st) {
  co_await client.register_model(model);
  while (!st.stop) {
    model.mutate_weights(++st.iteration);
    const auto golden = model.weights_crc();
    const auto t0 = eng.now();
    try {
      const auto ck = co_await client.checkpoint(st.iteration);
      st.samples[st.step].push_back(eng.now() - t0);
      st.last_epoch = ck.epoch;
      st.last_crc = golden;
    } catch (const Error&) {
      ++st.errors[st.step];
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::uint64_t ops_per_step = smoke ? 4 : 16;

  bench::print_header(
      "Elastic resize under load: 2 -> 3 -> 4 -> drain/decommission",
      "membership epochs + online migration (Portus-Cluster elasticity); a "
      "resize under load must cost retries, never failed ops");

  ElasticRig rig;
  auto& volta = rig.cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = smoke ? 0.02 : 0.1;
  auto model = dnn::ModelZoo::create(volta.gpu(0), "resnet50", opt);

  core::cluster::ClusterClient::Config ccfg;
  ccfg.replicas = 2;
  ccfg.shard_count = 8;
  ccfg.membership = &rig.elastic;
  ccfg.op_timeout = Duration{50'000'000};
  core::cluster::ClusterClient client{*rig.cluster, volta, volta.gpu(0),
                                      rig.rendezvous, ccfg};

  const std::vector<std::pair<std::string, std::string>> steps = {
      {"steady-2", "steady"}, {"join-portusd2", "join"}, {"join-portusd3", "join"},
      {"drain-portusd0", "drain"}};
  LoadState st;
  st.samples.resize(steps.size());
  st.errors.resize(steps.size(), 0);
  std::vector<StepRow> rows;

  bool driver_done = false;
  rig.eng.spawn(loader(rig.eng, client, model, st));
  rig.eng.spawn([](ElasticRig& r, core::cluster::ClusterClient& c, LoadState& s,
                   std::vector<StepRow>& out,
                   const std::vector<std::pair<std::string, std::string>>& plan,
                   std::uint64_t per_step, bool& done) -> sim::Process {
    const auto traffic = [&](std::uint64_t n) -> sim::SubTask<> {
      const std::uint64_t want = s.samples[s.step].size() + n;
      while (s.samples[s.step].size() < want && s.errors[s.step] < n) {
        co_await r.eng.sleep(Duration{100'000});
      }
    };
    for (std::size_t i = 0; i < plan.size(); ++i) {
      s.step = i;
      const auto before = r.elastic.stats();
      const auto rr_before = c.stats().epoch_reresolutions;
      if (plan[i].second == "join") {
        const std::string ep = plan[i].first.substr(std::strlen("join-"));
        core::PortusDaemon* d = nullptr;
        for (auto& cand : r.daemons) {
          if (cand->config().endpoint == ep) d = cand.get();
        }
        co_await r.elastic.join(ep, *d);
      } else if (plan[i].second == "drain") {
        const std::string ep = plan[i].first.substr(std::strlen("drain-"));
        co_await r.elastic.drain(ep);
        r.elastic.decommission(ep);
      }
      co_await traffic(per_step);
      const auto& after = r.elastic.stats();
      StepRow row;
      row.step = plan[i].first;
      row.kind = plan[i].second;
      row.copies_moved = after.copies_moved - before.copies_moved;
      row.bytes_streamed = after.bytes_streamed - before.bytes_streamed;
      row.barrier_time = after.barrier_time - before.barrier_time;
      row.checkpoints = s.samples[i].size();
      row.p50 = percentile(s.samples[i], 0.50);
      row.p99 = percentile(s.samples[i], 0.99);
      row.max = percentile(s.samples[i], 1.0);
      row.reresolutions = c.stats().epoch_reresolutions - rr_before;
      row.client_errors = s.errors[i];
      out.push_back(row);
    }
    s.stop = true;
    done = true;
  }(rig, client, st, rows, steps, ops_per_step, driver_done));
  rig.eng.run();
  PORTUS_CHECK(driver_done, "resize driver did not finish");

  // Final proof: the last acked round restores bit-exact from the ring as
  // it now stands (3 actives, one member decommissioned).
  bool restored = false;
  model.mutate_weights(0xD1DE);
  rig.eng.spawn([](core::cluster::ClusterClient& c, LoadState& s,
                   bool& done) -> sim::Process {
    const auto rr = co_await c.restore();
    PORTUS_CHECK(rr.epoch == s.last_epoch, "restore served a stale epoch");
    done = true;
  }(client, st, restored));
  rig.eng.run();
  const bool bit_exact = restored && model.weights_crc() == st.last_crc;

  std::cout << strf("{:>16}{:>8}{:>8}{:>12}{:>10}{:>12}{:>12}{:>12}{:>8}{:>7}\n", "step",
                    "kind", "copies", "streamed", "barrier", "p50", "p99", "worst",
                    "resolv", "err");
  for (const auto& row : rows) {
    std::cout << strf("{:>16}{:>8}{:>8}{:>12}{:>10}{:>12}{:>12}{:>12}{:>8}{:>7}\n",
                      row.step, row.kind, row.copies_moved,
                      format_bytes(row.bytes_streamed), format_duration(row.barrier_time),
                      format_duration(row.p50), format_duration(row.p99),
                      format_duration(row.max), row.reresolutions, row.client_errors);
  }
  std::cout << strf(
      "\nfinal: membership epoch {}, {} active members, {} checkpoints total, "
      "restore bit-exact: {}\n",
      rig.elastic.membership().epoch, rig.elastic.membership().active_positions().size(),
      client.stats().checkpoints, bit_exact ? "yes" : "NO");

  // --- JSON ---
  std::ofstream json{"BENCH_elastic.json", std::ios::trunc};
  json << "{\n  \"bench\": \"elastic_resize\",\n"
       << strf("  \"smoke\": {},\n  \"nodes\": {},\n  \"shard_count\": {},\n",
               smoke ? "true" : "false", kNodes, ccfg.shard_count)
       << strf("  \"final_epoch\": {},\n  \"bit_exact_restore\": {},\n  \"steps\": [\n",
               rig.elastic.membership().epoch, bit_exact ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    json << strf(
        "    {{\"step\": \"{}\", \"kind\": \"{}\", \"copies_moved\": {}, "
        "\"bytes_streamed\": {}, \"barrier_ns\": {}, \"checkpoints\": {}, "
        "\"p50_ns\": {}, \"p99_during_ns\": {}, \"max_ns\": {}, "
        "\"reresolutions\": {}, \"client_errors\": {}}}{}\n",
        r.step, r.kind, r.copies_moved, r.bytes_streamed, r.barrier_time.count(),
        r.checkpoints, r.p50.count(), r.p99.count(), r.max.count(), r.reresolutions,
        r.client_errors, i + 1 < rows.size() ? "," : "");
  }
  json << "  ]\n}\n";
  json.close();
  std::cout << "wrote BENCH_elastic.json\n";

  // --- Acceptance gates ---
  int rc = 0;
  std::uint64_t errors = 0;
  for (const auto& row : rows) {
    errors += row.client_errors;
    if (row.kind != "steady" && row.copies_moved == 0) {
      std::cerr << strf("FAIL: step {} moved no shard copies\n", row.step);
      rc = 1;
    }
  }
  if (errors != 0) {
    std::cerr << strf("FAIL: {} client ops failed during the resize (bar: 0)\n", errors);
    rc = 1;
  }
  if (!bit_exact) {
    std::cerr << "FAIL: restore from the resized ring is not bit-exact\n";
    rc = 1;
  }
  if (rc == 0) std::cout << "elastic resize acceptance checks passed\n";
  return rc;
}
