// Fig. 10 — Bandwidth and latency of the Portus datapath between device
// pairs, as a function of message size.
//
// Reproduces the four read datapaths (a/b) and four write datapaths (c/d):
//   {Server DRAM, Server PMEM} x {Client DRAM, Client GPU}
// Key shapes from the paper:
//   * reads of client GPU memory cap at ~5.8 GB/s (BAR, no prefetch),
//     "30% less than DRAM";
//   * writes are unaffected by BAR;
//   * DRAM vs PMEM as the server-side target makes little difference
//     (the network, not the memory, is the bottleneck);
//   * peak bandwidth is reached once messages exceed ~512 KB.
#include "bench_common.h"

using namespace portus;

namespace {

enum class ClientMem { kDram, kGpu };
enum class ServerMem { kDram, kPmem };

struct PathResult {
  double bandwidth_gbps = 0;
  Duration latency{0};
};

// One one-sided op of `size` bytes between the chosen endpoints, initiated
// by the server (checkpoint direction = READ, restore direction = WRITE).
PathResult measure(ClientMem cmem, ServerMem smem, bool is_read, Bytes size) {
  bench::World world;
  auto& engine = world.engine;
  auto& client_node = world.volta();
  auto& server_node = world.server();

  auto& server_pd = server_node.nic().alloc_pd("bench-pd-s");
  auto& client_pd = client_node.nic().alloc_pd("bench-pd-c");
  rdma::CompletionQueue scq{engine}, ccq{engine};
  auto& sqp = world.cluster->fabric().create_qp(server_node.nic(), server_pd, scq);
  auto& cqp = world.cluster->fabric().create_qp(client_node.nic(), client_pd, ccq);
  world.cluster->fabric().connect(sqp, cqp);

  // Phantom MRs carry the device caps/channels without moving bytes.
  rdma::RegionDesc client_desc{.addr = 0x7000'0000'0000ull, .length = 2_GiB, .phantom = true};
  if (cmem == ClientMem::kGpu) {
    auto& gpu = client_node.gpu(0);
    client_desc.read_cap = gpu.spec().bar_read_limit;
    client_desc.write_cap = gpu.spec().peer_write_limit;
    client_desc.device_channel_read = &gpu.pcie();
    client_desc.device_channel_write = &gpu.pcie();
  } else {
    client_desc.device_channel_read = &client_node.dram_channel();
    client_desc.device_channel_write = &client_node.dram_channel();
  }
  rdma::RegionDesc server_desc{.addr = 0x7100'0000'0000ull, .length = 2_GiB, .phantom = true};
  if (smem == ServerMem::kPmem) {
    const auto& perf = server_node.devdax().device().perf();
    server_desc.read_cap = perf.read_bw;
    server_desc.write_cap = perf.write_bw;
    server_desc.device_channel_read = &server_node.devdax_read_channel();
    server_desc.device_channel_write = &server_node.devdax_write_channel();
  } else {
    server_desc.device_channel_read = &server_node.dram_channel();
    server_desc.device_channel_write = &server_node.dram_channel();
  }
  const auto& client_mr = client_pd.register_region(client_desc);
  const auto& server_mr = server_pd.register_region(server_desc);

  Duration elapsed{0};
  world.run([](sim::Engine& eng, rdma::QueuePair& qp, const rdma::MemoryRegion& local,
               const rdma::MemoryRegion& remote, bool read, Bytes n,
               Duration& out) -> sim::Process {
    const Time t0 = eng.now();
    const auto wc = read ? co_await qp.read_sync(local.lkey, local.addr, n, remote.rkey,
                                                 remote.addr)
                         : co_await qp.write_sync(local.lkey, local.addr, n, remote.rkey,
                                                  remote.addr);
    PORTUS_CHECK(wc.status == rdma::WcStatus::kSuccess, "transfer failed");
    out = eng.now() - t0;
  }(engine, sqp, server_mr, client_mr, is_read, size, elapsed));

  return PathResult{
      .bandwidth_gbps = static_cast<double>(size) / to_seconds(elapsed) / 1e9,
      .latency = elapsed,
  };
}

void sweep(bool is_read) {
  std::cout << (is_read ? "(a/b) READ: server pulls from client (checkpoint direction)\n"
                        : "(c/d) WRITE: server pushes to client (restore direction)\n");
  std::cout << strf("{:<10}", "size");
  const char* paths[] = {"DRAM<-DRAM", "DRAM<-GPU", "PMEM<-DRAM", "PMEM<-GPU"};
  const char* wpaths[] = {"DRAM->DRAM", "DRAM->GPU", "PMEM->DRAM", "PMEM->GPU"};
  for (int p = 0; p < 4; ++p) std::cout << strf("{:>13}", is_read ? paths[p] : wpaths[p]);
  std::cout << "   (GB/s)\n";

  const Bytes sizes[] = {4_KiB, 64_KiB, 256_KiB, 512_KiB, 1_MiB, 16_MiB, 128_MiB, 1_GiB};
  for (const auto size : sizes) {
    std::cout << strf("{:<10}", format_bytes(size));
    for (int p = 0; p < 4; ++p) {
      const auto cmem = (p % 2 == 0) ? ClientMem::kDram : ClientMem::kGpu;
      const auto smem = (p < 2) ? ServerMem::kDram : ServerMem::kPmem;
      const auto r = measure(cmem, smem, is_read, size);
      std::cout << strf("{:>13.2f}", r.bandwidth_gbps);
    }
    std::cout << "\n";
  }

  // Latency row (4 KiB message).
  std::cout << strf("{:<10}", "lat(4KiB)");
  for (int p = 0; p < 4; ++p) {
    const auto cmem = (p % 2 == 0) ? ClientMem::kDram : ClientMem::kGpu;
    const auto smem = (p < 2) ? ServerMem::kDram : ServerMem::kPmem;
    const auto r = measure(cmem, smem, is_read, 4_KiB);
    std::cout << strf("{:>13}", format_duration(r.latency));
  }
  std::cout << "\n\n";
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 10: Portus datapath bandwidth & latency vs message size",
      "GPU read caps at 5.8 GB/s (30% below DRAM ~8.3); writes unaffected by BAR; "
      "DRAM vs PMEM target makes little difference; peak reached at >=512 KB");
  sweep(/*is_read=*/true);
  sweep(/*is_read=*/false);

  // Spot checks the paper calls out.
  const auto gpu_read = measure(ClientMem::kGpu, ServerMem::kPmem, true, 1_GiB);
  const auto dram_read = measure(ClientMem::kDram, ServerMem::kPmem, true, 1_GiB);
  const auto gpu_write = measure(ClientMem::kGpu, ServerMem::kPmem, false, 1_GiB);
  std::cout << strf("GPU-read peak  : {:.2f} GB/s (paper: 5.8)\n", gpu_read.bandwidth_gbps);
  std::cout << strf("DRAM-read peak : {:.2f} GB/s (paper: ~8.3, GPU is '30% less': {:.0f}%)\n",
                    dram_read.bandwidth_gbps,
                    100.0 * (1.0 - gpu_read.bandwidth_gbps / dram_read.bandwidth_gbps));
  std::cout << strf("GPU-write peak : {:.2f} GB/s (paper: BAR does not affect writes)\n",
                    gpu_write.bandwidth_gbps);
  return 0;
}
