// Recovery latency: daemon restart plus a full fsck sweep vs image
// population.
//
// The paper's availability argument is that a crashed Portus daemon is back
// in service as soon as it re-reads the three-level index — no payload copy,
// no log replay. This bench registers n model instances (each its own
// ModelTable entry, MIndex record, and double-mapped slot pair), commits one
// epoch each, then measures on the host clock:
//
//   recover_ms  — PortusDaemon::recover(): ModelTable scan + allocator
//                 rebuild + session teardown. Metadata-proportional.
//   fsck_ms     — portusctl fsck verify pass: walks every MIndex record and
//                 re-CRCs every committed tensor payload. Payload-
//                 proportional — the price of a full integrity audit, paid
//                 only on demand, never on the restart path.
//
// Emits BENCH_recovery.json. Fails (exit 1) if a recover() ever costs more
// than a generous 250 ms bound (it must stay metadata-cheap even at 48
// models) or if fsck misses that the store is clean.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <numeric>

#include "bench_common.h"
#include "core/daemon/fsck.h"

using namespace portus;

namespace {

struct Row {
  int models = 0;
  Bytes image_bytes = 0;   // allocator bump: everything laid out on PMEM
  double recover_ms = 0;
  double fsck_ms = 0;
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

Row measure(int n_models) {
  Row row{.models = n_models};
  sim::Engine eng;
  auto cluster = net::Cluster::paper_testbed(eng);
  core::QpRendezvous rendezvous;
  auto daemon = std::make_unique<core::PortusDaemon>(*cluster, cluster->node("server"),
                                                     rendezvous);
  daemon->start();

  auto& volta = cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.01;
  auto model = dnn::ModelZoo::create(volta.gpu(0), "alexnet", opt);
  core::PortusClient client{*cluster, volta, volta.gpu(0), rendezvous};

  // Each instance registers the full tensor set under its own name — n
  // independent ModelTable entries backed by one set of GPU buffers.
  auto proc = eng.spawn([](core::PortusClient& c, dnn::Model& m, int n) -> sim::Process {
    co_await c.connect();
    for (int i = 0; i < n; ++i) {
      core::PortusClient::ShardBinding binding;
      binding.reg_name = strf("alexnet#{}", i);
      binding.tensor_indices.resize(m.tensors().size());
      std::iota(binding.tensor_indices.begin(), binding.tensor_indices.end(), 0u);
      co_await c.register_shard(m, std::move(binding));
      const auto epoch = co_await c.checkpoint_named(strf("alexnet#{}", i), 1);
      if (epoch != 1) throw Error("unexpected epoch in recovery bench");
    }
  }(client, model, n_models));
  eng.run();
  proc.check();
  row.image_bytes = daemon->allocator().bump();

  const auto t0 = std::chrono::steady_clock::now();
  daemon->recover();
  row.recover_ms = ms_since(t0);

  const auto t1 = std::chrono::steady_clock::now();
  const auto report = core::Fsck{*daemon}.run(/*repair=*/false);
  row.fsck_ms = ms_since(t1);
  if (!report.clean() || report.models_scanned != n_models) {
    throw Error(strf("fsck after clean shutdown: {} models scanned, clean={}",
                     report.models_scanned, report.clean()));
  }

  eng.shutdown();
  return row;
}

}  // namespace

int main() {
  bench::print_header("recovery: restart + fsck latency vs PMEM image population",
                      "restart re-reads the index only (Sec. 4.4); integrity "
                      "audit (fsck) re-CRCs payloads and is off the restart path");

  std::vector<Row> rows;
  for (const int n : {4, 16, 48}) rows.push_back(measure(n));

  std::cout << strf("{:>8}{:>12}{:>14}{:>12}\n", "models", "image", "recover",
                    "fsck");
  for (const auto& row : rows) {
    std::cout << strf("{:>8}{:>12}{:>13.2f}m{:>11.2f}m\n", row.models,
                      format_bytes(row.image_bytes), row.recover_ms, row.fsck_ms);
  }

  std::ofstream json{"BENCH_recovery.json", std::ios::trunc};
  json << "{\n  \"bench\": \"recovery_time\",\n  \"model\": \"alexnet\",\n"
       << "  \"scale\": 0.01,\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    json << strf(
        "    {{\"models\": {}, \"image_bytes\": {}, \"recover_ms\": {:.3f}, "
        "\"fsck_ms\": {:.3f}}}{}\n",
        row.models, row.image_bytes, row.recover_ms, row.fsck_ms,
        i + 1 < rows.size() ? "," : "");
  }
  json << "  ]\n}\n";
  json.close();
  std::cout << "\nwrote BENCH_recovery.json\n";

  int rc = 0;
  for (const auto& row : rows) {
    if (row.recover_ms > 250.0) {
      std::cerr << "FAIL: recover() took " << row.recover_ms << " ms at " << row.models
                << " models — restart must stay metadata-cheap\n";
      rc = 1;
    }
  }
  if (rc == 0) std::cout << "recovery acceptance checks passed\n";
  return rc;
}
