// Ablation — pipelined datapath sweep (fig. 11 companion).
//
// Sweeps the daemon's pipeline_window over {1, 2, 4, 8, 16} for a
// ResNet-50-class job, with tensor chunking and two-QP striping enabled on
// every pipelined row. window=1 runs the stock serial configuration and is
// the baseline. Emits BENCH_pipeline.json and fails (exit 1) if the
// pipelined datapath regresses the serial path or a deep window (>= 8)
// does not reach a 2x checkpoint speedup.
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "bench_common.h"

using namespace portus;

namespace {

struct Row {
  int window = 1;
  Bytes chunk = 0;
  int stripes = 1;
  Duration ckpt{0};
  Duration restore{0};
};

Row measure(int window, Bytes chunk, int stripes) {
  Row row{.window = window, .chunk = chunk, .stripes = stripes};
  bench::World world{core::PortusDaemon::Config{
      .pipeline_window = window, .chunk_bytes = chunk, .stripes = stripes}};
  auto& gpu = world.volta().gpu(0);
  dnn::ModelZoo::Options opt;
  opt.scale = 0.02;  // ResNet-50-class tensor count at container-friendly size
  auto model = dnn::ModelZoo::create(gpu, "resnet50", opt);
  core::PortusClient client{*world.cluster, world.volta(), gpu, world.rendezvous,
                            "portusd", stripes};
  world.run([](sim::Engine& eng, core::PortusClient& c, dnn::Model& m,
               Row& out) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    Time t0 = eng.now();
    co_await c.checkpoint(m, 1);
    out.ckpt = eng.now() - t0;
    m.mutate_weights(7);
    t0 = eng.now();
    co_await c.restore(m);
    out.restore = eng.now() - t0;
  }(world.engine, client, model, row));
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke: baseline + one deep window only, for the perf-smoke CI label.
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::print_header("Pipeline sweep: checkpoint/restore vs pipeline_window",
                      "serial baseline at window=1; chunked+striped rows must not "
                      "regress and window>=8 must reach >=2x on checkpoint");

  constexpr Bytes kChunk = 8_KiB;
  constexpr int kStripes = 2;
  std::vector<Row> rows;
  rows.push_back(measure(1, 0, 1));  // stock serial datapath
  if (smoke) {
    rows.push_back(measure(8, kChunk, kStripes));
  } else {
    for (const int w : {2, 4, 8, 16}) rows.push_back(measure(w, kChunk, kStripes));
  }
  const Row& serial = rows.front();

  std::cout << strf("{:>7}{:>10}{:>9}{:>14}{:>13}{:>10}\n", "window", "chunk",
                    "stripes", "checkpoint", "restore", "speedup");
  for (const auto& row : rows) {
    std::cout << strf("{:>7}{:>10}{:>9}{:>14}{:>13}{:>9.2f}x\n", row.window,
                      row.chunk == 0 ? std::string{"-"} : format_bytes(row.chunk),
                      row.stripes, format_duration(row.ckpt),
                      format_duration(row.restore), bench::ratio(serial.ckpt, row.ckpt));
  }

  std::ofstream json{"BENCH_pipeline.json", std::ios::trunc};
  json << "{\n  \"bench\": \"pipeline_sweep\",\n  \"model\": \"resnet50\",\n"
       << "  \"scale\": 0.02,\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    json << strf(
        "    {{\"window\": {}, \"chunk_bytes\": {}, \"stripes\": {}, "
        "\"checkpoint_ns\": {}, \"restore_ns\": {}, \"ckpt_speedup_vs_serial\": "
        "{:.4f}}}{}\n",
        row.window, row.chunk, row.stripes, row.ckpt.count(), row.restore.count(),
        bench::ratio(serial.ckpt, row.ckpt), i + 1 < rows.size() ? "," : "");
  }
  json << "  ]\n}\n";
  json.close();
  std::cout << "\nwrote BENCH_pipeline.json\n";

  int rc = 0;
  for (const auto& row : rows) {
    if (to_seconds(row.ckpt) > to_seconds(serial.ckpt) * 1.05) {
      std::cerr << "FAIL: window=" << row.window
                << " regresses checkpoint vs the serial baseline\n";
      rc = 1;
    }
    if (to_seconds(row.restore) > to_seconds(serial.restore) * 1.05) {
      std::cerr << "FAIL: window=" << row.window
                << " regresses restore vs the serial baseline\n";
      rc = 1;
    }
    if (row.window >= 8 && bench::ratio(serial.ckpt, row.ckpt) < 2.0) {
      std::cerr << "FAIL: window=" << row.window
                << " checkpoint speedup below the 2x acceptance bar\n";
      rc = 1;
    }
  }
  if (rc == 0) std::cout << "pipeline sweep acceptance checks passed\n";
  return rc;
}
