// Daemon hot-path raw-speed sweep: sharded PMEM allocator + doorbell
// batching vs worker count (ISSUE 6 tentpole grounding).
//
// Part 1 — allocator ops/sec. The DRAM-side allocator calls are
// instantaneous in virtual time, so the sweep charges each op its measured
// CPU + persist cost (clwb/sfence on the AllocTable entry, bookkeeping)
// under the arena's serialization domain: a single-arena allocator funnels
// every worker through one lock/cache line, per-worker shards let arenas
// proceed in parallel and only touch the global bump cursor on a
// reservation refill. W simulated workers churn alloc/free against the
// REAL allocator (so disjointness, reuse and recover() are exercised, not
// just modeled) and the elapsed virtual time yields ops/sec.
//
// Part 2 — checkpoint throughput. W concurrent tenants checkpoint
// small-tensor models through one daemon, single-SGE and unchunked so the
// datapath is op-bound (the doorbell's worst case). The seed configuration
// (single arena, per-extent doorbells) is the baseline; the hot-path
// configuration (per-worker shards, chained doorbell batching) must reach
// >= 1.5x aggregate GB/s at 8+ workers.
//
// Emits BENCH_hotpath.json; exits 1 unless sharded allocator ops/sec at 16
// workers reaches >= 10x the 1-worker rate, checkpoint throughput gains
// >= 1.5x at 8 and 16 workers, and batched bursts ring ~1 doorbell per
// lane per admission window.
//
// --smoke runs worker counts {1, 8} with a lighter churn for the
// perf-smoke CI label; virtual time keeps the gates deterministic, so they
// stay on.
#include <cstring>
#include <deque>
#include <fstream>
#include <vector>

#include "bench_common.h"
#include "sim/sync.h"

using namespace portus;

namespace {

// Measured-cost model for one AllocTable operation: bookkeeping plus one
// persisted 24 B entry (clwb + sfence on Optane, ~1 us end to end), and
// the heavier global bump-cursor + reservation persist on a refill.
constexpr Duration kAllocCpu = std::chrono::nanoseconds{900};
constexpr Duration kFreeCpu = std::chrono::nanoseconds{600};
constexpr Duration kRefillCpu = std::chrono::nanoseconds{1500};

struct AllocRow {
  int workers = 0;
  std::uint32_t shards = 0;
  std::uint64_t ops = 0;
  double ops_per_sec = 0.0;
  std::uint64_t refills = 0;
  std::uint64_t steals = 0;
};

struct AllocRig {
  sim::Engine eng;
  pmem::PmemDevice device{"pmem", 256_MiB, 0x1000};
  core::PmemAllocator::Config config;
  core::PmemAllocator alloc;
  std::vector<std::unique_ptr<sim::SimMutex>> arena_mu;
  sim::SimMutex bump_mu{eng};

  AllocRig(std::uint32_t shards, Bytes refill)
      : config{.table_offset = 4_KiB,
               .table_capacity = 32768,
               .data_offset = 1_MiB,
               .data_end = 256_MiB,
               .shards = shards,
               .refill_bytes = refill},
        alloc{device, config} {
    for (std::uint32_t s = 0; s < shards; ++s) {
      arena_mu.push_back(std::make_unique<sim::SimMutex>(eng));
    }
  }
  ~AllocRig() { eng.shutdown(); }
};

sim::Process churn_worker(AllocRig& rig, int worker, int ops, std::uint64_t* done) {
  const std::uint32_t shard = static_cast<std::uint32_t>(worker) %
                              rig.alloc.shard_count();
  // Three size classes per worker keep the free list hot (reuse is the
  // paper's steady state: slots come and go at the same granularities).
  constexpr Bytes kSizes[3] = {256, 1_KiB, 4_KiB};
  std::deque<Bytes> held;
  for (int i = 0; i < ops; ++i) {
    {
      auto guard = co_await rig.arena_mu[shard]->lock();
      const std::uint64_t refills_before = rig.alloc.shard_stats()[shard].refills;
      held.push_back(rig.alloc.alloc_on(shard, kSizes[(worker + i) % 3]));
      co_await rig.eng.sleep(kAllocCpu);
      if (rig.alloc.shard_stats()[shard].refills != refills_before) {
        auto bump_guard = co_await rig.bump_mu.lock();
        co_await rig.eng.sleep(kRefillCpu);
      }
      ++*done;
    }
    if (held.size() > 24) {
      auto guard = co_await rig.arena_mu[shard]->lock();
      rig.alloc.free(held.front());
      held.pop_front();
      co_await rig.eng.sleep(kFreeCpu);
      ++*done;
    }
  }
}

AllocRow measure_alloc(int workers, std::uint32_t shards, int ops_per_worker) {
  AllocRig rig{shards, /*refill=*/512_KiB};
  std::uint64_t ops = 0;
  rig.eng.spawn([](AllocRig& r, int w, int per, std::uint64_t& total) -> sim::Process {
    std::vector<sim::Process> procs;
    procs.reserve(static_cast<std::size_t>(w));
    for (int i = 0; i < w; ++i) {
      procs.push_back(r.eng.spawn(churn_worker(r, i, per, &total)));
    }
    for (auto& p : procs) co_await p.join();
  }(rig, workers, ops_per_worker, ops));
  rig.eng.run();

  AllocRow row{.workers = workers, .shards = shards, .ops = ops};
  row.ops_per_sec = static_cast<double>(ops) / to_seconds(rig.eng.now() - Time{});
  for (const auto& sh : rig.alloc.shard_stats()) {
    row.refills += sh.refills;
    row.steals += sh.steals;
  }
  // The churn must leave a recoverable image: remount and compare.
  const Bytes live = rig.alloc.live_bytes();
  rig.alloc.recover();
  PORTUS_CHECK(rig.alloc.live_bytes() == live,
               "allocator churn image lost live extents across recover()");
  return row;
}

// ---------------------------------------------------------------------------
// Part 2: op-bound checkpoint throughput, W concurrent tenants.

struct CkptRow {
  int workers = 0;
  bool hotpath = false;  // shards=W + batched doorbells vs seed config
  Duration elapsed{0};
  Bytes bytes = 0;
  double gbps = 0.0;
  double doorbells_per_window = 0.0;
  double wrs_per_doorbell = 0.0;
};

// Tiny-tensor stack (64 B bias/norm-grade vectors only): every byte rides
// a minimal WR, so per-WR setup (where the doorbell lives) dominates the
// datapath, and aggregate byte demand stays far below the PMEM write
// ceiling even at 16 concurrent tenants — the sweep measures doorbells,
// not DIMM bandwidth.
dnn::Model make_small_stack(gpu::GpuDevice& gpu, const std::string& name, int blocks) {
  dnn::Model m{name, gpu};
  for (int b = 0; b < blocks; ++b) {
    const auto tag = std::to_string(b);
    m.add_tensor(dnn::TensorMeta{.name = "blk" + tag + ".g", .shape = {16}}, false);
    m.add_tensor(dnn::TensorMeta{.name = "blk" + tag + ".b", .shape = {16}}, false);
    m.add_tensor(dnn::TensorMeta{.name = "blk" + tag + ".m", .shape = {16}}, false);
    m.add_tensor(dnn::TensorMeta{.name = "blk" + tag + ".v", .shape = {16}}, false);
  }
  m.randomize_weights(0x40777 + blocks);
  return m;
}

CkptRow measure_ckpt(int workers, bool hotpath, int blocks, int iterations) {
  CkptRow row{.workers = workers, .hotpath = hotpath};
  bench::World world{core::PortusDaemon::Config{
      .workers = std::max(8, workers),
      .shards = hotpath ? static_cast<std::uint32_t>(workers) : 1,
      .alloc_refill_bytes = hotpath ? 256_KiB : 0,
      // Window 4: deep enough that chained WQEs hide the doorbell, shallow
      // enough that 16 tenants' bursts do not pile >100 concurrent writers
      // onto the devdax channel (whose Optane degradation model would turn
      // the op-bound sweep byte-bound).
      .pipeline_window = 4,
      .chunk_bytes = 0,
      .stripes = 1,
      .coalesce_threshold = 0,  // single-SGE: keep the sweep op-bound
      .max_sges = 1,
      .batch_doorbells = hotpath}};

  struct Tenant {
    std::unique_ptr<dnn::Model> model;
    std::unique_ptr<core::PortusClient> client;
  };
  std::vector<Tenant> tenants;
  for (int w = 0; w < workers; ++w) {
    // 12 GPUs across the two client nodes (4x V100 + 8x A40); extra
    // tenants share a GPU, which only sharpens the op-bound contention.
    const int g = w % 12;
    net::Node& node = g < 4 ? world.volta() : world.ampere();
    auto& gpu = node.gpu(g < 4 ? g : g - 4);
    Tenant t;
    t.model = std::make_unique<dnn::Model>(
        make_small_stack(gpu, "tenant" + std::to_string(w), blocks));
    t.client = std::make_unique<core::PortusClient>(*world.cluster, node, gpu,
                                                    world.rendezvous, "portusd", 1);
    tenants.push_back(std::move(t));
  }

  world.run([](sim::Engine& eng, std::vector<Tenant>& ts, int iters,
               CkptRow& out) -> sim::Process {
    for (auto& t : ts) {
      co_await t.client->connect();
      co_await t.client->register_model(*t.model);
    }
    const Time t0 = eng.now();
    std::vector<sim::Process> procs;
    procs.reserve(ts.size());
    for (auto& t : ts) {
      procs.push_back(eng.spawn([](Tenant& tn, int n) -> sim::Process {
        for (int it = 1; it <= n; ++it) {
          co_await tn.client->checkpoint(*tn.model, static_cast<std::uint64_t>(it));
        }
      }(t, iters)));
    }
    for (auto& p : procs) co_await p.join();
    out.elapsed = eng.now() - t0;
  }(world.engine, tenants, iterations, row));

  for (const auto& t : tenants) {
    row.bytes += t.model->total_bytes() * static_cast<Bytes>(iterations);
  }
  row.gbps = static_cast<double>(row.bytes) / to_seconds(row.elapsed) / 1e9;
  row.doorbells_per_window = world.daemon->stats().doorbells_per_window();
  row.wrs_per_doorbell = world.daemon->stats().wrs_per_doorbell();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::vector<int> worker_counts =
      smoke ? std::vector<int>{1, 8} : std::vector<int>{1, 2, 4, 8, 16};
  const int alloc_ops = smoke ? 400 : 1500;
  const int ckpt_blocks = smoke ? 192 : 256;
  const int ckpt_iters = smoke ? 2 : 3;

  bench::print_header(
      "Daemon hot-path sweep: sharded allocator + doorbell batching vs workers",
      "single arena / per-extent doorbells is the seed baseline; per-worker "
      "arenas must scale alloc ops/sec >= 10x at 16 workers and batched "
      "doorbells must lift op-bound checkpoint GB/s >= 1.5x at 8+ workers");

  // --- Part 1: allocator ---
  std::vector<AllocRow> alloc_rows;
  std::cout << strf("{:>8}{:>8}{:>10}{:>14}{:>9}{:>8}\n", "workers", "shards", "ops",
                    "ops/sec", "refills", "steals");
  for (const int w : worker_counts) {
    for (const std::uint32_t shards :
         {std::uint32_t{1}, static_cast<std::uint32_t>(w)}) {
      if (shards == 1 && w == 1 && !alloc_rows.empty()) continue;  // dup row
      const auto row = measure_alloc(w, shards, alloc_ops);
      std::cout << strf("{:>8}{:>8}{:>10}{:>14.0f}{:>9}{:>8}\n", row.workers,
                        row.shards, row.ops, row.ops_per_sec, row.refills, row.steals);
      alloc_rows.push_back(row);
      if (w == 1) break;  // shards=1 == shards=w at one worker
    }
  }

  // --- Part 2: checkpoint ---
  std::vector<CkptRow> ckpt_rows;
  std::cout << strf("\n{:>8}{:>10}{:>12}{:>10}{:>9}{:>9}{:>9}\n", "workers", "config",
                    "elapsed", "GB/s", "db/win", "wr/db", "speedup");
  for (const int w : worker_counts) {
    const auto base = measure_ckpt(w, /*hotpath=*/false, ckpt_blocks, ckpt_iters);
    const auto hot = measure_ckpt(w, /*hotpath=*/true, ckpt_blocks, ckpt_iters);
    for (const auto& row : {base, hot}) {
      std::cout << strf("{:>8}{:>10}{:>12}{:>10.3f}{:>9.2f}{:>9.2f}{:>8.2f}x\n",
                        row.workers, row.hotpath ? "hotpath" : "seed",
                        format_duration(row.elapsed), row.gbps,
                        row.doorbells_per_window, row.wrs_per_doorbell,
                        row.gbps / base.gbps);
    }
    ckpt_rows.push_back(base);
    ckpt_rows.push_back(hot);
  }

  // --- JSON ---
  std::ofstream json{"BENCH_hotpath.json", std::ios::trunc};
  json << "{\n  \"bench\": \"hotpath_sweep\",\n"
       << strf("  \"smoke\": {},\n  \"alloc_rows\": [\n", smoke ? "true" : "false");
  for (std::size_t i = 0; i < alloc_rows.size(); ++i) {
    const auto& r = alloc_rows[i];
    json << strf(
        "    {{\"workers\": {}, \"shards\": {}, \"ops\": {}, \"ops_per_sec\": "
        "{:.0f}, \"refills\": {}, \"steals\": {}}}{}\n",
        r.workers, r.shards, r.ops, r.ops_per_sec, r.refills, r.steals,
        i + 1 < alloc_rows.size() ? "," : "");
  }
  json << "  ],\n  \"ckpt_rows\": [\n";
  for (std::size_t i = 0; i < ckpt_rows.size(); ++i) {
    const auto& r = ckpt_rows[i];
    json << strf(
        "    {{\"workers\": {}, \"config\": \"{}\", \"elapsed_ns\": {}, "
        "\"gbps\": {:.4f}, \"doorbells_per_window\": {:.3f}, "
        "\"wrs_per_doorbell\": {:.3f}}}{}\n",
        r.workers, r.hotpath ? "hotpath" : "seed", r.elapsed.count(), r.gbps,
        r.doorbells_per_window, r.wrs_per_doorbell,
        i + 1 < ckpt_rows.size() ? "," : "");
  }
  json << "  ]\n}\n";
  json.close();
  std::cout << "\nwrote BENCH_hotpath.json\n";

  // --- Acceptance gates ---
  int rc = 0;
  const auto find_alloc = [&](int w, bool sharded) -> const AllocRow* {
    for (const auto& r : alloc_rows) {
      if (r.workers == w && ((r.shards > 1) == sharded || w == 1)) return &r;
    }
    return nullptr;
  };
  const int top = worker_counts.back();
  const AllocRow* one = find_alloc(1, false);
  const AllocRow* sharded_top = find_alloc(top, true);
  const double scaling = sharded_top->ops_per_sec / one->ops_per_sec;
  const double bar = smoke ? 6.0 : 10.0;  // 8 workers in smoke, 16 in full
  if (scaling < bar) {
    std::cerr << strf("FAIL: sharded allocator scales only {:.2f}x at {} workers "
                      "(bar: {:.0f}x)\n", scaling, top, bar);
    rc = 1;
  }
  for (std::size_t i = 0; i + 1 < ckpt_rows.size(); i += 2) {
    const auto& base = ckpt_rows[i];
    const auto& hot = ckpt_rows[i + 1];
    if (base.workers < 8) continue;
    const double speedup = hot.gbps / base.gbps;
    if (speedup < 1.5) {
      std::cerr << strf("FAIL: hotpath config reaches only {:.2f}x GB/s at {} "
                        "workers (bar: 1.5x)\n", speedup, base.workers);
      rc = 1;
    }
    // One chained post per lane per admission burst (stripes=1 here).
    if (hot.doorbells_per_window > 1.5) {
      std::cerr << strf("FAIL: {} workers ring {:.2f} doorbells per window "
                        "(bar: ~1 per lane)\n", base.workers,
                        hot.doorbells_per_window);
      rc = 1;
    }
  }
  if (rc == 0) std::cout << "hotpath sweep acceptance checks passed\n";
  return rc;
}
