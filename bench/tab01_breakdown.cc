// Table I — breakdown of the *traditional* checkpointing path (BERT via
// torch.save to BeeGFS-PMEM): GPU->main-memory copy, serialization, RDMA
// transmission, and the server-side DAX write.
//
// Paper: GPU->MM 15.5% | serialization 41.7% | RDMA 30.0% | DAX 12.8%.
#include "bench_common.h"

using namespace portus;

int main() {
  bench::print_header("Table I: traditional checkpointing overhead breakdown (BERT)",
                      "GPU->MM 15.5% | serialize 41.7% | RDMA 30.0% | DAX write 12.8%");

  bench::World world;
  auto& gpu = world.volta().gpu(0);
  dnn::ModelZoo::Options opt;
  opt.force_phantom = true;
  auto model = dnn::ModelZoo::create(gpu, "bert", opt);
  storage::BeeGfsMount mount{*world.cluster, world.volta(), *world.beegfs_server, "mnt0"};
  baselines::TorchSaveCheckpointer ckpt{world.volta(), gpu, mount};

  baselines::TorchSaveCheckpointer::CheckpointTimings t;
  world.run([](baselines::TorchSaveCheckpointer& c, dnn::Model& m,
               baselines::TorchSaveCheckpointer::CheckpointTimings& out) -> sim::Process {
    out = co_await c.checkpoint(m, "/ckpt/bert.ptck");
  }(ckpt, model, t));

  // The fs_write stage splits into RDMA transport (client->daemon RPCs) and
  // the daemon's DAX writes, which the mount instruments.
  const auto dax = mount.dax_write_time();
  const auto rdma = t.fs_write - dax;
  const double total = to_seconds(t.total);

  struct Line {
    const char* op;
    Duration measured;
    double paper_pct;
  };
  const Line lines[] = {
      {"GPU to Main Memory", t.dtoh, 15.5},
      {"Serialization", t.serialize, 41.7},
      {"Transmission (RDMA)", rdma, 30.0},
      {"Server DAX write", dax, 12.8},
  };
  std::cout << strf("{:<22}{:>12}{:>12}{:>12}\n", "operation", "time", "measured%",
                    "paper%");
  for (const auto& line : lines) {
    std::cout << strf("{:<22}{:>12}{:>11.1f}%{:>11.1f}%\n", line.op,
                      format_duration(line.measured), 100.0 * to_seconds(line.measured) / total,
                      line.paper_pct);
  }
  std::cout << strf("{:<22}{:>12}\n", "total", format_duration(t.total));
  std::cout << "\n(The paper's ~1.9-2.0 s BERT checkpoint to BeeGFS-PMEM is the\n"
               " calibration anchor; see DESIGN.md SS7.)\n";
  return 0;
}
