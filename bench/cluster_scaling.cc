// Portus-Cluster scaling: checkpoint throughput vs ring size.
//
// Shards one ResNet-50-class model over 1..4 Portus daemons and measures
// steady-state checkpoint time for R=1 (pure striping) and R=2 (paper-style
// replication, where each shard is written twice). With one daemon the
// bottleneck is that node's PMEM write bandwidth (~5 GB/s); adding daemons
// adds PMEM lanes until the client NIC (~12 GB/s wire) saturates, so the
// R=1 series is expected to run ~5 / 10 / 12 / 12 GB/s over N=1..4.
// Emits BENCH_cluster.json and fails (exit 1) if striping does not scale
// (N=2 below 1.6x of N=1) or if any wider ring regresses a narrower one.
#include <cstdlib>
#include <fstream>

#include "bench_common.h"
#include "core/cluster/cluster_client.h"

using namespace portus;

namespace {

struct Row {
  int daemons = 1;
  int replicas = 1;
  Bytes model_bytes = 0;
  Duration ckpt{0};
  double gbps() const { return static_cast<double>(model_bytes) / 1e9 / to_seconds(ckpt); }
};

Row measure(int daemons, int replicas) {
  Row row{.daemons = daemons, .replicas = replicas};
  sim::Engine engine;
  auto cluster = net::Cluster::sharded_testbed(engine, daemons);
  core::QpRendezvous rendezvous;
  std::vector<std::unique_ptr<core::PortusDaemon>> ring;
  core::cluster::ClusterClient::Config ccfg;
  ccfg.replicas = replicas;
  for (int i = 0; i < daemons; ++i) {
    core::PortusDaemon::Config cfg;
    cfg.endpoint = strf("portusd{}", i);
    ring.push_back(std::make_unique<core::PortusDaemon>(
        *cluster, cluster->node(strf("pmem{}", i)), rendezvous, cfg));
    ring.back()->start();
    ccfg.endpoints.push_back(cfg.endpoint);
  }

  auto& volta = cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.1;
  auto model = dnn::ModelZoo::create(volta.gpu(0), "resnet50", opt);
  row.model_bytes = model.total_bytes();
  core::cluster::ClusterClient client{*cluster, volta, volta.gpu(0), rendezvous, ccfg};

  auto proc = engine.spawn([](sim::Engine& eng, core::cluster::ClusterClient& c,
                              dnn::Model& m, Row& out) -> sim::Process {
    co_await c.register_model(m);
    co_await c.checkpoint(1);  // warm-up: first epoch pays slot setup
    m.mutate_weights(2);
    const Time t0 = eng.now();
    co_await c.checkpoint(2);
    out.ckpt = eng.now() - t0;
  }(engine, client, model, row));
  engine.run();
  proc.check();
  engine.shutdown();
  return row;
}

}  // namespace

int main() {
  bench::print_header("Portus-Cluster: checkpoint throughput vs daemons",
                      "striping adds one PMEM lane (~5 GB/s) per daemon until the "
                      "client NIC (~12 GB/s) saturates");

  std::vector<Row> striped, replicated;
  for (const int n : {1, 2, 3, 4}) {
    striped.push_back(measure(n, 1));
    if (n >= 2) replicated.push_back(measure(n, 2));
  }

  std::cout << strf("{:>8}{:>10}{:>12}{:>14}{:>12}\n", "daemons", "replicas", "model",
                    "checkpoint", "GB/s");
  const auto print_row = [](const Row& row) {
    std::cout << strf("{:>8}{:>10}{:>12}{:>14}{:>11.2f}\n", row.daemons, row.replicas,
                      format_bytes(row.model_bytes), format_duration(row.ckpt),
                      row.gbps());
  };
  for (const auto& row : striped) print_row(row);
  for (const auto& row : replicated) print_row(row);

  std::ofstream json{"BENCH_cluster.json", std::ios::trunc};
  json << "{\n  \"bench\": \"cluster_scaling\",\n  \"model\": \"resnet50\",\n"
       << "  \"scale\": 0.1,\n  \"rows\": [\n";
  const auto all = [&] {
    std::vector<Row> v = striped;
    v.insert(v.end(), replicated.begin(), replicated.end());
    return v;
  }();
  for (std::size_t i = 0; i < all.size(); ++i) {
    const auto& row = all[i];
    json << strf(
        "    {{\"daemons\": {}, \"replicas\": {}, \"model_bytes\": {}, "
        "\"checkpoint_ns\": {}, \"throughput_gbps\": {:.4f}}}{}\n",
        row.daemons, row.replicas, row.model_bytes, row.ckpt.count(), row.gbps(),
        i + 1 < all.size() ? "," : "");
  }
  json << "  ]\n}\n";
  json.close();
  std::cout << "\nwrote BENCH_cluster.json\n";

  int rc = 0;
  if (striped[1].gbps() < striped[0].gbps() * 1.6) {
    std::cerr << "FAIL: 2-daemon striping below 1.6x single-daemon throughput\n";
    rc = 1;
  }
  for (std::size_t i = 1; i < striped.size(); ++i) {
    if (striped[i].gbps() < striped[i - 1].gbps() * 0.95) {
      std::cerr << "FAIL: " << striped[i].daemons
                << "-daemon ring regresses the narrower ring\n";
      rc = 1;
    }
  }
  for (const auto& row : replicated) {
    if (row.ckpt <= striped[row.daemons - 1].ckpt) {
      std::cerr << "FAIL: R=2 on " << row.daemons
                << " daemons should cost more than R=1 (writes every shard twice)\n";
      rc = 1;
    }
  }
  if (rc == 0) std::cout << "cluster scaling acceptance checks passed\n";
  return rc;
}
