// Fig. 14 — Time to dump one checkpoint of a Megatron GPT model (16 A40/V100
// GPUs, TP=8 x PP=2, all ranks concurrent) via Portus vs torch.save() to the
// shared BeeGFS storage, as the model scales from 1.5B to 22.4B parameters.
//
// Paper: at 22.4B (89.6 GB) torch.save takes >120 s while Portus takes ~15 s
// (8.18x average speedup). The torch.save collapse comes from per-rank
// serialization plus the fsdax write-concurrency degradation under 16
// concurrent writers.
#include "bench_common.h"

using namespace portus;

int main() {
  bench::print_header("Fig. 14: GPT checkpoint dump time, Portus vs torch.save+BeeGFS",
                      ">120 s vs ~15 s at 22.4B (89.6 GB); avg 8.18x speedup");

  const char* scales[] = {"gpt-1.5b", "gpt-4b", "gpt-8.3b", "gpt-10b", "gpt-22.4b"};
  std::cout << strf("{:<12}{:>10}{:>12}{:>14}{:>10}\n", "model", "size", "Portus",
                    "torch.save", "speedup");

  double sum_speedup = 0;
  int rows = 0;
  for (const auto* name : scales) {
    const auto& spec = dnn::ModelZoo::spec(name);

    Duration portus_time{0};
    {
      bench::World world{/*daemon_workers=*/16};
      auto ranks = bench::make_gpt_ranks(world, spec, /*portus=*/true, /*beegfs=*/false);
      world.run([](bench::World& w, std::vector<bench::GptRank>& rs,
                   Duration& out) -> sim::Process {
        co_await w.engine.spawn(bench::register_all(rs)).join();
        out = co_await bench::checkpoint_all(w.engine, rs, 1);
      }(world, ranks, portus_time));
    }

    Duration torch_time{0};
    {
      bench::World world;
      auto ranks = bench::make_gpt_ranks(world, spec, /*portus=*/false, /*beegfs=*/true);
      world.run([](bench::World& w, std::vector<bench::GptRank>& rs,
                   Duration& out) -> sim::Process {
        out = co_await bench::torch_save_all(w.engine, rs, 1);
      }(world, ranks, torch_time));
    }

    const double speedup = bench::ratio(torch_time, portus_time);
    sum_speedup += speedup;
    ++rows;
    std::cout << strf("{:<12}{:>10}{:>12}{:>14}{:>9.2f}x\n", name,
                      format_bytes(spec.checkpoint_bytes), format_duration(portus_time),
                      format_duration(torch_time), speedup);
  }
  std::cout << strf("\naverage speedup: {:.2f}x (paper: 8.18x)\n", sum_speedup / rows);
  std::cout << "paper anchors at 22.4B: torch.save >120 s, Portus ~15 s\n";
  return 0;
}
