#include <gtest/gtest.h>

#include "net/cluster.h"
#include "net/tcp.h"
#include "sim/process.h"

namespace portus::net {
namespace {

using namespace std::chrono_literals;

TEST(TcpTest, MessageArrivesAfterLatency) {
  sim::Engine eng;
  auto [a, b] = TcpSocket::make_pair(eng);
  std::vector<std::byte> msg(100, std::byte{7});
  Time arrived{};
  eng.spawn([](std::shared_ptr<TcpSocket> sock, sim::Engine& e, Time& t) -> sim::Process {
    auto m = co_await sock->recv();
    EXPECT_EQ(m.size(), 100u);
    t = e.now();
  }(b, eng, arrived));
  a->send(msg);
  eng.run();
  EXPECT_GE(arrived, Time{TcpSocket::kLatency});
  EXPECT_LT(arrived, Time{TcpSocket::kLatency + 10us});
}

TEST(TcpTest, OrderedDelivery) {
  sim::Engine eng;
  auto [a, b] = TcpSocket::make_pair(eng);
  std::vector<int> got;
  eng.spawn([](std::shared_ptr<TcpSocket> sock, std::vector<int>& out) -> sim::Process {
    try {
      for (;;) {
        auto m = co_await sock->recv();
        out.push_back(static_cast<int>(m[0]));
      }
    } catch (const Disconnected&) {
    }
  }(b, got));
  for (int i = 0; i < 5; ++i) {
    a->send(std::vector<std::byte>{std::byte(i)});
  }
  eng.schedule(10ms, [&] { a->close(); });
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TcpTest, SendOnClosedSocketThrows) {
  sim::Engine eng;
  auto [a, b] = TcpSocket::make_pair(eng);
  a->close();
  eng.run();
  EXPECT_THROW(a->send({}), Disconnected);
}

TEST(TcpTest, PeerCloseWakesReceiver) {
  sim::Engine eng;
  auto [a, b] = TcpSocket::make_pair(eng);
  bool disconnected = false;
  eng.spawn([](std::shared_ptr<TcpSocket> sock, bool& d) -> sim::Process {
    try {
      co_await sock->recv();
    } catch (const Disconnected&) {
      d = true;
    }
  }(b, disconnected));
  eng.schedule(1ms, [&] { a->close(); });
  eng.run();
  EXPECT_TRUE(disconnected);
}

TEST(TcpTest, ListenerAcceptHandshake) {
  sim::Engine eng;
  TcpListener listener{eng};
  bool server_got = false;
  bool client_got = false;
  eng.spawn([](TcpListener& l, bool& ok) -> sim::Process {
    auto sock = co_await l.accept();
    auto msg = co_await sock->recv();
    EXPECT_EQ(msg.size(), 3u);
    sock->send(std::vector<std::byte>(5));
    ok = true;
  }(listener, server_got));
  eng.spawn([](TcpListener& l, bool& ok) -> sim::Process {
    auto sock = co_await l.connect();
    sock->send(std::vector<std::byte>(3));
    auto resp = co_await sock->recv();
    EXPECT_EQ(resp.size(), 5u);
    ok = true;
  }(listener, client_got));
  eng.run();
  EXPECT_TRUE(server_got);
  EXPECT_TRUE(client_got);
  EXPECT_EQ(eng.failed_process_count(), 0);
}

TEST(ClusterTest, PaperTestbedLayout) {
  sim::Engine eng;
  auto cluster = Cluster::paper_testbed(eng);
  ASSERT_EQ(cluster->node_count(), 3u);

  auto& volta = cluster->node("client-volta");
  EXPECT_EQ(volta.gpu_count(), 4u);
  EXPECT_STREQ(volta.gpu(0).spec().model, "NVIDIA V100");
  EXPECT_FALSE(volta.has_devdax());

  auto& ampere = cluster->node("client-ampere");
  EXPECT_EQ(ampere.gpu_count(), 8u);
  EXPECT_STREQ(ampere.gpu(0).spec().model, "NVIDIA A40");

  auto& server = cluster->node("server");
  EXPECT_TRUE(server.has_fsdax());
  EXPECT_TRUE(server.has_devdax());
  EXPECT_EQ(server.devdax().size(), 768_GiB);
  EXPECT_EQ(server.devdax().mode(), pmem::DaxMode::kDevDax);
  EXPECT_EQ(server.fsdax().mode(), pmem::DaxMode::kFsDax);
  EXPECT_EQ(server.gpu_count(), 0u);

  EXPECT_THROW(cluster->node("nope"), NotFound);
}

TEST(ClusterTest, EndpointRegistry) {
  sim::Engine eng;
  auto cluster = Cluster::paper_testbed(eng);
  auto& listener = cluster->listen("portusd");
  EXPECT_EQ(&cluster->endpoint("portusd"), &listener);
  EXPECT_THROW(cluster->listen("portusd"), InvalidArgument);
  EXPECT_THROW(cluster->endpoint("other"), NotFound);
}

TEST(NodeTest, RegionFactories) {
  sim::Engine eng;
  auto cluster = Cluster::paper_testbed(eng);
  auto& server = cluster->node("server");

  const auto dram = server.dram_region(0, 1_MiB);
  EXPECT_EQ(dram.segment, &server.dram());
  EXPECT_EQ(dram.device_channel_read, &server.dram_channel());
  EXPECT_THROW(server.dram_region(server.dram().size(), 1), InvalidArgument);

  auto mapping = server.devdax().map(0, 4_MiB);
  const auto pmem = server.pmem_region(mapping);
  EXPECT_EQ(pmem.addr, server.devdax().device().base_addr());
  EXPECT_EQ(pmem.device_channel_write, &server.devdax_write_channel());
  EXPECT_LT(pmem.write_cap.bytes_per_second(), pmem.read_cap.bytes_per_second())
      << "Optane writes are slower than reads";
}

}  // namespace
}  // namespace portus::net
