#include <gtest/gtest.h>

#include "baselines/checkfreq.h"
#include "baselines/torch_save.h"
#include "dnn/model_zoo.h"
#include "net/cluster.h"
#include "storage/beegfs.h"
#include "storage/ext4_nvme.h"

namespace portus::baselines {
namespace {

using namespace std::chrono_literals;

struct Fixture {
  sim::Engine eng;
  std::unique_ptr<net::Cluster> cluster = net::Cluster::paper_testbed(eng);
  net::Node& client = cluster->node("client-volta");
  gpu::GpuDevice& gpu = client.gpu(0);
  storage::Ext4NvmeFs local_fs{eng, "ext4-nvme"};

  dnn::Model small_model(const std::string& name, double scale = 0.02) {
    dnn::ModelZoo::Options opt;
    opt.scale = scale;
    return dnn::ModelZoo::create(gpu, name, opt);
  }
};

TEST(TorchSaveTest, CheckpointRestoreRoundTripsBytes) {
  Fixture f;
  auto model = f.small_model("resnet50");
  const auto crc = model.weights_crc();

  TorchSaveCheckpointer ckpt{f.client, f.gpu, f.local_fs};
  bool ok = false;
  f.eng.spawn([](Fixture& fx, TorchSaveCheckpointer& c, dnn::Model& m, std::uint32_t crc0,
                 bool& done) -> sim::Process {
    co_await c.checkpoint(m, "/ckpt.ptck");
    m.mutate_weights(42);  // diverge
    EXPECT_NE(m.weights_crc(), crc0);
    co_await c.restore(m, "/ckpt.ptck");
    EXPECT_EQ(m.weights_crc(), crc0) << "restore must be bit-exact";
    done = true;
    (void)fx;
  }(f, ckpt, model, crc, ok));
  f.eng.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(f.eng.failed_process_count(), 0);
}

TEST(TorchSaveTest, BreakdownMatchesTableOneShape) {
  // BERT to BeeGFS-PMEM: DtoH ~15%, serialize ~40%, fs write ~45% of the
  // total (Table I: 15.5 / 41.7 / 30.0+12.8).
  Fixture f;
  storage::BeeGfsServer server{f.cluster->node("server")};
  storage::BeeGfsMount mount{*f.cluster, f.client, server, "mnt0"};
  dnn::ModelZoo::Options opt;
  opt.force_phantom = true;  // timing-only; full 1282 MiB
  auto model = dnn::ModelZoo::create(f.gpu, "bert", opt);

  TorchSaveCheckpointer ckpt{f.client, f.gpu, mount};
  TorchSaveCheckpointer::CheckpointTimings t;
  f.eng.spawn([](TorchSaveCheckpointer& c, dnn::Model& m,
                 TorchSaveCheckpointer::CheckpointTimings& out) -> sim::Process {
    out = co_await c.checkpoint(m, "/bert.ptck");
  }(ckpt, model, t));
  f.eng.run();

  const double total = to_seconds(t.total);
  EXPECT_GT(total, 1.0);
  EXPECT_LT(total, 3.5);
  EXPECT_NEAR(to_seconds(t.dtoh) / total, 0.155, 0.06);
  EXPECT_NEAR(to_seconds(t.serialize) / total, 0.417, 0.08);
  EXPECT_NEAR(to_seconds(t.fs_write) / total, 0.428, 0.10);
}

TEST(TorchSaveTest, GdsRestoreSkipsHtoD) {
  Fixture f;
  dnn::ModelZoo::Options opt;
  opt.force_phantom = true;
  auto model = dnn::ModelZoo::create(f.gpu, "vgg19_bn", opt);
  TorchSaveCheckpointer ckpt{f.client, f.gpu, f.local_fs};
  TorchSaveCheckpointer::RestoreTimings gds{}, buffered{};
  f.eng.spawn([](TorchSaveCheckpointer& c, dnn::Model& m,
                 TorchSaveCheckpointer::RestoreTimings& g,
                 TorchSaveCheckpointer::RestoreTimings& b) -> sim::Process {
    co_await c.checkpoint(m, "/x.ptck");
    g = co_await c.restore(m, "/x.ptck", /*gpu_direct=*/true);
    b = co_await c.restore(m, "/x.ptck", /*gpu_direct=*/false);
  }(ckpt, model, gds, buffered));
  f.eng.run();
  EXPECT_EQ(gds.htod, 0ns);
  EXPECT_GT(buffered.htod, 0ns);
  EXPECT_LT(gds.total, buffered.total);
}

TEST(CheckFreqTest, ProfileIntervalMeasuresRealCosts) {
  // The profiling phase must land on the same interval the analytic tuner
  // gives for the measured checkpoint cost.
  Fixture f;
  dnn::ModelZoo::Options opt;
  opt.force_phantom = true;
  auto model = dnn::ModelZoo::create(f.gpu, "vit_l_32", opt);
  storage::BeeGfsServer server{f.cluster->node("server")};
  storage::BeeGfsMount mount{*f.cluster, f.client, server, "mnt0"};

  std::uint64_t interval = 0;
  f.eng.spawn([](Fixture& fx, storage::BeeGfsMount& m, dnn::Model& mdl,
                 std::uint64_t& out) -> sim::Process {
    out = co_await CheckFreqHook::profile_interval(fx.client, fx.gpu, mdl, m, 80ms);
  }(f, mount, model, interval));
  f.eng.run();
  // VIT-L/32 via BeeGFS costs ~1.7 s; at the 3.5% default budget and 80 ms
  // iterations that is ~600 iterations. The paper quotes 83 for CheckFreq's
  // own (33%-ish) operating point; both come from the same tuner curve.
  EXPECT_GT(interval, 400u);
  EXPECT_LT(interval, 900u);
  EXPECT_FALSE(mount.exists("/checkfreq-profile.tmp")) << "profiling must clean up";
  EXPECT_EQ(f.eng.failed_process_count(), 0);
}

TEST(CheckFreqTest, TunerPicksPaperLikeIntervals) {
  // VIT: 80 ms iterations, ~2.2 s checkpoint -> every ~83 iterations at a
  // 33% overhead... the paper's quoted "1 per 83" comes from CheckFreq's
  // profiling; with our cost model the tuned interval lands in that region.
  const auto interval = CheckFreqHook::tune_interval(80ms, 2200ms, 0.33);
  EXPECT_GE(interval, 60u);
  EXPECT_LE(interval, 110u);
  EXPECT_EQ(CheckFreqHook::tune_interval(1s, 1s, 1.0), 1u);
}

TEST(CheckFreqTest, SnapshotOverlapsComputeButBlocksUpdate) {
  Fixture f;
  auto model = f.small_model("vgg19_bn", 0.05);
  CheckFreqHook hook{f.client, f.gpu, model, f.local_fs, 1, "/cf/ckpt"};

  dnn::TrainingStats stats;
  dnn::TrainingConfig cfg{.iteration_time = 50ms, .update_fraction = 0.1,
                          .busy_fraction = 1.0, .mutate_weights = false};
  f.eng.spawn([](Fixture& fx, CheckFreqHook& h, dnn::TrainingStats& st,
                 dnn::TrainingConfig c, dnn::Model& m) -> sim::Process {
    co_await fx.eng.spawn(dnn::train(fx.eng, fx.gpu, &m, c, 5, h, st)).join();
    co_await h.drain();
  }(f, hook, stats, cfg, model));
  f.eng.run();
  EXPECT_EQ(stats.iterations_done, 5u);
  EXPECT_EQ(hook.stats().snapshots, 5u);
  EXPECT_EQ(hook.stats().persists, 5u);
  EXPECT_FALSE(hook.last_persisted_path().empty());
  EXPECT_TRUE(f.local_fs.exists(hook.last_persisted_path()));
}

TEST(CheckFreqTest, OldCheckpointFilesAreReplaced) {
  Fixture f;
  auto model = f.small_model("alexnet", 0.05);
  CheckFreqHook hook{f.client, f.gpu, model, f.local_fs, 2, "/cf/ckpt"};
  dnn::TrainingStats stats;
  dnn::TrainingConfig cfg{.iteration_time = 100ms, .update_fraction = 0.1,
                          .busy_fraction = 1.0, .mutate_weights = false};
  f.eng.spawn([](Fixture& fx, CheckFreqHook& h, dnn::TrainingStats& st, dnn::TrainingConfig c,
                 dnn::Model& m) -> sim::Process {
    co_await fx.eng.spawn(dnn::train(fx.eng, fx.gpu, &m, c, 6, h, st)).join();
    co_await h.drain();
  }(f, hook, stats, cfg, model));
  f.eng.run();
  EXPECT_EQ(hook.stats().persists, 3u);  // iterations 2, 4, 6
  EXPECT_TRUE(f.local_fs.exists("/cf/ckpt.iter6"));
  EXPECT_FALSE(f.local_fs.exists("/cf/ckpt.iter4"));
  EXPECT_FALSE(f.local_fs.exists("/cf/ckpt.iter2"));
}

TEST(CheckFreqTest, SlowPersistThrottlesTriggers) {
  // Checkpoint every iteration with a persist that takes longer than an
  // iteration: triggers must be throttled, not queued without bound.
  Fixture f;
  dnn::ModelZoo::Options opt;
  opt.force_phantom = true;
  auto model = dnn::ModelZoo::create(f.gpu, "vit_l_32", opt);  // 1.1 GiB
  CheckFreqHook hook{f.client, f.gpu, model, f.local_fs, 1, "/cf/vit"};
  dnn::TrainingStats stats;
  dnn::TrainingConfig cfg{.iteration_time = 80ms, .update_fraction = 0.1,
                          .busy_fraction = 1.0, .mutate_weights = false};
  f.eng.spawn([](Fixture& fx, CheckFreqHook& h, dnn::TrainingStats& st, dnn::TrainingConfig c,
                 dnn::Model& m) -> sim::Process {
    co_await fx.eng.spawn(dnn::train(fx.eng, fx.gpu, &m, c, 4, h, st)).join();
    co_await h.drain();
  }(f, hook, stats, cfg, model));
  f.eng.run();
  EXPECT_GT(hook.stats().throttled_triggers, 0u);
  EXPECT_GT(stats.checkpoint_stall, 0ms) << "slow storage must stall training";
}

}  // namespace
}  // namespace portus::baselines
