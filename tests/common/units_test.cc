#include "common/units.h"

#include <gtest/gtest.h>

namespace portus {
namespace {

TEST(UnitsTest, ByteLiterals) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(1_MiB, 1024u * 1024u);
  EXPECT_EQ(2_GiB, 2ull * 1024 * 1024 * 1024);
  EXPECT_EQ(1_GB, 1'000'000'000ull);
  EXPECT_EQ(89.6_GB, static_cast<Bytes>(89.6e9));
}

TEST(UnitsTest, BandwidthConversions) {
  const auto hundred_gbps = Bandwidth::gbps(100);
  EXPECT_DOUBLE_EQ(hundred_gbps.bytes_per_second(), 12.5e9);
  EXPECT_DOUBLE_EQ(Bandwidth::gb_per_sec(5.8).gb_per_second(), 5.8);
}

TEST(UnitsTest, TimeForBytes) {
  const auto bw = Bandwidth::gb_per_sec(1.0);  // 1e9 B/s
  EXPECT_EQ(bw.time_for(1_GB), from_seconds(1.0));
  EXPECT_EQ(bw.time_for(0), kZeroDuration);
  EXPECT_EQ(Bandwidth::unlimited().time_for(123456789), kZeroDuration);
}

TEST(UnitsTest, MinBandwidth) {
  const auto a = Bandwidth::gb_per_sec(5.8);
  const auto b = Bandwidth::gb_per_sec(8.3);
  EXPECT_EQ(min(a, b), a);
  EXPECT_EQ(min(b, a), a);
}

TEST(UnitsTest, SecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(1.5)), 1.5);
  EXPECT_DOUBLE_EQ(to_seconds(std::chrono::milliseconds{250}), 0.25);
}

TEST(UnitsTest, Formatting) {
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(2048), "2.0KiB");
  EXPECT_EQ(format_bytes(1282_MiB), "1.25GiB");
  EXPECT_EQ(format_duration(from_seconds(1.25)), "1.250s");
  EXPECT_EQ(format_duration(std::chrono::microseconds{1500}), "1.500ms");
  EXPECT_EQ(format_bandwidth(Bandwidth::gb_per_sec(5.8)), "5.80GB/s");
}

}  // namespace
}  // namespace portus
