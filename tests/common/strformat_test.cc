#include "common/strformat.h"

#include <gtest/gtest.h>

namespace portus {
namespace {

TEST(StrfTest, BasicSubstitution) {
  EXPECT_EQ(strf("{} of {}", 3, "7"), "3 of 7");
  EXPECT_EQ(strf("no args"), "no args");
  EXPECT_EQ(strf("{}", std::string{"hello"}), "hello");
  EXPECT_EQ(strf("{}{}{}", 1, 2, 3), "123");
}

TEST(StrfTest, EscapedBraces) {
  EXPECT_EQ(strf("{{literal}}"), "{literal}");
  EXPECT_EQ(strf("a {{{}}} b", 5), "a {5} b");
}

TEST(StrfTest, FloatPrecision) {
  EXPECT_EQ(strf("{:.3f}", 1.25), "1.250");
  EXPECT_EQ(strf("{:.1f}", 2.0 / 3.0), "0.7");
  EXPECT_EQ(strf("{:6.2f}", 3.14159), "  3.14");
}

TEST(StrfTest, IntegerConversions) {
  EXPECT_EQ(strf("{:08x}", 0xbeef), "0000beef");
  EXPECT_EQ(strf("{:02x}", 7), "07");
  EXPECT_EQ(strf("{}", -42), "-42");
  EXPECT_EQ(strf("{}", 18446744073709551615ull), "18446744073709551615");
  EXPECT_EQ(strf("{}", true), "true");
  EXPECT_EQ(strf("{:.1f}", 3), "3.0");
}

TEST(StrfTest, Alignment) {
  EXPECT_EQ(strf("{:<8}|", "ab"), "ab      |");
  EXPECT_EQ(strf("{:>8}|", "ab"), "      ab|");
  EXPECT_EQ(strf("{:^8}|", "ab"), "   ab   |");
  EXPECT_EQ(strf("{:<6}|", 42), "42    |");
  EXPECT_EQ(strf("{:>6}|", 42), "    42|");
  EXPECT_EQ(strf("{:8}|", 42), "      42|") << "bare width right-aligns numbers";
  EXPECT_EQ(strf("{:>10.2f}|", 3.14159), "      3.14|");
  // Text longer than the field is not truncated.
  EXPECT_EQ(strf("{:<3}", "abcdef"), "abcdef");
}

TEST(StrfTest, ErrorsThrow) {
  EXPECT_THROW(strf("{"), InvalidArgument);
  EXPECT_THROW(strf("{}"), InvalidArgument);           // missing argument
  EXPECT_THROW(strf("{0}", 1), InvalidArgument);       // explicit indexing unsupported
}

}  // namespace
}  // namespace portus
