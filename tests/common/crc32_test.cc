#include "common/crc32.h"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string_view>
#include <vector>

#include "common/rng.h"

namespace portus {
namespace {

std::uint32_t crc_of_string(std::string_view s) {
  return Crc32::of(s.data(), s.size());
}

TEST(Crc32Test, KnownVectors) {
  // Reference values for the IEEE CRC-32 polynomial.
  EXPECT_EQ(crc_of_string(""), 0x00000000u);
  EXPECT_EQ(crc_of_string("a"), 0xE8B7BE43u);
  EXPECT_EQ(crc_of_string("abc"), 0x352441C2u);
  EXPECT_EQ(crc_of_string("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc_of_string("The quick brown fox jumps over the lazy dog"), 0x414FA339u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  Rng rng{42};
  std::vector<std::byte> data(10'000);
  rng.fill(data);

  const auto oneshot = Crc32::of(data);
  Crc32 inc;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t chunk = std::min<std::size_t>(rng.uniform(1, 977), data.size() - pos);
    inc.update(std::span<const std::byte>{data}.subspan(pos, chunk));
    pos += chunk;
  }
  EXPECT_EQ(inc.value(), oneshot);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  Rng rng{7};
  std::vector<std::byte> data(4096);
  rng.fill(data);
  const auto before = Crc32::of(data);
  data[1234] ^= std::byte{0x10};
  EXPECT_NE(Crc32::of(data), before);
}

TEST(Crc32Test, ResetRestartsState) {
  Crc32 c;
  c.update("abc", 3);
  c.reset();
  c.update("123456789", 9);
  EXPECT_EQ(c.value(), 0xCBF43926u);
}

TEST(Crc32Test, SliceBy8MatchesBytewiseReferenceOnAwkwardLengths) {
  // The fast update() folds 8 bytes per step; every remainder class and the
  // sub-8 short-input path must agree with the one-table reference.
  Rng rng{0x51CE};
  for (const std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                std::size_t{8}, std::size_t{9}, std::size_t{4095},
                                std::size_t{4097}}) {
    std::vector<std::byte> data(len);
    rng.fill(data);
    Crc32 fast;
    fast.update(data.data(), data.size());
    Crc32 reference;
    reference.update_bytewise(data.data(), data.size());
    EXPECT_EQ(fast.value(), reference.value()) << "length " << len;
    // Misaligned start: the sliced loop must not assume word alignment.
    if (len > 1) {
      Crc32 fast_off;
      fast_off.update(data.data() + 1, data.size() - 1);
      Crc32 ref_off;
      ref_off.update_bytewise(data.data() + 1, data.size() - 1);
      EXPECT_EQ(fast_off.value(), ref_off.value()) << "offset length " << len;
    }
  }
}

class Crc32ChunkTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Crc32ChunkTest, ChunkingIsTransparent) {
  const std::size_t chunk = GetParam();
  Rng rng{chunk};
  std::vector<std::byte> data(8192);
  rng.fill(data);

  Crc32 inc;
  for (std::size_t pos = 0; pos < data.size(); pos += chunk) {
    const auto n = std::min(chunk, data.size() - pos);
    inc.update(std::span<const std::byte>{data}.subspan(pos, n));
  }
  EXPECT_EQ(inc.value(), Crc32::of(data));
}

INSTANTIATE_TEST_SUITE_P(Chunks, Crc32ChunkTest,
                         ::testing::Values(1, 2, 3, 7, 16, 64, 1000, 4096, 8192));

}  // namespace
}  // namespace portus
