#include "common/binary_io.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"

namespace portus {
namespace {

TEST(BinaryIoTest, RoundTripScalars) {
  BinaryWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(3.14159);

  BinaryReader r{w.buffer()};
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.at_end());
}

TEST(BinaryIoTest, RoundTripStringsAndBytes) {
  BinaryWriter w;
  w.str("model.layer1.weight");
  w.str("");
  std::vector<std::byte> payload(777);
  Rng{3}.fill(payload);
  w.bytes(payload);

  BinaryReader r{w.buffer()};
  EXPECT_EQ(r.str(), "model.layer1.weight");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.bytes(), payload);
  EXPECT_TRUE(r.at_end());
}

TEST(BinaryIoTest, RawViewAdvancesCursor) {
  BinaryWriter w;
  w.u32(1);
  const char blob[4] = {'a', 'b', 'c', 'd'};
  w.raw(blob, 4);
  w.u32(2);

  BinaryReader r{w.buffer()};
  EXPECT_EQ(r.u32(), 1u);
  auto view = r.raw(4);
  EXPECT_EQ(static_cast<char>(view[0]), 'a');
  EXPECT_EQ(static_cast<char>(view[3]), 'd');
  EXPECT_EQ(r.u32(), 2u);
}

TEST(BinaryIoTest, TruncatedReadThrowsCorruption) {
  BinaryWriter w;
  w.u32(7);
  BinaryReader r{w.buffer()};
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_THROW(r.u8(), Corruption);
}

TEST(BinaryIoTest, TruncatedStringThrowsCorruption) {
  BinaryWriter w;
  w.u32(1000);  // claims 1000 bytes follow; none do
  BinaryReader r{w.buffer()};
  EXPECT_THROW(r.str(), Corruption);
}

TEST(BinaryIoTest, ExtremeValues) {
  BinaryWriter w;
  w.u64(std::numeric_limits<std::uint64_t>::max());
  w.i64(std::numeric_limits<std::int64_t>::min());
  BinaryReader r{w.buffer()};
  EXPECT_EQ(r.u64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::min());
}

TEST(BinaryIoTest, TakeMovesBufferOut) {
  BinaryWriter w;
  w.u32(9);
  auto buf = w.take();
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(w.size(), 0u);
}

}  // namespace
}  // namespace portus
