#include "gpu/gpu_device.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gpu/copy_engine.h"
#include "gpu/peer_mem.h"
#include "mem/address_space.h"
#include "sim/process.h"

namespace portus::gpu {
namespace {

using namespace std::chrono_literals;

struct Fixture {
  sim::Engine eng;
  mem::AddressSpace as;
  GpuDevice gpu{eng, as, "gpu0", GpuKind::kV100};
};

TEST(GpuDeviceTest, SpecsMatchPaperHardware) {
  const auto v100 = GpuSpec::v100();
  EXPECT_DOUBLE_EQ(v100.bar_read_limit.gb_per_second(), 5.8);
  EXPECT_GT(v100.peer_write_limit.gb_per_second(), v100.bar_read_limit.gb_per_second())
      << "Fig. 10(d): BAR does not affect writes";
  const auto a40 = GpuSpec::a40();
  EXPECT_EQ(a40.memory, 48_GiB);
}

TEST(GpuDeviceTest, AllocationIsBumpAndBounded) {
  Fixture f;
  auto b1 = f.gpu.alloc(1000);
  auto b2 = f.gpu.alloc(1000);
  EXPECT_NE(b1.global_addr(), b2.global_addr());
  EXPECT_GE(b2.offset(), b1.offset() + 1000);
  EXPECT_THROW(f.gpu.alloc(33_GiB), ResourceExhausted);
}

TEST(GpuDeviceTest, UploadDownloadRoundTrip) {
  Fixture f;
  auto buf = f.gpu.alloc(4096);
  std::vector<std::byte> data(4096);
  Rng{1}.fill(data);
  buf.upload(data);
  EXPECT_EQ(buf.download(), data);
  EXPECT_NE(buf.crc(), 0u);
}

TEST(GpuDeviceTest, PhantomBufferMovesNoBytes) {
  Fixture f;
  auto buf = f.gpu.alloc(1_GiB, /*phantom=*/true);
  std::vector<std::byte> data(4096);
  Rng{2}.fill(data);
  buf.upload(data);  // ignored
  EXPECT_EQ(f.gpu.memory().materialized_bytes(), 0u);
  EXPECT_EQ(buf.crc(), 0u);
}

sim::Process run_dtoh(Fixture& f, DeviceBuffer buf, mem::MemorySegment& host, bool pinned,
                      Time& done) {
  CopyEngine ce{f.gpu};
  co_await ce.dtoh(buf, host, 0, pinned);
  done = f.eng.now();
}

TEST(CopyEngineTest, PageableDtohTimingAndBytes) {
  Fixture f;
  auto host = f.as.create_segment("host", mem::MemoryKind::kDram, 64_MiB);
  auto buf = f.gpu.alloc(41_MB);
  std::vector<std::byte> data(41_MB);
  Rng{3}.fill(data);
  buf.upload(data);

  Time done{};
  f.eng.spawn(run_dtoh(f, buf, *host, false, done));
  f.eng.run();
  // 41 MB at 4.1 GB/s = 10 ms (+ launch latency).
  EXPECT_NEAR(to_seconds(done), 0.010, 0.001);
  EXPECT_EQ(host->read(0, data.size()), data);
}

TEST(CopyEngineTest, PinnedIsFasterThanPageable) {
  Fixture f;
  auto host = f.as.create_segment("host", mem::MemoryKind::kDram, 64_MiB);
  auto buf = f.gpu.alloc(40_MB);

  Time pageable{}, pinned{};
  {
    sim::Engine eng2;  // independent timing run
    (void)eng2;
  }
  f.eng.spawn(run_dtoh(f, buf, *host, false, pageable));
  f.eng.run();
  const Duration pageable_d = pageable - Time{0};

  Fixture f2;
  auto host2 = f2.as.create_segment("host", mem::MemoryKind::kDram, 64_MiB);
  auto buf2 = f2.gpu.alloc(40_MB);
  f2.eng.spawn(run_dtoh(f2, buf2, *host2, true, pinned));
  f2.eng.run();
  EXPECT_LT(pinned.count(), pageable_d.count() / 2);
  (void)host2;
}

TEST(GpuDeviceTest, UtilizationTracking) {
  Fixture f;
  // Busy 10ms starting at t=0, then idle 10ms, then busy 10ms.
  f.eng.schedule(0ms, [&] { f.gpu.mark_compute_busy(10ms); });
  f.eng.schedule(20ms, [&] { f.gpu.mark_compute_busy(10ms); });
  f.eng.run();
  EXPECT_NEAR(f.gpu.utilization(Time{0ms}, Time{30ms}), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(f.gpu.utilization(Time{10ms}, Time{20ms}), 0.0, 1e-9);
  EXPECT_NEAR(f.gpu.utilization(Time{5ms}, Time{15ms}), 0.5, 1e-9);
}

TEST(GpuDeviceTest, OverlappingBusyMarksMerge) {
  Fixture f;
  f.eng.schedule(0ms, [&] {
    f.gpu.mark_compute_busy(10ms);
    f.gpu.mark_compute_busy(4ms);  // nested in the first
  });
  f.eng.run();
  EXPECT_NEAR(to_seconds(f.gpu.busy_within(Time{0}, Time{100ms})), 0.010, 1e-9);
}

sim::Process register_peer(Fixture& f, DeviceBuffer buf, PeerMemRegion& out) {
  out = co_await PeerMem::register_buffer(f.gpu, buf);
}

TEST(PeerMemTest, RegistrationCarriesBarLimits) {
  Fixture f;
  auto buf = f.gpu.alloc(100_MiB);
  PeerMemRegion region;
  f.eng.spawn(register_peer(f, buf, region));
  f.eng.run();
  EXPECT_EQ(region.global_addr, buf.global_addr());
  EXPECT_EQ(region.size, 100_MiB);
  EXPECT_DOUBLE_EQ(region.read_limit.gb_per_second(), 5.8);
  EXPECT_EQ(region.pcie, &f.gpu.pcie());
  EXPECT_FALSE(region.phantom);
  EXPECT_GT(f.eng.now().count(), 0) << "registration must cost time";
}

TEST(CopyEngineTest, ConcurrentCopiesShareThePcieLink) {
  // Two simultaneous pageable DtoH copies on one GPU halve each other's
  // rate until one finishes (the link is fair-shared, not magic).
  Fixture f;
  auto host = f.as.create_segment("host", mem::MemoryKind::kDram, 256_MiB);
  auto b1 = f.gpu.alloc(41_MB);
  auto b2 = f.gpu.alloc(41_MB);
  Time d1{}, d2{};
  f.eng.spawn(run_dtoh(f, b1, *host, false, d1));
  f.eng.spawn(run_dtoh(f, b2, *host, false, d2));
  f.eng.run();
  // Both are capped at 4.1 GB/s per flow on a 24 GB/s link: the link is NOT
  // the bottleneck, so they run at full per-flow speed concurrently.
  EXPECT_NEAR(to_seconds(d1), 0.010, 0.001);
  EXPECT_NEAR(to_seconds(d2), 0.010, 0.001);
}

TEST(CopyEngineTest, ManyConcurrentCopiesSaturateThePcieLink) {
  Fixture f;
  auto host = f.as.create_segment("host", mem::MemoryKind::kDram, 1_GiB);
  std::vector<Time> done(8);
  for (int i = 0; i < 8; ++i) {
    auto buf = f.gpu.alloc(110_MB);
    f.eng.spawn(run_dtoh(f, buf, *host, /*pinned=*/true, done[static_cast<std::size_t>(i)]));
  }
  const Time end = f.eng.run();
  // 8 x 11 GB/s caps = 88 GB/s demand onto a 24 GB/s link: link-bound.
  // 880 MB / 24 GB/s = ~36.7 ms.
  EXPECT_NEAR(to_seconds(end), 0.0367, 0.002);
}

TEST(GpuDeviceTest, UtilizationOutsideTraceIsZero) {
  Fixture f;
  EXPECT_DOUBLE_EQ(f.gpu.utilization(Time{0}, Time{std::chrono::seconds{1}}), 0.0);
  EXPECT_DOUBLE_EQ(f.gpu.utilization(Time{std::chrono::seconds{1}}, Time{std::chrono::seconds{1}}), 0.0);
}

}  // namespace
}  // namespace portus::gpu
