#include <gtest/gtest.h>

#include "dnn/model_zoo.h"
#include "dnn/optimizer.h"
#include "dnn/parallel.h"
#include "dnn/training.h"
#include "mem/address_space.h"

namespace portus::dnn {
namespace {

using namespace std::chrono_literals;

struct Fixture {
  sim::Engine eng;
  mem::AddressSpace as;
  gpu::GpuDevice gpu{eng, as, "gpu0", gpu::GpuKind::kV100};
};

TEST(ModelZooTest, Table2SpecsMatchPaper) {
  const auto names = ModelZoo::table2_names();
  ASSERT_EQ(names.size(), 7u);
  EXPECT_EQ(ModelZoo::spec("resnet50").layers, 161);
  EXPECT_EQ(ModelZoo::spec("resnet50").checkpoint_bytes, 97_MiB);
  EXPECT_EQ(ModelZoo::spec("bert").checkpoint_bytes, 1282_MiB);
  EXPECT_EQ(ModelZoo::spec("vgg19_bn").layers, 70);
  EXPECT_EQ(ModelZoo::spec("vit_l_32").checkpoint_bytes, 1169_MiB);
  EXPECT_EQ(ModelZoo::spec("gpt-22.4b").checkpoint_bytes, 89.6_GB);
  EXPECT_THROW(ModelZoo::spec("nope"), NotFound);
  EXPECT_TRUE(ModelZoo::has("alexnet"));
  EXPECT_FALSE(ModelZoo::has("nope"));
}

TEST(ModelZooTest, CreatedModelMatchesSpecExactly) {
  Fixture f;
  auto model = ModelZoo::create(f.gpu, "resnet50");
  EXPECT_EQ(model.layer_count(), 161u);
  EXPECT_EQ(model.total_bytes(), 97_MiB);
  EXPECT_FALSE(model.phantom());
  // Every tensor is non-empty and f32-aligned.
  for (const auto& t : model.tensors()) {
    EXPECT_GT(t.byte_size(), 0u);
    EXPECT_EQ(t.byte_size() % 4, 0u);
    EXPECT_EQ(t.meta().byte_size(), t.byte_size());
  }
}

TEST(ModelZooTest, LayoutIsDeterministic) {
  Fixture f1, f2;
  auto a = ModelZoo::create(f1.gpu, "swin_b");
  auto b = ModelZoo::create(f2.gpu, "swin_b");
  ASSERT_EQ(a.layer_count(), b.layer_count());
  for (std::size_t i = 0; i < a.layer_count(); ++i) {
    EXPECT_EQ(a.tensor(i).byte_size(), b.tensor(i).byte_size());
    EXPECT_EQ(a.tensor(i).name(), b.tensor(i).name());
  }
  EXPECT_EQ(a.weights_crc(), b.weights_crc()) << "same seed => same weights";
}

TEST(ModelZooTest, LargeModelsArePhantom) {
  Fixture f;
  auto gpt = ModelZoo::create_from_spec(f.gpu, ModelZoo::spec("gpt-1.5b"));
  EXPECT_TRUE(gpt.phantom());
  EXPECT_EQ(f.gpu.memory().materialized_bytes(), 0u);
  EXPECT_EQ(gpt.total_bytes(), 6_GB);
}

TEST(ModelZooTest, ScaleShrinksProportionally) {
  Fixture f;
  ModelZoo::Options opt;
  opt.scale = 0.01;
  auto model = ModelZoo::create(f.gpu, "bert", opt);
  EXPECT_EQ(model.layer_count(), 397u);
  EXPECT_LT(model.total_bytes(), 1282_MiB / 50);
  EXPECT_FALSE(model.phantom());
}

TEST(ModelZooTest, ForcePhantomAndRealOptions) {
  Fixture f;
  ModelZoo::Options phantom_opt;
  phantom_opt.force_phantom = true;
  EXPECT_TRUE(ModelZoo::create(f.gpu, "alexnet", phantom_opt).phantom());

  ModelZoo::Options bad;
  bad.force_phantom = true;
  bad.force_real = true;
  EXPECT_THROW(ModelZoo::create(f.gpu, "alexnet", bad), InvalidArgument);
}

TEST(ModelTest, MutateWeightsChangesCrc) {
  Fixture f;
  ModelZoo::Options opt;
  opt.scale = 0.05;
  auto model = ModelZoo::create(f.gpu, "resnet50", opt);
  const auto before = model.weights_crc();
  model.mutate_weights(1);
  EXPECT_NE(model.weights_crc(), before);
}

TEST(OptimizerTest, StateMultipliers) {
  EXPECT_DOUBLE_EQ(state_multiplier(OptimizerKind::kNone), 0.0);
  EXPECT_DOUBLE_EQ(state_multiplier(OptimizerKind::kSgdMomentum), 1.0);
  EXPECT_DOUBLE_EQ(state_multiplier(OptimizerKind::kAdam), 2.0);
}

TEST(OptimizerTest, AttachAdamTriplesTensorCountAndBytes) {
  Fixture f;
  ModelZoo::Options opt;
  opt.scale = 0.02;
  auto model = ModelZoo::create(f.gpu, "resnet50", opt);
  const auto params = model.layer_count();
  const auto bytes = model.total_bytes();
  attach_optimizer_state(model, OptimizerKind::kAdam);
  EXPECT_EQ(model.layer_count(), 3 * params);
  EXPECT_EQ(model.total_bytes(), 3 * bytes);
  EXPECT_EQ(model.tensor(params).name(), model.tensor(0).name() + ".exp_avg");
}

// --- Megatron partitioner ----------------------------------------------------

class PartitionerTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(PartitionerTest, ShardsPartitionBytesAndLayers) {
  const auto [tp, pp] = GetParam();
  MegatronPartitioner part{tp, pp};
  const auto& full = ModelZoo::spec("gpt-22.4b");
  const auto shards = part.partition(full);

  ASSERT_EQ(shards.size(), static_cast<std::size_t>(tp * pp));
  Bytes total = 0;
  int rank = 0;
  for (const auto& s : shards) {
    EXPECT_EQ(s.global_rank, rank++);
    EXPECT_GT(s.spec.checkpoint_bytes, 0u);
    total += s.spec.checkpoint_bytes;
  }
  EXPECT_EQ(total, full.checkpoint_bytes) << "shards must partition the model exactly";

  // Layers: all TP ranks in one PP stage hold the same layer block; stages
  // partition the layer count.
  int layer_sum = 0;
  for (const auto& s : shards) {
    if (s.tp_rank == 0) layer_sum += s.spec.layers;
  }
  EXPECT_EQ(layer_sum, full.layers);
}

INSTANTIATE_TEST_SUITE_P(Grids, PartitionerTest,
                         ::testing::Values(std::make_pair(1, 1), std::make_pair(8, 2),
                                           std::make_pair(4, 4), std::make_pair(2, 8),
                                           std::make_pair(16, 1), std::make_pair(3, 5)));

TEST(PartitionerTest, ShardNamesEncodeGridPosition) {
  MegatronPartitioner part{2, 2};
  const auto shards = part.partition(ModelZoo::spec("gpt-1.5b"));
  EXPECT_EQ(shards[0].spec.name, "gpt-1.5b/tp0-pp0");
  EXPECT_EQ(shards[3].spec.name, "gpt-1.5b/tp1-pp1");
}

TEST(PartitionerTest, RejectsMoreStagesThanLayers) {
  MegatronPartitioner part{1, 100};
  ModelSpec tiny = ModelZoo::spec("alexnet");  // 16 layers
  EXPECT_THROW(part.partition(tiny), InvalidArgument);
}

// --- training loop -----------------------------------------------------------

TEST(TrainingTest, IterationTimingWithoutCheckpoints) {
  Fixture f;
  NoCheckpoint hook;
  TrainingStats stats;
  TrainingConfig cfg{.iteration_time = 100ms, .update_fraction = 0.1, .busy_fraction = 1.0};
  f.eng.spawn(train(f.eng, f.gpu, nullptr, cfg, 10, hook, stats));
  f.eng.run();
  EXPECT_EQ(stats.iterations_done, 10u);
  EXPECT_EQ(stats.wall(), 1000ms);
  EXPECT_EQ(stats.checkpoint_stall, 0ms);
  EXPECT_NEAR(f.gpu.utilization(stats.started, stats.finished), 1.0, 1e-9);
}

TEST(TrainingTest, BusyFractionDrivesUtilization) {
  Fixture f;
  NoCheckpoint hook;
  TrainingStats stats;
  TrainingConfig cfg{.iteration_time = 100ms, .update_fraction = 0.1, .busy_fraction = 0.8};
  f.eng.spawn(train(f.eng, f.gpu, nullptr, cfg, 20, hook, stats));
  f.eng.run();
  EXPECT_NEAR(f.gpu.utilization(stats.started, stats.finished), 0.8, 0.01);
}

// A hook that stalls a fixed time at each boundary, to verify accounting.
class StallHook final : public CheckpointHook {
 public:
  StallHook(sim::Engine& eng, Duration end_stall, Duration update_stall)
      : eng_{eng}, end_stall_{end_stall}, update_stall_{update_stall} {}
  sim::SubTask<> on_iteration_end(std::uint64_t) override { co_await eng_.sleep(end_stall_); }
  sim::SubTask<> before_update(std::uint64_t) override { co_await eng_.sleep(update_stall_); }

 private:
  sim::Engine& eng_;
  Duration end_stall_;
  Duration update_stall_;
};

TEST(TrainingTest, HookStallsAreAccounted) {
  Fixture f;
  StallHook hook{f.eng, 5ms, 2ms};
  TrainingStats stats;
  TrainingConfig cfg{.iteration_time = 100ms, .update_fraction = 0.1, .busy_fraction = 1.0};
  f.eng.spawn(train(f.eng, f.gpu, nullptr, cfg, 10, hook, stats));
  f.eng.run();
  EXPECT_EQ(stats.checkpoint_stall, 10 * 7ms);
  EXPECT_EQ(stats.wall(), 10 * 107ms);
}

TEST(TrainingTest, WeightsMutatePerIteration) {
  Fixture f;
  ModelZoo::Options opt;
  opt.scale = 0.02;
  auto model = ModelZoo::create(f.gpu, "alexnet", opt);
  const auto crc0 = model.weights_crc();
  NoCheckpoint hook;
  TrainingStats stats;
  f.eng.spawn(train(f.eng, f.gpu, &model, TrainingConfig{.iteration_time = 10ms}, 3, hook,
                    stats));
  f.eng.run();
  EXPECT_NE(model.weights_crc(), crc0);
}

TEST(TrainingTest, InvalidConfigThrows) {
  Fixture f;
  NoCheckpoint hook;
  TrainingStats stats;
  auto p = f.eng.spawn(
      train(f.eng, f.gpu, nullptr, TrainingConfig{.iteration_time = 0ms}, 1, hook, stats));
  f.eng.run();
  EXPECT_THROW(p.check(), InvalidArgument);
}

TEST(ModelZooTest, ExtendedZooIsWellFormed) {
  // Every zoo entry must instantiate with exact totals and positive specs.
  // Fresh device per model: device *address space* is bump-allocated even
  // for phantom payloads, and the zoo sums to hundreds of GB.
  for (const auto& spec : ModelZoo::all()) {
    EXPECT_GT(spec.layers, 0) << spec.name;
    EXPECT_GT(spec.checkpoint_bytes, 0u) << spec.name;
    EXPECT_GT(spec.iteration_time.count(), 0) << spec.name;
    Fixture f;
    ModelZoo::Options opt;
    opt.force_phantom = true;
    if (spec.checkpoint_bytes <= f.gpu.capacity()) {
      auto model = ModelZoo::create_from_spec(f.gpu, spec, opt);
      EXPECT_EQ(model.layer_count(), static_cast<std::size_t>(spec.layers)) << spec.name;
      EXPECT_EQ(model.total_bytes(), spec.checkpoint_bytes) << spec.name;
    } else {
      // Bigger than one GPU — exactly why Megatron shards it. A TP=8 x PP=2
      // shard must fit and partition exactly.
      MegatronPartitioner part{8, 2};
      const auto shards = part.partition(spec);
      Bytes total = 0;
      for (const auto& sh : shards) {
        EXPECT_LE(sh.spec.checkpoint_bytes, f.gpu.capacity()) << sh.spec.name;
        total += sh.spec.checkpoint_bytes;
      }
      EXPECT_EQ(total, spec.checkpoint_bytes) << spec.name;
    }
  }
  EXPECT_GE(ModelZoo::all().size(), 40u);
}

TEST(DTypeTest, SizesAndNames) {
  EXPECT_EQ(size_of(DType::kF32), 4u);
  EXPECT_EQ(size_of(DType::kF16), 2u);
  EXPECT_EQ(size_of(DType::kBF16), 2u);
  EXPECT_EQ(size_of(DType::kI64), 8u);
  EXPECT_STREQ(to_string(DType::kF32), "float32");
  EXPECT_EQ(dtype_from_string("bfloat16"), DType::kBF16);
  EXPECT_THROW(dtype_from_string("complex128"), InvalidArgument);
}

TEST(TensorMetaTest, ElementCountAndShapeString) {
  TensorMeta meta{.name = "w", .dtype = DType::kF32, .shape = {512, 1024}};
  EXPECT_EQ(meta.element_count(), 512 * 1024);
  EXPECT_EQ(meta.byte_size(), 512u * 1024 * 4);
  EXPECT_EQ(meta.shape_string(), "(512, 1024)");
  TensorMeta scalar{.name = "s", .dtype = DType::kF32, .shape = {}};
  EXPECT_EQ(scalar.element_count(), 1);
}

}  // namespace
}  // namespace portus::dnn
