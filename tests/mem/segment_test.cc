#include "mem/segment.h"

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/rng.h"
#include "mem/address_space.h"

namespace portus::mem {
namespace {

TEST(SegmentTest, ReadOfUnwrittenRangeIsZeros) {
  MemorySegment seg{"s", MemoryKind::kDram, 1_MiB, 0x1000};
  const auto data = seg.read(1000, 64);
  for (auto b : data) EXPECT_EQ(b, std::byte{0});
  EXPECT_EQ(seg.materialized_bytes(), 0u);
}

TEST(SegmentTest, WriteReadRoundTrip) {
  MemorySegment seg{"s", MemoryKind::kDram, 1_MiB, 0x1000};
  std::vector<std::byte> data(777);
  Rng{1}.fill(data);
  seg.write(123, data);
  EXPECT_EQ(seg.read(123, 777), data);
}

TEST(SegmentTest, WriteSpanningPageBoundary) {
  MemorySegment seg{"s", MemoryKind::kDram, 4 * MemorySegment::kPageSize, 0x1000};
  std::vector<std::byte> data(MemorySegment::kPageSize + 999);
  Rng{2}.fill(data);
  const Bytes off = MemorySegment::kPageSize - 500;
  seg.write(off, data);
  EXPECT_EQ(seg.read(off, data.size()), data);
  // Bytes around the write must still read as zero.
  EXPECT_EQ(seg.read(off - 1, 1)[0], std::byte{0});
  EXPECT_EQ(seg.read(off + data.size(), 1)[0], std::byte{0});
}

TEST(SegmentTest, OutOfBoundsAccessThrows) {
  MemorySegment seg{"s", MemoryKind::kDram, 4096, 0x1000};
  std::vector<std::byte> data(10);
  EXPECT_THROW(seg.write(4090, data), InvalidArgument);
  EXPECT_THROW(seg.read(4096, 1), InvalidArgument);
  EXPECT_THROW(seg.read(0, 4097), InvalidArgument);
  // Overflowing offset+len must not wrap.
  EXPECT_THROW(seg.read(~0ull - 2, 8), InvalidArgument);
}

TEST(SegmentTest, CrcMatchesReferenceAndZeroPages) {
  MemorySegment seg{"s", MemoryKind::kDram, 2_MiB, 0x1000};
  std::vector<std::byte> data(300'000);
  Rng{3}.fill(data);
  seg.write(100'000, data);

  // CRC over [0, 500k): zeros + data + zeros, computed independently.
  std::vector<std::byte> reference(500'000);
  std::copy(data.begin(), data.end(), reference.begin() + 100'000);
  EXPECT_EQ(seg.crc(0, reference.size()), Crc32::of(reference));
}

TEST(SegmentTest, FillWritesValue) {
  MemorySegment seg{"s", MemoryKind::kDram, 1_MiB, 0x1000};
  seg.fill(10, 100, std::byte{0xAB});
  for (auto b : seg.read(10, 100)) EXPECT_EQ(b, std::byte{0xAB});
  EXPECT_EQ(seg.read(9, 1)[0], std::byte{0});
}

TEST(SegmentTest, SparseHugeSegment) {
  // A 768 GiB segment must be constructible and usable without materializing
  // storage (the whole point of sparse paging).
  MemorySegment seg{"pmem", MemoryKind::kPmem, 768_GiB, 0x1000};
  std::vector<std::byte> data(4096);
  Rng{4}.fill(data);
  seg.write(512_GiB, data);
  EXPECT_EQ(seg.read(512_GiB, 4096), data);
  EXPECT_LE(seg.materialized_bytes(), 2 * MemorySegment::kPageSize);
}

TEST(SegmentTest, GlobalAddressing) {
  MemorySegment seg{"s", MemoryKind::kGpu, 1_MiB, 0xAB000};
  EXPECT_TRUE(seg.contains_global(0xAB000, 1));
  EXPECT_TRUE(seg.contains_global(0xAB000 + 1_MiB - 1, 1));
  EXPECT_FALSE(seg.contains_global(0xAB000 + 1_MiB, 1));
  EXPECT_FALSE(seg.contains_global(0xAAFFF, 1));
  EXPECT_EQ(seg.to_offset(0xAB123), 0x123u);
  EXPECT_THROW(seg.to_offset(0x1), InvalidArgument);
}

TEST(CopyBytesTest, CopiesAcrossSegments) {
  MemorySegment a{"a", MemoryKind::kDram, 1_MiB, 0x1000};
  MemorySegment b{"b", MemoryKind::kDram, 1_MiB, 0x200000};
  std::vector<std::byte> data(200'000);
  Rng{5}.fill(data);
  a.write(0, data);
  copy_bytes(b, 1234, a, 0, data.size());
  EXPECT_EQ(b.read(1234, data.size()), data);
}

TEST(AddressSpaceTest, SegmentsDoNotOverlapAndResolve) {
  AddressSpace as;
  auto s1 = as.create_segment("a", MemoryKind::kDram, 10_MiB);
  auto s2 = as.create_segment("b", MemoryKind::kGpu, 10_MiB);
  EXPECT_NE(s1->base_addr(), s2->base_addr());
  EXPECT_GE(s2->base_addr(), s1->base_addr() + s1->size());

  EXPECT_EQ(&as.resolve(s1->base_addr() + 5, 100), s1.get());
  EXPECT_EQ(&as.resolve(s2->base_addr(), 1), s2.get());
  EXPECT_THROW(as.resolve(1, 1), ProtectionFault);
  // Guard gap between segments is unmapped.
  EXPECT_THROW(as.resolve(s1->base_addr() + s1->size() + 1, 1), ProtectionFault);
}

}  // namespace
}  // namespace portus::mem
