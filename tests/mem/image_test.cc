// Segment image persistence ("PIMG"): what lets a simulated PMEM device — and
// therefore every checkpoint on it — survive across portusctl invocations.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "mem/segment.h"
#include "pmem/pmem_device.h"

namespace portus::mem {
namespace {

TEST(ImageTest, RoundTripSparseContents) {
  MemorySegment a{"a", MemoryKind::kPmem, 4_GiB, 0x1000};
  Rng rng{1};
  std::vector<std::byte> chunk1(100'000), chunk2(5000);
  rng.fill(chunk1);
  rng.fill(chunk2);
  a.write(3_KiB, chunk1);
  a.write(2_GiB, chunk2);

  std::stringstream image;
  a.save_image(image);

  MemorySegment b{"b", MemoryKind::kPmem, 4_GiB, 0x2000};
  b.load_image(image);
  EXPECT_EQ(b.read(3_KiB, chunk1.size()), chunk1);
  EXPECT_EQ(b.read(2_GiB, chunk2.size()), chunk2);
  EXPECT_EQ(b.read(1_GiB, 64), std::vector<std::byte>(64));  // untouched = zeros
  EXPECT_EQ(b.materialized_bytes(), a.materialized_bytes());
  EXPECT_EQ(b.crc(0, 4_GiB / 1024), a.crc(0, 4_GiB / 1024));
}

TEST(ImageTest, LoadReplacesExistingContents) {
  MemorySegment a{"a", MemoryKind::kPmem, 1_MiB, 0x1000};
  a.fill(0, 100, std::byte{0x11});
  std::stringstream image;
  a.save_image(image);

  MemorySegment b{"b", MemoryKind::kPmem, 1_MiB, 0x2000};
  b.fill(512_KiB, 100, std::byte{0x22});
  b.load_image(image);
  EXPECT_EQ(b.read(0, 1)[0], std::byte{0x11});
  EXPECT_EQ(b.read(512_KiB, 1)[0], std::byte{0x00}) << "stale pages must be dropped";
}

TEST(ImageTest, RejectsGarbageHeader) {
  MemorySegment b{"b", MemoryKind::kPmem, 1_MiB, 0x1000};
  std::stringstream junk{"this is not an image"};
  EXPECT_THROW(b.load_image(junk), Corruption);
}

TEST(ImageTest, RejectsTruncatedImage) {
  MemorySegment a{"a", MemoryKind::kPmem, 1_MiB, 0x1000};
  a.fill(0, 300_KiB, std::byte{0x33});
  std::stringstream image;
  a.save_image(image);
  std::string data = image.str();
  data.resize(data.size() / 2);
  std::stringstream truncated{data};

  MemorySegment b{"b", MemoryKind::kPmem, 1_MiB, 0x2000};
  EXPECT_THROW(b.load_image(truncated), Corruption);
}

TEST(ImageTest, RejectsImageLargerThanDevice) {
  MemorySegment a{"a", MemoryKind::kPmem, 4_MiB, 0x1000};
  a.fill(3_MiB, 100, std::byte{0x44});
  std::stringstream image;
  a.save_image(image);

  MemorySegment b{"b", MemoryKind::kPmem, 1_MiB, 0x2000};
  EXPECT_THROW(b.load_image(image), Corruption);
}

TEST(ImageTest, PmemDeviceImagePreservesCheckpointBytes) {
  pmem::PmemDevice dev{"pmem", 64_MiB, 0x1000};
  Rng rng{9};
  std::vector<std::byte> payload(1_MiB);
  rng.fill(payload);
  dev.write(10_MiB, payload);
  dev.persist_all();

  std::stringstream image;
  dev.save_image(image);

  pmem::PmemDevice restored{"pmem2", 64_MiB, 0x2000};
  restored.load_image(image);
  EXPECT_EQ(restored.read(10_MiB, payload.size()), payload);
}

TEST(ImageTest, DeterministicBytes) {
  // Identical contents must serialize identically (images are diffable).
  const auto make = [] {
    auto seg = std::make_unique<MemorySegment>("s", MemoryKind::kPmem, 8_MiB, 0x1000);
    Rng rng{5};
    std::vector<std::byte> d(700'000);
    rng.fill(d);
    seg->write(1_MiB, d);
    seg->write(5_MiB, d);
    return seg;
  };
  std::stringstream i1, i2;
  make()->save_image(i1);
  make()->save_image(i2);
  EXPECT_EQ(i1.str(), i2.str());
}

}  // namespace
}  // namespace portus::mem
