#include <gtest/gtest.h>

#include "common/rng.h"
#include "mem/address_space.h"
#include "rdma/fabric.h"
#include "rdma/rpc.h"
#include "sim/process.h"

namespace portus::rdma {
namespace {

using namespace std::chrono_literals;

// Two nodes' worth of NICs + DRAM segments, wired through one fabric.
struct Rig {
  sim::Engine eng;
  mem::AddressSpace as;
  Fabric fabric{eng};
  RdmaNic client_nic{eng, "client/nic"};
  RdmaNic server_nic{eng, "server/nic"};
  std::shared_ptr<mem::MemorySegment> client_mem =
      as.create_segment("client/dram", mem::MemoryKind::kDram, 64_MiB);
  std::shared_ptr<mem::MemorySegment> server_mem =
      as.create_segment("server/dram", mem::MemoryKind::kDram, 64_MiB);
  ProtectionDomain& client_pd = client_nic.alloc_pd("client-pd");
  ProtectionDomain& server_pd = server_nic.alloc_pd("server-pd");
  CompletionQueue client_cq{eng};
  CompletionQueue server_cq{eng};
  QueuePair& client_qp = fabric.create_qp(client_nic, client_pd, client_cq);
  QueuePair& server_qp = fabric.create_qp(server_nic, server_pd, server_cq);

  const MemoryRegion* client_mr = nullptr;
  const MemoryRegion* server_mr = nullptr;
  const MemoryRegion* client_phantom = nullptr;  // 1 GiB, timing-only
  const MemoryRegion* server_phantom = nullptr;

  Rig() {
    client_mr = &client_pd.register_region(RegionDesc{
        .segment = client_mem.get(), .addr = client_mem->base_addr(), .length = 64_MiB});
    server_mr = &server_pd.register_region(RegionDesc{
        .segment = server_mem.get(), .addr = server_mem->base_addr(), .length = 64_MiB});
    client_phantom = &client_pd.register_region(RegionDesc{
        .segment = nullptr, .addr = 0x7000'0000'0000ull, .length = 1_GiB, .phantom = true});
    server_phantom = &server_pd.register_region(RegionDesc{
        .segment = nullptr, .addr = 0x7100'0000'0000ull, .length = 1_GiB, .phantom = true});
    fabric.connect(client_qp, server_qp);
  }
};

TEST(ProtectionDomainTest, KeysAreUniqueAndResolvable) {
  Rig r;
  EXPECT_NE(r.client_mr->lkey, r.client_mr->rkey);
  EXPECT_EQ(r.client_pd.find_by_rkey(r.client_mr->rkey), r.client_mr);
  EXPECT_EQ(r.client_pd.find_by_lkey(r.client_mr->lkey), r.client_mr);
  EXPECT_EQ(r.client_pd.find_by_rkey(0xdead), nullptr);
}

TEST(ProtectionDomainTest, DeregisterInvalidatesKeys) {
  Rig r;
  const auto lkey = r.client_mr->lkey;
  const auto rkey = r.client_mr->rkey;
  r.client_pd.deregister(lkey);
  EXPECT_EQ(r.client_pd.find_by_lkey(lkey), nullptr);
  EXPECT_EQ(r.client_pd.find_by_rkey(rkey), nullptr);
  EXPECT_THROW(r.client_pd.deregister(lkey), InvalidArgument);
}

TEST(ProtectionDomainTest, RegionValidation) {
  Rig r;
  EXPECT_THROW(r.client_pd.register_region(RegionDesc{.segment = r.client_mem.get(),
                                                      .addr = r.client_mem->base_addr(),
                                                      .length = 0}),
               InvalidArgument);
  EXPECT_THROW(r.client_pd.register_region(RegionDesc{.segment = r.client_mem.get(),
                                                      .addr = r.client_mem->base_addr() + 1,
                                                      .length = 64_MiB}),
               InvalidArgument);
  EXPECT_THROW(r.client_pd.register_region(RegionDesc{.segment = nullptr, .length = 10}),
               InvalidArgument);
}

sim::Process do_read(Rig& r, Bytes len, Bytes local_off, Bytes remote_off, WcStatus& status,
                     std::uint32_t rkey_override = 0) {
  const auto wc = co_await r.server_qp.read_sync(
      r.server_mr->lkey, r.server_mr->addr + local_off, len,
      rkey_override != 0 ? rkey_override : r.client_mr->rkey, r.client_mr->addr + remote_off);
  status = wc.status;
}

TEST(RdmaReadTest, OneSidedReadMovesBytes) {
  Rig r;
  std::vector<std::byte> data(1_MiB);
  Rng{1}.fill(data);
  r.client_mem->write(1000, data);

  WcStatus status{};
  r.eng.spawn(do_read(r, data.size(), 5000, 1000, status));
  r.eng.run();
  EXPECT_EQ(status, WcStatus::kSuccess);
  EXPECT_EQ(r.server_mem->read(5000, data.size()), data);
  EXPECT_EQ(r.fabric.bytes_moved(), 1_MiB);
}

TEST(RdmaReadTest, TimingMatchesPerQpCap) {
  Rig r;
  WcStatus status{};
  r.eng.spawn([](Rig& rig, WcStatus& st) -> sim::Process {
    const auto wc = co_await rig.server_qp.read_sync(rig.server_phantom->lkey,
                                                     rig.server_phantom->addr, 830_MB,
                                                     rig.client_phantom->rkey,
                                                     rig.client_phantom->addr);
    st = wc.status;
  }(r, status));
  const Time end = r.eng.run();
  EXPECT_EQ(status, WcStatus::kSuccess);
  // 830 MB at the 8.3 GB/s single-QP cap ~= 100 ms.
  EXPECT_NEAR(to_seconds(end), 0.100, 0.002);
}

TEST(RdmaReadTest, BadRkeyCompletesWithRemoteAccessError) {
  Rig r;
  WcStatus status{};
  r.eng.spawn(do_read(r, 100, 0, 0, status, /*rkey_override=*/0xBEEF));
  r.eng.run();
  EXPECT_EQ(status, WcStatus::kRemoteAccessError);
  EXPECT_EQ(r.fabric.bytes_moved(), 0u);
}

TEST(RdmaReadTest, OutOfBoundsRemoteAccessFails) {
  Rig r;
  WcStatus status{};
  r.eng.spawn(do_read(r, 2_MiB, 0, 63_MiB, status));
  r.eng.run();
  EXPECT_EQ(status, WcStatus::kRemoteAccessError);
}

TEST(RdmaReadTest, MissingRemoteReadPermissionFails) {
  Rig r;
  const auto& locked = r.client_pd.register_region(
      RegionDesc{.segment = r.client_mem.get(), .addr = r.client_mem->base_addr(),
                 .length = 1_MiB, .access = kLocalRead | kLocalWrite});
  WcStatus status{};
  r.eng.spawn(do_read(r, 100, 0, 0, status, locked.rkey));
  r.eng.run();
  EXPECT_EQ(status, WcStatus::kRemoteAccessError);
}

sim::Process do_write(Rig& r, Bytes len, WcStatus& status) {
  const auto wc = co_await r.server_qp.write_sync(r.server_mr->lkey, r.server_mr->addr, len,
                                                  r.client_mr->rkey, r.client_mr->addr);
  status = wc.status;
}

TEST(RdmaWriteTest, OneSidedWriteMovesBytes) {
  Rig r;
  std::vector<std::byte> data(300'000);
  Rng{2}.fill(data);
  r.server_mem->write(0, data);

  WcStatus status{};
  r.eng.spawn(do_write(r, data.size(), status));
  r.eng.run();
  EXPECT_EQ(status, WcStatus::kSuccess);
  EXPECT_EQ(r.client_mem->read(0, data.size()), data);
}

TEST(RdmaOrderingTest, CompletionsArriveInPostOrder) {
  Rig r;
  std::vector<std::uint64_t> completed;
  // Post a large then a small read; RC ordering demands the large one
  // completes first even though the small one alone would be faster.
  r.client_qp.post_recv(RecvWr{});  // unused; keeps symmetry
  r.server_qp.post(WorkRequest{.opcode = WcOpcode::kRead, .wr_id = 1,
                               .lkey = r.server_mr->lkey, .local_addr = r.server_mr->addr,
                               .length = 10_MiB, .rkey = r.client_mr->rkey,
                               .remote_addr = r.client_mr->addr});
  r.server_qp.post(WorkRequest{.opcode = WcOpcode::kRead, .wr_id = 2,
                               .lkey = r.server_mr->lkey, .local_addr = r.server_mr->addr,
                               .length = 4_KiB, .rkey = r.client_mr->rkey,
                               .remote_addr = r.client_mr->addr});
  r.eng.spawn([](Rig& rig, std::vector<std::uint64_t>& out) -> sim::Process {
    out.push_back((co_await rig.server_cq.wait()).wr_id);
    out.push_back((co_await rig.server_cq.wait()).wr_id);
  }(r, completed));
  r.eng.run();
  EXPECT_EQ(completed, (std::vector<std::uint64_t>{1, 2}));
}

TEST(RdmaSendTest, TwoSidedDeliveryIntoPostedReceive) {
  Rig r;
  std::vector<std::byte> payload(123'456);
  Rng{3}.fill(payload);
  r.client_mem->write(0, payload);

  r.server_qp.post_recv(RecvWr{.wr_id = 77, .lkey = r.server_mr->lkey,
                               .addr = r.server_mr->addr, .length = 1_MiB});
  WcStatus send_status{};
  Bytes recv_len = 0;
  r.eng.spawn([](Rig& rig, WcStatus& st, Bytes& n, Bytes payload_size) -> sim::Process {
    const auto wc =
        co_await rig.client_qp.send_sync(rig.client_mr->lkey, rig.client_mr->addr, payload_size);
    st = wc.status;
    const auto rwc = co_await rig.server_cq.wait();
    EXPECT_EQ(rwc.opcode, WcOpcode::kRecv);
    EXPECT_EQ(rwc.wr_id, 77u);
    n = rwc.byte_len;
  }(r, send_status, recv_len, payload.size()));
  r.eng.run();
  EXPECT_EQ(send_status, WcStatus::kSuccess);
  EXPECT_EQ(recv_len, payload.size());
  EXPECT_EQ(r.server_mem->read(0, payload.size()), payload);
}

TEST(RdmaSendTest, SendWaitsForPostedReceive) {
  Rig r;
  // No receive posted yet; SEND must block (RNR) until one appears at t=1ms.
  Time send_done{};
  r.eng.spawn([](Rig& rig, Time& done) -> sim::Process {
    co_await rig.client_qp.send_sync(rig.client_mr->lkey, rig.client_mr->addr, 100);
    done = rig.eng.now();
  }(r, send_done));
  r.eng.schedule(1ms, [&] {
    r.server_qp.post_recv(RecvWr{.wr_id = 1, .lkey = r.server_mr->lkey,
                                 .addr = r.server_mr->addr, .length = 1_MiB});
  });
  r.eng.run();
  EXPECT_GE(send_done, Time{1ms});
}

TEST(RdmaPhantomTest, PhantomRegionMovesTimeNotBytes) {
  Rig r;
  const auto& phantom = r.client_pd.register_region(RegionDesc{
      .segment = nullptr, .addr = 0x7000'0000'0000ull, .length = 1_GiB, .phantom = true});
  WcStatus status{};
  r.eng.spawn([](Rig& rig, const MemoryRegion& mr, WcStatus& st) -> sim::Process {
    const auto wc = co_await rig.server_qp.read_sync(rig.server_phantom->lkey,
                                                     rig.server_phantom->addr, 830_MB,
                                                     mr.rkey, mr.addr);
    st = wc.status;
  }(r, phantom, status));
  const Time end = r.eng.run();
  EXPECT_EQ(status, WcStatus::kSuccess);
  EXPECT_EQ(r.fabric.bytes_moved(), 0u);
  EXPECT_NEAR(to_seconds(end), 0.100, 0.002) << "phantom transfers still take wire time";
}

// Contention: N concurrent QPs reading through the same server NIC share its
// link capacity (12 GB/s), not N x the per-QP cap.
class RdmaContentionTest : public ::testing::TestWithParam<int> {};

TEST_P(RdmaContentionTest, ConcurrentReadsShareServerLink) {
  const int n = GetParam();
  sim::Engine eng;
  mem::AddressSpace as;
  Fabric fabric{eng};
  RdmaNic server_nic{eng, "server/nic"};
  auto& server_pd = server_nic.alloc_pd("server-pd");
  const auto& server_mr = server_pd.register_region(RegionDesc{
      .segment = nullptr, .addr = 0x7200'0000'0000ull, .length = 1_GiB, .phantom = true});

  std::vector<std::unique_ptr<RdmaNic>> client_nics;
  std::vector<std::unique_ptr<CompletionQueue>> cqs;
  std::vector<sim::Process> procs;
  const Bytes per_flow = 600_MB;
  for (int i = 0; i < n; ++i) {
    client_nics.push_back(std::make_unique<RdmaNic>(eng, "client/nic"));
    auto& pd = client_nics.back()->alloc_pd("pd");
    const auto& phantom = pd.register_region(RegionDesc{
        .segment = nullptr, .addr = 0x7000'0000'0000ull, .length = 1_GiB, .phantom = true});
    cqs.push_back(std::make_unique<CompletionQueue>(eng));
    cqs.push_back(std::make_unique<CompletionQueue>(eng));
    auto& server_qp = fabric.create_qp(server_nic, server_pd, *cqs[cqs.size() - 2]);
    auto& client_qp = fabric.create_qp(*client_nics.back(), pd, *cqs.back());
    fabric.connect(server_qp, client_qp);
    procs.push_back(eng.spawn(
        [](QueuePair& qp, const MemoryRegion& local, const MemoryRegion& remote,
           Bytes len) -> sim::Process {
          const auto wc = co_await qp.read_sync(local.lkey, local.addr, len, remote.rkey,
                                                remote.addr);
          EXPECT_EQ(wc.status, WcStatus::kSuccess);
        }(server_qp, server_mr, phantom, per_flow)));
  }
  const Time end = eng.run();
  const double expected = static_cast<double>(per_flow) * n / 12.0e9;  // server link bound
  if (n >= 2) {
    EXPECT_NEAR(to_seconds(end), expected, expected * 0.05);
  } else {
    EXPECT_NEAR(to_seconds(end), static_cast<double>(per_flow) / 8.3e9, 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Flows, RdmaContentionTest, ::testing::Values(1, 2, 4, 8, 16));

// RPC round trip with a handler that reverses the payload.
TEST(RpcTest, CallRoundTrip) {
  sim::Engine eng;
  mem::AddressSpace as;
  Fabric fabric{eng};
  RdmaNic client_nic{eng, "c/nic"}, server_nic{eng, "s/nic"};

  RpcChannel chan{fabric, as, client_nic, server_nic, "rpc0",
                  [&eng](std::uint16_t op, std::vector<std::byte> req)
                      -> sim::SubTask<RpcReply> {
                    EXPECT_EQ(op, 42);
                    co_await eng.sleep(std::chrono::microseconds{50});
                    std::reverse(req.begin(), req.end());
                    co_return RpcReply{std::move(req), 0};
                  }};

  std::vector<std::byte> payload(1000);
  Rng{9}.fill(payload);
  std::vector<std::byte> expected{payload.rbegin(), payload.rend()};

  std::vector<std::byte> got;
  eng.spawn([](RpcChannel& c, std::vector<std::byte> p, std::vector<std::byte>& out)
                -> sim::Process { out = co_await c.call(42, std::move(p)); }(chan, payload, got));
  eng.run();
  EXPECT_EQ(got, expected);
  EXPECT_EQ(chan.calls_completed(), 1u);
  EXPECT_EQ(eng.failed_process_count(), 0);
}

TEST(RpcTest, SequentialCallsReuseChannel) {
  sim::Engine eng;
  mem::AddressSpace as;
  Fabric fabric{eng};
  RdmaNic client_nic{eng, "c/nic"}, server_nic{eng, "s/nic"};
  int handled = 0;
  RpcChannel chan{fabric, as, client_nic, server_nic, "rpc0",
                  [&handled](std::uint16_t, std::vector<std::byte> req)
                      -> sim::SubTask<RpcReply> {
                    ++handled;
                    co_return RpcReply{std::move(req), 0};
                  }};
  eng.spawn([](RpcChannel& c) -> sim::Process {
    for (int i = 0; i < 10; ++i) {
      auto resp = co_await c.call(1, std::vector<std::byte>(64));
      EXPECT_EQ(resp.size(), 64u);
    }
  }(chan));
  eng.run();
  EXPECT_EQ(handled, 10);
  EXPECT_EQ(chan.calls_completed(), 10u);
}

}  // namespace
}  // namespace portus::rdma
