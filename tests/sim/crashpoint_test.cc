// Crashpoint torture harness (sim/crashpoint.h): enumerate every persist
// boundary of real daemon workloads, reconstruct the post-power-cut image
// at each one, and prove recovery invariants hold at all of them:
//
//   * recover() succeeds on every image;
//   * every surviving DONE slot carries a valid payload-CRC block for its
//     exact epoch, its TensorData matches the block bit-for-bit, and the
//     aggregate equals the golden CRC of the model state that produced the
//     epoch (end-to-end: GPU bytes -> RDMA -> PMEM -> crash -> recovery);
//   * an epoch the client saw acknowledged before the boundary is never
//     lost (newest DONE epoch >= the acked floor);
//   * ACTIVE (crash-leftover) slots and torn records demote cleanly under
//   	 fsck, orphaned/leaked extents are reclaimed, and a second fsck pass
//     finds nothing — the repaired image is immediately serviceable;
//   * the allocator heap never overlaps and, after repair, tracks every
//     byte below the bump pointer.
#include "sim/crashpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/crc32.h"
#include "common/strformat.h"
#include "core/client.h"
#include "core/cluster/cluster_client.h"
#include "core/cluster/manifest.h"
#include "core/daemon/daemon.h"
#include "core/daemon/fsck.h"
#include "core/daemon/repacker.h"
#include "dnn/model.h"
#include "dnn/model_zoo.h"
#include "net/cluster.h"

namespace portus {
namespace {

using namespace std::chrono_literals;

constexpr Bytes kDevdax = 64_MiB;

// One acknowledged checkpoint: the device persist counter observed when the
// ack reached the client, and the epoch it committed. Any crash point whose
// completed-fence count is >= seq must still expose an epoch >= this one.
struct Ack {
  std::uint64_t seq = 0;
  std::uint64_t epoch = 0;
};

struct Recording {
  std::vector<sim::CrashPoint> points;
  std::map<std::uint64_t, std::uint32_t> golden;  // epoch -> aggregate CRC
  std::vector<Ack> acks;
};

std::uint64_t acked_floor(const std::vector<Ack>& acks, const sim::CrashPoint& p) {
  // At a before-phase boundary the fence has not run: only seq-1 completed.
  const std::uint64_t completed = p.after_persist ? p.persist_seq : p.persist_seq - 1;
  std::uint64_t floor = 0;
  for (const auto& a : acks) {
    if (a.seq <= completed) floor = std::max(floor, a.epoch);
  }
  return floor;
}

std::uint32_t crc_of_crcs(const std::vector<std::uint32_t>& crcs) {
  Crc32 agg;
  for (const auto c : crcs) agg.update(&c, sizeof c);
  return agg.value();
}

// Reconstruct the image at `p` on a fresh single-node world, recover a
// daemon over it, and check every invariant. `golden` maps every epoch the
// workload ever attempted to the aggregate CRC of the exact model state
// that was checkpointed as that epoch.
// `cfg` must match the recording daemon's allocator geometry: a daemon
// constructed over a foreign-geometry image writes a fresh AllocTable
// header, which would wipe the very sharded table the walk is probing.
void verify_point(const Recording& rec, const sim::CrashPoint& p,
                  const core::PortusDaemon::Config& cfg = {}) {
  SCOPED_TRACE(::testing::Message() << "crash point #" << p.ordinal << " (fence "
                                    << p.persist_seq << ", "
                                    << (p.after_persist ? "after" : "before") << ")");
  sim::Engine eng;
  auto world = net::Cluster::Builder{}
                   .add_node({.name = "server", .pmem_devdax = kDevdax})
                   .build(eng);
  core::QpRendezvous rendezvous;
  core::PortusDaemon daemon{*world, world->node("server"), rendezvous, cfg};
  auto& device = world->node("server").devdax().device();
  sim::CrashpointRecorder::materialize(p, device, /*seed=*/0xC0FFEEull + p.ordinal);

  ASSERT_NO_THROW(daemon.recover());

  std::uint64_t max_done_epoch = 0;
  for (const auto& name : daemon.model_table().names()) {
    std::optional<core::MIndex> index;
    try {
      index.emplace(daemon.load_index(name));
    } catch (const Error&) {
      continue;  // torn record from a mid-registration cut; fsck handles it
    }
    for (int i = 0; i < 2; ++i) {
      const auto& slot = index->slot(i);
      if (slot.state != core::SlotState::kDone || index->phantom()) continue;
      // Persist ordering ACTIVE -> data -> CRC block -> DONE means a DONE
      // slot is a durability *proof*: block present, epoch exact, payload
      // bit-identical to the model state that committed this epoch.
      const auto block = index->payload_crcs(i);
      ASSERT_TRUE(block.has_value()) << "DONE slot without a payload-CRC block";
      EXPECT_EQ(block->epoch, slot.epoch) << "stale payload-CRC block on a DONE slot";
      const auto& tensors = index->tensors();
      ASSERT_EQ(block->crcs.size(), tensors.size());
      for (std::size_t t = 0; t < tensors.size(); ++t) {
        EXPECT_EQ(device.crc(slot.data_offset + tensors[t].offset_in_slot, tensors[t].size),
                  block->crcs[t])
            << "tensor " << t << " of " << name << " not bit-exact";
      }
      const auto want = rec.golden.find(slot.epoch);
      ASSERT_NE(want, rec.golden.end()) << "DONE slot with an epoch never committed";
      EXPECT_EQ(crc_of_crcs(block->crcs), want->second)
          << "epoch " << slot.epoch << " does not restore the checkpointed state";
      max_done_epoch = std::max(max_done_epoch, slot.epoch);
    }
  }

  // Durability floor: a checkpoint acknowledged before this boundary must
  // survive the cut (possibly superseded by a newer epoch, never lost).
  EXPECT_GE(max_done_epoch, acked_floor(rec.acks, p)) << "acked checkpoint lost";

  // Allocator heap: LIVE extents never overlap, at any boundary.
  const auto check_no_overlap = [&] {
    auto extents = daemon.allocator().extents();
    std::sort(extents.begin(), extents.end(),
              [](const auto& a, const auto& b) { return a.offset < b.offset; });
    Bytes prev_end = 0;
    for (const auto& e : extents) {
      if (e.state != core::AllocState::kLive) continue;
      EXPECT_GE(e.offset, prev_end) << "overlapping LIVE extents";
      prev_end = e.offset + e.size;
    }
  };
  check_no_overlap();

  // fsck repair: demote crash leftovers, sweep leaks. Nothing a power cut
  // leaves behind may look like payload corruption — persisted data is
  // ADR-safe, so every DONE slot must pass the scrub.
  auto report = core::Fsck{daemon}.run(/*repair=*/true);
  EXPECT_EQ(report.corrupt_demoted, 0) << "a power cut must never corrupt a DONE slot";
  EXPECT_EQ(report.corrupt_tensors, 0);
  EXPECT_EQ(report.overlap_violations, 0);

  // The repaired image: newest committed epoch intact, every heap byte
  // below the bump tracked again, and a second pass finds nothing at all.
  // Phantom indices stay out of the epoch comparison, mirroring the
  // pre-repair loop: their epochs never enter the golden map.
  std::uint64_t max_after = 0;
  for (const auto& name : daemon.model_table().names()) {
    const auto index = daemon.load_index(name);  // all records load post-repair
    for (int i = 0; i < 2; ++i) {
      if (index.slot(i).state == core::SlotState::kDone && !index.phantom()) {
        max_after = std::max(max_after, index.slot(i).epoch);
      }
      EXPECT_NE(index.slot(i).state, core::SlotState::kActive) << "ACTIVE survived fsck";
    }
  }
  EXPECT_EQ(max_after, max_done_epoch) << "fsck demoted a valid DONE slot";
  Bytes tracked = 0;
  for (const auto& e : daemon.allocator().extents()) tracked += e.size;
  EXPECT_EQ(tracked, daemon.allocator().bump() - core::PortusDaemon::kHeapOffset)
      << "heap bytes leaked after repair";
  check_no_overlap();

  const auto second = core::Fsck{daemon}.run(/*repair=*/true);
  EXPECT_TRUE(second.clean()) << "second fsck pass still found issues";
  EXPECT_EQ(second.gaps_adopted, 0u);

  eng.shutdown();
}

// --- workload 1: full + incremental checkpoints ------------------------------

Recording record_checkpoint_workload() {
  Recording rec;
  sim::Engine eng;
  auto world = net::Cluster::Builder{}
                   .add_node({.name = "client", .gpu_count = 1})
                   .add_node({.name = "server", .pmem_devdax = kDevdax})
                   .build(eng);
  core::QpRendezvous rendezvous;
  core::PortusDaemon::Config cfg;
  cfg.chunk_bytes = 64_KiB;
  cfg.pipeline_window = 4;
  cfg.stripes = 2;
  core::PortusDaemon daemon{*world, world->node("server"), rendezvous, cfg};
  daemon.start();
  auto& device = daemon.device();

  auto& client_node = world->node("client");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.01;
  auto model = dnn::ModelZoo::create(client_node.gpu(0), "alexnet", opt);
  core::PortusClient client{*world, client_node, client_node.gpu(0), rendezvous,
                            "portusd", /*stripes=*/2};

  sim::CrashpointRecorder recorder{device};
  eng.spawn([](core::PortusClient& c, dnn::Model& m, pmem::PmemDevice& dev,
               Recording& out) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    for (std::uint64_t k = 1; k <= 3; ++k) {
      m.mutate_weights(k);
      const auto golden = m.weights_crc();
      const auto epoch = co_await c.checkpoint(m, k);
      out.golden[epoch] = golden;
      out.acks.push_back(Ack{dev.persist_seq(), epoch});
      // End-to-end integrity: the CRC the daemon computed over what landed
      // on PMEM equals the CRC of the GPU weights that were sent.
      if (c.stats().last_payload_crc != golden) throw Error("payload CRC mismatch");
    }
    // Incremental round: nothing mutated, so the daemon RDMA-pulls the two
    // dirty tensors and PMEM-copies the rest — payload stays bit-identical.
    const auto golden = m.weights_crc();
    std::vector<std::uint32_t> dirty{0, 1};
    const auto epoch = co_await c.checkpoint_incremental(m, 4, std::move(dirty));
    out.golden[epoch] = golden;
    out.acks.push_back(Ack{dev.persist_seq(), epoch});
    if (c.stats().last_payload_crc != golden) throw Error("incremental CRC mismatch");
  }(client, model, device, rec));
  eng.run();
  recorder.detach();
  rec.points = recorder.points();
  eng.shutdown();
  return rec;
}

TEST(CrashpointTest, EveryCheckpointBoundarySurvivesPowerCut) {
  const auto rec = record_checkpoint_workload();
  // Acceptance: the harness must enumerate a dense set of crash points —
  // at least 100 distinct persist boundaries in this workload alone.
  std::set<std::uint64_t> fences;
  for (const auto& p : rec.points) fences.insert(p.persist_seq);
  EXPECT_GE(fences.size(), 100u) << "persist-point recorder missed boundaries";
  ASSERT_EQ(rec.golden.size(), 4u);

  for (const auto& p : rec.points) {
    verify_point(rec, p);
    if (::testing::Test::HasFatalFailure()) break;
  }
}

// --- workload 2: coalesced small-tensor datapath ------------------------------

// Extent coalescing (core/daemon/extent.h) merges runs of small tensors
// into multi-SGE gather WRs and splits per-tensor CRCs back out of landed
// extents. Walking every persist boundary of a coalesced checkpoint proves
// the split CRC blocks remain a durability proof: verify_point checks each
// DONE slot's payload bit-for-bit against its block, per tensor.
Recording record_coalesced_workload() {
  Recording rec;
  sim::Engine eng;
  auto world = net::Cluster::Builder{}
                   .add_node({.name = "client", .gpu_count = 1})
                   .add_node({.name = "server", .pmem_devdax = kDevdax})
                   .build(eng);
  core::QpRendezvous rendezvous;
  core::PortusDaemon::Config cfg;
  cfg.chunk_bytes = 4_KiB;
  cfg.pipeline_window = 4;
  cfg.stripes = 2;
  cfg.coalesce_threshold = 2_KiB;
  cfg.max_sges = 8;
  core::PortusDaemon daemon{*world, world->node("server"), rendezvous, cfg};
  daemon.start();
  auto& device = daemon.device();

  // Small-tensor-dominated: 6 blocks of (2 KiB, 1 KiB, 256 B, 256 B) plus
  // one chunked 32 KiB embedding — most WRs are gather extents.
  auto& client_node = world->node("client");
  dnn::Model model{"gpt-bits", client_node.gpu(0)};
  for (int b = 0; b < 6; ++b) {
    const auto tag = std::to_string(b);
    model.add_tensor(dnn::TensorMeta{.name = "blk" + tag + ".w", .shape = {512}}, false);
    model.add_tensor(dnn::TensorMeta{.name = "blk" + tag + ".proj", .shape = {256}}, false);
    model.add_tensor(dnn::TensorMeta{.name = "blk" + tag + ".bias", .shape = {64}}, false);
    model.add_tensor(dnn::TensorMeta{.name = "blk" + tag + ".norm", .shape = {64}}, false);
  }
  model.add_tensor(dnn::TensorMeta{.name = "embed", .shape = {32, 256}}, false);
  model.randomize_weights(0xC0A1E5CE);
  core::PortusClient client{*world, client_node, client_node.gpu(0), rendezvous,
                            "portusd", /*stripes=*/2};

  sim::CrashpointRecorder recorder{device};
  eng.spawn([](core::PortusClient& c, dnn::Model& m, pmem::PmemDevice& dev,
               Recording& out, core::PortusDaemon& d) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    for (std::uint64_t k = 1; k <= 2; ++k) {
      m.mutate_weights(k);
      const auto golden = m.weights_crc();
      const auto epoch = co_await c.checkpoint(m, k);
      out.golden[epoch] = golden;
      out.acks.push_back(Ack{dev.persist_seq(), epoch});
      if (c.stats().last_payload_crc != golden) throw Error("payload CRC mismatch");
    }
    // Incremental over a coalesced layout: one dirty pair fuses into a
    // gather extent, the clean remainder rides as dense local copies.
    const auto golden = m.weights_crc();
    std::vector<std::uint32_t> dirty{1, 2};
    const auto epoch = co_await c.checkpoint_incremental(m, 3, std::move(dirty));
    out.golden[epoch] = golden;
    out.acks.push_back(Ack{dev.persist_seq(), epoch});
    if (c.stats().last_payload_crc != golden) throw Error("incremental CRC mismatch");
    if (d.stats().extents_coalesced == 0) throw Error("workload never coalesced");
  }(client, model, device, rec, daemon));
  eng.run();
  recorder.detach();
  rec.points = recorder.points();
  eng.shutdown();
  return rec;
}

TEST(CrashpointTest, CoalescedCheckpointBoundariesSurvivePowerCut) {
  const auto rec = record_coalesced_workload();
  EXPECT_GE(rec.points.size(), 40u);
  ASSERT_EQ(rec.golden.size(), 3u);

  for (const auto& p : rec.points) {
    verify_point(rec, p);
    if (::testing::Test::HasFatalFailure()) break;
  }
}

// --- workload 3: sharded allocator, mid-refill power cuts ---------------------

// The sharded allocator persists per-shard AllocTable regions and touches
// the global bump pointer only on reservation refills. A power cut can land
// between the bump advance, the old reservation tail's FREE publication and
// the first entry persisted out of the new reservation — every such fence
// must leave an image where recover() validates the sharded header, no LIVE
// extents overlap, and fsck repair re-adopts any abandoned reservation tail
// as a heap gap (verify_point's post-repair accounting proves that every
// byte below the bump pointer is tracked again).
core::PortusDaemon::Config sharded_cfg() {
  core::PortusDaemon::Config cfg;
  cfg.chunk_bytes = 16_KiB;
  cfg.pipeline_window = 4;
  cfg.stripes = 2;
  cfg.shards = 4;
  // Small on purpose: slot-layout allocations overrun one reservation, so
  // the recorded run crosses the refill path many times.
  cfg.alloc_refill_bytes = 32_KiB;
  return cfg;
}

Recording record_sharded_refill_workload() {
  Recording rec;
  sim::Engine eng;
  auto world = net::Cluster::Builder{}
                   .add_node({.name = "client", .gpu_count = 1})
                   .add_node({.name = "server", .pmem_devdax = kDevdax})
                   .build(eng);
  core::QpRendezvous rendezvous;
  core::PortusDaemon daemon{*world, world->node("server"), rendezvous, sharded_cfg()};
  daemon.start();
  auto& device = daemon.device();

  // Small-tensor blocks plus a chunked embedding: the double-buffered slots
  // and CRC blocks churn allocs and frees across the arenas.
  auto& client_node = world->node("client");
  dnn::Model model{"gpt-bits", client_node.gpu(0)};
  for (int b = 0; b < 6; ++b) {
    const auto tag = std::to_string(b);
    model.add_tensor(dnn::TensorMeta{.name = "blk" + tag + ".w", .shape = {512}}, false);
    model.add_tensor(dnn::TensorMeta{.name = "blk" + tag + ".proj", .shape = {256}}, false);
    model.add_tensor(dnn::TensorMeta{.name = "blk" + tag + ".bias", .shape = {64}}, false);
  }
  model.add_tensor(dnn::TensorMeta{.name = "embed", .shape = {32, 256}}, false);
  model.randomize_weights(0x54A6D);
  core::PortusClient client{*world, client_node, client_node.gpu(0), rendezvous,
                            "portusd", /*stripes=*/2};

  sim::CrashpointRecorder recorder{device};
  eng.spawn([](core::PortusClient& c, dnn::Model& m, pmem::PmemDevice& dev,
               Recording& out, core::PortusDaemon& d) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    for (std::uint64_t k = 1; k <= 4; ++k) {
      m.mutate_weights(k);
      const auto golden = m.weights_crc();
      const auto epoch = co_await c.checkpoint(m, k);
      out.golden[epoch] = golden;
      out.acks.push_back(Ack{dev.persist_seq(), epoch});
      if (c.stats().last_payload_crc != golden) throw Error("payload CRC mismatch");
    }
    // The walk is only meaningful if the recorded fences actually straddle
    // reservation refills.
    std::uint64_t refills = 0;
    for (const auto& sh : d.allocator().shard_stats()) refills += sh.refills;
    if (refills == 0) throw Error("refill path never exercised");
  }(client, model, device, rec, daemon));
  eng.run();
  recorder.detach();
  rec.points = recorder.points();
  eng.shutdown();
  return rec;
}

TEST(CrashpointTest, MidRefillBoundariesLeaveShardTablesFsckClean) {
  const auto rec = record_sharded_refill_workload();
  EXPECT_GE(rec.points.size(), 40u);
  ASSERT_EQ(rec.golden.size(), 4u);

  for (const auto& p : rec.points) {
    verify_point(rec, p, sharded_cfg());
    if (::testing::Test::HasFatalFailure()) break;
  }
}

// --- workload 4: cluster-era shard registration ------------------------------

Recording record_shard_workload(std::vector<std::byte>& manifest_wire) {
  Recording rec;
  sim::Engine eng;
  auto world = net::Cluster::Builder{}
                   .add_node({.name = "client", .gpu_count = 1})
                   .add_node({.name = "server", .pmem_devdax = kDevdax})
                   .build(eng);
  core::QpRendezvous rendezvous;
  core::PortusDaemon daemon{*world, world->node("server"), rendezvous};
  daemon.start();
  auto& device = daemon.device();

  auto& client_node = world->node("client");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.01;
  auto model = dnn::ModelZoo::create(client_node.gpu(0), "alexnet", opt);

  // A real two-shard manifest over a one-daemon "ring".
  core::cluster::ShardManifest mf;
  mf.model_name = model.name();
  mf.placement_epoch = 1;
  mf.daemon_count = 2;
  mf.replicas = 1;
  mf.endpoints = {"portusd", "portusd"};  // both shards land on the one daemon
  const auto n = model.tensors().size();
  std::vector<std::uint32_t> front, back;
  for (std::uint32_t t = 0; t < n; ++t) {
    mf.tensors.push_back({model.tensors()[t].name(), model.tensors()[t].byte_size(),
                          t < n / 2 ? 0u : 1u});
    (t < n / 2 ? front : back).push_back(t);
  }
  mf.shard_daemons = {{0}, {1}};
  manifest_wire = mf.encode();

  core::PortusClient client{*world, client_node, client_node.gpu(0), rendezvous};
  sim::CrashpointRecorder recorder{device};
  eng.spawn([](core::PortusClient& c, dnn::Model& m, pmem::PmemDevice& dev, Recording& out,
               std::vector<std::byte> wire, std::vector<std::uint32_t> s0,
               std::vector<std::uint32_t> s1) -> sim::Process {
    co_await c.connect();
    const auto bind = [&](std::uint32_t shard, std::vector<std::uint32_t> idx) {
      core::PortusClient::ShardBinding b;
      b.reg_name = m.name() + "#s" + std::to_string(shard);
      b.tensor_indices = std::move(idx);
      b.shard_id = shard;
      b.shard_count = 2;
      b.placement_epoch = 1;
      b.manifest = wire;
      return b;
    };
    co_await c.register_shard(m, bind(0, s0));
    co_await c.register_shard(m, bind(1, s1));
    for (const auto shard : {0, 1}) {
      const auto name = m.name() + "#s" + std::to_string(shard);
      const auto epoch = co_await c.checkpoint_named(name, 1);
      out.golden[epoch] = c.stats().last_payload_crc;
      out.acks.push_back(Ack{dev.persist_seq(), epoch});
    }
  }(client, model, device, rec, manifest_wire, front, back));
  eng.run();
  recorder.detach();
  rec.points = recorder.points();
  eng.shutdown();
  return rec;
}

TEST(CrashpointTest, ShardRegistrationBoundariesSurvivePowerCut) {
  std::vector<std::byte> manifest_wire;
  const auto rec = record_shard_workload(manifest_wire);
  EXPECT_GE(rec.points.size(), 40u);

  for (const auto& p : rec.points) {
    SCOPED_TRACE(::testing::Message() << "crash point #" << p.ordinal);
    sim::Engine eng;
    auto world = net::Cluster::Builder{}
                     .add_node({.name = "server", .pmem_devdax = kDevdax})
                     .build(eng);
    core::QpRendezvous rendezvous;
    core::PortusDaemon daemon{*world, world->node("server"), rendezvous};
    sim::CrashpointRecorder::materialize(p, world->node("server").devdax().device(),
                                         /*seed=*/0xBADC0DEull + p.ordinal);
    ASSERT_NO_THROW(daemon.recover());

    // Every shard record that survived the cut must carry a decodable
    // manifest identical to the registered one: the cluster placement is
    // reconstructible from the image alone, at any boundary.
    for (const auto& name : daemon.model_table().names()) {
      std::optional<core::MIndex> index;
      try {
        index.emplace(daemon.load_index(name));
      } catch (const Error&) {
        continue;  // torn mid-registration record
      }
      ASSERT_TRUE(index->sharded());
      EXPECT_EQ(index->shard_count(), 2u);
      EXPECT_EQ(index->manifest(), manifest_wire);
      const auto decoded = core::cluster::ShardManifest::decode(index->manifest());
      EXPECT_EQ(decoded.model_name, "alexnet");
      EXPECT_EQ(decoded.shard_daemons.size(), 2u);
    }

    auto report = core::Fsck{daemon}.run(/*repair=*/true);
    EXPECT_EQ(report.corrupt_demoted, 0);
    EXPECT_EQ(report.overlap_violations, 0);
    EXPECT_TRUE(core::Fsck{daemon}.run(/*repair=*/true).clean());
    eng.shutdown();
    if (::testing::Test::HasFatalFailure()) break;
  }
}

// --- workload 5: online repack under admitted live traffic --------------------

// The online repacker frees reclaimed slots, rewrites AllocTable entries
// and compacts the bump inside bounded admission-pause windows, while a
// live tenant keeps checkpointing between windows. A power cut can land
// mid-relocation — between a slot clear, its extent's FREE publication and
// the compacted bump persist. Every such boundary must leave an image
// where the finished job's *latest* committed epoch and every live-job ack
// survive, and fsck finds nothing worse than the expected torn leftovers.
core::PortusDaemon::Config online_repack_cfg() {
  core::PortusDaemon::Config cfg;
  cfg.chunk_bytes = 16_KiB;
  cfg.pipeline_window = 4;
  cfg.shards = 4;
  cfg.alloc_refill_bytes = 64_KiB;
  cfg.tenancy = true;
  cfg.admission_inflight = 1;
  return cfg;
}

Recording record_online_repack_workload() {
  Recording rec;
  sim::Engine eng;
  auto world = net::Cluster::Builder{}
                   .add_node({.name = "client", .gpu_count = 1})
                   .add_node({.name = "server", .pmem_devdax = kDevdax})
                   .build(eng);
  core::QpRendezvous rendezvous;
  core::PortusDaemon daemon{*world, world->node("server"), rendezvous,
                            online_repack_cfg()};
  daemon.start();
  auto& device = daemon.device();

  auto& client_node = world->node("client");
  dnn::Model garbage{"finished-job", client_node.gpu(0)};
  for (int b = 0; b < 4; ++b) {
    const auto tag = std::to_string(b);
    garbage.add_tensor(dnn::TensorMeta{.name = "fc" + tag + ".w", .shape = {48, 64}}, false);
    garbage.add_tensor(dnn::TensorMeta{.name = "fc" + tag + ".b", .shape = {64}}, false);
  }
  garbage.randomize_weights(0x6A5BA6Eull);
  // The live tenant is phantom: its slots churn the allocator and the
  // admission path without adding payload epochs to the golden map (the
  // walk's CRC checks are keyed by epoch alone).
  dnn::Model live{"live", client_node.gpu(0)};
  live.add_tensor(dnn::TensorMeta{.name = "w", .shape = {1 << 16}}, /*phantom=*/true);

  core::PortusClient client{*world, client_node, client_node.gpu(0), rendezvous};
  client.set_retry_policy(core::PortusClient::RetryPolicy{.max_retries = 20});

  sim::CrashpointRecorder recorder{device};
  eng.spawn([](sim::Engine& eng, core::PortusClient& c, dnn::Model& garbage,
               dnn::Model& live, pmem::PmemDevice& dev, Recording& out,
               core::PortusDaemon& d) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(garbage);
    for (std::uint64_t k = 1; k <= 2; ++k) {
      garbage.mutate_weights(k);
      const auto golden = garbage.weights_crc();
      const auto epoch = co_await c.checkpoint(garbage, k);
      out.golden[epoch] = golden;
      out.acks.push_back(Ack{dev.persist_seq(), epoch});
    }
    co_await c.finish(garbage);  // epoch 1 becomes reclaimable garbage

    co_await c.register_model(live);
    core::Repacker::Report report;
    auto maint = eng.spawn([](core::PortusDaemon& d,
                              core::Repacker::Report& out) -> sim::Process {
      core::Repacker repacker{d};
      core::Repacker::OnlineOptions opts;
      opts.models_per_pass = 1;
      out = co_await repacker.repack_online(opts);
    }(d, report));
    for (std::uint64_t k = 1; k <= 4; ++k) {
      co_await c.checkpoint(live, k);
    }
    co_await maint.join();
    if (report.freed_outdated == 0) throw Error("repack reclaimed no garbage");
  }(eng, client, garbage, live, device, rec, daemon));
  eng.run();
  recorder.detach();
  rec.points = recorder.points();
  eng.shutdown();
  return rec;
}

TEST(CrashpointTest, MidRelocationBoundariesLeaveImageFsckClean) {
  const auto rec = record_online_repack_workload();
  EXPECT_GE(rec.points.size(), 40u);
  ASSERT_EQ(rec.golden.size(), 2u);

  for (const auto& p : rec.points) {
    verify_point(rec, p, online_repack_cfg());
    if (::testing::Test::HasFatalFailure()) break;
  }
}

// --- FaultMode::kPowerCut through the injector, in a live cluster ------------

TEST(CrashpointTest, ClusterSurvivesInjectedPowerCut) {
  sim::Engine eng;
  auto cluster = net::Cluster::sharded_testbed(eng, 3);
  core::QpRendezvous rendezvous;
  sim::FaultInjector faults{eng};
  std::vector<std::unique_ptr<core::PortusDaemon>> daemons;
  core::cluster::ClusterClient::Config ccfg;
  ccfg.replicas = 2;
  ccfg.op_timeout = 50ms;
  for (int i = 0; i < 3; ++i) {
    core::PortusDaemon::Config cfg;
    cfg.endpoint = strf("portusd{}", i);
    cfg.faults = &faults;
    ccfg.endpoints.push_back(cfg.endpoint);
    daemons.push_back(std::make_unique<core::PortusDaemon>(
        *cluster, cluster->node(strf("pmem{}", i)), rendezvous, cfg));
    daemons.back()->start();
  }

  auto& volta = cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.05;
  auto model = dnn::ModelZoo::create(volta.gpu(0), "resnet50", opt);
  core::cluster::ClusterClient client{*cluster, volta, volta.gpu(0), rendezvous, ccfg};

  bool done = false;
  auto proc = eng.spawn([](sim::FaultInjector& faults,
                           core::cluster::ClusterClient& c, dnn::Model& m,
                           bool& ok) -> sim::Process {
    co_await c.register_model(m);
    co_await c.checkpoint(1);

    // Power fails on one ring member in the middle of the next round: its
    // unpersisted lines are lost/torn, its sockets drop. Replication (R=2)
    // must carry the round and the restore regardless.
    m.mutate_weights(2);
    faults.kill_after("portusd1", 200us, sim::FaultMode::kPowerCut);
    const auto ck = co_await c.checkpoint(2);
    if (ck.epoch != 2) throw Error("checkpoint 2 did not commit");
    const auto golden = m.weights_crc();

    m.mutate_weights(99);  // diverge, then pull epoch 2 back
    const auto rr = co_await c.restore();
    if (rr.epoch != 2) throw Error("restore served the wrong epoch");
    if (m.weights_crc() != golden) throw Error("restore not bit-exact");
    ok = true;
  }(faults, client, model, done));
  eng.run();
  proc.check();
  ASSERT_TRUE(done);
  EXPECT_TRUE(faults.killed("portusd1"));
  EXPECT_GE(daemons[1]->device().crash_count(), 1u);

  // The powered-off daemon restarts over whatever its device holds now:
  // recovery + fsck must leave a clean, serviceable image.
  daemons[1]->recover();
  auto report = core::Fsck{*daemons[1]}.run(/*repair=*/true);
  EXPECT_EQ(report.corrupt_demoted, 0);
  EXPECT_EQ(report.overlap_violations, 0);
  EXPECT_TRUE(core::Fsck{*daemons[1]}.run(/*repair=*/true).clean());
  eng.shutdown();
}

}  // namespace
}  // namespace portus
