#include "sim/task.h"

#include <gtest/gtest.h>

#include "sim/bandwidth_channel.h"
#include "sim/engine.h"
#include "sim/process.h"
#include "sim/sync.h"

namespace portus::sim {
namespace {

using namespace std::chrono_literals;

SubTask<int> answer(Engine& eng) {
  co_await eng.sleep(10ns);
  co_return 42;
}

Process await_answer(Engine& eng, int& out) { out = co_await answer(eng); }

TEST(SubTaskTest, ReturnsValueAfterVirtualTime) {
  Engine eng;
  int got = 0;
  eng.spawn(await_answer(eng, got));
  eng.run();
  EXPECT_EQ(got, 42);
  EXPECT_EQ(eng.now(), Time{10ns});
}

SubTask<std::string> outer(Engine& eng) {
  const int v = co_await answer(eng);
  co_await eng.sleep(5ns);
  co_return "v=" + std::to_string(v);
}

TEST(SubTaskTest, NestedSubTasksCompose) {
  Engine eng;
  std::string got;
  eng.spawn([](Engine& e, std::string& out) -> Process { out = co_await outer(e); }(eng, got));
  eng.run();
  EXPECT_EQ(got, "v=42");
  EXPECT_EQ(eng.now(), Time{15ns});
}

SubTask<> thrower(Engine& eng) {
  co_await eng.sleep(1ns);
  throw NotFound("gone");
}

TEST(SubTaskTest, ExceptionPropagatesToAwaiter) {
  Engine eng;
  bool caught = false;
  eng.spawn([](Engine& e, bool& c) -> Process {
    try {
      co_await thrower(e);
    } catch (const NotFound&) {
      c = true;
    }
  }(eng, caught));
  eng.run();
  EXPECT_TRUE(caught);
  EXPECT_EQ(eng.failed_process_count(), 0);
}

SubTask<std::unique_ptr<int>> move_only(Engine& eng) {
  co_await eng.sleep(1ns);
  co_return std::make_unique<int>(7);
}

TEST(SubTaskTest, MoveOnlyResult) {
  Engine eng;
  int got = 0;
  eng.spawn([](Engine& e, int& out) -> Process {
    auto p = co_await move_only(e);
    out = *p;
  }(eng, got));
  eng.run();
  EXPECT_EQ(got, 7);
}

TEST(SubTaskTest, UnawaitedTaskNeverRuns) {
  Engine eng;
  bool ran = false;
  {
    auto t = [](Engine& e, bool& r) -> SubTask<> {
      r = true;
      co_await e.sleep(1ns);
    }(eng, ran);
    // dropped without co_await: lazy task must not have started
  }
  eng.run();
  EXPECT_FALSE(ran);
}

SubTask<int> sequential(Engine& eng, std::vector<int>& order, int id) {
  order.push_back(id);
  co_await eng.sleep(Duration{id});
  order.push_back(id + 100);
  co_return id;
}

TEST(SubTaskTest, SequentialAwaitsPreserveOrder) {
  Engine eng;
  std::vector<int> order;
  int sum = 0;
  eng.spawn([](Engine& e, std::vector<int>& o, int& s) -> Process {
    s += co_await sequential(e, o, 1);
    s += co_await sequential(e, o, 2);
    s += co_await sequential(e, o, 3);
  }(eng, order, sum));
  eng.run();
  EXPECT_EQ(sum, 6);
  EXPECT_EQ(order, (std::vector<int>{1, 101, 2, 102, 3, 103}));
}

// Engine::shutdown must clear waiter registrations so primitives are safely
// reusable after a simulated machine failure.
TEST(ShutdownTest, PrimitivesAreReusableAfterShutdown) {
  Engine eng;
  SimMutex mu{eng};
  SimSemaphore sem{eng, 0};
  SimEvent ev{eng};
  Channel<int> chan{eng};
  BandwidthChannel bw{eng, Bandwidth::gb_per_sec(1.0), "link"};

  // Park processes on all of them, plus a mid-flight transfer.
  eng.spawn([](Engine& e, SimMutex& m) -> Process {
    auto g = co_await m.lock();
    co_await e.sleep(1h);
  }(eng, mu));
  eng.spawn([](SimMutex& m) -> Process { auto g = co_await m.lock(); }(mu));
  eng.spawn([](SimSemaphore& s) -> Process { co_await s.acquire(); }(sem));
  eng.spawn([](SimEvent& e) -> Process { co_await e.wait(); }(ev));
  eng.spawn([](Channel<int>& c) -> Process { (void)co_await c.recv(); }(chan));
  eng.spawn([](BandwidthChannel& b) -> Process { co_await b.transfer(10_GB); }(bw));
  eng.run_until(Time{0} + 1ms);

  eng.shutdown();
  EXPECT_FALSE(mu.locked());
  EXPECT_EQ(bw.active_flows(), 0);

  // Everything works again.
  bool ok = false;
  eng.spawn([](Engine& e, SimMutex& m, SimSemaphore& s, SimEvent& ev2, Channel<int>& c,
               BandwidthChannel& b, bool& done) -> Process {
    {
      auto g = co_await m.lock();
    }
    s.release();
    co_await s.acquire();
    ev2.set();
    co_await ev2.wait();
    c.push(1);
    (void)co_await c.recv();
    co_await b.transfer(1_KB);
    done = true;
    (void)e;
  }(eng, mu, sem, ev, chan, bw, ok));
  eng.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(eng.failed_process_count(), 0);
}

TEST(ShutdownTest, IdempotentAndUsableWhenEmpty) {
  Engine eng;
  eng.shutdown();
  eng.shutdown();
  bool ran = false;
  eng.schedule(1ns, [&] { ran = true; });
  eng.run();
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace portus::sim
