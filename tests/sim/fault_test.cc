// FaultInjector: deterministic kill delivery through the engine.
#include <gtest/gtest.h>

#include "sim/fault.h"

namespace portus::sim {
namespace {

using namespace std::chrono_literals;

TEST(FaultTest, KillNowInvokesCallbackWithMode) {
  Engine eng;
  FaultInjector faults{eng};
  std::vector<FaultMode> hits;
  faults.register_target("d0", [&](FaultMode m) { hits.push_back(m); });

  EXPECT_FALSE(faults.killed("d0"));
  faults.kill_now("d0", FaultMode::kHang);
  EXPECT_TRUE(faults.killed("d0"));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], FaultMode::kHang);
  EXPECT_EQ(faults.kills_fired(), 1);
  eng.shutdown();
}

TEST(FaultTest, KillAfterFiresAtVirtualTime) {
  Engine eng;
  FaultInjector faults{eng};
  Time fired_at{};
  faults.register_target("d0", [&](FaultMode) { fired_at = eng.now(); });

  faults.kill_after("d0", 5ms);
  eng.run();
  EXPECT_EQ(fired_at, 5ms);
  EXPECT_TRUE(faults.killed("d0"));
  eng.shutdown();
}

TEST(FaultTest, SecondKillIsNoOp) {
  Engine eng;
  FaultInjector faults{eng};
  int hits = 0;
  faults.register_target("d0", [&](FaultMode) { ++hits; });

  faults.kill_now("d0");
  faults.kill_now("d0");
  faults.kill_after("d0", 1ms);
  eng.run();
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(faults.kills_fired(), 1);
  eng.shutdown();
}

TEST(FaultTest, DeregisteredTargetIgnoresArmedFault) {
  Engine eng;
  FaultInjector faults{eng};
  int hits = 0;
  faults.register_target("d0", [&](FaultMode) { ++hits; });
  faults.kill_after("d0", 2ms);
  faults.deregister_target("d0");
  eng.run();
  EXPECT_EQ(hits, 0);
  EXPECT_EQ(faults.kills_fired(), 0);
  EXPECT_FALSE(faults.killed("d0"));
  eng.shutdown();
}

TEST(FaultTest, ReRegisterDisarmsFaultsAgainstOldIncarnation) {
  Engine eng;
  FaultInjector faults{eng};
  int old_hits = 0, new_hits = 0;
  faults.register_target("d0", [&](FaultMode) { ++old_hits; });
  faults.kill_after("d0", 2ms);
  // Daemon restarts before the armed fault fires: the new incarnation must
  // not inherit its predecessor's death sentence.
  faults.register_target("d0", [&](FaultMode) { ++new_hits; });
  eng.run();
  EXPECT_EQ(old_hits, 0);
  EXPECT_EQ(new_hits, 0) << "fault armed against the old incarnation is inert";
  EXPECT_EQ(faults.kills_fired(), 0);
  EXPECT_FALSE(faults.killed("d0"));

  // The new incarnation is an ordinary target: fresh faults land on it.
  faults.kill_now("d0", FaultMode::kPowerCut);
  EXPECT_EQ(new_hits, 1);
  EXPECT_TRUE(faults.killed("d0"));
  eng.shutdown();
}

TEST(FaultTest, ReRegisterAfterKillRevivesTarget) {
  Engine eng;
  FaultInjector faults{eng};
  int hits = 0;
  faults.register_target("d0", [&](FaultMode) { ++hits; });
  faults.kill_now("d0");
  EXPECT_TRUE(faults.killed("d0"));

  // Restart: the killed flag must reset, or a revived daemon could never be
  // killed again and a stale armed fault could fire on the wrong incarnation.
  faults.register_target("d0", [&](FaultMode) { ++hits; });
  EXPECT_FALSE(faults.killed("d0"));
  faults.kill_after("d0", 1ms);
  eng.run();
  EXPECT_EQ(hits, 2);
  EXPECT_TRUE(faults.killed("d0"));
  EXPECT_EQ(faults.kills_fired(), 2);
  eng.shutdown();
}

TEST(FaultTest, UnknownTargetThrows) {
  Engine eng;
  FaultInjector faults{eng};
  EXPECT_THROW(faults.kill_now("ghost"), InvalidArgument);
  eng.shutdown();
}

TEST(FaultTest, TargetsLists) {
  Engine eng;
  FaultInjector faults{eng};
  faults.register_target("a", [](FaultMode) {});
  faults.register_target("b", [](FaultMode) {});
  const auto t = faults.targets();
  EXPECT_EQ(t.size(), 2u);
  eng.shutdown();
}

}  // namespace
}  // namespace portus::sim
