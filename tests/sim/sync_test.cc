#include "sim/sync.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace portus::sim {
namespace {

using namespace std::chrono_literals;

// --- SimMutex ---------------------------------------------------------------

Process critical_section(Engine& eng, SimMutex& mu, std::vector<int>& order, int id,
                         Duration hold) {
  auto guard = co_await mu.lock();
  order.push_back(id);
  co_await eng.sleep(hold);
  order.push_back(id + 100);
}

TEST(SimMutexTest, SerializesCriticalSections) {
  Engine eng;
  SimMutex mu{eng};
  std::vector<int> order;
  eng.spawn(critical_section(eng, mu, order, 1, 10ns));
  eng.spawn(critical_section(eng, mu, order, 2, 10ns));
  eng.spawn(critical_section(eng, mu, order, 3, 10ns));
  eng.run();
  // Enter/exit pairs must never interleave.
  EXPECT_EQ(order, (std::vector<int>{1, 101, 2, 102, 3, 103}));
}

TEST(SimMutexTest, FifoFairness) {
  Engine eng;
  SimMutex mu{eng};
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    eng.spawn(critical_section(eng, mu, order, i, 5ns));
  }
  eng.run();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(2 * i)], i);
  }
}

Process lock_released_early(Engine& eng, SimMutex& mu, bool& second_ran) {
  {
    auto guard = co_await mu.lock();
    co_await eng.sleep(10ns);
  }  // guard released here
  co_await eng.sleep(100ns);
  second_ran = mu.locked() || second_ran;
}

TEST(SimMutexTest, GuardReleasesOnScopeExit) {
  Engine eng;
  SimMutex mu{eng};
  bool dummy = false;
  eng.spawn(lock_released_early(eng, mu, dummy));
  eng.run();
  EXPECT_FALSE(mu.locked());
}

// --- SimSemaphore -----------------------------------------------------------

Process sem_worker(Engine& eng, SimSemaphore& sem, int& concurrent, int& peak) {
  co_await sem.acquire();
  ++concurrent;
  peak = std::max(peak, concurrent);
  co_await eng.sleep(10ns);
  --concurrent;
  sem.release();
}

TEST(SimSemaphoreTest, BoundsConcurrency) {
  Engine eng;
  SimSemaphore sem{eng, 3};
  int concurrent = 0;
  int peak = 0;
  for (int i = 0; i < 10; ++i) {
    eng.spawn(sem_worker(eng, sem, concurrent, peak));
  }
  eng.run();
  EXPECT_EQ(peak, 3);
  EXPECT_EQ(concurrent, 0);
  EXPECT_EQ(sem.available(), 3);
}

TEST(SimSemaphoreTest, ReleaseWithoutWaitersIncrementsCount) {
  Engine eng;
  SimSemaphore sem{eng, 0};
  sem.release(5);
  EXPECT_EQ(sem.available(), 5);
}

// --- SimEvent ---------------------------------------------------------------

Process event_waiter(Engine& eng, SimEvent& ev, Time& resumed_at) {
  co_await ev.wait();
  resumed_at = eng.now();
}

TEST(SimEventTest, BroadcastWakesAllWaiters) {
  Engine eng;
  SimEvent ev{eng};
  Time t1{}, t2{}, t3{};
  eng.spawn(event_waiter(eng, ev, t1));
  eng.spawn(event_waiter(eng, ev, t2));
  eng.spawn(event_waiter(eng, ev, t3));
  eng.schedule(500ns, [&] { ev.set(); });
  eng.run();
  EXPECT_EQ(t1, Time{500ns});
  EXPECT_EQ(t2, Time{500ns});
  EXPECT_EQ(t3, Time{500ns});
}

TEST(SimEventTest, WaitAfterSetIsImmediate) {
  Engine eng;
  SimEvent ev{eng};
  ev.set();
  Time t{123ns};
  eng.spawn(event_waiter(eng, ev, t));
  eng.run();
  EXPECT_EQ(t, Time{0ns});
}

// --- Channel ----------------------------------------------------------------

Process producer(Engine& eng, Channel<int>& ch, int n, Duration gap) {
  for (int i = 0; i < n; ++i) {
    co_await ch.send(i);
    co_await eng.sleep(gap);
  }
  ch.close();
}

Process consumer(Engine&, Channel<int>& ch, std::vector<int>& out) {
  try {
    for (;;) {
      out.push_back(co_await ch.recv());
    }
  } catch (const Disconnected&) {
  }
}

TEST(ChannelTest, FifoDelivery) {
  Engine eng;
  Channel<int> ch{eng};
  std::vector<int> got;
  eng.spawn(producer(eng, ch, 10, 5ns));
  eng.spawn(consumer(eng, ch, got));
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_EQ(eng.failed_process_count(), 0);
}

TEST(ChannelTest, ReceiverBlocksUntilSend) {
  Engine eng;
  Channel<int> ch{eng};
  std::vector<int> got;
  eng.spawn(consumer(eng, ch, got));
  eng.schedule(100ns, [&] { ch.push(42); });
  eng.schedule(200ns, [&] { ch.close(); });
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{42}));
}

Process bounded_producer(Engine& eng, Channel<int>& ch, int n, std::vector<Time>& sent_at) {
  for (int i = 0; i < n; ++i) {
    co_await ch.send(i);
    sent_at.push_back(eng.now());
  }
  ch.close();
}

Process slow_consumer(Engine& eng, Channel<int>& ch, std::vector<int>& out) {
  try {
    for (;;) {
      out.push_back(co_await ch.recv());
      co_await eng.sleep(100ns);
    }
  } catch (const Disconnected&) {
  }
}

TEST(ChannelTest, BoundedChannelBackpressuresSender) {
  Engine eng;
  Channel<int> ch{eng, 2};
  std::vector<Time> sent_at;
  std::vector<int> got;
  eng.spawn(bounded_producer(eng, ch, 6, sent_at));
  eng.spawn(slow_consumer(eng, ch, got));
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  ASSERT_EQ(sent_at.size(), 6u);
  // The first sends fill the buffer immediately; later ones wait on space,
  // which only appears every 100ns as the slow consumer drains.
  EXPECT_EQ(sent_at[0], Time{0ns});
  EXPECT_GE(sent_at[5], Time{300ns});
}

TEST(ChannelTest, MultipleConsumersEachGetOneItem) {
  Engine eng;
  Channel<int> ch{eng};
  std::vector<int> a, b;
  eng.spawn(consumer(eng, ch, a));
  eng.spawn(consumer(eng, ch, b));
  eng.schedule(10ns, [&] {
    ch.push(1);
    ch.push(2);
  });
  eng.schedule(20ns, [&] { ch.close(); });
  eng.run();
  EXPECT_EQ(a.size() + b.size(), 2u);
  EXPECT_EQ(a.size(), 1u) << "FIFO waiter order should hand one item to each";
}

TEST(ChannelTest, SendOnClosedChannelThrows) {
  Engine eng;
  Channel<int> ch{eng};
  ch.close();
  bool threw = false;
  eng.spawn([](Engine&, Channel<int>& c, bool& t) -> Process {
    try {
      co_await c.send(1);
    } catch (const Disconnected&) {
      t = true;
    }
  }(eng, ch, threw));
  eng.run();
  EXPECT_TRUE(threw);
}

TEST(ChannelTest, CloseWakesBlockedReceivers) {
  Engine eng;
  Channel<int> ch{eng};
  std::vector<int> got;
  eng.spawn(consumer(eng, ch, got));
  eng.spawn(consumer(eng, ch, got));
  eng.schedule(50ns, [&] { ch.close(); });
  eng.run();
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(eng.failed_process_count(), 0);
}

TEST(ChannelTest, MoveOnlyPayload) {
  Engine eng;
  Channel<std::unique_ptr<std::string>> ch{eng};
  std::string got;
  eng.spawn([](Engine&, Channel<std::unique_ptr<std::string>>& c, std::string& out) -> Process {
    auto v = co_await c.recv();
    out = *v;
  }(eng, ch, got));
  eng.schedule(1ns, [&] { ch.push(std::make_unique<std::string>("zero-copy")); });
  eng.run();
  EXPECT_EQ(got, "zero-copy");
}

}  // namespace
}  // namespace portus::sim
