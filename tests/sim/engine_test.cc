#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/process.h"

namespace portus::sim {
namespace {

using namespace std::chrono_literals;

TEST(EngineTest, StartsAtTimeZero) {
  Engine eng;
  EXPECT_EQ(eng.now(), Time{0});
}

TEST(EngineTest, CallbacksFireInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule(30ns, [&] { order.push_back(3); });
  eng.schedule(10ns, [&] { order.push_back(1); });
  eng.schedule(20ns, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), Time{30ns});
}

TEST(EngineTest, TiesBreakByInsertionOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    eng.schedule(10ns, [&order, i] { order.push_back(i); });
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EngineTest, SchedulingInPastThrows) {
  Engine eng;
  EXPECT_THROW(eng.schedule(Duration{-1}, [] {}), InvalidArgument);
}

TEST(EngineTest, RunUntilStopsAtDeadline) {
  Engine eng;
  int fired = 0;
  eng.schedule(10ns, [&] { ++fired; });
  eng.schedule(20ns, [&] { ++fired; });
  eng.schedule(30ns, [&] { ++fired; });
  EXPECT_FALSE(eng.run_until(Time{20ns}));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eng.now(), Time{20ns});
  EXPECT_TRUE(eng.run_until(Time{100ns}));
  EXPECT_EQ(fired, 3);
}

TEST(EngineTest, NestedSchedulingAdvancesClock) {
  Engine eng;
  Time inner_fire_time{};
  eng.schedule(5ns, [&] {
    eng.schedule(7ns, [&] { inner_fire_time = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(inner_fire_time, Time{12ns});
}

Process sleeper(Engine& eng, Duration d, Time& woke_at) {
  co_await eng.sleep(d);
  woke_at = eng.now();
}

TEST(ProcessTest, SleepAdvancesVirtualTime) {
  Engine eng;
  Time woke{};
  auto p = eng.spawn(sleeper(eng, 1500ns, woke));
  eng.run();
  EXPECT_TRUE(p.done());
  EXPECT_EQ(woke, Time{1500ns});
}

Process multi_sleeper(Engine& eng, std::vector<Time>& marks) {
  marks.push_back(eng.now());
  co_await eng.sleep(10ns);
  marks.push_back(eng.now());
  co_await eng.sleep(0ns);  // zero sleep must not suspend forever
  marks.push_back(eng.now());
  co_await eng.sleep(5ns);
  marks.push_back(eng.now());
}

TEST(ProcessTest, SequentialSleepsAccumulate) {
  Engine eng;
  std::vector<Time> marks;
  eng.spawn(multi_sleeper(eng, marks));
  eng.run();
  ASSERT_EQ(marks.size(), 4u);
  EXPECT_EQ(marks[0], Time{0ns});
  EXPECT_EQ(marks[1], Time{10ns});
  EXPECT_EQ(marks[2], Time{10ns});
  EXPECT_EQ(marks[3], Time{15ns});
}

Process parent(Engine& eng, bool& child_done_first) {
  Time child_end{};
  auto child = eng.spawn(sleeper(eng, 100ns, child_end));
  co_await child.join();
  child_done_first = (child_end == Time{100ns}) && eng.now() >= Time{100ns};
}

TEST(ProcessTest, JoinWaitsForChild) {
  Engine eng;
  bool ok = false;
  eng.spawn(parent(eng, ok));
  eng.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(eng.failed_process_count(), 0);
}

Time g_ignored_time{};

Process joins_completed(Engine& eng, bool& resumed) {
  auto child = eng.spawn(sleeper(eng, 1ns, g_ignored_time));
  co_await eng.sleep(50ns);
  EXPECT_TRUE(child.done());
  co_await child.join();  // join after completion must be immediate
  resumed = true;
}

TEST(ProcessTest, JoinAfterCompletionIsImmediate) {
  Engine eng;
  bool resumed = false;
  eng.spawn(joins_completed(eng, resumed));
  eng.run();
  EXPECT_TRUE(resumed);
}

Process thrower(Engine& eng) {
  co_await eng.sleep(10ns);
  throw Error("boom");
}

Process join_thrower(Engine& eng, bool& caught) {
  auto child = eng.spawn(thrower(eng));
  try {
    co_await child.join();
  } catch (const Error& e) {
    caught = std::string_view{e.what()} == "boom";
  }
}

TEST(ProcessTest, JoinRethrowsChildException) {
  Engine eng;
  bool caught = false;
  eng.spawn(join_thrower(eng, caught));
  eng.run();
  EXPECT_TRUE(caught);
  EXPECT_EQ(eng.failed_process_count(), 0);  // error was observed
}

TEST(ProcessTest, UnobservedFailureIsCounted) {
  Engine eng;
  eng.spawn(thrower(eng));
  eng.run();
  EXPECT_EQ(eng.failed_process_count(), 1);
}

TEST(ProcessTest, CheckRethrowsAndMarksObserved) {
  Engine eng;
  auto p = eng.spawn(thrower(eng));
  eng.run();
  EXPECT_THROW(p.check(), Error);
  EXPECT_EQ(eng.failed_process_count(), 0);
}

TEST(ProcessTest, UnspawnedProcessIsDestroyedCleanly) {
  Engine eng;
  {
    auto p = sleeper(eng, 10ns, g_ignored_time);
    EXPECT_TRUE(p.valid());
    // dropped without spawn: frame must be freed without running the body
  }
  eng.run();
  EXPECT_EQ(eng.events_processed(), 0u);
}

TEST(ProcessTest, EngineDestructionWithLiveProcessesIsClean) {
  Time woke{};
  {
    Engine eng;
    eng.spawn(sleeper(eng, 1h, woke));
    eng.run_until(Time{100ns});
    // Engine destroyed with the sleeper still suspended.
  }
  EXPECT_EQ(woke, Time{});
}

Process fan_out_root(Engine& eng, int& sum) {
  std::vector<Process> children;
  for (int i = 1; i <= 10; ++i) {
    children.push_back(eng.spawn([](Engine& e, int& s, int v) -> Process {
      co_await e.sleep(Duration{v});
      s += v;
    }(eng, sum, i)));
  }
  for (auto& c : children) co_await c.join();
}

TEST(ProcessTest, FanOutFanIn) {
  Engine eng;
  int sum = 0;
  eng.spawn(fan_out_root(eng, sum));
  eng.run();
  EXPECT_EQ(sum, 55);
}

}  // namespace
}  // namespace portus::sim
