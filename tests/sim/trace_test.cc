#include "sim/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/process.h"

namespace portus::sim {
namespace {

using namespace std::chrono_literals;

TEST(TracerTest, SpansRecordVirtualDurations) {
  Engine eng;
  Tracer tracer{eng};
  eng.spawn([](Engine& e, Tracer& t) -> Process {
    auto outer = t.span("checkpoint", "daemon");
    co_await e.sleep(100us);
    {
      auto inner = t.span("persist", "daemon");
      co_await e.sleep(30us);
    }
    co_await e.sleep(10us);
  }(eng, tracer));
  eng.run();
  EXPECT_EQ(tracer.event_count(), 2u);

  std::stringstream out;
  tracer.write_chrome_json(out);
  const auto json = out.str();
  EXPECT_NE(json.find("\"name\":\"checkpoint\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":140.000"), std::string::npos);  // outer: 140 us
  EXPECT_NE(json.find("\"dur\":30.000"), std::string::npos);   // inner: 30 us
}

TEST(TracerTest, InstantAndCounterEvents) {
  Engine eng;
  Tracer tracer{eng};
  eng.schedule(50us, [&] {
    tracer.instant("DO_CHECKPOINT", "client");
    tracer.counter("gpu_util", 0.75);
  });
  eng.run();
  std::stringstream out;
  tracer.write_chrome_json(out);
  const auto json = out.str();
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":50.000"), std::string::npos);
}

TEST(TracerTest, MovedSpanClosesOnce) {
  Engine eng;
  Tracer tracer{eng};
  eng.spawn([](Engine& e, Tracer& t) -> Process {
    auto a = t.span("x", "t");
    co_await e.sleep(1us);
    auto b = std::move(a);
    co_await e.sleep(1us);
    b.end();
    b.end();  // idempotent
  }(eng, tracer));
  eng.run();
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(TracerTest, TrackNamesBecomeThreadMetadata) {
  Engine eng;
  Tracer tracer{eng};
  { auto s = tracer.span("a", "train"); }
  { auto s = tracer.span("b", "portusd"); }
  std::stringstream out;
  tracer.write_chrome_json(out);
  const auto json = out.str();
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("train"), std::string::npos);
  EXPECT_NE(json.find("portusd"), std::string::npos);
}

TEST(TracerTest, EscapesJsonSpecials) {
  Engine eng;
  Tracer tracer{eng};
  { auto s = tracer.span("quote\"back\\slash", "t"); }
  std::stringstream out;
  tracer.write_chrome_json(out);
  EXPECT_NE(out.str().find("quote\\\"back\\\\slash"), std::string::npos);
}

}  // namespace
}  // namespace portus::sim
