#include "sim/bandwidth_channel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/process.h"

namespace portus::sim {
namespace {

using namespace std::chrono_literals;

Process xfer(Engine& eng, BandwidthChannel& ch, Bytes bytes, Bandwidth cap, Time& done_at) {
  co_await ch.transfer(bytes, cap);
  done_at = eng.now();
  (void)eng;
}

double seconds(Time t) { return to_seconds(t); }

TEST(BandwidthChannelTest, SingleFlowRunsAtCapacity) {
  Engine eng;
  BandwidthChannel ch{eng, Bandwidth::gb_per_sec(10.0), "link"};
  Time done{};
  eng.spawn(xfer(eng, ch, 1_GB, Bandwidth::unlimited(), done));
  eng.run();
  EXPECT_NEAR(seconds(done), 0.1, 1e-9);
}

TEST(BandwidthChannelTest, PerFlowCapLimitsRate) {
  Engine eng;
  BandwidthChannel ch{eng, Bandwidth::gb_per_sec(12.5), "nic"};
  Time done{};
  // GPU BAR read cap: 5.8 GB/s even though the NIC could do 12.5.
  eng.spawn(xfer(eng, ch, 5.8_GB, Bandwidth::gb_per_sec(5.8), done));
  eng.run();
  EXPECT_NEAR(seconds(done), 1.0, 1e-6);
}

TEST(BandwidthChannelTest, TwoEqualFlowsShareFairly) {
  Engine eng;
  BandwidthChannel ch{eng, Bandwidth::gb_per_sec(10.0), "link"};
  Time d1{}, d2{};
  eng.spawn(xfer(eng, ch, 1_GB, Bandwidth::unlimited(), d1));
  eng.spawn(xfer(eng, ch, 1_GB, Bandwidth::unlimited(), d2));
  eng.run();
  // Both share 5 GB/s -> 0.2 s each.
  EXPECT_NEAR(seconds(d1), 0.2, 1e-6);
  EXPECT_NEAR(seconds(d2), 0.2, 1e-6);
}

TEST(BandwidthChannelTest, ShortFlowFinishesThenLongFlowSpeedsUp) {
  Engine eng;
  BandwidthChannel ch{eng, Bandwidth::gb_per_sec(10.0), "link"};
  Time small{}, large{};
  eng.spawn(xfer(eng, ch, 1_GB, Bandwidth::unlimited(), small));
  eng.spawn(xfer(eng, ch, 3_GB, Bandwidth::unlimited(), large));
  eng.run();
  // Phase 1: both at 5 GB/s. Small (1 GB) done at t=0.2 s; large has 2 GB
  // left, then runs at 10 GB/s -> +0.2 s => 0.4 s.
  EXPECT_NEAR(seconds(small), 0.2, 1e-6);
  EXPECT_NEAR(seconds(large), 0.4, 1e-6);
}

TEST(BandwidthChannelTest, LateArrivalSlowsExistingFlow) {
  Engine eng;
  BandwidthChannel ch{eng, Bandwidth::gb_per_sec(10.0), "link"};
  Time d1{}, d2{};
  eng.spawn(xfer(eng, ch, 2_GB, Bandwidth::unlimited(), d1));
  eng.schedule(from_seconds(0.1), [&] {
    eng.spawn(xfer(eng, ch, 1_GB, Bandwidth::unlimited(), d2));
  });
  eng.run();
  // Flow1 alone for 0.1 s (1 GB moved), then both share 5 GB/s and each has
  // exactly 1 GB left -> both complete at 0.3 s.
  EXPECT_NEAR(seconds(d1), 0.3, 1e-6);
  EXPECT_NEAR(seconds(d2), 0.3, 1e-6);
}

TEST(BandwidthChannelTest, CappedFlowLeavesResidualToOthers) {
  Engine eng;
  BandwidthChannel ch{eng, Bandwidth::gb_per_sec(12.0), "nic"};
  Time capped{}, uncapped{};
  // Capped flow takes 2 GB/s; the other gets the remaining 10 GB/s.
  eng.spawn(xfer(eng, ch, 2_GB, Bandwidth::gb_per_sec(2.0), capped));
  eng.spawn(xfer(eng, ch, 10_GB, Bandwidth::unlimited(), uncapped));
  eng.run();
  EXPECT_NEAR(seconds(capped), 1.0, 1e-6);
  EXPECT_NEAR(seconds(uncapped), 1.0, 1e-6);
}

TEST(BandwidthChannelTest, ZeroByteTransferIsImmediate) {
  Engine eng;
  BandwidthChannel ch{eng, Bandwidth::gb_per_sec(1.0), "link"};
  Time done{99s};
  eng.spawn(xfer(eng, ch, 0, Bandwidth::unlimited(), done));
  eng.run();
  EXPECT_EQ(done, Time{0ns});
}

TEST(BandwidthChannelTest, ConservesBytes) {
  Engine eng;
  BandwidthChannel ch{eng, Bandwidth::gb_per_sec(7.7), "link"};
  std::vector<Time> dones(7);
  Bytes total = 0;
  for (int i = 0; i < 7; ++i) {
    const Bytes n = (static_cast<Bytes>(i) + 1) * 123_MiB;
    total += n;
    eng.spawn(xfer(eng, ch, n, Bandwidth::unlimited(), dones[static_cast<std::size_t>(i)]));
  }
  eng.run();
  EXPECT_NEAR(ch.total_bytes_transferred(), static_cast<double>(total), 1.0);
  EXPECT_EQ(ch.active_flows(), 0);
}

TEST(BandwidthChannelTest, AggregateNeverExceedsCapacity) {
  Engine eng;
  BandwidthChannel ch{eng, Bandwidth::gb_per_sec(10.0), "link"};
  std::vector<Time> dones(16);
  Bytes total = 0;
  for (int i = 0; i < 16; ++i) {
    const Bytes n = 1_GB;
    total += n;
    eng.spawn(xfer(eng, ch, n, Bandwidth::gb_per_sec(5.8), dones[static_cast<std::size_t>(i)]));
  }
  const Time end = eng.run();
  // 16 GB through a 10 GB/s link: lower-bounded by total/capacity.
  EXPECT_GE(seconds(end), static_cast<double>(total) / 10e9 - 1e-6);
  EXPECT_NEAR(seconds(end), 1.6, 1e-3);
}

// Parameterized: N identical concurrent flows complete at N * t_single.
class FairSharingTest : public ::testing::TestWithParam<int> {};

TEST_P(FairSharingTest, NIdenticalFlows) {
  const int n = GetParam();
  Engine eng;
  BandwidthChannel ch{eng, Bandwidth::gb_per_sec(8.0), "link"};
  std::vector<Time> dones(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    eng.spawn(xfer(eng, ch, 800_MB, Bandwidth::unlimited(), dones[static_cast<std::size_t>(i)]));
  }
  eng.run();
  const double expected = 0.1 * n;  // 800MB at 8GB/s = 0.1s alone
  for (const auto& d : dones) {
    EXPECT_NEAR(seconds(d), expected, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Flows, FairSharingTest, ::testing::Values(1, 2, 3, 4, 8, 16, 32));

TEST(BandwidthChannelTest, BusySecondsTracksUtilization) {
  Engine eng;
  BandwidthChannel ch{eng, Bandwidth::gb_per_sec(10.0), "link"};
  Time done{};
  eng.spawn(xfer(eng, ch, 1_GB, Bandwidth::gb_per_sec(5.0), done));
  eng.run();
  // 0.2s at half capacity = 0.1 busy-seconds.
  EXPECT_NEAR(ch.busy_seconds(), 0.1, 1e-6);
}

TEST(BandwidthChannelTest, UncontendedTimeHelper) {
  Engine eng;
  BandwidthChannel ch{eng, Bandwidth::gb_per_sec(10.0), "link"};
  EXPECT_EQ(ch.uncontended_time(1_GB), from_seconds(0.1));
  EXPECT_EQ(ch.uncontended_time(1_GB, Bandwidth::gb_per_sec(2.0)), from_seconds(0.5));
}

}  // namespace
}  // namespace portus::sim
