// Lifecycle tests spanning daemon restarts, repacking, image persistence,
// and the portusctl surface — the flows a production operator exercises.
#include <gtest/gtest.h>

#include <sstream>

#include "core/client.h"
#include "core/daemon/daemon.h"
#include "core/daemon/repacker.h"
#include "core/portusctl.h"
#include "dnn/model_zoo.h"
#include "net/cluster.h"

namespace portus::core {
namespace {

using namespace std::chrono_literals;

struct Rig {
  sim::Engine eng;
  std::unique_ptr<net::Cluster> cluster = net::Cluster::paper_testbed(eng);
  QpRendezvous rendezvous;
  std::unique_ptr<PortusDaemon> daemon =
      std::make_unique<PortusDaemon>(*cluster, cluster->node("server"), rendezvous);
  Rig() { daemon->start(); }
  ~Rig() { eng.shutdown(); }

  dnn::Model model(const std::string& name, double scale = 0.02) {
    dnn::ModelZoo::Options opt;
    opt.scale = scale;
    return dnn::ModelZoo::create(cluster->node("client-volta").gpu(0), name, opt);
  }
  std::unique_ptr<PortusClient> client(const std::string& endpoint = "portusd") {
    auto& node = cluster->node("client-volta");
    return std::make_unique<PortusClient>(*cluster, node, node.gpu(0), rendezvous, endpoint);
  }
};

TEST(LifecycleTest, FinishedFlagSurvivesDaemonRestart) {
  Rig r;
  auto model = r.model("alexnet");
  auto client = r.client();
  r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await c.checkpoint(m, 1);
    m.mutate_weights(1);
    co_await c.checkpoint(m, 2);
    co_await c.finish(m);
  }(*client, model));
  r.eng.run();
  EXPECT_TRUE(r.daemon->model_table().is_finished("alexnet"));

  // Restart; the flag must come back from PMEM so repack still applies.
  PortusDaemon fresh{*r.cluster, r.cluster->node("server"), r.rendezvous,
                     PortusDaemon::Config{.endpoint = "portusd-2"}};
  fresh.recover();
  EXPECT_TRUE(fresh.model_table().is_finished("alexnet"));

  const auto report = Repacker{fresh}.repack();
  EXPECT_EQ(report.slots_cleared, 1);
  EXPECT_GT(report.freed_outdated, 0u);
}

TEST(LifecycleTest, RepackedModelResumesTrainingWithFreshSlot) {
  Rig r;
  auto model = r.model("resnet50");
  auto client = r.client();
  std::uint32_t crc2 = 0;
  r.eng.spawn([](PortusClient& c, dnn::Model& m, std::uint32_t& crc) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await c.checkpoint(m, 1);
    m.mutate_weights(2);
    crc = m.weights_crc();
    co_await c.checkpoint(m, 2);
    co_await c.finish(m);
  }(*client, model, crc2));
  r.eng.run();

  Repacker{*r.daemon}.repack();  // drops the epoch-1 slot
  {
    auto index = r.daemon->load_index("resnet50");
    int live_slots = 0;
    for (int i = 0; i < 2; ++i) {
      if (index.slot(i).data_offset != 0) ++live_slots;
    }
    EXPECT_EQ(live_slots, 1);
  }

  // The "finished" job resumes anyway (fine-tuning): re-registration must
  // re-provision the missing slot and checkpoints must alternate again.
  PortusDaemon fresh{*r.cluster, r.cluster->node("server"), r.rendezvous,
                     PortusDaemon::Config{.endpoint = "portusd-2"}};
  fresh.recover();
  fresh.start();
  auto client2 = r.client("portusd-2");
  bool ok = false;
  r.eng.spawn([](PortusClient& c, dnn::Model& m, std::uint32_t crc, bool& done) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await c.restore(m);
    EXPECT_EQ(m.weights_crc(), crc);
    for (std::uint64_t i = 3; i <= 5; ++i) {
      m.mutate_weights(i);
      co_await c.checkpoint(m, i);
    }
    done = true;
  }(*client2, model, crc2, ok));
  r.eng.run();
  EXPECT_TRUE(ok);
  auto index = fresh.load_index("resnet50");
  EXPECT_EQ(index.max_epoch(), 5u);
  EXPECT_EQ(index.slot(0).state, SlotState::kDone);
  EXPECT_EQ(index.slot(1).state, SlotState::kDone);
}

TEST(LifecycleTest, DeviceImageRoundTripsWholeCheckpointStore) {
  // Checkpoint two models, image the device, load it into a *different*
  // cluster's daemon, and dump a bit-exact container from the copy.
  Rig r;
  auto m1 = r.model("alexnet");
  auto m2 = r.model("swin_b");
  auto c1 = r.client();
  auto c2 = r.client();
  r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await c.checkpoint(m, 1);
  }(*c1, m1));
  r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await c.checkpoint(m, 1);
  }(*c2, m2));
  r.eng.run();

  r.daemon->device().persist_all();
  std::stringstream image;
  r.daemon->device().save_image(image);

  Rig other;
  other.daemon->device().load_image(image);
  other.daemon->recover();
  EXPECT_EQ(other.daemon->model_table().size(), 2u);

  Portusctl ctl{*other.daemon};
  storage::CheckpointFile dumped;
  bool ok = false;
  other.eng.spawn([](Portusctl& c, storage::CheckpointFile& out, bool& done) -> sim::Process {
    out = co_await c.dump("alexnet");
    done = true;
  }(ctl, dumped, ok));
  other.eng.run();
  ASSERT_TRUE(ok);
  ASSERT_EQ(dumped.tensors.size(), m1.layer_count());
  for (std::size_t i = 0; i < dumped.tensors.size(); ++i) {
    EXPECT_EQ(dumped.tensors[i].data, m1.tensor(i).buffer().download());
  }
}

TEST(LifecycleTest, ViewReflectsSlotStatesAcrossLifecycle) {
  Rig r;
  auto model = r.model("alexnet");
  auto client = r.client();
  Portusctl ctl{*r.daemon};

  r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
  }(*client, model));
  r.eng.run();
  {
    const auto infos = ctl.view();
    ASSERT_EQ(infos.size(), 1u);
    EXPECT_FALSE(infos[0].restorable) << "registered but never checkpointed";
    EXPECT_EQ(infos[0].slots[0].state, SlotState::kEmpty);
  }

  r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
    co_await c.checkpoint(m, 1);
  }(*client, model));
  r.eng.run();
  {
    const auto infos = ctl.view();
    EXPECT_TRUE(infos[0].restorable);
    EXPECT_EQ(infos[0].slots[0].state, SlotState::kDone);
    EXPECT_EQ(infos[0].slots[0].epoch, 1u);
  }
}

TEST(LifecycleTest, DumpWithoutValidVersionFails) {
  Rig r;
  auto model = r.model("alexnet");
  auto client = r.client();
  r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
  }(*client, model));
  r.eng.run();

  Portusctl ctl{*r.daemon};
  bool threw = false;
  r.eng.spawn([](Portusctl& c, bool& t) -> sim::Process {
    try {
      (void)co_await c.dump("alexnet");
    } catch (const NotFound&) {
      t = true;
    }
  }(ctl, threw));
  r.eng.run();
  EXPECT_TRUE(threw);
  // Repacking with no checkpoints present is a harmless no-op.
  const auto report = ctl.repack();
  EXPECT_EQ(report.slots_cleared, 0);
}

TEST(LifecycleTest, ReRegistrationWithDifferentStructureRejected) {
  Rig r;
  auto model = r.model("alexnet");
  auto client = r.client();
  r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await c.checkpoint(m, 1);
  }(*client, model));
  r.eng.run();

  // Hand-craft a registration for the same name with a different tensor
  // count and push it straight over a raw control socket: the daemon must
  // reject it (silently reusing the index would corrupt restores).
  auto& node = r.cluster->node("client-volta");
  auto& pd = node.nic().alloc_pd("impostor-pd");
  auto cq = std::make_unique<rdma::CompletionQueue>(r.eng);
  auto& qp = r.cluster->fabric().create_qp(node.nic(), pd, *cq);

  RegisterModelMsg msg;
  msg.model_name = "alexnet";
  msg.qp_tokens.push_back(r.rendezvous.publish(qp));
  msg.tensors.push_back(TensorDesc{.name = "t0", .size = 4096});

  bool rejected = false;
  r.eng.spawn([](Rig& rig, RegisterModelMsg m, bool& out) -> sim::Process {
    auto socket = co_await rig.cluster->endpoint("portusd").connect();
    auto wire = encode(m);
    socket->send(std::move(wire));
    const auto reply = co_await socket->recv();
    const auto ack = decode_register_ack(reply);
    out = !ack.ok && !ack.error.empty();
  }(r, msg, rejected));
  r.eng.run();
  EXPECT_TRUE(rejected);
  EXPECT_EQ(r.daemon->stats().failed_ops, 1u);

  // The original index is untouched and still restorable.
  auto index = r.daemon->load_index("alexnet");
  EXPECT_EQ(index.tensors().size(), model.layer_count());
  EXPECT_TRUE(index.latest_done_slot().has_value());
}

}  // namespace
}  // namespace portus::core
