// Allocator and repacker concurrency (satellite coverage):
//   * real threads racing CAS claims on the same AllocTable entry — the
//     paper's lock-free fast path must hand a freed extent to exactly one
//     winner;
//   * 16 real threads churning a sharded arena (per-worker regions, refill
//     reservations, cross-shard frees) — extents stay disjoint, stats add
//     up, and the persistent sharded table round-trips through recover();
//   * the quiesce guard — Pause drains in-flight ops and fails non-owner
//     alloc/free while compact()/sweep_gaps() rewrite the table;
//   * the lock-free MPSC completion queue under real producer contention;
//   * repack running while a checkpoint transaction is open — the live
//     session's ACTIVE slot must survive, while genuine crash leftovers
//     (no session) are reclaimed.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <string_view>
#include <thread>
#include <vector>

#include "common/mpsc_queue.h"
#include "core/client.h"
#include "core/daemon/allocator.h"
#include "core/daemon/daemon.h"
#include "core/daemon/repacker.h"
#include "core/daemon/slots.h"
#include "dnn/model_zoo.h"
#include "net/cluster.h"

namespace portus::core {
namespace {

struct AllocFixture {
  pmem::PmemDevice device{"pmem", 64_MiB, 0x1000};
  PmemAllocator::Config config{.table_offset = 4_KiB,
                               .table_capacity = 2048,
                               .data_offset = 1_MiB,
                               .data_end = 64_MiB};
  PmemAllocator alloc{device, config};
};

TEST(AllocatorConcurrencyTest, RacingClaimsOnOneFreedExtent) {
  // One freed extent, two workers allocating the same size concurrently:
  // the FREE -> CLAIMED compare-&-swap must admit exactly one of them; the
  // loser falls through to the bump region. Repeated to give the race a
  // real chance to interleave both ways.
  for (int round = 0; round < 64; ++round) {
    AllocFixture f;
    const auto freed = f.alloc.alloc(4_KiB);
    f.alloc.free(freed);

    std::atomic<int> ready{0};
    Bytes got[2] = {0, 0};
    auto worker = [&](int id) {
      ready.fetch_add(1);
      while (ready.load() < 2) {}  // line both threads up on the CAS
      got[id] = f.alloc.alloc(4_KiB);
    };
    std::thread t0{worker, 0};
    std::thread t1{worker, 1};
    t0.join();
    t1.join();

    EXPECT_NE(got[0], got[1]);
    const int reused = (got[0] == freed ? 1 : 0) + (got[1] == freed ? 1 : 0);
    EXPECT_EQ(reused, 1) << "freed extent must be claimed exactly once";
    EXPECT_EQ(f.alloc.live_bytes(), 8_KiB);
    EXPECT_EQ(f.alloc.free_listed_bytes(), 0u);
  }
}

TEST(AllocatorConcurrencyTest, ParallelAllocFreeKeepsExtentsDisjoint) {
  AllocFixture f;
  constexpr int kWorkers = 4;
  constexpr int kOpsPerWorker = 200;
  std::vector<std::vector<Bytes>> held(kWorkers);

  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&f, &held, w] {
      for (int i = 0; i < kOpsPerWorker; ++i) {
        const Bytes size = 1_KiB + static_cast<Bytes>((w * kOpsPerWorker + i) % 7) * 512;
        held[w].push_back(f.alloc.alloc(size));
        if (i % 3 == 2) {  // free a third of our own extents as we go
          f.alloc.free(held[w].back());
          held[w].pop_back();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Every LIVE extent in the table is disjoint from every other.
  auto extents = f.alloc.extents();
  Bytes prev_end = 0;
  Bytes live = 0;
  for (const auto& e : extents) {
    EXPECT_GE(e.offset, prev_end) << "overlapping extents";
    prev_end = e.offset + e.size;
    if (e.state == AllocState::kLive) live += e.size;
  }
  EXPECT_EQ(live, f.alloc.live_bytes());

  // The DRAM mirror round-trips through the persistent AllocTable.
  f.device.persist_all();
  PmemAllocator recovered{f.device, f.config};
  recovered.recover();
  EXPECT_EQ(recovered.live_bytes(), f.alloc.live_bytes());
  EXPECT_EQ(recovered.free_listed_bytes(), f.alloc.free_listed_bytes());
}

// --- sharded arena: 16 real threads, refill reservations, recover() ---------

struct ShardedFixture {
  pmem::PmemDevice device{"pmem", 64_MiB, 0x1000};
  PmemAllocator::Config config{.table_offset = 4_KiB,
                               .table_capacity = 8192,
                               .data_offset = 1_MiB,
                               .data_end = 64_MiB,
                               .shards = 8,
                               .refill_bytes = 256_KiB};
  PmemAllocator alloc{device, config};
};

TEST(AllocatorConcurrencyTest, ShardedArenaStressSixteenThreads) {
  // Two real threads per shard churn allocs and frees the way daemon
  // workers do: pinned to an arena via alloc_on(), occasionally freeing an
  // extent another thread of the same shard allocated. The sharded fast
  // path must keep every LIVE extent disjoint without ever taking a global
  // lock, and the persistent table it leaves behind must recover
  // bit-exactly on a fresh allocator.
  ShardedFixture f;
  constexpr int kThreads = 16;
  constexpr int kOpsPerThread = 300;
  const std::uint32_t shard_count = f.alloc.shard_count();

  std::vector<std::vector<Bytes>> held(kThreads);
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {}  // maximize interleaving
      const std::uint32_t shard = static_cast<std::uint32_t>(w) % shard_count;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const Bytes size = 256 + static_cast<Bytes>((w * kOpsPerThread + i) % 7) * 512;
        held[w].push_back(f.alloc.alloc_on(shard, size));
        if (i % 3 == 2) {
          f.alloc.free(held[w].back());
          held[w].pop_back();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Every extent the table tracks is disjoint from every other, the LIVE
  // total matches the counter, and every offset a thread still holds maps
  // to exactly one LIVE extent (first-fit reuse may grant a larger extent
  // than requested, so sizes are checked via the table, not the requests).
  auto extents = f.alloc.extents();
  std::sort(extents.begin(), extents.end(),
            [](const auto& a, const auto& b) { return a.offset < b.offset; });
  Bytes prev_end = 0;
  Bytes live = 0;
  std::map<Bytes, int> live_offsets;
  for (const auto& e : extents) {
    EXPECT_GE(e.offset, prev_end) << "overlapping extents";
    prev_end = e.offset + e.size;
    if (e.state == AllocState::kLive) {
      live += e.size;
      ++live_offsets[e.offset];
    }
  }
  EXPECT_EQ(live, f.alloc.live_bytes());
  std::size_t held_count = 0;
  for (const auto& per_thread : held) {
    held_count += per_thread.size();
    for (const auto off : per_thread) {
      EXPECT_EQ(live_offsets[off], 1) << "held offset not a unique LIVE extent";
    }
  }
  EXPECT_EQ(held_count, live_offsets.size())
      << "LIVE extents the threads do not hold";

  // Per-shard accounting adds up: every op landed somewhere, and the
  // refill path (the only global-bump touch) actually ran under load.
  const auto stats = f.alloc.shard_stats();
  ASSERT_EQ(stats.size(), shard_count);
  std::uint64_t allocs = 0, frees = 0, refills = 0;
  Bytes shard_live = 0;
  for (const auto& s : stats) {
    allocs += s.allocs;
    frees += s.frees;
    refills += s.refills;
    shard_live += s.live;
  }
  EXPECT_EQ(allocs, static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(frees, static_cast<std::uint64_t>(kThreads) * (kOpsPerThread / 3));
  EXPECT_GT(refills, 0u) << "refill reservations never exercised";
  EXPECT_EQ(shard_live, f.alloc.live_bytes());

  // The persistent sharded table round-trips: a fresh allocator over the
  // same image recovers the exact live/free accounting (reservation tails
  // reset; they are heap gaps until sweep_gaps() adopts them).
  f.device.persist_all();
  PmemAllocator recovered{f.device, f.config};
  recovered.recover();
  EXPECT_EQ(recovered.shard_count(), shard_count);
  EXPECT_EQ(recovered.live_bytes(), f.alloc.live_bytes());
  EXPECT_EQ(recovered.free_listed_bytes(), f.alloc.free_listed_bytes());

  // The recovered allocator is immediately serviceable on every shard.
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    const auto off = recovered.alloc_on(s, 1_KiB);
    EXPECT_GE(off, f.config.data_offset);
    recovered.free(off);
  }
}

TEST(AllocatorConcurrencyTest, PauseFailsNonOwnersAndExemptsOwner) {
  ShardedFixture f;
  const auto mine = f.alloc.alloc(4_KiB);

  PmemAllocator::Pause pause{f.alloc};
  EXPECT_TRUE(f.alloc.quiesced());

  // Non-owner threads must fail loudly instead of racing the table rewrite.
  std::thread other{[&] {
    EXPECT_THROW(f.alloc.alloc(1_KiB), InvalidArgument);
    EXPECT_THROW(f.alloc.free(mine), InvalidArgument);
  }};
  other.join();

  // The owning thread's own ops are exempt (repacker/fsck free extents
  // while holding the Pause), and the guard is re-entrant.
  const auto owner_extent = f.alloc.alloc(1_KiB);
  {
    PmemAllocator::Pause nested{f.alloc};
    f.alloc.free(owner_extent);
  }
  EXPECT_TRUE(f.alloc.quiesced()) << "nested release dropped the outer pause";
  f.alloc.free(mine);
}

TEST(AllocatorConcurrencyTest, CompactAndSweepUnderChurnStayConsistent) {
  // Maintenance passes self-quiesce; churn threads treat the transient
  // InvalidArgument as backpressure and retry, exactly like a daemon worker
  // re-admitting a request after a repack pass. Nothing may be lost or
  // double-handed either way.
  ShardedFixture f;
  constexpr int kThreads = 8;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> completed{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      std::vector<Bytes> mine;
      const std::uint32_t shard = static_cast<std::uint32_t>(w) % f.alloc.shard_count();
      while (!stop.load(std::memory_order_relaxed)) {
        try {
          if (mine.size() < 16) {
            mine.push_back(f.alloc.alloc_on(shard, 512 + (w % 4) * 256));
          } else {
            f.alloc.free(mine.back());
            mine.pop_back();
          }
          completed.fetch_add(1, std::memory_order_relaxed);
        } catch (const InvalidArgument&) {
          // quiesced: retry after the maintenance pass releases
        }
      }
      for (const auto off : mine) {
        for (;;) {
          try {
            f.alloc.free(off);
            break;
          } catch (const InvalidArgument&) {
          }
        }
      }
    });
  }

  for (int round = 0; round < 20; ++round) {
    f.alloc.compact();
    f.alloc.sweep_gaps();
    // Insist on churn progress between passes — otherwise the maintenance
    // loop can finish before the workers are even scheduled and the test
    // never interleaves the two.
    const auto target = completed.load() + 50;
    while (completed.load() < target) std::this_thread::yield();
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_GT(completed.load(), 0u);

  // Quiet now: a final compact + sweep must leave zero leaks — every byte
  // below the bump pointer tracked by exactly one table entry.
  f.alloc.compact();
  f.alloc.sweep_gaps();
  EXPECT_EQ(f.alloc.live_bytes(), 0u) << "all extents were freed";
  auto extents = f.alloc.extents();
  std::sort(extents.begin(), extents.end(),
            [](const auto& a, const auto& b) { return a.offset < b.offset; });
  Bytes tracked = 0;
  Bytes prev_end = 0;
  for (const auto& e : extents) {
    EXPECT_GE(e.offset, prev_end) << "overlapping extents";
    prev_end = e.offset + e.size;
    tracked += e.size;
  }
  EXPECT_EQ(tracked, f.alloc.bump() - f.config.data_offset) << "heap bytes leaked";

  f.device.persist_all();
  PmemAllocator recovered{f.device, f.config};
  recovered.recover();
  EXPECT_EQ(recovered.live_bytes(), 0u);
}

TEST(AllocatorConcurrencyTest, CheckpointStormVsIncrementalCompaction) {
  // The online repacker's schedule from a real-thread angle: checkpoint
  // workers churn paired slot extents (every model holds two slots; a
  // finished job frees both) while a dedicated maintenance thread runs
  // *incremental* compaction — many short bounded Pause windows, each
  // freeing and sweeping a little, instead of one long stop-the-world
  // quiesce. Workers treat the transient InvalidArgument during a window
  // exactly like admission Backpressure and retry.
  ShardedFixture f;
  constexpr int kWorkers = 8;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> checkpoints{0};

  // Retry exactly ONE allocator call until it clears a maintenance window.
  // The retry unit must be the individual op, not a compound sequence: a
  // window opening between free(slot0) and free(slot1) must not re-run the
  // first free (double free) or drop an already-granted allocation.
  const auto with_retry = [&](auto op) {
    for (;;) {
      try {
        return op();
      } catch (const InvalidArgument& e) {
        if (std::string_view{e.what()}.find("quiesced") == std::string_view::npos) throw;
        std::this_thread::yield();  // window open: back off and retry
      }
    }
  };

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      const std::uint32_t shard = static_cast<std::uint32_t>(w) % f.alloc.shard_count();
      std::vector<std::pair<Bytes, Bytes>> slots;  // (slot0, slot1) per model
      while (!stop.load(std::memory_order_relaxed)) {
        if (slots.size() < 8) {
          const Bytes size = 1_KiB + static_cast<Bytes>(w % 4) * 512;
          const auto s0 = with_retry([&] { return f.alloc.alloc_on(shard, size); });
          const auto s1 = with_retry([&] { return f.alloc.alloc_on(shard, size); });
          slots.emplace_back(s0, s1);
        } else {  // FINISH_JOB: both slots of the oldest model reclaimed
          with_retry([&] { f.alloc.free(slots.front().first); });
          with_retry([&] { f.alloc.free(slots.front().second); });
          slots.erase(slots.begin());
        }
        checkpoints.fetch_add(1, std::memory_order_relaxed);
      }
      for (const auto& [s0, s1] : slots) {
        with_retry([&] { f.alloc.free(s0); });
        with_retry([&] { f.alloc.free(s1); });
      }
    });
  }

  // Maintenance thread: 24 short windows. Holding the Pause while calling
  // the self-quiescing sweeps is the owner-exemption/re-entrancy contract
  // repack_online relies on.
  std::atomic<int> windows{0};
  std::thread maintenance{[&] {
    for (int round = 0; round < 24; ++round) {
      {
        PmemAllocator::Pause pause{f.alloc};
        f.alloc.sweep_gaps();
        f.alloc.compact();
      }
      windows.fetch_add(1, std::memory_order_relaxed);
      // Insist on churn progress between windows so the two actually
      // interleave instead of the maintenance loop finishing first.
      const auto target = checkpoints.load() + 25;
      while (checkpoints.load() < target) std::this_thread::yield();
    }
  }};
  maintenance.join();
  stop.store(true);
  for (auto& t : workers) t.join();
  EXPECT_EQ(windows.load(), 24);
  EXPECT_GT(checkpoints.load(), 0u);

  // Quiet: everything was freed, and no byte below the bump pointer leaked
  // through the interleaved windows.
  f.alloc.compact();
  f.alloc.sweep_gaps();
  EXPECT_EQ(f.alloc.live_bytes(), 0u);
  auto extents = f.alloc.extents();
  std::sort(extents.begin(), extents.end(),
            [](const auto& a, const auto& b) { return a.offset < b.offset; });
  Bytes tracked = 0;
  Bytes prev_end = 0;
  for (const auto& e : extents) {
    EXPECT_GE(e.offset, prev_end) << "overlapping extents";
    prev_end = e.offset + e.size;
    tracked += e.size;
  }
  EXPECT_EQ(tracked, f.alloc.bump() - f.config.data_offset) << "heap bytes leaked";

  f.device.persist_all();
  PmemAllocator recovered{f.device, f.config};
  recovered.recover();
  EXPECT_EQ(recovered.live_bytes(), 0u);
}

// --- lock-free completion queue ---------------------------------------------

TEST(MpscQueueConcurrencyTest, EightProducersOneConsumerDeliverEverything) {
  // The RDMA completion path pushes from NIC-side executors and drains from
  // the daemon poller. Per-producer FIFO order and zero loss under real
  // contention are the two properties the CQ relies on.
  MpscQueue<std::uint64_t> q;
  constexpr int kProducers = 8;
  constexpr std::uint64_t kPerProducer = 5000;

  std::vector<std::uint64_t> got;
  got.reserve(kProducers * kPerProducer);
  std::thread consumer{[&] {
    while (got.size() < kProducers * kPerProducer) {
      if (auto v = q.try_pop()) {
        got.push_back(*v);
      } else {
        std::this_thread::yield();  // transiently busy or empty
      }
    }
  }};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        q.push(static_cast<std::uint64_t>(p) * 1'000'000 + i);
      }
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();

  ASSERT_EQ(got.size(), kProducers * kPerProducer);
  std::map<std::uint64_t, std::uint64_t> next;  // producer -> expected seq
  for (const auto v : got) {
    const auto p = v / 1'000'000;
    const auto i = v % 1'000'000;
    EXPECT_EQ(i, next[p]) << "per-producer FIFO order violated";
    next[p] = i + 1;
  }
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next[static_cast<std::uint64_t>(p)], kPerProducer);
  }
  EXPECT_TRUE(q.empty());
}

struct Rig {
  sim::Engine eng;
  std::unique_ptr<net::Cluster> cluster = net::Cluster::paper_testbed(eng);
  QpRendezvous rendezvous;
  std::unique_ptr<PortusDaemon> daemon = std::make_unique<PortusDaemon>(
      *cluster, cluster->node("server"), rendezvous, PortusDaemon::Config{});
  Rig() { daemon->start(); }
  ~Rig() { eng.shutdown(); }
};

TEST(RepackerConcurrencyTest, RepackSparesOpenCheckpointTxn) {
  Rig r;
  auto& volta = r.cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.01;
  auto model = dnn::ModelZoo::create(volta.gpu(0), "alexnet", opt);
  PortusClient client{*r.cluster, volta, volta.gpu(0), r.rendezvous};
  r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
  }(client, model));
  r.eng.run();

  MIndex* idx = r.daemon->find_live_index("alexnet");
  ASSERT_NE(idx, nullptr);

  // A checkpoint is mid-flight: its slot is ACTIVE with the DONE flag still
  // pending. Repack must not treat it as a crash leftover — the session is
  // live and the transfer may still be running.
  auto txn = CheckpointTxn::begin(*idx);
  const auto active_offset = idx->slot(txn.slot()).data_offset;
  ASSERT_NE(active_offset, 0u);
  ASSERT_EQ(idx->slot(txn.slot()).state, SlotState::kActive);

  const auto report = Repacker{*r.daemon}.repack();
  EXPECT_EQ(report.slots_cleared, 0);
  EXPECT_EQ(report.freed_crashed, 0u);
  EXPECT_EQ(idx->slot(txn.slot()).state, SlotState::kActive);
  EXPECT_EQ(idx->slot(txn.slot()).data_offset, active_offset);

  // The surviving transaction commits normally after the repack pass.
  txn.commit();
  EXPECT_EQ(idx->slot(txn.slot()).state, SlotState::kDone);
  EXPECT_EQ(idx->max_epoch(), 1u);
}

TEST(RepackerConcurrencyTest, RepackReclaimsActiveSlotWithoutSession) {
  Rig r;
  auto& volta = r.cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.01;
  auto model = dnn::ModelZoo::create(volta.gpu(0), "alexnet", opt);
  PortusClient client{*r.cluster, volta, volta.gpu(0), r.rendezvous};
  r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await c.checkpoint(m, 1);
  }(client, model));
  r.eng.run();

  // Crash mid-checkpoint: the second slot goes ACTIVE, then the daemon
  // restarts. No session survives, so the ACTIVE slot is a crash leftover.
  {
    MIndex* idx = r.daemon->find_live_index("alexnet");
    ASSERT_NE(idx, nullptr);
    auto txn = CheckpointTxn::begin(*idx);
    (void)txn;  // never committed: simulated crash before DONE
  }
  r.daemon->device().persist_all();
  r.daemon->recover();
  ASSERT_EQ(r.daemon->find_live_index("alexnet"), nullptr);

  const auto report = Repacker{*r.daemon}.repack();
  EXPECT_EQ(report.slots_cleared, 1);
  EXPECT_GT(report.freed_crashed, 0u);

  // The committed epoch-1 version is untouched and still restorable.
  const auto idx = r.daemon->load_index("alexnet");
  ASSERT_TRUE(idx.latest_done_slot().has_value());
  EXPECT_EQ(idx.slot(*idx.latest_done_slot()).epoch, 1u);
}

}  // namespace
}  // namespace portus::core
