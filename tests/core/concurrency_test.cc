// Allocator and repacker concurrency (satellite coverage):
//   * real threads racing CAS claims on the same AllocTable entry — the
//     paper's lock-free fast path must hand a freed extent to exactly one
//     winner;
//   * repack running while a checkpoint transaction is open — the live
//     session's ACTIVE slot must survive, while genuine crash leftovers
//     (no session) are reclaimed.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/client.h"
#include "core/daemon/allocator.h"
#include "core/daemon/daemon.h"
#include "core/daemon/repacker.h"
#include "core/daemon/slots.h"
#include "dnn/model_zoo.h"
#include "net/cluster.h"

namespace portus::core {
namespace {

struct AllocFixture {
  pmem::PmemDevice device{"pmem", 64_MiB, 0x1000};
  PmemAllocator::Config config{.table_offset = 4_KiB,
                               .table_capacity = 2048,
                               .data_offset = 1_MiB,
                               .data_end = 64_MiB};
  PmemAllocator alloc{device, config};
};

TEST(AllocatorConcurrencyTest, RacingClaimsOnOneFreedExtent) {
  // One freed extent, two workers allocating the same size concurrently:
  // the FREE -> CLAIMED compare-&-swap must admit exactly one of them; the
  // loser falls through to the bump region. Repeated to give the race a
  // real chance to interleave both ways.
  for (int round = 0; round < 64; ++round) {
    AllocFixture f;
    const auto freed = f.alloc.alloc(4_KiB);
    f.alloc.free(freed);

    std::atomic<int> ready{0};
    Bytes got[2] = {0, 0};
    auto worker = [&](int id) {
      ready.fetch_add(1);
      while (ready.load() < 2) {}  // line both threads up on the CAS
      got[id] = f.alloc.alloc(4_KiB);
    };
    std::thread t0{worker, 0};
    std::thread t1{worker, 1};
    t0.join();
    t1.join();

    EXPECT_NE(got[0], got[1]);
    const int reused = (got[0] == freed ? 1 : 0) + (got[1] == freed ? 1 : 0);
    EXPECT_EQ(reused, 1) << "freed extent must be claimed exactly once";
    EXPECT_EQ(f.alloc.live_bytes(), 8_KiB);
    EXPECT_EQ(f.alloc.free_listed_bytes(), 0u);
  }
}

TEST(AllocatorConcurrencyTest, ParallelAllocFreeKeepsExtentsDisjoint) {
  AllocFixture f;
  constexpr int kWorkers = 4;
  constexpr int kOpsPerWorker = 200;
  std::vector<std::vector<Bytes>> held(kWorkers);

  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&f, &held, w] {
      for (int i = 0; i < kOpsPerWorker; ++i) {
        const Bytes size = 1_KiB + static_cast<Bytes>((w * kOpsPerWorker + i) % 7) * 512;
        held[w].push_back(f.alloc.alloc(size));
        if (i % 3 == 2) {  // free a third of our own extents as we go
          f.alloc.free(held[w].back());
          held[w].pop_back();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Every LIVE extent in the table is disjoint from every other.
  auto extents = f.alloc.extents();
  Bytes prev_end = 0;
  Bytes live = 0;
  for (const auto& e : extents) {
    EXPECT_GE(e.offset, prev_end) << "overlapping extents";
    prev_end = e.offset + e.size;
    if (e.state == AllocState::kLive) live += e.size;
  }
  EXPECT_EQ(live, f.alloc.live_bytes());

  // The DRAM mirror round-trips through the persistent AllocTable.
  f.device.persist_all();
  PmemAllocator recovered{f.device, f.config};
  recovered.recover();
  EXPECT_EQ(recovered.live_bytes(), f.alloc.live_bytes());
  EXPECT_EQ(recovered.free_listed_bytes(), f.alloc.free_listed_bytes());
}

struct Rig {
  sim::Engine eng;
  std::unique_ptr<net::Cluster> cluster = net::Cluster::paper_testbed(eng);
  QpRendezvous rendezvous;
  std::unique_ptr<PortusDaemon> daemon = std::make_unique<PortusDaemon>(
      *cluster, cluster->node("server"), rendezvous, PortusDaemon::Config{});
  Rig() { daemon->start(); }
  ~Rig() { eng.shutdown(); }
};

TEST(RepackerConcurrencyTest, RepackSparesOpenCheckpointTxn) {
  Rig r;
  auto& volta = r.cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.01;
  auto model = dnn::ModelZoo::create(volta.gpu(0), "alexnet", opt);
  PortusClient client{*r.cluster, volta, volta.gpu(0), r.rendezvous};
  r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
  }(client, model));
  r.eng.run();

  MIndex* idx = r.daemon->find_live_index("alexnet");
  ASSERT_NE(idx, nullptr);

  // A checkpoint is mid-flight: its slot is ACTIVE with the DONE flag still
  // pending. Repack must not treat it as a crash leftover — the session is
  // live and the transfer may still be running.
  auto txn = CheckpointTxn::begin(*idx);
  const auto active_offset = idx->slot(txn.slot()).data_offset;
  ASSERT_NE(active_offset, 0u);
  ASSERT_EQ(idx->slot(txn.slot()).state, SlotState::kActive);

  const auto report = Repacker{*r.daemon}.repack();
  EXPECT_EQ(report.slots_cleared, 0);
  EXPECT_EQ(report.freed_crashed, 0u);
  EXPECT_EQ(idx->slot(txn.slot()).state, SlotState::kActive);
  EXPECT_EQ(idx->slot(txn.slot()).data_offset, active_offset);

  // The surviving transaction commits normally after the repack pass.
  txn.commit();
  EXPECT_EQ(idx->slot(txn.slot()).state, SlotState::kDone);
  EXPECT_EQ(idx->max_epoch(), 1u);
}

TEST(RepackerConcurrencyTest, RepackReclaimsActiveSlotWithoutSession) {
  Rig r;
  auto& volta = r.cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.01;
  auto model = dnn::ModelZoo::create(volta.gpu(0), "alexnet", opt);
  PortusClient client{*r.cluster, volta, volta.gpu(0), r.rendezvous};
  r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await c.checkpoint(m, 1);
  }(client, model));
  r.eng.run();

  // Crash mid-checkpoint: the second slot goes ACTIVE, then the daemon
  // restarts. No session survives, so the ACTIVE slot is a crash leftover.
  {
    MIndex* idx = r.daemon->find_live_index("alexnet");
    ASSERT_NE(idx, nullptr);
    auto txn = CheckpointTxn::begin(*idx);
    (void)txn;  // never committed: simulated crash before DONE
  }
  r.daemon->device().persist_all();
  r.daemon->recover();
  ASSERT_EQ(r.daemon->find_live_index("alexnet"), nullptr);

  const auto report = Repacker{*r.daemon}.repack();
  EXPECT_EQ(report.slots_cleared, 1);
  EXPECT_GT(report.freed_crashed, 0u);

  // The committed epoch-1 version is untouched and still restorable.
  const auto idx = r.daemon->load_index("alexnet");
  ASSERT_TRUE(idx.latest_done_slot().has_value());
  EXPECT_EQ(idx.slot(*idx.latest_done_slot()).epoch, 1u);
}

}  // namespace
}  // namespace portus::core
