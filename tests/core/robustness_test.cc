// Robustness and adversarial-input tests: torn persistent state, protocol
// fuzzing, misuse of the client API, and hook cadence edge cases.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/async_coordinator.h"
#include "core/client.h"
#include "core/daemon/allocator.h"
#include "core/daemon/daemon.h"
#include "dnn/model_zoo.h"
#include "dnn/training.h"
#include "net/cluster.h"

namespace portus::core {
namespace {

using namespace std::chrono_literals;

// --- allocator under torn AllocTable entries --------------------------------

TEST(RobustnessTest, AllocatorRecoverySkipsTornEntries) {
  pmem::PmemDevice device{"pmem", 64_MiB, 0x1000};
  const PmemAllocator::Config config{.table_offset = 4_KiB,
                                     .table_capacity = 128,
                                     .data_offset = 1_MiB,
                                     .data_end = 64_MiB};
  Bytes a = 0;
  {
    PmemAllocator alloc{device, config};
    a = alloc.alloc(100_KiB);
    alloc.alloc(200_KiB);
    // Scramble the second entry as a torn write would leave it.
    device.write(config.table_offset + PmemAllocator::kEntrySize, std::vector<std::byte>(8));
    device.persist_all();
  }
  PmemAllocator recovered{device, config};
  recovered.recover();
  // Entry 0 survives; entry 1 is dropped (its extent is unreferenced, so
  // reuse is safe). New allocations still work and never overlap entry 0.
  EXPECT_EQ(recovered.live_bytes(), 100_KiB);
  const auto b = recovered.alloc(50_KiB);
  EXPECT_TRUE(b >= a + 100_KiB || b + 50_KiB <= a) << "no overlap with live data";
}

// --- protocol fuzz -----------------------------------------------------------

TEST(RobustnessTest, ProtocolDecodersNeverCrashOnGarbage) {
  Rng rng{2024};
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::byte> junk(rng.uniform(0, 300));
    rng.fill(junk);
    // Each decoder must either parse or throw a typed error — never UB.
    const auto probe = [&](auto&& decode) {
      try {
        decode(junk);
      } catch (const Error&) {
        // expected for garbage
      }
    };
    probe([](auto b) { return decode_register_model(b); });
    probe([](auto b) { return decode_register_ack(b); });
    probe([](auto b) { return decode_checkpoint_req(b); });
    probe([](auto b) { return decode_checkpoint_done(b); });
    probe([](auto b) { return decode_restore_req(b); });
    probe([](auto b) { return decode_restore_done(b); });
    probe([](auto b) { return decode_finish_job(b); });
  }
}

TEST(RobustnessTest, TruncatedValidMessagesThrow) {
  RegisterModelMsg msg;
  msg.model_name = "bert";
  msg.tensors.push_back(TensorDesc{.name = "t", .shape = {4, 4}, .size = 64});
  const auto wire = encode(msg);
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    std::span<const std::byte> truncated{wire.data(), cut};
    EXPECT_THROW((void)decode_register_model(truncated), Error) << "cut at " << cut;
  }
}

// --- client misuse ------------------------------------------------------------

struct Rig {
  sim::Engine eng;
  std::unique_ptr<net::Cluster> cluster = net::Cluster::paper_testbed(eng);
  QpRendezvous rendezvous;
  std::unique_ptr<PortusDaemon> daemon =
      std::make_unique<PortusDaemon>(*cluster, cluster->node("server"), rendezvous);
  Rig() { daemon->start(); }
  ~Rig() { eng.shutdown(); }
};

TEST(RobustnessTest, ConcurrentOpsOnOneClientAreRejected) {
  Rig r;
  auto& node = r.cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.05;
  auto model = dnn::ModelZoo::create(node.gpu(0), "vgg19_bn", opt);
  PortusClient client{*r.cluster, node, node.gpu(0), r.rendezvous};

  bool second_rejected = false;
  r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await c.checkpoint(m, 1);  // long-ish op
  }(client, model));
  r.eng.spawn([](sim::Engine& eng, PortusClient& c, dnn::Model& m, bool& rejected)
                  -> sim::Process {
    co_await eng.sleep(3ms);  // while registration/checkpoint is in flight
    try {
      co_await c.checkpoint(m, 2);
    } catch (const Error&) {
      rejected = true;
    }
  }(r.eng, client, model, second_rejected));
  r.eng.run();
  EXPECT_TRUE(second_rejected)
      << "one control-plane operation per client at a time is the contract";
}

TEST(RobustnessTest, CheckpointOfUnregisteredModelFails) {
  Rig r;
  auto& node = r.cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.02;
  auto model = dnn::ModelZoo::create(node.gpu(0), "alexnet", opt);
  PortusClient client{*r.cluster, node, node.gpu(0), r.rendezvous};
  bool threw = false;
  r.eng.spawn([](PortusClient& c, dnn::Model& m, bool& t) -> sim::Process {
    co_await c.connect();
    try {
      co_await c.checkpoint(m, 1);  // never registered
    } catch (const Error&) {
      t = true;
    }
  }(client, model, threw));
  r.eng.run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(r.daemon->stats().failed_ops, 1u);
}

TEST(RobustnessTest, OperationsBeforeConnectFail) {
  Rig r;
  auto& node = r.cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.02;
  auto model = dnn::ModelZoo::create(node.gpu(0), "alexnet", opt);
  PortusClient client{*r.cluster, node, node.gpu(0), r.rendezvous};
  auto p = r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
    co_await c.register_model(m);  // no connect()
  }(client, model));
  r.eng.run();
  EXPECT_THROW(p.check(), Error);
}

// --- hook cadence -------------------------------------------------------------

TEST(RobustnessTest, PortusHookHonorsInterval) {
  Rig r;
  auto& node = r.cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.02;
  auto model = dnn::ModelZoo::create(node.gpu(0), "alexnet", opt);
  PortusClient client{*r.cluster, node, node.gpu(0), r.rendezvous};
  PortusHook hook{client, model, /*interval=*/3, PortusHook::Mode::kSync};
  dnn::TrainingStats stats;
  const dnn::TrainingConfig cfg{.iteration_time = 10ms, .update_fraction = 0.1,
                                .busy_fraction = 1.0, .mutate_weights = false};
  r.eng.spawn([](Rig& rig, net::Node& n, PortusClient& c, dnn::Model& m, PortusHook& h,
                 dnn::TrainingConfig config, dnn::TrainingStats& st) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await rig.eng.spawn(dnn::train(rig.eng, n.gpu(0), &m, config, 10, h, st)).join();
    co_await h.drain();
  }(r, node, client, model, hook, cfg, stats));
  r.eng.run();
  EXPECT_EQ(hook.stats().triggered, 3u);  // iterations 3, 6, 9
  EXPECT_EQ(hook.stats().completed, 3u);
  EXPECT_EQ(hook.stats().last_committed_iteration, 9u);
  EXPECT_EQ(r.daemon->stats().checkpoints, 3u);
}

TEST(RobustnessTest, HookIntervalZeroRejected) {
  Rig r;
  auto& node = r.cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.02;
  auto model = dnn::ModelZoo::create(node.gpu(0), "alexnet", opt);
  PortusClient client{*r.cluster, node, node.gpu(0), r.rendezvous};
  EXPECT_THROW((PortusHook{client, model, 0, PortusHook::Mode::kSync}), InvalidArgument);
}

// --- control-plane endpoint ----------------------------------------------------

TEST(RobustnessTest, ManyClientsConnectConcurrently) {
  Rig r;
  auto& node = r.cluster->node("client-volta");
  constexpr int kClients = 12;
  std::vector<std::unique_ptr<PortusClient>> clients;
  std::vector<dnn::Model> models;
  dnn::ModelZoo::Options opt;
  opt.scale = 0.01;
  for (int i = 0; i < kClients; ++i) {
    models.push_back(dnn::ModelZoo::create(
        node.gpu(static_cast<std::size_t>(i) % node.gpu_count()),
        dnn::ModelZoo::all()[static_cast<std::size_t>(i)].name, opt));
    clients.push_back(std::make_unique<PortusClient>(
        *r.cluster, node, node.gpu(static_cast<std::size_t>(i) % node.gpu_count()),
        r.rendezvous));
  }
  for (int i = 0; i < kClients; ++i) {
    r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
      co_await c.connect();
      co_await c.register_model(m);
      co_await c.checkpoint(m, 1);
    }(*clients[static_cast<std::size_t>(i)], models[static_cast<std::size_t>(i)]));
  }
  r.eng.run();
  EXPECT_EQ(r.daemon->stats().registrations, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(r.daemon->stats().checkpoints, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(r.eng.failed_process_count(), 0);
}

}  // namespace
}  // namespace portus::core
