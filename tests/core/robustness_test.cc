// Robustness and adversarial-input tests: torn persistent state, protocol
// fuzzing, misuse of the client API, and hook cadence edge cases.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/async_coordinator.h"
#include "core/client.h"
#include "core/cluster/manifest.h"
#include "core/daemon/allocator.h"
#include "core/daemon/daemon.h"
#include "dnn/model_zoo.h"
#include "dnn/training.h"
#include "net/cluster.h"

namespace portus::core {
namespace {

using namespace std::chrono_literals;

// --- allocator under torn AllocTable entries --------------------------------

TEST(RobustnessTest, AllocatorRecoverySkipsTornEntriesAndSweepReclaims) {
  pmem::PmemDevice device{"pmem", 64_MiB, 0x1000};
  const PmemAllocator::Config config{.table_offset = 4_KiB,
                                     .table_capacity = 128,
                                     .data_offset = 1_MiB,
                                     .data_end = 64_MiB};
  Bytes b = 0;
  {
    PmemAllocator alloc{device, config};
    alloc.alloc(100_KiB);
    b = alloc.alloc(200_KiB);
    alloc.alloc(50_KiB);
    // Scramble the middle entry as a torn write would leave it (entry slots
    // start after the sharded-table header).
    device.write(config.table_offset + PmemAllocator::kHeaderSize + PmemAllocator::kEntrySize,
                 std::vector<std::byte>(8));
    device.persist_all();
  }
  PmemAllocator recovered{device, config};
  recovered.recover();
  // Entries 0 and 2 survive; the torn entry 1 is dropped, so its extent is
  // a hole *between* live extents — below the bump pointer, unreachable by
  // compact(), leaked by recover() alone.
  EXPECT_EQ(recovered.live_bytes(), 150_KiB);
  EXPECT_EQ(recovered.free_listed_bytes(), 0u);

  // The repacker's gap sweep must adopt exactly the dropped extent back.
  EXPECT_EQ(recovered.sweep_gaps(), 200_KiB);
  EXPECT_EQ(recovered.free_listed_bytes(), 200_KiB);

  // First-fit reuse then hands the reclaimed hole out again...
  EXPECT_EQ(recovered.alloc(200_KiB), b);
  // ...and nothing the allocator tracks ever overlaps.
  auto extents = recovered.extents();
  std::sort(extents.begin(), extents.end(),
            [](const auto& x, const auto& y) { return x.offset < y.offset; });
  Bytes prev_end = 0;
  for (const auto& e : extents) {
    EXPECT_GE(e.offset, prev_end) << "extents must not overlap";
    prev_end = e.offset + e.size;
  }
}

// --- protocol fuzz -----------------------------------------------------------

TEST(RobustnessTest, ProtocolDecodersNeverCrashOnGarbage) {
  Rng rng{2024};
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::byte> junk(rng.uniform(0, 300));
    rng.fill(junk);
    // Each decoder must either parse or throw a typed error — never UB.
    const auto probe = [&](auto&& decode) {
      try {
        decode(junk);
      } catch (const Error&) {
        // expected for garbage
      }
    };
    probe([](auto b) { return decode_register_model(b); });
    probe([](auto b) { return decode_register_ack(b); });
    probe([](auto b) { return decode_checkpoint_req(b); });
    probe([](auto b) { return decode_checkpoint_done(b); });
    probe([](auto b) { return decode_restore_req(b); });
    probe([](auto b) { return decode_restore_done(b); });
    probe([](auto b) { return decode_finish_job(b); });
    probe([](auto b) { return cluster::ShardManifest::decode(b); });
  }
}

// Random garbage rarely gets past the magic/length checks; mutating *valid*
// cluster-era encodings probes the deep field parsing (endpoint lists,
// tensor ownership tables, nested manifest blobs) where a crash would hide.
TEST(RobustnessTest, ClusterDecodersSurviveMutationFuzz) {
  cluster::ShardManifest mf;
  mf.model_name = "resnet50";
  mf.placement_epoch = 7;
  mf.plan_digest = 0xC0FFEE;
  mf.daemon_count = 3;
  mf.replicas = 2;
  mf.endpoints = {"portusd0", "portusd1", "portusd2"};
  mf.tensors = {{"conv1", 1024, 0}, {"fc", 2048, 1}};
  mf.shard_daemons = {{0, 1}, {1, 2}, {2, 0}};
  const auto manifest_wire = mf.encode();

  RegisterModelMsg reg;
  reg.model_name = "resnet50#s0r0";
  reg.qp_tokens = {1, 2};
  reg.shard_id = 0;
  reg.shard_count = 2;
  reg.replica = 0;
  reg.replica_count = 2;
  reg.placement_epoch = 7;
  reg.manifest = manifest_wire;
  reg.tensors.push_back(TensorDesc{.name = "conv1", .shape = {16, 16}, .size = 1024});
  const auto reg_wire = encode(reg);

  RegisterAckMsg ack;
  ack.ok = true;
  ack.stripes = 2;
  const auto ack_wire = encode(ack);

  Rng rng{77};
  const auto mutate = [&](std::vector<std::byte> wire) {
    const auto flips = rng.uniform(1, 4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      auto& byte = wire[rng.uniform(0, wire.size() - 1)];
      byte ^= static_cast<std::byte>(1u << rng.uniform(0, 7));
    }
    return wire;
  };
  const auto probe = [](auto&& decode, const std::vector<std::byte>& wire) {
    try {
      decode(wire);
    } catch (const Error&) {
      // a typed error is the only acceptable failure mode
    }
  };
  for (int round = 0; round < 2000; ++round) {
    probe([](auto b) { return decode_register_model(b); }, mutate(reg_wire));
    probe([](auto b) { return decode_register_ack(b); }, mutate(ack_wire));
    probe([](auto b) { return cluster::ShardManifest::decode(b); }, mutate(manifest_wire));
  }

  // The unmutated encodings still round-trip after all that.
  const auto back = cluster::ShardManifest::decode(manifest_wire);
  EXPECT_EQ(back.model_name, "resnet50");
  ASSERT_EQ(back.shard_daemons.size(), 3u);
  EXPECT_EQ(back.copies_of(1), (std::vector<std::uint32_t>{1, 2}));
  const auto reg_back = decode_register_model(reg_wire);
  EXPECT_TRUE(reg_back.sharded());
  EXPECT_EQ(reg_back.manifest, manifest_wire);
}

TEST(RobustnessTest, TruncatedValidMessagesThrow) {
  RegisterModelMsg msg;
  msg.model_name = "bert";
  msg.tensors.push_back(TensorDesc{.name = "t", .shape = {4, 4}, .size = 64});
  const auto wire = encode(msg);
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    std::span<const std::byte> truncated{wire.data(), cut};
    EXPECT_THROW((void)decode_register_model(truncated), Error) << "cut at " << cut;
  }
}

// --- client misuse ------------------------------------------------------------

struct Rig {
  sim::Engine eng;
  std::unique_ptr<net::Cluster> cluster = net::Cluster::paper_testbed(eng);
  QpRendezvous rendezvous;
  std::unique_ptr<PortusDaemon> daemon =
      std::make_unique<PortusDaemon>(*cluster, cluster->node("server"), rendezvous);
  Rig() { daemon->start(); }
  ~Rig() { eng.shutdown(); }
};

TEST(RobustnessTest, ConcurrentOpsOnOneClientAreRejected) {
  Rig r;
  auto& node = r.cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.05;
  auto model = dnn::ModelZoo::create(node.gpu(0), "vgg19_bn", opt);
  PortusClient client{*r.cluster, node, node.gpu(0), r.rendezvous};

  bool second_rejected = false;
  r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await c.checkpoint(m, 1);  // long-ish op
  }(client, model));
  r.eng.spawn([](sim::Engine& eng, PortusClient& c, dnn::Model& m, bool& rejected)
                  -> sim::Process {
    co_await eng.sleep(3ms);  // while registration/checkpoint is in flight
    try {
      co_await c.checkpoint(m, 2);
    } catch (const Error&) {
      rejected = true;
    }
  }(r.eng, client, model, second_rejected));
  r.eng.run();
  EXPECT_TRUE(second_rejected)
      << "one control-plane operation per client at a time is the contract";
}

TEST(RobustnessTest, CheckpointOfUnregisteredModelFails) {
  Rig r;
  auto& node = r.cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.02;
  auto model = dnn::ModelZoo::create(node.gpu(0), "alexnet", opt);
  PortusClient client{*r.cluster, node, node.gpu(0), r.rendezvous};
  bool threw = false;
  r.eng.spawn([](PortusClient& c, dnn::Model& m, bool& t) -> sim::Process {
    co_await c.connect();
    try {
      co_await c.checkpoint(m, 1);  // never registered
    } catch (const Error&) {
      t = true;
    }
  }(client, model, threw));
  r.eng.run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(r.daemon->stats().failed_ops, 1u);
}

TEST(RobustnessTest, OperationsBeforeConnectFail) {
  Rig r;
  auto& node = r.cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.02;
  auto model = dnn::ModelZoo::create(node.gpu(0), "alexnet", opt);
  PortusClient client{*r.cluster, node, node.gpu(0), r.rendezvous};
  auto p = r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
    co_await c.register_model(m);  // no connect()
  }(client, model));
  r.eng.run();
  EXPECT_THROW(p.check(), Error);
}

// --- hook cadence -------------------------------------------------------------

TEST(RobustnessTest, PortusHookHonorsInterval) {
  Rig r;
  auto& node = r.cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.02;
  auto model = dnn::ModelZoo::create(node.gpu(0), "alexnet", opt);
  PortusClient client{*r.cluster, node, node.gpu(0), r.rendezvous};
  PortusHook hook{client, model, /*interval=*/3, PortusHook::Mode::kSync};
  dnn::TrainingStats stats;
  const dnn::TrainingConfig cfg{.iteration_time = 10ms, .update_fraction = 0.1,
                                .busy_fraction = 1.0, .mutate_weights = false};
  r.eng.spawn([](Rig& rig, net::Node& n, PortusClient& c, dnn::Model& m, PortusHook& h,
                 dnn::TrainingConfig config, dnn::TrainingStats& st) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await rig.eng.spawn(dnn::train(rig.eng, n.gpu(0), &m, config, 10, h, st)).join();
    co_await h.drain();
  }(r, node, client, model, hook, cfg, stats));
  r.eng.run();
  EXPECT_EQ(hook.stats().triggered, 3u);  // iterations 3, 6, 9
  EXPECT_EQ(hook.stats().completed, 3u);
  EXPECT_EQ(hook.stats().last_committed_iteration, 9u);
  EXPECT_EQ(r.daemon->stats().checkpoints, 3u);
}

TEST(RobustnessTest, HookIntervalZeroRejected) {
  Rig r;
  auto& node = r.cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.02;
  auto model = dnn::ModelZoo::create(node.gpu(0), "alexnet", opt);
  PortusClient client{*r.cluster, node, node.gpu(0), r.rendezvous};
  EXPECT_THROW((PortusHook{client, model, 0, PortusHook::Mode::kSync}), InvalidArgument);
}

// --- control-plane endpoint ----------------------------------------------------

TEST(RobustnessTest, ManyClientsConnectConcurrently) {
  Rig r;
  auto& node = r.cluster->node("client-volta");
  constexpr int kClients = 12;
  std::vector<std::unique_ptr<PortusClient>> clients;
  std::vector<dnn::Model> models;
  dnn::ModelZoo::Options opt;
  opt.scale = 0.01;
  for (int i = 0; i < kClients; ++i) {
    models.push_back(dnn::ModelZoo::create(
        node.gpu(static_cast<std::size_t>(i) % node.gpu_count()),
        dnn::ModelZoo::all()[static_cast<std::size_t>(i)].name, opt));
    clients.push_back(std::make_unique<PortusClient>(
        *r.cluster, node, node.gpu(static_cast<std::size_t>(i) % node.gpu_count()),
        r.rendezvous));
  }
  for (int i = 0; i < kClients; ++i) {
    r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
      co_await c.connect();
      co_await c.register_model(m);
      co_await c.checkpoint(m, 1);
    }(*clients[static_cast<std::size_t>(i)], models[static_cast<std::size_t>(i)]));
  }
  r.eng.run();
  EXPECT_EQ(r.daemon->stats().registrations, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(r.daemon->stats().checkpoints, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(r.eng.failed_process_count(), 0);
}

}  // namespace
}  // namespace portus::core
