// Multi-tenant subsystem (core/daemon/tenant.h + core/fleet): quota
// negotiation and capacity accounting, strict-priority/WFQ admission order,
// token-bucket pacing, bounded-queue Backpressure absorbed by client retry,
// the v5 tenant-field wire roundtrip, and online repacking running under
// live admitted traffic without corrupting the image.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/daemon/daemon.h"
#include "core/daemon/fsck.h"
#include "core/daemon/repacker.h"
#include "core/daemon/tenant.h"
#include "core/fleet/fleet_gen.h"
#include "core/protocol.h"
#include "common/strformat.h"
#include "dnn/model.h"
#include "net/cluster.h"

namespace portus::core {
namespace {

// --- TenantRegistry: negotiation + capacity accounting -----------------------

TEST(TenantRegistryTest, QuotaNegotiationClampsAgainstPolicyCeiling) {
  TenantRegistry::Defaults def;
  def.quota.capacity_bytes = 1_GiB;
  def.quota.rate_bytes_per_sec = 100_MB;
  TenantRegistry reg{def};

  // A zero request takes the policy default outright.
  Tenant& a = reg.admit_tenant("a", PriorityClass::kNormal, 0, 0);
  EXPECT_EQ(a.quota.capacity_bytes, 1_GiB);
  EXPECT_EQ(a.quota.rate_bytes_per_sec, 100_MB);
  EXPECT_EQ(a.quota.priority, PriorityClass::kNormal);

  // Over-asking clamps to the ceiling; modest requests are granted as-is.
  Tenant& b = reg.admit_tenant("b", PriorityClass::kHigh, 8_GiB, 1_GB);
  EXPECT_EQ(b.quota.capacity_bytes, 1_GiB);
  EXPECT_EQ(b.quota.rate_bytes_per_sec, 100_MB);
  Tenant& c = reg.admit_tenant("c", PriorityClass::kBatch, 256_MiB, 10_MB);
  EXPECT_EQ(c.quota.capacity_bytes, 256_MiB);
  EXPECT_EQ(c.quota.rate_bytes_per_sec, 10_MB);

  // Re-registration renegotiates the same tenant in place.
  Tenant& c2 = reg.admit_tenant("c", PriorityClass::kHigh, 512_MiB, 0);
  EXPECT_EQ(&c2, &c);
  EXPECT_EQ(c2.quota.capacity_bytes, 512_MiB);
  EXPECT_EQ(c2.quota.priority, PriorityClass::kHigh);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(TenantRegistryTest, CapacityOverdraftRejectsAndUnchargeRefunds) {
  TenantRegistry::Defaults def;
  def.quota.capacity_bytes = 100_MiB;
  TenantRegistry reg{def};
  Tenant& t = reg.admit_tenant("t", PriorityClass::kNormal, 0, 0);

  reg.charge(t, "m1", 60_MiB);
  EXPECT_EQ(t.usage.charged_bytes, 60_MiB);
  // Charging the same model again is idempotent, not a double bill.
  reg.charge(t, "m1", 60_MiB);
  EXPECT_EQ(t.usage.charged_bytes, 60_MiB);
  EXPECT_EQ(reg.owner_of("m1"), &t);

  EXPECT_THROW(reg.charge(t, "m2", 60_MiB), ResourceExhausted);
  EXPECT_EQ(t.usage.quota_rejects, 1u);
  EXPECT_EQ(t.usage.charged_bytes, 60_MiB) << "rejected charge must not bill";

  reg.charge(t, "m3", 30_MiB);
  reg.uncharge("m1", 60_MiB);
  EXPECT_EQ(t.usage.charged_bytes, 30_MiB);
  EXPECT_EQ(reg.owner_of("m1"), nullptr);
  // The refunded headroom admits the previously rejected registration.
  reg.charge(t, "m2", 60_MiB);
  EXPECT_EQ(t.usage.charged_bytes, 90_MiB);
}

// --- AdmissionController: strict priority, WFQ, pacing, backpressure ---------

sim::Process hold_then_release(sim::Engine& eng, AdmissionController& ctrl, Tenant& t,
                               Duration hold) {
  auto ticket = co_await ctrl.admit(t, 0);
  co_await eng.sleep(hold);
}

sim::Process admit_and_record(AdmissionController& ctrl, Tenant& t, Bytes bytes,
                              std::vector<std::string>& order, std::string name) {
  auto ticket = co_await ctrl.admit(t, bytes);
  order.push_back(std::move(name));
}

TEST(AdmissionControllerTest, StrictPriorityAcrossClasses) {
  sim::Engine eng;
  {
    AdmissionController ctrl{eng, {.max_inflight = 1, .queue_depth = 16}};
    TenantRegistry reg;
    Tenant& hi = reg.admit_tenant("hi", PriorityClass::kHigh, 0, 0);
    Tenant& no = reg.admit_tenant("no", PriorityClass::kNormal, 0, 0);
    Tenant& ba = reg.admit_tenant("ba", PriorityClass::kBatch, 0, 0);
    Tenant& holder = reg.admit_tenant("holder", PriorityClass::kBatch, 0, 0);

    std::vector<std::string> order;
    // The single slot is held; waiters enqueue in *reverse* priority order,
    // so FIFO dispatch would grant batch first. Strict priority must not.
    eng.spawn(hold_then_release(eng, ctrl, holder, Duration{1'000'000}));
    eng.spawn(admit_and_record(ctrl, ba, 1_MiB, order, "batch"));
    eng.spawn(admit_and_record(ctrl, no, 1_MiB, order, "normal"));
    eng.spawn(admit_and_record(ctrl, hi, 1_MiB, order, "high"));
    eng.run();

    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], "high");
    EXPECT_EQ(order[1], "normal");
    EXPECT_EQ(order[2], "batch");
    EXPECT_EQ(ctrl.stats().admitted, 4u);
  }
  eng.shutdown();
}

TEST(AdmissionControllerTest, WeightedFairQueuingWithinClass) {
  sim::Engine eng;
  {
    AdmissionController ctrl{eng, {.max_inflight = 1, .queue_depth = 16}};
    TenantRegistry reg;
    Tenant& a = reg.admit_tenant("a", PriorityClass::kNormal, 0, 0);
    Tenant& b = reg.admit_tenant("b", PriorityClass::kNormal, 0, 0);
    Tenant& holder = reg.admit_tenant("holder", PriorityClass::kNormal, 0, 0);
    b.quota.share = 2.0;  // b pays half the virtual time per byte

    std::vector<std::string> order;
    // Equal bytes, queued a1 a2 b1 b2. Start-time-fair tags: a1=1.0 a2=2.0,
    // b1=0.5 b2=1.0 (weighted). WFQ order interleaves b1 a1 b2 a2 — plain
    // FIFO (a1 a2 b1 b2) would let a's backlog starve the weighted tenant.
    eng.spawn(hold_then_release(eng, ctrl, holder, Duration{1'000'000}));
    eng.spawn(admit_and_record(ctrl, a, 1_MiB, order, "a1"));
    eng.spawn(admit_and_record(ctrl, a, 1_MiB, order, "a2"));
    eng.spawn(admit_and_record(ctrl, b, 1_MiB, order, "b1"));
    eng.spawn(admit_and_record(ctrl, b, 1_MiB, order, "b2"));
    eng.run();

    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], "b1");
    EXPECT_EQ(order[1], "a1");
    EXPECT_EQ(order[2], "b2");
    EXPECT_EQ(order[3], "a2");
  }
  eng.shutdown();
}

TEST(AdmissionControllerTest, TokenBucketPacesOverRateTenant) {
  sim::Engine eng;
  {
    AdmissionController ctrl{eng, {.max_inflight = 4, .queue_depth = 16}};
    TenantRegistry::Defaults def;
    def.quota.rate_bytes_per_sec = 100_MB;
    TenantRegistry reg{def};
    Tenant& t = reg.admit_tenant("paced", PriorityClass::kNormal, 0, 0);

    std::vector<Time> at;
    eng.spawn([](sim::Engine& eng, AdmissionController& ctrl, Tenant& t,
                 std::vector<Time>& at) -> sim::Process {
      for (int i = 0; i < 3; ++i) {
        auto ticket = co_await ctrl.admit(t, 50_MB);
        at.push_back(eng.now());
      }
    }(eng, ctrl, t, at));
    eng.run();

    // 50 MB per op at 100 MB/s: each op after the burst allowance sleeps
    // off ~0.5 s of token debt before competing for a slot.
    ASSERT_EQ(at.size(), 3u);
    EXPECT_GE((at[2] - at[1]).count(), 400'000'000ll);
    EXPECT_GT(ctrl.stats().paced, 0u);
    EXPECT_GT(t.usage.paced_total.count(), 0ll);
  }
  eng.shutdown();
}

TEST(AdmissionControllerTest, BoundedQueueThrowsBackpressure) {
  sim::Engine eng;
  {
    AdmissionController ctrl{eng, {.max_inflight = 1, .queue_depth = 2}};
    TenantRegistry reg;
    Tenant& t = reg.admit_tenant("t", PriorityClass::kBatch, 0, 0);

    int rejected = 0;
    int admitted = 0;
    eng.spawn(hold_then_release(eng, ctrl, t, Duration{1'000'000}));
    for (int i = 0; i < 6; ++i) {
      eng.spawn([](AdmissionController& ctrl, Tenant& t, int& admitted,
                   int& rejected) -> sim::Process {
        try {
          auto ticket = co_await ctrl.admit(t, 1_KiB);
          ++admitted;
        } catch (const Backpressure&) {
          ++rejected;
        }
      }(ctrl, t, admitted, rejected));
    }
    eng.run();

    // One slot busy, two queue positions: the rest bounce immediately.
    EXPECT_EQ(admitted, 2);
    EXPECT_EQ(rejected, 4);
    EXPECT_EQ(ctrl.stats().rejected, 4u);
    EXPECT_EQ(t.usage.rejected, 4u);
  }
  eng.shutdown();
}

// --- protocol v5: tenant negotiation on the wire ------------------------------

TEST(FleetProtocolTest, V5TenantFieldsRoundtrip) {
  RegisterModelMsg m;
  m.model_name = "gpt";
  m.tenant_id = "team-inference";
  m.priority = static_cast<std::uint8_t>(PriorityClass::kHigh);
  m.requested_capacity = 3_GiB;
  m.requested_rate = 250_MB;
  const auto d = decode_register_model(encode(m));
  EXPECT_EQ(d.tenant_id, "team-inference");
  EXPECT_EQ(priority_from_wire(d.priority), PriorityClass::kHigh);
  EXPECT_EQ(d.requested_capacity, 3_GiB);
  EXPECT_EQ(d.requested_rate, 250_MB);

  RegisterAckMsg ack;
  ack.ok = true;
  ack.granted_capacity = 1_GiB;
  ack.granted_rate = 100_MB;
  ack.granted_wr_slots = 3;
  const auto dack = decode_register_ack(encode(ack));
  EXPECT_EQ(dack.granted_capacity, 1_GiB);
  EXPECT_EQ(dack.granted_rate, 100_MB);
  EXPECT_EQ(dack.granted_wr_slots, 3u);

  CheckpointDoneMsg done;
  done.model_name = "gpt";
  done.ok = false;
  done.backpressure = true;
  done.retry_after_ns = 2'000'000;
  const auto ddone = decode_checkpoint_done(encode(done));
  EXPECT_FALSE(ddone.ok);
  EXPECT_TRUE(ddone.backpressure);
  EXPECT_EQ(ddone.retry_after_ns, 2'000'000u);

  // An out-of-range priority demotes to batch instead of faulting.
  EXPECT_EQ(priority_from_wire(7), PriorityClass::kBatch);
}

// --- end to end: Backpressure absorbed by client retry ------------------------

struct TenancyRig {
  sim::Engine eng;
  std::unique_ptr<net::Cluster> cluster = net::Cluster::paper_testbed(eng);
  QpRendezvous rendezvous;
  std::unique_ptr<PortusDaemon> daemon;

  explicit TenancyRig(PortusDaemon::Config cfg = tenancy_config()) {
    daemon = std::make_unique<PortusDaemon>(*cluster, cluster->node("server"),
                                            rendezvous, cfg);
    daemon->start();
  }
  ~TenancyRig() { eng.shutdown(); }

  static PortusDaemon::Config tenancy_config() {
    PortusDaemon::Config cfg;
    cfg.tenancy = true;
    cfg.admission_inflight = 1;
    cfg.admission_queue_depth = 1;
    return cfg;
  }
};

TEST(FleetTest, BackpressureRetriesToSuccess) {
  TenancyRig r;
  auto& volta = r.cluster->node("client-volta");

  // Eight clients storm one admission slot with one queue position: most
  // first attempts bounce with Backpressure, every op must still succeed
  // within its jittered-backoff retry budget.
  constexpr int kClients = 8;
  std::vector<std::unique_ptr<dnn::Model>> models;
  std::vector<std::unique_ptr<PortusClient>> clients;
  for (int i = 0; i < kClients; ++i) {
    auto model = std::make_unique<dnn::Model>(strf("job{}", i), volta.gpu(0));
    model->add_tensor(dnn::TensorMeta{.name = "w", .shape = {1 << 20}}, /*phantom=*/true);
    auto client = std::make_unique<PortusClient>(*r.cluster, volta, volta.gpu(0),
                                                 r.rendezvous);
    client->set_tenant(PortusClient::TenantSpec{
        .id = strf("tenant{}", i),
        .priority = static_cast<std::uint8_t>(PriorityClass::kBatch)});
    client->set_retry_policy(PortusClient::RetryPolicy{
        .max_retries = 30, .jitter_seed = 0xF1EE7000ull + static_cast<std::uint64_t>(i)});
    models.push_back(std::move(model));
    clients.push_back(std::move(client));
  }

  std::vector<sim::Process> procs;
  for (int i = 0; i < kClients; ++i) {
    procs.push_back(r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
      co_await c.connect();
      co_await c.register_model(m);
      for (std::uint64_t k = 1; k <= 3; ++k) {
        const auto epoch = co_await c.checkpoint(m, k);
        if (epoch != k) throw Error("unexpected epoch");
      }
    }(*clients[i], *models[i])));
  }
  r.eng.run();
  for (auto& p : procs) p.check();

  std::uint64_t retries = 0;
  std::uint64_t backpressure = 0;
  for (const auto& c : clients) {
    retries += c->stats().retries;
    backpressure += c->stats().backpressure;
    EXPECT_EQ(c->stats().checkpoints, 3u);
  }
  EXPECT_GT(backpressure, 0u) << "the storm never hit the bounded queue";
  EXPECT_EQ(retries, backpressure);
  EXPECT_EQ(r.daemon->stats().backpressure_rejects, backpressure);
  EXPECT_GT(r.daemon->stats().checkpoints, 0u);
  EXPECT_EQ(r.daemon->stats().failed_ops, 0u);

  // The registry saw every tenant; the grant echoed the daemon's policy.
  ASSERT_NE(r.daemon->tenants(), nullptr);
  EXPECT_EQ(r.daemon->tenants()->size(), static_cast<std::size_t>(kClients));
  EXPECT_EQ(clients[0]->stats().granted_wr_slots, 1u);
}

// --- online repack under live admitted traffic --------------------------------

TEST(FleetTest, OnlineRepackUnderLiveTrafficLeavesCleanImage) {
  TenancyRig r;
  auto& volta = r.cluster->node("client-volta");

  // Garbage: a finished job whose slots become reclaimable.
  dnn::Model dead{"dead", volta.gpu(0)};
  dead.add_tensor(dnn::TensorMeta{.name = "w", .shape = {1 << 20}}, /*phantom=*/true);
  PortusClient dead_client{*r.cluster, volta, volta.gpu(0), r.rendezvous};
  // Live traffic, admitted through the controller while repack_online takes
  // its bounded pause windows.
  dnn::Model live{"live", volta.gpu(0)};
  live.add_tensor(dnn::TensorMeta{.name = "w", .shape = {1 << 20}}, /*phantom=*/true);
  PortusClient live_client{*r.cluster, volta, volta.gpu(0), r.rendezvous};
  live_client.set_retry_policy(PortusClient::RetryPolicy{.max_retries = 20});

  Repacker::Report report;
  auto proc = r.eng.spawn([](TenancyRig& r, PortusClient& dc, dnn::Model& dead,
                             PortusClient& lc, dnn::Model& live,
                             Repacker::Report& report) -> sim::Process {
    co_await dc.connect();
    co_await dc.register_model(dead);
    co_await dc.checkpoint(dead, 1);
    co_await dc.checkpoint(dead, 2);
    co_await dc.finish(dead);

    co_await lc.connect();
    co_await lc.register_model(live);
    auto maint = r.eng.spawn(
        [](PortusDaemon& d, Repacker::Report& out) -> sim::Process {
          Repacker repacker{d};
          Repacker::OnlineOptions opts;
          opts.models_per_pass = 1;
          out = co_await repacker.repack_online(opts);
        }(*r.daemon, report));
    for (std::uint64_t k = 1; k <= 6; ++k) {
      const auto epoch = co_await lc.checkpoint(live, k);
      if (epoch != k) throw Error("live checkpoint lost an epoch");
    }
    co_await maint.join();
  }(r, dead_client, dead, live_client, live, report));
  r.eng.run();
  proc.check();

  // The finished job's storage was reclaimed in bounded pause windows...
  EXPECT_GT(report.freed_outdated + report.freed_crashed, 0u);
  EXPECT_GT(report.passes, 0);
  EXPECT_GT(report.paused_time.count(), 0ll);
  EXPECT_FALSE(r.daemon->admission()->paused()) << "repack left admissions paused";
  EXPECT_GT(r.daemon->admission()->stats().pauses, 0u);

  // ...the live job never lost an epoch, and the image is fsck-clean.
  const auto idx = r.daemon->load_index("live");
  const auto slot = idx.latest_done_slot();
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(idx.slot(*slot).epoch, 6u);
  EXPECT_TRUE(Fsck{*r.daemon}.run(/*repair=*/true).clean());
}

// --- fleet generator smoke ----------------------------------------------------

TEST(FleetTest, FleetGenReportsPerClassLatencies) {
  TenancyRig r{[] {
    auto cfg = TenancyRig::tenancy_config();
    cfg.admission_queue_depth = 8;
    return cfg;
  }()};
  core::fleet::FleetConfig fc;
  fc.tenants = 9;
  fc.checkpoints_per_tenant = 2;
  fc.high_fraction = 0.34;
  fc.batch_fraction = 0.33;
  fc.high_period = Duration{50'000'000};
  fc.normal_period = Duration{20'000'000};
  fc.batch_period = Duration{5'000'000};
  core::fleet::FleetGen gen{*r.cluster, r.cluster->node("client-volta"), r.rendezvous,
                            {"portusd"}, fc};
  core::fleet::FleetReport rep;
  auto proc = r.eng.spawn([](core::fleet::FleetGen& g,
                             core::fleet::FleetReport& out) -> sim::Process {
    out = co_await g.run();
  }(gen, rep));
  r.eng.run();
  proc.check();

  EXPECT_EQ(rep.failures, 0u);
  EXPECT_EQ(rep.checkpoints, 18u);
  int covered = 0;
  std::uint64_t sum = 0;
  for (int c = 0; c < kPriorityClasses; ++c) {
    if (rep.by_class[c].tenants == 0) continue;
    ++covered;
    sum += rep.by_class[c].checkpoints;
    EXPECT_GT(rep.by_class[c].p99.count(), 0ll);
    EXPECT_LE(rep.by_class[c].p50.count(), rep.by_class[c].p99.count());
    EXPECT_LE(rep.by_class[c].p99.count(), rep.by_class[c].max.count());
  }
  EXPECT_EQ(covered, 3) << "the mix must draw all three classes";
  EXPECT_EQ(sum, rep.checkpoints);
  EXPECT_GT(rep.bytes, 0u);
  EXPECT_GT(rep.aggregate_gbps(), 0.0);
}

}  // namespace
}  // namespace portus::core
