// portusctl fsck (core/daemon/fsck.h): payload scrubbing, corruption
// detection/repair, crash-leftover demotion, and orphan sweeping — driven
// against a real daemon with real checkpointed state.
#include "core/daemon/fsck.h"

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/rng.h"
#include "core/client.h"
#include "dnn/model_zoo.h"
#include "net/cluster.h"

namespace portus::core {
namespace {

// A daemon with one registered model and two committed epochs; golden CRCs
// of both checkpointed states captured for bit-exactness assertions.
struct Rig {
  sim::Engine eng;
  std::unique_ptr<net::Cluster> cluster = net::Cluster::paper_testbed(eng);
  QpRendezvous rendezvous;
  std::unique_ptr<PortusDaemon> daemon =
      std::make_unique<PortusDaemon>(*cluster, cluster->node("server"), rendezvous);
  std::unique_ptr<dnn::Model> model;
  std::unique_ptr<PortusClient> client;
  std::uint32_t golden[3] = {0, 0, 0};  // [epoch], epoch 1 and 2 used

  Rig() {
    daemon->start();
    auto& node = cluster->node("client-volta");
    dnn::ModelZoo::Options opt;
    opt.scale = 0.02;
    model = std::make_unique<dnn::Model>(
        dnn::ModelZoo::create(node.gpu(0), "alexnet", opt));
    client = std::make_unique<PortusClient>(*cluster, node, node.gpu(0), rendezvous);
    eng.spawn([](Rig& r) -> sim::Process {
      co_await r.client->connect();
      co_await r.client->register_model(*r.model);
      for (std::uint64_t k = 1; k <= 2; ++k) {
        r.model->mutate_weights(k);
        r.golden[k] = r.model->weights_crc();
        const auto epoch = co_await r.client->checkpoint(*r.model, k);
        if (epoch != k) throw Error("unexpected epoch");
      }
    }(*this));
    eng.run();
  }
  ~Rig() { eng.shutdown(); }

  pmem::PmemDevice& device() { return daemon->device(); }

  // Flip one bit of one byte inside tensor `t` of the given DONE slot.
  void flip_byte(const MIndex& index, int slot_i, std::size_t t, Bytes byte_in_tensor,
                 std::byte mask) {
    const auto& tensor = index.tensors()[t];
    const Bytes at = index.slot(slot_i).data_offset + tensor.offset_in_slot + byte_in_tensor;
    auto b = device().read(at, 1);
    b[0] ^= mask;
    device().write(at, b);
    device().persist(at, 1);
  }
};

std::uint32_t crc_of_crcs(const std::vector<std::uint32_t>& crcs) {
  Crc32 agg;
  for (const auto c : crcs) agg.update(&c, sizeof c);
  return agg.value();
}

TEST(FsckTest, HealthyStoreIsClean) {
  Rig r;
  const auto report = Fsck{*r.daemon}.run(/*repair=*/false);
  EXPECT_TRUE(report.clean());
  EXPECT_FALSE(report.repaired);
  EXPECT_EQ(report.models_scanned, 1);
  EXPECT_EQ(report.torn_records, 0);
  EXPECT_EQ(report.corrupt_tensors, 0);
}

// Acceptance: fsck detects 100% of randomly injected payload bit-flips.
// (CRC32 detects every single-bit error, so every round MUST trip.)
TEST(FsckTest, DetectsEveryInjectedBitFlip) {
  Rig r;
  const auto index = r.daemon->load_index("alexnet");
  const auto slot_i = index.latest_done_slot();
  ASSERT_TRUE(slot_i.has_value());
  EXPECT_EQ(index.slot(*slot_i).epoch, 2u);

  Rng rng{20260807};
  int detected = 0;
  constexpr int kRounds = 20;
  for (int round = 0; round < kRounds; ++round) {
    const auto t = rng.uniform(0, index.tensors().size() - 1);
    const Bytes at = rng.uniform(0, index.tensors()[t].size - 1);
    const auto mask = static_cast<std::byte>(1u << rng.uniform(0, 7));

    r.flip_byte(index, *slot_i, t, at, mask);
    const auto bad = Fsck{*r.daemon}.run(/*repair=*/false);
    if (!bad.clean() && bad.corrupt_tensors >= 1 && bad.corrupt_demoted >= 1) ++detected;

    r.flip_byte(index, *slot_i, t, at, mask);  // undo
    const auto good = Fsck{*r.daemon}.run(/*repair=*/false);
    EXPECT_TRUE(good.clean()) << "round " << round << ": store dirty after undo";
  }
  EXPECT_EQ(detected, kRounds) << "fsck must detect every injected bit flip";
}

TEST(FsckTest, RepairDemotesCorruptSlotAndOlderEpochRestores) {
  Rig r;
  {
    const auto index = r.daemon->load_index("alexnet");
    const auto slot_i = index.latest_done_slot();
    ASSERT_TRUE(slot_i.has_value());
    r.flip_byte(index, *slot_i, 0, 0, std::byte{0x80});  // corrupt epoch 2
  }

  const auto report = Fsck{*r.daemon}.run(/*repair=*/true);
  EXPECT_TRUE(report.repaired);
  EXPECT_EQ(report.corrupt_demoted, 1);
  EXPECT_GE(report.corrupt_tensors, 1);
  EXPECT_GT(report.freed, 0u);
  EXPECT_TRUE(Fsck{*r.daemon}.run(/*repair=*/true).clean())
      << "repair must converge in one pass";

  // The double-mapping peer (epoch 1) survived and still validates.
  const auto index = r.daemon->load_index("alexnet");
  const auto slot_i = index.latest_done_slot();
  ASSERT_TRUE(slot_i.has_value());
  EXPECT_EQ(index.slot(*slot_i).epoch, 1u);
  const auto block = index.payload_crcs(*slot_i);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(crc_of_crcs(block->crcs), r.golden[1]);

  // End-to-end: a restarted daemon serves epoch 1 to a re-registered
  // client, bit-exact with what was checkpointed as epoch 1.
  r.daemon->recover();
  auto& node = r.cluster->node("client-volta");
  PortusClient fresh{*r.cluster, node, node.gpu(0), r.rendezvous};
  std::uint64_t restored = 0;
  auto proc = r.eng.spawn([](PortusClient& c, dnn::Model& m, std::uint64_t& ep)
                              -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    ep = co_await c.restore(m);
  }(fresh, *r.model, restored));
  r.eng.run();
  proc.check();
  EXPECT_EQ(restored, 1u);
  EXPECT_EQ(r.model->weights_crc(), r.golden[1]);
  EXPECT_EQ(fresh.stats().last_payload_crc, r.golden[1]);
}

TEST(FsckTest, DemotesActiveSlotsAndSweepsOrphans) {
  Rig r;
  {
    // Forge a crash leftover: the older DONE slot back to ACTIVE, plus an
    // allocation nothing references (a mid-registration power cut's debris).
    auto index = r.daemon->load_index("alexnet");
    const auto newest = index.latest_done_slot();
    ASSERT_TRUE(newest.has_value());
    const int older = 1 - *newest;
    ASSERT_EQ(index.slot(older).state, SlotState::kDone);
    index.set_slot(older, SlotState::kActive, index.slot(older).epoch);
    r.daemon->allocator().alloc(64_KiB);
  }

  const auto report = Fsck{*r.daemon}.run(/*repair=*/true);
  EXPECT_EQ(report.active_demoted, 1);
  EXPECT_EQ(report.orphaned_extents, 1);
  EXPECT_FALSE(report.clean());
  EXPECT_GE(report.freed, 64_KiB);

  const auto index = r.daemon->load_index("alexnet");
  for (int i = 0; i < 2; ++i) {
    EXPECT_NE(index.slot(i).state, SlotState::kActive);
  }
  EXPECT_TRUE(index.latest_done_slot().has_value()) << "newest epoch must survive";
  EXPECT_EQ(index.slot(*index.latest_done_slot()).epoch, 2u);
  EXPECT_TRUE(Fsck{*r.daemon}.run(/*repair=*/true).clean());
}

}  // namespace
}  // namespace portus::core
