// Incremental checkpointing extension: only dirty tensors cross the wire;
// clean ones are copied PMEM-locally from the previous DONE version.
#include <gtest/gtest.h>

#include "core/async_coordinator.h"
#include "core/client.h"
#include "core/daemon/daemon.h"
#include "dnn/model_zoo.h"
#include "net/cluster.h"

namespace portus::core {
namespace {

using namespace std::chrono_literals;

struct Rig {
  sim::Engine eng;
  std::unique_ptr<net::Cluster> cluster = net::Cluster::paper_testbed(eng);
  QpRendezvous rendezvous;
  std::unique_ptr<PortusDaemon> daemon = std::make_unique<PortusDaemon>(
      *cluster, cluster->node("server"), rendezvous);
  Rig() { daemon->start(); }
  ~Rig() { eng.shutdown(); }
};

// Overwrite one tensor's contents with a recognizable pattern.
void paint_tensor(dnn::Model& m, std::size_t i, std::byte value) {
  auto& buf = m.tensor(i).buffer();
  buf.segment().fill(buf.offset(), buf.size(), value);
}

TEST(IncrementalTest, DirtyTensorsPulledCleanOnesCopied) {
  Rig r;
  auto& gpu = r.cluster->node("client-volta").gpu(0);
  dnn::ModelZoo::Options opt;
  opt.scale = 0.02;
  auto model = dnn::ModelZoo::create(gpu, "resnet50", opt);
  PortusClient client{*r.cluster, r.cluster->node("client-volta"), gpu, r.rendezvous};

  bool ok = false;
  r.eng.spawn([](Rig& rig, PortusClient& c, dnn::Model& m, bool& done) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await c.checkpoint(m, 1);  // full epoch 1

    // Training touches tensors 0 and 3 only.
    paint_tensor(m, 0, std::byte{0xA0});
    paint_tensor(m, 3, std::byte{0xA3});
    const auto crc_epoch2 = m.weights_crc();

    std::vector<std::uint32_t> dirty{0, 3};  // named: GCC12 co_await+init-list bug
    co_await c.checkpoint_incremental(m, 2, std::move(dirty));

    // Wreck the GPU state entirely, restore epoch 2, compare.
    m.mutate_weights(999);
    const auto epoch = co_await c.restore(m);
    EXPECT_EQ(epoch, 2u);
    EXPECT_EQ(m.weights_crc(), crc_epoch2)
        << "dirty tensors from the wire + clean tensors from the PMEM copy "
           "must reassemble the exact epoch-2 state";
    done = true;
    (void)rig;
  }(r, client, model, ok));
  r.eng.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(r.eng.failed_process_count(), 0);
}

TEST(IncrementalTest, UndeclaredMutationIsNotCaptured) {
  // Semantics check: a tensor mutated but NOT declared dirty restores to its
  // previous-version contents — the dirty set is the caller's contract.
  Rig r;
  auto& gpu = r.cluster->node("client-volta").gpu(0);
  dnn::ModelZoo::Options opt;
  opt.scale = 0.02;
  auto model = dnn::ModelZoo::create(gpu, "alexnet", opt);
  PortusClient client{*r.cluster, r.cluster->node("client-volta"), gpu, r.rendezvous};

  bool ok = false;
  r.eng.spawn([](PortusClient& c, dnn::Model& m, bool& done) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await c.checkpoint(m, 1);
    const auto epoch1_t2 = m.tensor(2).buffer().crc();

    paint_tensor(m, 1, std::byte{0xB1});
    paint_tensor(m, 2, std::byte{0xB2});       // mutated...
    const auto painted_t1 = m.tensor(1).buffer().crc();
    std::vector<std::uint32_t> dirty{1};  // ...but only 1 declared
    co_await c.checkpoint_incremental(m, 2, std::move(dirty));

    m.mutate_weights(123);
    co_await c.restore(m);
    EXPECT_EQ(m.tensor(1).buffer().crc(), painted_t1)
        << "declared tensor restores to its painted (pulled) contents";
    EXPECT_EQ(m.tensor(2).buffer().crc(), epoch1_t2)
        << "undeclared tensor restores to the epoch-1 copy";
    done = true;
  }(client, model, ok));
  r.eng.run();
  EXPECT_TRUE(ok);
}

TEST(IncrementalTest, FirstCheckpointFallsBackToFullPull) {
  Rig r;
  auto& gpu = r.cluster->node("client-volta").gpu(0);
  dnn::ModelZoo::Options opt;
  opt.scale = 0.02;
  auto model = dnn::ModelZoo::create(gpu, "alexnet", opt);
  PortusClient client{*r.cluster, r.cluster->node("client-volta"), gpu, r.rendezvous};
  const auto crc0 = model.weights_crc();

  bool ok = false;
  r.eng.spawn([](PortusClient& c, dnn::Model& m, std::uint32_t crc, bool& done) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    // No previous version: the dirty set cannot be honored; everything is
    // pulled so the checkpoint is still complete.
    std::vector<std::uint32_t> dirty{0};
    co_await c.checkpoint_incremental(m, 1, std::move(dirty));
    m.mutate_weights(5);
    co_await c.restore(m);
    EXPECT_EQ(m.weights_crc(), crc);
    done = true;
  }(client, model, crc0, ok));
  r.eng.run();
  EXPECT_TRUE(ok);
}

TEST(IncrementalTest, OutOfRangeDirtyIndexFailsCleanly) {
  Rig r;
  auto& gpu = r.cluster->node("client-volta").gpu(0);
  dnn::ModelZoo::Options opt;
  opt.scale = 0.02;
  auto model = dnn::ModelZoo::create(gpu, "alexnet", opt);
  PortusClient client{*r.cluster, r.cluster->node("client-volta"), gpu, r.rendezvous};

  bool threw = false;
  r.eng.spawn([](PortusClient& c, dnn::Model& m, bool& t) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await c.checkpoint(m, 1);
    try {
      std::vector<std::uint32_t> dirty{9999};
      co_await c.checkpoint_incremental(m, 2, std::move(dirty));
    } catch (const Error&) {
      t = true;
    }
  }(client, model, threw));
  r.eng.run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(r.daemon->stats().failed_ops, 1u);

  // The failed transaction must not have destroyed the previous version.
  auto index = r.daemon->load_index("alexnet");
  ASSERT_TRUE(index.latest_done_slot().has_value());
  EXPECT_EQ(index.slot(*index.latest_done_slot()).epoch, 1u);
}

TEST(IncrementalTest, IncrementalIsFasterForSmallDirtySets) {
  Rig r;
  auto& gpu = r.cluster->node("client-volta").gpu(0);
  dnn::ModelZoo::Options opt;
  opt.force_phantom = true;
  auto model = dnn::ModelZoo::create(gpu, "bert", opt);
  PortusClient client{*r.cluster, r.cluster->node("client-volta"), gpu, r.rendezvous};

  Duration full{}, incremental{};
  r.eng.spawn([](sim::Engine& eng, PortusClient& c, dnn::Model& m, Duration& f,
                 Duration& inc) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    Time t0 = eng.now();
    co_await c.checkpoint(m, 1);
    f = eng.now() - t0;
    t0 = eng.now();
    std::vector<std::uint32_t> dirty{0, 1, 2};
    co_await c.checkpoint_incremental(m, 2, std::move(dirty));
    inc = eng.now() - t0;
  }(r.eng, client, model, full, incremental));
  r.eng.run();
  EXPECT_LT(to_seconds(incremental), to_seconds(full) * 0.85)
      << "PMEM-local copies must beat the BAR-limited wire pull";
}

}  // namespace
}  // namespace portus::core
