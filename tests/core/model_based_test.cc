// Model-based property test: drive the full client/daemon stack with a
// random operation sequence — mutate, checkpoint (full or incremental),
// restore, power-fail + daemon restart, repack — while a reference model
// tracks what MUST be true:
//
//   * after any completed checkpoint, the newest DONE version's epoch and
//     contents match the weights at trigger time;
//   * a crash never loses the newest *committed* version (torn ACTIVE slots
//     are invisible);
//   * restore always reproduces the newest committed contents bit-exactly;
//   * repack never removes the newest committed version.
//
// Each seed is an independent trajectory; parameterized across seeds.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/client.h"
#include "core/daemon/daemon.h"
#include "core/daemon/repacker.h"
#include "dnn/model_zoo.h"
#include "net/cluster.h"

namespace portus::core {
namespace {

using namespace std::chrono_literals;

struct Reference {
  std::uint64_t committed_epoch = 0;
  std::uint32_t committed_crc = 0;  // weights_crc at the last committed ckpt
};

class ModelBasedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelBasedTest, InvariantsHoldUnderRandomOperations) {
  Rng rng{GetParam()};
  sim::Engine eng;
  auto cluster = net::Cluster::paper_testbed(eng);
  QpRendezvous rendezvous;
  int daemon_generation = 0;
  auto daemon = std::make_unique<PortusDaemon>(*cluster, cluster->node("server"), rendezvous);
  daemon->start();

  auto& node = cluster->node("client-volta");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.01;
  auto model = dnn::ModelZoo::create(node.gpu(0), "resnet50", opt);
  auto client = std::make_unique<PortusClient>(*cluster, node, node.gpu(0), rendezvous);

  Reference ref;
  std::uint64_t iteration = 0;

  // Run one coroutine op to completion.
  const auto run_op = [&](sim::Process p) {
    auto proc = eng.spawn(std::move(p));
    eng.run();
    proc.check();
  };

  run_op([](PortusClient& c, dnn::Model& m) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
  }(*client, model));

  for (int step = 0; step < 40; ++step) {
    const auto op = rng.uniform(0, 5);
    switch (op) {
      case 0: {  // training progress
        model.mutate_weights(++iteration);
        break;
      }
      case 1: {  // full checkpoint
        const auto crc = model.weights_crc();
        run_op([](PortusClient& c, dnn::Model& m, std::uint64_t it) -> sim::Process {
          co_await c.checkpoint(m, it);
        }(*client, model, iteration));
        ref.committed_epoch += 1;
        ref.committed_crc = crc;
        break;
      }
      case 2: {  // incremental checkpoint over a random dirty set
        // Incremental semantics require the GPU's clean tensors to equal the
        // previous committed version. Resync first (as a real embedding
        // workload would be, since it only ever touches its dirty rows).
        if (ref.committed_epoch > 0) {
          run_op([](PortusClient& c, dnn::Model& m) -> sim::Process {
            co_await c.restore(m);
          }(*client, model));
        }
        std::vector<std::uint32_t> dirty;
        for (std::uint32_t i = 0; i < model.layer_count(); ++i) {
          if (rng.bernoulli(0.3)) dirty.push_back(i);
        }
        if (dirty.empty()) dirty.push_back(0);
        for (const auto i : dirty) {
          auto& buf = model.tensor(i).buffer();
          std::vector<std::byte> patch(std::min<Bytes>(buf.size(), 128));
          rng.fill(patch);
          buf.segment().write(buf.offset(), patch);
        }
        const auto crc = model.weights_crc();
        run_op([](PortusClient& c, dnn::Model& m, std::uint64_t it,
                  std::vector<std::uint32_t> d) -> sim::Process {
          co_await c.checkpoint_incremental(m, it, std::move(d));
        }(*client, model, iteration, std::move(dirty)));
        ref.committed_epoch += 1;
        ref.committed_crc = crc;
        break;
      }
      case 3: {  // restore and verify against the reference
        if (ref.committed_epoch == 0) break;
        model.mutate_weights(0xDEAD + static_cast<std::uint64_t>(step));
        std::uint64_t epoch = 0;
        run_op([](PortusClient& c, dnn::Model& m, std::uint64_t& e) -> sim::Process {
          e = co_await c.restore(m);
        }(*client, model, epoch));
        EXPECT_EQ(epoch, ref.committed_epoch) << "seed " << GetParam() << " step " << step;
        EXPECT_EQ(model.weights_crc(), ref.committed_crc)
            << "seed " << GetParam() << " step " << step;
        break;
      }
      case 4: {  // power failure + daemon restart + client re-registration
        eng.shutdown();
        daemon->device().simulate_crash();
        ++daemon_generation;
        const std::string endpoint = "portusd-g" + std::to_string(daemon_generation);
        daemon = std::make_unique<PortusDaemon>(*cluster, cluster->node("server"), rendezvous,
                                                PortusDaemon::Config{.endpoint = endpoint});
        daemon->recover();
        daemon->start();
        client = std::make_unique<PortusClient>(*cluster, node, node.gpu(0), rendezvous,
                                                endpoint);
        run_op([](PortusClient& c, dnn::Model& m) -> sim::Process {
          co_await c.connect();
          co_await c.register_model(m);
        }(*client, model));
        // Invariant: the committed version survived intact.
        if (ref.committed_epoch > 0) {
          auto index = daemon->load_index("resnet50");
          const auto latest = index.latest_done_slot();
          ASSERT_TRUE(latest.has_value()) << "seed " << GetParam() << " step " << step;
          EXPECT_EQ(index.slot(*latest).epoch, ref.committed_epoch);
        }
        break;
      }
      case 5: {  // repack (daemon quiescent between ops)
        Repacker{*daemon}.repack();
        if (ref.committed_epoch > 0) {
          auto index = daemon->load_index("resnet50");
          ASSERT_TRUE(index.latest_done_slot().has_value())
              << "repack must never remove the newest committed version";
        }
        break;
      }
      default:
        break;
    }
  }

  // Final end-to-end verification.
  if (ref.committed_epoch > 0) {
    model.mutate_weights(0xFFFF);
    std::uint64_t epoch = 0;
    auto proc = eng.spawn([](PortusClient& c, dnn::Model& m, std::uint64_t& e) -> sim::Process {
      e = co_await c.restore(m);
    }(*client, model, epoch));
    eng.run();
    proc.check();
    EXPECT_EQ(epoch, ref.committed_epoch);
    EXPECT_EQ(model.weights_crc(), ref.committed_crc);
  }
  eng.shutdown();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelBasedTest, ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace portus::core
