// Distributed (multi-rank) correctness: the Fig. 14 topology at a small,
// real-bytes scale — 16 Megatron shards checkpointing concurrently and
// restoring bit-exactly, including restore into a different GPU (the
// realistic restart path: the replacement process rarely lands on the same
// device).
#include <gtest/gtest.h>

#include "core/client.h"
#include "core/daemon/daemon.h"
#include "dnn/model_zoo.h"
#include "dnn/parallel.h"
#include "net/cluster.h"

namespace portus::core {
namespace {

using namespace std::chrono_literals;

struct Rig {
  sim::Engine eng;
  std::unique_ptr<net::Cluster> cluster = net::Cluster::paper_testbed(eng);
  QpRendezvous rendezvous;
  std::unique_ptr<PortusDaemon> daemon = std::make_unique<PortusDaemon>(
      *cluster, cluster->node("server"), rendezvous,
      PortusDaemon::Config{.workers = 16});
  Rig() { daemon->start(); }
  ~Rig() { eng.shutdown(); }
};

TEST(DistributedTest, SixteenShardsCheckpointAndRestoreBitExact) {
  Rig r;
  dnn::MegatronPartitioner part{8, 2};
  const auto shards = part.partition(dnn::ModelZoo::spec("gpt-1.5b"));

  struct Rank {
    std::unique_ptr<dnn::Model> model;
    std::unique_ptr<PortusClient> client;
    std::uint32_t crc = 0;
  };
  std::vector<Rank> ranks;
  for (const auto& shard : shards) {
    auto& node = r.cluster->node(shard.pp_rank == 0 ? "client-ampere" : "client-volta");
    auto& gpu = node.gpu(static_cast<std::size_t>(shard.tp_rank) % node.gpu_count());
    Rank rank;
    dnn::ModelZoo::Options opt;
    opt.scale = 0.002;  // ~750 KB of real bytes per shard
    opt.weight_seed = 100 + static_cast<std::uint64_t>(shard.global_rank);
    rank.model =
        std::make_unique<dnn::Model>(dnn::ModelZoo::create_from_spec(gpu, shard.spec, opt));
    rank.crc = rank.model->weights_crc();
    rank.client = std::make_unique<PortusClient>(*r.cluster, node, gpu, r.rendezvous);
    ranks.push_back(std::move(rank));
  }

  // Shard contents must be distinct (different seeds) or the test is vacuous.
  EXPECT_NE(ranks[0].crc, ranks[1].crc);

  for (auto& rank : ranks) {
    r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
      co_await c.connect();
      co_await c.register_model(m);
      co_await c.checkpoint(m, 1);
      m.mutate_weights(7);  // diverge post-checkpoint
      co_await c.restore(m);
    }(*rank.client, *rank.model));
  }
  r.eng.run();

  EXPECT_EQ(r.daemon->stats().checkpoints, 16u);
  EXPECT_EQ(r.daemon->stats().restores, 16u);
  EXPECT_EQ(r.daemon->model_table().size(), 16u);
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    EXPECT_EQ(ranks[i].model->weights_crc(), ranks[i].crc) << "rank " << i;
  }
  EXPECT_EQ(r.eng.failed_process_count(), 0);
}

TEST(DistributedTest, RestoreIntoDifferentGpuAndNode) {
  // Checkpoint from client-volta GPU 0; restart lands the job on
  // client-ampere GPU 5. Re-registration carries the NEW addresses; the
  // daemon pushes into them.
  Rig r;
  auto& volta = r.cluster->node("client-volta");
  auto& ampere = r.cluster->node("client-ampere");
  dnn::ModelZoo::Options opt;
  opt.scale = 0.03;
  auto model_v1 = dnn::ModelZoo::create(volta.gpu(0), "resnet50", opt);
  const auto crc = model_v1.weights_crc();

  PortusClient client1{*r.cluster, volta, volta.gpu(0), r.rendezvous};
  r.eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);
    co_await c.checkpoint(m, 1);
  }(client1, model_v1));
  r.eng.run();

  // New incarnation on a different node + GPU, fresh (wrong) weights.
  opt.weight_seed = 999;
  auto model_v2 = dnn::ModelZoo::create(ampere.gpu(5), "resnet50", opt);
  ASSERT_NE(model_v2.weights_crc(), crc);
  PortusClient client2{*r.cluster, ampere, ampere.gpu(5), r.rendezvous};
  bool ok = false;
  r.eng.spawn([](PortusClient& c, dnn::Model& m, std::uint32_t want, bool& done)
                  -> sim::Process {
    co_await c.connect();
    co_await c.register_model(m);  // same name, new GPU addresses
    co_await c.restore(m);
    EXPECT_EQ(m.weights_crc(), want);
    done = true;
  }(client2, model_v2, crc, ok));
  r.eng.run();
  EXPECT_TRUE(ok);
}

TEST(DistributedTest, ConcurrentShardPullsRespectWorkerPool) {
  // A 2-worker daemon still completes 16 concurrent shard checkpoints —
  // slower, but correct and deadlock-free.
  sim::Engine eng;
  auto cluster = net::Cluster::paper_testbed(eng);
  QpRendezvous rendezvous;
  PortusDaemon daemon{*cluster, cluster->node("server"), rendezvous,
                      PortusDaemon::Config{.workers = 2}};
  daemon.start();

  dnn::MegatronPartitioner part{8, 2};
  const auto shards = part.partition(dnn::ModelZoo::spec("gpt-1.5b"));
  std::vector<std::unique_ptr<dnn::Model>> models;
  std::vector<std::unique_ptr<PortusClient>> clients;
  for (const auto& shard : shards) {
    auto& node = cluster->node(shard.pp_rank == 0 ? "client-ampere" : "client-volta");
    auto& gpu = node.gpu(static_cast<std::size_t>(shard.tp_rank) % node.gpu_count());
    dnn::ModelZoo::Options opt;
    opt.force_phantom = true;
    models.push_back(
        std::make_unique<dnn::Model>(dnn::ModelZoo::create_from_spec(gpu, shard.spec, opt)));
    clients.push_back(std::make_unique<PortusClient>(*cluster, node, gpu, rendezvous));
  }
  for (std::size_t i = 0; i < models.size(); ++i) {
    eng.spawn([](PortusClient& c, dnn::Model& m) -> sim::Process {
      co_await c.connect();
      co_await c.register_model(m);
      co_await c.checkpoint(m, 1);
    }(*clients[i], *models[i]));
  }
  eng.run();
  EXPECT_EQ(daemon.stats().checkpoints, 16u);
  EXPECT_EQ(eng.failed_process_count(), 0);
  eng.shutdown();
}

}  // namespace
}  // namespace portus::core
